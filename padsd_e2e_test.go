package pads_test

// End-to-end exercise of the parse daemon as a real process: build the
// padsd binary, start it with chaos mode on, replay a seeded fault corpus
// through the HTTP surface, then SIGTERM it and assert a clean drain with a
// non-empty quarantine file — the daemon smoke run scripts/ci.sh invokes.

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves a localhost port for the daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startPadsd launches the daemon and waits for /healthz.
func startPadsd(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	addr := freeAddr(t)
	cmd := exec.Command(filepath.Join(bin, "padsd"), append([]string{"-addr", addr}, args...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, &stderr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("padsd did not become healthy\nstderr: %s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPadsdDaemonChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTools(t)
	quar := filepath.Join(t.TempDir(), "dead.jsonl")
	cmd, base, stderr := startPadsd(t, bin, "-chaos", "-quarantine", quar, "-drain", "5s")

	// Upload the CLF description.
	src, err := os.ReadFile("testdata/clf.pads")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/descriptions?name=clf", "text/plain", bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	id := string(body[strings.Index(string(body), `"id":"`)+6:])
	id = id[:strings.Index(id, `"`)]

	// Replay the seeded fault corpus: same seeds every run, mixed fault
	// classes, several tenants.
	line := `207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] "GET /tk/p.txt HTTP/1.0" 200 30` + "\n"
	data := strings.Repeat(line, 100)
	corpus := []struct {
		tenant, fault string
		wantStatus    int
	}{
		{"t0", "", http.StatusOK},
		{"t1", "seed=1,corrupt=0.01", http.StatusOK},
		{"t2", "seed=2,short=0.8", http.StatusOK},
		{"t3", "seed=3,corrupt=0.02,short=0.5", http.StatusOK},
		{"t4", "seed=4,fail=4000", http.StatusBadRequest},
	}
	for _, c := range corpus {
		req, _ := http.NewRequest("POST", base+"/v1/parse/accum?desc="+id, strings.NewReader(data))
		req.Header.Set("X-Pads-Tenant", c.tenant)
		if c.fault != "" {
			req.Header.Set("X-Pads-Fault", c.fault)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Fatalf("tenant %s fault %q: status %d, want %d", c.tenant, c.fault, resp.StatusCode, c.wantStatus)
		}
	}

	// The corpus damaged records; the write-through quarantine saw them.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "padsd_quarantined_total") {
		t.Fatalf("/metrics missing quarantine counter:\n%.300s", mbody)
	}
	if strings.Contains(string(mbody), "padsd_quarantined_total 0\n") {
		t.Fatal("seeded corruption quarantined nothing")
	}

	// SIGTERM: clean drain, exit 0, quarantine file flushed and non-empty.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("padsd exit after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("padsd did not exit within the drain budget\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("drain not reported clean:\n%s", stderr.String())
	}
	qb, err := os.ReadFile(quar)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(qb)) == 0 {
		t.Fatal("quarantine file empty after drain")
	}
	for i, ln := range bytes.Split(bytes.TrimSpace(qb), []byte("\n")) {
		if !bytes.HasPrefix(ln, []byte("{")) {
			t.Fatalf("quarantine line %d is not JSONL: %.80s", i+1, ln)
		}
	}
}

// slowBody dribbles lines with a delay: an in-flight parse that outlives a
// short drain budget.
type slowBody struct {
	line  string
	delay time.Duration
	n     int
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.n <= 0 {
		return 0, io.EOF
	}
	s.n--
	time.Sleep(s.delay)
	return copy(p, s.line), nil
}

func TestPadsdDaemonHardDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTools(t)
	cmd, base, stderr := startPadsd(t, bin, "-drain", "300ms")

	src, err := os.ReadFile("testdata/clf.pads")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/descriptions", "text/plain", bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	id := string(body[strings.Index(string(body), `"id":"`)+6:])
	id = id[:strings.Index(id, `"`)]

	// Park a slow parse in flight (~10s of data, far beyond the 300ms drain
	// budget even on a loaded machine), then SIGTERM.
	line := `207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] "GET /tk/p.txt HTTP/1.0" 200 30` + "\n"
	status := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/parse/accum?desc="+id, "text/plain",
			&slowBody{line: line, delay: 2 * time.Millisecond, n: 5000})
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	// Wait until the daemon reports the parse active.
	deadline := time.Now().Add(15 * time.Second)
	for {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mb, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if strings.Contains(string(mb), "padsd_parses_active 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow parse never became active")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	werr := cmd.Wait()
	if el := time.Since(start); el > 20*time.Second {
		t.Fatalf("hard drain took %v; cancellation did not reach the parse", el)
	}
	// Budget expiry is a deliberate, distinct exit code (4).
	var ee *exec.ExitError
	if werr == nil {
		t.Fatalf("padsd exited 0 with a parse over the drain budget\nstderr: %s", stderr.String())
	} else if !errors.As(werr, &ee) || ee.ExitCode() != 4 {
		t.Fatalf("padsd exit = %v, want code 4\nstderr: %s", werr, stderr.String())
	}
	if code := <-status; code != 499 && code != http.StatusGatewayTimeout && code != -1 {
		t.Fatalf("hard-stopped parse: status %d, want 499/504 (or connection reset)", code)
	}
}
