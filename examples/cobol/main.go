// Cobol: the Altair path of section 5.2 — translate a Cobol copybook into a
// PADS description, synthesize length-prefixed EBCDIC billing records (with
// packed decimals and binary fields), parse them, and profile the file with
// an accumulator, the workflow AT&T used to triage ~4000 Cobol files a day.
//
//	go run ./examples/cobol [records]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"pads"
	"pads/internal/datagen"
	"pads/internal/padsrt"
)

func main() {
	records := 500
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil {
			records = n
		}
	}

	copybook, err := os.ReadFile("testdata/billing.cpy")
	if err != nil {
		log.Fatal(err)
	}
	desc, err := pads.TranslateCopybook(string(copybook), "billing.cpy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== translated description ===")
	fmt.Println(desc.Print())

	data := synthesize(records)
	fmt.Printf("synthesized %d length-prefixed EBCDIC records (%d bytes)\n\n", records, len(data))

	src := pads.NewBytesSource(data,
		pads.WithDiscipline(pads.LenPrefix()),
		pads.WithCoding(pads.EBCDIC))
	rr, err := desc.Records(src, nil)
	if err != nil {
		log.Fatal(err)
	}
	acc := pads.NewAccum(pads.AccumConfig{})
	n, bad := 0, 0
	for rr.More() {
		rec := rr.Read()
		if rec.PD().Nerr > 0 {
			bad++
		}
		acc.Add(rec)
		n++
	}
	fmt.Printf("parsed %d records, %d with errors\n\n", n, bad)
	fmt.Println("=== accumulator report for the balance field ===")
	acc.ReportField(os.Stdout, "<top>", "balance")
}

// synthesize builds billing records matching testdata/billing.cpy: zoned
// and character fields in EBCDIC, a COMP-3 balance, a binary COMP field,
// all under 4-byte length prefixes.
func synthesize(records int) []byte {
	r := datagen.NewRand(23)
	var data []byte
	d := padsrt.LenPrefix()
	names := []string{"SMITH JOHN  ", "DOE JANE    ", "GRUBER ROBT ", "FISHER KATH "}
	for i := 0; i < records; i++ {
		var rec []byte
		rec = append(rec, padsrt.StringToEBCDICBytes(fmt.Sprintf("%08d", 10000000+i))...)
		rec = append(rec, padsrt.StringToEBCDICBytes(names[r.Intn(len(names))])...)
		balance := int64(r.Intn(2000000)) - 1000000
		rec = padsrt.WriteBCD(rec, balance, 9)
		rec = append(rec, padsrt.StringToEBCDICBytes(fmt.Sprintf("%02d", r.Intn(100)))...)
		rec = append(rec, padsrt.StringToEBCDICBytes(fmt.Sprintf("%05d", r.Intn(100000)))...)
		rec = padsrt.AppendBUint(rec, uint64(r.Intn(60000)), 4, padsrt.BigEndian)
		for m := 0; m < 3; m++ {
			rec = padsrt.WriteZoned(rec, int64(r.Intn(10000))-5000, 5)
		}
		rec = append(rec, padsrt.StringToEBCDICBytes("  ")...)
		padsrt.FrameRecord(d, &data, rec)
	}
	return data
}
