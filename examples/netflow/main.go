// Netflow: binary packets with a data-dependent number of fixed-width flow
// records (the last row of Figure 1, arriving at over a gigabit per second
// in the paper). The description parameterizes the flow array by the
// header's count field; this program builds a synthetic capture, parses it,
// and reports top talkers — all through the description.
//
//	go run ./examples/netflow [packets]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"pads"
	"pads/internal/datagen"
	"pads/internal/padsrt"
	"pads/internal/value"
)

func main() {
	packets := 200
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil {
			packets = n
		}
	}

	desc, err := pads.CompileFile("testdata/netflow.pads")
	if err != nil {
		log.Fatal(err)
	}

	data, flows := synthesize(packets)
	fmt.Printf("synthesized %d packets carrying %d flows (%d bytes)\n", packets, flows, len(data))

	v, err := desc.ParseAll(pads.NewBytesSource(data, pads.WithDiscipline(pads.NoRecords())))
	if err != nil {
		log.Fatal(err)
	}
	if v.PD().Nerr > 0 {
		log.Fatalf("parse errors: %v", v.PD())
	}

	// Aggregate octets by source address via the value tree.
	octets := map[uint32]uint64{}
	stream := v.(*value.Array)
	total := 0
	for _, p := range stream.Elems {
		fl := p.(*value.Struct).Field("flows").(*value.Array)
		for _, f := range fl.Elems {
			fs := f.(*value.Struct)
			src := uint32(fs.Field("srcaddr").(*value.Uint).Val)
			octets[src] += fs.Field("octets").(*value.Uint).Val
			total++
		}
	}
	if total != flows {
		log.Fatalf("parsed %d flows, generated %d", total, flows)
	}

	type talker struct {
		addr   uint32
		octets uint64
	}
	top := make([]talker, 0, len(octets))
	for a, o := range octets {
		top = append(top, talker{a, o})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].octets > top[j].octets })
	fmt.Println("\ntop talkers:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  %-15s %10d octets\n", padsrt.FormatIP(top[i].addr), top[i].octets)
	}
}

// synthesize builds a capture of version-5 packets with varying flow counts.
func synthesize(packets int) ([]byte, int) {
	r := datagen.NewRand(11)
	var data []byte
	flows := 0
	for p := 0; p < packets; p++ {
		n := r.Range(0, 30)
		flows += n
		data = padsrt.AppendBUint(data, 5, 2, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, uint64(n), 2, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, uint64(100000+p), 4, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, uint64(1005022800+p), 4, padsrt.BigEndian)
		for i := 0; i < n; i++ {
			src := uint64(0x0A000000 | r.Intn(16))
			data = padsrt.AppendBUint(data, src, 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, 0x0A0000FE, 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, uint64(1+r.Intn(100)), 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, uint64(64+r.Intn(100000)), 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, uint64(r.Intn(65536)), 2, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, 443, 2, padsrt.BigEndian)
			data = append(data, 6, 0)
		}
	}
	return data, flows
}
