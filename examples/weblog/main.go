// Web-log analytics over raw data: generate a CLF corpus with the error
// population of section 5.2, then run every derived tool the paper
// describes — accumulator profiling (finding the undocumented '-' length),
// delimited formatting (Figure 8), XML conversion, and queries (section
// 5.4) — without ever converting the log to another format first.
//
//	go run ./examples/weblog [records]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

import "pads"

func main() {
	records := 5000
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil {
			records = n
		}
	}

	desc, err := pads.CompileFile("testdata/clf.pads")
	if err != nil {
		log.Fatal(err)
	}

	var corpus bytes.Buffer
	st, err := pads.GenerateCLF(&corpus, pads.DefaultCLF(records))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d CLF records, %d with the undocumented '-' length\n\n", st.Records, st.BadLengths)
	data := corpus.Bytes()

	// 1. Profile the source (section 5.2). The report reveals the '-'
	//    values exactly as the paper's accumulator run did.
	rr, err := desc.Records(pads.NewBytesSource(data), nil)
	if err != nil {
		log.Fatal(err)
	}
	acc := pads.NewAccum(pads.AccumConfig{})
	for rr.More() {
		acc.Add(rr.Read())
	}
	fmt.Println("=== accumulator report for <top>.length (cf. section 5.2) ===")
	acc.ReportField(os.Stdout, "<top>", "length")

	// 2. Format the first records as pipe-delimited text (Figure 8).
	fmt.Println("=== formatted records (Figure 8) ===")
	f := pads.NewFormatter("|")
	f.DateFormat = "%D:%T"
	rr2, _ := desc.Records(pads.NewBytesSource(data), nil)
	for i := 0; i < 3 && rr2.More(); i++ {
		fmt.Println(f.FormatRecord(rr2.Read()))
	}

	// 3. Convert one record to XML (section 5.3.2).
	rr3, _ := desc.Records(pads.NewBytesSource(data), nil)
	fmt.Println("\n=== one record as XML ===")
	fmt.Print(pads.XMLString(rr3.Read(), "entry"))

	// 4. Query the raw log (section 5.4): how many server errors, and
	//    which clients saw them?
	v, err := desc.ParseAll(pads.NewBytesSource(data))
	if err != nil {
		log.Fatal(err)
	}
	_, n, _, err := desc.RunQuery(`count(/elt[response >= 500])`, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== queries ===\nserver errors (5xx): %g\n", n)
	nodes, _, _, err := desc.RunQuery(`/elt[response >= 500]/client`, v)
	if err != nil {
		log.Fatal(err)
	}
	show := len(nodes)
	if show > 5 {
		show = 5
	}
	var clients []string
	for _, c := range nodes[:show] {
		if len(c.Children()) > 0 {
			clients = append(clients, c.Children()[0].Text())
		}
	}
	fmt.Printf("first clients with 5xx: %s\n", strings.Join(clients, ", "))
}
