// The Figure 7 program of the PADS paper: clean and normalize Sirius
// provisioning data using the *generated* parsing library — check every
// property except the event-timestamp sort (masked off), unify the two
// representations of missing phone numbers, verify the repaired records,
// and write clean and erroneous records to separate files.
//
//	go run ./examples/sirius [records]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strconv"

	"pads/internal/datagen"
	"pads/internal/gen/sirius"
	"pads/internal/padsrt"
)

func main() {
	records := 10000
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil {
			records = n
		}
	}

	// The real feed is proprietary; synthesize data with the error
	// population the paper reports (section 7).
	var raw bytes.Buffer
	st, err := datagen.Sirius(&raw, datagen.DefaultSirius(records))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d records (%d bytes): %d sort violations, %d syntax errors\n",
		st.Records, st.Bytes, st.SortViolations, st.SyntaxErrors)

	// Figure 7: P_CheckAndSet everywhere, except the event sequence's
	// compound level, which is set-only (skip the expensive sort check).
	mask := sirius.NewEntry_tMask(padsrt.CheckAndSet)
	mask.Events.CompoundLevel = padsrt.Set

	s := padsrt.NewBytesSource(raw.Bytes())
	var hdr sirius.Summary_header_t
	var hdrPD sirius.Summary_header_tPD
	sirius.ReadSummary_header_t(s, nil, &hdrPD, &hdr)

	cleanFile := mustCreate("sirius.clean")
	errFile := mustCreate("sirius.err")
	defer cleanFile.Close()
	defer errFile.Close()
	var buf []byte
	buf = sirius.WriteSummary_header_t(buf[:0], &hdr)
	cleanFile.Write(buf)

	var e sirius.Entry_t
	var epd sirius.Entry_tPD
	var clean, errs, repaired, failed int
	for s.More() {
		sirius.ReadEntry_t(s, mask, &epd, &e)
		if epd.PD.Nerr > 0 {
			errs++
			buf = sirius.WriteEntry_t(buf[:0], &e)
			errFile.Write(buf)
			continue
		}
		if cnvPhoneNumbers(&e) {
			repaired++
		}
		if !sirius.VerifyEntry_t(&e) {
			// Verify re-checks everything, including the masked-off
			// sort: the paper's error(2, "Data transform failed").
			failed++
			continue
		}
		clean++
		buf = sirius.WriteEntry_t(buf[:0], &e)
		cleanFile.Write(buf)
	}
	fmt.Printf("clean: %d (phone reps unified in %d), parse errors: %d, verify failures: %d\n",
		clean, repaired, errs, failed)
	fmt.Println("wrote sirius.clean and sirius.err")
}

// cnvPhoneNumbers unifies the two representations of unavailable phone
// numbers — the literal 0 becomes the absent optional (section 5.1.1) —
// reporting whether anything changed.
func cnvPhoneNumbers(e *sirius.Entry_t) bool {
	changed := false
	fix := func(tn *padsrt.Opt[sirius.Pn_t]) {
		if tn.Present && tn.Val == 0 {
			tn.Present = false
			changed = true
		}
	}
	fix(&e.Header.Service_tn)
	fix(&e.Header.Billing_tn)
	fix(&e.Header.Nlp_service_tn)
	fix(&e.Header.Nlp_billing_tn)
	return changed
}

func mustCreate(name string) *os.File {
	f, err := os.Create(name)
	if err != nil {
		log.Fatal(err)
	}
	return f
}
