// Quickstart: compile a PADS description, parse data record by record,
// react to parse descriptors, and print an accumulator profile.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"pads"
)

// A trimmed web-server-log description (Figure 4 of the PADS paper).
const description = `
Punion client_t {
  Pip ip;
  Phostname host;
};

Penum method_t { GET, PUT, POST, HEAD, DELETE, LINK, UNLINK };

Ptypedef Puint16_FW(:3:) response_t :
  response_t x => { 100 <= x && x < 600 };

Precord Pstruct entry_t {
        client_t client;
  " ["; Pdate(:']':) date;
  "] \""; method_t meth;
  ' ';  Pstring(:' ':) uri;
  " HTTP/1.";
        Puint8 minor;
  "\" "; response_t response;
  ' ';  Puint32 length;
};

Psource Parray log_t {
  entry_t[];
};
`

const data = `207.136.97.49 [15/Oct/1997:18:46:51 -0700] "GET /tk/p.txt HTTP/1.0" 200 30
tj62.aol.com [16/Oct/1997:14:32:22 -0700] "POST /scpt/confirm HTTP/1.0" 200 941
bad.host.example [16/Oct/1997:14:33:01 -0700] "GET /x HTTP/1.0" 999 12
10.1.2.3 [16/Oct/1997:15:00:00 -0700] "HEAD / HTTP/1.1" 304 -
`

func main() {
	desc, err := pads.Compile(description, "quickstart.pads")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled description; source type %s\n\n", desc.SourceType())

	// Record-at-a-time parsing: the data is never loaded whole.
	rr, err := desc.Records(pads.NewSource(bytes.NewReader([]byte(data))), nil)
	if err != nil {
		log.Fatal(err)
	}
	acc := pads.NewAccum(pads.AccumConfig{})
	n, bad := 0, 0
	for rr.More() {
		rec := rr.Read()
		n++
		acc.Add(rec)
		if pd := rec.PD(); pd.Nerr > 0 {
			bad++
			// The parse descriptor says what went wrong and where.
			fmt.Printf("record %d: %d error(s): %v at %v\n", n, pd.Nerr, pd.ErrCode, pd.Loc)
			continue
		}
		fmt.Printf("record %d: %s\n", n, pads.ValueString(rec))
	}
	fmt.Printf("\n%d records, %d with errors\n\n", n, bad)

	// The statistical profile of the response field (section 5.2).
	fmt.Println("accumulator report for the response field:")
	acc.ReportField(os.Stdout, "<top>", "response")
}
