package pads_test

// End-to-end exercise of every command-line tool: build the binaries once,
// then drive each over small synthetic inputs. This is the closest the test
// suite comes to the paper's day-to-day workflow (generate -> profile ->
// format -> convert -> query -> compile).

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/telemetry"
)

func buildTools(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/...")
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin, tool string, stdin []byte, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, tool), args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, stderr.String())
	}
	return stdout.String()
}

func TestCLIToolsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTools(t)
	work := t.TempDir()

	// padsgen: synthesize a CLF corpus.
	clfData := run(t, bin, "padsgen", nil, "-corpus", "clf", "-n", "120", "-seed", "3")
	if got := strings.Count(clfData, "\n"); got != 120 {
		t.Fatalf("padsgen produced %d lines", got)
	}
	clfPath := filepath.Join(work, "clf.txt")
	if err := os.WriteFile(clfPath, []byte(clfData), 0o644); err != nil {
		t.Fatal(err)
	}

	// padsacc: the section 5.2 accumulator report.
	acc := run(t, bin, "padsacc", nil, "-desc", "testdata/clf.pads", "-field", "length", clfPath)
	for _, want := range []string{"120 records", "<top>.length : uint32", "pcnt-bad"} {
		if !strings.Contains(acc, want) {
			t.Errorf("padsacc output missing %q:\n%s", want, acc)
		}
	}

	// padsfmt: Figure 8 formatting.
	formatted := run(t, bin, "padsfmt", nil, "-desc", "testdata/clf.pads", "-delims", "|", "-datefmt", "%D:%T", clfPath)
	if got := strings.Count(formatted, "\n"); got != 120 {
		t.Errorf("padsfmt produced %d lines", got)
	}
	if !strings.Contains(formatted, "|-|-|") {
		t.Errorf("padsfmt output shape unexpected:\n%s", formatted[:200])
	}

	// padsxml: schema and conversion.
	schema := run(t, bin, "padsxml", nil, "-desc", "testdata/clf.pads", "-schema")
	if !strings.Contains(schema, `<xs:complexType name="entry_t">`) {
		t.Error("padsxml -schema missing entry_t")
	}
	xmlOut := run(t, bin, "padsxml", nil, "-desc", "testdata/clf.pads", "-root", "log", clfPath)
	if !strings.Contains(xmlOut, "<log>") || !strings.Contains(xmlOut, "<entry_t>") {
		t.Errorf("padsxml output shape unexpected:\n%s", xmlOut[:200])
	}

	// padsquery: aggregates and node sets.
	count := run(t, bin, "padsquery", nil, "-desc", "testdata/clf.pads", "-q", "count(/elt)", clfPath)
	if strings.TrimSpace(count) != "120" {
		t.Errorf("padsquery count = %q", count)
	}
	nodes := run(t, bin, "padsquery", nil, "-desc", "testdata/clf.pads", "-q", "/elt[response >= 500]/response", clfPath)
	if !strings.Contains(nodes, "nodes -->") {
		t.Errorf("padsquery nodes output unexpected:\n%s", nodes)
	}

	// padsc: check, pretty-print, schema, and code generation.
	checked := run(t, bin, "padsc", nil, "-check", "testdata/sirius.pads")
	if !strings.Contains(checked, "source type out_sum") {
		t.Errorf("padsc -check = %q", checked)
	}
	printed := run(t, bin, "padsc", nil, "-print", "testdata/sirius.pads")
	if !strings.Contains(printed, "Pstruct order_header_t") {
		t.Error("padsc -print lost declarations")
	}
	genPath := filepath.Join(work, "gen.go")
	run(t, bin, "padsc", nil, "-go", genPath, "-pkg", "x", "testdata/clf.pads")
	gen, err := os.ReadFile(genPath)
	if err != nil || !strings.Contains(string(gen), "package x") {
		t.Errorf("padsc -go output bad: %v", err)
	}

	// cobol2pads: copybook translation pipes into padsc.
	translated := run(t, bin, "cobol2pads", nil, "testdata/billing.cpy")
	if !strings.Contains(translated, "Pbcd(:9:) balance") {
		t.Errorf("cobol2pads output missing packed decimal:\n%s", translated)
	}
	cpyPads := filepath.Join(work, "billing.pads")
	if err := os.WriteFile(cpyPads, []byte(translated), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, bin, "padsc", nil, "-check", cpyPads)

	// padsgen from a description.
	generated := run(t, bin, "padsgen", nil, "-desc", "testdata/kitchen.pads", "-n", "2", "-seed", "5")
	if len(generated) == 0 {
		t.Error("padsgen -desc produced nothing")
	}

	// padsbench: a miniature Figure 10 run (Go comparators only).
	bench := run(t, bin, "padsbench", nil, "-n", "2000", "-runs", "1", "-noperl")
	for _, want := range []string{"vetting", "selection", "record count", "ratio"} {
		if !strings.Contains(bench, want) {
			t.Errorf("padsbench output missing %q", want)
		}
	}
	lev := run(t, bin, "padsbench", nil, "-leverage")
	if !strings.Contains(lev, "leverage ratio") {
		t.Errorf("padsbench -leverage = %q", lev)
	}
}

// run2 is run, but returns stderr too — the telemetry flags print their
// reports there so stdout stays pipeline-clean.
func run2(t *testing.T, bin, tool string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, tool), args...)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, errBuf.String())
	}
	return outBuf.String(), errBuf.String()
}

// TestCLITelemetryFlags drives the observability surface end to end: -stats
// on padsacc/padsquery/padsfmt, -trace with and without the bounded ring,
// and padsbench -json, whose stdout must round-trip through the
// pads-bench/v1 reader that scripts/bench.sh trajectory files rely on.
func TestCLITelemetryFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTools(t)
	work := t.TempDir()

	clfData := run(t, bin, "padsgen", nil, "-corpus", "clf", "-n", "80", "-seed", "7")
	clfPath := filepath.Join(work, "clf.txt")
	if err := os.WriteFile(clfPath, []byte(clfData), 0o644); err != nil {
		t.Fatal(err)
	}

	// padsacc -stats: the counter block lands on stderr, the report on stdout.
	stdout, stderr := run2(t, bin, "padsacc",
		"-desc", "testdata/clf.pads", "-stats", clfPath)
	if !strings.Contains(stdout, "80 records") {
		t.Errorf("padsacc stdout lost the report:\n%s", stdout)
	}
	for _, want := range []string{"parse telemetry", "records", "speculation", "intern", "union choices"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("padsacc -stats stderr missing %q:\n%s", want, stderr)
		}
	}

	// padsacc -trace: one JSONL event stream, then the same with a bounded
	// ring that must retain exactly N events.
	tracePath := filepath.Join(work, "trace.jsonl")
	run2(t, bin, "padsacc", "-desc", "testdata/clf.pads", "-trace", tracePath, clfPath)
	traced, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	full := strings.Count(string(traced), "\n")
	if full == 0 || !strings.Contains(string(traced), `"ev":"record_end"`) {
		t.Fatalf("padsacc -trace produced no record events:\n%.300s", traced)
	}
	run2(t, bin, "padsacc", "-desc", "testdata/clf.pads",
		"-trace", tracePath, "-trace-last", "10", clfPath)
	ringed, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(ringed), "\n"); got != 10 {
		t.Errorf("padsacc -trace-last 10 kept %d events, want 10", got)
	}
	if !strings.HasSuffix(string(traced), string(ringed)) {
		t.Error("ring tail is not a suffix of the full trace")
	}

	// padsquery and padsfmt share the -stats plumbing via internal/cliutil.
	_, stderr = run2(t, bin, "padsquery",
		"-desc", "testdata/clf.pads", "-q", "count(/elt)", "-stats", clfPath)
	if !strings.Contains(stderr, "parse telemetry") {
		t.Errorf("padsquery -stats stderr missing the counter block:\n%s", stderr)
	}
	_, stderr = run2(t, bin, "padsfmt",
		"-desc", "testdata/clf.pads", "-stats", clfPath)
	if !strings.Contains(stderr, "parse telemetry") {
		t.Errorf("padsfmt -stats stderr missing the counter block:\n%s", stderr)
	}

	// padsbench -json: stdout is exactly one pads-bench/v1 document.
	stdout, _ = run2(t, bin, "padsbench", "-n", "500", "-runs", "1", "-noperl", "-json")
	rep, err := telemetry.ReadBenchReport([]byte(stdout))
	if err != nil {
		t.Fatalf("padsbench -json does not round-trip: %v\n%.300s", err, stdout)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("padsbench -json report has no rows")
	}
	padsRows := 0
	for _, row := range rep.Rows {
		if row.Runs != 1 || len(row.Secs) != 1 {
			t.Errorf("row %s/%s: runs=%d secs=%v, want 1 run", row.Task, row.Prog, row.Runs, row.Secs)
		}
		if row.BytesPerSec <= 0 {
			t.Errorf("row %s/%s: bytes_per_sec = %v", row.Task, row.Prog, row.BytesPerSec)
		}
		if row.Prog == "pads" {
			padsRows++
			if row.Counters == nil || row.Counters.Source.RecordsBegun == 0 {
				t.Errorf("row %s/pads carries no runtime counters", row.Task)
			}
		}
	}
	if padsRows != 3 {
		t.Errorf("report has %d pads rows, want 3 (vetting, selection, count)", padsRows)
	}
}

// TestBenchTrajectoryFiles keeps the committed BENCH_*.json history
// readable: every trajectory file at the repo root must parse as the
// pads-bench/v1 schema and carry counters on its pads rows.
func TestBenchTrajectoryFiles(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json trajectory files committed (scripts/bench.sh writes them)")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := telemetry.ReadBenchReport(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: no rows", f)
		}
		for _, row := range rep.Rows {
			if row.Prog == "pads" && (row.Counters == nil || row.Counters.Source.BytesRead == 0) {
				t.Errorf("%s: row %s/pads has no source counters", f, row.Task)
			}
		}
	}
}

// TestExamplesRun builds and executes every example program over small
// inputs, so the documented entry points stay green.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := t.TempDir()
	cmd := exec.Command("go", "build", "-o", bin, "./examples/...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()

	cases := []struct {
		name string
		args []string
		dir  string // "" = scratch (programs that write files), else repo root
		want string
	}{
		{"quickstart", nil, "", "accumulator report for the response field"},
		{"sirius", []string{"500"}, "", "wrote sirius.clean and sirius.err"},
		{"weblog", []string{"400"}, repoRoot, "=== formatted records (Figure 8) ==="},
		{"netflow", []string{"30"}, repoRoot, "top talkers:"},
		{"cobol", []string{"50"}, repoRoot, "accumulator report for the balance field"},
	}
	for _, c := range cases {
		cmd := exec.Command(filepath.Join(bin, c.name), c.args...)
		if c.dir == "" {
			cmd.Dir = scratch
		} else {
			cmd.Dir = c.dir
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Errorf("example %s: %v\n%s", c.name, err, out)
			continue
		}
		if !strings.Contains(string(out), c.want) {
			t.Errorf("example %s output missing %q:\n%s", c.name, c.want, out)
		}
	}
}
