package value

import "pads/internal/padsrt"

// Constructors used by generated ToValue bridges (and handy in tests).

// NewUint builds an unsigned-integer value.
func NewUint(v uint64, bits int, typ string, pd padsrt.PD) *Uint {
	return &Uint{Common: Common{Pd: pd, Type: typ}, Val: v, Bits: bits}
}

// NewInt builds a signed-integer value.
func NewInt(v int64, bits int, typ string, pd padsrt.PD) *Int {
	return &Int{Common: Common{Pd: pd, Type: typ}, Val: v, Bits: bits}
}

// NewFloat builds a floating-point value.
func NewFloat(v float64, bits int, typ string, pd padsrt.PD) *Float {
	return &Float{Common: Common{Pd: pd, Type: typ}, Val: v, Bits: bits}
}

// NewChar builds a character value.
func NewChar(v byte, typ string, pd padsrt.PD) *Char {
	return &Char{Common: Common{Pd: pd, Type: typ}, Val: v}
}

// NewStr builds a string value.
func NewStr(v, typ string, pd padsrt.PD) *Str {
	return &Str{Common: Common{Pd: pd, Type: typ}, Val: v}
}

// NewDate builds a date value.
func NewDate(sec int64, raw, typ string, pd padsrt.PD) *Date {
	return &Date{Common: Common{Pd: pd, Type: typ}, Sec: sec, Raw: raw}
}

// NewIP builds an IPv4 value.
func NewIP(v uint32, typ string, pd padsrt.PD) *IP {
	return &IP{Common: Common{Pd: pd, Type: typ}, Val: v}
}

// NewVoid builds a void value.
func NewVoid(typ string, pd padsrt.PD) *Void {
	return &Void{Common: Common{Pd: pd, Type: typ}}
}

// NewEnum builds an enumeration value.
func NewEnum(typ, member string, index int, pd padsrt.PD) *Enum {
	return &Enum{Common: Common{Pd: pd, Type: typ}, Member: member, Index: index}
}

// NewOpt builds an optional value.
func NewOpt(present bool, val Value, typ string, pd padsrt.PD) *Opt {
	return &Opt{Common: Common{Pd: pd, Type: typ}, Present: present, Val: val}
}
