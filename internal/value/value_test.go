package value

import (
	"strings"
	"testing"
	"testing/quick"

	"pads/internal/padsrt"
	"pads/internal/sema"
)

func sampleStruct() *Struct {
	st := &Struct{Common: Common{Type: "pair_t"}}
	st.Names = []string{"a", "b"}
	st.Fields = []Value{
		NewUint(7, 32, "Puint32", padsrt.PD{}),
		NewStr("hi", "Pstring", padsrt.PD{}),
	}
	return st
}

func TestKinds(t *testing.T) {
	cases := map[Value]sema.Kind{
		&Uint{}:   sema.KUint,
		&Int{}:    sema.KInt,
		&Float{}:  sema.KFloat,
		&Char{}:   sema.KChar,
		&Str{}:    sema.KString,
		&Date{}:   sema.KDate,
		&IP{}:     sema.KIP,
		&Void{}:   sema.KVoid,
		&Enum{}:   sema.KEnum,
		&Struct{}: sema.KStruct,
		&Union{}:  sema.KUnion,
		&Array{}:  sema.KArray,
		&Opt{}:    sema.KOpt,
	}
	for v, want := range cases {
		if v.Kind() != want {
			t.Errorf("%T.Kind() = %v, want %v", v, v.Kind(), want)
		}
	}
}

func TestFieldLookup(t *testing.T) {
	st := sampleStruct()
	if st.Field("a") == nil || st.Field("b") == nil {
		t.Fatal("field lookup failed")
	}
	if st.Field("c") != nil {
		t.Fatal("phantom field")
	}
}

func TestStringRendering(t *testing.T) {
	st := sampleStruct()
	s := String(st)
	for _, want := range []string{"pair_t{", "a=7", `b="hi"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	un := &Union{Common: Common{Type: "u_t"}, Tag: "left", Val: NewInt(-3, 32, "Pint32", padsrt.PD{})}
	if got := String(un); got != "u_t.left=-3" {
		t.Errorf("union String() = %q", got)
	}
	arr := &Array{Elems: []Value{NewUint(1, 8, "Puint8", padsrt.PD{}), NewUint(2, 8, "Puint8", padsrt.PD{})}}
	if got := String(arr); got != "[1, 2]" {
		t.Errorf("array String() = %q", got)
	}
	if got := String(&Opt{Present: false}); got != "none" {
		t.Errorf("absent opt = %q", got)
	}
	if got := String(NewOpt(true, NewChar('x', "Pchar", padsrt.PD{}), "opt", padsrt.PD{})); got != "some('x')" {
		t.Errorf("present opt = %q", got)
	}
	if got := String(NewDate(5, "raw", "Pdate", padsrt.PD{})); got != `date(5,"raw")` {
		t.Errorf("date = %q", got)
	}
	if got := String(NewIP(0x01020304, "Pip", padsrt.PD{})); got != "1.2.3.4" {
		t.Errorf("ip = %q", got)
	}
	if got := String(nil); got != "<nil>" {
		t.Errorf("nil = %q", got)
	}
}

func TestEqualStructural(t *testing.T) {
	a, b := sampleStruct(), sampleStruct()
	if !Equal(a, b) {
		t.Fatal("identical structs unequal")
	}
	// Parse descriptors are ignored.
	b.Fields[0].PD().SetError(padsrt.ErrInvalidInt, padsrt.Loc{})
	if !Equal(a, b) {
		t.Fatal("pd difference affected Equal")
	}
	// Value differences are detected.
	c := sampleStruct()
	c.Fields[0] = NewUint(8, 32, "Puint32", padsrt.PD{})
	if Equal(a, c) {
		t.Fatal("different values equal")
	}
	// Cross-kind comparisons are unequal.
	if Equal(NewUint(1, 8, "", padsrt.PD{}), NewInt(1, 8, "", padsrt.PD{})) {
		t.Fatal("uint equals int")
	}
	// Unions compare tags then payloads.
	u1 := &Union{Tag: "x", Val: NewUint(1, 8, "", padsrt.PD{})}
	u2 := &Union{Tag: "y", Val: NewUint(1, 8, "", padsrt.PD{})}
	if Equal(u1, u2) {
		t.Fatal("different tags equal")
	}
	// Opt presence matters.
	if Equal(&Opt{Present: true, Val: NewUint(1, 8, "", padsrt.PD{})}, &Opt{Present: false}) {
		t.Fatal("present equals absent")
	}
}

// Property: Equal is reflexive over randomly built scalar arrays.
func TestEqualReflexive(t *testing.T) {
	f := func(vals []uint32) bool {
		arr := &Array{}
		for _, v := range vals {
			arr.Elems = append(arr.Elems, NewUint(uint64(v), 32, "Puint32", padsrt.PD{}))
		}
		return Equal(arr, arr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstructorsSetCommon(t *testing.T) {
	var pd padsrt.PD
	pd.SetError(padsrt.ErrRange, padsrt.Loc{})
	u := NewUint(9, 16, "Puint16", pd)
	if u.TypeName() != "Puint16" || u.PD().ErrCode != padsrt.ErrRange || u.Bits != 16 {
		t.Errorf("constructor lost metadata: %+v", u)
	}
	e := NewEnum("m_t", "GET", 0, padsrt.PD{})
	if e.Member != "GET" || e.TypeName() != "m_t" {
		t.Errorf("enum ctor: %+v", e)
	}
	v := NewVoid("Pempty", padsrt.PD{})
	if v.TypeName() != "Pempty" {
		t.Errorf("void ctor: %+v", v)
	}
	f := NewFloat(1.5, 64, "Pfloat64", padsrt.PD{})
	if f.Val != 1.5 || f.Bits != 64 {
		t.Errorf("float ctor: %+v", f)
	}
}

func TestTotalErrors(t *testing.T) {
	st := sampleStruct()
	if TotalErrors(st) != 0 {
		t.Fatal("clean value has errors")
	}
	st.PD().Nerr = 3
	if TotalErrors(st) != 3 {
		t.Fatal("root nerr not authoritative")
	}
	if TotalErrors(nil) != 0 {
		t.Fatal("nil value")
	}
}
