// Package value defines the generic in-memory representation the
// description interpreter produces: one Value per parsed component, each
// carrying its own parse descriptor, mirroring the per-type representation +
// parse-descriptor pairs of the generated C library (Figure 6 of the paper).
package value

import (
	"fmt"
	"strings"

	"pads/internal/padsrt"
	"pads/internal/sema"
)

// Value is any parsed datum. Every value carries a parse descriptor
// describing the syntactic and semantic errors detected while parsing it.
type Value interface {
	Kind() sema.Kind
	PD() *padsrt.PD
	// TypeName is the declared or base type name this value was parsed as.
	TypeName() string
}

// Common is the bookkeeping embedded in every value: the parse descriptor
// and the type name the value was parsed as.
type Common struct {
	Pd   padsrt.PD
	Type string
}

func (c *Common) PD() *padsrt.PD   { return &c.Pd }
func (c *Common) TypeName() string { return c.Type }

// Uint is an unsigned integer value.
type Uint struct {
	Common
	Val  uint64
	Bits int
}

// Int is a signed integer value.
type Int struct {
	Common
	Val  int64
	Bits int
}

// Float is a floating-point value.
type Float struct {
	Common
	Val  float64
	Bits int
}

// Char is a one-character value (stored as ASCII).
type Char struct {
	Common
	Val byte
}

// Str is a string value (Pstring*, Phostname, Pzip).
type Str struct {
	Common
	Val string
}

// Date is a parsed date: epoch seconds plus the raw source text, which is
// preserved so data can be written back out unchanged.
type Date struct {
	Common
	Sec int64
	Raw string
}

// IP is an IPv4 address in host order.
type IP struct {
	Common
	Val uint32
}

// Void is the result of parsing Pempty or the absent branch of a Popt.
type Void struct {
	Common
}

// Enum is an enumeration value.
type Enum struct {
	Common
	Member string // literal name; "" when the parse failed
	Index  int
}

// Struct is a parsed Pstruct: parallel field names and values (literal
// items do not produce fields).
type Struct struct {
	Common
	Names  []string
	Fields []Value
}

// Field returns the named field, or nil.
func (s *Struct) Field(name string) Value {
	for i, n := range s.Names {
		if n == name {
			return s.Fields[i]
		}
	}
	return nil
}

// Union is a parsed Punion: the branch name that matched and its value.
type Union struct {
	Common
	Tag    string
	TagIdx int
	Val    Value
}

// Array is a parsed Parray.
type Array struct {
	Common
	Elems []Value
}

// Opt is a parsed Popt: either the present value or nothing.
type Opt struct {
	Common
	Present bool
	Val     Value // nil when absent
}

func (*Uint) Kind() sema.Kind   { return sema.KUint }
func (*Int) Kind() sema.Kind    { return sema.KInt }
func (*Float) Kind() sema.Kind  { return sema.KFloat }
func (*Char) Kind() sema.Kind   { return sema.KChar }
func (*Str) Kind() sema.Kind    { return sema.KString }
func (*Date) Kind() sema.Kind   { return sema.KDate }
func (*IP) Kind() sema.Kind     { return sema.KIP }
func (*Void) Kind() sema.Kind   { return sema.KVoid }
func (*Enum) Kind() sema.Kind   { return sema.KEnum }
func (*Struct) Kind() sema.Kind { return sema.KStruct }
func (*Union) Kind() sema.Kind  { return sema.KUnion }
func (*Array) Kind() sema.Kind  { return sema.KArray }
func (*Opt) Kind() sema.Kind    { return sema.KOpt }

// NewCommon builds the embedded bookkeeping for a value of the given type.
func NewCommon(typeName string) Common { return Common{Type: typeName} }

// String renders a value compactly for diagnostics and tests.
func String(v Value) string {
	var b strings.Builder
	writeString(&b, v)
	return b.String()
}

func writeString(b *strings.Builder, v Value) {
	switch v := v.(type) {
	case *Uint:
		fmt.Fprintf(b, "%d", v.Val)
	case *Int:
		fmt.Fprintf(b, "%d", v.Val)
	case *Float:
		fmt.Fprintf(b, "%g", v.Val)
	case *Char:
		fmt.Fprintf(b, "%q", rune(v.Val))
	case *Str:
		fmt.Fprintf(b, "%q", v.Val)
	case *Date:
		fmt.Fprintf(b, "date(%d,%q)", v.Sec, v.Raw)
	case *IP:
		b.WriteString(padsrt.FormatIP(v.Val))
	case *Void:
		b.WriteString("void")
	case *Enum:
		if v.Member == "" {
			b.WriteString("<bad-enum>")
		} else {
			b.WriteString(v.Member)
		}
	case *Struct:
		b.WriteString(v.Type)
		b.WriteByte('{')
		for i, n := range v.Names {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(n)
			b.WriteByte('=')
			writeString(b, v.Fields[i])
		}
		b.WriteByte('}')
	case *Union:
		fmt.Fprintf(b, "%s.%s=", v.Type, v.Tag)
		if v.Val != nil {
			writeString(b, v.Val)
		} else {
			b.WriteString("<none>")
		}
	case *Array:
		b.WriteByte('[')
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeString(b, e)
		}
		b.WriteByte(']')
	case *Opt:
		if v.Present {
			b.WriteString("some(")
			writeString(b, v.Val)
			b.WriteByte(')')
		} else {
			b.WriteString("none")
		}
	default:
		b.WriteString("<nil>")
	}
}

// TotalErrors sums the error counts in a value tree's descriptors without
// double counting: a compound descriptor already aggregates its children, so
// the root descriptor's count is authoritative.
func TotalErrors(v Value) uint32 {
	if v == nil {
		return 0
	}
	return v.PD().Nerr
}

// EqualFull reports whether two value trees are indistinguishable: same
// shapes, same data, same type names, and bit-identical parse descriptors
// (state, error count, first error code and location) at every node. The
// bytecode VM is held to this standard against the reference AST walk —
// where the looser Equal tolerates descriptor drift, EqualFull does not.
func EqualFull(a, b Value) bool { return DiffFull(a, b) == "" }

// DiffFull explains the first difference EqualFull would reject, as a dotted
// path with a description, or "" when the trees are indistinguishable.
func DiffFull(a, b Value) string { return diffFull(a, b, "$") }

func diffFull(a, b Value, path string) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return fmt.Sprintf("%s: nil mismatch (%T vs %T)", path, a, b)
	}
	if a.TypeName() != b.TypeName() {
		return fmt.Sprintf("%s: type name %q vs %q", path, a.TypeName(), b.TypeName())
	}
	if apd, bpd := a.PD(), b.PD(); *apd != *bpd {
		return fmt.Sprintf("%s: pd %+v vs %+v", path, *apd, *bpd)
	}
	switch a := a.(type) {
	case *Struct:
		bb, ok := b.(*Struct)
		if !ok || len(a.Fields) != len(bb.Fields) {
			return fmt.Sprintf("%s: struct shape differs", path)
		}
		for i := range a.Fields {
			if a.Names[i] != bb.Names[i] {
				return fmt.Sprintf("%s: field %d named %q vs %q", path, i, a.Names[i], bb.Names[i])
			}
			if d := diffFull(a.Fields[i], bb.Fields[i], path+"."+a.Names[i]); d != "" {
				return d
			}
		}
	case *Union:
		bb, ok := b.(*Union)
		if !ok || a.Tag != bb.Tag || a.TagIdx != bb.TagIdx {
			return fmt.Sprintf("%s: union tag %q/%d vs %q/%d", path, a.Tag, a.TagIdx, bb.Tag, bb.TagIdx)
		}
		if a.Val == nil || bb.Val == nil {
			if a.Val != bb.Val {
				return fmt.Sprintf("%s: union value presence differs", path)
			}
			return ""
		}
		return diffFull(a.Val, bb.Val, path+"."+a.Tag)
	case *Array:
		bb, ok := b.(*Array)
		if !ok || len(a.Elems) != len(bb.Elems) {
			return fmt.Sprintf("%s: array length differs", path)
		}
		for i := range a.Elems {
			if d := diffFull(a.Elems[i], bb.Elems[i], fmt.Sprintf("%s[%d]", path, i)); d != "" {
				return d
			}
		}
	case *Opt:
		bb, ok := b.(*Opt)
		if !ok || a.Present != bb.Present {
			return fmt.Sprintf("%s: opt presence differs", path)
		}
		if a.Present {
			return diffFull(a.Val, bb.Val, path+".val")
		}
	case *Enum:
		bb, ok := b.(*Enum)
		if !ok || a.Member != bb.Member || a.Index != bb.Index {
			return fmt.Sprintf("%s: enum differs", path)
		}
	case *Date:
		bb, ok := b.(*Date)
		if !ok || a.Sec != bb.Sec || a.Raw != bb.Raw {
			return fmt.Sprintf("%s: date differs", path)
		}
	default:
		if !Equal(a, b) {
			return fmt.Sprintf("%s: value %s vs %s", path, String(a), String(b))
		}
	}
	return ""
}

// Equal compares two value trees structurally, ignoring parse descriptors.
// The differential tests use it to confirm the interpreter and the generated
// parsers agree.
func Equal(a, b Value) bool {
	switch a := a.(type) {
	case *Uint:
		bb, ok := b.(*Uint)
		return ok && a.Val == bb.Val
	case *Int:
		bb, ok := b.(*Int)
		return ok && a.Val == bb.Val
	case *Float:
		bb, ok := b.(*Float)
		return ok && a.Val == bb.Val
	case *Char:
		bb, ok := b.(*Char)
		return ok && a.Val == bb.Val
	case *Str:
		bb, ok := b.(*Str)
		return ok && a.Val == bb.Val
	case *Date:
		bb, ok := b.(*Date)
		return ok && a.Sec == bb.Sec
	case *IP:
		bb, ok := b.(*IP)
		return ok && a.Val == bb.Val
	case *Void:
		_, ok := b.(*Void)
		return ok
	case *Enum:
		bb, ok := b.(*Enum)
		return ok && a.Member == bb.Member
	case *Struct:
		bb, ok := b.(*Struct)
		if !ok || len(a.Fields) != len(bb.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Names[i] != bb.Names[i] || !Equal(a.Fields[i], bb.Fields[i]) {
				return false
			}
		}
		return true
	case *Union:
		bb, ok := b.(*Union)
		if !ok || a.Tag != bb.Tag {
			return false
		}
		if a.Val == nil || bb.Val == nil {
			return a.Val == bb.Val
		}
		return Equal(a.Val, bb.Val)
	case *Array:
		bb, ok := b.(*Array)
		if !ok || len(a.Elems) != len(bb.Elems) {
			return false
		}
		for i := range a.Elems {
			if !Equal(a.Elems[i], bb.Elems[i]) {
				return false
			}
		}
		return true
	case *Opt:
		bb, ok := b.(*Opt)
		if !ok || a.Present != bb.Present {
			return false
		}
		return !a.Present || Equal(a.Val, bb.Val)
	}
	return a == nil && b == nil
}
