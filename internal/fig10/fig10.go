// Package fig10 implements the four programs of the paper's performance
// evaluation (section 7, Figure 10) on the PADS side, using the generated
// Sirius parser:
//
//   - PadsVet: check all specified properties, including the event-timestamp
//     sort order, echoing clean and erroneous records to separate outputs
//     (the counterpart of the 323-line Perl vetter).
//   - PadsSelect: with all error checking off, print the order numbers of
//     records that ever pass through a given state (the counterpart of the
//     66-line Perl selector built on the Figure 9 regular expression).
//   - PadsCount: count records (the 81-second PADS baseline vs Perl's 124).
//
// The Perl counterparts live in pads/internal/baseline.
package fig10

import (
	"bufio"
	"io"

	"pads/internal/baseline"
	"pads/internal/gen/sirius"
	"pads/internal/padsrt"
	"pads/internal/parallel"
)

// VetStats aliases the baseline stats type so the two sides report alike.
type VetStats = baseline.VetStats

// SelectStats aliases the baseline stats type.
type SelectStats = baseline.SelectStats

func newSource(r io.Reader) *padsrt.Source {
	return padsrt.NewSource(bufio.NewReaderSize(r, 1<<20))
}

// PadsVet parses every record with full checking (the complete description,
// timestamp sort included), writing clean records to clean and erroneous
// ones to errOut; either writer may be nil to discard.
func PadsVet(r io.Reader, clean, errOut io.Writer) (VetStats, error) {
	return PadsVetSource(newSource(r), clean, errOut)
}

// PadsVetSource is PadsVet over a caller-configured Source, so callers can
// attach telemetry (padsrt.WithStats) — padsbench uses it to report the
// runtime counters of an instrumented vetting pass.
func PadsVetSource(s *padsrt.Source, clean, errOut io.Writer) (VetStats, error) {
	var st VetStats

	var hdr sirius.Summary_header_t
	var hdrPD sirius.Summary_header_tPD
	sirius.ReadSummary_header_t(s, nil, &hdrPD, &hdr)
	var buf []byte
	if clean != nil && hdrPD.PD.Nerr == 0 {
		buf = sirius.WriteSummary_header_t(buf[:0], &hdr)
		clean.Write(buf)
	}

	// Clean records are copied through byte-for-byte (what the task asks
	// for, and what the go-port and Perl vetters do) rather than
	// re-serialized field by field; only erroneous records re-serialize,
	// surfacing the parser's view of what it could salvage.
	s.SetKeepRecords(true)
	var e sirius.Entry_t
	var epd sirius.Entry_tPD
	for s.More() {
		sirius.ReadEntry_t(s, nil, &epd, &e)
		st.Records++
		if epd.PD.Nerr == 0 {
			st.Clean++
			if clean != nil {
				buf = append(buf[:0], s.LastRecord()...)
				buf = append(buf, '\n')
				clean.Write(buf)
			}
		} else {
			st.Errors++
			if errOut != nil {
				buf = sirius.WriteEntry_t(buf[:0], &e)
				errOut.Write(buf)
			}
		}
	}
	return st, s.Err()
}

// selectMask turns off all checking (section 7: "we turn off all error
// checking") and stores only what the query needs — the order number and
// the event states — so the unused fields take the skip paths.
var selectMask = func() *sirius.Entry_tMask {
	m := sirius.NewEntry_tMask(padsrt.Ignore)
	m.Header.Order_num = padsrt.Set
	m.Events.Elem.State = padsrt.Set
	return m
}()

// PadsSelect prints the order numbers of records that pass through state,
// parsing with checking disabled.
func PadsSelect(r io.Reader, w io.Writer, state string) (SelectStats, error) {
	return PadsSelectSource(newSource(r), w, state)
}

// PadsSelectSource is PadsSelect over a caller-configured Source (see
// PadsVetSource).
func PadsSelectSource(s *padsrt.Source, w io.Writer, state string) (SelectStats, error) {
	var st SelectStats

	var hdr sirius.Summary_header_t
	var hdrPD sirius.Summary_header_tPD
	sirius.ReadSummary_header_t(s, selectHdrMask, &hdrPD, &hdr)

	var e sirius.Entry_t
	var epd sirius.Entry_tPD
	var buf []byte
	for s.More() {
		sirius.ReadEntry_t(s, selectMask, &epd, &e)
		st.Records++
		for i := range e.Events.Elems {
			if e.Events.Elems[i].State == state {
				st.Matched++
				if w != nil {
					buf = padsrt.AppendUint(buf[:0], uint64(e.Header.Order_num))
					buf = append(buf, '\n')
					w.Write(buf)
				}
				break
			}
		}
	}
	return st, s.Err()
}

var selectHdrMask = sirius.NewSummary_header_tMask(padsrt.Set)

// PadsVetParallel is PadsVet over an in-memory input, record-sharded
// across workers (internal/parallel). The header parses sequentially; each
// worker vets its chunk with a private parser and buffers its clean and
// erroneous output, which the chunk-ordered merge then writes out — so the
// clean and error streams are byte-identical to PadsVet's for any worker
// count.
func PadsVetParallel(data []byte, clean, errOut io.Writer, workers int) (VetStats, error) {
	s := padsrt.NewBorrowedSource(data)
	var st VetStats

	var hdr sirius.Summary_header_t
	var hdrPD sirius.Summary_header_tPD
	sirius.ReadSummary_header_t(s, nil, &hdrPD, &hdr)
	if clean != nil && hdrPD.PD.Nerr == 0 {
		if _, err := clean.Write(sirius.WriteSummary_header_t(nil, &hdr)); err != nil {
			return st, err
		}
	}
	base := int(s.Pos().Byte)

	type shard struct {
		st         VetStats
		clean, bad []byte
	}
	err := parallel.Run(data[base:],
		parallel.Options{Workers: workers, Off: int64(base), Records: s.RecordNum()},
		func(src *padsrt.Source, c parallel.Chunk) (*shard, error) {
			sh := &shard{}
			src.SetKeepRecords(true) // raw copy-through, as in PadsVetSource
			var e sirius.Entry_t
			var epd sirius.Entry_tPD
			for src.More() {
				sirius.ReadEntry_t(src, nil, &epd, &e)
				sh.st.Records++
				if epd.PD.Nerr == 0 {
					sh.st.Clean++
					if clean != nil {
						sh.clean = append(sh.clean, src.LastRecord()...)
						sh.clean = append(sh.clean, '\n')
					}
				} else {
					sh.st.Errors++
					if errOut != nil {
						sh.bad = sirius.WriteEntry_t(sh.bad, &e)
					}
				}
			}
			return sh, src.Err()
		},
		func(c parallel.Chunk, sh *shard) error {
			st.Records += sh.st.Records
			st.Clean += sh.st.Clean
			st.Errors += sh.st.Errors
			if clean != nil && len(sh.clean) > 0 {
				if _, err := clean.Write(sh.clean); err != nil {
					return err
				}
			}
			if errOut != nil && len(sh.bad) > 0 {
				if _, err := errOut.Write(sh.bad); err != nil {
					return err
				}
			}
			return nil
		})
	return st, err
}

// PadsSelectParallel is PadsSelect over an in-memory input, record-sharded
// across workers; matched order numbers print in record order, identical to
// the sequential output.
func PadsSelectParallel(data []byte, w io.Writer, state string, workers int) (SelectStats, error) {
	s := padsrt.NewBorrowedSource(data)
	var st SelectStats

	var hdr sirius.Summary_header_t
	var hdrPD sirius.Summary_header_tPD
	sirius.ReadSummary_header_t(s, selectHdrMask, &hdrPD, &hdr)
	base := int(s.Pos().Byte)

	type shard struct {
		st  SelectStats
		out []byte
	}
	err := parallel.Run(data[base:],
		parallel.Options{Workers: workers, Off: int64(base), Records: s.RecordNum()},
		func(src *padsrt.Source, c parallel.Chunk) (*shard, error) {
			sh := &shard{}
			var e sirius.Entry_t
			var epd sirius.Entry_tPD
			for src.More() {
				sirius.ReadEntry_t(src, selectMask, &epd, &e)
				sh.st.Records++
				for i := range e.Events.Elems {
					if e.Events.Elems[i].State == state {
						sh.st.Matched++
						if w != nil {
							sh.out = padsrt.AppendUint(sh.out, uint64(e.Header.Order_num))
							sh.out = append(sh.out, '\n')
						}
						break
					}
				}
			}
			return sh, src.Err()
		},
		func(c parallel.Chunk, sh *shard) error {
			st.Records += sh.st.Records
			st.Matched += sh.st.Matched
			if w != nil && len(sh.out) > 0 {
				if _, err := w.Write(sh.out); err != nil {
					return err
				}
			}
			return nil
		})
	return st, err
}

// PadsCountParallel counts records over an in-memory input, sharded across
// workers.
func PadsCountParallel(data []byte, workers int) (int, error) {
	n := 0
	err := parallel.Run(data, parallel.Options{Workers: workers},
		func(src *padsrt.Source, c parallel.Chunk) (int, error) {
			m := 0
			for {
				ok, err := src.BeginRecord()
				if err != nil {
					return m, err
				}
				if !ok {
					return m, nil
				}
				src.SkipToEOR()
				src.EndRecord(nil)
				m++
			}
		},
		func(c parallel.Chunk, m int) error { n += m; return nil })
	return n, err
}

// PadsCount counts records through the PADS record discipline (the trivial
// 81-second program of section 7).
func PadsCount(r io.Reader) (int, error) {
	return PadsCountSource(newSource(r))
}

// PadsCountSource is PadsCount over a caller-configured Source (see
// PadsVetSource).
func PadsCountSource(s *padsrt.Source) (int, error) {
	n := 0
	for {
		ok, err := s.BeginRecord()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		s.SkipToEOR()
		s.EndRecord(nil)
		n++
	}
}
