package fig10

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"pads/internal/baseline"
	"pads/internal/datagen"
)

func corpus(t *testing.T, records, sort_, syntax int) ([]byte, datagen.SiriusStats) {
	t.Helper()
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(records)
	cfg.SortViolations = sort_
	cfg.SyntaxErrors = syntax
	st, err := datagen.Sirius(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st
}

// The two vetters must agree record for record on the injected errors.
func TestVettersAgree(t *testing.T) {
	data, st := corpus(t, 2000, 5, 9)

	pads, err := PadsVet(bytes.NewReader(data), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	perl, err := baseline.SiriusVet(bytes.NewReader(data), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantErrs := st.SortViolations + st.SyntaxErrors
	if pads.Records != 2000 || pads.Errors != wantErrs {
		t.Errorf("pads vet = %+v, want %d errors", pads, wantErrs)
	}
	if perl.Records != 2000 || perl.Errors != wantErrs {
		t.Errorf("perl vet = %+v, want %d errors", perl, wantErrs)
	}
}

// The two selectors must produce the same order numbers.
func TestSelectorsAgree(t *testing.T) {
	data, _ := corpus(t, 1000, 0, 0)
	state := datagen.StateName(3)

	var padsOut, perlOut bytes.Buffer
	ps, err := PadsSelect(bytes.NewReader(data), &padsOut, state)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := baseline.SiriusSelect(bytes.NewReader(data), &perlOut, state)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Matched == 0 {
		t.Fatal("state never occurred; fixture drifted")
	}
	if ps.Matched != bs.Matched {
		t.Errorf("pads matched %d, perl matched %d", ps.Matched, bs.Matched)
	}
	a := strings.Fields(padsOut.String())
	b := strings.Fields(perlOut.String())
	sort.Strings(a)
	sort.Strings(b)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("order-number sets differ:\npads: %v\nperl: %v", a, b)
	}
}

func TestVetOutputsRoundTrip(t *testing.T) {
	data, st := corpus(t, 300, 2, 3)
	var clean, errOut bytes.Buffer
	vst, err := PadsVet(bytes.NewReader(data), &clean, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if vst.Errors != st.SortViolations+st.SyntaxErrors {
		t.Fatalf("vet errors = %d", vst.Errors)
	}
	// The clean file re-vets 100% clean.
	again, err := PadsVet(bytes.NewReader(clean.Bytes()), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Errors != 0 || again.Records != vst.Clean {
		t.Errorf("re-vet of clean output = %+v", again)
	}
}

func TestCountsAgree(t *testing.T) {
	data, _ := corpus(t, 500, 0, 0)
	p, err := PadsCount(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b, err := baseline.CountRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if p != b || p != 501 { // header + 500 records
		t.Errorf("pads count %d, perl count %d, want 501", p, b)
	}
}
