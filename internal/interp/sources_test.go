package interp

import (
	"testing"

	"pads/internal/padsrt"
	"pads/internal/value"
)

// TestNetflowDataDependentCount exercises the Figure 1 netflow shape: a
// binary header whose count field sizes the following array of fixed-width
// flow records.
func TestNetflowDataDependentCount(t *testing.T) {
	in := compileFile(t, "netflow.pads")

	flow := func(data []byte, src, dst uint32) []byte {
		data = padsrt.AppendBUint(data, uint64(src), 4, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, uint64(dst), 4, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 10, 4, padsrt.BigEndian) // packets
		data = padsrt.AppendBUint(data, 4242, 4, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 80, 2, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 443, 2, padsrt.BigEndian)
		data = append(data, 6, 0) // proto, tos
		return data
	}
	packet := func(data []byte, nflows int) []byte {
		data = padsrt.AppendBUint(data, 5, 2, padsrt.BigEndian) // version
		data = padsrt.AppendBUint(data, uint64(nflows), 2, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 123456, 4, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 1005022800, 4, padsrt.BigEndian)
		for i := 0; i < nflows; i++ {
			data = flow(data, 0x0A000001+uint32(i), 0x0A0000FF)
		}
		return data
	}

	var data []byte
	data = packet(data, 3)
	data = packet(data, 1)
	data = packet(data, 0)

	s := padsrt.NewBytesSource(data, padsrt.WithDiscipline(padsrt.NoRecords()))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	stream := v.(*value.Array)
	if stream.PD().Nerr != 0 {
		t.Fatalf("errors: %v (%s)", stream.PD(), value.String(stream))
	}
	if len(stream.Elems) != 3 {
		t.Fatalf("packets = %d", len(stream.Elems))
	}
	counts := []int{3, 1, 0}
	for i, p := range stream.Elems {
		flows := p.(*value.Struct).Field("flows").(*value.Array)
		if len(flows.Elems) != counts[i] {
			t.Errorf("packet %d flows = %d, want %d", i, len(flows.Elems), counts[i])
		}
	}
	f0 := stream.Elems[0].(*value.Struct).Field("flows").(*value.Array).Elems[0].(*value.Struct)
	if f0.Field("srcport").(*value.Uint).Val != 80 || f0.Field("proto").(*value.Uint).Val != 6 {
		t.Errorf("flow 0 = %s", value.String(f0))
	}

	// A bad version violates the header constraint.
	bad := packet(nil, 0)
	bad[1] = 9 // version 5 -> 9 (big-endian low byte)
	s = padsrt.NewBytesSource(bad, padsrt.WithDiscipline(padsrt.NoRecords()))
	v, _ = in.ParseSource(s)
	if v.PD().Nerr == 0 {
		t.Error("bad netflow version not flagged")
	}
}

// TestRegulusMissingValueRepresentations exercises the Figure 1 Regulus
// shape: measurement fields with four representations of "no data".
func TestRegulusMissingValueRepresentations(t *testing.T) {
	in := compileFile(t, "regulus.pads")
	data := "" +
		"1005022800|r1|ge-0/0/0|12345|NONE|0.25\n" +
		"1005022860|r1|ge-0/0/1||Nothing|1.5\n" +
		"1005022920|r2|xe-1/0/0|0|999|0.0\n"
	s := padsrt.NewBytesSource([]byte(data))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if arr.PD().Nerr != 0 {
		t.Fatalf("errors: %v (%s)", arr.PD(), value.String(arr))
	}
	wantIn := []string{"octets", "blank", "octets"}
	wantOut := []string{"missing", "missing", "octets"}
	for i, rec := range arr.Elems {
		st := rec.(*value.Struct)
		if got := st.Field("inOctets").(*value.Union).Tag; got != wantIn[i] {
			t.Errorf("record %d inOctets branch = %s, want %s", i, got, wantIn[i])
		}
		if got := st.Field("outOctets").(*value.Union).Tag; got != wantOut[i] {
			t.Errorf("record %d outOctets branch = %s, want %s", i, got, wantOut[i])
		}
	}
	// The NONE/Nothing members resolve to the right enum literals.
	m0 := arr.Elems[0].(*value.Struct).Field("outOctets").(*value.Union).Val.(*value.Enum)
	if m0.Member != "NONE" {
		t.Errorf("member = %s", m0.Member)
	}
	m1 := arr.Elems[1].(*value.Struct).Field("outOctets").(*value.Union).Val.(*value.Enum)
	if m1.Member != "Nothing" {
		t.Errorf("member = %s", m1.Member)
	}
}

// TestCallDetailBinary exercises the fixed-width binary call-detail shape.
func TestCallDetailBinary(t *testing.T) {
	in := compileFile(t, "calldetail.pads")
	var data []byte
	for i := 0; i < 4; i++ {
		data = padsrt.AppendBUint(data, 9735551212, 8, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 9085551212, 8, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, uint64(1005022800+i), 4, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, uint64(i*3), 2, padsrt.BigEndian)
		data = append(data, byte(i%2), 1)
	}
	s := padsrt.NewBytesSource(data, padsrt.WithDiscipline(padsrt.NoRecords()))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if arr.PD().Nerr != 0 || len(arr.Elems) != 4 {
		t.Fatalf("calls = %s pd=%v", value.String(arr), arr.PD())
	}
	c0 := arr.Elems[0].(*value.Struct)
	if c0.Field("caller").(*value.Uint).Val != 9735551212 {
		t.Errorf("caller = %s", value.String(c0.Field("caller")))
	}
}
