package interp

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"unicode/utf8"

	"pads/internal/padsrt"
	"pads/internal/value"
)

// Policy is the error-budget and degradation policy applied to a record
// scan (docs/ROBUSTNESS.md): how many damaged records a run tolerates
// before aborting, and where unparseable raw records are dead-lettered for
// offline triage. PADS parsing itself never dies on bad data — every error
// lands in a parse descriptor — so without a Policy a scan processes
// everything; a Policy lets an operator bound how much damage a production
// run silently absorbs.
//
// A Policy is stateless and read-only once a scan starts; counters live in
// the reader (or, for parallel runs, in the chunk-ordered merge), so one
// Policy may serve many scans.
type Policy struct {
	// MaxErrors aborts the scan once this many records carried parse
	// errors (0 = unlimited).
	MaxErrors int
	// MaxErrorRate aborts the scan once errored/records exceeds this
	// fraction (0 = disabled). The rate is only consulted after RateMin
	// records so small prefixes cannot trip it.
	MaxErrorRate float64
	// RateMin is the minimum record count before MaxErrorRate applies
	// (default 100).
	RateMin int
	// FailFast aborts on the first errored record.
	FailFast bool
	// Sink, when non-nil, receives a dead-letter entry for every errored
	// record. *Quarantine writes entries through to a file; *Batch
	// collects them in memory (the parallel engine gives each chunk a
	// Batch and flushes them in chunk order, keeping output deterministic
	// at any worker count).
	Sink Recorder
}

// rateMin returns the effective rate floor.
func (p *Policy) rateMin() int {
	if p.RateMin > 0 {
		return p.RateMin
	}
	return 100
}

// Check evaluates the budget against cumulative counts, returning a
// *BudgetError when the scan should abort and nil otherwise. It is pure:
// callers (sequential readers, the parallel merge loop) own the counts.
func (p *Policy) Check(records, errored int) error {
	if p == nil || errored == 0 {
		return nil
	}
	switch {
	case p.FailFast:
		return &BudgetError{Records: records, Errored: errored, Reason: "fail-fast: first parse error"}
	case p.MaxErrors > 0 && errored >= p.MaxErrors:
		return &BudgetError{Records: records, Errored: errored,
			Reason: fmt.Sprintf("max-errors budget (%d) exhausted", p.MaxErrors)}
	case p.MaxErrorRate > 0 && records >= p.rateMin() &&
		float64(errored)/float64(records) > p.MaxErrorRate:
		return &BudgetError{Records: records, Errored: errored,
			Reason: fmt.Sprintf("error rate %.4f exceeds budget %.4f", float64(errored)/float64(records), p.MaxErrorRate)}
	}
	return nil
}

// Active reports whether the policy does anything at all.
func (p *Policy) Active() bool {
	return p != nil && (p.MaxErrors > 0 || p.MaxErrorRate > 0 || p.FailFast || p.Sink != nil)
}

// BudgetError reports a scan aborted by its error budget. Tools exit with
// a distinct status (3) on it so pipelines can tell "data over budget"
// from hard failures.
type BudgetError struct {
	Records int // records scanned when the budget tripped
	Errored int // of those, records with parse errors
	Reason  string
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("error budget exceeded after %d records (%d with errors): %s", e.Records, e.Errored, e.Reason)
}

// Entry is one dead-lettered record: enough context (absolute offset,
// record number, first error) to triage offline and re-parse the raw bytes
// once the description or the feed is fixed. Raw holds the record body
// when it is valid UTF-8; binary bodies go to RawB64 instead.
type Entry struct {
	Record int    `json:"record"`           // 1-based record number
	Offset int64  `json:"offset"`           // absolute byte offset of the record body
	Err    string `json:"err"`              // first error code, human-readable
	Nerr   uint32 `json:"nerr"`             // total errors inside the record
	Loc    string `json:"loc,omitempty"`    // first error location (record:col(@byte) span)
	Raw    string `json:"raw,omitempty"`    // record body (UTF-8)
	RawB64 string `json:"rawb64,omitempty"` // record body (base64, when not UTF-8)
}

// setRaw stores body in the UTF-8 or base64 field as appropriate.
func (e *Entry) setRaw(body []byte) {
	if len(body) == 0 {
		return
	}
	if utf8.Valid(body) {
		e.Raw = string(body)
	} else {
		e.RawB64 = base64.StdEncoding.EncodeToString(body)
	}
}

// Recorder is a dead-letter sink.
type Recorder interface {
	// Quarantine records one dead-lettered record.
	Quarantine(e Entry)
}

// Quarantine is the write-through Recorder: one JSONL line per entry. It
// is safe for concurrent use, but parallel scans should prefer per-chunk
// Batches flushed in chunk order so the file is deterministic.
type Quarantine struct {
	mu  sync.Mutex
	w   io.Writer
	n   uint64
	err error // first write error; later entries still count
}

// NewQuarantine builds a dead-letter sink writing JSONL to w.
func NewQuarantine(w io.Writer) *Quarantine { return &Quarantine{w: w} }

// Quarantine implements Recorder.
func (q *Quarantine) Quarantine(e Entry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
	if q.err != nil {
		return
	}
	b, err := json.Marshal(&e)
	if err == nil {
		b = append(b, '\n')
		_, err = q.w.Write(b)
	}
	if err != nil {
		q.err = err
	}
}

// Count reports how many records were quarantined (attempted writes
// included, so counts stay deterministic even if the sink's disk fills).
func (q *Quarantine) Count() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Err reports the first write error, if any.
func (q *Quarantine) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Batch is the buffering Recorder used by parallel chunk workers: entries
// accumulate in memory and flush into the real sink in chunk order.
type Batch struct {
	Entries []Entry
}

// Quarantine implements Recorder.
func (b *Batch) Quarantine(e Entry) { b.Entries = append(b.Entries, e) }

// FlushTo hands the batch to the final sink, in order, and empties it.
func (b *Batch) FlushTo(r Recorder) {
	if r == nil {
		b.Entries = nil
		return
	}
	for _, e := range b.Entries {
		r.Quarantine(e)
	}
	b.Entries = nil
}

// entryFor assembles the dead-letter entry for an errored record value.
func entryFor(v value.Value, raw []byte) Entry {
	pd := v.PD()
	e := Entry{
		Record: pd.Loc.Begin.Record,
		Offset: pd.Loc.Begin.Byte,
		Err:    pd.ErrCode.String(),
		Nerr:   pd.Nerr,
		Loc:    pd.Loc.String(),
	}
	e.setRaw(raw)
	return e
}

var _ = padsrt.ErrNone // policy sits beside the reader; keep the import set stable
