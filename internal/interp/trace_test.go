package interp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pads/internal/padsrt"
	"pads/internal/telemetry"
	"pads/internal/value"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files")

// traceSrc is a deliberately small Pstruct/Punion description whose parse
// exercises every trace event kind: field enter/exit, union branch
// attempt/backtrack/select, record boundaries, and errors with loci.
const traceSrc = `
Punion num_t {
  Pip ip;
  Puint32 n;
};
Precord Pstruct r_t {
  num_t v;
  ' ';
  Puint32 k;
};
Psource Parray rs_t { r_t[]; };
`

// traceData drives three distinct union outcomes: record 1 selects the ip
// branch on the first attempt, record 2 backtracks off ip onto n, and
// record 3 matches no branch at all.
const traceData = "127.0.0.1 7\n42 9\nxyz 1\n"

// TestTraceGolden parses the three-record input with a streaming Tracer
// attached and compares the JSONL event stream — kinds, names, branches,
// byte offsets, record numbers, error codes — against the committed golden
// file. Regenerate with: go test ./internal/interp -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	in := compile(t, traceSrc)
	var buf bytes.Buffer
	in.Tracer = telemetry.NewTracer(&buf)
	s := padsrt.NewBytesSource([]byte(traceData))
	if _, err := in.ParseSource(s); err != nil {
		t.Fatal(err)
	}
	if err := in.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("..", "..", "testdata", "trace.golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace diverges from golden file:\n--- got\n%s--- want\n%s", buf.Bytes(), want)
	}
}

// TestTraceStats checks the aggregate observers over the same parse: the
// union branch-selection histogram and the per-field-path error tallies must
// reflect exactly the three outcomes the input script stages.
func TestTraceStats(t *testing.T) {
	in := compile(t, traceSrc)
	in.Stats = telemetry.NewStats()
	s := padsrt.NewBytesSource([]byte(traceData))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if len(arr.Elems) != 3 {
		t.Fatalf("records = %d, want 3", len(arr.Elems))
	}

	wantChoices := map[string]uint64{
		"num_t.ip":     1,
		"num_t.n":      1,
		"num_t.<none>": 1,
	}
	for k, want := range wantChoices {
		if got := in.Stats.UnionChoices[k]; got != want {
			t.Errorf("UnionChoices[%q] = %d, want %d", k, got, want)
		}
	}
	if len(in.Stats.UnionChoices) != len(wantChoices) {
		t.Errorf("UnionChoices = %v, want exactly %v", in.Stats.UnionChoices, wantChoices)
	}
	// Only record 3 errs, and the first error is the unmatched union under
	// field v.
	if got := in.Stats.FieldErrors["v"]; got != 1 {
		t.Errorf(`FieldErrors["v"] = %d, want 1`, got)
	}
}

// TestTraceRingBounded runs the same parse through a bounded ring tracer and
// checks that only the newest events survive, in order — the mode that makes
// tracing safe on inputs too large to stream to disk.
func TestTraceRingBounded(t *testing.T) {
	in := compile(t, traceSrc)
	full := compile(t, traceSrc)

	var stream bytes.Buffer
	full.Tracer = telemetry.NewTracer(&stream)
	if _, err := full.ParseSource(padsrt.NewBytesSource([]byte(traceData))); err != nil {
		t.Fatal(err)
	}
	full.Tracer.Flush()
	allLines := bytes.Split(bytes.TrimSuffix(stream.Bytes(), []byte("\n")), []byte("\n"))

	const keep = 5
	ring := telemetry.NewRingTracer(keep)
	in.Tracer = ring
	if _, err := in.ParseSource(padsrt.NewBytesSource([]byte(traceData))); err != nil {
		t.Fatal(err)
	}
	if got := ring.Emitted(); got != uint64(len(allLines)) {
		t.Fatalf("ring Emitted() = %d, want %d (every event counted)", got, len(allLines))
	}
	var tail bytes.Buffer
	if err := ring.WriteJSONL(&tail); err != nil {
		t.Fatal(err)
	}
	tailLines := bytes.Split(bytes.TrimSuffix(tail.Bytes(), []byte("\n")), []byte("\n"))
	if len(tailLines) != keep {
		t.Fatalf("ring retained %d events, want %d", len(tailLines), keep)
	}
	for i, line := range tailLines {
		if want := allLines[len(allLines)-keep+i]; !bytes.Equal(line, want) {
			t.Errorf("ring tail[%d] = %s, want %s", i, line, want)
		}
	}
}
