package interp

import (
	"pads/internal/dsl"
	"pads/internal/expr"
	"pads/internal/ir"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/telemetry"
	"pads/internal/value"
)

// The bytecode VM executes the flat IR program lowered from the checked
// description (internal/ir) instead of re-walking the AST per record: base
// reads dispatch on precompiled ReadOps, literals come from the matcher
// pool, enum members are pre-sorted longest-first, and speculative union
// branches are pre-screened through table-driven first-byte classes. Every
// contract of the reference walk is preserved bit-for-bit: parse
// descriptors, error codes, record resynchronization, telemetry counters,
// trace events, and profiler node attribution. The reference AST walk stays
// available via NewAST and is differentially tested against the VM (the
// three-way conformance suite in vm_test.go and FuzzVMAgainstInterp).

// Program returns the lowered IR program the interpreter executes, or nil
// when it runs the reference AST walk.
func (in *Interp) Program() *ir.Program { return in.prog }

// parse routes one declaration parse through the VM when a lowered program
// is attached, falling back to the reference AST walk.
func (in *Interp) parse(d dsl.Decl, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	if p := in.prog; p != nil {
		if id, ok := p.DeclByName(d.DeclName()); ok {
			return in.execDecl(id, s, mask, args)
		}
	}
	return in.parseDecl(d, s, mask, args)
}

// execDecl parses one value of a lowered declaration, opening and closing a
// record window for Precord types with the same panic-mode recovery as the
// reference walk.
func (in *Interp) execDecl(decl ir.DeclID, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	p := in.prog
	di := &p.Decls[decl]
	root := di.Root
	n := &p.Nodes[root]
	if n.Flags&ir.FRecord != 0 && !s.InRecord() {
		ok, err := s.BeginRecord()
		if err != nil {
			v := &value.Void{Common: value.NewCommon(di.Name)}
			v.PD().SetError(padsrt.ErrIO, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
			return v
		}
		if !ok {
			v := &value.Void{Common: value.NewCommon(di.Name)}
			v.PD().SetError(padsrt.ErrAtEOF, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
			return v
		}
		recBegin := s.Pos()
		if in.Prof != nil {
			in.Prof.BeginRecord(di.Name, recBegin.Byte)
		}
		in.trace(telemetry.EvRecordBegin, di.Name, s)
		v := in.execBody(root, s, mask, args, di)
		pd := v.PD()
		if s.RecordTruncated() {
			pd.SetError(padsrt.ErrRecordTooLong, padsrt.Loc{Begin: recBegin, End: s.Pos()})
		}
		if pd.Nerr > 0 && !s.AtEOR() {
			begin := s.Pos()
			if skipped := s.SkipToEOR(); skipped > 0 {
				pd.State = padsrt.Panicking
				pd.Nerr++
				in.traceSpan(telemetry.EvError, di.Name, "", begin, s, padsrt.ErrPanicSkipped)
			}
		}
		s.EndRecord(pd)
		if in.Prof != nil {
			in.Prof.EndRecord(s.Pos().Byte, pd.Nerr > 0)
		}
		in.traceSpan(telemetry.EvRecordEnd, di.Name, "", recBegin, s, pd.ErrCode)
		return v
	}
	return in.execBody(root, s, mask, args, di)
}

// execBody parses the body of a declaration node. Environments are built
// only for declarations that evaluate expressions (ir.FNeedEnv); everything
// else skips the map allocation and per-field binds entirely.
func (in *Interp) execBody(id ir.NodeID, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V, di *ir.DeclInfo) value.Value {
	p := in.prog
	n := &p.Nodes[id]
	var env *expr.Env
	if n.Flags&ir.FNeedEnv != 0 {
		env = in.bindParams(di.Params, args)
	}
	switch n.Op {
	case ir.OpStruct:
		return in.execStruct(n, s, mask, env)
	case ir.OpUnion:
		return in.execUnion(n, s, mask, env)
	case ir.OpSwitch:
		return in.execSwitch(n, s, mask, env)
	case ir.OpArray:
		return in.execArray(n, s, mask, env)
	case ir.OpEnum:
		return in.execEnum(n, s)
	case ir.OpTypedef:
		return in.execTypedef(n, s, mask, env)
	}
	v := &value.Void{Common: value.NewCommon(di.Name)}
	v.PD().SetError(padsrt.ErrInternal, padsrt.Loc{})
	return v
}

// matchLit matches a pooled literal.
func (in *Interp) matchLit(l *ir.Lit, s *padsrt.Source) padsrt.ErrCode {
	switch l.Kind {
	case dsl.CharLit:
		return padsrt.MatchChar(s, l.Char)
	case dsl.StrLit:
		return padsrt.MatchString(s, l.Str)
	case dsl.RegexpLit:
		return padsrt.MatchRegexp(s, l.Re)
	case dsl.EORLit:
		return padsrt.MatchEOR(s)
	}
	return padsrt.MatchEOF(s)
}

// execRef parses a type-reference node (OpOpt, OpBase, or OpCall).
func (in *Interp) execRef(id ir.NodeID, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	p := in.prog
	n := &p.Nodes[id]
	switch n.Op {
	case ir.OpBase:
		return in.execBase(&p.Bases[n.A], s, mask, env)
	case ir.OpCall:
		var args []expr.V
		if n.B != ir.None {
			list := p.Cases[n.B]
			args = make([]expr.V, 0, len(list))
			for _, eid := range list {
				av, err := in.Ev.Eval(p.Exprs[eid], env)
				if err != nil {
					v := &value.Void{Common: value.NewCommon(n.Name)}
					v.PD().SetError(padsrt.ErrBadParam, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
					return v
				}
				args = append(args, av)
			}
		}
		return in.execDecl(n.A, s, mask, args)
	case ir.OpOpt:
		child := n.A
		opt := &value.Opt{Common: value.NewCommon("Popt " + n.Name)}
		// Trial protection by tier (the generated code makes the same
		// moves): an atomic inner type consumes nothing on failure, so the
		// trial needs no checkpoint; a rewindable one consumes only by
		// advancing the cursor in-record, so a Mark/Rewind pair suffices;
		// everything else pays a full checkpoint.
		flags := p.Nodes[child].Flags
		atomic := flags&ir.FAtomic != 0
		rewind := flags&ir.FRewind != 0
		var mark int
		switch {
		case atomic:
		case rewind:
			mark = s.Mark()
		default:
			s.Checkpoint()
		}
		v := in.execRef(child, s, mask, env)
		if v.PD().Nerr == 0 {
			if !atomic && !rewind {
				s.Commit()
			}
			opt.Present = true
			opt.Val = v
			return opt
		}
		switch {
		case atomic:
		case rewind:
			s.Rewind(mark)
		default:
			s.Restore()
		}
		opt.Present = false
		return opt
	}
	v := &value.Void{Common: value.NewCommon(n.Name)}
	v.PD().SetError(padsrt.ErrInternal, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
	return v
}

func (in *Interp) execStruct(n *ir.Node, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	p := in.prog
	st := &value.Struct{Common: value.NewCommon(n.Name)}
	if n.D > 0 {
		st.Names = make([]string, 0, n.D)
		st.Fields = make([]value.Value, 0, n.D)
	}
	pd := st.PD()
	for _, kid := range p.KidsOf(n) {
		k := &p.Nodes[kid]
		if k.Op == ir.OpLit {
			begin := s.Pos()
			if code := in.matchLit(&p.Lits[k.A], s); code != padsrt.ErrNone {
				pd.SetError(code, s.LocFrom(begin))
				if pd.State == padsrt.Normal {
					pd.State = padsrt.Partial
				}
				in.traceSpan(telemetry.EvError, n.Name, "", begin, s, code)
			}
			continue
		}
		fmask := mask.Field(k.Name)
		var fieldPath string
		var fieldBegin padsrt.Pos
		if in.observing() {
			in.path = append(in.path, k.Name)
			fieldPath = in.pathString()
			fieldBegin = s.Pos()
			in.trace(telemetry.EvFieldEnter, fieldPath, s)
		}
		profOpen := in.Prof.Sampling()
		if profOpen {
			in.Prof.Enter(k.Name, s.Pos().Byte)
		}
		fv := in.execRef(k.A, s, fmask, env)
		if k.B != ir.None && fmask.BaseMask().DoCheck() && fv.PD().Nerr == 0 {
			fe := expr.NewEnv(env)
			fe.Bind(k.Name, expr.FromValue(fv))
			ok, _ := in.Ev.EvalPred(p.Exprs[k.B], fe)
			if !ok {
				fv.PD().SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
			}
		}
		if profOpen {
			in.Prof.Exit(s.Pos().Byte, fv.PD().Nerr > 0)
		}
		if in.observing() {
			if fpd := fv.PD(); fpd.Nerr > 0 {
				if in.Stats != nil {
					in.Stats.FieldError(fieldPath)
				}
				in.traceSpan(telemetry.EvFieldExit, fieldPath, "", fieldBegin, s, fpd.ErrCode)
			} else {
				in.traceSpan(telemetry.EvFieldExit, fieldPath, "", fieldBegin, s, padsrt.ErrNone)
			}
			in.path = in.path[:len(in.path)-1]
		}
		pd.AddChildErrors(fv.PD(), padsrt.ErrStructField)
		st.Names = append(st.Names, k.Name)
		st.Fields = append(st.Fields, fv)
		if env != nil {
			env.Bind(k.Name, expr.FromValue(fv))
		}
	}
	if n.C != ir.None && mask.CompoundMask().DoCheck() {
		ok, _ := in.Ev.EvalPred(p.Exprs[n.C], env)
		if !ok {
			pd.SetError(padsrt.ErrWhere, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
		}
	}
	return st
}

// execBranch parses one union branch or switch case (an OpField node) with
// its constraint, which always runs when checking is on: constraints decide
// which branch matches.
func (in *Interp) execBranch(k *ir.Node, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	p := in.prog
	fmask := mask.Field(k.Name)
	bv := in.execRef(k.A, s, fmask, env)
	if k.B != ir.None && bv.PD().Nerr == 0 && fmask.BaseMask().DoCheck() {
		fe := expr.NewEnv(env)
		fe.Bind(k.Name, expr.FromValue(bv))
		ok, _ := in.Ev.EvalPred(p.Exprs[k.B], fe)
		if !ok {
			bv.PD().SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
		}
	}
	return bv
}

func (in *Interp) execUnion(n *ir.Node, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	p := in.prog
	un := &value.Union{Common: value.NewCommon(n.Name)}
	pd := un.PD()
	begin := s.Pos()

	// First-byte screening is a pure strength reduction — a skipped branch
	// is one whose trial parse provably fails — but it elides the
	// checkpoint/attempt activity observability contracts describe, so it
	// only arms when nothing is watching and no speculation limits could
	// make the elided checkpoints observable.
	screen := in.Tracer == nil && in.Stats == nil && in.Prof == nil &&
		s.Stats() == nil && s.Prof() == nil && !s.SpecLimited()
	var next byte
	var haveNext bool
	if screen {
		next, haveNext = s.PeekByte()
	}

	for i, kid := range p.KidsOf(n) {
		k := &p.Nodes[kid]
		if screen && k.D != ir.None && (!p.ClassASCII[k.D] || s.Coding() == padsrt.ASCII) {
			if !haveNext || !p.Classes[k.D].Has(next) {
				continue // no byte this branch could start from
			}
		}
		flags := p.Nodes[k.A].Flags
		atomic := flags&ir.FAtomic != 0 && k.B == ir.None
		rewind := flags&ir.FRewind != 0 && k.B == ir.None
		var mark int
		switch {
		case atomic:
		case rewind:
			mark = s.Mark()
		default:
			s.Checkpoint()
		}
		if in.Tracer != nil {
			in.Tracer.Emit(telemetry.Event{
				Ev: telemetry.EvBranchAttempt, Name: n.Name, Branch: k.Name,
				Off: begin.Byte, Rec: begin.Record,
			})
		}
		profOpen := in.Prof.Sampling()
		if profOpen {
			in.Prof.Enter(k.Name, s.Pos().Byte)
		}
		bv := in.execBranch(k, s, mask, env)
		if bv.PD().Nerr == 0 {
			if !atomic && !rewind {
				s.Commit()
			}
			if profOpen {
				in.Prof.Exit(s.Pos().Byte, false)
			}
			un.Tag = k.Name
			un.TagIdx = i
			un.Val = bv
			if in.Stats != nil {
				in.Stats.UnionChoice(n.Name, k.Name)
			}
			in.traceSpan(telemetry.EvBranchSelect, n.Name, k.Name, begin, s, padsrt.ErrNone)
			return un
		}
		if profOpen {
			in.Prof.ExitSpeculative(s.Pos().Byte)
		}
		in.traceSpan(telemetry.EvBranchBacktrack, n.Name, k.Name, begin, s, bv.PD().ErrCode)
		switch {
		case atomic:
		case rewind:
			s.Rewind(mark)
		default:
			s.Restore()
		}
	}
	pd.SetError(padsrt.ErrUnionMatch, padsrt.Loc{Begin: begin, End: s.Pos()})
	if in.Stats != nil {
		in.Stats.UnionChoice(n.Name, noBranch)
	}
	in.traceSpan(telemetry.EvError, n.Name, "", begin, s, padsrt.ErrUnionMatch)
	return un
}

func (in *Interp) execSwitch(n *ir.Node, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	p := in.prog
	un := &value.Union{Common: value.NewCommon(n.Name)}
	pd := un.PD()
	begin := s.Pos()

	sel, err := in.Ev.Eval(p.Exprs[n.C], env)
	if err != nil {
		pd.SetError(padsrt.ErrBadParam, padsrt.Loc{Begin: begin, End: begin})
		return un
	}
	kids := p.KidsOf(n)
	var chosen *ir.Node
	for _, kid := range kids {
		k := &p.Nodes[kid]
		if k.D == ir.None {
			continue // Pdefault; only taken when no value matches
		}
		for _, eid := range p.Cases[k.D] {
			vv, err := in.Ev.Eval(p.Exprs[eid], env)
			if err == nil && expr.EqualV(sel, vv) {
				chosen = k
				break
			}
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil && n.D != ir.None {
		chosen = &p.Nodes[kids[n.D]]
	}
	if chosen == nil {
		pd.SetError(padsrt.ErrUnionTag, padsrt.Loc{Begin: begin, End: begin})
		if in.Stats != nil {
			in.Stats.UnionChoice(n.Name, noBranch)
		}
		in.traceSpan(telemetry.EvError, n.Name, "", begin, s, padsrt.ErrUnionTag)
		return un
	}
	profOpen := in.Prof.Sampling()
	if profOpen {
		in.Prof.Enter(chosen.Name, s.Pos().Byte)
	}
	bv := in.execBranch(chosen, s, mask, env)
	if profOpen {
		in.Prof.Exit(s.Pos().Byte, bv.PD().Nerr > 0)
	}
	un.Tag = chosen.Name
	un.Val = bv
	pd.AddChildErrors(bv.PD(), padsrt.ErrStructField)
	if in.Stats != nil {
		in.Stats.UnionChoice(n.Name, chosen.Name)
	}
	in.traceSpan(telemetry.EvBranchSelect, n.Name, chosen.Name, begin, s, bv.PD().ErrCode)
	return un
}

func (in *Interp) execArray(n *ir.Node, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	p := in.prog
	spec := &p.Arrays[n.A]
	arr := &value.Array{Common: value.NewCommon(n.Name)}
	pd := arr.PD()
	begin := s.Pos()

	var minSize, maxSize int64 = -1, -1
	if spec.HasMin {
		if spec.MinSize.IsConst {
			minSize = spec.MinSize.Const
		} else if v, err := in.Ev.Eval(p.Exprs[spec.MinSize.Expr], env); err == nil {
			minSize, _ = expr.ToInt(v)
		}
	}
	if spec.HasMax {
		if spec.MaxSize.IsConst {
			maxSize = spec.MaxSize.Const
		} else if v, err := in.Ev.Eval(p.Exprs[spec.MaxSize.Expr], env); err == nil {
			maxSize, _ = expr.ToInt(v)
		}
	}

	elemMask := mask.ElemMask()
	bindSeqEnv := func() *expr.Env {
		e := expr.NewEnv(env)
		e.Bind("elts", expr.FromValue(arr))
		e.Bind("length", expr.Int(int64(len(arr.Elems))))
		return e
	}

	for {
		if maxSize >= 0 && int64(len(arr.Elems)) >= maxSize {
			break
		}
		if spec.EndedPred != ir.None {
			if ok, _ := in.Ev.EvalPred(p.Exprs[spec.EndedPred], bindSeqEnv()); ok {
				break
			}
		}
		switch {
		case spec.TermEOR:
			if s.AtEOR() {
				goto done
			}
		case spec.TermEOF:
			if s.AtEOF() {
				goto done
			}
		case spec.Term != ir.None:
			// A literal terminator is consumed by the array. Char and
			// string matchers consume nothing on failure, so only regexp
			// terminators need the checkpoint.
			lit := &p.Lits[spec.Term]
			if lit.Kind == dsl.RegexpLit {
				s.Checkpoint()
				if in.matchLit(lit, s) == padsrt.ErrNone {
					s.Commit()
					goto done
				}
				s.Restore()
			} else if in.matchLit(lit, s) == padsrt.ErrNone {
				goto done
			}
		}
		if spec.ElemIsRecord && !s.InRecord() {
			if !s.More() {
				break
			}
		} else if s.AtEOR() || (!s.InRecord() && s.AtEOF()) {
			break
		}
		{
			iterBegin := s.Pos()
			if len(arr.Elems) > 0 && spec.Sep != ir.None {
				sepBegin := s.Pos()
				if code := in.matchLit(&p.Lits[spec.Sep], s); code != padsrt.ErrNone {
					pd.SetError(padsrt.ErrArraySep, s.LocFrom(sepBegin))
					break
				}
			}
			posBefore := s.Pos()
			profOpen := in.Prof.Sampling()
			if profOpen {
				in.Prof.Enter("[]", posBefore.Byte)
			}
			ev := in.execRef(n.B, s, elemMask, env)
			if profOpen {
				in.Prof.Exit(s.Pos().Byte, ev.PD().Nerr > 0)
			}
			if ev.PD().Nerr > 0 {
				pd.AddChildErrors(ev.PD(), padsrt.ErrArrayElem)
				arr.Elems = append(arr.Elems, ev)
				if s.Pos() == posBefore {
					break // no progress: stop rather than loop forever
				}
			} else {
				arr.Elems = append(arr.Elems, ev)
				if maxSize < 0 && s.Pos() == iterBegin {
					// A clean zero-width element in an unbounded array
					// would repeat forever.
					break
				}
			}
			if spec.LastPred != ir.None {
				e := bindSeqEnv()
				e.Bind("elt", expr.FromValue(ev))
				if ok, _ := in.Ev.EvalPred(p.Exprs[spec.LastPred], e); ok {
					break
				}
			}
		}
	}
done:

	if minSize >= 0 && int64(len(arr.Elems)) < minSize && mask.CompoundMask().DoCheck() {
		pd.SetError(padsrt.ErrArraySize, s.LocFrom(begin))
	}
	if spec.Where != ir.None && mask.CompoundMask().DoCheck() {
		ok, _ := in.Ev.EvalPred(p.Exprs[spec.Where], bindSeqEnv())
		if !ok {
			pd.SetError(padsrt.ErrWhere, s.LocFrom(begin))
		}
	}
	return arr
}

func (in *Interp) execEnum(n *ir.Node, s *padsrt.Source) value.Value {
	p := in.prog
	spec := &p.Enums[n.A]
	en := &value.Enum{Common: value.NewCommon(n.Name), Index: -1}
	begin := s.Pos()
	// Alts are pre-sorted longest-repr first: the first match is what the
	// reference walk's best-match scan would pick.
	w := s.Peek(spec.MaxLen)
	for i := range spec.Alts {
		a := &spec.Alts[i]
		if len(w) >= len(a.Repr) && string(w[:len(a.Repr)]) == a.Repr {
			s.Skip(len(a.Repr))
			en.Member = a.Name
			en.Index = a.Index
			return en
		}
	}
	en.PD().SetError(padsrt.ErrInvalidEnum, padsrt.Loc{Begin: begin, End: begin})
	return en
}

func (in *Interp) execTypedef(n *ir.Node, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	p := in.prog
	v := in.execRef(n.A, s, mask, env)
	if n.B != ir.None && mask.BaseMask().DoCheck() && v.PD().Nerr == 0 {
		ce := expr.NewEnv(env)
		ce.Bind(n.Name, expr.FromValue(v))
		ok, _ := in.Ev.EvalPred(p.Exprs[n.B], ce)
		if !ok {
			v.PD().SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
		}
	}
	return v
}

// execBase parses one base value from its resolved spec: no registry lookup,
// no argument re-resolution when the description supplied constants.
func (in *Interp) execBase(b *ir.BaseSpec, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	begin := s.Pos()
	name := b.Info.Name
	fail := func(v value.Value, code padsrt.ErrCode) value.Value {
		v.PD().SetError(code, s.LocFrom(begin))
		return v
	}
	// Argument resolution, folded at lowering time when constant.
	intArg := func(a ir.Arg) (int64, padsrt.ErrCode) {
		if a.IsConst {
			if a.Const < 0 {
				return 0, padsrt.ErrBadParam
			}
			return a.Const, padsrt.ErrNone
		}
		v, err := in.Ev.Eval(in.prog.Exprs[a.Expr], env)
		if err != nil {
			return 0, padsrt.ErrBadParam
		}
		n, err := expr.ToInt(v)
		if err != nil || n < 0 {
			return 0, padsrt.ErrBadParam
		}
		return n, padsrt.ErrNone
	}
	charArg := func(a ir.Arg) (byte, padsrt.ErrCode) {
		if a.IsConst {
			return byte(a.Const), padsrt.ErrNone
		}
		v, err := in.Ev.Eval(in.prog.Exprs[a.Expr], env)
		if err != nil || v.K != sema.KChar {
			return 0, padsrt.ErrBadParam
		}
		return byte(v.I), padsrt.ErrNone
	}

	switch b.Read {
	case ir.RChar, ir.RAChar, ir.REChar, ir.RBChar:
		v := &value.Char{Common: value.NewCommon(name)}
		if b.BadParam {
			return fail(v, padsrt.ErrBadParam)
		}
		var c byte
		var code padsrt.ErrCode
		switch b.Read {
		case ir.RAChar:
			c, code = padsrt.ReadAChar(s)
		case ir.REChar:
			c, code = padsrt.ReadEChar(s)
		case ir.RBChar:
			c, code = padsrt.ReadBChar(s)
		default:
			c, code = padsrt.ReadChar(s)
		}
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = c
		return v

	case ir.RUint, ir.RAUint, ir.REUint, ir.RBUint, ir.RUintFW, ir.RAUintFW:
		v := &value.Uint{Common: value.NewCommon(name), Bits: b.Bits}
		if b.BadParam {
			return fail(v, padsrt.ErrBadParam)
		}
		var u uint64
		var code padsrt.ErrCode
		switch b.Read {
		case ir.RAUint:
			u, code = padsrt.ReadAUint(s, b.Bits)
		case ir.REUint:
			u, code = padsrt.ReadEUint(s, b.Bits)
		case ir.RBUint:
			u, code = padsrt.ReadBUint(s, b.Bits/8)
		case ir.RUintFW, ir.RAUintFW:
			w, c := intArg(b.Width)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			if b.Read == ir.RAUintFW {
				u, code = padsrt.ReadAUintFW(s, int(w), b.Bits)
			} else {
				u, code = padsrt.ReadUintFW(s, int(w), b.Bits)
			}
		default:
			u, code = padsrt.ReadUint(s, b.Bits)
		}
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = u
		return v

	case ir.RInt, ir.RAInt, ir.REInt, ir.RBInt, ir.RAIntFW, ir.RBCD, ir.RZoned:
		v := &value.Int{Common: value.NewCommon(name), Bits: b.Bits}
		if b.BadParam {
			return fail(v, padsrt.ErrBadParam)
		}
		var i int64
		var code padsrt.ErrCode
		switch b.Read {
		case ir.RAInt:
			i, code = padsrt.ReadAInt(s, b.Bits)
		case ir.REInt:
			i, code = padsrt.ReadEInt(s, b.Bits)
		case ir.RBInt:
			i, code = padsrt.ReadBInt(s, b.Bits/8)
		case ir.RBCD, ir.RZoned, ir.RAIntFW:
			w, c := intArg(b.Width)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			switch b.Read {
			case ir.RBCD:
				i, code = padsrt.ReadBCD(s, int(w))
			case ir.RZoned:
				i, code = padsrt.ReadZoned(s, int(w))
			default:
				i, code = padsrt.ReadAIntFW(s, int(w), b.Bits)
			}
		default:
			i, code = padsrt.ReadInt(s, b.Bits)
		}
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = i
		return v

	case ir.RAFloat:
		v := &value.Float{Common: value.NewCommon(name), Bits: b.Bits}
		f, code := padsrt.ReadAFloat(s, b.Bits)
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = f
		return v

	case ir.RStringTerm, ir.RStringEOR, ir.RStringFW, ir.RStringME, ir.RStringSE, ir.RHostname, ir.RZip:
		v := &value.Str{Common: value.NewCommon(name)}
		if b.BadParam {
			return fail(v, padsrt.ErrBadParam)
		}
		var str string
		var code padsrt.ErrCode
		switch b.Read {
		case ir.RStringTerm:
			term, c := charArg(b.Term)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			str, code = padsrt.ReadStringTerm(s, term)
		case ir.RStringEOR:
			str, code = padsrt.ReadStringEOR(s)
		case ir.RStringFW:
			w, c := intArg(b.Width)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			str, code = padsrt.ReadStringFW(s, int(w))
		case ir.RStringME:
			str, code = padsrt.ReadStringME(s, b.Re)
		case ir.RStringSE:
			str, code = padsrt.ReadStringSE(s, b.Re)
		case ir.RHostname:
			str, code = padsrt.ReadHostname(s)
		default:
			str, code = padsrt.ReadZip(s)
		}
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = str
		return v

	case ir.RDate:
		v := &value.Date{Common: value.NewCommon(name)}
		var term byte
		if b.TermChar {
			t, c := charArg(b.Term)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			term = t
		}
		sec, raw, code := padsrt.ReadDate(s, term)
		v.Raw = raw
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Sec = sec
		return v

	case ir.RIP:
		v := &value.IP{Common: value.NewCommon(name)}
		ip, code := padsrt.ReadIP(s)
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = ip
		return v

	case ir.RVoid:
		return &value.Void{Common: value.NewCommon(name)}
	}
	v := &value.Void{Common: value.NewCommon(name)}
	return fail(v, padsrt.ErrInternal)
}
