package interp

import (
	"strings"
	"testing"

	"pads/internal/padsrt"
	"pads/internal/telemetry/prof"
)

// profDesc exercises every node kind the profiler attributes: struct fields,
// a backtracking union (first branch fails on plain-number input), and a
// separated array.
const profDesc = `
Pstruct no_t {
  "x";
  Puint32 v;
};

Punion num_t {
  no_t tagged;
  Puint32 plain;
};

Parray seq {
  Puint32[] : Psep (',') && Pterm ( Peor );
};

Precord Pstruct rec_t {
  Puint32 id;
  '|'; num_t val;
  '|'; seq items;
};

Parray recs_t {
  rec_t[];
};

Psource Pstruct src_t {
  recs_t rs;
};
`

const profData = "1|x42|1,2,3\n2|7|4,5\n"

func profRead(t *testing.T, in *Interp, data string) {
	t.Helper()
	rr, err := in.NewRecordReader(padsrt.NewBytesSource([]byte(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for rr.More() {
		rr.Read()
	}
}

// TestProfilerInterpAttribution checks the hook placement end to end: record
// roots, struct fields, union branches (committed and backtracked), and
// array elements all land at their description paths with exact byte and
// count attribution.
func TestProfilerInterpAttribution(t *testing.T) {
	in := compile(t, profDesc)
	p := prof.New(prof.Options{AllocEvery: -1})
	in.Prof = p
	profRead(t, in, profData)
	pr := p.Snapshot()

	if pr.Records != 2 || pr.Sampled != 2 || pr.Errored != 0 {
		t.Fatalf("records=%d sampled=%d errored=%d", pr.Records, pr.Sampled, pr.Errored)
	}
	if pr.Bytes != uint64(len(profData)) {
		t.Fatalf("bytes = %d, want %d", pr.Bytes, len(profData))
	}

	get := func(path string) prof.NodeStat {
		t.Helper()
		for _, st := range pr.Nodes {
			if st.Path == path {
				return st
			}
		}
		names := make([]string, 0, len(pr.Nodes))
		for _, st := range pr.Nodes {
			names = append(names, st.Path)
		}
		t.Fatalf("no node %q; have %s", path, strings.Join(names, ", "))
		return prof.NodeStat{}
	}

	if st := get("rec_t"); st.Count != 2 || st.CumBytes != uint64(len(profData)) {
		t.Errorf("rec_t: %+v", st)
	}
	if st := get("rec_t.id"); st.Count != 2 || st.CumBytes != 2 {
		t.Errorf("rec_t.id: %+v", st)
	}
	// Record 1 commits the tagged branch; record 2 tries it, fails, and
	// backtracks — one error, with the speculative attempt's bytes counted.
	if st := get("rec_t.val.tagged"); st.Count != 2 || st.Errors != 1 || st.CumBytes < 3 {
		t.Errorf("rec_t.val.tagged: %+v", st)
	}
	if st := get("rec_t.val.plain"); st.Count != 1 || st.Errors != 0 || st.CumBytes != 1 {
		t.Errorf("rec_t.val.plain: %+v", st)
	}
	// The val field consumed 3 bytes ("x42") and 1 byte ("7"): the failed
	// speculation must not inflate it.
	if st := get("rec_t.val"); st.CumBytes != 4 {
		t.Errorf("rec_t.val: %+v", st)
	}
	// Five array elements across both records: 1,2,3 and 4,5.
	if st := get("rec_t.items.[]"); st.Count != 5 || st.CumBytes != 5 {
		t.Errorf("rec_t.items.[]: %+v", st)
	}
	if pr.AttributedFrac() < 0.5 {
		t.Errorf("attributed fraction = %.2f, want most of the wall window", pr.AttributedFrac())
	}
}

// TestProfilerInterpErroredRecord checks that a damaged record is counted
// and attributed as errored.
func TestProfilerInterpErroredRecord(t *testing.T) {
	in := compile(t, profDesc)
	p := prof.New(prof.Options{AllocEvery: -1})
	in.Prof = p
	profRead(t, in, "1|x42|1,2,3\nbogus||\n3|8|9\n")
	pr := p.Snapshot()
	if pr.Records != 3 || pr.Errored != 1 {
		t.Fatalf("records=%d errored=%d, want 3/1", pr.Records, pr.Errored)
	}
}

// TestDisabledProfilingNoAllocs is the zero-overhead guard for the profiler
// hooks: a record loop with profiling disabled (nil Prof — the default)
// allocates exactly what it allocated before the hooks existed, measured
// against an attached-but-never-sampling profiler to pin the per-record
// delta at zero.
func TestDisabledProfilingNoAllocs(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 256; i++ {
		b.WriteString("7|x42|1,2,3\n")
	}
	data := []byte(b.String())

	in := compile(t, profDesc)
	parse := func() {
		rr, err := in.NewRecordReader(padsrt.NewBorrowedSource(data), nil)
		if err != nil {
			t.Fatal(err)
		}
		for rr.More() {
			rr.Read()
		}
	}

	parse() // warm intern caches and lazies
	in.Prof = nil
	nilAllocs := testing.AllocsPerRun(10, parse)
	// Every > records: the profiler is attached but no record ever samples,
	// so only the always-on record-boundary counters run.
	in.Prof = prof.New(prof.Options{Every: 1 << 30})
	offAllocs := testing.AllocsPerRun(10, parse)
	in.Prof = nil

	if delta := offAllocs - nilAllocs; delta > 0.5 {
		t.Errorf("unsampled profiling adds %.1f allocs/run over disabled (%.1f vs %.1f); the record-boundary path must not allocate",
			delta, offAllocs, nilAllocs)
	}
}
