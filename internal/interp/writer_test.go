package interp

import (
	"bytes"
	"strings"
	"testing"

	"pads/internal/padsrt"
	"pads/internal/value"
)

func TestWriterErrorPaths(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	w := in.NewWriter()

	// Unknown type.
	if _, err := w.Append(nil, "no_such_t", &value.Void{}); err == nil {
		t.Error("unknown type accepted")
	}
	// Wrong value shape for a struct type.
	if _, err := w.Append(nil, "entry_t", &value.Uint{Val: 1}); err == nil {
		t.Error("scalar accepted for a struct type")
	}
	// A union value with no branch (a failed parse) cannot be written.
	un := &value.Union{Common: value.NewCommon("dib_ramp_t")}
	if _, err := w.Append(nil, "dib_ramp_t", un); err == nil {
		t.Error("empty union accepted")
	}
	// A union naming a non-existent branch.
	un.Tag = "bogus"
	un.Val = &value.Int{Val: 1}
	if _, err := w.Append(nil, "dib_ramp_t", un); err == nil {
		t.Error("bogus branch accepted")
	}
	// A struct missing fields.
	st := &value.Struct{Common: value.NewCommon("event_t")}
	if _, err := w.Append(nil, "event_t", st); err == nil {
		t.Error("truncated struct accepted")
	}
}

func TestWriterBaseTypesDirect(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	w := in.NewWriter()
	// A bare base type writes directly.
	out, err := w.Append(nil, "Puint32", value.NewUint(42, 32, "Puint32", padsrt.PD{}))
	if err != nil || string(out) != "42" {
		t.Errorf("base write = %q, %v", out, err)
	}
	// Mismatched base value kind.
	if _, err := w.Append(nil, "Puint32", value.NewStr("x", "Pstring", padsrt.PD{})); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestWriterEBCDICOutput(t *testing.T) {
	in := compile(t, `
Precord Pstruct rec_t {
  Puint32 id; '|';
  Pstring(:Peor:) name;
};
Psource Parray recs_t { rec_t[]; };
`)
	// Parse EBCDIC data and write it back in EBCDIC.
	data := padsrt.StringToEBCDICBytes("123|HELLO")
	data = append(data, 0x15)
	disc := &padsrt.NewlineDisc{Term: 0x15}
	s := padsrt.NewBytesSource(data,
		padsrt.WithCoding(padsrt.EBCDIC),
		padsrt.WithDiscipline(disc))
	v, err := in.ParseSource(s)
	if err != nil || v.PD().Nerr != 0 {
		t.Fatalf("parse: %v %v", err, v.PD())
	}
	w := in.NewWriter(WriteCoding(padsrt.EBCDIC), WriteDiscipline(disc))
	out, err := w.Append(nil, "recs_t", v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("EBCDIC round trip:\n in: %v\nout: %v", data, out)
	}
}

func TestWriterToIO(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data := readFile(t, "clf.sample")
	v, _ := in.ParseSource(padsrt.NewBytesSource(data))
	var sb strings.Builder
	n, err := in.NewWriter().WriteTo(&sb, "clt_t", v)
	if err != nil || n != len(data) || sb.String() != string(data) {
		t.Errorf("WriteTo = %d, %v", n, err)
	}
}

func TestWriterBinaryByteOrder(t *testing.T) {
	in := compile(t, `
Pstruct w_t { Pb_uint16 v; };
Psource Pstruct top_t { w_t x; };
`)
	st := &value.Struct{Common: value.NewCommon("top_t")}
	inner := &value.Struct{Common: value.NewCommon("w_t")}
	inner.Names = []string{"v"}
	inner.Fields = []value.Value{value.NewUint(0x1234, 16, "Pb_uint16", padsrt.PD{})}
	st.Names = []string{"x"}
	st.Fields = []value.Value{inner}

	be, err := in.NewWriter().Append(nil, "top_t", st)
	if err != nil || be[0] != 0x12 || be[1] != 0x34 {
		t.Errorf("big-endian = %v, %v", be, err)
	}
	le, err := in.NewWriter(WriteByteOrder(padsrt.LittleEndian)).Append(nil, "top_t", st)
	if err != nil || le[0] != 0x34 || le[1] != 0x12 {
		t.Errorf("little-endian = %v, %v", le, err)
	}
}

func TestKitchenInterpWriteRoundTrip(t *testing.T) {
	// The interpreter's writer round-trips the kitchen-sink description
	// too (the generated writer is covered in gen/kitchen).
	in := compileFile(t, "kitchen.pads")
	line := "7|5,6|GREEN|2|70000|1,2!/!|abc|0.25|99|t\n"
	v, err := in.ParseSource(padsrt.NewBytesSource([]byte(line)))
	if err != nil || v.PD().Nerr != 0 {
		t.Fatalf("parse: %v %v", err, v.PD())
	}
	out, err := in.NewWriter().Append(nil, "blobs_t", v)
	if err != nil || string(out) != line {
		t.Errorf("round trip = %q, %v", out, err)
	}
}

func TestWriterParameterizedWidths(t *testing.T) {
	// A field width inside a parameterized declaration must resolve from
	// the caller's argument during write-back.
	in := compile(t, `
Pstruct payload_t (:Puint32 n:) {
  Pstring_FW(:n:) body;
};
Precord Pstruct packet_t {
  Puint32 len; '|';
  payload_t(:len:) p;
};
Psource Parray packets_t { packet_t[]; };
`)
	data := []byte("5|abcde\n3|xyz\n")
	v, err := in.ParseSource(padsrt.NewBytesSource(data))
	if err != nil || v.PD().Nerr != 0 {
		t.Fatalf("parse: %v %v", err, v.PD())
	}
	out, err := in.NewWriter().Append(nil, "packets_t", v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("round trip = %q", out)
	}
}

func TestWriterNetflowRoundTrip(t *testing.T) {
	// Binary packets with data-dependent flow counts: parameterized
	// arrays plus binary integers on the write path.
	in := compileFile(t, "netflow.pads")
	var data []byte
	packet := func(n int) {
		data = padsrt.AppendBUint(data, 5, 2, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, uint64(n), 2, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 1000, 4, padsrt.BigEndian)
		data = padsrt.AppendBUint(data, 1005022800, 4, padsrt.BigEndian)
		for i := 0; i < n; i++ {
			data = padsrt.AppendBUint(data, uint64(0x0A000001+i), 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, 0x0A0000FF, 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, 3, 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, 99, 4, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, 80, 2, padsrt.BigEndian)
			data = padsrt.AppendBUint(data, 443, 2, padsrt.BigEndian)
			data = append(data, 6, 0)
		}
	}
	packet(2)
	packet(0)
	v, err := in.ParseSource(padsrt.NewBytesSource(data, padsrt.WithDiscipline(padsrt.NoRecords())))
	if err != nil || v.PD().Nerr != 0 {
		t.Fatalf("parse: %v %v", err, v.PD())
	}
	out, err := in.NewWriter(WriteDiscipline(padsrt.NoRecords())).Append(nil, "nf_stream_t", v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("netflow round trip differs:\n in: %v\nout: %v", data, out)
	}
}
