package interp

import (
	"pads/internal/dsl"
	"pads/internal/expr"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

// parseBase parses one base-type value, dispatching on the registry entry.
func (in *Interp) parseBase(b *sema.BaseInfo, tr dsl.TypeRef, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	begin := s.Pos()
	fail := func(v value.Value, code padsrt.ErrCode) value.Value {
		v.PD().SetError(code, s.LocFrom(begin))
		return v
	}

	// Resolve arguments.
	intArg := func(i int) (int64, padsrt.ErrCode) {
		v, err := in.Ev.Eval(tr.Args[i], env)
		if err != nil {
			return 0, padsrt.ErrBadParam
		}
		n, err := expr.ToInt(v)
		if err != nil || n < 0 {
			return 0, padsrt.ErrBadParam
		}
		return n, padsrt.ErrNone
	}
	// termArg decodes a character-terminator argument; ok=false means the
	// terminator is Peor/Peof (read to the record/input boundary).
	termArg := func(i int) (byte, bool, padsrt.ErrCode) {
		switch a := tr.Args[i].(type) {
		case *dsl.EORExpr, *dsl.EOFExpr:
			return 0, false, padsrt.ErrNone
		default:
			v, err := in.Ev.Eval(a, env)
			if err != nil || v.K != sema.KChar {
				return 0, false, padsrt.ErrBadParam
			}
			return byte(v.I), true, padsrt.ErrNone
		}
	}

	switch b.Kind {
	case sema.KChar:
		v := &value.Char{Common: value.NewCommon(b.Name)}
		var c byte
		var code padsrt.ErrCode
		switch b.Coding {
		case "a":
			c, code = padsrt.ReadAChar(s)
		case "e":
			c, code = padsrt.ReadEChar(s)
		case "b":
			c, code = padsrt.ReadBChar(s)
		default:
			c, code = padsrt.ReadChar(s)
		}
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = c
		return v

	case sema.KUint:
		v := &value.Uint{Common: value.NewCommon(b.Name), Bits: b.Bits}
		var u uint64
		var code padsrt.ErrCode
		switch {
		case b.FW:
			w, c := intArg(0)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			if b.Coding == "a" {
				u, code = padsrt.ReadAUintFW(s, int(w), b.Bits)
			} else {
				u, code = padsrt.ReadUintFW(s, int(w), b.Bits)
			}
		case b.Coding == "a":
			u, code = padsrt.ReadAUint(s, b.Bits)
		case b.Coding == "e":
			u, code = padsrt.ReadEUint(s, b.Bits)
		case b.Coding == "b":
			u, code = padsrt.ReadBUint(s, b.Bits/8)
		default:
			u, code = padsrt.ReadUint(s, b.Bits)
		}
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = u
		return v

	case sema.KInt:
		v := &value.Int{Common: value.NewCommon(b.Name), Bits: b.Bits}
		var i int64
		var code padsrt.ErrCode
		switch {
		case b.Coding == "bcd":
			d, c := intArg(0)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			i, code = padsrt.ReadBCD(s, int(d))
		case b.Coding == "zoned":
			d, c := intArg(0)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			i, code = padsrt.ReadZoned(s, int(d))
		case b.FW:
			w, c := intArg(0)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			i, code = padsrt.ReadAIntFW(s, int(w), b.Bits)
		case b.Coding == "a":
			i, code = padsrt.ReadAInt(s, b.Bits)
		case b.Coding == "e":
			i, code = padsrt.ReadEInt(s, b.Bits)
		case b.Coding == "b":
			i, code = padsrt.ReadBInt(s, b.Bits/8)
		default:
			i, code = padsrt.ReadInt(s, b.Bits)
		}
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = i
		return v

	case sema.KFloat:
		v := &value.Float{Common: value.NewCommon(b.Name), Bits: b.Bits}
		f, code := padsrt.ReadAFloat(s, b.Bits)
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = f
		return v

	case sema.KString:
		v := &value.Str{Common: value.NewCommon(b.Name)}
		switch b.Name {
		case "Pstring":
			term, isChar, c := termArg(0)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			var str string
			var code padsrt.ErrCode
			if isChar {
				str, code = padsrt.ReadStringTerm(s, term)
			} else {
				// Terminated by Peor/Peof: read the remainder.
				str, code = padsrt.ReadStringEOR(s)
			}
			if code != padsrt.ErrNone {
				return fail(v, code)
			}
			v.Val = str
			return v
		case "Pstring_FW":
			w, c := intArg(0)
			if c != padsrt.ErrNone {
				return fail(v, c)
			}
			str, code := padsrt.ReadStringFW(s, int(w))
			if code != padsrt.ErrNone {
				return fail(v, code)
			}
			v.Val = str
			return v
		case "Pstring_ME", "Pstring_SE":
			re := in.regexpArg(tr.Args[0])
			if re == nil {
				return fail(v, padsrt.ErrBadParam)
			}
			var str string
			var code padsrt.ErrCode
			if b.Name == "Pstring_ME" {
				str, code = padsrt.ReadStringME(s, re)
			} else {
				str, code = padsrt.ReadStringSE(s, re)
			}
			if code != padsrt.ErrNone {
				return fail(v, code)
			}
			v.Val = str
			return v
		case "Phostname":
			str, code := padsrt.ReadHostname(s)
			if code != padsrt.ErrNone {
				return fail(v, code)
			}
			v.Val = str
			return v
		case "Pzip":
			str, code := padsrt.ReadZip(s)
			if code != padsrt.ErrNone {
				return fail(v, code)
			}
			v.Val = str
			return v
		}
		return fail(v, padsrt.ErrInternal)

	case sema.KDate:
		v := &value.Date{Common: value.NewCommon(b.Name)}
		term, isChar, c := termArg(0)
		if c != padsrt.ErrNone {
			return fail(v, c)
		}
		if !isChar {
			term = 0
		}
		sec, raw, code := padsrt.ReadDate(s, term)
		v.Raw = raw
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Sec = sec
		return v

	case sema.KIP:
		v := &value.IP{Common: value.NewCommon(b.Name)}
		ip, code := padsrt.ReadIP(s)
		if code != padsrt.ErrNone {
			return fail(v, code)
		}
		v.Val = ip
		return v

	case sema.KVoid:
		return &value.Void{Common: value.NewCommon(b.Name)}
	}
	v := &value.Void{Common: value.NewCommon(b.Name)}
	return fail(v, padsrt.ErrInternal)
}

func (in *Interp) regexpArg(a dsl.Expr) *padsrt.Regexp {
	re, ok := a.(*dsl.RegexpExpr)
	if !ok {
		return nil
	}
	return in.Desc.Regexps[re.Src]
}
