package interp_test

// Three-way IR conformance: the bytecode VM (interp.New) is compared
// against the reference AST walk (interp.NewAST) over the datagen corpora,
// demanding indistinguishable results — value.EqualFull requires identical
// values, type names, and bit-identical parse descriptors at every node,
// and the accumulator reports built from both streams must render the same
// bytes. The generated-code leg of the three-way runs in the gen packages
// (internal/gen/{clf,sirius,kitchen}), which diff against interp.New — the
// VM — so the chain AST walk == VM == generated code closes over every
// corpus. FuzzVMAgainstInterp extends the same contract to random
// description/input pairs.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pads/internal/accum"
	"pads/internal/datagen"
	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func checkFile(t *testing.T, name string) *sema.Desc {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return desc
}

// conformRecords parses data record-by-record through the AST walk and the
// VM, requiring indistinguishable headers, records, and accumulator output.
func conformRecords(t *testing.T, desc *sema.Desc, data []byte) int {
	t.Helper()
	ast := interp.NewAST(desc)
	vm := interp.New(desc)
	if vm.Program() == nil {
		t.Fatal("description did not lower to IR")
	}

	ra, err := ast.NewRecordReader(padsrt.NewBytesSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := vm.NewRecordReader(padsrt.NewBytesSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := value.DiffFull(ra.Header(), rv.Header()); d != "" {
		t.Fatalf("headers differ: %s", d)
	}

	accA := accum.New(accum.DefaultConfig())
	accV := accum.New(accum.DefaultConfig())
	rec := 0
	for ra.More() {
		av := ra.Read()
		if !rv.More() {
			t.Fatalf("VM reader exhausted at record %d", rec)
		}
		vv := rv.Read()
		if d := value.DiffFull(av, vv); d != "" {
			t.Fatalf("record %d: AST walk and VM differ: %s\nAST: %s\nVM:  %s",
				rec, d, value.String(av), value.String(vv))
		}
		accA.Add(av)
		accV.Add(vv)
		rec++
	}
	if rv.More() {
		t.Fatal("VM reader has records left over")
	}
	var ba, bv bytes.Buffer
	accA.Report(&ba, "")
	accV.Report(&bv, "")
	if ba.String() != bv.String() {
		t.Fatalf("accumulator reports differ:\n--- AST\n%s\n--- VM\n%s", ba.String(), bv.String())
	}
	return rec
}

func TestVMConformSiriusCorpus(t *testing.T) {
	desc := checkFile(t, "sirius.pads")
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(400)
	cfg.SortViolations = 5
	cfg.SyntaxErrors = 9
	if _, err := datagen.Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if n := conformRecords(t, desc, buf.Bytes()); n != 400 {
		t.Fatalf("records = %d", n)
	}
}

func TestVMConformCLFCorpus(t *testing.T) {
	desc := checkFile(t, "clf.pads")
	var buf bytes.Buffer
	if _, err := datagen.CLF(&buf, datagen.DefaultCLF(400)); err != nil {
		t.Fatal(err)
	}
	if n := conformRecords(t, desc, buf.Bytes()); n != 400 {
		t.Fatalf("records = %d", n)
	}
}

// TestVMConformKitchen runs the kitchen-sink description (every language
// construct) over generically-generated instances, whole-source.
func TestVMConformKitchen(t *testing.T) {
	desc := checkFile(t, "kitchen.pads")
	for seed := uint64(1); seed <= 25; seed++ {
		g := datagen.NewGenerator(desc, seed)
		data, err := g.GenerateSource()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		av, err := interp.NewAST(desc).ParseSource(padsrt.NewBytesSource(data))
		if err != nil {
			t.Fatalf("seed %d: AST: %v", seed, err)
		}
		vv, err := interp.New(desc).ParseSource(padsrt.NewBytesSource(data))
		if err != nil {
			t.Fatalf("seed %d: VM: %v", seed, err)
		}
		if d := value.DiffFull(av, vv); d != "" {
			t.Fatalf("seed %d: %s\ninput: %q", seed, d, data)
		}
	}
}

// TestVMConformRangeOverflowUnion pins the FAtomic soundness rule
// (ir.ReadOp.Atomic): ReadAUint consumes the digit run before reporting
// ErrRange, so a union branch trying Puint8 against "300" must run under a
// checkpoint, or the next branch would start three bytes late and read ""
// instead of "300".
func TestVMConformRangeOverflowUnion(t *testing.T) {
	src := `Punion u { Puint8 a; Pstring(:' ':) s; }; Precord Pstruct r { u v; ' '; Peor; }; Psource Parray rs { r[]; };`
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	data := []byte("300 \n7 \n99999999999999999999 \n")
	av, err := interp.NewAST(desc).ParseSource(padsrt.NewBytesSource(data))
	if err != nil {
		t.Fatalf("AST: %v", err)
	}
	vv, err := interp.New(desc).ParseSource(padsrt.NewBytesSource(data))
	if err != nil {
		t.Fatalf("VM: %v", err)
	}
	if d := value.DiffFull(av, vv); d != "" {
		t.Fatalf("AST walk and VM differ: %s\nAST: %s\nVM:  %s", d, value.String(av), value.String(vv))
	}
	// Both engines must have taken the string branch with the full text.
	rec := av.(*value.Array).Elems[0].(*value.Struct).Field("v").(*value.Union)
	if rec.Tag != "s" {
		t.Fatalf("record 0 tag = %s, want s", rec.Tag)
	}
	if got := rec.Val.(*value.Str).Val; got != "300" {
		t.Fatalf("record 0 s = %q, want \"300\" (range-failing Puint8 branch leaked consumed digits)", got)
	}
}

// TestVMConformSamples pins the checked-in sample files.
func TestVMConformSamples(t *testing.T) {
	for _, pair := range [][2]string{{"clf.pads", "clf.sample"}, {"sirius.pads", "sirius.sample"}} {
		desc := checkFile(t, pair[0])
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		conformRecords(t, desc, data)
	}
}

// FuzzVMAgainstInterp co-fuzzes description and input: any description that
// checks cleanly must parse any byte string identically through the AST
// walk and the VM — same values, same parse descriptors, same error codes,
// same accumulator output.
func FuzzVMAgainstInterp(f *testing.F) {
	for _, pair := range [][2]string{{"clf.pads", "clf.sample"}, {"sirius.pads", "sirius.sample"}} {
		descSrc, err := os.ReadFile(filepath.Join("..", "..", "testdata", pair[0]))
		if err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", pair[1]))
		if err != nil {
			f.Fatal(err)
		}
		if len(data) > 512 {
			data = data[:512]
		}
		f.Add(string(descSrc), data)
	}
	f.Add(`Psource Precord Pstruct r { Puint8 x; Peor; };`, []byte("1\nx\n300\n"))
	f.Add(`Punion u { Pip a; Puint32 b; Pstring(:' ':) s; }; Psource Precord Pstruct r { u v; Peor; };`,
		[]byte("1.2.3.4\nhello\n99\n"))
	f.Add(`Penum color { red, green, blue }; Psource Precord Pstruct r { color c; Popt Puint16 n; Peor; };`,
		[]byte("red7\nblue\nmauve\n"))
	f.Add(`Parray inner { Puint8 : Psep(',') && Pterm(';'); }; Psource Precord Pstruct r { inner v; ';'; Peor; };`,
		[]byte("1,2,3;\n;\n1,,2;\n"))
	// Range overflow inside a speculative branch: ReadAUint consumes the
	// digits before reporting ErrRange, so the Puint8 trial must be
	// checkpointed (the FAtomic soundness repro, caught deterministically).
	f.Add(`Punion u { Puint8 a; Pstring(:' ':) s; }; Precord Pstruct r { u v; ' '; Peor; }; Psource Parray rs { r[]; };`,
		[]byte("300 \n7 \n99999999999999999999 \n"))

	f.Fuzz(func(t *testing.T, descSrc string, data []byte) {
		if len(descSrc) > 4096 || len(data) > 4096 {
			return
		}
		prog, errs := dsl.Parse(descSrc)
		if len(errs) > 0 {
			return
		}
		desc, serrs := sema.Check(prog)
		if len(serrs) > 0 {
			return
		}
		// MaxRecordLen keeps damaged-record scans bounded, and MaxBacktracks
		// keeps fuzzed descriptions with exponential trial trees from
		// hanging the worker (nested unions/options can re-scan a 4 KiB
		// input for minutes otherwise). The other speculation caps stay
		// unarmed: the VM legitimately uses fewer checkpoints than the walk
		// (atomic trials are checkpoint-free), so a spec limit can trip in
		// one engine and not the other by design.
		limits := padsrt.WithLimits(padsrt.Limits{MaxRecordLen: 1 << 16, MaxBacktracks: 10_000})
		sa := padsrt.NewBytesSource(data, limits)
		sv := padsrt.NewBytesSource(data, limits)
		av, aerr := interp.NewAST(desc).ParseSource(sa)
		vv, verr := interp.New(desc).ParseSource(sv)
		var le *padsrt.LimitError
		if errors.As(sa.Err(), &le) || errors.As(sv.Err(), &le) {
			// A budget tripped. The engines spend rollbacks at different
			// rates (checkpoint elision), so their wind-down states are not
			// comparable — the run only proves both terminated.
			return
		}
		if (aerr == nil) != (verr == nil) {
			t.Fatalf("source errors differ: AST=%v VM=%v", aerr, verr)
		}
		if aerr != nil {
			return
		}
		if d := value.DiffFull(av, vv); d != "" {
			t.Fatalf("AST walk and VM differ: %s", d)
		}
		accA := accum.New(accum.DefaultConfig())
		accV := accum.New(accum.DefaultConfig())
		accA.Add(av)
		accV.Add(vv)
		var ba, bv bytes.Buffer
		accA.Report(&ba, "")
		accV.Report(&bv, "")
		if ba.String() != bv.String() {
			t.Fatal("accumulator reports differ")
		}
	})
}
