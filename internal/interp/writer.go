package interp

import (
	"fmt"
	"io"

	"pads/internal/dsl"
	"pads/internal/expr"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

// Writer reproduces the original wire form of parsed values — the
// <type>_write2io functions of the generated C library (Figure 6). For
// error-free values the output is byte-identical to the input (a
// property-tested invariant); values parsed with errors round-trip only the
// components that were recovered.
type Writer struct {
	in     *Interp
	disc   padsrt.Discipline
	coding padsrt.Coding
	order  padsrt.ByteOrder
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WriteDiscipline sets the record framing used on output.
func WriteDiscipline(d padsrt.Discipline) WriterOption { return func(w *Writer) { w.disc = d } }

// WriteCoding sets the ambient output coding.
func WriteCoding(c padsrt.Coding) WriterOption { return func(w *Writer) { w.coding = c } }

// WriteByteOrder sets the byte order for binary integers.
func WriteByteOrder(o padsrt.ByteOrder) WriterOption { return func(w *Writer) { w.order = o } }

// NewWriter builds a writer with the same defaults as NewSource.
func (in *Interp) NewWriter(opts ...WriterOption) *Writer {
	w := &Writer{in: in, disc: padsrt.Newline(), coding: padsrt.ASCII, order: padsrt.BigEndian}
	for _, o := range opts {
		o(w)
	}
	return w
}

// WriteTo writes a value of the named type to dst in its original form.
func (w *Writer) WriteTo(dst io.Writer, typeName string, v value.Value) (int, error) {
	buf, err := w.Append(nil, typeName, v)
	if err != nil {
		return 0, err
	}
	return dst.Write(buf)
}

// Append appends the wire form of a value of the named type to dst.
func (w *Writer) Append(dst []byte, typeName string, v value.Value) ([]byte, error) {
	d, ok := w.in.Desc.Types[typeName]
	if !ok {
		if b := sema.LookupBase(typeName); b != nil {
			return w.appendBaseByName(dst, b, nil, nil, v)
		}
		return dst, fmt.Errorf("writer: unknown type %s", typeName)
	}
	return w.appendDecl(dst, d, v, nil)
}

func (w *Writer) appendDecl(dst []byte, d dsl.Decl, v value.Value, params *expr.Env) ([]byte, error) {
	if sema.Annot(d).IsRecord {
		body, err := w.appendDeclBody(nil, d, v, params)
		if err != nil {
			return dst, err
		}
		padsrt.FrameRecord(w.disc, &dst, body)
		return dst, nil
	}
	return w.appendDeclBody(dst, d, v, params)
}

func (w *Writer) appendDeclBody(dst []byte, d dsl.Decl, v value.Value, params *expr.Env) ([]byte, error) {
	switch d := d.(type) {
	case *dsl.StructDecl:
		st, ok := v.(*value.Struct)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects a struct value, got %T", d.Name, v)
		}
		env := expr.NewEnv(params)
		fi := 0
		var err error
		for _, it := range d.Items {
			if it.Lit != nil {
				dst = w.appendLiteral(dst, it.Lit)
				continue
			}
			if fi >= len(st.Fields) {
				return dst, fmt.Errorf("writer: %s value is missing field %s", d.Name, it.Field.Name)
			}
			fv := st.Fields[fi]
			dst, err = w.appendRef(dst, it.Field.Type, fv, env)
			if err != nil {
				return dst, err
			}
			env.Bind(it.Field.Name, expr.FromValue(fv))
			fi++
		}
		return dst, nil
	case *dsl.UnionDecl:
		un, ok := v.(*value.Union)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects a union value, got %T", d.Name, v)
		}
		if un.Val == nil {
			return dst, fmt.Errorf("writer: union %s has no branch value", d.Name)
		}
		env := expr.NewEnv(params)
		if d.Switch != nil {
			for i := range d.Switch.Cases {
				if d.Switch.Cases[i].Field.Name == un.Tag {
					return w.appendRef(dst, d.Switch.Cases[i].Field.Type, un.Val, env)
				}
			}
		}
		for i := range d.Branches {
			if d.Branches[i].Name == un.Tag {
				return w.appendRef(dst, d.Branches[i].Type, un.Val, env)
			}
		}
		return dst, fmt.Errorf("writer: union %s has no branch %s", d.Name, un.Tag)
	case *dsl.ArrayDecl:
		arr, ok := v.(*value.Array)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects an array value, got %T", d.Name, v)
		}
		env := expr.NewEnv(params)
		var err error
		for i, ev := range arr.Elems {
			if i > 0 && d.Sep != nil {
				dst = w.appendLiteral(dst, d.Sep)
			}
			dst, err = w.appendRef(dst, d.Elem, ev, env)
			if err != nil {
				return dst, err
			}
		}
		// A literal terminator was consumed by the parse; regenerate it.
		if d.Term != nil && (d.Term.Kind == dsl.CharLit || d.Term.Kind == dsl.StrLit) {
			dst = w.appendLiteral(dst, d.Term)
		}
		return dst, nil
	case *dsl.EnumDecl:
		en, ok := v.(*value.Enum)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects an enum value, got %T", d.Name, v)
		}
		for _, m := range d.Members {
			if m.Name == en.Member {
				return padsrt.AppendString(dst, m.Repr, w.coding), nil
			}
		}
		return dst, fmt.Errorf("writer: enum %s has no member %q", d.Name, en.Member)
	case *dsl.TypedefDecl:
		return w.appendRef(dst, d.Base, v, expr.NewEnv(params))
	}
	return dst, fmt.Errorf("writer: cannot write %T", d)
}

func (w *Writer) appendRef(dst []byte, tr dsl.TypeRef, v value.Value, env *expr.Env) ([]byte, error) {
	if tr.Opt {
		opt, ok := v.(*value.Opt)
		if !ok {
			return dst, fmt.Errorf("writer: expected an optional value for Popt %s", tr.Name)
		}
		if !opt.Present {
			return dst, nil
		}
		inner := tr
		inner.Opt = false
		return w.appendRef(dst, inner, opt.Val, env)
	}
	if b := sema.LookupBase(tr.Name); b != nil {
		return w.appendBaseByName(dst, b, tr.Args, env, v)
	}
	d, ok := w.in.Desc.Types[tr.Name]
	if !ok {
		return dst, fmt.Errorf("writer: unknown type %s", tr.Name)
	}
	// Bind the declaration's value parameters from the argument
	// expressions, evaluated in the caller's scope, so parameterized
	// widths and selectors resolve during write-back.
	var callee *expr.Env
	if params := declParams(d); len(params) > 0 {
		callee = expr.NewEnv(nil)
		for i, p := range params {
			if i >= len(tr.Args) {
				break
			}
			av, err := w.in.Ev.Eval(tr.Args[i], env)
			if err != nil {
				return dst, fmt.Errorf("writer: argument %d of %s: %v", i+1, tr.Name, err)
			}
			callee.Bind(p.Name, av)
		}
	}
	return w.appendDecl(dst, d, v, callee)
}

func declParams(d dsl.Decl) []dsl.Param {
	switch d := d.(type) {
	case *dsl.StructDecl:
		return d.Params
	case *dsl.UnionDecl:
		return d.Params
	case *dsl.ArrayDecl:
		return d.Params
	case *dsl.TypedefDecl:
		return d.Params
	}
	return nil
}

func (w *Writer) appendLiteral(dst []byte, l *dsl.Literal) []byte {
	switch l.Kind {
	case dsl.CharLit:
		return padsrt.AppendChar(dst, l.Char, w.coding)
	case dsl.StrLit:
		return padsrt.AppendString(dst, l.Str, w.coding)
	case dsl.RegexpLit:
		// A regexp literal has no canonical text; nothing is written.
		return dst
	default: // Peor/Peof: framing handles record boundaries
		return dst
	}
}

func (w *Writer) intArg(args []dsl.Expr, i int, env *expr.Env) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("writer: missing argument %d", i)
	}
	v, err := w.in.Ev.Eval(args[i], env)
	if err != nil {
		return 0, err
	}
	return expr.ToInt(v)
}

func (w *Writer) appendBaseByName(dst []byte, b *sema.BaseInfo, args []dsl.Expr, env *expr.Env, v value.Value) ([]byte, error) {
	switch b.Kind {
	case sema.KChar:
		c, ok := v.(*value.Char)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects a char value", b.Name)
		}
		switch b.Coding {
		case "e":
			return append(dst, padsrt.ASCIIToEBCDIC(c.Val)), nil
		case "a", "b":
			return append(dst, c.Val), nil
		default:
			return padsrt.AppendChar(dst, c.Val, w.coding), nil
		}
	case sema.KUint:
		u, ok := v.(*value.Uint)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects a uint value", b.Name)
		}
		switch {
		case b.FW:
			width, err := w.intArg(args, 0, env)
			if err != nil {
				return dst, err
			}
			return padsrt.AppendUintFW(dst, u.Val, int(width)), nil
		case b.Coding == "b":
			return padsrt.AppendBUint(dst, u.Val, b.Bits/8, w.order), nil
		case b.Coding == "e":
			return padsrt.AppendEUint(dst, u.Val), nil
		case b.Coding == "a":
			return padsrt.AppendUint(dst, u.Val), nil
		default:
			if w.coding == padsrt.EBCDIC {
				return padsrt.AppendEUint(dst, u.Val), nil
			}
			return padsrt.AppendUint(dst, u.Val), nil
		}
	case sema.KInt:
		iv, ok := v.(*value.Int)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects an int value", b.Name)
		}
		switch b.Coding {
		case "bcd":
			digits, err := w.intArg(args, 0, env)
			if err != nil {
				return dst, err
			}
			return padsrt.WriteBCD(dst, iv.Val, int(digits)), nil
		case "zoned":
			digits, err := w.intArg(args, 0, env)
			if err != nil {
				return dst, err
			}
			return padsrt.WriteZoned(dst, iv.Val, int(digits)), nil
		case "b":
			return padsrt.AppendBUint(dst, uint64(iv.Val), b.Bits/8, w.order), nil
		default:
			if b.FW {
				width, err := w.intArg(args, 0, env)
				if err != nil {
					return dst, err
				}
				if iv.Val < 0 {
					dst = append(dst, '-')
					return padsrt.AppendUintFW(dst, uint64(-iv.Val), int(width)-1), nil
				}
				return padsrt.AppendUintFW(dst, uint64(iv.Val), int(width)), nil
			}
			return padsrt.AppendInt(dst, iv.Val), nil
		}
	case sema.KFloat:
		f, ok := v.(*value.Float)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects a float value", b.Name)
		}
		return padsrt.AppendFloat(dst, f.Val, b.Bits), nil
	case sema.KString:
		s, ok := v.(*value.Str)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects a string value", b.Name)
		}
		return padsrt.AppendString(dst, s.Val, w.coding), nil
	case sema.KDate:
		d, ok := v.(*value.Date)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects a date value", b.Name)
		}
		if d.Raw != "" {
			return padsrt.AppendString(dst, d.Raw, w.coding), nil
		}
		return padsrt.AppendInt(dst, d.Sec), nil
	case sema.KIP:
		ip, ok := v.(*value.IP)
		if !ok {
			return dst, fmt.Errorf("writer: %s expects an IP value", b.Name)
		}
		return padsrt.AppendString(dst, padsrt.FormatIP(ip.Val), w.coding), nil
	case sema.KVoid:
		return dst, nil
	}
	return dst, fmt.Errorf("writer: cannot write base type %s", b.Name)
}
