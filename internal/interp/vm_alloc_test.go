package interp_test

import (
	"bytes"
	"testing"

	"pads/internal/datagen"
	"pads/internal/interp"
	"pads/internal/padsrt"
)

// TestVMAllocsPerRecord pins the VM loop's allocation budget on a clean
// synthetic Sirius corpus. When the VM landed, the tree-walking interpreter
// spent ~99 allocations per record here (~66 on the smaller checked-in
// sample records) and the VM ~73; the pin sits between the two so the VM
// can never quietly regress back to tree-walk allocation behavior, with
// headroom over its measured need so the test flags regressions, not noise.
func TestVMAllocsPerRecord(t *testing.T) {
	const records = 200
	const maxPerRecord = 85.0 // AST walk ~99, VM measured ~73

	desc := checkFile(t, "sirius.pads")
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(records)
	cfg.SortViolations = 0
	cfg.SyntaxErrors = 0
	if _, err := datagen.Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	vm := interp.New(desc)
	if vm.Program() == nil {
		t.Fatal("description did not lower to IR")
	}

	parsed := 0
	avg := testing.AllocsPerRun(5, func() {
		s := padsrt.NewBytesSource(data)
		rr, err := vm.NewRecordReader(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		parsed = 0
		for rr.More() {
			if rr.Read().PD().Nerr != 0 {
				t.Fatal("clean corpus parsed with errors")
			}
			parsed++
		}
	}) / records
	if parsed != records {
		t.Fatalf("parsed %d records, want %d", parsed, records)
	}
	if avg > maxPerRecord {
		t.Errorf("VM allocations = %.1f per record, pinned max %.1f", avg, maxPerRecord)
	}
}
