package interp

import (
	"testing"

	"pads/internal/dsl"
	"pads/internal/padsrt"
	"pads/internal/sema"
)

// FuzzParseCLF feeds arbitrary bytes to the CLF parser: it must never
// panic, must always terminate, and must account for every record (clean or
// flagged). The seeds run as regression cases in normal test runs.
func FuzzParseCLF(f *testing.F) {
	seeds := [][]byte{
		[]byte(""),
		[]byte("\n"),
		[]byte("207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] \"GET /tk/p.txt HTTP/1.0\" 200 30\n"),
		[]byte("garbage\n"),
		[]byte("1.2.3.4 - - [bad date] \"GET / HTTP/1.0\" 200 -\n"),
		[]byte("1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] \"ZZZ / HTTP/9.9\" 999 1e9\n"),
		{0xFF, 0xFE, 0x00, '\n', '|', '|'},
		[]byte("\n\n\n\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	src, err := testdataBytes("clf.pads")
	if err != nil {
		f.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		f.Fatal(errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		f.Fatal(serrs[0])
	}
	in := New(desc)

	f.Fuzz(func(t *testing.T, data []byte) {
		s := padsrt.NewBytesSource(data)
		rr, err := in.NewRecordReader(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		records := 0
		for rr.More() {
			rec := rr.Read()
			if rec == nil {
				t.Fatal("nil record")
			}
			records++
			if records > len(data)+2 {
				t.Fatalf("runaway: %d records from %d bytes", records, len(data))
			}
		}
	})
}

// FuzzParseSirius does the same for the Sirius description, whose nested
// arrays and unions exercise more recovery paths.
func FuzzParseSirius(f *testing.F) {
	seeds := [][]byte{
		[]byte("0|1005022800\n1|1|1|0|0|0|0||1|T|0|u|s|A|1000\n"),
		[]byte("0|x\n"),
		[]byte("||||||||||||||\n"),
		[]byte("1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000\n"),
		[]byte("no_ii|no_ii|no_ii\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	src, err := testdataBytes("sirius.pads")
	if err != nil {
		f.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		f.Fatal(errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		f.Fatal(serrs[0])
	}
	in := New(desc)
	f.Fuzz(func(t *testing.T, data []byte) {
		s := padsrt.NewBytesSource(data)
		v, err := in.ParseSource(s)
		if err != nil {
			return // I/O-style failure is fine; panics are not
		}
		_ = v.PD()
	})
}

// FuzzInterpParse co-fuzzes both axes at once: an arbitrary description AND
// arbitrary data. Any description that compiles cleanly must parse any byte
// string without panicking, without unbounded memory (the resource guards
// are armed), and must terminate — the never-die contract with no fixed
// description to lean on. Real description/data pairs from testdata/ seed
// the corpus.
func FuzzInterpParse(f *testing.F) {
	for _, pair := range [][2]string{{"clf.pads", "clf.sample"}, {"sirius.pads", "sirius.sample"}} {
		descSrc, err := testdataBytes(pair[0])
		if err != nil {
			f.Fatal(err)
		}
		data, err := testdataBytes(pair[1])
		if err != nil {
			f.Fatal(err)
		}
		if len(data) > 512 {
			data = data[:512]
		}
		f.Add(string(descSrc), data)
	}
	f.Add(`Psource Precord Pstruct r { Puint8 x; Peor; };`, []byte("1\nx\n300\n"))
	f.Add(`Parray inner { Pstring(:'|':) : Psep('|'); }; Psource Precord Pstruct r { inner v; Peor; };`,
		[]byte("a|b||c\n"))
	f.Add(`Punion u { Pip a; Puint32 b; Pstring(:' ':) s; }; Psource Precord Pstruct r { u v; Peor; };`,
		[]byte("1.2.3.4\nhello\n99\n"))

	f.Fuzz(func(t *testing.T, descSrc string, data []byte) {
		if len(descSrc) > 4096 || len(data) > 4096 {
			return // keep per-input work small; coverage, not throughput
		}
		prog, errs := dsl.Parse(descSrc)
		if len(errs) > 0 {
			return
		}
		desc, serrs := sema.Check(prog)
		if len(serrs) > 0 {
			return
		}
		s := padsrt.NewBytesSource(data, padsrt.WithLimits(padsrt.Limits{
			MaxRecordLen: 1 << 16,
			MaxSpecBytes: 1 << 16,
			MaxSpecDepth: 64,
		}))
		v, err := New(desc).ParseSource(s)
		if err != nil {
			return // structured failure is fine; panics and hangs are not
		}
		_ = v.PD()
	})
}
