package interp

import (
	"testing"

	"pads/internal/dsl"
	"pads/internal/padsrt"
	"pads/internal/sema"
)

// FuzzParseCLF feeds arbitrary bytes to the CLF parser: it must never
// panic, must always terminate, and must account for every record (clean or
// flagged). The seeds run as regression cases in normal test runs.
func FuzzParseCLF(f *testing.F) {
	seeds := [][]byte{
		[]byte(""),
		[]byte("\n"),
		[]byte("207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] \"GET /tk/p.txt HTTP/1.0\" 200 30\n"),
		[]byte("garbage\n"),
		[]byte("1.2.3.4 - - [bad date] \"GET / HTTP/1.0\" 200 -\n"),
		[]byte("1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] \"ZZZ / HTTP/9.9\" 999 1e9\n"),
		{0xFF, 0xFE, 0x00, '\n', '|', '|'},
		[]byte("\n\n\n\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	src, err := testdataBytes("clf.pads")
	if err != nil {
		f.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		f.Fatal(errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		f.Fatal(serrs[0])
	}
	in := New(desc)

	f.Fuzz(func(t *testing.T, data []byte) {
		s := padsrt.NewBytesSource(data)
		rr, err := in.NewRecordReader(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		records := 0
		for rr.More() {
			rec := rr.Read()
			if rec == nil {
				t.Fatal("nil record")
			}
			records++
			if records > len(data)+2 {
				t.Fatalf("runaway: %d records from %d bytes", records, len(data))
			}
		}
	})
}

// FuzzParseSirius does the same for the Sirius description, whose nested
// arrays and unions exercise more recovery paths.
func FuzzParseSirius(f *testing.F) {
	seeds := [][]byte{
		[]byte("0|1005022800\n1|1|1|0|0|0|0||1|T|0|u|s|A|1000\n"),
		[]byte("0|x\n"),
		[]byte("||||||||||||||\n"),
		[]byte("1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000\n"),
		[]byte("no_ii|no_ii|no_ii\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	src, err := testdataBytes("sirius.pads")
	if err != nil {
		f.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		f.Fatal(errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		f.Fatal(serrs[0])
	}
	in := New(desc)
	f.Fuzz(func(t *testing.T, data []byte) {
		s := padsrt.NewBytesSource(data)
		v, err := in.ParseSource(s)
		if err != nil {
			return // I/O-style failure is fine; panics are not
		}
		_ = v.PD()
	})
}
