package interp

import (
	"fmt"

	"pads/internal/dsl"
	"pads/internal/expr"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

// RecordReader iterates a data source one record at a time: the streaming
// entry point for sources shaped as "an optional header followed by a
// sequence of records", the pattern section 5.2 of the paper observes covers
// most ad hoc sources (both CLF and Sirius fit it). The whole file is never
// resident.
type RecordReader struct {
	in      *Interp
	s       *padsrt.Source
	mask    *padsrt.MaskNode
	recDecl dsl.Decl
	header  value.Value // parsed header, if the source has one

	// Error-budget state (docs/ROBUSTNESS.md). policy is read-only;
	// records/errored are this reader's cumulative counts; budgetErr,
	// once set, ends the scan (More reports false, Err reports it).
	policy    *Policy
	records   int
	errored   int
	budgetErr error
}

// SourceShape describes how a description's Psource decomposes for
// record-at-a-time reading.
type SourceShape struct {
	HeaderType string // "" when the source has no header record
	RecordType string
}

// Shape inspects the Psource declaration: either an array of records, or a
// struct of a header record followed by an array of records.
func (in *Interp) Shape() (SourceShape, error) {
	src := in.Desc.Source
	switch d := src.(type) {
	case *dsl.ArrayDecl:
		return SourceShape{RecordType: d.Elem.Name}, nil
	case *dsl.StructDecl:
		var shape SourceShape
		fields := 0
		for _, it := range d.Items {
			if it.Field == nil {
				continue
			}
			fields++
			ft := it.Field.Type.Name
			if fields == 1 {
				if fd, ok := in.Desc.Types[ft]; ok && sema.Annot(fd).IsRecord {
					shape.HeaderType = ft
					continue
				}
			}
			if ad, ok := in.Desc.Types[ft].(*dsl.ArrayDecl); ok && shape.RecordType == "" {
				shape.RecordType = ad.Elem.Name
				continue
			}
			return shape, fmt.Errorf("interp: source %s is not header+records shaped", d.Name)
		}
		if shape.RecordType == "" {
			return shape, fmt.Errorf("interp: source %s has no record sequence", d.Name)
		}
		return shape, nil
	default:
		return SourceShape{}, fmt.Errorf("interp: source %s is not record shaped", src.DeclName())
	}
}

// NewRecordReader prepares record-at-a-time reading, parsing the header (if
// the description has one) immediately. mask applies to each record.
func (in *Interp) NewRecordReader(s *padsrt.Source, mask *padsrt.MaskNode) (*RecordReader, error) {
	shape, err := in.Shape()
	if err != nil {
		return nil, err
	}
	rr := &RecordReader{in: in, s: s, mask: mask}
	rd, ok := in.Desc.Types[shape.RecordType]
	if !ok {
		return nil, fmt.Errorf("interp: unknown record type %s", shape.RecordType)
	}
	rr.recDecl = rd
	if shape.HeaderType != "" {
		hd := in.Desc.Types[shape.HeaderType]
		rr.header = in.parse(hd, s, nil, nil)
	}
	return rr, nil
}

// Header returns the parsed header record, or nil.
func (rr *RecordReader) Header() value.Value { return rr.header }

// SetPolicy installs an error budget and dead-letter sink for this scan.
// With a sink attached, the source snapshots erroneous record bodies so
// quarantine entries carry the raw bytes.
func (rr *RecordReader) SetPolicy(p *Policy) {
	rr.policy = p
	if p != nil && p.Sink != nil {
		rr.s.SetKeepErrRecords(true)
	}
}

// Counts reports how many records this reader has parsed and how many of
// those carried parse errors.
func (rr *RecordReader) Counts() (records, errored int) { return rr.records, rr.errored }

// More reports whether another record remains (and the budget allows it).
func (rr *RecordReader) More() bool {
	return rr.budgetErr == nil && rr.s.More() && rr.s.Err() == nil
}

// Read parses the next record.
func (rr *RecordReader) Read() value.Value {
	return rr.note(rr.in.parse(rr.recDecl, rr.s, rr.mask, nil))
}

// ReadWith parses the next record under a specific mask (overriding the
// reader's default), the per-application knob of section 5.1.2.
func (rr *RecordReader) ReadWith(mask *padsrt.MaskNode) value.Value {
	return rr.note(rr.in.parse(rr.recDecl, rr.s, mask, nil))
}

// note applies the error budget and dead-letter policy to a just-parsed
// record.
func (rr *RecordReader) note(v value.Value) value.Value {
	rr.records++
	if pd := v.PD(); pd.Nerr > 0 {
		rr.errored++
		if p := rr.policy; p != nil {
			if p.Sink != nil {
				e := entryFor(v, rr.s.LastErrRecord())
				if e.Record == 0 {
					e.Record = rr.s.RecordNum()
				}
				p.Sink.Quarantine(e)
			}
			rr.budgetErr = p.Check(rr.records, rr.errored)
		}
	}
	return v
}

// Shard returns a reader that parses records of the same type, under the
// same mask, from s — without re-parsing the source header. It is the
// per-chunk reader of internal/parallel: the caller parses the header once
// sequentially, then gives each worker a Shard over its chunk's source.
// The shard gets its own evaluator (expression evaluation carries call-depth
// state), so shards of one reader may run concurrently.
//
// Telemetry: the shard's interpreter counters route to the chunk source's
// private Stats (so concurrent shards never share a counter), and its
// profiler hooks to the chunk source's private Profiler, while the parent's
// Tracer — which is concurrency-safe — is shared, so a traced parallel
// parse emits every worker's events into one stream.
func (rr *RecordReader) Shard(s *padsrt.Source) *RecordReader {
	// The lowered program is immutable at parse time, so shards share the
	// parent's instead of re-lowering per chunk (Clone; a NewAST parent's
	// shards stay on the AST walk).
	in := rr.in.Clone()
	in.Stats = s.Stats()
	in.Prof = s.Prof()
	in.Tracer = rr.in.Tracer
	return &RecordReader{
		in:      in,
		s:       s,
		mask:    rr.mask,
		recDecl: rr.recDecl,
	}
}

// Err surfaces an exhausted error budget or any I/O error from the
// underlying source.
func (rr *RecordReader) Err() error {
	if rr.budgetErr != nil {
		return rr.budgetErr
	}
	return rr.s.Err()
}

// RecordTypeName names the per-record type.
func (rr *RecordReader) RecordTypeName() string { return rr.recDecl.DeclName() }

// AssembleSource rebuilds the Psource value from a sequentially-parsed
// header (nil when the source has no header) and the record values, in
// order — the merge step of a record-sharded parallel parse. The parse
// descriptors aggregate child errors exactly as a sequential ParseSource
// over the same records would (each erroneous record propagates into the
// array descriptor, and each field into the source struct's). Source-level
// Pwhere clauses and literal items are not re-evaluated; sources with them
// should parse sequentially.
func (in *Interp) AssembleSource(header value.Value, recs []value.Value) (value.Value, error) {
	src := in.Desc.Source
	switch d := src.(type) {
	case *dsl.ArrayDecl:
		return in.assembleRecords(d, recs), nil
	case *dsl.StructDecl:
		st := &value.Struct{Common: value.NewCommon(d.Name)}
		pd := st.PD()
		usedHeader := false
		for _, it := range d.Items {
			if it.Field == nil {
				continue
			}
			f := it.Field
			ft := f.Type.Name
			fd, ok := in.Desc.Types[ft]
			if !ok {
				return nil, fmt.Errorf("interp: unknown source field type %s", ft)
			}
			if !usedHeader && len(st.Names) == 0 && sema.Annot(fd).IsRecord {
				if header == nil {
					return nil, fmt.Errorf("interp: source %s has a header but none was parsed", d.Name)
				}
				usedHeader = true
				st.Names = append(st.Names, f.Name)
				st.Fields = append(st.Fields, header)
				pd.AddChildErrors(header.PD(), padsrt.ErrStructField)
				continue
			}
			if ad, ok := fd.(*dsl.ArrayDecl); ok {
				av := in.assembleRecords(ad, recs)
				st.Names = append(st.Names, f.Name)
				st.Fields = append(st.Fields, av)
				pd.AddChildErrors(av.PD(), padsrt.ErrStructField)
				continue
			}
			return nil, fmt.Errorf("interp: source %s is not header+records shaped", d.Name)
		}
		return st, nil
	default:
		return nil, fmt.Errorf("interp: source %s is not record shaped", src.DeclName())
	}
}

func (in *Interp) assembleRecords(d *dsl.ArrayDecl, recs []value.Value) value.Value {
	arr := &value.Array{Common: value.NewCommon(d.Name)}
	pd := arr.PD()
	for _, ev := range recs {
		if ev.PD().Nerr > 0 {
			pd.AddChildErrors(ev.PD(), padsrt.ErrArrayElem)
		}
		arr.Elems = append(arr.Elems, ev)
	}
	return arr
}

var _ = expr.V{} // keep the import set stable while the package grows
