// Package interp is the description interpreter: it parses data directly
// from a checked PADS description, producing generic values with nested
// parse descriptors. Its semantics are the reference for the generated
// parsers (the two are differentially tested against each other), and it
// powers the driver tools (padsacc, padsfmt, padsxml, padsquery) that work
// on any description without a compile step.
package interp

import (
	"fmt"
	"strings"

	"pads/internal/dsl"
	"pads/internal/expr"
	"pads/internal/ir"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/telemetry"
	"pads/internal/telemetry/prof"
	"pads/internal/value"
)

// Interp interprets one checked description.
//
// Stats and Tracer, when non-nil, observe the parse: Stats tallies errors by
// dotted field path and histograms union branch selection; Tracer emits one
// structured event per parsing decision (docs/OBSERVABILITY.md). Both default
// to nil, which costs one branch per decision and nothing else. An Interp is
// single-goroutine; sharded parses give each worker its own (see
// RecordReader.Shard, which routes the shard's counters to its chunk
// source's Stats).
type Interp struct {
	Desc   *sema.Desc
	Ev     *expr.Evaluator
	Stats  *telemetry.Stats
	Tracer *telemetry.Tracer

	// Prof, when non-nil, attributes wall time, bytes, and errors to
	// description node paths (telemetry/prof; the -profile flag). Its span
	// hooks are kept separate from the Stats/Tracer blocks because they
	// must not build path strings: the profiler interns nodes itself. Hook
	// discipline: each call site checks Prof.Sampling() once, remembers the
	// answer in a local, and only calls Exit if its own Enter ran — so
	// spans stay balanced even when the sampling state flips at a record
	// boundary between the two.
	Prof *prof.Profiler

	// prog is the lowered IR program (internal/ir). When non-nil, parsing
	// runs on the bytecode VM (vm.go); when nil, on the reference AST walk.
	// New lowers eagerly and falls back to the walk only if lowering fails;
	// NewAST pins the walk for differential testing.
	prog *ir.Program

	path []string // dotted field path stack, maintained only while observing
}

// observing reports whether any telemetry consumer is attached.
func (in *Interp) observing() bool { return in.Stats != nil || in.Tracer != nil }

func (in *Interp) pathString() string { return strings.Join(in.path, ".") }

// trace builds and emits an event only when a tracer is attached, so the
// disabled path never constructs an Event.
func (in *Interp) trace(ev, name string, s *padsrt.Source) {
	if in.Tracer == nil {
		return
	}
	p := s.Pos()
	in.Tracer.Emit(telemetry.Event{Ev: ev, Name: name, Off: p.Byte, Rec: p.Record})
}

// traceSpan emits an event covering [begin, here), with an optional error.
func (in *Interp) traceSpan(ev, name, branch string, begin padsrt.Pos, s *padsrt.Source, code padsrt.ErrCode) {
	if in.Tracer == nil {
		return
	}
	p := s.Pos()
	e := telemetry.Event{Ev: ev, Name: name, Branch: branch, Off: begin.Byte, End: p.Byte, Rec: p.Record}
	if code != padsrt.ErrNone {
		e.Err = code.String()
	}
	in.Tracer.Emit(e)
}

// New builds an interpreter for the description. The description is lowered
// to the flat IR once, here, and parsed by the bytecode VM; if lowering is
// not possible the reference AST walk takes over, so New never fails.
func New(desc *sema.Desc) *Interp {
	in := &Interp{Desc: desc, Ev: expr.New(desc)}
	if p, err := ir.Lower(desc); err == nil {
		in.prog = p
	}
	return in
}

// NewAST builds an interpreter pinned to the reference AST walk, bypassing
// the IR lowering. The conformance suite uses it as the semantic baseline
// the VM and the generated code are differentially tested against.
func NewAST(desc *sema.Desc) *Interp {
	return &Interp{Desc: desc, Ev: expr.New(desc)}
}

// Clone returns an interpreter over the same checked description and lowered
// program but with private mutable state: a fresh expression evaluator
// (evaluation carries call-depth state) and detached observers. It is the
// compile-once, parse-many primitive — internal/parallel shards and the
// padsd registry both clone one compiled description per concurrent parse
// instead of re-lowering it. A NewAST interpreter's clones stay on the AST
// walk.
func (in *Interp) Clone() *Interp {
	return &Interp{Desc: in.Desc, Ev: expr.New(in.Desc), prog: in.prog}
}

// ParseSource parses the entire data source according to the description's
// Psource declaration, with full checking. For large inputs prefer the
// record-at-a-time entry points (NewRecordReader).
func (in *Interp) ParseSource(s *padsrt.Source) (value.Value, error) {
	return in.ParseType(in.Desc.Source.DeclName(), s, nil, nil)
}

// ParseType parses a single value of the named type: the "multiple entry
// points" of section 4 that let applications read manageable portions of
// very large sources. args supplies values for the type's parameters; mask
// selects what to check and set (nil = check and set everything).
func (in *Interp) ParseType(name string, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) (value.Value, error) {
	d, ok := in.Desc.Types[name]
	if !ok {
		return nil, fmt.Errorf("interp: unknown type %s", name)
	}
	v := in.parse(d, s, mask, args)
	return v, s.Err()
}

// env bundles the lexical scope threaded through a parse.
type penv struct {
	env *expr.Env
}

func (in *Interp) bindParams(params []dsl.Param, args []expr.V) *expr.Env {
	e := expr.NewEnv(nil)
	for i, p := range params {
		if i < len(args) {
			e.Bind(p.Name, args[i])
		}
	}
	return e
}

// parseDecl parses one value of declaration d. It opens/closes a record
// window when d is Precord-annotated and performs panic-mode recovery to the
// record boundary when the content is damaged.
func (in *Interp) parseDecl(d dsl.Decl, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	an := sema.Annot(d)
	if an.IsRecord && !s.InRecord() {
		ok, err := s.BeginRecord()
		if err != nil {
			v := &value.Void{Common: value.NewCommon(d.DeclName())}
			v.PD().SetError(padsrt.ErrIO, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
			return v
		}
		if !ok {
			v := &value.Void{Common: value.NewCommon(d.DeclName())}
			v.PD().SetError(padsrt.ErrAtEOF, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
			return v
		}
		recBegin := s.Pos()
		if in.Prof != nil {
			in.Prof.BeginRecord(d.DeclName(), recBegin.Byte)
		}
		in.trace(telemetry.EvRecordBegin, d.DeclName(), s)
		v := in.parseDeclBody(d, s, mask, args)
		pd := v.PD()
		if s.RecordTruncated() {
			// The discipline clamped this record to Limits.MaxRecordLen:
			// whatever parsed is suspect, so flag the record and let the
			// resync below discard the visible remainder (EndRecord streams
			// away the rest of the oversized body).
			pd.SetError(padsrt.ErrRecordTooLong, padsrt.Loc{Begin: recBegin, End: s.Pos()})
		}
		if pd.Nerr > 0 && !s.AtEOR() {
			// Panic-mode resynchronization: skip to the record boundary.
			begin := s.Pos()
			if n := s.SkipToEOR(); n > 0 {
				pd.State = padsrt.Panicking
				pd.Nerr++
				in.traceSpan(telemetry.EvError, d.DeclName(), "", begin, s, padsrt.ErrPanicSkipped)
			}
		}
		s.EndRecord(pd)
		if in.Prof != nil {
			in.Prof.EndRecord(s.Pos().Byte, pd.Nerr > 0)
		}
		in.traceSpan(telemetry.EvRecordEnd, d.DeclName(), "", recBegin, s, pd.ErrCode)
		return v
	}
	return in.parseDeclBody(d, s, mask, args)
}

func (in *Interp) parseDeclBody(d dsl.Decl, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	switch d := d.(type) {
	case *dsl.StructDecl:
		return in.parseStruct(d, s, mask, args)
	case *dsl.UnionDecl:
		return in.parseUnion(d, s, mask, args)
	case *dsl.ArrayDecl:
		return in.parseArray(d, s, mask, args)
	case *dsl.EnumDecl:
		return in.parseEnum(d, s, mask)
	case *dsl.TypedefDecl:
		return in.parseTypedef(d, s, mask, args)
	}
	v := &value.Void{Common: value.NewCommon(d.DeclName())}
	v.PD().SetError(padsrt.ErrInternal, padsrt.Loc{})
	return v
}

// parseRef parses a value of the referenced type in the given scope.
func (in *Interp) parseRef(tr dsl.TypeRef, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	if tr.Opt {
		inner := tr
		inner.Opt = false
		opt := &value.Opt{Common: value.NewCommon("Popt " + tr.Name)}
		begin := s.Pos()
		s.Checkpoint()
		v := in.parseRefNonOpt(inner, s, mask, env)
		if v.PD().Nerr == 0 {
			s.Commit()
			opt.Present = true
			opt.Val = v
			return opt
		}
		s.Restore()
		_ = begin
		opt.Present = false
		return opt
	}
	return in.parseRefNonOpt(tr, s, mask, env)
}

func (in *Interp) parseRefNonOpt(tr dsl.TypeRef, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	if b := sema.LookupBase(tr.Name); b != nil {
		return in.parseBase(b, tr, s, mask, env)
	}
	d, ok := in.Desc.Types[tr.Name]
	if !ok {
		v := &value.Void{Common: value.NewCommon(tr.Name)}
		v.PD().SetError(padsrt.ErrInternal, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
		return v
	}
	args := make([]expr.V, 0, len(tr.Args))
	for _, a := range tr.Args {
		av, err := in.Ev.Eval(a, env)
		if err != nil {
			v := &value.Void{Common: value.NewCommon(tr.Name)}
			v.PD().SetError(padsrt.ErrBadParam, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
			return v
		}
		args = append(args, av)
	}
	return in.parseDecl(d, s, mask, args)
}

// matchLiteral matches a literal item, returning the error code.
func (in *Interp) matchLiteral(l *dsl.Literal, s *padsrt.Source) padsrt.ErrCode {
	switch l.Kind {
	case dsl.CharLit:
		return padsrt.MatchChar(s, l.Char)
	case dsl.StrLit:
		return padsrt.MatchString(s, l.Str)
	case dsl.RegexpLit:
		re := in.Desc.Regexps[l.Str]
		if re == nil {
			return padsrt.ErrInternal
		}
		return padsrt.MatchRegexp(s, re)
	case dsl.EORLit:
		return padsrt.MatchEOR(s)
	case dsl.EOFLit:
		return padsrt.MatchEOF(s)
	}
	return padsrt.ErrInternal
}

func (in *Interp) parseStruct(d *dsl.StructDecl, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	env := in.bindParams(d.Params, args)
	st := &value.Struct{Common: value.NewCommon(d.Name)}
	pd := st.PD()
	for _, it := range d.Items {
		if it.Lit != nil {
			begin := s.Pos()
			if code := in.matchLiteral(it.Lit, s); code != padsrt.ErrNone {
				pd.SetError(code, s.LocFrom(begin))
				if pd.State == padsrt.Normal {
					pd.State = padsrt.Partial
				}
				in.traceSpan(telemetry.EvError, d.Name, "", begin, s, code)
			}
			continue
		}
		f := it.Field
		fmask := mask.Field(f.Name)
		var fieldPath string
		var fieldBegin padsrt.Pos
		if in.observing() {
			in.path = append(in.path, f.Name)
			fieldPath = in.pathString()
			fieldBegin = s.Pos()
			in.trace(telemetry.EvFieldEnter, fieldPath, s)
		}
		profOpen := in.Prof.Sampling()
		if profOpen {
			in.Prof.Enter(f.Name, s.Pos().Byte)
		}
		fv := in.parseRef(f.Type, s, fmask, env)
		if f.Constraint != nil && fmask.BaseMask().DoCheck() && fv.PD().Nerr == 0 {
			fe := expr.NewEnv(env)
			fe.Bind(f.Name, expr.FromValue(fv))
			ok, _ := in.Ev.EvalPred(f.Constraint, fe)
			if !ok {
				fv.PD().SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
			}
		}
		if profOpen {
			in.Prof.Exit(s.Pos().Byte, fv.PD().Nerr > 0)
		}
		if in.observing() {
			if fpd := fv.PD(); fpd.Nerr > 0 {
				if in.Stats != nil {
					in.Stats.FieldError(fieldPath)
				}
				in.traceSpan(telemetry.EvFieldExit, fieldPath, "", fieldBegin, s, fpd.ErrCode)
			} else {
				in.traceSpan(telemetry.EvFieldExit, fieldPath, "", fieldBegin, s, padsrt.ErrNone)
			}
			in.path = in.path[:len(in.path)-1]
		}
		pd.AddChildErrors(fv.PD(), padsrt.ErrStructField)
		st.Names = append(st.Names, f.Name)
		st.Fields = append(st.Fields, fv)
		env.Bind(f.Name, expr.FromValue(fv))
	}
	if d.Where != nil && mask.CompoundMask().DoCheck() {
		ok, _ := in.Ev.EvalPred(d.Where, env)
		if !ok {
			pd.SetError(padsrt.ErrWhere, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
		}
	}
	return st
}

func (in *Interp) parseUnion(d *dsl.UnionDecl, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	env := in.bindParams(d.Params, args)
	un := &value.Union{Common: value.NewCommon(d.Name)}
	pd := un.PD()
	begin := s.Pos()

	if d.Switch != nil {
		sel, err := in.Ev.Eval(d.Switch.Selector, env)
		if err != nil {
			pd.SetError(padsrt.ErrBadParam, padsrt.Loc{Begin: begin, End: begin})
			return un
		}
		var chosen *dsl.SwitchCase
		var defaultCase *dsl.SwitchCase
		for i := range d.Switch.Cases {
			c := &d.Switch.Cases[i]
			if len(c.Values) == 0 {
				defaultCase = c
				continue
			}
			for _, vx := range c.Values {
				vv, err := in.Ev.Eval(vx, env)
				if err == nil && expr.EqualV(sel, vv) {
					chosen = c
					break
				}
			}
			if chosen != nil {
				break
			}
		}
		if chosen == nil {
			chosen = defaultCase
		}
		if chosen == nil {
			pd.SetError(padsrt.ErrUnionTag, padsrt.Loc{Begin: begin, End: begin})
			if in.Stats != nil {
				in.Stats.UnionChoice(d.Name, noBranch)
			}
			in.traceSpan(telemetry.EvError, d.Name, "", begin, s, padsrt.ErrUnionTag)
			return un
		}
		f := &chosen.Field
		profOpen := in.Prof.Sampling()
		if profOpen {
			in.Prof.Enter(f.Name, s.Pos().Byte)
		}
		bv := in.parseBranch(d, f, s, mask, env)
		if profOpen {
			in.Prof.Exit(s.Pos().Byte, bv.PD().Nerr > 0)
		}
		un.Tag = f.Name
		un.Val = bv
		pd.AddChildErrors(bv.PD(), padsrt.ErrStructField)
		if in.Stats != nil {
			in.Stats.UnionChoice(d.Name, f.Name)
		}
		in.traceSpan(telemetry.EvBranchSelect, d.Name, f.Name, begin, s, bv.PD().ErrCode)
		return un
	}

	for i := range d.Branches {
		f := &d.Branches[i]
		s.Checkpoint()
		if in.Tracer != nil {
			in.Tracer.Emit(telemetry.Event{
				Ev: telemetry.EvBranchAttempt, Name: d.Name, Branch: f.Name,
				Off: begin.Byte, Rec: begin.Record,
			})
		}
		profOpen := in.Prof.Sampling()
		if profOpen {
			in.Prof.Enter(f.Name, s.Pos().Byte)
		}
		bv := in.parseBranch(d, f, s, mask, env)
		if bv.PD().Nerr == 0 {
			s.Commit()
			if profOpen {
				in.Prof.Exit(s.Pos().Byte, false)
			}
			un.Tag = f.Name
			un.TagIdx = i
			un.Val = bv
			if in.Stats != nil {
				in.Stats.UnionChoice(d.Name, f.Name)
			}
			in.traceSpan(telemetry.EvBranchSelect, d.Name, f.Name, begin, s, padsrt.ErrNone)
			return un
		}
		// Close the span before Restore so the attempt's speculative
		// consumption is measurable (the cursor is about to rewind).
		if profOpen {
			in.Prof.ExitSpeculative(s.Pos().Byte)
		}
		in.traceSpan(telemetry.EvBranchBacktrack, d.Name, f.Name, begin, s, bv.PD().ErrCode)
		s.Restore()
	}
	pd.SetError(padsrt.ErrUnionMatch, padsrt.Loc{Begin: begin, End: s.Pos()})
	if in.Stats != nil {
		in.Stats.UnionChoice(d.Name, noBranch)
	}
	in.traceSpan(telemetry.EvError, d.Name, "", begin, s, padsrt.ErrUnionMatch)
	return un
}

// noBranch is the histogram key recorded when no union branch (or switch
// case) matched.
const noBranch = "<none>"

func (in *Interp) parseBranch(d *dsl.UnionDecl, f *dsl.Field, s *padsrt.Source, mask *padsrt.MaskNode, env *expr.Env) value.Value {
	fmask := mask.Field(f.Name)
	bv := in.parseRef(f.Type, s, fmask, env)
	// Branch constraints always run when checking is on: they decide
	// which branch matches (auth_id_t in Figure 4).
	if f.Constraint != nil && bv.PD().Nerr == 0 && fmask.BaseMask().DoCheck() {
		fe := expr.NewEnv(env)
		fe.Bind(f.Name, expr.FromValue(bv))
		ok, _ := in.Ev.EvalPred(f.Constraint, fe)
		if !ok {
			bv.PD().SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
		}
	}
	return bv
}

func (in *Interp) parseArray(d *dsl.ArrayDecl, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	env := in.bindParams(d.Params, args)
	arr := &value.Array{Common: value.NewCommon(d.Name)}
	pd := arr.PD()
	begin := s.Pos()

	var minSize, maxSize int64 = -1, -1
	if d.MinSize != nil {
		if v, err := in.Ev.Eval(d.MinSize, env); err == nil {
			minSize, _ = expr.ToInt(v)
		}
	}
	if d.MaxSize != nil {
		if v, err := in.Ev.Eval(d.MaxSize, env); err == nil {
			maxSize, _ = expr.ToInt(v)
		}
	}

	elemIsRecord := false
	if ed, ok := in.Desc.Types[d.Elem.Name]; ok && sema.Annot(ed).IsRecord {
		elemIsRecord = true
	}
	elemMask := mask.ElemMask()
	arrV := func() expr.V { return expr.FromValue(arr) }

	bindSeqEnv := func() *expr.Env {
		e := expr.NewEnv(env)
		e.Bind("elts", arrV())
		e.Bind("length", expr.Int(int64(len(arr.Elems))))
		return e
	}

	for {
		if maxSize >= 0 && int64(len(arr.Elems)) >= maxSize {
			break
		}
		// Pended predicate: stop before parsing the next element.
		if d.EndedPred != nil {
			if ok, _ := in.Ev.EvalPred(d.EndedPred, bindSeqEnv()); ok {
				break
			}
		}
		// Terminator checks.
		if d.Term != nil {
			stop := false
			switch d.Term.Kind {
			case dsl.EORLit:
				stop = s.AtEOR()
			case dsl.EOFLit:
				stop = s.AtEOF()
			default:
				// A literal terminator is consumed by the array.
				s.Checkpoint()
				if in.matchLiteral(d.Term, s) == padsrt.ErrNone {
					s.Commit()
					stop = true
				} else {
					s.Restore()
				}
			}
			if stop {
				break
			}
		}
		// Natural boundaries.
		if elemIsRecord && !s.InRecord() {
			if !s.More() {
				break
			}
		} else if s.AtEOR() || (!s.InRecord() && s.AtEOF()) {
			break
		}
		// Separator between elements.
		iterBegin := s.Pos()
		if len(arr.Elems) > 0 && d.Sep != nil {
			sepBegin := s.Pos()
			if code := in.matchLiteral(d.Sep, s); code != padsrt.ErrNone {
				pd.SetError(padsrt.ErrArraySep, s.LocFrom(sepBegin))
				break
			}
		}
		posBefore := s.Pos()
		profOpen := in.Prof.Sampling()
		if profOpen {
			in.Prof.Enter("[]", posBefore.Byte)
		}
		ev := in.parseRef(d.Elem, s, elemMask, env)
		if profOpen {
			in.Prof.Exit(s.Pos().Byte, ev.PD().Nerr > 0)
		}
		if ev.PD().Nerr > 0 {
			pd.AddChildErrors(ev.PD(), padsrt.ErrArrayElem)
			arr.Elems = append(arr.Elems, ev)
			if s.Pos() == posBefore {
				break // no progress: stop rather than loop forever
			}
		} else {
			arr.Elems = append(arr.Elems, ev)
			if maxSize < 0 && s.Pos() == iterBegin {
				// A clean zero-width element in an unbounded array (no
				// separator consumed either) would repeat forever.
				break
			}
		}
		// Plast predicate: stop after this element.
		if d.LastPred != nil {
			e := bindSeqEnv()
			e.Bind("elt", expr.FromValue(ev))
			if ok, _ := in.Ev.EvalPred(d.LastPred, e); ok {
				break
			}
		}
	}

	if minSize >= 0 && int64(len(arr.Elems)) < minSize && mask.CompoundMask().DoCheck() {
		pd.SetError(padsrt.ErrArraySize, s.LocFrom(begin))
	}
	if d.Where != nil && mask.CompoundMask().DoCheck() {
		ok, _ := in.Ev.EvalPred(d.Where, bindSeqEnv())
		if !ok {
			pd.SetError(padsrt.ErrWhere, s.LocFrom(begin))
		}
	}
	return arr
}

func (in *Interp) parseEnum(d *dsl.EnumDecl, s *padsrt.Source, mask *padsrt.MaskNode) value.Value {
	en := &value.Enum{Common: value.NewCommon(d.Name), Index: -1}
	begin := s.Pos()
	// Longest literal first so prefixes do not shadow longer members.
	best := -1
	for i, m := range d.Members {
		if best >= 0 && len(m.Repr) <= len(d.Members[best].Repr) {
			continue
		}
		w := s.Peek(len(m.Repr))
		if len(w) == len(m.Repr) && string(w) == m.Repr {
			best = i
		}
	}
	if best < 0 {
		en.PD().SetError(padsrt.ErrInvalidEnum, padsrt.Loc{Begin: begin, End: begin})
		return en
	}
	s.Skip(len(d.Members[best].Repr))
	en.Member = d.Members[best].Name
	en.Index = best
	return en
}

func (in *Interp) parseTypedef(d *dsl.TypedefDecl, s *padsrt.Source, mask *padsrt.MaskNode, args []expr.V) value.Value {
	env := in.bindParams(d.Params, args)
	v := in.parseRefNonOpt(d.Base, s, mask, env)
	if d.Constraint != nil && mask.BaseMask().DoCheck() && v.PD().Nerr == 0 {
		ce := expr.NewEnv(env)
		ce.Bind(d.VarName, expr.FromValue(v))
		ok, _ := in.Ev.EvalPred(d.Constraint, ce)
		if !ok {
			v.PD().SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})
		}
	}
	return v
}
