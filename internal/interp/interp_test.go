package interp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/dsl"
	"pads/internal/expr"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func compile(t *testing.T, src string) *Interp {
	t.Helper()
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return New(desc)
}

func compileFile(t *testing.T, name string) *Interp {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return compile(t, string(data))
}

func readFile(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func parseAll(t *testing.T, in *Interp, data string) value.Value {
	t.Helper()
	s := padsrt.NewBytesSource([]byte(data))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatalf("ParseSource: %v", err)
	}
	return v
}

// TestCLF parses the Figure 2 sample with the Figure 4 description (E2).
func TestCLF(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data := readFile(t, "clf.sample")
	s := padsrt.NewBytesSource(data)
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr, ok := v.(*value.Array)
	if !ok {
		t.Fatalf("top value is %T", v)
	}
	if len(arr.Elems) != 2 {
		t.Fatalf("records = %d, want 2", len(arr.Elems))
	}
	if arr.PD().Nerr != 0 {
		t.Fatalf("unexpected errors: %v", arr.PD())
	}

	r0 := arr.Elems[0].(*value.Struct)
	client := r0.Field("client").(*value.Union)
	if client.Tag != "ip" {
		t.Errorf("record 0 client branch = %s, want ip", client.Tag)
	}
	if ip := client.Val.(*value.IP); padsrt.FormatIP(ip.Val) != "207.136.97.49" {
		t.Errorf("ip = %s", padsrt.FormatIP(ip.Val))
	}
	if auth := r0.Field("auth").(*value.Union); auth.Tag != "unauthorized" {
		t.Errorf("auth branch = %s", auth.Tag)
	}
	req := r0.Field("request").(*value.Struct)
	meth := req.Field("meth").(*value.Enum)
	if meth.Member != "GET" {
		t.Errorf("method = %s", meth.Member)
	}
	if uri := req.Field("req_uri").(*value.Str); uri.Val != "/tk/p.txt" {
		t.Errorf("uri = %q", uri.Val)
	}
	ver := req.Field("version").(*value.Struct)
	if maj := ver.Field("major").(*value.Uint); maj.Val != 1 {
		t.Errorf("major = %d", maj.Val)
	}
	if resp := r0.Field("response").(*value.Uint); resp.Val != 200 {
		t.Errorf("response = %d", resp.Val)
	}
	if length := r0.Field("length").(*value.Uint); length.Val != 30 {
		t.Errorf("length = %d", length.Val)
	}
	date := r0.Field("date").(*value.Date)
	if date.Raw != "15/Oct/1997:18:46:51 -0700" {
		t.Errorf("date raw = %q", date.Raw)
	}

	r1 := arr.Elems[1].(*value.Struct)
	if host := r1.Field("client").(*value.Union); host.Tag != "host" {
		t.Errorf("record 1 client branch = %s, want host", host.Tag)
	}
	if m := r1.Field("request").(*value.Struct).Field("meth").(*value.Enum); m.Member != "POST" {
		t.Errorf("record 1 method = %s", m.Member)
	}
}

// TestSirius parses the Figure 3 sample with the Figure 5 description (E2).
func TestSirius(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	data := readFile(t, "sirius.sample")
	s := padsrt.NewBytesSource(data)
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	top := v.(*value.Struct)
	if top.PD().Nerr != 0 {
		t.Fatalf("unexpected errors: %v (value %s)", top.PD(), value.String(top))
	}
	hdr := top.Field("h").(*value.Struct)
	if ts := hdr.Field("tstamp").(*value.Uint); ts.Val != 1005022800 {
		t.Errorf("summary tstamp = %d", ts.Val)
	}
	entries := top.Field("es").(*value.Array)
	if len(entries.Elems) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries.Elems))
	}

	e0 := entries.Elems[0].(*value.Struct)
	h0 := e0.Field("header").(*value.Struct)
	if on := h0.Field("order_num").(*value.Uint); on.Val != 9152 {
		t.Errorf("order_num = %d", on.Val)
	}
	if tn := h0.Field("service_tn").(*value.Opt); !tn.Present || tn.Val.(*value.Uint).Val != 9735551212 {
		t.Errorf("service_tn = %s", value.String(tn))
	}
	if tn := h0.Field("nlp_service_tn").(*value.Opt); tn.Present {
		t.Errorf("nlp_service_tn should be absent, got %s", value.String(tn))
	}
	if zip := h0.Field("zip_code").(*value.Opt); !zip.Present || zip.Val.(*value.Str).Val != "07988" {
		t.Errorf("zip = %s", value.String(zip))
	}
	ramp := h0.Field("ramp").(*value.Union)
	if ramp.Tag != "genRamp" {
		t.Fatalf("ramp branch = %s, want genRamp", ramp.Tag)
	}
	if id := ramp.Val.(*value.Struct).Field("id").(*value.Uint); id.Val != 152272 {
		t.Errorf("generated ramp id = %d", id.Val)
	}
	ev0 := e0.Field("events").(*value.Array)
	if len(ev0.Elems) != 1 {
		t.Fatalf("entry 0 events = %d, want 1", len(ev0.Elems))
	}
	if st := ev0.Elems[0].(*value.Struct).Field("state").(*value.Str); st.Val != "10" {
		t.Errorf("event state = %q", st.Val)
	}

	e1 := entries.Elems[1].(*value.Struct)
	h1 := e1.Field("header").(*value.Struct)
	if ramp := h1.Field("ramp").(*value.Union); ramp.Tag != "ramp" {
		t.Errorf("entry 1 ramp branch = %s", ramp.Tag)
	}
	ev1 := e1.Field("events").(*value.Array)
	if len(ev1.Elems) != 2 {
		t.Fatalf("entry 1 events = %d, want 2", len(ev1.Elems))
	}
	if st := ev1.Elems[1].(*value.Struct).Field("state").(*value.Str); st.Val != "LOC_OS_10" {
		t.Errorf("event state = %q", st.Val)
	}
}

func TestSiriusSortedTimestampViolation(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	// Events out of order: 2000 then 1000.
	data := "0|1005022800\n1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000\n"
	s := padsrt.NewBytesSource([]byte(data))
	v, _ := in.ParseSource(s)
	top := v.(*value.Struct)
	entry := top.Field("es").(*value.Array).Elems[0].(*value.Struct)
	events := entry.Field("events").(*value.Array)
	if events.PD().ErrCode != padsrt.ErrWhere {
		t.Errorf("events pd = %v, want ErrWhere", events.PD())
	}
	if top.PD().Nerr == 0 {
		t.Error("error did not propagate to the top-level descriptor")
	}
}

func TestMaskSkipsWhereCheck(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	data := "0|1005022800\n1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000\n"

	// Figure 7's mask: check everything except the event-sequence sort.
	mask := padsrt.NewMaskNode(padsrt.CheckAndSet)
	entryMask := padsrt.NewMaskNode(padsrt.CheckAndSet)
	eventsMask := padsrt.NewMaskNode(padsrt.CheckAndSet)
	eventsMask.Compound = padsrt.Set
	entryMask.SetField("events", eventsMask)
	// The source struct -> es array -> element mask.
	esMask := padsrt.NewMaskNode(padsrt.CheckAndSet)
	esMask.Elem = entryMask
	mask.SetField("es", esMask)

	s := padsrt.NewBytesSource([]byte(data))
	d := in.Desc.Source
	v := in.parseDecl(d, s, mask, nil)
	if v.PD().Nerr != 0 {
		t.Errorf("with Pwhere masked off, errors = %v", v.PD())
	}
}

func TestCLFBadLengthField(t *testing.T) {
	in := compileFile(t, "clf.pads")
	// The undocumented '-' in the length field found by the accumulator
	// in section 5.2.
	data := `1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 200 -` + "\n"
	s := padsrt.NewBytesSource([]byte(data))
	v, _ := in.ParseSource(s)
	arr := v.(*value.Array)
	rec := arr.Elems[0].(*value.Struct)
	if rec.PD().Nerr == 0 {
		t.Fatal("bad length field not detected")
	}
	length := rec.Field("length")
	if length.PD().ErrCode != padsrt.ErrInvalidInt {
		t.Errorf("length pd = %v", length.PD())
	}
	// The record before it is unaffected when parsing continues.
	if rec.Field("response").(*value.Uint).Val != 200 {
		t.Error("good fields before the error were lost")
	}
}

func TestCLFConstraintViolation(t *testing.T) {
	in := compileFile(t, "clf.pads")
	// LINK with HTTP/1.0 violates chkVersion.
	data := `1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "LINK /x HTTP/1.0" 200 5` + "\n"
	s := padsrt.NewBytesSource([]byte(data))
	v, _ := in.ParseSource(s)
	rec := v.(*value.Array).Elems[0].(*value.Struct)
	ver := rec.Field("request").(*value.Struct).Field("version")
	if ver.PD().ErrCode != padsrt.ErrConstraint {
		t.Errorf("version pd = %v, want ErrConstraint", ver.PD())
	}
	// LINK with HTTP/1.1 is fine.
	data = `1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "LINK /x HTTP/1.1" 200 5` + "\n"
	s = padsrt.NewBytesSource([]byte(data))
	v, _ = in.ParseSource(s)
	if v.PD().Nerr != 0 {
		t.Errorf("HTTP/1.1 LINK flagged: %v", v.PD())
	}
}

func TestResponseCodeTypedef(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data := `1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 999 5` + "\n"
	s := padsrt.NewBytesSource([]byte(data))
	v, _ := in.ParseSource(s)
	rec := v.(*value.Array).Elems[0].(*value.Struct)
	resp := rec.Field("response")
	if resp.PD().ErrCode != padsrt.ErrConstraint {
		t.Errorf("response pd = %v, want ErrConstraint (999 out of range)", resp.PD())
	}
}

func TestSwitchedUnion(t *testing.T) {
	in := compile(t, `
Punion payload_t (:Puint8 tag:) Pswitch (tag) {
  Pcase 1: Puint32 num;
  Pcase 2: Pstring(:Peor:) text;
  Pdefault: Pchar other;
};
Precord Pstruct msg_t {
  Puint8 tag; '|';
  payload_t(:tag:) payload;
};
Psource Parray msgs_t { msg_t[]; };
`)
	s := padsrt.NewBytesSource([]byte("1|775\n2|hello\n9|x\n"))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if arr.PD().Nerr != 0 {
		t.Fatalf("errors: %v", arr.PD())
	}
	p0 := arr.Elems[0].(*value.Struct).Field("payload").(*value.Union)
	if p0.Tag != "num" || p0.Val.(*value.Uint).Val != 775 {
		t.Errorf("msg 0 = %s", value.String(p0))
	}
	p1 := arr.Elems[1].(*value.Struct).Field("payload").(*value.Union)
	if p1.Tag != "text" || p1.Val.(*value.Str).Val != "hello" {
		t.Errorf("msg 1 = %s", value.String(p1))
	}
	p2 := arr.Elems[2].(*value.Struct).Field("payload").(*value.Union)
	if p2.Tag != "other" {
		t.Errorf("msg 2 = %s", value.String(p2))
	}
}

func TestArrayForms(t *testing.T) {
	// Fixed size.
	in := compile(t, `
Parray fixed_t { Puint8[3] : Psep (','); };
Precord Pstruct row_t { fixed_t v; };
Psource Pstruct top_t { row_t r; };
`)
	s := padsrt.NewBytesSource([]byte("1,2,3\n"))
	v, _ := in.ParseSource(s)
	arr := v.(*value.Struct).Field("r").(*value.Struct).Field("v").(*value.Array)
	if len(arr.Elems) != 3 || arr.PD().Nerr != 0 {
		t.Fatalf("fixed array = %s pd=%v", value.String(arr), arr.PD())
	}

	// Too few elements: ErrArraySize.
	s = padsrt.NewBytesSource([]byte("1,2\n"))
	v, _ = in.ParseSource(s)
	arr = v.(*value.Struct).Field("r").(*value.Struct).Field("v").(*value.Array)
	if arr.PD().ErrCode != padsrt.ErrArraySize {
		t.Errorf("short fixed array pd = %v", arr.PD())
	}

	// Plast termination.
	in2 := compile(t, `
Parray untilZero_t { Puint32[] : Psep (' ') && Plast (elt == 0); };
Precord Pstruct row_t { untilZero_t v; ' '; Pstring(:Peor:) rest; };
Psource Pstruct top_t { row_t r; };
`)
	s = padsrt.NewBytesSource([]byte("5 4 0 tail\n"))
	v, _ = in2.ParseSource(s)
	row := v.(*value.Struct).Field("r").(*value.Struct)
	arr = row.Field("v").(*value.Array)
	if len(arr.Elems) != 3 {
		t.Fatalf("Plast array = %s", value.String(arr))
	}
	if rest := row.Field("rest").(*value.Str); rest.Val != "tail" {
		t.Errorf("rest = %q", rest.Val)
	}

	// Literal terminator is consumed.
	in3 := compile(t, `
Parray csv_t { Puint32[] : Psep (',') && Pterm (';'); };
Precord Pstruct row_t { csv_t v; Pstring(:Peor:) rest; };
Psource Pstruct top_t { row_t r; };
`)
	s = padsrt.NewBytesSource([]byte("1,2,3;rest\n"))
	v, _ = in3.ParseSource(s)
	row = v.(*value.Struct).Field("r").(*value.Struct)
	arr = row.Field("v").(*value.Array)
	if len(arr.Elems) != 3 || arr.PD().Nerr != 0 {
		t.Fatalf("terminated array = %s pd=%v", value.String(arr), arr.PD())
	}
	if rest := row.Field("rest").(*value.Str); rest.Val != "rest" {
		t.Errorf("rest = %q (terminator not consumed?)", rest.Val)
	}
}

func TestParameterizedWidth(t *testing.T) {
	in := compile(t, `
Precord Pstruct sized_t {
  Puint32 n; '|';
  Pstring_FW(:n:) body;
};
Psource Parray rows_t { sized_t[]; };
`)
	s := padsrt.NewBytesSource([]byte("5|abcde\n3|xyz\n"))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if arr.PD().Nerr != 0 {
		t.Fatalf("errors: %v", arr.PD())
	}
	if b := arr.Elems[0].(*value.Struct).Field("body").(*value.Str); b.Val != "abcde" {
		t.Errorf("body = %q", b.Val)
	}
	if b := arr.Elems[1].(*value.Struct).Field("body").(*value.Str); b.Val != "xyz" {
		t.Errorf("body = %q", b.Val)
	}
}

func TestBinaryFixedRecords(t *testing.T) {
	in := compile(t, `
Pstruct flow_t {
  Pb_uint32 src;
  Pb_uint32 dst;
  Pb_uint16 packets;
  Pb_uint16 bytes;
};
Psource Parray flows_t { flow_t[]; };
`)
	var data []byte
	data = padsrt.AppendBUint(data, 0x0A000001, 4, padsrt.BigEndian)
	data = padsrt.AppendBUint(data, 0x0A000002, 4, padsrt.BigEndian)
	data = padsrt.AppendBUint(data, 7, 2, padsrt.BigEndian)
	data = padsrt.AppendBUint(data, 512, 2, padsrt.BigEndian)
	s := padsrt.NewBytesSource(data, padsrt.WithDiscipline(padsrt.NoRecords()))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if len(arr.Elems) != 1 || arr.PD().Nerr != 0 {
		t.Fatalf("flows = %s pd=%v", value.String(arr), arr.PD())
	}
	f := arr.Elems[0].(*value.Struct)
	if f.Field("packets").(*value.Uint).Val != 7 || f.Field("bytes").(*value.Uint).Val != 512 {
		t.Errorf("flow = %s", value.String(f))
	}
}

func TestEBCDICParsing(t *testing.T) {
	in := compile(t, `
Precord Pstruct rec_t {
  Puint32 id; '|';
  Pstring(:Peor:) name;
};
Psource Parray recs_t { rec_t[]; };
`)
	data := padsrt.StringToEBCDICBytes("123|HELLO")
	data = append(data, 0x15) // EBCDIC NL
	s := padsrt.NewBytesSource(data,
		padsrt.WithCoding(padsrt.EBCDIC),
		padsrt.WithDiscipline(&padsrt.NewlineDisc{Term: 0x15}))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if arr.PD().Nerr != 0 {
		t.Fatalf("errors: %v", arr.PD())
	}
	rec := arr.Elems[0].(*value.Struct)
	if rec.Field("id").(*value.Uint).Val != 123 || rec.Field("name").(*value.Str).Val != "HELLO" {
		t.Errorf("rec = %s", value.String(rec))
	}
}

func TestCobolDecimals(t *testing.T) {
	in := compile(t, `
Pstruct amount_t {
  Pbcd(:7:) cents;
  Pzoned(:5:) balance;
};
Psource Pstruct top_t { amount_t a; };
`)
	var data []byte
	data = padsrt.WriteBCD(data, 1234567, 7)
	data = padsrt.WriteZoned(data, -42, 5)
	s := padsrt.NewBytesSource(data, padsrt.WithDiscipline(padsrt.NoRecords()))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	a := v.(*value.Struct).Field("a").(*value.Struct)
	if a.PD().Nerr != 0 {
		t.Fatalf("errors: %v", a.PD())
	}
	if a.Field("cents").(*value.Int).Val != 1234567 {
		t.Errorf("cents = %s", value.String(a.Field("cents")))
	}
	if a.Field("balance").(*value.Int).Val != -42 {
		t.Errorf("balance = %s", value.String(a.Field("balance")))
	}
}

func TestRecordReader(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	data := readFile(t, "sirius.sample")
	s := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Header() == nil || rr.Header().PD().Nerr != 0 {
		t.Fatalf("header = %v", rr.Header())
	}
	if rr.RecordTypeName() != "entry_t" {
		t.Errorf("record type = %s", rr.RecordTypeName())
	}
	n := 0
	for rr.More() {
		rec := rr.Read()
		if rec.PD().Nerr != 0 {
			t.Errorf("record %d errors: %v", n, rec.PD())
		}
		n++
	}
	if n != 2 {
		t.Errorf("records = %d, want 2", n)
	}

	// CLF has no header.
	in2 := compileFile(t, "clf.pads")
	s2 := padsrt.NewBytesSource(readFile(t, "clf.sample"))
	rr2, err := in2.NewRecordReader(s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Header() != nil {
		t.Error("CLF should have no header")
	}
	n = 0
	for rr2.More() {
		rr2.Read()
		n++
	}
	if n != 2 {
		t.Errorf("CLF records = %d", n)
	}
}

func TestPanicModeResync(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data := `garbage line that matches nothing
tj62.aol.com - - [16/Oct/1997:14:32:22 -0700] "POST /x HTTP/1.0" 200 941
`
	s := padsrt.NewBytesSource([]byte(data))
	v, _ := in.ParseSource(s)
	arr := v.(*value.Array)
	if len(arr.Elems) != 2 {
		t.Fatalf("records = %d, want 2 (bad + good)", len(arr.Elems))
	}
	if arr.Elems[0].PD().Nerr == 0 {
		t.Error("bad record not flagged")
	}
	if arr.Elems[0].PD().State == padsrt.Normal {
		t.Errorf("bad record state = %v, want Partial or Panicking", arr.Elems[0].PD().State)
	}
	if arr.Elems[1].PD().Nerr != 0 {
		t.Errorf("good record after resync has errors: %v", arr.Elems[1].PD())
	}

	// A record whose damage leaves unconsumed bytes triggers true
	// panic-mode resynchronization.
	data = `1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 999 12 trailing junk
tj62.aol.com - - [16/Oct/1997:14:32:22 -0700] "POST /x HTTP/1.0" 200 941
`
	s = padsrt.NewBytesSource([]byte(data))
	v, _ = in.ParseSource(s)
	arr = v.(*value.Array)
	if arr.Elems[0].PD().State != padsrt.Panicking {
		t.Errorf("state = %v, want Panicking", arr.Elems[0].PD().State)
	}
	if arr.Elems[1].PD().Nerr != 0 {
		t.Errorf("record after panic resync has errors: %v", arr.Elems[1].PD())
	}
}

func TestWriteBackRoundTrip(t *testing.T) {
	cases := []struct{ desc, data string }{
		{"clf.pads", "clf.sample"},
		{"sirius.pads", "sirius.sample"},
	}
	for _, c := range cases {
		in := compileFile(t, c.desc)
		data := readFile(t, c.data)
		s := padsrt.NewBytesSource(data)
		v, err := in.ParseSource(s)
		if err != nil {
			t.Fatal(err)
		}
		if v.PD().Nerr != 0 {
			t.Fatalf("%s: parse errors: %v", c.data, v.PD())
		}
		w := in.NewWriter()
		out, err := w.Append(nil, in.Desc.Source.DeclName(), v)
		if err != nil {
			t.Fatalf("%s: write: %v", c.data, err)
		}
		if string(out) != string(data) {
			t.Errorf("%s: round trip mismatch:\n--- in\n%s\n--- out\n%s", c.data, data, out)
		}
	}
}

func TestWriteRecordAtATime(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	data := readFile(t, "sirius.sample")
	s := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := in.NewWriter()
	var out []byte
	out, err = w.Append(out, "summary_header_t", rr.Header())
	if err != nil {
		t.Fatal(err)
	}
	for rr.More() {
		rec := rr.Read()
		out, err = w.Append(out, "entry_t", rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(out) != string(data) {
		t.Errorf("record-at-a-time round trip mismatch:\n%s", out)
	}
}

func TestStreamingLargeInput(t *testing.T) {
	// 20k records through a real reader: memory must stay bounded and
	// every record parse cleanly.
	in := compileFile(t, "sirius.pads")
	line := "7|7|1|9735551212|0||9085551212|07988|152268|LOC_6|0|F|DUO|A|1000|B|2000\n"
	r := &repeatReader{header: "0|1005022800\n", chunk: line, n: 20000}
	s := padsrt.NewSource(r)
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, bad := 0, 0
	for rr.More() {
		rec := rr.Read()
		if rec.PD().Nerr > 0 {
			bad++
		}
		n++
	}
	if n != 20000 || bad != 0 {
		t.Fatalf("records = %d (bad %d), want 20000 clean", n, bad)
	}
}

type repeatReader struct {
	header string
	chunk  string
	n      int
	off    int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if len(r.header) > 0 {
		n := copy(p, r.header)
		r.header = r.header[n:]
		return n, nil
	}
	if r.n == 0 {
		return 0, errEOF{}
	}
	n := copy(p, r.chunk[r.off:])
	r.off += n
	if r.off == len(r.chunk) {
		r.off = 0
		r.n--
	}
	return n, nil
}

type errEOF struct{}

func (errEOF) Error() string { return "EOF" }

func TestIgnoreMaskStillConsumesSyntax(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data := readFile(t, "clf.sample")
	mask := padsrt.NewMaskNode(padsrt.Ignore)
	s := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(s, mask)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rr.More() {
		rec := rr.Read()
		if rec.PD().Nerr != 0 {
			t.Errorf("ignore-mask parse flagged: %v", rec.PD())
		}
		n++
	}
	if n != 2 {
		t.Errorf("records = %d", n)
	}
}

func TestEnumLongestMatch(t *testing.T) {
	in := compile(t, `
Penum op_t { GET, GETX };
Precord Pstruct r_t { op_t op; };
Psource Parray rs_t { r_t[]; };
`)
	s := padsrt.NewBytesSource([]byte("GETX\nGET\n"))
	v, _ := in.ParseSource(s)
	arr := v.(*value.Array)
	if arr.PD().Nerr != 0 {
		t.Fatalf("errors: %v", arr.PD())
	}
	if m := arr.Elems[0].(*value.Struct).Field("op").(*value.Enum); m.Member != "GETX" {
		t.Errorf("longest match lost: %s", m.Member)
	}
	if m := arr.Elems[1].(*value.Struct).Field("op").(*value.Enum); m.Member != "GET" {
		t.Errorf("member = %s", m.Member)
	}
}

func TestExprEvaluatorViaConstraints(t *testing.T) {
	in := compile(t, `
bool inRange(Puint32 x, Puint32 lo, Puint32 hi) {
  if (x < lo) return false;
  if (x > hi) return false;
  return true;
};
Precord Pstruct r_t {
  Puint32 a;
  ' '; Puint32 b : inRange(b, a, a * 2) && b % 2 == 0;
};
Psource Parray rs_t { r_t[]; };
`)
	s := padsrt.NewBytesSource([]byte("10 14\n10 30\n10 15\n"))
	v, _ := in.ParseSource(s)
	arr := v.(*value.Array)
	if arr.Elems[0].PD().Nerr != 0 {
		t.Errorf("10 14 should pass: %v", arr.Elems[0].PD())
	}
	if arr.Elems[1].PD().Nerr == 0 {
		t.Error("30 > 2*10 should fail")
	}
	if arr.Elems[2].PD().Nerr == 0 {
		t.Error("odd 15 should fail")
	}
}

func TestUnionNoBranchMatches(t *testing.T) {
	in := compile(t, `
Punion num_t {
  Pip ip;
  Puint32 n;
};
Precord Pstruct r_t { num_t v; };
Psource Parray rs_t { r_t[]; };
`)
	s := padsrt.NewBytesSource([]byte("xyz\n"))
	v, _ := in.ParseSource(s)
	rec := v.(*value.Array).Elems[0].(*value.Struct)
	un := rec.Field("v").(*value.Union)
	if un.PD().ErrCode != padsrt.ErrUnionMatch {
		t.Errorf("pd = %v, want ErrUnionMatch", un.PD())
	}
}

func TestEmptyInput(t *testing.T) {
	in := compileFile(t, "clf.pads")
	s := padsrt.NewBytesSource(nil)
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if len(arr.Elems) != 0 || arr.PD().Nerr != 0 {
		t.Errorf("empty input: %s pd=%v", value.String(arr), arr.PD())
	}
}

func TestValueEqualAndString(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data := readFile(t, "clf.sample")
	v1, _ := in.ParseSource(padsrt.NewBytesSource(data))
	v2, _ := in.ParseSource(padsrt.NewBytesSource(data))
	if !value.Equal(v1, v2) {
		t.Error("identical parses are not Equal")
	}
	if !strings.Contains(value.String(v1), "GET") {
		t.Error("String() lost enum member")
	}
	// Different data: not equal.
	other := strings.Replace(string(data), "200 30", "200 31", 1)
	v3, _ := in.ParseSource(padsrt.NewBytesSource([]byte(other)))
	if value.Equal(v1, v3) {
		t.Error("different parses compare Equal")
	}
}

func TestParseTypeEntryPoint(t *testing.T) {
	in := compileFile(t, "clf.pads")
	// Parse a lone version_t, exercising the per-type entry point.
	s := padsrt.NewBytesSource([]byte("HTTP/1.0 rest\n"))
	s.BeginRecord()
	v, err := in.ParseType("version_t", s, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := v.(*value.Struct)
	if st.PD().Nerr != 0 || st.Field("major").(*value.Uint).Val != 1 || st.Field("minor").(*value.Uint).Val != 0 {
		t.Errorf("version = %s pd=%v", value.String(st), st.PD())
	}
	_, err = in.ParseType("no_such_type", s, nil, nil)
	if err == nil {
		t.Error("unknown type accepted")
	}
}

func TestExprV(t *testing.T) {
	if !expr.EqualV(expr.Int(5), expr.Uint(5)) {
		t.Error("5 != 5u")
	}
	if expr.EqualV(expr.Str("a"), expr.Int(1)) {
		t.Error("string equals int")
	}
	n, err := expr.ToInt(expr.Char('A'))
	if err != nil || n != 65 {
		t.Errorf("ToInt('A') = %d, %v", n, err)
	}
}

func testdataBytes(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join("..", "..", "testdata", name))
}
