// Package dsl implements the front end of the PADS data description
// language: a lexer, an abstract syntax, a recursive-descent parser, and a
// pretty printer. The surface syntax follows the paper (Figures 4 and 5):
// C-flavored type declarations (Pstruct, Punion, Parray, Penum, Popt,
// Ptypedef) with literals, type parameters written (: … :), per-field
// constraints, Pwhere clauses, Precord/Psource annotations, switched
// unions, and C-like predicate functions.
package dsl

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT    // 123
	FLOATLIT  // 1.5
	CHARLIT   // 'c'
	STRINGLIT // "text"

	// Punctuation.
	LBRACE   // {
	RBRACE   // }
	LPAREN   // (
	RPAREN   // )
	LBRACK   // [
	RBRACK   // ]
	LPARAM   // (:
	RPARAM   // :)
	SEMI     // ;
	COMMA    // ,
	COLON    // :
	DOT      // .
	DOTDOT   // ..
	ARROW    // =>
	QUESTION // ?

	// Operators.
	ASSIGN  // =
	EQ      // ==
	NE      // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	ANDAND  // &&
	OROR    // ||
	NOT     // !
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	// Keywords.
	KWSTRUCT  // Pstruct
	KWUNION   // Punion
	KWARRAY   // Parray
	KWENUM    // Penum
	KWOPT     // Popt
	KWTYPEDEF // Ptypedef
	KWRECORD  // Precord
	KWSOURCE  // Psource
	KWWHERE   // Pwhere
	KWFORALL  // Pforall
	KWEXISTS  // Pexists
	KWIN      // Pin
	KWSWITCH  // Pswitch
	KWCASE    // Pcase
	KWDEFAULT // Pdefault
	KWSEP     // Psep
	KWTERM    // Pterm
	KWLAST    // Plast
	KWENDED   // Pended
	KWEOR     // Peor
	KWEOF     // Peof
	KWRE      // Pre (regular-expression literal prefix)
	KWIF      // if
	KWELSE    // else
	KWRETURN  // return
	KWTRUE    // true
	KWFALSE   // false
)

var kindNames = map[Kind]string{
	EOF: "end of input", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal", CHARLIT: "character literal", STRINGLIT: "string literal",
	LBRACE: "{", RBRACE: "}", LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]",
	LPARAM: "(:", RPARAM: ":)", SEMI: ";", COMMA: ",", COLON: ":", DOT: ".",
	DOTDOT: "..", ARROW: "=>", QUESTION: "?",
	ASSIGN: "=", EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!", PLUS: "+", MINUS: "-", STAR: "*",
	SLASH: "/", PERCENT: "%",
	KWSTRUCT: "Pstruct", KWUNION: "Punion", KWARRAY: "Parray", KWENUM: "Penum",
	KWOPT: "Popt", KWTYPEDEF: "Ptypedef", KWRECORD: "Precord", KWSOURCE: "Psource",
	KWWHERE: "Pwhere", KWFORALL: "Pforall", KWEXISTS: "Pexists", KWIN: "Pin",
	KWSWITCH: "Pswitch", KWCASE: "Pcase", KWDEFAULT: "Pdefault",
	KWSEP: "Psep", KWTERM: "Pterm", KWLAST: "Plast", KWENDED: "Pended",
	KWEOR: "Peor", KWEOF: "Peof", KWRE: "Pre",
	KWIF: "if", KWELSE: "else", KWRETURN: "return", KWTRUE: "true", KWFALSE: "false",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"Pstruct": KWSTRUCT, "Punion": KWUNION, "Parray": KWARRAY, "Penum": KWENUM,
	"Popt": KWOPT, "Ptypedef": KWTYPEDEF, "Precord": KWRECORD, "Psource": KWSOURCE,
	"Pwhere": KWWHERE, "Pforall": KWFORALL, "Pexists": KWEXISTS, "Pin": KWIN,
	"Pswitch": KWSWITCH, "Pcase": KWCASE, "Pdefault": KWDEFAULT,
	"Psep": KWSEP, "Pterm": KWTERM, "Plast": KWLAST, "Pended": KWENDED,
	"Peor": KWEOR, "Peof": KWEOF, "Pre": KWRE,
	"if": KWIF, "else": KWELSE, "return": KWRETURN, "true": KWTRUE, "false": KWFALSE,
}

// Pos is a line/column source position (both 1-based).
type Pos struct {
	Line int
	Col  int
}

// String formats the position.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its position and decoded payload.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // raw text for IDENT; decoded text for STRINGLIT
	Int  int64  // value for INTLIT and CHARLIT
	Flt  float64
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INTLIT:
		return fmt.Sprintf("integer %d", t.Int)
	case STRINGLIT:
		return fmt.Sprintf("string %q", t.Text)
	case CHARLIT:
		return fmt.Sprintf("character %q", rune(t.Int))
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Errorf builds a positioned diagnostic.
func Errorf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
