package dsl

import (
	"os"
	"path/filepath"
	"testing"
)

func parseFile(t *testing.T, name string) *Program {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := Parse(string(data))
	for _, e := range errs {
		t.Errorf("%s: %v", name, e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return prog
}

func declByName(prog *Program, name string) Decl {
	for _, d := range prog.Decls {
		if d.DeclName() == name {
			return d
		}
	}
	return nil
}

func TestParseCLF(t *testing.T) {
	prog := parseFile(t, "clf.pads")
	wantDecls := []string{"client_t", "auth_id_t", "version_t", "method_t",
		"chkVersion", "request_t", "response_t", "entry_t", "clt_t"}
	if len(prog.Decls) != len(wantDecls) {
		t.Fatalf("got %d decls, want %d", len(prog.Decls), len(wantDecls))
	}
	for i, w := range wantDecls {
		if prog.Decls[i].DeclName() != w {
			t.Errorf("decl %d = %s, want %s", i, prog.Decls[i].DeclName(), w)
		}
	}

	client := declByName(prog, "client_t").(*UnionDecl)
	if len(client.Branches) != 2 || client.Branches[0].Type.Name != "Pip" || client.Branches[1].Type.Name != "Phostname" {
		t.Errorf("client_t branches wrong: %+v", client.Branches)
	}

	auth := declByName(prog, "auth_id_t").(*UnionDecl)
	if auth.Branches[0].Constraint == nil {
		t.Error("auth_id_t unauthorized branch lost its constraint")
	}

	version := declByName(prog, "version_t").(*StructDecl)
	if len(version.Items) != 4 {
		t.Fatalf("version_t items = %d, want 4 (literal, field, literal, field)", len(version.Items))
	}
	if version.Items[0].Lit == nil || version.Items[0].Lit.Str != "HTTP/" {
		t.Error("version_t leading literal wrong")
	}
	if version.Items[2].Lit == nil || version.Items[2].Lit.Char != '.' {
		t.Error("version_t dot literal wrong")
	}

	method := declByName(prog, "method_t").(*EnumDecl)
	if len(method.Members) != 7 || method.Members[0].Name != "GET" || method.Members[6].Name != "UNLINK" {
		t.Errorf("method_t members wrong: %+v", method.Members)
	}

	fn := declByName(prog, "chkVersion").(*FuncDecl)
	if fn.RetType != "bool" || len(fn.Params) != 2 || len(fn.Body) != 3 {
		t.Errorf("chkVersion signature/body wrong: ret=%s params=%d body=%d", fn.RetType, len(fn.Params), len(fn.Body))
	}

	resp := declByName(prog, "response_t").(*TypedefDecl)
	if resp.Base.Name != "Puint16_FW" || len(resp.Base.Args) != 1 {
		t.Errorf("response_t base = %+v", resp.Base)
	}
	if resp.VarName != "x" || resp.Constraint == nil {
		t.Errorf("response_t constraint lost: var=%q", resp.VarName)
	}

	entry := declByName(prog, "entry_t").(*StructDecl)
	if !entry.IsRecord || entry.IsSource {
		t.Error("entry_t must be Precord only")
	}
	// client, 3 separators+2 fields..., count items: field + (lit field)*6
	if len(entry.Items) != 13 {
		t.Errorf("entry_t items = %d, want 13", len(entry.Items))
	}

	top := declByName(prog, "clt_t").(*ArrayDecl)
	if !top.IsSource || top.Elem.Name != "entry_t" || top.Sep != nil || top.Term != nil {
		t.Errorf("clt_t wrong: %+v", top)
	}
}

func TestParseSirius(t *testing.T) {
	prog := parseFile(t, "sirius.pads")

	hdr := declByName(prog, "order_header_t").(*StructDecl)
	nopt := 0
	for _, it := range hdr.Items {
		if it.Field != nil && it.Field.Type.Opt {
			nopt++
		}
	}
	if nopt != 5 {
		t.Errorf("order_header_t Popt fields = %d, want 5", nopt)
	}

	seq := declByName(prog, "eventSeq").(*ArrayDecl)
	if seq.Sep == nil || seq.Sep.Char != '|' {
		t.Errorf("eventSeq Psep = %+v", seq.Sep)
	}
	if seq.Term == nil || seq.Term.Kind != EORLit {
		t.Errorf("eventSeq Pterm = %+v", seq.Term)
	}
	fa, ok := seq.Where.(*ForallExpr)
	if !ok {
		t.Fatalf("eventSeq Pwhere is %T, want Pforall", seq.Where)
	}
	if fa.Var != "i" || fa.Exists {
		t.Errorf("Pforall binder = %+v", fa)
	}
	le, ok := fa.Body.(*BinaryExpr)
	if !ok || le.Op != LE {
		t.Fatalf("Pforall body = %s", ExprString(fa.Body))
	}

	out := declByName(prog, "out_sum").(*StructDecl)
	if !out.IsSource {
		t.Error("out_sum must be Psource")
	}
}

func TestParseSwitchedUnion(t *testing.T) {
	src := `
Punion payload_t (:Puint8 tag:) Pswitch (tag) {
  Pcase 1: Puint32 num;
  Pcase 2, 3: Pstring(:'|':) text;
  Pdefault: Pstring(:Peor:) other;
};`
	prog, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	u := prog.Decls[0].(*UnionDecl)
	if u.Switch == nil {
		t.Fatal("switch lost")
	}
	if len(u.Switch.Cases) != 3 {
		t.Fatalf("cases = %d", len(u.Switch.Cases))
	}
	if len(u.Switch.Cases[1].Values) != 2 {
		t.Errorf("case 2 values = %d, want 2", len(u.Switch.Cases[1].Values))
	}
	if len(u.Switch.Cases[2].Values) != 0 {
		t.Error("default case should have no values")
	}
	if len(u.Params) != 1 || u.Params[0].Name != "tag" {
		t.Errorf("params = %+v", u.Params)
	}
}

func TestParseArraySizes(t *testing.T) {
	src := `
Parray five_t { Puint8[5]; };
Parray ranged_t (:Puint32 n:) { Puint8[2..n] : Psep (','); };
Parray lastp_t { Puint32[] : Plast (elt == 0); };
Parray endedp_t { Puint32[] : Psep (' ') && Pended (length == 4); };
`
	prog, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	five := prog.Decls[0].(*ArrayDecl)
	if five.MinSize == nil || five.MinSize != five.MaxSize {
		t.Error("fixed size should set MinSize==MaxSize")
	}
	ranged := prog.Decls[1].(*ArrayDecl)
	if ranged.MinSize == ranged.MaxSize {
		t.Error("range size should differ")
	}
	if prog.Decls[2].(*ArrayDecl).LastPred == nil {
		t.Error("Plast lost")
	}
	ep := prog.Decls[3].(*ArrayDecl)
	if ep.EndedPred == nil || ep.Sep == nil {
		t.Error("Pended/Psep lost")
	}
}

func TestParseRegexpLiteral(t *testing.T) {
	src := `
Pstruct re_t {
  Pre "[A-Z]+";
  Pstring_ME(:Pre "[0-9]*":) digits;
};`
	prog, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	st := prog.Decls[0].(*StructDecl)
	if st.Items[0].Lit == nil || st.Items[0].Lit.Kind != RegexpLit || st.Items[0].Lit.Str != "[A-Z]+" {
		t.Errorf("regexp literal = %+v", st.Items[0].Lit)
	}
	f := st.Items[1].Field
	if re, ok := f.Type.Args[0].(*RegexpExpr); !ok || re.Src != "[0-9]*" {
		t.Errorf("regexp arg = %+v", f.Type.Args[0])
	}
}

func TestParseTypographicQuotes(t *testing.T) {
	// Figures in the published PDF use ’…’ quotes; they must lex.
	src := "Pstruct q_t {\n  Pstring(:’ ’:) id; ’|’;\n};"
	prog, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	st := prog.Decls[0].(*StructDecl)
	if ch, ok := st.Items[0].Field.Type.Args[0].(*CharExpr); !ok || ch.Val != ' ' {
		t.Errorf("arg = %+v", st.Items[0].Field.Type.Args[0])
	}
	if st.Items[1].Lit.Char != '|' {
		t.Errorf("literal = %+v", st.Items[1].Lit)
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":           "1 + (2 * 3)",
		"a || b && c":         "a || (b && c)",
		"a == b || c == d":    "(a == b) || (c == d)",
		"100 <= x && x < 600": "(100 <= x) && (x < 600)",
		"-a + b":              "(-a) + b",
		"!x == y":             "(!x) == y",
		"a ? b : c ? d : e":   "a ? b : (c ? d : e)",
		"x.f[1].g":            "x.f[1].g",
		"f(a, g(b))":          "f(a, g(b))",
		"(1 + 2) * 3":         "(1 + 2) * 3",
		"a - b - c":           "(a - b) - c",
	}
	for in, want := range cases {
		e, errs := ParseExprString(in)
		if len(errs) > 0 {
			t.Errorf("%q: %v", in, errs[0])
			continue
		}
		if got := ExprString(e); got != want {
			t.Errorf("%q parsed as %q, want %q", in, got, want)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	for _, name := range []string{
		"clf.pads", "sirius.pads", "kitchen.pads",
		"netflow.pads", "calldetail.pads", "regulus.pads", "billing.pads",
	} {
		prog := parseFile(t, name)
		printed := Print(prog)
		prog2, errs := Parse(printed)
		if len(errs) > 0 {
			t.Fatalf("%s: reparse failed: %v\n%s", name, errs[0], printed)
		}
		printed2 := Print(prog2)
		if printed != printed2 {
			t.Errorf("%s: print/parse/print not a fixed point:\n--- first\n%s\n--- second\n%s", name, printed, printed2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"Pstruct {",                       // missing name
		"Pstruct s { Puint8; }",           // field missing a name
		"Penum e { }",                     // fine actually? empty enum allowed by grammar
		"Parray a { Puint8 };",            // missing []
		"Punion u { Puint8 x: ; };",       // missing constraint expr
		"bool f( { return true; };",       // bad params
		"Pstruct s { Puint8 x : 1 + ; };", // bad expr
	}
	for _, src := range cases {
		if src == "Penum e { }" {
			continue
		}
		_, errs := Parse(src)
		if len(errs) == 0 {
			t.Errorf("Parse(%q) reported no errors", src)
		}
	}
}

func TestParseRecoversAfterError(t *testing.T) {
	src := `
Pstruct bad { Puint8; };
Pstruct good { Puint8 x; };
`
	prog, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("expected an error for the bad decl")
	}
	if declByName(prog, "good") == nil {
		t.Error("parser did not recover to parse the following declaration")
	}
}

func TestLexerEscapes(t *testing.T) {
	toks, errs := Tokenize(`'\n' '\t' '\\' '\'' "a\"b\\c" '\0'`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	want := []int64{'\n', '\t', '\\', '\''}
	for i, w := range want {
		if toks[i].Kind != CHARLIT || toks[i].Int != w {
			t.Errorf("tok %d = %+v, want char %q", i, toks[i], rune(w))
		}
	}
	if toks[4].Kind != STRINGLIT || toks[4].Text != `a"b\c` {
		t.Errorf("string tok = %+v", toks[4])
	}
	if toks[5].Kind != CHARLIT || toks[5].Int != 0 {
		t.Errorf("nul tok = %+v", toks[5])
	}
}

func TestLexerComments(t *testing.T) {
	src := `
// line comment
/* block
   comment */ Pstruct s { /- PADS comment to end of line
  Puint8 x;
};`
	prog, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	if len(prog.Decls) != 1 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
}

func TestLexerPositions(t *testing.T) {
	toks, _ := Tokenize("a\n  bb\n c")
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) || toks[2].Pos != (Pos{3, 2}) {
		t.Errorf("positions = %v %v %v", toks[0].Pos, toks[1].Pos, toks[2].Pos)
	}
}

func TestFloatAndRangeDisambiguation(t *testing.T) {
	toks, errs := Tokenize("1.5 1..5 x.y")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	if toks[0].Kind != FLOATLIT || toks[0].Flt != 1.5 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != INTLIT || toks[2].Kind != DOTDOT || toks[3].Kind != INTLIT {
		t.Errorf("range toks = %v %v %v", toks[1].Kind, toks[2].Kind, toks[3].Kind)
	}
	if toks[4].Kind != IDENT || toks[5].Kind != DOT || toks[6].Kind != IDENT {
		t.Errorf("dot toks = %v %v %v", toks[4].Kind, toks[5].Kind, toks[6].Kind)
	}
}
