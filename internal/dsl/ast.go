package dsl

// Abstract syntax for PADS descriptions. A Program is a sequence of type and
// function declarations; types are declared before use and the type
// describing the totality of the source carries the Psource annotation
// (section 3 of the paper).

// Program is one parsed description.
type Program struct {
	Decls []Decl
}

// Decl is any top-level declaration.
type Decl interface {
	DeclName() string
	DeclPos() Pos
	decl()
}

// Annot carries the Precord/Psource prefix annotations a type declaration
// may have.
type Annot struct {
	IsRecord bool
	IsSource bool
}

// Param is a value parameter of a parameterized type or a function argument:
// a type name plus a binder.
type Param struct {
	Type string
	Name string
	Pos  Pos
}

// TypeRef is a use of a type: an optional Popt wrapper, the type name, and
// any value arguments, e.g. Popt Pstring(:'|':).
type TypeRef struct {
	Opt  bool
	Name string
	Args []Expr
	Pos  Pos
}

// LitKind classifies literal items.
type LitKind int

// Literal kinds.
const (
	CharLit LitKind = iota
	StrLit
	RegexpLit
	EORLit
	EOFLit
)

// Literal is a matched literal: a character, string, regular expression, or
// the Peor/Peof pseudo-literals.
type Literal struct {
	Kind LitKind
	Char byte
	Str  string // string literals and regexp source
	Pos  Pos
}

// Field is a named component of a struct or union: a type reference, the
// binder, and an optional trailing constraint expression in which the binder
// and all earlier fields are in scope.
type Field struct {
	Type       TypeRef
	Name       string
	Constraint Expr // nil if absent
	Pos        Pos
}

// StructItem is either a literal to match or a field to parse.
type StructItem struct {
	Lit   *Literal // exactly one of Lit, Field is set
	Field *Field
}

// StructDecl is a Pstruct: a fixed sequence of literals and fields.
type StructDecl struct {
	Annot
	Name   string
	Params []Param
	Items  []StructItem
	Where  Expr // optional Pwhere clause over the whole struct
	Pos    Pos
}

// UnionDecl is a Punion. If Switch is non-nil the union is switched: the
// selector expression picks the branch; otherwise branches are tried in
// order and the first that parses without error is taken.
type UnionDecl struct {
	Annot
	Name     string
	Params   []Param
	Branches []Field
	Switch   *SwitchSpec
	Where    Expr
	Pos      Pos
}

// SwitchSpec is the Pswitch part of a switched union.
type SwitchSpec struct {
	Selector Expr
	Cases    []SwitchCase
}

// SwitchCase is one Pcase (or Pdefault when Values is empty).
type SwitchCase struct {
	Values []Expr // empty = Pdefault
	Field  Field
	Pos    Pos
}

// ArrayDecl is a Parray: a sequence of elements of one type with optional
// separator, terminator, size bounds, and element/termination predicates.
type ArrayDecl struct {
	Annot
	Name   string
	Params []Param
	Elem   TypeRef
	// Size bounds: nil means unbounded. MinSize==MaxSize for a fixed size.
	MinSize Expr
	MaxSize Expr
	Sep     *Literal // Psep
	Term    *Literal // Pterm (possibly Peor/Peof)
	// Plast(pred): stop after an element for which pred holds.
	LastPred Expr
	// Pended(pred): before each element, stop if pred holds.
	EndedPred Expr
	Where     Expr // Pwhere over elts/length
	Pos       Pos
}

// EnumMember is one literal of a Penum, with an optional explicit source
// representation (GET Pfrom("get")) and an optional explicit value.
type EnumMember struct {
	Name string
	Repr string // source text matched; defaults to Name
	Pos  Pos
}

// EnumDecl is a Penum: a fixed collection of literals.
type EnumDecl struct {
	Annot
	Name    string
	Members []EnumMember
	Pos     Pos
}

// TypedefDecl is a Ptypedef: a new type that adds constraints to an
// existing type. The constraint binds VarName to the parsed value:
//
//	Ptypedef Puint16_FW(:3:) response_t : response_t x => { 100 <= x && x < 600 };
type TypedefDecl struct {
	Annot
	Name       string
	Params     []Param
	Base       TypeRef
	VarName    string // binder in the constraint; "" if no constraint
	Constraint Expr   // nil if absent
	Pos        Pos
}

// FuncDecl is a C-like predicate or helper function used in constraints
// (chkVersion in Figure 4).
type FuncDecl struct {
	Name    string
	RetType string
	Params  []Param
	Body    []Stmt
	Pos     Pos
}

func (d *StructDecl) DeclName() string  { return d.Name }
func (d *UnionDecl) DeclName() string   { return d.Name }
func (d *ArrayDecl) DeclName() string   { return d.Name }
func (d *EnumDecl) DeclName() string    { return d.Name }
func (d *TypedefDecl) DeclName() string { return d.Name }
func (d *FuncDecl) DeclName() string    { return d.Name }

func (d *StructDecl) DeclPos() Pos  { return d.Pos }
func (d *UnionDecl) DeclPos() Pos   { return d.Pos }
func (d *ArrayDecl) DeclPos() Pos   { return d.Pos }
func (d *EnumDecl) DeclPos() Pos    { return d.Pos }
func (d *TypedefDecl) DeclPos() Pos { return d.Pos }
func (d *FuncDecl) DeclPos() Pos    { return d.Pos }

func (*StructDecl) decl()  {}
func (*UnionDecl) decl()   {}
func (*ArrayDecl) decl()   {}
func (*EnumDecl) decl()    {}
func (*TypedefDecl) decl() {}
func (*FuncDecl) decl()    {}

// ---- Expressions ----

// Expr is a node of the C-like expression sub-language used in constraints,
// type arguments, switch selectors, and Pwhere clauses.
type Expr interface {
	ExprPos() Pos
	expr()
}

// IntExpr is an integer literal.
type IntExpr struct {
	Val int64
	Pos Pos
}

// FloatExpr is a floating-point literal.
type FloatExpr struct {
	Val float64
	Pos Pos
}

// CharExpr is a character literal.
type CharExpr struct {
	Val byte
	Pos Pos
}

// StrExpr is a string literal.
type StrExpr struct {
	Val string
	Pos Pos
}

// BoolExpr is true/false.
type BoolExpr struct {
	Val bool
	Pos Pos
}

// RegexpExpr is a Pre "…" regular-expression literal used as a type
// argument or matched literal.
type RegexpExpr struct {
	Src string
	Pos Pos
}

// EORExpr / EOFExpr are the Peor/Peof pseudo-literals in argument position
// (e.g. Pstring(:Peor:)).
type EORExpr struct{ Pos Pos }

// EOFExpr is the Peof pseudo-literal.
type EOFExpr struct{ Pos Pos }

// IdentExpr is a variable reference: a field binder, a parameter, an enum
// literal, or the array pseudo-variables elts/length/this.
type IdentExpr struct {
	Name string
	Pos  Pos
}

// CallExpr is a function application f(a, b).
type CallExpr struct {
	Func string
	Args []Expr
	Pos  Pos
}

// DotExpr is field selection e.f.
type DotExpr struct {
	X     Expr
	Field string
	Pos   Pos
}

// IndexExpr is subscripting e[i].
type IndexExpr struct {
	X     Expr
	Index Expr
	Pos   Pos
}

// UnaryExpr is !e or -e.
type UnaryExpr struct {
	Op  Kind // NOT or MINUS
	X   Expr
	Pos Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
	Pos  Pos
}

// CondExpr is c ? t : f.
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

// ForallExpr is Pforall (i Pin [lo..hi] : body); Exists flips the
// quantifier (Pexists).
type ForallExpr struct {
	Exists bool
	Var    string
	Lo, Hi Expr
	Body   Expr
	Pos    Pos
}

func (e *IntExpr) ExprPos() Pos    { return e.Pos }
func (e *FloatExpr) ExprPos() Pos  { return e.Pos }
func (e *CharExpr) ExprPos() Pos   { return e.Pos }
func (e *StrExpr) ExprPos() Pos    { return e.Pos }
func (e *BoolExpr) ExprPos() Pos   { return e.Pos }
func (e *RegexpExpr) ExprPos() Pos { return e.Pos }
func (e *EORExpr) ExprPos() Pos    { return e.Pos }
func (e *EOFExpr) ExprPos() Pos    { return e.Pos }
func (e *IdentExpr) ExprPos() Pos  { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
func (e *DotExpr) ExprPos() Pos    { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *CondExpr) ExprPos() Pos   { return e.Pos }
func (e *ForallExpr) ExprPos() Pos { return e.Pos }

func (*IntExpr) expr()    {}
func (*FloatExpr) expr()  {}
func (*CharExpr) expr()   {}
func (*StrExpr) expr()    {}
func (*BoolExpr) expr()   {}
func (*RegexpExpr) expr() {}
func (*EORExpr) expr()    {}
func (*EOFExpr) expr()    {}
func (*IdentExpr) expr()  {}
func (*CallExpr) expr()   {}
func (*DotExpr) expr()    {}
func (*IndexExpr) expr()  {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CondExpr) expr()   {}
func (*ForallExpr) expr() {}

// ---- Statements (function bodies) ----

// Stmt is a statement in a predicate-function body.
type Stmt interface {
	StmtPos() Pos
	stmt()
}

// VarStmt declares and initializes a local: type name = expr;
type VarStmt struct {
	Type string
	Name string
	Init Expr
	Pos  Pos
}

// AssignStmt is name = expr;
type AssignStmt struct {
	Name string
	Val  Expr
	Pos  Pos
}

// IfStmt is if (cond) { … } [else { … }] (braces optional around single
// statements).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// ReturnStmt is return expr;
type ReturnStmt struct {
	Val Expr
	Pos Pos
}

// ExprStmt evaluates an expression for effect (function calls).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (s *VarStmt) StmtPos() Pos    { return s.Pos }
func (s *AssignStmt) StmtPos() Pos { return s.Pos }
func (s *IfStmt) StmtPos() Pos     { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos   { return s.Pos }

func (*VarStmt) stmt()    {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*ReturnStmt) stmt() {}
func (*ExprStmt) stmt()   {}
