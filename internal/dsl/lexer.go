package dsl

import (
	"strings"
)

// Lexer turns PADS description source into tokens. Comments come in three
// forms: C++ line comments (//), C block comments (/* */), and the PADS
// line-comment form (/-) used in the paper's figures. Character literals
// accept the ASCII quotes ' as well as the typographic quotes ’ that appear
// in the published paper, so the figures lex verbatim.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []*Error
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns diagnostics accumulated while scanning.
func (lx *Lexer) Errors() []*Error { return lx.errs }

func (lx *Lexer) errorf(pos Pos, format string, args ...interface{}) {
	lx.errs = append(lx.errs, Errorf(pos, format, args...))
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isIdentStart(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_'
}

func isIdentByte(b byte) bool { return isIdentStart(b) || b >= '0' && b <= '9' }

func isDecimal(b byte) bool { return b >= '0' && b <= '9' }

// typographic single quotes (U+2018/U+2019) as they appear in the paper PDF.
const (
	leftQuote   = "‘"
	rightQuote  = "’"
	leftDQuote  = "“"
	rightDQuote = "”"
)

func (lx *Lexer) skipWhitespaceAndComments() {
	for lx.off < len(lx.src) {
		b := lx.peek()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.peekAt(1) == '-':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.peekAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipWhitespaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}
	}

	// Typographic quotes from the paper's figures.
	if strings.HasPrefix(lx.src[lx.off:], leftQuote) || strings.HasPrefix(lx.src[lx.off:], rightQuote) {
		return lx.scanCharQuoted(pos, true)
	}
	if strings.HasPrefix(lx.src[lx.off:], leftDQuote) || strings.HasPrefix(lx.src[lx.off:], rightDQuote) {
		return lx.scanStringQuoted(pos, true)
	}

	b := lx.peek()
	switch {
	case isIdentStart(b):
		start := lx.off
		for lx.off < len(lx.src) && isIdentByte(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}
		}
		return Token{Kind: IDENT, Pos: pos, Text: text}
	case isDecimal(b):
		return lx.scanNumber(pos)
	case b == '\'':
		return lx.scanCharQuoted(pos, false)
	case b == '"':
		return lx.scanStringQuoted(pos, false)
	}

	lx.advance()
	two := func(next byte, k2, k1 Kind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch b {
	case '{':
		return Token{Kind: LBRACE, Pos: pos}
	case '}':
		return Token{Kind: RBRACE, Pos: pos}
	case '(':
		if lx.peek() == ':' {
			lx.advance()
			return Token{Kind: LPARAM, Pos: pos}
		}
		return Token{Kind: LPAREN, Pos: pos}
	case ')':
		return Token{Kind: RPAREN, Pos: pos}
	case '[':
		return Token{Kind: LBRACK, Pos: pos}
	case ']':
		return Token{Kind: RBRACK, Pos: pos}
	case ';':
		return Token{Kind: SEMI, Pos: pos}
	case ',':
		return Token{Kind: COMMA, Pos: pos}
	case ':':
		if lx.peek() == ')' {
			lx.advance()
			return Token{Kind: RPARAM, Pos: pos}
		}
		return Token{Kind: COLON, Pos: pos}
	case '.':
		return two('.', DOTDOT, DOT)
	case '?':
		return Token{Kind: QUESTION, Pos: pos}
	case '=':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: ARROW, Pos: pos}
		}
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, NOT)
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: ANDAND, Pos: pos}
		}
		lx.errorf(pos, "unexpected character '&'")
		return lx.Next()
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: OROR, Pos: pos}
		}
		lx.errorf(pos, "unexpected character '|'")
		return lx.Next()
	case '+':
		return Token{Kind: PLUS, Pos: pos}
	case '-':
		return Token{Kind: MINUS, Pos: pos}
	case '*':
		return Token{Kind: STAR, Pos: pos}
	case '/':
		return Token{Kind: SLASH, Pos: pos}
	case '%':
		return Token{Kind: PERCENT, Pos: pos}
	}
	lx.errorf(pos, "unexpected character %q", rune(b))
	return lx.Next()
}

func (lx *Lexer) scanNumber(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isDecimal(lx.peek()) {
		lx.advance()
	}
	// A float needs a digit after the dot and must not be a range "..".
	if lx.peek() == '.' && isDecimal(lx.peekAt(1)) {
		lx.advance()
		for lx.off < len(lx.src) && isDecimal(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		return Token{Kind: FLOATLIT, Pos: pos, Flt: parseFloatLit(text), Text: text}
	}
	text := lx.src[start:lx.off]
	var v int64
	for i := 0; i < len(text); i++ {
		v = v*10 + int64(text[i]-'0')
	}
	return Token{Kind: INTLIT, Pos: pos, Int: v, Text: text}
}

func parseFloatLit(text string) float64 {
	var intPart, fracPart float64
	i := 0
	for i < len(text) && text[i] != '.' {
		intPart = intPart*10 + float64(text[i]-'0')
		i++
	}
	scale := 0.1
	for i++; i < len(text); i++ {
		fracPart += float64(text[i]-'0') * scale
		scale /= 10
	}
	return intPart + fracPart
}

// scanCharQuoted handles 'c' and the typographic ’c’ form.
func (lx *Lexer) scanCharQuoted(pos Pos, typographic bool) Token {
	lx.consumeQuote(typographic, false)
	if lx.off >= len(lx.src) {
		lx.errorf(pos, "unterminated character literal")
		return Token{Kind: EOF, Pos: pos}
	}
	var c byte
	if lx.peek() == '\\' {
		lx.advance()
		if lx.off >= len(lx.src) {
			lx.errorf(pos, "unterminated character literal")
			return Token{Kind: EOF, Pos: pos}
		}
		c = unescape(lx.advance())
	} else {
		c = lx.advance()
	}
	if !lx.consumeQuote(typographic, false) {
		lx.errorf(pos, "unterminated character literal")
	}
	return Token{Kind: CHARLIT, Pos: pos, Int: int64(c)}
}

func (lx *Lexer) scanStringQuoted(pos Pos, typographic bool) Token {
	lx.consumeQuote(typographic, true)
	var sb strings.Builder
	for lx.off < len(lx.src) {
		if typographic && (strings.HasPrefix(lx.src[lx.off:], rightDQuote) || strings.HasPrefix(lx.src[lx.off:], leftDQuote)) {
			lx.consumeQuote(true, true)
			return Token{Kind: STRINGLIT, Pos: pos, Text: sb.String()}
		}
		b := lx.peek()
		if !typographic && b == '"' {
			lx.advance()
			return Token{Kind: STRINGLIT, Pos: pos, Text: sb.String()}
		}
		if b == '\n' {
			break
		}
		if b == '\\' {
			lx.advance()
			if lx.off < len(lx.src) {
				sb.WriteByte(unescape(lx.advance()))
			}
			continue
		}
		sb.WriteByte(lx.advance())
	}
	lx.errorf(pos, "unterminated string literal")
	return Token{Kind: STRINGLIT, Pos: pos, Text: sb.String()}
}

// consumeQuote consumes one quote character of the given family; returns
// whether a quote was present.
func (lx *Lexer) consumeQuote(typographic, double bool) bool {
	if typographic {
		var quotes []string
		if double {
			quotes = []string{leftDQuote, rightDQuote}
		} else {
			quotes = []string{leftQuote, rightQuote}
		}
		for _, q := range quotes {
			if strings.HasPrefix(lx.src[lx.off:], q) {
				for i := 0; i < len(q); i++ {
					lx.advance()
				}
				return true
			}
		}
		return false
	}
	q := byte('\'')
	if double {
		q = '"'
	}
	if lx.peek() == q {
		lx.advance()
		return true
	}
	return false
}

func unescape(b byte) byte {
	switch b {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	default:
		return b
	}
}

// Tokenize scans the whole input.
func Tokenize(src string) ([]Token, []*Error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, lx.errs
		}
	}
}
