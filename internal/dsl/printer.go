package dsl

import (
	"fmt"
	"strings"
)

// Print renders a Program back to PADS surface syntax. The output parses to
// an equivalent Program (the round trip is property-tested), which lets
// descriptions serve as regenerable "living documentation".
func Print(prog *Program) string {
	var b strings.Builder
	for i, d := range prog.Decls {
		if i > 0 {
			b.WriteByte('\n')
		}
		printDecl(&b, d)
	}
	return b.String()
}

func annotPrefix(an Annot) string {
	s := ""
	if an.IsSource {
		s += "Psource "
	}
	if an.IsRecord {
		s += "Precord "
	}
	return s
}

func printParams(b *strings.Builder, params []Param) {
	if len(params) == 0 {
		return
	}
	b.WriteString("(:")
	for i, p := range params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", p.Type, p.Name)
	}
	b.WriteString(":)")
}

// TypeRefString renders a type reference.
func TypeRefString(tr TypeRef) string {
	var b strings.Builder
	if tr.Opt {
		b.WriteString("Popt ")
	}
	b.WriteString(tr.Name)
	if len(tr.Args) > 0 {
		b.WriteString("(:")
		for i, a := range tr.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprString(a))
		}
		b.WriteString(":)")
	}
	return b.String()
}

// LiteralString renders a literal item.
func LiteralString(l *Literal) string {
	switch l.Kind {
	case CharLit:
		return fmt.Sprintf("%s", quoteChar(l.Char))
	case StrLit:
		return quoteString(l.Str)
	case RegexpLit:
		return "Pre " + quoteString(l.Str)
	case EORLit:
		return "Peor"
	case EOFLit:
		return "Peof"
	}
	return "?"
}

func quoteChar(c byte) string {
	switch c {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case '\r':
		return `'\r'`
	case '\'':
		return `'\''`
	case '\\':
		return `'\\'`
	case 0:
		return `'\0'`
	}
	return "'" + string(c) + "'"
}

func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func printField(b *strings.Builder, f *Field) {
	b.WriteString(TypeRefString(f.Type))
	b.WriteByte(' ')
	b.WriteString(f.Name)
	if f.Constraint != nil {
		b.WriteString(" : ")
		b.WriteString(ExprString(f.Constraint))
	}
}

func printWhere(b *strings.Builder, where Expr) {
	if where != nil {
		b.WriteString(" Pwhere { ")
		b.WriteString(ExprString(where))
		b.WriteString(" }")
	}
}

func printDecl(b *strings.Builder, d Decl) {
	switch d := d.(type) {
	case *StructDecl:
		b.WriteString(annotPrefix(d.Annot))
		b.WriteString("Pstruct ")
		b.WriteString(d.Name)
		printParams(b, d.Params)
		b.WriteString(" {\n")
		for _, it := range d.Items {
			b.WriteString("  ")
			if it.Lit != nil {
				b.WriteString(LiteralString(it.Lit))
			} else {
				printField(b, it.Field)
			}
			b.WriteString(";\n")
		}
		b.WriteString("}")
		printWhere(b, d.Where)
		b.WriteString(";\n")
	case *UnionDecl:
		b.WriteString(annotPrefix(d.Annot))
		b.WriteString("Punion ")
		b.WriteString(d.Name)
		printParams(b, d.Params)
		if d.Switch != nil {
			b.WriteString(" Pswitch (")
			b.WriteString(ExprString(d.Switch.Selector))
			b.WriteString(") {\n")
			for _, c := range d.Switch.Cases {
				if len(c.Values) == 0 {
					b.WriteString("  Pdefault: ")
				} else {
					b.WriteString("  Pcase ")
					for i, v := range c.Values {
						if i > 0 {
							b.WriteString(", ")
						}
						b.WriteString(ExprString(v))
					}
					b.WriteString(": ")
				}
				printField(b, &c.Field)
				b.WriteString(";\n")
			}
		} else {
			b.WriteString(" {\n")
			for i := range d.Branches {
				b.WriteString("  ")
				printField(b, &d.Branches[i])
				b.WriteString(";\n")
			}
		}
		b.WriteString("}")
		printWhere(b, d.Where)
		b.WriteString(";\n")
	case *ArrayDecl:
		b.WriteString(annotPrefix(d.Annot))
		b.WriteString("Parray ")
		b.WriteString(d.Name)
		printParams(b, d.Params)
		b.WriteString(" {\n  ")
		b.WriteString(TypeRefString(d.Elem))
		b.WriteByte('[')
		if d.MinSize != nil {
			b.WriteString(ExprString(d.MinSize))
			if d.MaxSize != d.MinSize {
				b.WriteString("..")
				b.WriteString(ExprString(d.MaxSize))
			}
		}
		b.WriteByte(']')
		var specs []string
		if d.Sep != nil {
			specs = append(specs, "Psep ("+LiteralString(d.Sep)+")")
		}
		if d.Term != nil {
			specs = append(specs, "Pterm ("+LiteralString(d.Term)+")")
		}
		if d.LastPred != nil {
			specs = append(specs, "Plast ("+ExprString(d.LastPred)+")")
		}
		if d.EndedPred != nil {
			specs = append(specs, "Pended ("+ExprString(d.EndedPred)+")")
		}
		if len(specs) > 0 {
			b.WriteString(" : ")
			b.WriteString(strings.Join(specs, " && "))
		}
		b.WriteString(";\n}")
		printWhere(b, d.Where)
		b.WriteString(";\n")
	case *EnumDecl:
		b.WriteString(annotPrefix(d.Annot))
		b.WriteString("Penum ")
		b.WriteString(d.Name)
		b.WriteString(" {\n")
		for i, m := range d.Members {
			b.WriteString("  ")
			b.WriteString(m.Name)
			if m.Repr != m.Name {
				b.WriteString(" = ")
				b.WriteString(quoteString(m.Repr))
			}
			if i < len(d.Members)-1 {
				b.WriteByte(',')
			}
			b.WriteByte('\n')
		}
		b.WriteString("};\n")
	case *TypedefDecl:
		b.WriteString(annotPrefix(d.Annot))
		b.WriteString("Ptypedef ")
		b.WriteString(TypeRefString(d.Base))
		b.WriteByte(' ')
		b.WriteString(d.Name)
		printParams(b, d.Params)
		if d.Constraint != nil {
			fmt.Fprintf(b, " : %s %s => { %s }", d.Name, d.VarName, ExprString(d.Constraint))
		}
		b.WriteString(";\n")
	case *FuncDecl:
		fmt.Fprintf(b, "%s %s(", d.RetType, d.Name)
		for i, p := range d.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s %s", p.Type, p.Name)
		}
		b.WriteString(") {\n")
		printStmts(b, d.Body, "  ")
		b.WriteString("};\n")
	}
}

func printStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		b.WriteString(indent)
		printStmt(b, s, indent)
		b.WriteByte('\n')
	}
}

func printStmt(b *strings.Builder, s Stmt, indent string) {
	switch s := s.(type) {
	case *VarStmt:
		fmt.Fprintf(b, "%s %s = %s;", s.Type, s.Name, ExprString(s.Init))
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;", s.Name, ExprString(s.Val))
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) {\n", ExprString(s.Cond))
		printStmts(b, s.Then, indent+"  ")
		b.WriteString(indent)
		b.WriteString("}")
		if len(s.Else) > 0 {
			b.WriteString(" else {\n")
			printStmts(b, s.Else, indent+"  ")
			b.WriteString(indent)
			b.WriteString("}")
		}
	case *ReturnStmt:
		fmt.Fprintf(b, "return %s;", ExprString(s.Val))
	case *ExprStmt:
		fmt.Fprintf(b, "%s;", ExprString(s.X))
	}
}

// ExprString renders an expression with full parenthesization of compound
// subterms, which keeps the printer simple and the round trip exact.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntExpr:
		return fmt.Sprintf("%d", e.Val)
	case *FloatExpr:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", e.Val), "0"), ".")
	case *CharExpr:
		return quoteChar(e.Val)
	case *StrExpr:
		return quoteString(e.Val)
	case *BoolExpr:
		if e.Val {
			return "true"
		}
		return "false"
	case *RegexpExpr:
		return "Pre " + quoteString(e.Src)
	case *EORExpr:
		return "Peor"
	case *EOFExpr:
		return "Peof"
	case *IdentExpr:
		return e.Name
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return e.Func + "(" + strings.Join(args, ", ") + ")"
	case *DotExpr:
		return ExprString(e.X) + "." + e.Field
	case *IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *UnaryExpr:
		op := "!"
		if e.Op == MINUS {
			op = "-"
		}
		return op + parenthesize(e.X)
	case *BinaryExpr:
		return parenthesize(e.L) + " " + e.Op.String() + " " + parenthesize(e.R)
	case *CondExpr:
		return parenthesize(e.Cond) + " ? " + parenthesize(e.Then) + " : " + parenthesize(e.Else)
	case *ForallExpr:
		q := "Pforall"
		if e.Exists {
			q = "Pexists"
		}
		return fmt.Sprintf("%s (%s Pin [%s..%s] : %s)", q, e.Var, ExprString(e.Lo), ExprString(e.Hi), ExprString(e.Body))
	}
	return "?"
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *CondExpr, *UnaryExpr:
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}
