package dsl

// Recursive-descent parser for PADS descriptions. The grammar is the one
// exercised by Figures 4 and 5 of the paper plus switched unions, array size
// bounds, Plast/Pended array termination predicates, and Pexists.

// Parser consumes a token stream and produces a Program.
type Parser struct {
	toks []Token
	pos  int
	errs []*Error
}

// Parse parses a complete description.
func Parse(src string) (*Program, []*Error) {
	toks, errs := Tokenize(src)
	p := &Parser{toks: toks, errs: errs}
	prog := p.parseProgram()
	return prog, p.errs
}

// ParseExprString parses a standalone expression (used by tools and tests).
func ParseExprString(src string) (Expr, []*Error) {
	toks, errs := Tokenize(src)
	p := &Parser{toks: toks, errs: errs}
	e := p.parseExpr()
	if p.cur().Kind != EOF {
		p.errorf("unexpected %s after expression", p.cur())
	}
	return e, p.errs
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...interface{}) {
	p.errs = append(p.errs, Errorf(p.cur().Pos, format, args...))
}

// sync skips tokens until a likely declaration boundary.
func (p *Parser) sync() {
	depth := 0
	for !p.at(EOF) {
		switch p.cur().Kind {
		case LBRACE:
			depth++
		case RBRACE:
			if depth > 0 {
				depth--
			}
		case SEMI:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

func (p *Parser) parseProgram() *Program {
	prog := &Program{}
	for !p.at(EOF) {
		nerr := len(p.errs)
		start := p.pos
		d := p.parseDecl()
		if d != nil {
			prog.Decls = append(prog.Decls, d)
		}
		if p.pos == start && !p.at(EOF) {
			p.next() // guarantee progress
		}
		// After an error, resynchronize only if the cursor is not already
		// at a plausible declaration start; otherwise the next (healthy)
		// declaration would be swallowed.
		if len(p.errs) > nerr && !p.atDeclStart() {
			p.sync()
		}
	}
	return prog
}

func (p *Parser) atDeclStart() bool {
	switch p.cur().Kind {
	case EOF, KWSTRUCT, KWUNION, KWARRAY, KWENUM, KWTYPEDEF, KWRECORD, KWSOURCE, IDENT:
		return true
	}
	return false
}

func (p *Parser) parseDecl() Decl {
	var an Annot
	for {
		if p.accept(KWRECORD) {
			an.IsRecord = true
			continue
		}
		if p.accept(KWSOURCE) {
			an.IsSource = true
			continue
		}
		break
	}
	switch p.cur().Kind {
	case KWSTRUCT:
		return p.parseStruct(an)
	case KWUNION:
		return p.parseUnion(an)
	case KWARRAY:
		return p.parseArray(an)
	case KWENUM:
		return p.parseEnum(an)
	case KWTYPEDEF:
		return p.parseTypedef(an)
	case IDENT:
		if an.IsRecord || an.IsSource {
			p.errorf("Precord/Psource must precede a type declaration, found %s", p.cur())
			return nil
		}
		return p.parseFunc()
	default:
		p.errorf("expected a declaration, found %s", p.cur())
		p.next()
		return nil
	}
}

// parseParams parses an optional (: type name, … :) parameter list.
func (p *Parser) parseParams() []Param {
	if !p.accept(LPARAM) {
		return nil
	}
	var params []Param
	for !p.at(RPARAM) && !p.at(EOF) {
		tname := p.expect(IDENT)
		pname := p.expect(IDENT)
		params = append(params, Param{Type: tname.Text, Name: pname.Text, Pos: tname.Pos})
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(RPARAM)
	return params
}

// parseTypeRef parses [Popt] Name [(: args :)].
func (p *Parser) parseTypeRef() TypeRef {
	var tr TypeRef
	tr.Pos = p.cur().Pos
	if p.accept(KWOPT) {
		tr.Opt = true
	}
	tr.Name = p.expect(IDENT).Text
	if p.accept(LPARAM) {
		for !p.at(RPARAM) && !p.at(EOF) {
			tr.Args = append(tr.Args, p.parseExpr())
			if !p.accept(COMMA) {
				break
			}
		}
		p.expect(RPARAM)
	}
	return tr
}

// atLiteral reports whether the cursor begins a literal item.
func (p *Parser) atLiteral() bool {
	switch p.cur().Kind {
	case CHARLIT, STRINGLIT, KWRE, KWEOR, KWEOF:
		return true
	}
	return false
}

func (p *Parser) parseLiteral() *Literal {
	t := p.next()
	switch t.Kind {
	case CHARLIT:
		return &Literal{Kind: CharLit, Char: byte(t.Int), Pos: t.Pos}
	case STRINGLIT:
		return &Literal{Kind: StrLit, Str: t.Text, Pos: t.Pos}
	case KWRE:
		s := p.expect(STRINGLIT)
		return &Literal{Kind: RegexpLit, Str: s.Text, Pos: t.Pos}
	case KWEOR:
		return &Literal{Kind: EORLit, Pos: t.Pos}
	case KWEOF:
		return &Literal{Kind: EOFLit, Pos: t.Pos}
	default:
		p.errs = append(p.errs, Errorf(t.Pos, "expected a literal, found %s", t))
		return &Literal{Kind: StrLit, Pos: t.Pos}
	}
}

// parseField parses: TypeRef name [: constraint]
func (p *Parser) parseField() Field {
	tr := p.parseTypeRef()
	name := p.expect(IDENT)
	f := Field{Type: tr, Name: name.Text, Pos: tr.Pos}
	if p.accept(COLON) {
		f.Constraint = p.parseExpr()
	}
	return f
}

func (p *Parser) parseWhereOpt() Expr {
	if !p.accept(KWWHERE) {
		return nil
	}
	p.expect(LBRACE)
	e := p.parseExpr()
	// Tolerate a trailing semicolon inside the Pwhere block (Figure 5).
	p.accept(SEMI)
	p.expect(RBRACE)
	return e
}

func (p *Parser) parseStruct(an Annot) Decl {
	pos := p.expect(KWSTRUCT).Pos
	name := p.expect(IDENT).Text
	d := &StructDecl{Annot: an, Name: name, Pos: pos}
	d.Params = p.parseParams()
	p.expect(LBRACE)
	for !p.at(RBRACE) && !p.at(EOF) {
		start := p.pos
		if p.atLiteral() {
			lit := p.parseLiteral()
			d.Items = append(d.Items, StructItem{Lit: lit})
		} else {
			f := p.parseField()
			d.Items = append(d.Items, StructItem{Field: &f})
		}
		p.expect(SEMI)
		if p.pos == start {
			p.next() // guarantee progress on unconsumable tokens
		}
	}
	p.expect(RBRACE)
	d.Where = p.parseWhereOpt()
	p.accept(SEMI)
	return d
}

func (p *Parser) parseUnion(an Annot) Decl {
	pos := p.expect(KWUNION).Pos
	name := p.expect(IDENT).Text
	d := &UnionDecl{Annot: an, Name: name, Pos: pos}
	d.Params = p.parseParams()
	if p.accept(KWSWITCH) {
		p.expect(LPAREN)
		sel := p.parseExpr()
		p.expect(RPAREN)
		d.Switch = &SwitchSpec{Selector: sel}
		p.expect(LBRACE)
		for !p.at(RBRACE) && !p.at(EOF) {
			start := p.pos
			var c SwitchCase
			c.Pos = p.cur().Pos
			if p.accept(KWDEFAULT) {
				p.expect(COLON)
			} else {
				p.expect(KWCASE)
				for {
					c.Values = append(c.Values, p.parseExpr())
					if !p.accept(COMMA) {
						break
					}
				}
				p.expect(COLON)
			}
			c.Field = p.parseField()
			p.expect(SEMI)
			d.Switch.Cases = append(d.Switch.Cases, c)
			if p.pos == start {
				p.next()
			}
		}
		p.expect(RBRACE)
	} else {
		p.expect(LBRACE)
		for !p.at(RBRACE) && !p.at(EOF) {
			start := p.pos
			d.Branches = append(d.Branches, p.parseField())
			p.expect(SEMI)
			if p.pos == start {
				p.next()
			}
		}
		p.expect(RBRACE)
	}
	d.Where = p.parseWhereOpt()
	p.accept(SEMI)
	return d
}

func (p *Parser) parseArray(an Annot) Decl {
	pos := p.expect(KWARRAY).Pos
	name := p.expect(IDENT).Text
	d := &ArrayDecl{Annot: an, Name: name, Pos: pos}
	d.Params = p.parseParams()
	p.expect(LBRACE)
	d.Elem = p.parseTypeRef()
	p.expect(LBRACK)
	if !p.at(RBRACK) {
		lo := p.parseExpr()
		if p.accept(DOTDOT) {
			d.MinSize = lo
			d.MaxSize = p.parseExpr()
		} else {
			d.MinSize = lo
			d.MaxSize = lo
		}
	}
	p.expect(RBRACK)
	if p.accept(COLON) {
		p.parseArrayTermSpec(d)
	}
	p.expect(SEMI)
	p.expect(RBRACE)
	d.Where = p.parseWhereOpt()
	p.accept(SEMI)
	return d
}

// parseArrayTermSpec parses a && -separated conjunction of Psep/Pterm/
// Plast/Pended clauses.
func (p *Parser) parseArrayTermSpec(d *ArrayDecl) {
	for {
		switch p.cur().Kind {
		case KWSEP:
			p.next()
			p.expect(LPAREN)
			d.Sep = p.parseLiteral()
			p.expect(RPAREN)
		case KWTERM:
			p.next()
			p.expect(LPAREN)
			d.Term = p.parseLiteral()
			p.expect(RPAREN)
		case KWLAST:
			p.next()
			p.expect(LPAREN)
			d.LastPred = p.parseExpr()
			p.expect(RPAREN)
		case KWENDED:
			p.next()
			p.expect(LPAREN)
			d.EndedPred = p.parseExpr()
			p.expect(RPAREN)
		default:
			p.errorf("expected Psep, Pterm, Plast, or Pended, found %s", p.cur())
			return
		}
		if !p.accept(ANDAND) {
			return
		}
	}
}

func (p *Parser) parseEnum(an Annot) Decl {
	pos := p.expect(KWENUM).Pos
	name := p.expect(IDENT).Text
	d := &EnumDecl{Annot: an, Name: name, Pos: pos}
	p.expect(LBRACE)
	for !p.at(RBRACE) && !p.at(EOF) {
		m := EnumMember{Pos: p.cur().Pos}
		m.Name = p.expect(IDENT).Text
		m.Repr = m.Name
		if p.accept(ASSIGN) {
			m.Repr = p.expect(STRINGLIT).Text
		}
		d.Members = append(d.Members, m)
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(RBRACE)
	p.accept(SEMI)
	return d
}

func (p *Parser) parseTypedef(an Annot) Decl {
	pos := p.expect(KWTYPEDEF).Pos
	base := p.parseTypeRef()
	name := p.expect(IDENT).Text
	d := &TypedefDecl{Annot: an, Name: name, Base: base, Pos: pos}
	d.Params = p.parseParams()
	if p.accept(COLON) {
		// Paper form: "typename x => { expr }"; also allow a bare expr.
		if p.at(IDENT) && p.peek().Kind == IDENT {
			p.next() // the repeated type name (unchecked here; sema validates)
			d.VarName = p.expect(IDENT).Text
			p.expect(ARROW)
			p.expect(LBRACE)
			d.Constraint = p.parseExpr()
			p.expect(RBRACE)
		} else {
			d.VarName = name
			d.Constraint = p.parseExpr()
		}
	}
	p.accept(SEMI)
	return d
}

func (p *Parser) parseFunc() Decl {
	ret := p.expect(IDENT)
	name := p.expect(IDENT)
	d := &FuncDecl{Name: name.Text, RetType: ret.Text, Pos: ret.Pos}
	p.expect(LPAREN)
	for !p.at(RPAREN) && !p.at(EOF) {
		tname := p.expect(IDENT)
		pname := p.expect(IDENT)
		d.Params = append(d.Params, Param{Type: tname.Text, Name: pname.Text, Pos: tname.Pos})
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(RPAREN)
	d.Body = p.parseBlock()
	p.accept(SEMI)
	return d
}

func (p *Parser) parseBlock() []Stmt {
	p.expect(LBRACE)
	var stmts []Stmt
	for !p.at(RBRACE) && !p.at(EOF) {
		start := p.pos
		stmts = append(stmts, p.parseStmt())
		if p.pos == start {
			p.next() // guarantee progress
		}
	}
	p.expect(RBRACE)
	return stmts
}

func (p *Parser) parseStmtOrBlock() []Stmt {
	if p.at(LBRACE) {
		return p.parseBlock()
	}
	return []Stmt{p.parseStmt()}
}

func (p *Parser) parseStmt() Stmt {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case KWIF:
		p.next()
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		then := p.parseStmtOrBlock()
		var els []Stmt
		if p.accept(KWELSE) {
			els = p.parseStmtOrBlock()
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}
	case KWRETURN:
		p.next()
		val := p.parseExpr()
		p.expect(SEMI)
		return &ReturnStmt{Val: val, Pos: pos}
	case IDENT:
		if p.peek().Kind == IDENT {
			tname := p.next().Text
			vname := p.expect(IDENT).Text
			p.expect(ASSIGN)
			init := p.parseExpr()
			p.expect(SEMI)
			return &VarStmt{Type: tname, Name: vname, Init: init, Pos: pos}
		}
		if p.peek().Kind == ASSIGN {
			vname := p.next().Text
			p.next() // '='
			val := p.parseExpr()
			p.expect(SEMI)
			return &AssignStmt{Name: vname, Val: val, Pos: pos}
		}
	}
	e := p.parseExpr()
	p.expect(SEMI)
	return &ExprStmt{X: e, Pos: pos}
}

// ---- Expressions ----

func (p *Parser) parseExpr() Expr { return p.parseCond() }

func (p *Parser) parseCond() Expr {
	cond := p.parseOr()
	if p.accept(QUESTION) {
		then := p.parseExpr()
		p.expect(COLON)
		els := p.parseCond()
		return &CondExpr{Cond: cond, Then: then, Else: els, Pos: cond.ExprPos()}
	}
	return cond
}

func (p *Parser) parseOr() Expr {
	l := p.parseAnd()
	for p.at(OROR) {
		op := p.next()
		r := p.parseAnd()
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l
}

func (p *Parser) parseAnd() Expr {
	l := p.parseEquality()
	for p.at(ANDAND) {
		op := p.next()
		r := p.parseEquality()
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l
}

func (p *Parser) parseEquality() Expr {
	l := p.parseRelational()
	for p.at(EQ) || p.at(NE) {
		op := p.next()
		r := p.parseRelational()
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l
}

func (p *Parser) parseRelational() Expr {
	l := p.parseAdditive()
	for p.at(LT) || p.at(LE) || p.at(GT) || p.at(GE) {
		op := p.next()
		r := p.parseAdditive()
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l
}

func (p *Parser) parseAdditive() Expr {
	l := p.parseMultiplicative()
	for p.at(PLUS) || p.at(MINUS) {
		op := p.next()
		r := p.parseMultiplicative()
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l
}

func (p *Parser) parseMultiplicative() Expr {
	l := p.parseUnary()
	for p.at(STAR) || p.at(SLASH) || p.at(PERCENT) {
		op := p.next()
		r := p.parseUnary()
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l
}

func (p *Parser) parseUnary() Expr {
	if p.at(NOT) || p.at(MINUS) {
		op := p.next()
		x := p.parseUnary()
		return &UnaryExpr{Op: op.Kind, X: x, Pos: op.Pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case DOT:
			pos := p.next().Pos
			f := p.expect(IDENT).Text
			x = &DotExpr{X: x, Field: f, Pos: pos}
		case LBRACK:
			pos := p.next().Pos
			idx := p.parseExpr()
			p.expect(RBRACK)
			x = &IndexExpr{X: x, Index: idx, Pos: pos}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		return &IntExpr{Val: t.Int, Pos: t.Pos}
	case FLOATLIT:
		p.next()
		return &FloatExpr{Val: t.Flt, Pos: t.Pos}
	case CHARLIT:
		p.next()
		return &CharExpr{Val: byte(t.Int), Pos: t.Pos}
	case STRINGLIT:
		p.next()
		return &StrExpr{Val: t.Text, Pos: t.Pos}
	case KWTRUE:
		p.next()
		return &BoolExpr{Val: true, Pos: t.Pos}
	case KWFALSE:
		p.next()
		return &BoolExpr{Val: false, Pos: t.Pos}
	case KWRE:
		p.next()
		s := p.expect(STRINGLIT)
		return &RegexpExpr{Src: s.Text, Pos: t.Pos}
	case KWEOR:
		p.next()
		return &EORExpr{Pos: t.Pos}
	case KWEOF:
		p.next()
		return &EOFExpr{Pos: t.Pos}
	case KWFORALL, KWEXISTS:
		p.next()
		p.expect(LPAREN)
		v := p.expect(IDENT).Text
		p.expect(KWIN)
		p.expect(LBRACK)
		lo := p.parseExpr()
		p.expect(DOTDOT)
		hi := p.parseExpr()
		p.expect(RBRACK)
		p.expect(COLON)
		body := p.parseExpr()
		p.expect(RPAREN)
		return &ForallExpr{Exists: t.Kind == KWEXISTS, Var: v, Lo: lo, Hi: hi, Body: body, Pos: t.Pos}
	case IDENT:
		p.next()
		if p.at(LPAREN) {
			p.next()
			var args []Expr
			for !p.at(RPAREN) && !p.at(EOF) {
				args = append(args, p.parseExpr())
				if !p.accept(COMMA) {
					break
				}
			}
			p.expect(RPAREN)
			return &CallExpr{Func: t.Text, Args: args, Pos: t.Pos}
		}
		return &IdentExpr{Name: t.Text, Pos: t.Pos}
	case LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	default:
		p.errorf("expected an expression, found %s", t)
		p.next()
		return &IntExpr{Pos: t.Pos}
	}
}
