package dsl

import "testing"

// FuzzParse drives the front end with arbitrary input: it must never panic
// and, when a parse succeeds cleanly, printing and reparsing must also
// succeed (the living-documentation invariant). Run with `go test -fuzz
// FuzzParse ./internal/dsl`; the seeds below execute as regression cases in
// normal test runs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"Pstruct s { Puint8 x; };",
		"Punion u { Pip a; Puint32 b; };",
		"Parray a { Puint8[3] : Psep (','); };",
		"Penum e { A, B };",
		"Ptypedef Puint32 t : t x => { x > 0 };",
		"bool f(Puint8 x) { return x > 0; };",
		"Pstruct s { Pstring(:’ ’:) q; };", // typographic quotes
		"Pre \"[\"; Pstruct",               // bad regexp, truncated
		"Pstruct s { Puint8 x : Pforall (i Pin [0..x] : true); };",
		"Psource Precord Pstruct r { \"lit\"; Peor; };",
		"\x00\x01\x02",
		"Pstruct s { Puint8 x; }; garbage ;;; Punion",
		"Parray a (:Puint32 n:) { Puint8[n..n+1] : Pterm (Peof); };",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, errs := Parse(src)
		if prog == nil {
			t.Fatal("Parse returned a nil program")
		}
		if len(errs) > 0 {
			return
		}
		printed := Print(prog)
		prog2, errs2 := Parse(printed)
		if len(errs2) > 0 {
			t.Fatalf("clean parse did not reprint cleanly:\ninput: %q\nprinted: %q\nerr: %v", src, printed, errs2[0])
		}
		if Print(prog2) != printed {
			t.Fatalf("print/parse/print not a fixed point for %q", src)
		}
	})
}
