package cliutil

import (
	"flag"
	"fmt"
	"time"

	"pads/internal/atomicio"
	"pads/internal/core"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/telemetry"
)

// The fault-tolerance flags are shared plumbing like the observability ones:
// every tool that offers -max-errors / -max-error-rate / -fail-fast /
// -quarantine / -retry / -retry-backoff / -max-record registers them here so
// names, help text, and validation never drift (docs/ROBUSTNESS.md).

// RobustFlags holds the shared fault-tolerance flag values.
type RobustFlags struct {
	MaxErrors     int
	MaxErrorRate  float64
	FailFast      bool
	Quarantine    string
	Retry         int
	RetryBackoff  time.Duration
	MaxRecord     int
	MaxBacktracks int
}

// NewRobustFlags registers the shared fault-tolerance flags.
func NewRobustFlags() *RobustFlags {
	rf := &RobustFlags{}
	flag.IntVar(&rf.MaxErrors, "max-errors", 0, "abort once `N` records carried parse errors (0 = unlimited; exit status 3)")
	flag.Float64Var(&rf.MaxErrorRate, "max-error-rate", 0, "abort once the errored-record fraction exceeds `RATE` (0 = disabled; exit status 3)")
	flag.BoolVar(&rf.FailFast, "fail-fast", false, "abort on the first record with parse errors (exit status 3)")
	flag.StringVar(&rf.Quarantine, "quarantine", "", "dead-letter errored records as JSONL to `FILE` (docs/ROBUSTNESS.md)")
	flag.IntVar(&rf.Retry, "retry", 0, "retry transient input read errors up to `N` times before giving up")
	flag.DurationVar(&rf.RetryBackoff, "retry-backoff", 10*time.Millisecond, "initial `DELAY` between read retries, doubling per attempt")
	flag.IntVar(&rf.MaxRecord, "max-record", 0, "clamp records longer than `N` bytes and flag them ErrRecordTooLong (0 = unlimited)")
	flag.IntVar(&rf.MaxBacktracks, "max-backtracks", 0, "abort the parse after `N` speculation retreats — a runaway-ambiguity guard (0 = unlimited)")
	return rf
}

// SourceOptions extends opts with the resource-guard options the flags ask
// for: read retries, the record length cap, and the backtrack budget. The
// limits merge into one padsrt.Limits so the options don't overwrite each
// other.
func (rf *RobustFlags) SourceOptions(opts []padsrt.SourceOption) []padsrt.SourceOption {
	if rf.Retry > 0 {
		opts = append(opts, padsrt.WithRetry(rf.Retry, rf.RetryBackoff))
	}
	if rf.MaxRecord > 0 || rf.MaxBacktracks > 0 {
		opts = append(opts, padsrt.WithLimits(padsrt.Limits{
			MaxRecordLen:  rf.MaxRecord,
			MaxBacktracks: rf.MaxBacktracks,
		}))
	}
	return opts
}

// Robustness is a tool run's configured fault-tolerance: the error-budget
// Policy (nil when no budget flag was given) and the open quarantine file.
// Close it when the parse finishes, before Telemetry.Close so the
// quarantined count lands in the -stats block.
type Robustness struct {
	Policy *interp.Policy

	q     *interp.Quarantine
	qfile *atomicio.File
	stats *telemetry.Stats
}

// Open validates the fault-tolerance flag values, creates the quarantine
// file, and builds the error-budget policy. stats may be nil.
func (rf *RobustFlags) Open(stats *telemetry.Stats) (*Robustness, error) {
	if rf.MaxErrors < 0 {
		return nil, fmt.Errorf("bad -max-errors %d (must be >= 0)", rf.MaxErrors)
	}
	if rf.MaxErrorRate < 0 || rf.MaxErrorRate > 1 {
		return nil, fmt.Errorf("bad -max-error-rate %g (must be in [0, 1])", rf.MaxErrorRate)
	}
	if rf.Retry < 0 {
		return nil, fmt.Errorf("bad -retry %d (must be >= 0)", rf.Retry)
	}
	if rf.MaxRecord < 0 {
		return nil, fmt.Errorf("bad -max-record %d (must be >= 0)", rf.MaxRecord)
	}
	if rf.MaxBacktracks < 0 {
		return nil, fmt.Errorf("bad -max-backtracks %d (must be >= 0)", rf.MaxBacktracks)
	}
	r := &Robustness{stats: stats}
	pol := &interp.Policy{MaxErrors: rf.MaxErrors, MaxErrorRate: rf.MaxErrorRate, FailFast: rf.FailFast}
	if rf.Quarantine != "" {
		// Entries stream into a hidden temp file; Close fsyncs and renames
		// it into place (internal/atomicio), so a crashed run never leaves
		// a torn quarantine behind — a reader sees the previous complete
		// file or the new complete one.
		f, err := atomicio.Create(rf.Quarantine)
		if err != nil {
			return nil, fmt.Errorf("bad -quarantine: %w", err)
		}
		r.qfile = f
		r.q = interp.NewQuarantine(f)
		pol.Sink = r.q
	}
	if pol.Active() {
		r.Policy = pol
	}
	return r, nil
}

// Apply installs the policy on the description's record scans.
func (r *Robustness) Apply(d *core.Description) { d.Policy = r.Policy }

// Close finishes the run: it folds the quarantined-record count into the
// stats (when both exist), surfaces any quarantine write error, and commits
// the quarantine file — fsync plus atomic rename into place, so the file
// appears complete or not at all.
func (r *Robustness) Close() error {
	var first error
	if r.q != nil {
		if r.stats != nil {
			r.stats.Faults.Quarantined += r.q.Count()
		}
		if err := r.q.Err(); err != nil {
			first = fmt.Errorf("quarantine: %w", err)
		}
	}
	if r.qfile != nil {
		if first != nil {
			r.qfile.Abort()
		} else if err := r.qfile.Commit(); err != nil {
			first = err
		}
	}
	return first
}
