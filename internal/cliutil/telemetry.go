package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pads/internal/core"
	"pads/internal/padsrt"
	"pads/internal/telemetry"
)

// The observability flags are shared plumbing: every tool that offers
// -stats / -trace / -trace-last / -json registers them through these helpers
// so names, help text, and validation errors never drift between tools
// (docs/OBSERVABILITY.md).

// StatsFlag registers the shared -stats flag.
func StatsFlag() *bool {
	return flag.Bool("stats", false, "print runtime parse counters to stderr (docs/OBSERVABILITY.md)")
}

// JSONFlag registers the shared -json flag.
func JSONFlag() *bool {
	return flag.Bool("json", false, "write machine-readable JSON to stdout instead of the human report")
}

// TraceFlags holds the shared trace flag values.
type TraceFlags struct {
	Path string // -trace: output file, "-" for stderr
	Last int    // -trace-last: bounded ring size, 0 streams everything
}

// NewTraceFlags registers the shared -trace and -trace-last flags.
func NewTraceFlags() *TraceFlags {
	tf := &TraceFlags{}
	flag.StringVar(&tf.Path, "trace", "", "write a JSONL parse trace to `FILE` ('-' for stderr)")
	flag.IntVar(&tf.Last, "trace-last", 0, "with -trace, keep only the last N events (bounded ring, safe on huge inputs)")
	return tf
}

// Telemetry is a tool run's configured observability: a Stats when -stats
// was given, a Tracer when -trace was given, or nils. Close it when the
// parse finishes.
type Telemetry struct {
	Stats  *telemetry.Stats
	Tracer *telemetry.Tracer

	traceFile *os.File  // owned output file; nil for stderr or no trace
	statsOut  io.Writer // destination for the -stats block; nil disables
}

// OpenTelemetry validates the observability flag values and builds the
// observers. Tools that do not register the trace flags pass "" and 0.
func OpenTelemetry(stats bool, tracePath string, traceLast int) (*Telemetry, error) {
	if traceLast < 0 {
		return nil, fmt.Errorf("bad -trace-last %d (must be >= 0)", traceLast)
	}
	if traceLast > 0 && tracePath == "" {
		return nil, fmt.Errorf("-trace-last requires -trace")
	}
	t := &Telemetry{}
	if stats {
		t.Stats = telemetry.NewStats()
		t.statsOut = os.Stderr
	}
	if tracePath != "" {
		w := io.Writer(os.Stderr)
		if tracePath != "-" {
			f, err := os.Create(tracePath)
			if err != nil {
				return nil, fmt.Errorf("bad -trace: %w", err)
			}
			t.traceFile = f
			w = f
		}
		if traceLast > 0 {
			// Bounded ring: events accumulate in memory and the retained
			// tail — full or partial — is drained by Tracer.Close, so
			// tracing a multi-GB source cannot fill the disk or the heap,
			// and truncated runs still flush their final window.
			t.Tracer = telemetry.NewRingTracerTo(traceLast, w)
		} else {
			t.Tracer = telemetry.NewTracer(w)
		}
	}
	return t, nil
}

// Enabled reports whether any observer is active.
func (t *Telemetry) Enabled() bool { return t.Stats != nil || t.Tracer != nil }

// Observe attaches the observers to the description's interpreter.
func (t *Telemetry) Observe(d *core.Description) {
	if t.Enabled() {
		d.Observe(t.Stats, t.Tracer)
	}
}

// SourceOptions extends opts with the stats sink, when one is active, so the
// input Source's buffer/record/speculation counters are collected too.
func (t *Telemetry) SourceOptions(opts []padsrt.SourceOption) []padsrt.SourceOption {
	if t.Stats == nil {
		return opts
	}
	return append(opts, padsrt.WithStats(t.Stats))
}

// Close finishes the run: it drains a ring-mode trace's retained (possibly
// partial) window, flushes a streaming trace, closes the trace file, and
// prints the -stats block to stderr. Tracer.Close is idempotent, so calling
// this from both an error path and a success path cannot duplicate the
// window.
func (t *Telemetry) Close() error {
	var first error
	if err := t.Tracer.Close(); err != nil {
		first = err
	}
	if t.traceFile != nil {
		if err := t.traceFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if t.statsOut != nil {
		fmt.Fprintln(t.statsOut, "-- parse telemetry (docs/OBSERVABILITY.md) --")
		t.Stats.WriteText(t.statsOut)
	}
	return first
}
