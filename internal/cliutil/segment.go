package cliutil

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pads/internal/accum"
	"pads/internal/core"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/segment"
	"pads/internal/telemetry"
	"pads/internal/value"
)

// The out-of-core flags are shared plumbing like the robustness ones: every
// tool that offers -out-of-core / -segment-size / -resume / -manifest
// registers them here (docs/ROBUSTNESS.md, "Out-of-core jobs").

// SegmentFlags holds the shared out-of-core flag values.
type SegmentFlags struct {
	OutOfCore bool
	SegSize   string
	Resume    string
	Manifest  string
}

// NewSegmentFlags registers the shared out-of-core flags.
func NewSegmentFlags() *SegmentFlags {
	sf := &SegmentFlags{}
	flag.BoolVar(&sf.OutOfCore, "out-of-core", false, "parse segment-at-a-time with a crash-safe job manifest (O(workers × segment) memory)")
	flag.StringVar(&sf.SegSize, "segment-size", "", "out-of-core segment buffer `SIZE` (suffixes k/m/g; default 8m, floor 64k)")
	flag.StringVar(&sf.Resume, "resume", "", "resume the out-of-core job journaled in `MANIFEST`, skipping committed segments")
	flag.StringVar(&sf.Manifest, "manifest", "", "out-of-core job manifest `PATH` (default: DATA.manifest)")
	return sf
}

// Active reports whether the run should take the out-of-core path.
func (sf *SegmentFlags) Active() bool { return sf.OutOfCore || sf.Resume != "" }

// ParseSize interprets a byte-size flag value with optional k/m/g suffixes
// (binary multiples). Empty means 0 (let the consumer pick its default).
func ParseSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"), strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (want a positive integer with optional k/m/g suffix)", s)
	}
	return n * mult, nil
}

// SegmentJob assembles one CLI tool's out-of-core run: the compiled
// description, the shared flag blocks, and the tool's output mode (nil Emit
// means accumulation).
type SegmentJob struct {
	Desc    *core.Description
	Flags   *SegmentFlags
	Robust  *RobustFlags
	Opts    []padsrt.SourceOption
	Workers int
	Stats   *telemetry.Stats

	AccumCfg accum.Config

	Mode         string
	OutPath      string
	Emit         func(out *bytes.Buffer, v value.Value)
	EmitPrologue func(out *bytes.Buffer, header value.Value)
	EmitEpilogue func(out *bytes.Buffer)

	DataArg string
}

// Run opens the input (out-of-core parsing preads a real file — stdin is
// rejected), resolves the manifest path, and executes the segmented job.
func (sj *SegmentJob) Run() (*segment.Report, error) {
	sf := sj.Flags
	dataPath := sj.DataArg
	manifestPath := sf.Manifest
	resume := sf.Resume != ""
	if resume {
		if sf.OutOfCore || sf.Manifest != "" {
			return nil, fmt.Errorf("-resume names the manifest itself; drop -out-of-core and -manifest")
		}
		manifestPath = sf.Resume
		if dataPath == "" {
			// The manifest remembers its input; a bare `-resume MANIFEST`
			// picks up where the job left off.
			info, err := segment.Peek(manifestPath)
			if err != nil {
				return nil, err
			}
			dataPath = info.File
		}
	}
	if dataPath == "" || dataPath == "-" {
		return nil, fmt.Errorf("out-of-core parsing needs a seekable data file, not stdin")
	}
	if manifestPath == "" {
		manifestPath = dataPath + ".manifest"
	}
	segSize, err := ParseSize(sf.SegSize)
	if err != nil {
		return nil, fmt.Errorf("bad -segment-size: %w", err)
	}

	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}

	cfg := segment.Config{
		Interp:   sj.Desc.Interp,
		DescHash: segment.HashBytes([]byte(sj.Desc.Source)),
		Data:     f,
		DataPath: dataPath,
		DataSize: st.Size(),
		Source:   sj.Opts,
		SegSize:  segSize,
		Workers:  sj.Workers,
		Manifest: manifestPath,
		Resume:   resume,
		Stats:    sj.Stats,
		AccumCfg: sj.AccumCfg,
		Mode:     sj.Mode,
		OutPath:  sj.OutPath,
		Emit:     sj.Emit, EmitPrologue: sj.EmitPrologue, EmitEpilogue: sj.EmitEpilogue,
	}
	if rf := sj.Robust; rf != nil {
		// Budgets apply per segment (the fault-isolation boundary); the
		// quarantine file is owned by the segment runner, which appends and
		// fsyncs entries in segment order at each commit.
		if rf.MaxErrors > 0 || rf.MaxErrorRate > 0 || rf.FailFast {
			cfg.Policy = &interp.Policy{MaxErrors: rf.MaxErrors, MaxErrorRate: rf.MaxErrorRate, FailFast: rf.FailFast}
		}
		cfg.QuarPath = rf.Quarantine
	}
	return segment.Run(cfg)
}

// ReportPoisoned prints the poisoned-segment report to stderr and reports
// whether the tool should exit with status 3 (the error-budget status: the
// job completed, but degraded).
func ReportPoisoned(rep *segment.Report) bool {
	if len(rep.Poisoned) == 0 {
		return false
	}
	fmt.Fprintf(os.Stderr, "%d of %d segments poisoned (job completed without them):\n", len(rep.Poisoned), rep.Segments)
	for _, p := range rep.Poisoned {
		fmt.Fprintf(os.Stderr, "  segment %d [%d,+%d): %s (%d records, %d errored)\n",
			p.Index, p.Off, p.Len, p.Reason, p.Records, p.Errored)
	}
	return true
}
