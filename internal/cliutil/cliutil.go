// Package cliutil holds the small amount of plumbing the cmd/ tools share:
// compiling the description named on the command line and configuring the
// input source from flags.
package cliutil

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pads/internal/core"
	"pads/internal/interp"
	"pads/internal/padsrt"
)

// ParseDisc interprets the -disc flag: newline, none, fixed:N, or
// lenprefix[:headerBytes].
func ParseDisc(spec string) (padsrt.Discipline, error) {
	switch {
	case spec == "" || spec == "newline":
		return padsrt.Newline(), nil
	case spec == "none":
		return padsrt.NoRecords(), nil
	case strings.HasPrefix(spec, "fixed:"):
		n, err := strconv.Atoi(spec[len("fixed:"):])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad fixed-width discipline %q", spec)
		}
		return padsrt.FixedWidth(n), nil
	case spec == "lenprefix":
		return padsrt.LenPrefix(), nil
	case strings.HasPrefix(spec, "lenprefix:"):
		n, err := strconv.Atoi(spec[len("lenprefix:"):])
		if err != nil || n <= 0 || n > 8 {
			return nil, fmt.Errorf("bad length-prefix discipline %q", spec)
		}
		return &padsrt.LenPrefixDisc{HeaderBytes: n, Order: padsrt.BigEndian}, nil
	default:
		return nil, fmt.Errorf("unknown record discipline %q (newline, none, fixed:N, lenprefix[:N])", spec)
	}
}

// SourceOptions assembles source options from the shared flags.
func SourceOptions(disc string, ebcdic bool, littleEndian bool) ([]padsrt.SourceOption, error) {
	d, err := ParseDisc(disc)
	if err != nil {
		return nil, err
	}
	opts := []padsrt.SourceOption{padsrt.WithDiscipline(d)}
	if ebcdic {
		opts = append(opts, padsrt.WithCoding(padsrt.EBCDIC))
	}
	if littleEndian {
		opts = append(opts, padsrt.WithByteOrder(padsrt.LittleEndian))
	}
	return opts, nil
}

// MustCompile compiles the description or exits with its diagnostics.
func MustCompile(path string) *core.Description {
	d, err := core.CompileFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return d
}

// OpenData opens the data argument, "-" or empty meaning stdin.
func OpenData(path string) (io.ReadCloser, error) {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// Fatal prints an error and exits. An exhausted error budget exits with
// status 3 so pipelines can tell "data over budget" from hard failures
// (status 1).
func Fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	var be *interp.BudgetError
	if errors.As(err, &be) {
		os.Exit(3)
	}
	os.Exit(1)
}
