package cliutil

import (
	"testing"

	"pads/internal/padsrt"
)

func TestParseDisc(t *testing.T) {
	cases := []struct {
		spec string
		name string
		ok   bool
	}{
		{"", "newline", true},
		{"newline", "newline", true},
		{"none", "none", true},
		{"fixed:24", "fixed(24)", true},
		{"lenprefix", "lenprefix(4)", true},
		{"lenprefix:2", "lenprefix(2)", true},
		{"fixed:0", "", false},
		{"fixed:x", "", false},
		{"lenprefix:99", "", false},
		{"bogus", "", false},
	}
	for _, c := range cases {
		d, err := ParseDisc(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("ParseDisc(%q) err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && d.Name() != c.name {
			t.Errorf("ParseDisc(%q) = %s, want %s", c.spec, d.Name(), c.name)
		}
	}
}

func TestSourceOptions(t *testing.T) {
	opts, err := SourceOptions("none", true, true)
	if err != nil {
		t.Fatal(err)
	}
	s := padsrt.NewBytesSource(nil, opts...)
	if s.Coding() != padsrt.EBCDIC || s.ByteOrder() != padsrt.LittleEndian || s.Discipline().Name() != "none" {
		t.Errorf("options not applied: %v %v %v", s.Coding(), s.ByteOrder(), s.Discipline().Name())
	}
	if _, err := SourceOptions("nope", false, false); err == nil {
		t.Error("bad discipline accepted")
	}
}
