package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pads/internal/core"
	"pads/internal/padsrt"
	"pads/internal/telemetry/prof"
)

// ProfFlags holds the shared profiling flag values (-profile,
// -profile-folded, -profile-sample, -progress), registered through
// NewProfFlags so names and help text stay identical across tools.
type ProfFlags struct {
	Profile  bool   // -profile: print the per-node table to stderr
	Folded   string // -profile-folded: write folded stacks to FILE ('-' for stderr)
	Sample   int    // -profile-sample: profile 1 in N records
	Progress bool   // -progress: live ticker on stderr
}

// NewProfFlags registers the shared profiling flags.
func NewProfFlags() *ProfFlags {
	pf := &ProfFlags{}
	flag.BoolVar(&pf.Profile, "profile", false, "print the parse-path profile (per-node time/bytes/errors) to stderr (docs/OBSERVABILITY.md)")
	flag.StringVar(&pf.Folded, "profile-folded", "", "write folded stacks to `FILE` for flamegraph tools ('-' for stderr)")
	flag.IntVar(&pf.Sample, "profile-sample", 1, "profile 1 in `N` records (lower overhead on huge inputs)")
	flag.BoolVar(&pf.Progress, "progress", false, "show a live progress line on stderr (bytes/sec, ETA, error rate, hot node)")
	return pf
}

// Profiling is a tool run's configured parse-path profiler, or an inert
// value when no profiling flag was given. Close it when the parse finishes.
type Profiling struct {
	Prof *prof.Profiler

	progress   *prof.Progress
	table      bool
	foldedFile *os.File  // owned output file; nil for stderr or none
	foldedOut  io.Writer // destination for folded stacks; nil disables
	out        io.Writer // destination for the -profile table
}

// OpenProfiling validates the profiling flag values and builds the profiler.
// totalBytes sizes the progress ETA; pass <= 0 when unknown (stdin).
func OpenProfiling(pf *ProfFlags, totalBytes int64) (*Profiling, error) {
	if pf.Sample < 1 {
		return nil, fmt.Errorf("bad -profile-sample %d (must be >= 1)", pf.Sample)
	}
	p := &Profiling{}
	if !pf.Profile && pf.Folded == "" && !pf.Progress {
		return p, nil
	}
	opts := prof.Options{Every: pf.Sample}
	if pf.Progress {
		p.progress = prof.NewProgress(totalBytes)
		opts.Progress = p.progress
		p.progress.Start(os.Stderr, 250*time.Millisecond)
	}
	p.Prof = prof.New(opts)
	p.table = pf.Profile
	p.out = os.Stderr
	if pf.Folded != "" {
		w := io.Writer(os.Stderr)
		if pf.Folded != "-" {
			f, err := os.Create(pf.Folded)
			if err != nil {
				return nil, fmt.Errorf("bad -profile-folded: %w", err)
			}
			p.foldedFile = f
			w = f
		}
		p.foldedOut = w
	}
	return p, nil
}

// Enabled reports whether a profiler is active.
func (p *Profiling) Enabled() bool { return p.Prof != nil }

// Observe attaches the profiler to the description's interpreter.
func (p *Profiling) Observe(d *core.Description) {
	if p.Enabled() {
		d.ObserveProf(p.Prof)
	}
}

// SourceOptions extends opts with the profiler, when one is active, so shard
// readers pick it up the same way they pick up Stats.
func (p *Profiling) SourceOptions(opts []padsrt.SourceOption) []padsrt.SourceOption {
	if !p.Enabled() {
		return opts
	}
	return append(opts, padsrt.WithProf(p.Prof))
}

// Close finishes the run: it stops the progress ticker, snapshots the
// profile, prints the -profile table, and writes folded stacks. Safe to call
// once, after parsing completes.
func (p *Profiling) Close() error {
	if p.progress != nil {
		p.progress.Stop()
	}
	if !p.Enabled() {
		return nil
	}
	pr := p.Prof.Snapshot()
	if p.table {
		fmt.Fprintln(p.out, "-- parse profile (docs/OBSERVABILITY.md) --")
		pr.WriteTable(p.out)
	}
	var first error
	if p.foldedOut != nil {
		pr.WriteFolded(p.foldedOut)
	}
	if p.foldedFile != nil {
		if err := p.foldedFile.Close(); err != nil {
			first = err
		}
	}
	return first
}

// DataSize stats a data path for the progress ETA: the file size, or -1 for
// stdin ("" or "-") and anything unstattable.
func DataSize(path string) int64 {
	if path == "" || path == "-" {
		return -1
	}
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return fi.Size()
}
