// Package fmtconv converts parsed values into delimited text suitable for
// loading into spreadsheets or relational databases (section 5.3.1 of the
// paper; Figure 8 shows the CLF output). A formatter takes a delimiter list:
// the first delimiter separates leaves at the top level, and each nesting
// level advances the list, reusing the last entry once exhausted. Masks
// suppress components; a date output format (e.g. "%D:%T") customizes dates.
package fmtconv

import (
	"io"
	"strings"

	"pads/internal/padsrt"
	"pads/internal/value"
)

// Formatter renders values as delimited records — the generated
// <type>_fmt2io of Figure 6.
type Formatter struct {
	// Delims is the delimiter list; defaults to ["|"].
	Delims []string
	// DateFormat renders Pdate values (FormatDate syntax); "" keeps the
	// raw source text.
	DateFormat string
	// Mask suppresses components: a subtree whose mask has Set cleared is
	// omitted from the output.
	Mask *padsrt.MaskNode
}

// New builds a formatter with the given delimiters.
func New(delims ...string) *Formatter {
	if len(delims) == 0 {
		delims = []string{"|"}
	}
	return &Formatter{Delims: delims}
}

func (f *Formatter) delim(depth int) string {
	if depth < 0 {
		depth = 0
	}
	if depth >= len(f.Delims) {
		depth = len(f.Delims) - 1
	}
	return f.Delims[depth]
}

// FormatRecord renders one record (without a trailing newline).
func (f *Formatter) FormatRecord(v value.Value) string {
	return string(f.Append(nil, v))
}

// Append appends the delimited form of v to dst.
func (f *Formatter) Append(dst []byte, v value.Value) []byte {
	seg, ok := f.render(v, f.Mask, 0)
	if !ok {
		return dst
	}
	return append(dst, seg...)
}

// WriteRecord writes one record plus a newline.
func (f *Formatter) WriteRecord(w io.Writer, v value.Value) (int, error) {
	buf := f.Append(nil, v)
	buf = append(buf, '\n')
	return w.Write(buf)
}

// render produces the delimited text for one value. ok=false means the
// value occupies no column at all (suppressed by mask, or void); an absent
// optional returns ("", true) — an empty column. Children of a compound at
// depth d are joined with the depth-d delimiter, so the list advances at
// each nested type boundary as the paper specifies.
func (f *Formatter) render(v value.Value, mask *padsrt.MaskNode, depth int) (string, bool) {
	if v == nil || !mask.BaseMask().DoSet() {
		return "", false
	}
	switch v := v.(type) {
	case *value.Struct:
		var parts []string
		for i, name := range v.Names {
			if seg, ok := f.render(v.Fields[i], mask.Field(name), depth+1); ok {
				parts = append(parts, seg)
			}
		}
		return strings.Join(parts, f.delim(depth)), true
	case *value.Union:
		if v.Val == nil {
			return "", true
		}
		return f.render(v.Val, mask.Field(v.Tag), depth+1)
	case *value.Array:
		var parts []string
		for _, e := range v.Elems {
			if seg, ok := f.render(e, mask.ElemMask(), depth+1); ok {
				parts = append(parts, seg)
			}
		}
		return strings.Join(parts, f.delim(depth)), true
	case *value.Opt:
		if !v.Present {
			return "", true // an absent optional still occupies a column
		}
		return f.render(v.Val, mask, depth)
	case *value.Void:
		return "", false
	default:
		return string(f.leaf(nil, v)), true
	}
}

func (f *Formatter) leaf(dst []byte, v value.Value) []byte {
	switch v := v.(type) {
	case *value.Uint:
		return padsrt.AppendUint(dst, v.Val)
	case *value.Int:
		return padsrt.AppendInt(dst, v.Val)
	case *value.Float:
		return padsrt.AppendFloat(dst, v.Val, 64)
	case *value.Char:
		return append(dst, v.Val)
	case *value.Str:
		return append(dst, v.Val...)
	case *value.Date:
		if f.DateFormat != "" {
			return append(dst, padsrt.FormatDate(v.Sec, f.DateFormat)...)
		}
		return append(dst, v.Raw...)
	case *value.IP:
		return append(dst, padsrt.FormatIP(v.Val)...)
	case *value.Enum:
		return append(dst, v.Member...)
	}
	return dst
}
