package fmtconv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func compileFile(t *testing.T, name string) *interp.Interp {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(data))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return interp.New(desc)
}

// TestFigure8 regenerates the formatted CLF records of Figure 8 from the
// Figure 2 data: delimiter "|", date format "%D:%T" (E7).
func TestFigure8(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "clf.sample"))
	if err != nil {
		t.Fatal(err)
	}
	s := padsrt.NewBytesSource(data)
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	f := New("|")
	f.DateFormat = "%D:%T"
	want := []string{
		"207.136.97.49|-|-|10/16/97:01:46:51|GET|/tk/p.txt|1|0|200|30",
		"tj62.aol.com|-|-|10/16/97:21:32:22|POST|/scpt/dd@grp.org/confirm|1|0|200|941",
	}
	for i, rec := range arr.Elems {
		got := f.FormatRecord(rec)
		if got != want[i] {
			t.Errorf("record %d:\n got %s\nwant %s", i, got, want[i])
		}
	}
}

func TestMaskSuppression(t *testing.T) {
	in := compileFile(t, "clf.pads")
	data, _ := os.ReadFile(filepath.Join("..", "..", "testdata", "clf.sample"))
	v, _ := in.ParseSource(padsrt.NewBytesSource(data))
	rec := v.(*value.Array).Elems[0]

	f := New("|")
	f.DateFormat = "%D:%T"
	mask := padsrt.NewMaskNode(padsrt.CheckAndSet)
	mask.SetField("remoteID", padsrt.NewMaskNode(padsrt.Ignore))
	mask.SetField("auth", padsrt.NewMaskNode(padsrt.Ignore))
	mask.SetField("request", padsrt.NewMaskNode(padsrt.Ignore))
	f.Mask = mask
	got := f.FormatRecord(rec)
	want := "207.136.97.49|10/16/97:01:46:51|200|30"
	if got != want {
		t.Errorf("masked format:\n got %s\nwant %s", got, want)
	}
}

func TestAbsentOptionalsKeepColumns(t *testing.T) {
	src := `
Precord Pstruct r_t {
  Popt Puint32 a; '|';
  Puint32 b; '|';
  Popt Puint32 c;
};
Psource Parray rs_t { r_t[]; };
`
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatal(serrs[0])
	}
	in := interp.New(desc)
	v, _ := in.ParseSource(padsrt.NewBytesSource([]byte("|5|\n1|2|3\n")))
	arr := v.(*value.Array)
	f := New(",")
	if got := f.FormatRecord(arr.Elems[0]); got != ",5," {
		t.Errorf("record 0 = %q, want %q", got, ",5,")
	}
	if got := f.FormatRecord(arr.Elems[1]); got != "1,2,3" {
		t.Errorf("record 1 = %q", got)
	}
}

func TestMultipleDelimiters(t *testing.T) {
	src := `
Pstruct pair_t { Puint32 x; ':'; Puint32 y; };
Precord Pstruct r_t { pair_t a; ' '; pair_t b; };
Psource Parray rs_t { r_t[]; };
`
	prog, _ := dsl.Parse(src)
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatal(serrs[0])
	}
	in := interp.New(desc)
	v, _ := in.ParseSource(padsrt.NewBytesSource([]byte("1:2 3:4\n")))
	rec := v.(*value.Array).Elems[0]
	// Outer boundary uses the first delimiter, nested pairs the second.
	f := New("|", "~")
	got := f.FormatRecord(rec)
	if got != "1~2~3~4" && got != "1~2|3~4" {
		// The delimiter list advances at nested type boundaries; the
		// leaves of each pair sit at depth 2 and reuse the last
		// delimiter while the top-level boundary is depth 1.
		t.Logf("got %q", got)
	}
	if got != "1~2|3~4" {
		t.Errorf("multi-delims = %q, want 1~2|3~4", got)
	}
}

func TestLeafRendering(t *testing.T) {
	f := New(",")
	mk := func(v value.Value) string { return f.FormatRecord(v) }
	if got := mk(value.NewInt(-5, 32, "Pint32", padsrt.PD{})); got != "-5" {
		t.Errorf("int = %q", got)
	}
	if got := mk(value.NewFloat(2.5, 64, "Pfloat64", padsrt.PD{})); got != "2.5" {
		t.Errorf("float = %q", got)
	}
	if got := mk(value.NewIP(0x01020304, "Pip", padsrt.PD{})); got != "1.2.3.4" {
		t.Errorf("ip = %q", got)
	}
	if got := mk(value.NewEnum("m_t", "GET", 0, padsrt.PD{})); got != "GET" {
		t.Errorf("enum = %q", got)
	}
	if got := mk(value.NewChar('x', "Pchar", padsrt.PD{})); got != "x" {
		t.Errorf("char = %q", got)
	}
	// Raw date text without a format.
	if got := mk(value.NewDate(5, "raw date", "Pdate", padsrt.PD{})); got != "raw date" {
		t.Errorf("date = %q", got)
	}
}

func TestWriteRecord(t *testing.T) {
	f := New("|")
	var sb strings.Builder
	st := &value.Struct{}
	st.Names = []string{"a", "b"}
	st.Fields = []value.Value{
		value.NewUint(1, 8, "Puint8", padsrt.PD{}),
		value.NewUint(2, 8, "Puint8", padsrt.PD{}),
	}
	if _, err := f.WriteRecord(&sb, st); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "1|2\n" {
		t.Errorf("WriteRecord = %q", sb.String())
	}
}

func TestArrayFormatting(t *testing.T) {
	arr := &value.Array{}
	for _, v := range []uint64{1, 2, 3} {
		arr.Elems = append(arr.Elems, value.NewUint(v, 8, "Puint8", padsrt.PD{}))
	}
	if got := New(",").FormatRecord(arr); got != "1,2,3" {
		t.Errorf("array = %q", got)
	}
}
