package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "state.json")
	if err := WriteFile(p, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(p); string(b) != "v1" {
		t.Fatalf("got %q", b)
	}
	if err := WriteFile(p, []byte("v2 longer content"), 0o600); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil || string(b) != "v2 longer content" {
		t.Fatalf("got %q, %v", b, err)
	}
	st, _ := os.Stat(p)
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("perm %v, want 0600", st.Mode().Perm())
	}
	leftoverCheck(t, dir, "state.json")
}

func TestFileCommit(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.jsonl")
	if err := os.WriteFile(p, []byte("old content"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != p {
		t.Fatalf("Name() = %q", f.Name())
	}
	f.Write([]byte("new "))
	// Until Commit, the destination keeps the previous content.
	if b, _ := os.ReadFile(p); string(b) != "old content" {
		t.Fatalf("destination changed before Commit: %q", b)
	}
	f.Write([]byte("content"))
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(p); string(b) != "new content" {
		t.Fatalf("got %q after Commit", b)
	}
	if err := f.Commit(); err != nil {
		t.Fatalf("second Commit: %v", err)
	}
	leftoverCheck(t, dir, "out.jsonl")
}

func TestFileAbort(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.jsonl")
	f, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("doomed"))
	f.Abort()
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("destination exists after Abort: %v", err)
	}
	f.Abort() // idempotent
	leftoverCheck(t, dir, "")
}

// leftoverCheck fails if any temp files survived in dir.
func leftoverCheck(t *testing.T, dir, keep string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != keep {
			t.Fatalf("leftover file %q", e.Name())
		}
	}
}
