// Package atomicio holds the small durability primitives the crash-safe
// paths share (internal/segment manifests, cliutil quarantine files, padsd):
// whole-file replacement via temp-file + fsync + atomic rename, and fsync'd
// appends. The invariant every helper preserves is that a reader never
// observes a torn file: it sees either the previous complete content or the
// new complete content, regardless of where a crash lands.
package atomicio

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: the bytes are written to a
// temp file in the same directory, fsync'd, and renamed over path, then the
// directory is fsync'd so the rename itself is durable. On any error the
// temp file is removed and path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames and creates within it durable.
// Filesystems that do not support directory fsync (some network mounts)
// return an error from Sync; that is reported, since the caller's durability
// contract depends on it.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// File is an atomically-replaced file under construction: writes go to a
// hidden temp file beside the destination, and Commit fsyncs and renames it
// into place. Until Commit, the destination keeps its previous content (or
// absence); Abort discards the temp file. The segment runner uses it for
// accumulator sidecars and manifest finalization; cliutil uses it for
// quarantine files.
type File struct {
	f    *os.File
	path string // destination
	tmp  string // temp file being written
	done bool
}

// Create starts an atomic replacement of path.
func Create(path string) (*File, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &File{f: tmp, path: path, tmp: tmp.Name()}, nil
}

// Write implements io.Writer.
func (a *File) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit fsyncs the temp file and renames it over the destination, then
// fsyncs the directory. After Commit the File is spent.
func (a *File) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.f.Chmod(0o644); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return err
	}
	if err := os.Rename(a.tmp, a.path); err != nil {
		os.Remove(a.tmp)
		return err
	}
	return SyncDir(filepath.Dir(a.path))
}

// Abort discards the temp file, leaving the destination untouched. Safe to
// call after Commit (it does nothing).
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.tmp)
}

// Name returns the destination path.
func (a *File) Name() string { return a.path }
