// Package core orchestrates the PADS pipeline — the paper's primary
// contribution assembled end to end: parse a description (internal/dsl),
// check it (internal/sema), and expose every artifact the system derives
// from it: the interpreter (internal/interp), the Go compiler backend
// (internal/codegen), XML Schema generation (internal/xmlgen), accumulators
// (internal/accum), formatting (internal/fmtconv), the query tree
// (internal/query), and random data generation (internal/datagen).
//
// The public package pads wraps this into the user-facing API; the cmd/
// tools call it directly.
package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"pads/internal/accum"
	"pads/internal/codegen"
	"pads/internal/datagen"
	"pads/internal/dsl"
	"pads/internal/fmtconv"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/parallel"
	"pads/internal/query"
	"pads/internal/sema"
	"pads/internal/telemetry"
	"pads/internal/telemetry/prof"
	"pads/internal/value"
	"pads/internal/xmlgen"
)

// Description is a compiled PADS description plus the machinery derived
// from it.
type Description struct {
	Source  string // description source text
	Name    string // file name or label, used in diagnostics
	Program *dsl.Program
	Desc    *sema.Desc
	Interp  *interp.Interp

	// Policy, when non-nil, applies an error budget and dead-letter sink to
	// every record scan the description runs (AccumulateReader and the
	// parallel entry points); see docs/ROBUSTNESS.md. Parallel scans give
	// each chunk a private interp.Batch and flush into Policy.Sink in chunk
	// order, so the quarantine file is deterministic at any worker count;
	// budget thresholds are then enforced on the merged counts at chunk
	// boundaries (a sequential scan checks per record). Not safe to change
	// while a parse is running.
	Policy *interp.Policy
}

// CompileError aggregates front-end diagnostics.
type CompileError struct {
	Name string
	Errs []*dsl.Error
}

// Error renders every diagnostic, one per line.
func (e *CompileError) Error() string {
	var b strings.Builder
	for i, d := range e.Errs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s:%v", e.Name, d)
	}
	return b.String()
}

// Compile parses and checks a description.
func Compile(src, name string) (*Description, error) {
	prog, perrs := dsl.Parse(src)
	if len(perrs) > 0 {
		return nil, &CompileError{Name: name, Errs: perrs}
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		return nil, &CompileError{Name: name, Errs: serrs}
	}
	return &Description{
		Source:  src,
		Name:    name,
		Program: prog,
		Desc:    desc,
		Interp:  interp.New(desc),
	}, nil
}

// CompileFile reads and compiles a description file.
func CompileFile(path string) (*Description, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Compile(string(src), path)
}

// Observe attaches telemetry to every parse the description runs: st (when
// non-nil) tallies interpreter counters — per-field-path errors and union
// branch histograms — and tr (when non-nil) receives structured trace
// events. Attach the same st to the input Source (padsrt.WithStats) to also
// collect its buffer/record/speculation counters; parallel entry points
// plumb st through internal/parallel so per-worker rows land in st.Workers.
// Pass nils to detach. Not safe to call concurrently with a running parse.
func (d *Description) Observe(st *telemetry.Stats, tr *telemetry.Tracer) {
	d.Interp.Stats = st
	d.Interp.Tracer = tr
}

// ObserveProf attaches a parse-path profiler (telemetry/prof) to every parse
// the description runs: per-node time/byte/error attribution plus latency
// and record-size histograms. Sequential scans write to p directly; parallel
// entry points give each chunk a private worker profiler and fold it into p
// in chunk order. Pass nil to detach. Not safe to call concurrently with a
// running parse.
func (d *Description) ObserveProf(p *prof.Profiler) {
	d.Interp.Prof = p
}

// SourceType names the Psource type describing the whole data source.
func (d *Description) SourceType() string { return d.Desc.Source.DeclName() }

// Print pretty-prints the checked description (living documentation).
func (d *Description) Print() string { return dsl.Print(d.Program) }

// GenerateGo emits the compiled Go library for the description.
func (d *Description) GenerateGo(pkg string) (string, error) {
	return codegen.Generate(d.Desc, codegen.Options{Package: pkg, Source: d.Name})
}

// Schema emits the XML Schema of the canonical XML embedding.
func (d *Description) Schema() string { return xmlgen.Schema(d.Desc) }

// NewAccum builds an accumulator with the given tracking limits
// (zero values select the paper's defaults: 1000 tracked, top 10 printed).
func (d *Description) NewAccum(maxTracked, topN int) *accum.Accum {
	return accum.New(accum.Config{MaxTracked: maxTracked, TopN: topN})
}

// NewFormatter builds a delimiter formatter (section 5.3.1).
func (d *Description) NewFormatter(delims ...string) *fmtconv.Formatter {
	return fmtconv.New(delims...)
}

// NewGenerator builds a random-data generator for the description.
func (d *Description) NewGenerator(seed uint64) *datagen.Generator {
	return datagen.NewGenerator(d.Desc, seed)
}

// ParseAll parses the entire source with full checking.
func (d *Description) ParseAll(s *padsrt.Source) (value.Value, error) {
	return d.Interp.ParseSource(s)
}

// Records opens record-at-a-time reading over the source.
func (d *Description) Records(s *padsrt.Source, mask *padsrt.MaskNode) (*interp.RecordReader, error) {
	return d.Interp.NewRecordReader(s, mask)
}

// WriteValue appends the original wire form of a parsed value.
func (d *Description) WriteValue(dst []byte, typeName string, v value.Value) ([]byte, error) {
	return d.Interp.NewWriter().Append(dst, typeName, v)
}

// QueryRoot wraps a parsed value as a query tree rooted at the source type.
func (d *Description) QueryRoot(v value.Value) *query.Node {
	return query.NewNode(d.SourceType(), v)
}

// RunQuery compiles and evaluates an XPath-subset query over a parsed value.
// For aggregate queries (count/sum/avg/min/max) nodes is nil and agg holds
// the result.
func (d *Description) RunQuery(q string, v value.Value) (nodes []*query.Node, agg float64, isAgg bool, err error) {
	cq, err := query.Compile(q)
	if err != nil {
		return nil, 0, false, err
	}
	nodes, agg, isAgg = cq.Eval(d.QueryRoot(v))
	return nodes, agg, isAgg, nil
}

// StreamQuery evaluates a record-relative query against each record as it
// is parsed — the lazily-reading query mode section 5.4 reports as "well
// underway" in the original system. The query is relative to one record
// (e.g. `events/elt[state = "LOC_6"]` against a Sirius entry); matching
// nodes are passed to visit together with the record they came from. visit
// returning false stops the scan early. Aggregate queries are rejected:
// aggregate over the visited nodes instead.
func (d *Description) StreamQuery(s *padsrt.Source, mask *padsrt.MaskNode, q string, visit func(rec value.Value, nodes []*query.Node) bool) (records int, err error) {
	cq, err := query.Compile(q)
	if err != nil {
		return 0, err
	}
	if _, _, isAgg := cq.Eval(query.NewNode("probe", nil)); isAgg {
		return 0, fmt.Errorf("core: StreamQuery takes a node query; aggregate over the visited nodes instead")
	}
	rr, err := d.Records(s, mask)
	if err != nil {
		return 0, err
	}
	rr.SetPolicy(d.Policy)
	shape, _ := d.Shape()
	for rr.More() {
		rec := rr.Read()
		records++
		root := query.NewNode(shape.RecordType, rec)
		nodes := cq.Run(root)
		if len(nodes) > 0 && !visit(rec, nodes) {
			break
		}
	}
	return records, rr.Err()
}

// Shape reports how the source decomposes for record-at-a-time reading.
func (d *Description) Shape() (interp.SourceShape, error) { return d.Interp.Shape() }

// AccumulateReader folds every record of r into a fresh accumulator and
// returns it with the record count — the generated accumulator program of
// section 5.2 for header+records sources.
func (d *Description) AccumulateReader(r io.Reader, opts []padsrt.SourceOption, cfg accum.Config) (*accum.Accum, int, error) {
	s := padsrt.NewSource(r, opts...)
	rr, err := d.Records(s, nil)
	if err != nil {
		return nil, 0, err
	}
	rr.SetPolicy(d.Policy)
	acc := accum.New(cfg)
	n := 0
	for rr.More() {
		acc.Add(rr.Read())
		n++
	}
	if errors.Is(rr.Err(), io.EOF) {
		return acc, n, nil
	}
	return acc, n, rr.Err()
}

// openShards parses the source header sequentially over data and returns
// the reader (for its record type and header value) plus the parallel
// options that make each chunk's positions and record numbers match a
// sequential run: the records region starts where the header ended.
func (d *Description) openShards(data []byte, opts []padsrt.SourceOption, workers int) (*interp.RecordReader, parallel.Options, int, error) {
	s := padsrt.NewBorrowedSource(data, opts...)
	// The header parses sequentially, before any worker starts, so its
	// source counters can go straight to the observed Stats (and its
	// profiler spans to the observed profiler).
	s.SetStats(d.Interp.Stats)
	s.SetProf(d.Interp.Prof)
	rr, err := d.Records(s, nil)
	if err != nil {
		return nil, parallel.Options{}, 0, err
	}
	base := int(s.Pos().Byte)
	popts := parallel.Options{
		Workers: workers,
		Disc:    s.Discipline(),
		Source:  opts,
		Off:     int64(base),
		Records: s.RecordNum(),
		Stats:   d.Interp.Stats,
		Prof:    d.Interp.Prof,
	}
	return rr, popts, base, nil
}

// AccumulateParallel is AccumulateReader over an in-memory input,
// record-sharded across workers (<= 0 means GOMAXPROCS): each worker folds
// its chunk into a private accumulator, and the shards merge in chunk order
// (accum.Merge). With workers=1 the report is byte-identical to
// AccumulateReader's; with more workers counts and numeric statistics are
// still exact, and the approximate sketches stay within their documented
// bounds (docs/PARALLEL.md).
func (d *Description) AccumulateParallel(data []byte, opts []padsrt.SourceOption, cfg accum.Config, workers int) (*accum.Accum, int, error) {
	rr, popts, base, err := d.openShards(data, opts, workers)
	if err != nil {
		return nil, 0, err
	}
	type shard struct {
		acc     *accum.Accum
		n       int
		errored int
		batch   *interp.Batch
	}
	pol := d.Policy
	acc := accum.New(cfg)
	total, errored := 0, 0
	err = parallel.Run(data[base:], popts,
		func(src *padsrt.Source, c parallel.Chunk) (shard, error) {
			sh := shard{acc: accum.New(cfg)}
			r := rr.Shard(src)
			sh.batch = shardPolicy(r, pol)
			for r.More() {
				sh.acc.Add(r.Read())
				sh.n++
			}
			_, sh.errored = r.Counts()
			err := r.Err()
			if errors.Is(err, io.EOF) {
				err = nil
			}
			return sh, err
		},
		func(c parallel.Chunk, sh shard) error {
			acc.Merge(sh.acc)
			total += sh.n
			errored += sh.errored
			if sh.batch != nil {
				sh.batch.FlushTo(pol.Sink)
			}
			return pol.Check(total, errored)
		})
	if err != nil {
		return nil, total, err
	}
	return acc, total, nil
}

// ParseAllParallel is ParseAll over an in-memory input, record-sharded
// across workers: the header parses sequentially, the record sequence
// parses in parallel, and the records reassemble (in order) into the same
// Psource value a sequential ParseAll builds. It requires a header+records
// shaped source; callers should fall back to ParseAll when it errors.
func (d *Description) ParseAllParallel(data []byte, opts []padsrt.SourceOption, workers int) (value.Value, error) {
	rr, popts, base, err := d.openShards(data, opts, workers)
	if err != nil {
		return nil, err
	}
	type shard struct {
		out     []value.Value
		errored int
		batch   *interp.Batch
	}
	pol := d.Policy
	var recs []value.Value
	errored := 0
	err = parallel.Run(data[base:], popts,
		func(src *padsrt.Source, c parallel.Chunk) (shard, error) {
			var sh shard
			r := rr.Shard(src)
			sh.batch = shardPolicy(r, pol)
			for r.More() {
				sh.out = append(sh.out, r.Read())
			}
			_, sh.errored = r.Counts()
			err := r.Err()
			if errors.Is(err, io.EOF) {
				err = nil
			}
			return sh, err
		},
		func(c parallel.Chunk, sh shard) error {
			recs = append(recs, sh.out...)
			errored += sh.errored
			if sh.batch != nil {
				sh.batch.FlushTo(pol.Sink)
			}
			return pol.Check(len(recs), errored)
		})
	if err != nil {
		return nil, err
	}
	return d.Interp.AssembleSource(rr.Header(), recs)
}

// shardPolicy equips one chunk's reader with the dead-letter half of pol:
// entries buffer in a private Batch (flushed by the merge in chunk order, so
// the quarantine stream is deterministic at any worker count). Budget
// thresholds are deliberately NOT given to the shard — workers only see
// local counts, so the merge enforces them on the folded totals instead.
func shardPolicy(r *interp.RecordReader, pol *interp.Policy) *interp.Batch {
	if pol == nil || pol.Sink == nil {
		return nil
	}
	b := &interp.Batch{}
	r.SetPolicy(&interp.Policy{Sink: b})
	return b
}

// ParseAllPolicy is ParseAll with the description's Policy applied. Budgets
// and quarantine need record framing, so a header+records shaped source
// parses record-at-a-time (yielding the same Psource value); sources with
// other shapes — or no active policy — fall through to ParseAll.
func (d *Description) ParseAllPolicy(s *padsrt.Source) (value.Value, error) {
	if !d.Policy.Active() {
		return d.ParseAll(s)
	}
	rr, err := d.Records(s, nil)
	if err != nil {
		return d.ParseAll(s)
	}
	rr.SetPolicy(d.Policy)
	var recs []value.Value
	for rr.More() {
		recs = append(recs, rr.Read())
	}
	if err := rr.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return d.Interp.AssembleSource(rr.Header(), recs)
}
