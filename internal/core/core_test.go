package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/accum"
	"pads/internal/datagen"
	"pads/internal/padsrt"
	"pads/internal/query"
	"pads/internal/value"
)

func td(name string) string { return filepath.Join("..", "..", "testdata", name) }

func TestCompileFile(t *testing.T) {
	d, err := CompileFile(td("sirius.pads"))
	if err != nil {
		t.Fatal(err)
	}
	if d.SourceType() != "out_sum" {
		t.Errorf("source type = %s", d.SourceType())
	}
	if !strings.Contains(d.Print(), "Pstruct order_header_t") {
		t.Error("Print lost declarations")
	}
	if _, err := CompileFile(td("no-such-file.pads")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCompileErrorAggregation(t *testing.T) {
	_, err := Compile("Pstruct s { a_t x; };\nPstruct r { b_t y; };", "two.pads")
	ce, ok := err.(*CompileError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if len(ce.Errs) != 2 {
		t.Errorf("diagnostics = %d, want 2", len(ce.Errs))
	}
	if !strings.Contains(ce.Error(), "two.pads") {
		t.Errorf("message = %q", ce.Error())
	}
}

func TestAccumulateReader(t *testing.T) {
	d, err := CompileFile(td("clf.pads"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := datagen.CLF(&buf, datagen.DefaultCLF(300)); err != nil {
		t.Fatal(err)
	}
	acc, n, err := d.AccumulateReader(&buf, nil, accum.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 || acc.Total() != 300 {
		t.Fatalf("records = %d, accum total = %d", n, acc.Total())
	}
	if acc.Field("length") == nil {
		t.Error("length accumulator missing")
	}
}

func TestRunQueryAndWriteValue(t *testing.T) {
	d, err := CompileFile(td("sirius.pads"))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("0|1005022800\n1|1|1|0|0|0|0||1|T|0|u|s|A|1000\n")
	v, err := d.ParseAll(padsrt.NewBytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	nodes, _, _, err := d.RunQuery("/es/elt/header/order_num", v)
	if err != nil || len(nodes) != 1 || nodes[0].Text() != "1" {
		t.Errorf("query = %v, %v", nodes, err)
	}
	if _, _, _, err := d.RunQuery("/es/elt[", v); err == nil {
		t.Error("bad query accepted")
	}
	out, err := d.WriteValue(nil, d.SourceType(), v)
	if err != nil || !bytes.Equal(out, data) {
		t.Errorf("write-back = %q, %v", out, err)
	}
}

func TestGenerateGoAndSchema(t *testing.T) {
	d, err := CompileFile(td("clf.pads"))
	if err != nil {
		t.Fatal(err)
	}
	code, err := d.GenerateGo("weblog")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "package weblog") {
		t.Error("package name lost")
	}
	if !strings.Contains(d.Schema(), "xs:schema") {
		t.Error("schema empty")
	}
	g := d.NewGenerator(4)
	if _, err := g.GenerateType("version_t"); err != nil {
		t.Error(err)
	}
	if f := d.NewFormatter("|"); f == nil {
		t.Error("formatter nil")
	}
	if a := d.NewAccum(0, 0); a == nil {
		t.Error("accum nil")
	}
}

func TestStreamQuery(t *testing.T) {
	d, err := CompileFile(td("sirius.pads"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(300)
	cfg.SyntaxErrors = 0
	cfg.SortViolations = 0
	if _, err := datagen.Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	state := datagen.StateName(0)

	// Streaming: collect order numbers of records passing through state.
	var streamed []string
	n, err := d.StreamQuery(padsrt.NewBytesSource(data), nil,
		`events/elt[state = "`+state+`"]`,
		func(rec value.Value, nodes []*query.Node) bool {
			on := rec.(*value.Struct).Field("header").(*value.Struct).Field("order_num")
			streamed = append(streamed, value.String(on))
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("records = %d", n)
	}
	if len(streamed) == 0 {
		t.Fatal("state never matched; fixture drifted")
	}

	// Whole-file query agrees.
	v, err := d.ParseAll(padsrt.NewBytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	nodes, _, _, err := d.RunQuery(`/es/elt[events/elt/state = "`+state+`"]/header/order_num`, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != len(streamed) {
		t.Fatalf("streaming found %d, whole-file found %d", len(streamed), len(nodes))
	}
	for i, nd := range nodes {
		if nd.Text() != streamed[i] {
			t.Fatalf("order %d: %s vs %s", i, nd.Text(), streamed[i])
		}
	}

	// Early stop.
	count := 0
	_, err = d.StreamQuery(padsrt.NewBytesSource(data), nil,
		`events/elt[state = "`+state+`"]`,
		func(rec value.Value, nodes []*query.Node) bool {
			count++
			return count < 2
		})
	if err != nil || count != 2 {
		t.Fatalf("early stop: count=%d err=%v", count, err)
	}

	// Aggregate queries are rejected.
	if _, err := d.StreamQuery(padsrt.NewBytesSource(data), nil, "count(events/elt)", func(value.Value, []*query.Node) bool { return true }); err == nil {
		t.Error("aggregate accepted by StreamQuery")
	}
}
