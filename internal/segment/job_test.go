package segment_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"pads/internal/accum"
	"pads/internal/core"
	"pads/internal/fault"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/segment"
	"pads/internal/value"
)

func compileCLF(t *testing.T) *core.Description {
	t.Helper()
	desc, err := core.CompileFile("../../testdata/clf.pads")
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// clfCorpus builds a deterministic web-log corpus: mostly well-formed lines
// (padded so a few hundred records span several 64 KiB segments), with every
// 13th line damaged so the quarantine and error counts are exercised.
func clfCorpus(n int) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		if i%13 == 7 {
			fmt.Fprintf(&b, "!!! damaged line %d — not a log record at all\n", i)
			continue
		}
		fmt.Fprintf(&b, "207.136.%d.%d - - [15/Oct/1997:18:%02d:%02d -0700] \"GET /a/%d/%s HTTP/1.0\" %d %d\n",
			i%200+1, i%250+1, i/60%60, i%60, i,
			bytes.Repeat([]byte{'x'}, 180+i%40), 200+i%2*204, i*31%9973)
	}
	return b.Bytes()
}

// runSequential is the in-memory baseline: one source, one record reader,
// one accumulator, quarantine entries captured in order.
func runSequential(t *testing.T, desc *core.Description, data []byte) (report string, quar []byte, records int) {
	t.Helper()
	s := padsrt.NewSource(bytes.NewReader(data), padsrt.WithDiscipline(padsrt.Newline()))
	rr, err := desc.Records(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	var qbuf bytes.Buffer
	rr.SetPolicy(&interp.Policy{Sink: interp.NewQuarantine(&qbuf)})
	acc := accum.New(accum.Config{})
	for rr.More() {
		acc.Add(rr.Read())
		records++
	}
	if err := rr.Err(); err != nil {
		t.Fatal(err)
	}
	var rbuf bytes.Buffer
	acc.Report(&rbuf, "<top>")
	return rbuf.String(), qbuf.Bytes(), records
}

// oocConfig assembles a Config over a data file in dir, with the manifest
// and quarantine named after tag so runs coexist.
func oocConfig(t *testing.T, desc *core.Description, dir, tag string, data []byte, workers int) segment.Config {
	t.Helper()
	dataPath := filepath.Join(dir, "data.log")
	if _, err := os.Stat(dataPath); err != nil {
		if err := os.WriteFile(dataPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	return segment.Config{
		Interp:   desc.Interp,
		DescHash: segment.HashBytes([]byte(desc.Source)),
		Data:     f,
		DataPath: dataPath,
		DataSize: st.Size(),
		Source:   []padsrt.SourceOption{padsrt.WithDiscipline(padsrt.Newline())},
		SegSize:  64 << 10,
		Workers:  workers,
		Manifest: filepath.Join(dir, tag+".manifest"),
		QuarPath: filepath.Join(dir, tag+".quar"),
	}
}

func reportString(t *testing.T, rep *segment.Report) string {
	t.Helper()
	var b bytes.Buffer
	rep.Acc.Report(&b, "<top>")
	return b.String()
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOutOfCoreMatchesSequential: for 1/2/4/8 workers the out-of-core run
// produces a byte-identical quarantine and an identical accumulator report
// versus the plain sequential scan. The corpus keeps every per-field sample
// count under the sketch thresholds so the reports are exactly comparable
// (boundary-dependent sketches are the documented exception at scale).
func TestOutOfCoreMatchesSequential(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(900)
	wantReport, wantQuar, wantRecords := runSequential(t, desc, data)
	if len(wantQuar) == 0 {
		t.Fatal("corpus produced no quarantine entries; the comparison is vacuous")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		dir := t.TempDir()
		cfg := oocConfig(t, desc, dir, fmt.Sprintf("w%d", workers), data, workers)
		rep, err := segment.Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Segments < 2 {
			t.Fatalf("workers=%d: %d segments — corpus too small to test merging", workers, rep.Segments)
		}
		if rep.Records != wantRecords {
			t.Fatalf("workers=%d: %d records, want %d", workers, rep.Records, wantRecords)
		}
		if got := reportString(t, rep); got != wantReport {
			t.Errorf("workers=%d: accumulator report differs from sequential run", workers)
		}
		if got := readFile(t, cfg.QuarPath); !bytes.Equal(got, wantQuar) {
			t.Errorf("workers=%d: quarantine differs from sequential run (%d vs %d bytes)", workers, len(got), len(wantQuar))
		}
		if len(rep.Poisoned) != 0 {
			t.Errorf("workers=%d: unexpected poisoned segments: %v", workers, rep.Poisoned)
		}
	}
}

// interruptAfterCommits wires a Cancel hook that trips once the job has
// committed at least n segments — a deterministic stand-in for SIGKILL that
// stops the run with a durable, partial manifest.
func interruptAfterCommits(cfg *segment.Config, n int) {
	var committed atomic.Int64
	cfg.Progress = func(p segment.Progress) { committed.Store(int64(p.Committed)) }
	cfg.Cancel = func() error {
		if committed.Load() >= int64(n) {
			return errors.New("injected crash")
		}
		return nil
	}
}

// TestResumeAfterInterrupt is the seeded kill/resume chaos test: interrupt a
// job mid-run, tear the manifest tail the way a crashed append would
// (internal/fault), resume, and require byte-identical outputs versus an
// uninterrupted run of the same plan.
func TestResumeAfterInterrupt(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(2000)

	base := t.TempDir()
	baseCfg := oocConfig(t, desc, base, "full", data, 4)
	baseRep, err := segment.Run(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReport := reportString(t, baseRep)
	wantQuar := readFile(t, baseCfg.QuarPath)

	for _, tc := range []struct {
		name string
		seed uint64
		muck func(t *testing.T, manifest string)
	}{
		{"clean-stop", 1, func(*testing.T, string) {}},
		{"torn-manifest", 2, func(t *testing.T, m string) {
			// A crash mid-append tears the manifest line before the sidecar
			// write ever runs (commit fsyncs the manifest first), so the
			// faithful post-crash state is a torn journal tail plus a sidecar
			// from an earlier batch — emulated here as no sidecar at all,
			// which resume replays from zero.
			if err := fault.TearTail(m, 0xfeed); err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(m + ".accum"); err != nil {
				t.Fatal(err)
			}
		}},
		{"lost-sidecar", 3, func(t *testing.T, m string) {
			if err := os.Remove(m + ".accum"); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Interrupt only after two committed segments, so even the torn
			// tail (which can eat the final committed line) leaves at least
			// one segment for resume to skip. One worker makes the interrupt
			// deterministic: the per-segment cancel pre-check fires before
			// the remaining segments parse (more workers could finish every
			// segment before polling). The resume below uses four workers —
			// the plan, not the worker count, defines the output.
			dir := t.TempDir()
			cfg := oocConfig(t, desc, dir, "job", data, 1)
			interruptAfterCommits(&cfg, 2)
			if _, err := segment.Run(cfg); err == nil {
				t.Fatal("interrupted run reported success")
			}
			tc.muck(t, cfg.Manifest)

			resumed := oocConfig(t, desc, dir, "job", data, 4)
			resumed.Resume = true
			rep, err := segment.Run(resumed)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if rep.Skipped == 0 {
				t.Error("resume re-parsed everything; no committed segments were skipped")
			}
			if got := reportString(t, rep); got != wantReport {
				t.Error("resumed accumulator report differs from uninterrupted run")
			}
			if got := readFile(t, resumed.QuarPath); !bytes.Equal(got, wantQuar) {
				t.Errorf("resumed quarantine differs from uninterrupted run (%d vs %d bytes)", len(got), len(wantQuar))
			}
			info, err := segment.Peek(resumed.Manifest)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Complete {
				t.Error("resumed manifest not finalized")
			}
		})
	}
}

// TestResumeCompletedJob: resuming a finalized manifest re-reports without
// touching (or truncating) any output.
func TestResumeCompletedJob(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(600)
	dir := t.TempDir()
	cfg := oocConfig(t, desc, dir, "job", data, 2)
	rep1, err := segment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quar1 := readFile(t, cfg.QuarPath)

	again := oocConfig(t, desc, dir, "job", data, 2)
	again.Resume = true
	rep2, err := segment.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Records != rep1.Records || rep2.Errored != rep1.Errored {
		t.Fatalf("re-report (%d, %d) != original (%d, %d)", rep2.Records, rep2.Errored, rep1.Records, rep1.Errored)
	}
	if rep2.Skipped != rep1.Segments {
		t.Fatalf("re-report skipped %d of %d segments", rep2.Skipped, rep1.Segments)
	}
	if got := reportString(t, rep2); got != reportString(t, rep1) {
		t.Error("re-reported accumulator differs")
	}
	if got := readFile(t, again.QuarPath); !bytes.Equal(got, quar1) {
		t.Error("re-report modified the quarantine file")
	}
}

// TestFreshRunRefusesExistingManifest: starting over requires removing the
// manifest explicitly — a fresh run never clobbers a journal, and the
// refusal must fire before the quarantine/output files are touched: a
// truncate-then-refuse would destroy the committed outputs the manifest
// still vouches for.
func TestFreshRunRefusesExistingManifest(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(600)
	dir := t.TempDir()
	cfg := oocConfig(t, desc, dir, "job", data, 2)
	rep1, err := segment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quar1 := readFile(t, cfg.QuarPath)
	if len(quar1) == 0 {
		t.Fatal("corpus produced no quarantine bytes; the clobber check is vacuous")
	}

	cfg2 := oocConfig(t, desc, dir, "job", data, 2)
	_, err = segment.Run(cfg2)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("already exists")) {
		t.Fatalf("expected an already-exists refusal, got %v", err)
	}
	if got := readFile(t, cfg.QuarPath); !bytes.Equal(got, quar1) {
		t.Fatalf("refused fresh run modified the quarantine file (%d vs %d bytes)", len(got), len(quar1))
	}

	// The job is still intact: a resume re-reports the original answer.
	again := oocConfig(t, desc, dir, "job", data, 2)
	again.Resume = true
	rep2, err := segment.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportString(t, rep2); got != reportString(t, rep1) {
		t.Error("re-report after the refused fresh run differs from the original")
	}
}

// TestResumeRefusesShortenedOutputs: a resume whose quarantine file is
// shorter than the manifest's committed frontier must fail — truncating up
// to the frontier would silently extend the file with NUL bytes in place of
// the committed entries.
func TestResumeRefusesShortenedOutputs(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(2000)
	dir := t.TempDir()
	cfg := oocConfig(t, desc, dir, "job", data, 1)
	interruptAfterCommits(&cfg, 2)
	if _, err := segment.Run(cfg); err == nil {
		t.Fatal("interrupted run reported success")
	}
	if err := os.Truncate(cfg.QuarPath, 0); err != nil {
		t.Fatal(err)
	}
	resumed := oocConfig(t, desc, dir, "job", data, 2)
	resumed.Resume = true
	_, err := segment.Run(resumed)
	if err == nil || !strings.Contains(err.Error(), "truncated or replaced") {
		t.Fatalf("resume over a shortened quarantine file: got %v", err)
	}
}

// stripDoneLine rewrites a finalized manifest without its done line,
// reconstructing the journal state of a crash that landed after the final
// batch's manifest append but before finalize.
func stripDoneLine(t *testing.T, path string) {
	t.Helper()
	var keep []byte
	for _, ln := range bytes.Split(readFile(t, path), []byte("\n")) {
		if len(ln) == 0 || bytes.Contains(ln, []byte(`"kind":"done"`)) {
			continue
		}
		keep = append(append(keep, ln...), '\n')
	}
	if err := os.WriteFile(path, keep, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeWithStaleSidecarBeforeFinalize: a crash between the final
// batch's manifest append and its sidecar write leaves every segment
// committed with the sidecar a batch behind (here: gone entirely). The
// resume that finalizes such a job must leave a caught-up sidecar behind,
// so later re-reports serve the full accumulator without replaying.
func TestResumeWithStaleSidecarBeforeFinalize(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(900)
	dir := t.TempDir()
	cfg := oocConfig(t, desc, dir, "job", data, 2)
	rep1, err := segment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportString(t, rep1)

	stripDoneLine(t, cfg.Manifest)
	if err := os.Remove(cfg.Manifest + ".accum"); err != nil {
		t.Fatal(err)
	}

	resumed := oocConfig(t, desc, dir, "job", data, 2)
	resumed.Resume = true
	rep2, err := segment.Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Replayed != rep1.Segments {
		t.Errorf("resume replayed %d of %d committed segments", rep2.Replayed, rep1.Segments)
	}
	if got := reportString(t, rep2); got != want {
		t.Error("resumed accumulator report differs from the uninterrupted run")
	}

	again := oocConfig(t, desc, dir, "job", data, 2)
	again.Resume = true
	rep3, err := segment.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Replayed != 0 {
		t.Errorf("re-report replayed %d segments; finalize left a stale sidecar", rep3.Replayed)
	}
	if got := reportString(t, rep3); got != want {
		t.Error("re-reported accumulator differs from the uninterrupted run")
	}
}

// TestCompletedJobMissingSidecarRepaired: re-reporting a finalized job whose
// sidecar was lost (or left a batch behind by a crash between the final
// append and finalize) replays the uncovered segments accumulator-only and
// repairs the sidecar, instead of erroring or silently serving a short
// accumulator.
func TestCompletedJobMissingSidecarRepaired(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(900)
	dir := t.TempDir()
	cfg := oocConfig(t, desc, dir, "job", data, 2)
	rep1, err := segment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportString(t, rep1)
	if err := os.Remove(cfg.Manifest + ".accum"); err != nil {
		t.Fatal(err)
	}

	resumed := oocConfig(t, desc, dir, "job", data, 2)
	resumed.Resume = true
	rep2, err := segment.Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Replayed != rep1.Segments {
		t.Errorf("repair replayed %d of %d segments", rep2.Replayed, rep1.Segments)
	}
	if got := reportString(t, rep2); got != want {
		t.Error("repaired accumulator report differs from the original run")
	}

	// The repair is durable: the next re-report reads the rewritten sidecar.
	again := oocConfig(t, desc, dir, "job", data, 2)
	again.Resume = true
	rep3, err := segment.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Replayed != 0 {
		t.Errorf("second re-report replayed %d segments; the sidecar repair did not land", rep3.Replayed)
	}
	if got := reportString(t, rep3); got != want {
		t.Error("second re-report differs from the original run")
	}
}

// TestPoisonedSegmentIsolation: a segment that exhausts its error budget is
// poisoned and reported, while the job completes and keeps every healthy
// segment's records — the per-segment fault isolation contract.
func TestPoisonedSegmentIsolation(t *testing.T) {
	desc := compileCLF(t)
	good := clfCorpus(600)
	var garbage bytes.Buffer
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&garbage, "@@@ corrupted block %d %s\n", i, bytes.Repeat([]byte{'?'}, 30))
	}
	data := append(append(append([]byte{}, good...), garbage.Bytes()...), good...)

	dir := t.TempDir()
	cfg := oocConfig(t, desc, dir, "job", data, 4)
	cfg.Policy = &interp.Policy{MaxErrors: 50}
	rep, err := segment.Run(cfg)
	if err != nil {
		t.Fatalf("poisoned segments must not abort the job: %v", err)
	}
	if len(rep.Poisoned) == 0 {
		t.Fatal("no poisoned segments; the garbage region should have tripped the budget")
	}
	if len(rep.Poisoned) == rep.Segments {
		t.Fatal("every segment poisoned; isolation test needs healthy segments too")
	}
	if rep.Records < 1000 {
		t.Fatalf("only %d records survived; healthy segments should be intact", rep.Records)
	}
	for _, p := range rep.Poisoned {
		if p.Reason == "" {
			t.Errorf("poisoned segment %d has no reason", p.Index)
		}
	}
	info, err := segment.Peek(cfg.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Complete {
		t.Error("job with poisoned segments did not finalize its manifest")
	}
	if info.Poisoned != len(rep.Poisoned) {
		t.Errorf("manifest records %d poisoned segments, report %d", info.Poisoned, len(rep.Poisoned))
	}

	// A resume of the completed job must not re-parse poisoned segments
	// into different totals.
	again := oocConfig(t, desc, dir, "job", data, 4)
	again.Resume = true
	rep2, err := segment.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Records != rep.Records || len(rep2.Poisoned) != len(rep.Poisoned) {
		t.Errorf("re-report (%d records, %d poisoned) != original (%d, %d)",
			rep2.Records, len(rep2.Poisoned), rep.Records, len(rep.Poisoned))
	}
}

// setLineEmitter switches a config to emit mode with a trivial one-line-per-
// record renderer bracketed by prologue/epilogue markers, standing in for
// the padsxml/padsfmt emitters.
func setLineEmitter(cfg *segment.Config, outPath string) {
	cfg.Mode = "lines"
	cfg.OutPath = outPath
	cfg.EmitPrologue = func(out *bytes.Buffer, _ value.Value) { out.WriteString("BEGIN\n") }
	cfg.Emit = func(out *bytes.Buffer, v value.Value) {
		fmt.Fprintf(out, "rec nerr=%d\n", v.PD().Nerr)
	}
	cfg.EmitEpilogue = func(out *bytes.Buffer) { out.WriteString("END\n") }
}

// TestEmitModeResume: emit-mode jobs (padsxml/padsfmt) resume to
// byte-identical output, including the epilogue.
func TestEmitModeResume(t *testing.T) {
	desc := compileCLF(t)
	data := clfCorpus(1200)

	base := t.TempDir()
	baseCfg := oocConfig(t, desc, base, "full", data, 4)
	setLineEmitter(&baseCfg, filepath.Join(base, "full.out"))
	if _, err := segment.Run(baseCfg); err != nil {
		t.Fatal(err)
	}
	want := readFile(t, baseCfg.OutPath)
	if len(want) == 0 {
		t.Fatal("emit run produced no output")
	}

	// One worker: the cancel pre-check before each segment parse fires
	// deterministically once the first commit lands (more workers could race
	// through every remaining segment before polling).
	dir := t.TempDir()
	cfg := oocConfig(t, desc, dir, "job", data, 1)
	setLineEmitter(&cfg, filepath.Join(dir, "job.out"))
	interruptAfterCommits(&cfg, 1)
	if _, err := segment.Run(cfg); err == nil {
		t.Fatal("interrupted run reported success")
	}

	resumed := oocConfig(t, desc, dir, "job", data, 4)
	setLineEmitter(&resumed, filepath.Join(dir, "job.out"))
	resumed.Resume = true
	if _, err := segment.Run(resumed); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, resumed.OutPath); !bytes.Equal(got, want) {
		t.Errorf("resumed emit output differs (%d vs %d bytes)", len(got), len(want))
	}
}
