package segment

import (
	"fmt"
	"io"

	"pads/internal/padsrt"
)

// Seg is one planned segment: a record-aligned byte range of the input and
// the number of records that precede it within the segmented region. Workers
// parse segments independently; RecBase seeds each segment source's
// SetBase, so positions and record numbers match a sequential run exactly.
type Seg struct {
	Index   int
	Off     int64 // absolute byte offset of the segment within the input
	Len     int64
	RecBase int // records before this segment, counting from the region start
}

// End returns the absolute offset one past the segment.
func (s Seg) End() int64 { return s.Off + s.Len }

// Plan is the deterministic segmentation of one input region: given the
// same bytes, discipline, and segment size, the plan is identical on every
// run — the property resume relies on (the manifest re-plans the region and
// cross-checks committed segments instead of persisting every boundary).
type Plan struct {
	Off     int64 // region start (first byte after the source header)
	Size    int64 // region length
	SegSize int64
	Segs    []Seg
}

// DefaultSegSize is the default segment buffer size (8 MiB): large enough
// that per-segment overheads (a pread, a manifest line, an fsync batch)
// amortize, small enough that workers × buffer stays modest.
const DefaultSegSize = 8 << 20

// MinSegSize bounds how small a segment buffer may be configured. The floor
// exists for production sanity, not correctness — tests use planCuts
// directly with tiny sizes.
const MinSegSize = 64 << 10

// PlanSegments splits the region [off, off+size) of r into record-aligned
// segments of roughly segSize bytes each (DefaultSegSize when segSize <= 0).
// The plan covers the region exactly: segments are contiguous, non-empty,
// and concatenate to the region. Disciplines without cheap
// resynchronization (none, custom) return an error; see planCuts.
func PlanSegments(r io.ReaderAt, off, size int64, disc padsrt.Discipline, segSize int64) (*Plan, error) {
	if segSize <= 0 {
		segSize = DefaultSegSize
	}
	if size < 0 {
		return nil, fmt.Errorf("segment: negative region size %d", size)
	}
	cuts, err := planCuts(r, off, size, disc, segSize)
	if err != nil {
		return nil, err
	}
	p := &Plan{Off: off, Size: size, SegSize: segSize}
	if size == 0 {
		return p, nil
	}
	prev := Cut{}
	for _, c := range cuts {
		p.Segs = append(p.Segs, Seg{
			Index: len(p.Segs), Off: off + prev.Off, Len: c.Off - prev.Off, RecBase: prev.Rec,
		})
		prev = c
	}
	p.Segs = append(p.Segs, Seg{
		Index: len(p.Segs), Off: off + prev.Off, Len: size - prev.Off, RecBase: prev.Rec,
	})
	return p, nil
}
