package segment_test

import (
	"bytes"
	"fmt"
	"testing"

	"pads/internal/padsrt"
	"pads/internal/parallel"
	"pads/internal/segment"
)

// checkPlan verifies the segmentation invariants: exact, contiguous coverage
// of the region; every segment non-empty; RecBase equal to the number of
// records strictly before the segment; and every interior boundary on a
// record boundary (per boundaryOK).
func checkPlan(t *testing.T, data []byte, p *segment.Plan, recsBefore func(off int64) int, boundaryOK func(off int64) bool) {
	t.Helper()
	if len(data) == 0 {
		if len(p.Segs) != 0 {
			t.Fatalf("empty region planned %d segments", len(p.Segs))
		}
		return
	}
	off := int64(0)
	for i, s := range p.Segs {
		if s.Index != i {
			t.Fatalf("segment %d has Index %d", i, s.Index)
		}
		if s.Off != off {
			t.Fatalf("segment %d at Off %d, want %d (gap or overlap)", i, s.Off, off)
		}
		if s.Len <= 0 {
			t.Fatalf("segment %d has Len %d", i, s.Len)
		}
		if want := recsBefore(s.Off); s.RecBase != want {
			t.Fatalf("segment %d RecBase = %d, want %d", i, s.RecBase, want)
		}
		if i > 0 && !boundaryOK(s.Off) {
			t.Fatalf("segment %d starts at %d, not a record boundary", i, s.Off)
		}
		off += s.Len
	}
	if off != int64(len(data)) {
		t.Fatalf("plan covers %d bytes of %d", off, len(data))
	}
}

func TestPlanNewline(t *testing.T) {
	var data []byte
	for i := 0; i < 500; i++ {
		data = append(data, fmt.Sprintf("record-%03d with a bit of padding %d\n", i, i*i)...)
	}
	data = append(data, "final unterminated record"...)
	recsBefore := func(off int64) int { return bytes.Count(data[:off], []byte{'\n'}) }
	boundaryOK := func(off int64) bool { return data[off-1] == '\n' }
	for _, segSize := range []int64{1 << 9, 1 << 10, 1 << 12, 1 << 20} {
		p, err := segment.PlanSegments(bytes.NewReader(data), 0, int64(len(data)), padsrt.Newline(), segSize)
		if err != nil {
			t.Fatalf("segSize %d: %v", segSize, err)
		}
		checkPlan(t, data, p, recsBefore, boundaryOK)
		if segSize < int64(len(data)) && len(p.Segs) < 2 {
			t.Fatalf("segSize %d over %d bytes planned %d segments", segSize, len(data), len(p.Segs))
		}
	}
}

func TestPlanFixed(t *testing.T) {
	const width = 17
	data := bytes.Repeat([]byte{0xAB}, width*531+5) // short final record
	recsBefore := func(off int64) int { return int(off / width) }
	boundaryOK := func(off int64) bool { return off%width == 0 }
	for _, segSize := range []int64{width - 1, 64, 1 << 10, 1 << 20} {
		p, err := segment.PlanSegments(bytes.NewReader(data), 0, int64(len(data)), padsrt.FixedWidth(width), segSize)
		if err != nil {
			t.Fatalf("segSize %d: %v", segSize, err)
		}
		checkPlan(t, data, p, recsBefore, boundaryOK)
	}
}

func TestPlanLenPrefix(t *testing.T) {
	disc := padsrt.LenPrefix() // 4-byte big-endian header
	var data []byte
	starts := map[int64]int{} // record start offset -> records before it
	for i := 0; i < 300; i++ {
		starts[int64(len(data))] = i
		body := bytes.Repeat([]byte{byte(i)}, 5+i%37)
		var rec []byte
		padsrt.FrameRecord(disc, &rec, body)
		data = append(data, rec...)
	}
	recsBefore := func(off int64) int { return starts[off] }
	boundaryOK := func(off int64) bool { _, ok := starts[off]; return ok }
	for _, segSize := range []int64{32, 256, 1 << 12, 1 << 20} {
		p, err := segment.PlanSegments(bytes.NewReader(data), 0, int64(len(data)), disc, segSize)
		if err != nil {
			t.Fatalf("segSize %d: %v", segSize, err)
		}
		checkPlan(t, data, p, recsBefore, boundaryOK)
	}
}

// TestPlanSegmentSmallerThanRecord: a record larger than the segment size
// must still land whole in one segment — the plan stretches, never splits a
// record.
func TestPlanSegmentSmallerThanRecord(t *testing.T) {
	var data []byte
	for i := 0; i < 20; i++ {
		data = append(data, bytes.Repeat([]byte{'a' + byte(i)}, 8<<10)...)
		data = append(data, '\n')
	}
	recsBefore := func(off int64) int { return bytes.Count(data[:off], []byte{'\n'}) }
	boundaryOK := func(off int64) bool { return data[off-1] == '\n' }
	p, err := segment.PlanSegments(bytes.NewReader(data), 0, int64(len(data)), padsrt.Newline(), 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, data, p, recsBefore, boundaryOK)
	for _, s := range p.Segs {
		if s.Len < 8<<10 {
			t.Fatalf("segment %d has Len %d, smaller than one record", s.Index, s.Len)
		}
	}
}

func TestPlanOffsetRegion(t *testing.T) {
	// Planning a region that starts mid-file (the post-header region of a
	// real job): offsets are absolute, RecBase counts from the region start.
	head := []byte("HEADER LINE\n")
	var body []byte
	for i := 0; i < 200; i++ {
		body = append(body, fmt.Sprintf("rec %d\n", i)...)
	}
	data := append(append([]byte{}, head...), body...)
	off := int64(len(head))
	p, err := segment.PlanSegments(bytes.NewReader(data), off, int64(len(body)), padsrt.Newline(), 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(p.Segs))
	}
	covered := int64(0)
	for i, s := range p.Segs {
		if s.Off != off+covered {
			t.Fatalf("segment %d at %d, want %d", i, s.Off, off+covered)
		}
		if want := bytes.Count(body[:s.Off-off], []byte{'\n'}); s.RecBase != want {
			t.Fatalf("segment %d RecBase %d, want %d", i, s.RecBase, want)
		}
		covered += s.Len
	}
	if covered != int64(len(body)) {
		t.Fatalf("covered %d of %d body bytes", covered, len(body))
	}
}

func TestPlanUnshardableDisciplines(t *testing.T) {
	data := []byte("whatever bytes these are")
	for _, disc := range []padsrt.Discipline{padsrt.NoRecords(), &padsrt.CustomDisc{}} {
		if _, err := segment.PlanSegments(bytes.NewReader(data), 0, int64(len(data)), disc, 8); err == nil {
			t.Fatalf("%s: expected an error, got a plan", disc.Name())
		}
	}
}

// TestShardAgreesWithCuts: parallel.Shard is a thin wrapper over
// segment.Cuts (docs/PARALLEL.md); the chunk boundaries must be exactly the
// cut offsets.
func TestShardAgreesWithCuts(t *testing.T) {
	var data []byte
	for i := 0; i < 400; i++ {
		data = append(data, fmt.Sprintf("line %d of the shard agreement corpus\n", i)...)
	}
	for _, disc := range []padsrt.Discipline{padsrt.Newline(), padsrt.FixedWidth(23)} {
		for _, n := range []int{1, 2, 3, 4, 8, 64} {
			chunks := parallel.Shard(data, disc, n)
			cuts, err := segment.Cuts(bytes.NewReader(data), 0, int64(len(data)), disc, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", disc.Name(), n, err)
			}
			if len(chunks) != len(cuts)+1 {
				t.Fatalf("%s n=%d: %d chunks vs %d cuts", disc.Name(), n, len(chunks), len(cuts))
			}
			for i, c := range cuts {
				next := chunks[i+1]
				if next.Off != c.Off || next.RecBase != c.Rec {
					t.Fatalf("%s n=%d: chunk %d at (%d,%d), cut at (%d,%d)",
						disc.Name(), n, i+1, next.Off, next.RecBase, c.Off, c.Rec)
				}
			}
		}
	}
}
