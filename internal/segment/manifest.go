package segment

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pads/internal/atomicio"
)

// The job manifest is a JSONL journal beside the output files: one "job"
// header line, one "seg" line per committed segment (appended in segment
// order and fsync'd per commit batch), and one "done" line when the job
// completes — at which point the whole manifest is rewritten through an
// atomic rename so a finished manifest is always a complete, clean file.
//
// Append-crash tolerance: a torn final line (a crash mid-append, a torn
// page flush) is detected on load — every intact line ends with the only
// newline it contains, so no proper prefix of a line parses — and dropped,
// which simply un-commits the last batch; the segments re-parse on resume.
// A damaged interior line means the file (not the tail) was corrupted, and
// loading fails rather than guessing.

const manifestVersion = 1

// jobLine identifies the job: the input (by size and head/tail content
// hash), the description (by source hash), the framing, the segmentation
// parameters, and the output files. Resume re-verifies every field — a
// manifest never silently applies to different data.
type jobLine struct {
	Kind       string `json:"kind"` // "job"
	V          int    `json:"v"`
	File       string `json:"file"`
	Size       int64  `json:"size"`
	Head       string `json:"head"` // sha256 of the first identityBytes
	Tail       string `json:"tail"` // sha256 of the last identityBytes
	Desc       string `json:"desc,omitempty"`
	Disc       string `json:"disc"`
	Mode       string `json:"mode"`
	SegSize    int64  `json:"seg_size"`
	HeaderEnd  int64  `json:"header_end"`
	HeaderRecs int    `json:"header_recs"`
	Segments   int    `json:"segments"`
	Quar       string `json:"quar,omitempty"`
	Out        string `json:"out,omitempty"`
	OutBase    int64  `json:"out_base,omitempty"` // prologue bytes before segment output
	Created    string `json:"created,omitempty"`
}

// segLine commits one segment: its identity (cross-checked against the
// re-planned segmentation on resume), its outcome, and the durable output
// offsets as of this commit — the truncation points resume restores before
// re-parsing anything.
type segLine struct {
	Kind      string `json:"kind"` // "seg"
	Index     int    `json:"i"`
	Off       int64  `json:"off"`
	Len       int64  `json:"len"`
	RecBase   int    `json:"rec_base"`
	Status    string `json:"status"` // "done" | "poisoned"
	Reason    string `json:"reason,omitempty"`
	Records   int    `json:"records"`
	Errs      int    `json:"errs"`
	QuarOff   int64  `json:"quar_off"`          // quarantine file length after this commit
	QuarCount int64  `json:"quar_count"`        // cumulative quarantined entries
	OutOff    int64  `json:"out_off,omitempty"` // output file length after this commit
	AccHash   string `json:"acc,omitempty"`     // sha256 of the accum sidecar written with this batch
}

const (
	segDone     = "done"
	segPoisoned = "poisoned"
)

// doneLine marks completion.
type doneLine struct {
	Kind     string `json:"kind"` // "done"
	Records  int    `json:"records"`
	Errored  int    `json:"errored"`
	Poisoned []int  `json:"poisoned,omitempty"`
}

// manifest is the open journal.
type manifest struct {
	path string
	f    *os.File // append handle; nil after finalize/close
	job  jobLine
	segs []segLine
	done *doneLine
}

func marshalLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All line types marshal from plain structs; failure is a bug.
		panic(fmt.Sprintf("segment: marshal manifest line: %v", err))
	}
	return append(b, '\n')
}

// createManifest starts a fresh journal. It refuses to overwrite an
// existing manifest: that is either a job to resume or output to preserve.
func createManifest(path string, job jobLine) (*manifest, error) {
	job.Kind = "job"
	job.V = manifestVersion
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("segment: manifest %s already exists (resume it, or remove it to start over)", path)
		}
		return nil, err
	}
	m := &manifest{path: path, f: f, job: job}
	if _, err := f.Write(marshalLine(&job)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := atomicio.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// loadManifest reads a journal back, dropping a torn final line, and leaves
// the file open for appending at the end of the last intact line.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &manifest{path: path}
	good := 0 // bytes of intact lines
	sawJob := false
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminator
		}
		line := data[off : off+nl]
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			if off+nl+1 >= len(data) {
				break // torn tail: unparseable final line
			}
			return nil, fmt.Errorf("segment: manifest %s corrupt at byte %d: %v", path, off, err)
		}
		switch probe.Kind {
		case "job":
			if sawJob {
				return nil, fmt.Errorf("segment: manifest %s has two job lines", path)
			}
			if err := json.Unmarshal(line, &m.job); err != nil {
				return nil, err
			}
			sawJob = true
		case "seg":
			var sl segLine
			if err := json.Unmarshal(line, &sl); err != nil {
				return nil, err
			}
			if sl.Index != len(m.segs) {
				return nil, fmt.Errorf("segment: manifest %s commits segment %d out of order (want %d)", path, sl.Index, len(m.segs))
			}
			m.segs = append(m.segs, sl)
		case "done":
			var dl doneLine
			if err := json.Unmarshal(line, &dl); err != nil {
				return nil, err
			}
			m.done = &dl
		default:
			if off+nl+1 >= len(data) {
				break // torn tail that happened to parse as JSON of no known kind
			}
			return nil, fmt.Errorf("segment: manifest %s has unknown line kind %q", path, probe.Kind)
		}
		off += nl + 1
		good = off
	}
	if !sawJob {
		return nil, fmt.Errorf("segment: manifest %s has no job line (torn before the first commit); remove it and start over", path)
	}
	if m.job.V != manifestVersion {
		return nil, fmt.Errorf("segment: manifest %s is version %d, this build reads %d", path, m.job.V, manifestVersion)
	}
	if m.done != nil {
		return m, nil // complete: no append handle needed
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, err
	}
	// Make the tail repair durable before anything appends past it: without
	// this fsync a crash before the first new commit could resurface the
	// torn line on some filesystems, under whatever bytes land after it.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	m.f = f
	return m, nil
}

// appendSegs journals a commit batch: all lines in one write, one fsync.
func (m *manifest) appendSegs(lines []segLine) error {
	var buf bytes.Buffer
	for i := range lines {
		lines[i].Kind = "seg"
		buf.Write(marshalLine(&lines[i]))
	}
	if _, err := m.f.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := m.f.Sync(); err != nil {
		return err
	}
	m.segs = append(m.segs, lines...)
	return nil
}

// finalize completes the journal: the whole manifest (job line, every seg
// line, done line) is rewritten through a temp file and atomically renamed
// over the journal, so a finished manifest is a single clean file with no
// append seams.
func (m *manifest) finalize(done doneLine) error {
	done.Kind = "done"
	var buf bytes.Buffer
	buf.Write(marshalLine(&m.job))
	for i := range m.segs {
		buf.Write(marshalLine(&m.segs[i]))
	}
	buf.Write(marshalLine(&done))
	if err := atomicio.WriteFile(m.path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	m.done = &done
	if m.f != nil {
		m.f.Close() // the append handle now points at an unlinked inode
		m.f = nil
	}
	return nil
}

func (m *manifest) close() {
	if m.f != nil {
		m.f.Close()
		m.f = nil
	}
}

// identityBytes is how much of each end of the input participates in the
// content hash. Hashing the whole input would re-read gigabytes on every
// resume; size plus both ends catches truncation, append, and in-place
// header/trailer rewrites — the realistic mutations of a log file.
const identityBytes = 64 * 1024

// fileIdentity hashes the first and last identityBytes of the input.
func fileIdentity(r io.ReaderAt, size int64) (head, tail string, err error) {
	n := size
	if n > identityBytes {
		n = identityBytes
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(r, 0, n), buf); err != nil {
		return "", "", fmt.Errorf("segment: hash input head: %w", err)
	}
	h := sha256.Sum256(buf)
	head = hex.EncodeToString(h[:])
	if _, err := io.ReadFull(io.NewSectionReader(r, size-n, n), buf); err != nil {
		return "", "", fmt.Errorf("segment: hash input tail: %w", err)
	}
	t := sha256.Sum256(buf)
	tail = hex.EncodeToString(t[:])
	return head, tail, nil
}

// HashBytes is the content hash used for job identity (description sources,
// accumulator sidecars): sha256, hex-encoded.
func HashBytes(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// sidecarFile is the accumulator snapshot written beside the manifest
// (<manifest>.accum) on every commit batch, via temp-file + fsync + atomic
// rename. Through records how far the snapshot folds; because the sidecar
// is written after its manifest lines, a crash between the two leaves the
// sidecar one batch behind, and resume re-parses the gap accumulator-only.
type sidecarFile struct {
	Through int             `json:"through"` // last segment index folded into Acc
	Records int             `json:"records"`
	Errored int             `json:"errored"`
	Acc     json.RawMessage `json:"acc"`
}

func sidecarPath(manifestPath string) string { return manifestPath + ".accum" }

// Info is the public summary of a manifest, for tools that need to inspect
// a job before (or without) running it: the resume paths of the CLIs and
// the padsd job API.
type Info struct {
	File       string `json:"file"`
	Size       int64  `json:"size"`
	Mode       string `json:"mode"`
	Disc       string `json:"disc"`
	SegSize    int64  `json:"seg_size"`
	Segments   int    `json:"segments"`
	Committed  int    `json:"committed"`
	Poisoned   int    `json:"poisoned"`
	Records    int    `json:"records"`
	Errored    int    `json:"errored"`
	Quarantine string `json:"quarantine,omitempty"`
	Out        string `json:"out,omitempty"`
	Complete   bool   `json:"complete"`
}

// Peek loads a manifest read-only and summarizes it.
func Peek(path string) (Info, error) {
	m, err := loadManifest(path)
	if err != nil {
		return Info{}, err
	}
	m.close()
	in := Info{
		File: m.job.File, Size: m.job.Size, Mode: m.job.Mode, Disc: m.job.Disc,
		SegSize: m.job.SegSize, Segments: m.job.Segments,
		Committed: len(m.segs), Quarantine: m.job.Quar, Out: m.job.Out,
		Complete: m.done != nil,
	}
	for _, sl := range m.segs {
		in.Records += sl.Records
		in.Errored += sl.Errs
		if sl.Status == segPoisoned {
			in.Poisoned++
		}
	}
	return in, nil
}
