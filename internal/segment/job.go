package segment

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pads/internal/accum"
	"pads/internal/atomicio"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/telemetry"
	"pads/internal/value"
)

// Config describes one out-of-core job.
type Config struct {
	// Interp is the compiled description's interpreter (its Stats/Prof
	// should already be observed by the caller; segment workers get private
	// stats that fold into Stats at commit).
	Interp *interp.Interp
	// DescHash identifies the description source (HashBytes of its text);
	// recorded in the manifest and re-verified on resume. Optional.
	DescHash string

	// Data is the input, read positionally (an *os.File preads; any
	// io.ReaderAt works). DataPath is recorded in the manifest so resume can
	// find the input again; DataSize is the authoritative length.
	Data     io.ReaderAt
	DataPath string
	DataSize int64

	// Source options applied to every source built over the input
	// (discipline, coding, byte order, limits).
	Source []padsrt.SourceOption

	// SegSize is the segment buffer size in bytes (DefaultSegSize when 0,
	// floored at MinSegSize). Workers is the worker goroutine count
	// (GOMAXPROCS when <= 0). Peak memory is O(Workers × SegSize).
	SegSize int64
	Workers int

	// Manifest is the path of the job's durable journal. Resume loads an
	// existing manifest (verifying job identity) instead of starting fresh;
	// a fresh run refuses to overwrite an existing manifest.
	Manifest string
	Resume   bool

	// Policy is the per-segment error budget (docs/ROBUSTNESS.md). Unlike
	// the in-memory parallel path — which enforces budgets on merged totals
	// — out-of-core budgets apply to each segment independently: the segment
	// is the fault-isolation boundary, and a segment that exhausts its
	// budget is poisoned, not fatal. Policy.Sink is ignored (each worker
	// gets a private batch; entries land in QuarPath at commit).
	Policy *interp.Policy
	// QuarPath, when non-empty, receives dead-lettered records as JSONL,
	// appended and fsync'd per commit batch in segment order.
	QuarPath string

	// AccumCfg configures accumulation (the default mode, when Emit is
	// nil): each segment folds into a private accumulator, merged in
	// segment order, checkpointed to the manifest sidecar at every commit.
	AccumCfg accum.Config

	// Emit switches the job to emit mode: it renders one parsed record into
	// out, and the bytes are appended to OutPath in segment order.
	// EmitPrologue/EmitEpilogue bracket the stream (header is the parsed
	// source header, nil if the description has none). Mode names the emit
	// flavor in the manifest ("xml", "fmt"); accum mode ignores it.
	Emit         func(out *bytes.Buffer, v value.Value)
	EmitPrologue func(out *bytes.Buffer, header value.Value)
	EmitEpilogue func(out *bytes.Buffer)
	Mode         string
	OutPath      string

	// Stats, when non-nil, accumulates the job's telemetry: each segment
	// parses under a private Stats folded in at commit (no worker rows —
	// a job can have far more segments than a parallel run has chunks).
	Stats *telemetry.Stats

	// Cancel, polled between records (padsrt.Source.SetCancel) and between
	// segments, aborts the job with a resumable error when it returns
	// non-nil.
	Cancel func() error

	// Progress, when non-nil, is called after every commit batch with
	// cumulative counts. It runs on the coordinator goroutine.
	Progress func(Progress)
}

// Progress is a point-in-time view of a running job.
type Progress struct {
	Segments  int `json:"segments"`
	Committed int `json:"committed"`
	Poisoned  int `json:"poisoned"`
	Records   int `json:"records"`
	Errored   int `json:"errored"`
}

// PoisonedSeg reports one isolated segment failure: the segment kept its
// partial results (records before the trip are counted, its quarantine tail
// is written), the job went on without it.
type PoisonedSeg struct {
	Index   int    `json:"index"`
	Off     int64  `json:"off"`
	Len     int64  `json:"len"`
	Reason  string `json:"reason"`
	Records int    `json:"records"`
	Errored int    `json:"errored"`
}

// Report is a completed job's summary. Poisoned segments do not make the
// job fail — Run returns a Report with them listed, and tools exit 3.
type Report struct {
	Records     int
	Errored     int
	Segments    int
	Skipped     int // segments already committed by a previous run
	Replayed    int // skipped segments re-parsed accumulator-only to catch the sidecar up
	Quarantined int64
	Poisoned    []PoisonedSeg
	Acc         *accum.Accum // accum mode only
	Header      value.Value
}

// segResult is one parsed segment, produced by a worker, consumed by the
// coordinator in segment order.
type segResult struct {
	seg      Seg
	records  int
	errored  int
	entries  []interp.Entry
	out      []byte
	acc      *accum.Accum
	stats    *telemetry.Stats
	poison   string // non-empty: the segment is poisoned with this reason
	fatal    error  // non-nil: the whole job must stop (cancellation, I/O)
	failures uint64 // contained worker panics (first attempt)
	rescues  uint64 // retries that then succeeded
}

type job struct {
	cfg        Config
	rr         *interp.RecordReader
	disc       padsrt.Discipline
	segSize    int64
	headerEnd  int64
	headerRecs int
	plan       *Plan
	m          *manifest

	quarF     *os.File
	quarOff   int64
	quarCount int64
	outF      *os.File
	outOff    int64

	acc      *accum.Accum
	records  int
	errored  int
	poisoned []PoisonedSeg
	skipped  int
	replayed int
}

// Run executes (or resumes) an out-of-core job.
func Run(cfg Config) (*Report, error) {
	if cfg.Interp == nil {
		return nil, errors.New("segment: Config.Interp is required")
	}
	if cfg.Data == nil || cfg.DataSize < 0 {
		return nil, errors.New("segment: Config.Data and DataSize are required")
	}
	if cfg.Manifest == "" {
		return nil, errors.New("segment: Config.Manifest is required")
	}
	if cfg.Emit != nil && cfg.OutPath == "" {
		return nil, errors.New("segment: emit mode needs Config.OutPath")
	}
	j := &job{cfg: cfg, segSize: cfg.SegSize}
	if j.segSize <= 0 {
		j.segSize = DefaultSegSize
	}
	if j.segSize < MinSegSize {
		j.segSize = MinSegSize
	}
	if cfg.Workers <= 0 {
		j.cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Emit == nil {
		j.cfg.Mode = "accum"
		j.acc = accum.New(cfg.AccumCfg)
	} else if j.cfg.Mode == "" {
		j.cfg.Mode = "emit"
	}

	// The header parses once, sequentially, over a positional source; its
	// counters go straight to the job's Stats, mirroring the in-memory
	// path's openShards.
	hs := padsrt.NewSectionSource(cfg.Data, 0, cfg.DataSize, cfg.Source...)
	hs.SetStats(cfg.Stats)
	if cfg.Cancel != nil {
		hs.SetCancel(cfg.Cancel)
	}
	rr, err := cfg.Interp.NewRecordReader(hs, nil)
	if err != nil {
		return nil, err
	}
	if err := hs.Err(); err != nil {
		return nil, fmt.Errorf("segment: parse source header: %w", err)
	}
	j.rr = rr
	j.disc = hs.Discipline()
	j.headerEnd = hs.Pos().Byte
	j.headerRecs = hs.RecordNum()

	if cfg.Resume {
		err = j.resume()
	} else {
		err = j.fresh()
	}
	if err != nil {
		j.closeFiles()
		if j.m != nil {
			j.m.close()
		}
		return nil, err
	}
	if j.m.done != nil {
		// The job already completed; re-emit its report so a resume racing
		// the job's own completion (a kill that lands after the last commit)
		// is a no-op instead of an error.
		rep, err := j.completedReport()
		j.closeFiles()
		j.m.close()
		return rep, err
	}
	rep, err := j.run()
	j.closeFiles()
	j.m.close()
	return rep, err
}

// fresh plans the job and creates its manifest and outputs.
func (j *job) fresh() error {
	plan, err := PlanSegments(j.cfg.Data, j.headerEnd, j.cfg.DataSize-j.headerEnd, j.disc, j.segSize)
	if err != nil {
		return err
	}
	j.plan = plan
	head, tail, err := fileIdentity(j.cfg.Data, j.cfg.DataSize)
	if err != nil {
		return err
	}
	jl := jobLine{
		File: j.cfg.DataPath, Size: j.cfg.DataSize, Head: head, Tail: tail,
		Desc: j.cfg.DescHash, Disc: j.disc.Name(), Mode: j.cfg.Mode,
		SegSize: j.segSize, HeaderEnd: j.headerEnd, HeaderRecs: j.headerRecs,
		Segments: len(plan.Segs), Quar: j.cfg.QuarPath, Out: j.cfg.OutPath,
		Created: time.Now().UTC().Format(time.RFC3339),
	}
	var prologue []byte
	if j.cfg.Emit != nil && j.cfg.EmitPrologue != nil {
		var buf bytes.Buffer
		j.cfg.EmitPrologue(&buf, j.rr.Header())
		prologue = buf.Bytes()
		jl.OutBase = int64(len(prologue))
	}
	// The manifest's O_EXCL creation is the gate for everything below: an
	// existing manifest means an existing job whose committed quarantine and
	// output files must not be truncated by a fresh run aimed at the same
	// paths. Only after the manifest is reserved do the output files get
	// created.
	m, err := createManifest(j.cfg.Manifest, jl)
	if err != nil {
		return err
	}
	j.m = m
	abort := func(err error) error {
		// Nothing committed yet: drop the reserved manifest so a corrected
		// retry is not told to resume an empty job.
		m.close()
		j.m = nil
		os.Remove(j.cfg.Manifest)
		return err
	}
	if j.cfg.QuarPath != "" {
		f, err := os.Create(j.cfg.QuarPath)
		if err != nil {
			return abort(err)
		}
		j.quarF = f
	}
	if j.cfg.Emit != nil {
		f, err := os.Create(j.cfg.OutPath)
		if err != nil {
			return abort(err)
		}
		j.outF = f
		if len(prologue) > 0 {
			if _, err := f.Write(prologue); err != nil {
				return abort(err)
			}
			if err := f.Sync(); err != nil {
				return abort(err)
			}
			j.outOff = int64(len(prologue))
		}
	}
	return nil
}

// resume loads the manifest, re-verifies job identity, re-plans the region
// (segmentation is deterministic) and cross-checks committed segments,
// restores the output files to their last committed lengths, and reloads
// the accumulator sidecar — replaying any committed segments past the
// sidecar's checkpoint accumulator-only.
func (j *job) resume() error {
	m, err := loadManifest(j.cfg.Manifest)
	if err != nil {
		return err
	}
	j.m = m
	jl := &m.job

	// Job identity. Every mismatch is fatal: resuming against different
	// data or a different description silently corrupts output.
	head, tail, err := fileIdentity(j.cfg.Data, j.cfg.DataSize)
	if err != nil {
		return err
	}
	switch {
	case jl.Size != j.cfg.DataSize:
		return fmt.Errorf("segment: resume: input is %d bytes, manifest recorded %d", j.cfg.DataSize, jl.Size)
	case jl.Head != head || jl.Tail != tail:
		return fmt.Errorf("segment: resume: input content changed since the manifest was written")
	case jl.Desc != "" && j.cfg.DescHash != "" && jl.Desc != j.cfg.DescHash:
		return fmt.Errorf("segment: resume: description changed since the manifest was written")
	case jl.Disc != j.disc.Name():
		return fmt.Errorf("segment: resume: discipline is %s, manifest recorded %s", j.disc.Name(), jl.Disc)
	case jl.Mode != j.cfg.Mode:
		return fmt.Errorf("segment: resume: job mode is %s, manifest recorded %s", j.cfg.Mode, jl.Mode)
	case jl.HeaderEnd != j.headerEnd || jl.HeaderRecs != j.headerRecs:
		return fmt.Errorf("segment: resume: source header parses differently (%d bytes/%d records, manifest recorded %d/%d)",
			j.headerEnd, j.headerRecs, jl.HeaderEnd, jl.HeaderRecs)
	}
	// The manifest's segmentation parameters win over flags: they are part
	// of the job.
	j.segSize = jl.SegSize
	j.cfg.QuarPath = jl.Quar
	j.cfg.OutPath = jl.Out

	plan, err := PlanSegments(j.cfg.Data, j.headerEnd, j.cfg.DataSize-j.headerEnd, j.disc, j.segSize)
	if err != nil {
		return err
	}
	j.plan = plan
	if len(plan.Segs) != jl.Segments {
		return fmt.Errorf("segment: resume: re-planned %d segments, manifest recorded %d", len(plan.Segs), jl.Segments)
	}
	for _, sl := range m.segs {
		s := plan.Segs[sl.Index]
		if s.Off != sl.Off || s.Len != sl.Len || s.RecBase != sl.RecBase {
			return fmt.Errorf("segment: resume: segment %d re-planned as [%d,+%d) rec %d, manifest recorded [%d,+%d) rec %d",
				sl.Index, s.Off, s.Len, s.RecBase, sl.Off, sl.Len, sl.RecBase)
		}
	}

	// Restore committed totals and the poisoned list.
	j.skipped = len(m.segs)
	var lastQuar, lastOut int64
	if j.cfg.Emit != nil {
		lastOut = jl.OutBase
	}
	for _, sl := range m.segs {
		j.records += sl.Records
		j.errored += sl.Errs
		lastQuar = sl.QuarOff
		j.quarCount = sl.QuarCount
		if sl.OutOff > lastOut {
			lastOut = sl.OutOff
		}
		if sl.Status == segPoisoned {
			s := plan.Segs[sl.Index]
			j.poisoned = append(j.poisoned, PoisonedSeg{
				Index: sl.Index, Off: s.Off, Len: s.Len, Reason: sl.Reason,
				Records: sl.Records, Errored: sl.Errs,
			})
		}
	}

	if j.m.done != nil {
		// Completed job: the outputs are final (the emit epilogue sits past
		// the last committed OutOff); leave every file exactly as it is.
		return nil
	}

	// Truncate outputs back to the committed frontier: anything past it was
	// written by a batch whose manifest lines never landed. A file shorter
	// than the frontier is fatal — the committed bytes are gone (truncated or
	// replaced out-of-band), and Truncate would silently extend it with NULs.
	reopen := func(path string, committed int64, what string) (*os.File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if st.Size() < committed {
			f.Close()
			return nil, fmt.Errorf("segment: resume: %s %s is %d bytes, manifest committed %d — the file was truncated or replaced since the last run",
				what, path, st.Size(), committed)
		}
		if err := f.Truncate(committed); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(committed, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		return f, nil
	}
	if j.cfg.QuarPath != "" {
		f, err := reopen(j.cfg.QuarPath, lastQuar, "quarantine file")
		if err != nil {
			return err
		}
		j.quarF = f
		j.quarOff = lastQuar
	}
	if j.cfg.Emit != nil {
		f, err := reopen(j.cfg.OutPath, lastOut, "output file")
		if err != nil {
			return err
		}
		j.outF = f
		j.outOff = lastOut
	}

	if j.cfg.Emit == nil && j.m.done == nil {
		if err := j.restoreAccum(); err != nil {
			return err
		}
	}
	return nil
}

// marshalSidecar snapshots the current accumulator and cumulative totals as
// the sidecar that checkpoints segment `through`. Marshaling is
// deterministic (json.Marshal orders map keys), so regenerating the sidecar
// from a caught-up accumulator reproduces the bytes the original commit
// hashed into its manifest line.
func (j *job) marshalSidecar(through int) ([]byte, error) {
	accJSON, err := json.Marshal(j.acc)
	if err != nil {
		return nil, err
	}
	return json.Marshal(&sidecarFile{
		Through: through, Records: j.records, Errored: j.errored, Acc: accJSON,
	})
}

// restoreAccum reloads the accumulator sidecar and replays any committed
// segments past its checkpoint (the sidecar is written after its manifest
// lines, so a crash between the two leaves it at most one batch behind).
// Replay is accumulator-only: quarantine entries and counts for those
// segments committed already; re-parsing them is deterministic, so merging
// only their accumulators reproduces the uninterrupted state.
func (j *job) restoreAccum() error {
	through := -1
	data, err := os.ReadFile(sidecarPath(j.cfg.Manifest))
	switch {
	case err == nil:
		var sc sidecarFile
		if err := json.Unmarshal(data, &sc); err != nil {
			return fmt.Errorf("segment: sidecar %s corrupt: %v", sidecarPath(j.cfg.Manifest), err)
		}
		if sc.Through < 0 || sc.Through >= len(j.m.segs) {
			return fmt.Errorf("segment: sidecar %s checkpoints segment %d, manifest committed %d", sidecarPath(j.cfg.Manifest), sc.Through, len(j.m.segs))
		}
		if want := j.m.segs[sc.Through].AccHash; want != HashBytes(data) {
			return fmt.Errorf("segment: sidecar %s does not match its manifest checkpoint", sidecarPath(j.cfg.Manifest))
		}
		if err := json.Unmarshal(sc.Acc, j.acc); err != nil {
			return fmt.Errorf("segment: sidecar %s accumulator: %v", sidecarPath(j.cfg.Manifest), err)
		}
		through = sc.Through
	case os.IsNotExist(err):
		// No sidecar: the first batch never committed one. Replay from 0.
	default:
		return err
	}
	if through+1 >= len(j.m.segs) {
		return nil
	}
	buf := []byte(nil)
	for i := through + 1; i < len(j.m.segs); i++ {
		res := j.parseSeg(j.plan.Segs[i], &buf)
		if res.fatal != nil {
			return fmt.Errorf("segment: replay segment %d: %w", i, res.fatal)
		}
		if res.acc != nil {
			j.acc.Merge(res.acc)
		}
		j.replayed++
	}
	// Rewrite the sidecar from the caught-up accumulator: if the remaining
	// work is empty (the crash landed between the final batch's manifest
	// append and its sidecar write), run() goes straight to finalize, and
	// without this the manifest would complete over a stale sidecar. The
	// rewrite only lands when its bytes reproduce the hash the last commit
	// journaled — otherwise the old sidecar stays and the next resume simply
	// replays the same gap again.
	sidecar, err := j.marshalSidecar(len(j.m.segs) - 1)
	if err != nil {
		return err
	}
	if HashBytes(sidecar) == j.m.segs[len(j.m.segs)-1].AccHash {
		if err := atomicio.WriteFile(sidecarPath(j.cfg.Manifest), sidecar, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// completedReport rebuilds a finished job's report from its manifest (and,
// in accum mode, its sidecar), so resuming a job that already finished
// returns the same answer as the run that finished it.
func (j *job) completedReport() (*Report, error) {
	rep := &Report{
		Records: j.m.done.Records, Errored: j.m.done.Errored,
		Segments: j.m.job.Segments, Skipped: len(j.m.segs),
		Poisoned: j.poisonedFromManifest(), Header: j.rr.Header(),
	}
	if len(j.m.segs) > 0 {
		rep.Quarantined = j.m.segs[len(j.m.segs)-1].QuarCount
	}
	if j.cfg.Emit == nil {
		// The sidecar trails the manifest by design (it is written after the
		// seg lines that name its hash), so a finished manifest may sit next
		// to a sidecar that is one batch behind — or, for a job with zero
		// segments, next to no sidecar at all. Rather than silently serving a
		// short accumulator, replay the uncovered segments accumulator-only
		// (re-parsing is deterministic) and repair the sidecar on disk.
		acc := accum.New(j.cfg.AccumCfg)
		through := -1
		data, err := os.ReadFile(sidecarPath(j.cfg.Manifest))
		switch {
		case err == nil:
			var sc sidecarFile
			if err := json.Unmarshal(data, &sc); err != nil {
				return nil, fmt.Errorf("segment: sidecar corrupt: %v", err)
			}
			if sc.Through < 0 || sc.Through >= len(j.m.segs) {
				return nil, fmt.Errorf("segment: sidecar %s checkpoints segment %d, manifest committed %d", sidecarPath(j.cfg.Manifest), sc.Through, len(j.m.segs))
			}
			if err := json.Unmarshal(sc.Acc, acc); err != nil {
				return nil, fmt.Errorf("segment: sidecar accumulator: %v", err)
			}
			through = sc.Through
		case os.IsNotExist(err):
		default:
			return nil, fmt.Errorf("segment: completed job's accumulator sidecar: %w", err)
		}
		if through < len(j.m.segs)-1 {
			j.acc = acc
			buf := []byte(nil)
			for i := through + 1; i < len(j.m.segs); i++ {
				res := j.parseSeg(j.plan.Segs[i], &buf)
				if res.fatal != nil {
					return nil, fmt.Errorf("segment: replay segment %d: %w", i, res.fatal)
				}
				if res.acc != nil {
					acc.Merge(res.acc)
				}
				rep.Replayed++
			}
			j.records, j.errored = rep.Records, rep.Errored
			sidecar, err := j.marshalSidecar(len(j.m.segs) - 1)
			if err != nil {
				return nil, err
			}
			if err := atomicio.WriteFile(sidecarPath(j.cfg.Manifest), sidecar, 0o644); err != nil {
				return nil, err
			}
		}
		rep.Acc = acc
	}
	return rep, nil
}

func (j *job) poisonedFromManifest() []PoisonedSeg {
	var out []PoisonedSeg
	for _, sl := range j.m.segs {
		if sl.Status == segPoisoned {
			out = append(out, PoisonedSeg{
				Index: sl.Index, Off: sl.Off, Len: sl.Len, Reason: sl.Reason,
				Records: sl.Records, Errored: sl.Errs,
			})
		}
	}
	return out
}

func (j *job) closeFiles() {
	if j.quarF != nil {
		j.quarF.Close()
		j.quarF = nil
	}
	if j.outF != nil {
		j.outF.Close()
		j.outF = nil
	}
}

// parseOnce parses one segment with a contained panic boundary.
func (j *job) parseOnce(seg Seg, buf *[]byte) (res segResult, panicked error) {
	defer func() {
		if p := recover(); p != nil {
			panicked = fmt.Errorf("segment %d worker panicked: %v\n%s", seg.Index, p, debug.Stack())
		}
	}()
	res = segResult{seg: seg}
	if int64(cap(*buf)) < seg.Len {
		*buf = make([]byte, seg.Len)
	}
	b := (*buf)[:seg.Len]
	if _, err := io.ReadFull(io.NewSectionReader(j.cfg.Data, seg.Off, seg.Len), b); err != nil {
		res.fatal = fmt.Errorf("segment: read segment %d [%d,+%d): %w", seg.Index, seg.Off, seg.Len, err)
		return res, nil
	}
	st := telemetry.NewStats()
	src := padsrt.NewBorrowedSource(b, j.cfg.Source...)
	src.SetBase(seg.Off, j.headerRecs+seg.RecBase)
	src.SetStats(st)
	if j.cfg.Cancel != nil {
		src.SetCancel(j.cfg.Cancel)
	}
	r := j.rr.Shard(src)
	var batch *interp.Batch
	pol := j.cfg.Policy
	if pol.Active() || j.cfg.QuarPath != "" {
		batch = &interp.Batch{}
		p := &interp.Policy{Sink: batch}
		if pol != nil {
			p.MaxErrors = pol.MaxErrors
			p.MaxErrorRate = pol.MaxErrorRate
			p.RateMin = pol.RateMin
			p.FailFast = pol.FailFast
		}
		r.SetPolicy(p)
	}
	var out bytes.Buffer
	if j.cfg.Emit != nil {
		for r.More() {
			j.cfg.Emit(&out, r.Read())
		}
	} else {
		acc := accum.New(j.cfg.AccumCfg)
		for r.More() {
			acc.Add(r.Read())
		}
		res.acc = acc
	}
	res.records, res.errored = r.Counts()
	res.out = out.Bytes()
	if batch != nil {
		res.entries = batch.Entries
	}
	res.stats = st

	err := r.Err()
	var be *interp.BudgetError
	var le *padsrt.LimitError
	switch {
	case err == nil:
	case errors.As(err, &be):
		res.poison = err.Error()
	case errors.As(err, &le):
		if le.Cause != nil {
			// Cancellation or deadline: the job stops, resumable.
			res.fatal = err
		} else {
			// A resource cap (record length, backtrack budget, speculation
			// limits): this segment's data tripped it; isolate the segment.
			res.poison = err.Error()
		}
	default:
		res.poison = err.Error()
	}
	return res, nil
}

// parseSeg parses one segment, retrying a panicked attempt once with fresh
// state before poisoning the segment with zero contribution.
func (j *job) parseSeg(seg Seg, buf *[]byte) segResult {
	if j.cfg.Cancel != nil {
		if err := j.cfg.Cancel(); err != nil {
			return segResult{seg: seg, fatal: &padsrt.LimitError{What: "cancelled", Cause: err}}
		}
	}
	res, panicked := j.parseOnce(seg, buf)
	if panicked == nil {
		return res
	}
	res, again := j.parseOnce(seg, buf)
	if again == nil {
		res.failures, res.rescues = 1, 1
		return res
	}
	return segResult{
		seg: seg, poison: fmt.Sprintf("worker panicked twice; first: %v", panicked),
		stats: telemetry.NewStats(), failures: 2,
	}
}

// commit durably applies a batch of consecutive segment results, in segment
// order. The write order is the crash-safety argument (docs/ROBUSTNESS.md):
// quarantine and output appends land and fsync before the manifest lines
// that commit them — so a crash leaves at worst orphan output bytes past
// the committed frontier, which resume truncates — and the accumulator
// sidecar lands after the manifest lines that name its hash, so the
// sidecar is at most one batch behind and resume replays the gap.
func (j *job) commit(batch []segResult) error {
	if j.quarF != nil {
		var buf bytes.Buffer
		for _, res := range batch {
			for i := range res.entries {
				b, err := json.Marshal(&res.entries[i])
				if err != nil {
					return err
				}
				buf.Write(b)
				buf.WriteByte('\n')
			}
		}
		if buf.Len() > 0 {
			if _, err := j.quarF.Write(buf.Bytes()); err != nil {
				return err
			}
			if err := j.quarF.Sync(); err != nil {
				return err
			}
		}
		j.quarOff += int64(buf.Len())
	}
	if j.outF != nil {
		n := 0
		for _, res := range batch {
			if len(res.out) > 0 {
				w, err := j.outF.Write(res.out)
				n += w
				if err != nil {
					return err
				}
			}
		}
		if n > 0 {
			if err := j.outF.Sync(); err != nil {
				return err
			}
		}
		j.outOff += int64(n)
	}

	lines := make([]segLine, 0, len(batch))
	for _, res := range batch {
		j.records += res.records
		j.errored += res.errored
		j.quarCount += int64(len(res.entries))
		if res.acc != nil {
			j.acc.Merge(res.acc)
		}
		if st := j.cfg.Stats; st != nil {
			if res.stats != nil {
				st.Merge(res.stats)
			}
			st.Faults.ChunkFailures += res.failures
			st.Faults.ChunkRetries += res.failures
			st.Faults.ChunkRescues += res.rescues
			st.Faults.Quarantined += uint64(len(res.entries))
		}
		sl := segLine{
			Index: res.seg.Index, Off: res.seg.Off, Len: res.seg.Len, RecBase: res.seg.RecBase,
			Status: segDone, Records: res.records, Errs: res.errored,
			QuarOff: j.quarOff, QuarCount: j.quarCount, OutOff: j.outOff,
		}
		if res.poison != "" {
			sl.Status = segPoisoned
			sl.Reason = res.poison
			j.poisoned = append(j.poisoned, PoisonedSeg{
				Index: res.seg.Index, Off: res.seg.Off, Len: res.seg.Len,
				Reason: res.poison, Records: res.records, Errored: res.errored,
			})
		}
		lines = append(lines, sl)
	}

	var sidecar []byte
	if j.acc != nil {
		var err error
		sidecar, err = j.marshalSidecar(lines[len(lines)-1].Index)
		if err != nil {
			return err
		}
		lines[len(lines)-1].AccHash = HashBytes(sidecar)
	}
	if err := j.m.appendSegs(lines); err != nil {
		return err
	}
	if sidecar != nil {
		if err := atomicio.WriteFile(sidecarPath(j.cfg.Manifest), sidecar, 0o644); err != nil {
			return err
		}
	}
	if j.cfg.Progress != nil {
		j.cfg.Progress(Progress{
			Segments: len(j.plan.Segs), Committed: len(j.m.segs),
			Poisoned: len(j.poisoned), Records: j.records, Errored: j.errored,
		})
	}
	return nil
}

// run executes the segments past the committed frontier: workers parse,
// the coordinator commits in segment order, and a dispatch window bounds
// how many segments are in flight (parsing or awaiting commit) so memory
// stays O(workers × segment) even when one slow segment holds up the
// commit order.
func (j *job) run() (*Report, error) {
	frontier := len(j.m.segs)
	todo := j.plan.Segs[frontier:]
	if len(todo) > 0 {
		workers := j.cfg.Workers
		if workers > len(todo) {
			workers = len(todo)
		}
		window := make(chan struct{}, 2*workers)
		jobs := make(chan Seg)
		results := make(chan segResult, workers)
		stop := make(chan struct{})
		var stopOnce sync.Once
		halt := func() { stopOnce.Do(func() { close(stop) }) }

		go func() {
			defer close(jobs)
			for _, seg := range todo {
				select {
				case window <- struct{}{}:
				case <-stop:
					return
				}
				select {
				case jobs <- seg:
				case <-stop:
					return
				}
			}
		}()
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var buf []byte
				for seg := range jobs {
					results <- j.parseSeg(seg, &buf)
				}
			}()
		}
		go func() {
			wg.Wait()
			close(results)
		}()

		pending := make(map[int]segResult)
		next := frontier
		var fatal error
		for res := range results {
			if fatal != nil {
				<-window
				continue // drain so workers can exit
			}
			if res.fatal != nil {
				fatal = res.fatal
				halt()
				<-window
				continue
			}
			pending[res.seg.Index] = res
			var batch []segResult
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				batch = append(batch, r)
				next++
			}
			if len(batch) == 0 {
				continue
			}
			if err := j.commit(batch); err != nil {
				fatal = err
				halt()
			}
			for range batch {
				<-window
			}
			if fatal != nil {
				continue
			}
		}
		if fatal != nil {
			return nil, fatal
		}
	}

	// Everything committed: close the stream and finalize the journal.
	if j.outF != nil && j.cfg.EmitEpilogue != nil {
		var buf bytes.Buffer
		j.cfg.EmitEpilogue(&buf)
		if _, err := j.outF.Write(buf.Bytes()); err != nil {
			return nil, err
		}
		if err := j.outF.Sync(); err != nil {
			return nil, err
		}
	}
	done := doneLine{Records: j.records, Errored: j.errored}
	for _, p := range j.poisoned {
		done.Poisoned = append(done.Poisoned, p.Index)
	}
	if err := j.m.finalize(done); err != nil {
		return nil, err
	}
	return &Report{
		Records: j.records, Errored: j.errored, Segments: len(j.plan.Segs),
		Skipped: j.skipped, Replayed: j.replayed, Quarantined: j.quarCount,
		Poisoned: j.poisoned, Acc: j.acc, Header: j.rr.Header(),
	}, nil
}
