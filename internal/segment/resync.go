// Package segment is the out-of-core execution layer: it splits an
// arbitrarily large input into fixed-size segments resynchronized to record
// boundaries under the active padsrt.Discipline, streams each segment
// through its own parser worker in O(workers × segment) memory, and commits
// results through a durable manifest so a killed job resumes where it
// stopped (docs/ROBUSTNESS.md, "Out-of-core jobs").
//
// This file holds the boundary resynchronization, generalized from
// internal/parallel's in-memory []byte cut search to an io.ReaderAt plus
// length: parallel.Shard is now a thin wrapper over Cuts. The per-discipline
// rules are unchanged (docs/PARALLEL.md):
//
//   - newline: a cut goes just past the next terminator at or beyond each
//     target offset; the record base is the terminator count before the cut.
//   - fixed(W): cuts fall on multiples of W, no I/O needed.
//   - lenprefix: the length headers are walked from the start; cuts fall on
//     header boundaries at or beyond each target.
//   - none/custom: no cheap resynchronization exists. Shard degrades to one
//     chunk; the out-of-core planner refuses (a single unbounded segment
//     would reintroduce O(input) memory).
package segment

import (
	"bytes"
	"fmt"
	"io"

	"pads/internal/padsrt"
)

// Cut marks a record-aligned split point within a scanned region: a byte
// offset (region-relative) that starts a record, plus the number of records
// before it.
type Cut struct {
	Off int64
	Rec int
}

// scanBlock is the unit of sequential I/O during a resync scan. Scanning is
// strictly forward, so one cached block of this size is the whole memory
// cost of planning, regardless of input size.
const scanBlock = 256 * 1024

// scanner streams a region [base, base+size) of an io.ReaderAt forward,
// one cached block at a time.
type scanner struct {
	r    io.ReaderAt
	base int64 // region start within r
	size int64 // region length
	pos  int64 // region-relative cursor
	blk  []byte
	bOff int64 // region-relative offset of blk[0]
	err  error
}

func newScanner(r io.ReaderAt, base, size int64) *scanner {
	return &scanner{r: r, base: base, size: size, bOff: -1}
}

// window returns the buffered bytes at the cursor, loading a fresh block if
// needed. It returns nil at end of region or on error.
func (sc *scanner) window() []byte {
	if sc.err != nil || sc.pos >= sc.size {
		return nil
	}
	if sc.bOff >= 0 && sc.pos >= sc.bOff && sc.pos < sc.bOff+int64(len(sc.blk)) {
		return sc.blk[sc.pos-sc.bOff:]
	}
	n := sc.size - sc.pos
	if n > scanBlock {
		n = scanBlock
	}
	if cap(sc.blk) < int(n) {
		sc.blk = make([]byte, n)
	}
	sc.blk = sc.blk[:n]
	m, err := io.ReadFull(io.NewSectionReader(sc.r, sc.base+sc.pos, n), sc.blk)
	if err != nil {
		// The region length came from a stat (or a manifest); a short read
		// means the input changed underneath the scan.
		sc.err = fmt.Errorf("segment: read %d bytes at %d: %w", n, sc.base+sc.pos, err)
		return nil
	}
	sc.blk = sc.blk[:m]
	sc.bOff = sc.pos
	return sc.blk
}

// advance moves the cursor forward n bytes.
func (sc *scanner) advance(n int64) { sc.pos += n }

// newlineCuts resynchronizes each ascending target offset to the next
// terminator boundary, in one forward pass that also counts terminators so
// every cut carries its record base. Semantics match the historical
// in-memory search exactly: a target at or before the previous cut is
// skipped, a cut that would land at or past the region end stops the scan.
func newlineCuts(sc *scanner, term byte, targets []int64) ([]Cut, error) {
	var cuts []Cut
	var prevOff int64
	rec := 0
	for _, want := range targets {
		if want <= prevOff {
			continue
		}
		found := int64(-1)
		for sc.pos < sc.size {
			w := sc.window()
			if w == nil {
				break
			}
			if sc.pos+int64(len(w)) <= want {
				// Entirely before the target: count and move on.
				rec += bytes.Count(w, []byte{term})
				sc.advance(int64(len(w)))
				continue
			}
			split := want - sc.pos
			if split > 0 {
				rec += bytes.Count(w[:split], []byte{term})
			} else {
				split = 0
			}
			j := bytes.IndexByte(w[split:], term)
			if j < 0 {
				sc.advance(int64(len(w)))
				want = sc.pos // keep searching from the next block
				continue
			}
			rec++ // the found terminator itself
			found = sc.pos + split + int64(j)
			sc.advance(split + int64(j) + 1)
			break
		}
		if sc.err != nil {
			return nil, sc.err
		}
		if found < 0 {
			break // no terminator at or beyond the target
		}
		pos := found + 1
		if pos >= sc.size {
			break
		}
		cuts = append(cuts, Cut{Off: pos, Rec: rec})
		prevOff = pos
	}
	return cuts, nil
}

// fixedShardCuts places n-way cuts on record-count boundaries of a
// fixed-width region: pure arithmetic, matching the historical Shard math
// (cut c falls at record c*records/n).
func fixedShardCuts(size int64, width int64, n int) []Cut {
	if width <= 0 {
		return nil
	}
	records := (size + width - 1) / width
	var cuts []Cut
	var prevRec int64
	for c := 1; c < n; c++ {
		rec := int64(c) * records / int64(n)
		if rec <= prevRec || rec >= records {
			continue
		}
		cuts = append(cuts, Cut{Off: rec * width, Rec: int(rec)})
		prevRec = rec
	}
	return cuts
}

// fixedPlanCuts divides a fixed-width region into segments of at least one
// record and roughly segSize bytes.
func fixedPlanCuts(size, width, segSize int64) []Cut {
	if width <= 0 {
		return nil
	}
	per := segSize / width // records per segment
	if per < 1 {
		per = 1
	}
	records := (size + width - 1) / width
	var cuts []Cut
	for rec := per; rec < records; rec += per {
		cuts = append(cuts, Cut{Off: rec * width, Rec: int(rec)})
	}
	return cuts
}

// lenPrefixCuts walks the length headers from the start of the region — an
// O(records) scan that reads only the headers plus block-cache slack — and
// places cuts on header boundaries: after each record ending at or beyond
// target bytes since the previous cut. maxCuts < 0 means unlimited (the
// planner); otherwise at most maxCuts cuts are produced (Shard's n-1).
func lenPrefixCuts(sc *scanner, d *padsrt.LenPrefixDisc, target int64, maxCuts int) ([]Cut, error) {
	if d.HeaderBytes <= 0 {
		return nil, nil
	}
	if target <= 0 {
		target = 1
	}
	hb := int64(d.HeaderBytes)
	var cuts []Cut
	rec := 0
	nextCut := target
	hdr := make([]byte, d.HeaderBytes)
	for sc.pos < sc.size && (maxCuts < 0 || len(cuts) < maxCuts) {
		if sc.size-sc.pos < hb {
			break // truncated final header parses as one short record
		}
		// Headers nearly always sit inside the cached block; the copy path
		// covers headers spanning a block boundary.
		w := sc.window()
		if w == nil {
			break
		}
		if int64(len(w)) < hb {
			if _, err := io.ReadFull(io.NewSectionReader(sc.r, sc.base+sc.pos, hb), hdr); err != nil {
				return nil, fmt.Errorf("segment: read header at %d: %w", sc.base+sc.pos, err)
			}
			w = hdr
		}
		body := int64(0)
		if d.Order == padsrt.BigEndian {
			for i := 0; i < d.HeaderBytes; i++ {
				body = body<<8 | int64(w[i])
			}
		} else {
			for i := d.HeaderBytes - 1; i >= 0; i-- {
				body = body<<8 | int64(w[i])
			}
		}
		if d.IncludesHeader {
			body -= hb
		}
		if body < 0 {
			body = 0
		}
		next := sc.pos + hb + body
		if next > sc.size {
			next = sc.size
		}
		rec++
		sc.advance(next - sc.pos)
		if sc.pos >= nextCut && sc.pos < sc.size {
			cuts = append(cuts, Cut{Off: sc.pos, Rec: rec})
			nextCut = sc.pos + target
		}
	}
	return cuts, sc.err
}

// Cuts finds record-aligned cut points for an n-way split of the region
// [off, off+size) of r: the io.ReaderAt generalization of the search behind
// parallel.Shard, which now wraps it (offsets in the result are relative to
// off). Disciplines without cheap resynchronization yield no cuts. A nil
// disc means newline.
func Cuts(r io.ReaderAt, off, size int64, disc padsrt.Discipline, n int) ([]Cut, error) {
	if disc == nil {
		disc = padsrt.Newline()
	}
	if n <= 1 || size == 0 {
		return nil, nil
	}
	switch d := disc.(type) {
	case *padsrt.NewlineDisc:
		targets := make([]int64, 0, n-1)
		for c := 1; c < n; c++ {
			targets = append(targets, int64(c)*size/int64(n))
		}
		return newlineCuts(newScanner(r, off, size), d.Term, targets)
	case *padsrt.FixedDisc:
		return fixedShardCuts(size, int64(d.Width), n), nil
	case *padsrt.LenPrefixDisc:
		return lenPrefixCuts(newScanner(r, off, size), d, size/int64(n), n-1)
	default:
		return nil, nil
	}
}

// planCuts divides the region into record-aligned segments of roughly
// segSize bytes (at least one record each; a record longer than segSize
// makes its segment longer, never splits). Disciplines without cheap
// resynchronization return an error: a single unbounded segment would
// reintroduce the O(input) memory this package exists to avoid.
func planCuts(r io.ReaderAt, off, size int64, disc padsrt.Discipline, segSize int64) ([]Cut, error) {
	if disc == nil {
		disc = padsrt.Newline()
	}
	if size == 0 {
		return nil, nil
	}
	switch d := disc.(type) {
	case *padsrt.NewlineDisc:
		var targets []int64
		for t := segSize; t < size; t += segSize {
			targets = append(targets, t)
		}
		return newlineCuts(newScanner(r, off, size), d.Term, targets)
	case *padsrt.FixedDisc:
		return fixedPlanCuts(size, int64(d.Width), segSize), nil
	case *padsrt.LenPrefixDisc:
		return lenPrefixCuts(newScanner(r, off, size), d, segSize, -1)
	default:
		return nil, fmt.Errorf("segment: discipline %s admits no record resynchronization; out-of-core parsing needs newline, fixed, or lenprefix framing", disc.Name())
	}
}
