package padsd

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sort"
	"sync"
	"time"

	"pads/internal/core"
)

// ErrRegistryFull is returned when an upload would exceed the registry's
// entry cap: the daemon's memory for compiled descriptions is bounded, and
// over the bound it refuses (503) rather than grows.
var ErrRegistryFull = errors.New("padsd: description registry full")

// DescInfo is the public metadata of one registered description.
type DescInfo struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	SourceType string    `json:"source_type"`
	Bytes      int       `json:"bytes"`
	Uses       uint64    `json:"uses"`
	Uploaded   time.Time `json:"uploaded"`
}

// descEntry is one compiled description. The *core.Description is compiled
// (parse, sema-check, lower to IR) exactly once per distinct source text and
// shared read-only by every request; each parse clones the interpreter
// (interp.Clone) so concurrent streams never share mutable state.
type descEntry struct {
	info DescInfo
	desc *core.Description

	mu   sync.Mutex // guards info.Uses
	uses uint64
}

func (e *descEntry) used() {
	e.mu.Lock()
	e.uses++
	e.mu.Unlock()
}

func (e *descEntry) snapshot() DescInfo {
	e.mu.Lock()
	in := e.info
	in.Uses = e.uses
	e.mu.Unlock()
	return in
}

// registry is the content-addressed description store: the ID is a digest
// of the source text, so re-uploading an identical description — the common
// case for fleets of clients shipping the same schema — hits the compile
// cache instead of compiling again.
type registry struct {
	max int

	mu      sync.Mutex
	entries map[string]*descEntry
}

func newRegistry(max int) *registry {
	return &registry{max: max, entries: make(map[string]*descEntry)}
}

// descID is the content address: the first 16 hex digits of the SHA-256 of
// the source text.
func descID(src []byte) string {
	sum := sha256.Sum256(src)
	return hex.EncodeToString(sum[:8])
}

// add registers (or finds) the description with this source text. cached
// reports whether an identical description was already compiled. Compile
// errors pass through as-is (*core.CompileError) for the 422 path.
func (r *registry) add(src []byte, name string, now time.Time) (e *descEntry, cached bool, err error) {
	id := descID(src)
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		r.mu.Unlock()
		return e, true, nil
	}
	full := len(r.entries) >= r.max
	r.mu.Unlock()
	if full {
		return nil, false, ErrRegistryFull
	}

	// Compile outside the lock: sema-checking a large description must not
	// stall every other tenant's lookup. A concurrent identical upload may
	// compile twice; the second insert loses and is discarded.
	d, cerr := core.Compile(string(src), name)
	if cerr != nil {
		return nil, false, cerr
	}
	e = &descEntry{
		info: DescInfo{ID: id, Name: name, SourceType: d.SourceType(), Bytes: len(src), Uploaded: now},
		desc: d,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[id]; ok {
		return prev, true, nil
	}
	if len(r.entries) >= r.max {
		return nil, false, ErrRegistryFull
	}
	r.entries[id] = e
	return e, false, nil
}

func (r *registry) get(id string) (*descEntry, bool) {
	r.mu.Lock()
	e, ok := r.entries[id]
	r.mu.Unlock()
	return e, ok
}

func (r *registry) list() []DescInfo {
	r.mu.Lock()
	es := make([]*descEntry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.Unlock()
	out := make([]DescInfo, len(es))
	for i, e := range es {
		out[i] = e.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
