package padsd

// The chaos suite: replay internal/fault's deterministic fault injector
// through the daemon's ingest path (Config.Chaos + X-Pads-Fault) and assert
// the degradation matrix of docs/ROBUSTNESS.md — every fault class maps to
// a bounded, documented outcome; the daemon never leaks a goroutine, never
// 5xxes except by admission policy, and produces byte-identical quarantine
// tails for identical seeds.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// checkGoroutines fails the test if the goroutine count does not return to
// its baseline (small tolerance for runtime helpers) within a grace period.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosMatrix replays every fault class, concurrently across tenants,
// with fixed seeds. The matrix is the contract: each row's outcome set is
// what docs/ROBUSTNESS.md documents for that fault.
func TestChaosMatrix(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{
		Chaos:         true,
		MaxConcurrent: 16,
		Retry:         5, // outlast MaxTransientRun so transient rows recover
		RetryBackoff:  time.Millisecond,
	})
	id := upload(t, ts, clfSource(t))
	data := strings.Repeat(goodCLF, 100)

	matrix := []struct {
		name   string
		fault  string
		allow  map[int]bool // acceptable statuses
		errsOK bool         // errored records acceptable
	}{
		{"clean", "", map[int]bool{200: true}, false},
		{"short-reads", "seed=11,short=0.9", map[int]bool{200: true}, false},
		{"transient-retried", "seed=12,transient=0.3", map[int]bool{200: true}, false},
		{"corruption", "seed=13,corrupt=0.01", map[int]bool{200: true}, true},
		{"truncation", "seed=14,truncate=1000", map[int]bool{200: true}, true},
		{"hard-failure", "seed=15,fail=2000", map[int]bool{400: true}, true},
	}

	var wg sync.WaitGroup
	for rep := 0; rep < 3; rep++ {
		for i, row := range matrix {
			wg.Add(1)
			go func(rep, i int, name, fault string, allow map[int]bool) {
				defer wg.Done()
				hdr := map[string]string{"X-Pads-Tenant": fmt.Sprintf("chaos-%d", i)}
				if fault != "" {
					hdr["X-Pads-Fault"] = fault
				}
				resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(data), hdr)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if !allow[resp.StatusCode] {
					t.Errorf("%s (rep %d): status %d not in %v", name, rep, resp.StatusCode, allow)
				}
			}(rep, i, row.name, row.fault, row.allow)
		}
	}
	wg.Wait()

	// Fault classes that must not damage records did not.
	for i, row := range matrix {
		if row.errsOK {
			continue
		}
		req, _ := http.NewRequest("GET", ts.URL+"/v1/quarantine", nil)
		req.Header.Set("X-Pads-Tenant", fmt.Sprintf("chaos-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(strings.TrimSpace(string(body))) != 0 {
			t.Errorf("%s: unexpected quarantine entries:\n%.300s", row.name, body)
		}
	}

	// The daemon survived the whole storm: live, ready, nothing in flight,
	// no panics, no 5xx beyond admission policy.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %d", resp.StatusCode)
	}
	if n := s.met.active.Load(); n != 0 {
		t.Fatalf("%d parses still active after chaos", n)
	}
	if n := s.met.panics.Load(); n != 0 {
		t.Fatalf("%d panics during chaos", n)
	}
	if n := s.met.req5xx.Load(); n != 0 {
		t.Fatalf("%d unexpected 5xx during chaos", n)
	}
	if n := s.met.quarantined.Load(); n == 0 {
		t.Fatal("chaos storm quarantined nothing; corruption row did not bite")
	}

	ts.Close()
	checkGoroutines(t, base)
}

// TestChaosQuarantineDeterministic runs the same seeded corruption replay
// against two fresh daemons and requires byte-identical quarantine tails:
// fault injection, parsing, and dead-lettering are all pure functions of
// (seed, data, config).
func TestChaosQuarantineDeterministic(t *testing.T) {
	data := strings.Repeat(goodCLF, 200)
	run := func() string {
		_, ts := newTestServer(t, Config{Chaos: true})
		id := upload(t, ts, clfSource(t))
		resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(data),
			map[string]string{
				"X-Pads-Tenant": "acme",
				"X-Pads-Fault":  "seed=42,corrupt=0.005",
			})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeded parse: status %d", resp.StatusCode)
		}
		req, _ := http.NewRequest("GET", ts.URL+"/v1/quarantine", nil)
		req.Header.Set("X-Pads-Tenant", "acme")
		qresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(qresp.Body)
		qresp.Body.Close()
		return string(body)
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("seeded corruption quarantined nothing")
	}
	if a != b {
		t.Fatalf("quarantine tails differ between identical seeded runs:\n--- a\n%.400s\n--- b\n%.400s", a, b)
	}
}

// TestDrainGraceful: with no parse in flight, Drain returns nil at once and
// the daemon refuses new work.
func TestDrainGraceful(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	upload(t, ts, clfSource(t))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("daemon not marked draining")
	}
}

// TestDrainWaitsForInflight: a parse that finishes within the budget is
// allowed to complete; Drain returns nil.
func TestDrainWaitsForInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))

	g := &gatedReader{data: strings.NewReader(strings.Repeat(goodCLF, 5)), release: make(chan struct{})}
	status := make(chan int, 1)
	go func() {
		resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, g, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	waitActive(t, s, 1)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // drain is now waiting on the parse
	g.done()                          // let the parse finish normally
	if err := <-done; err != nil {
		t.Fatalf("drain with finishing parse: %v", err)
	}
	if code := <-status; code != http.StatusOK {
		t.Fatalf("in-flight parse during graceful drain: status %d, want 200", code)
	}
}

// TestDrainHardStop: a parse that outlives the drain budget is cancelled
// through the runtime's deadline hook — Drain returns the budget error and
// the request aborts instead of running to completion.
func TestDrainHardStop(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))

	status := make(chan int, 1)
	go func() {
		// ~10s of slow stream: far beyond the 100ms drain budget even on a
		// loaded machine, finite so the server's post-handler body drain
		// (capped at 256 KiB) terminates.
		resp := parseReq(t, ts, "/v1/parse/accum?desc="+id,
			&drip{line: []byte(goodCLF), delay: time.Millisecond, n: 10000}, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	waitActive(t, s, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("drain over budget returned %v, want context.DeadlineExceeded", err)
	}
	// Generous bound (loaded CI machines): a dead cancel hook would make
	// Drain wait out the whole ~1s stream plus the server's body drain, so
	// the status assertion below is the sharper check.
	if el := time.Since(start); el > 15*time.Second {
		t.Fatalf("hard-stopped drain took %v; cancel did not reach the parse loop", el)
	}
	code := <-status
	if code != 499 && code != http.StatusGatewayTimeout {
		t.Fatalf("hard-stopped parse: status %d, want 499 or 504", code)
	}
	if s.met.cancelled.Load()+s.met.deadline.Load() == 0 {
		t.Fatal("no abort counted for the hard-stopped parse")
	}

	ts.Close()
	checkGoroutines(t, base)
}
