package padsd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

const (
	goodCLF = `207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] "GET /tk/p.txt HTTP/1.0" 200 30` + "\n"
	badCLF  = "!!! this is not a log line at all\n"
)

func clfSource(t *testing.T) []byte {
	t.Helper()
	src, err := os.ReadFile("../../testdata/clf.pads")
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func upload(t *testing.T, ts *httptest.Server, src []byte) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/descriptions?name=clf", "text/plain", bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, b)
	}
	var info DescInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info.ID
}

func parseReq(t *testing.T, ts *httptest.Server, path string, body io.Reader, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRegistryContentAddressed(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := clfSource(t)

	resp, err := http.Post(ts.URL+"/v1/descriptions", "text/plain", bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first upload: status %d, want 201", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/descriptions", "text/plain", bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var info DescInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload: status %d, want 200 (cache hit)", resp.StatusCode)
	}
	if s.reg.size() != 1 {
		t.Fatalf("registry size %d after duplicate upload, want 1", s.reg.size())
	}
	if info.ID != descID(src) {
		t.Fatalf("ID %q not content-addressed (want %q)", info.ID, descID(src))
	}
}

func TestUploadRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDescBytes: 256, MaxDescriptions: 1})

	// Compile error → 422.
	resp, _ := http.Post(ts.URL+"/v1/descriptions", "text/plain", strings.NewReader("Pstruct nope {"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad description: status %d, want 422", resp.StatusCode)
	}
	// Oversized → 413, before compiling.
	resp, _ = http.Post(ts.URL+"/v1/descriptions", "text/plain", strings.NewReader(strings.Repeat("x", 300)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge description: status %d, want 413", resp.StatusCode)
	}
	// Fill the one slot, then a distinct description → 503.
	resp, _ = http.Post(ts.URL+"/v1/descriptions", "text/plain", strings.NewReader("Psource Precord Pstruct a { Puint32 x; };"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first description: status %d, want 201", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/descriptions", "text/plain", strings.NewReader("Psource Precord Pstruct b { Puint32 y; };"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap description: status %d, want 503", resp.StatusCode)
	}
}

func TestAccumEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))

	data := strings.Repeat(goodCLF, 40) + badCLF + strings.Repeat(goodCLF, 9)
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(data), nil)
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("accum: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Pads-Records"); got != "50" {
		t.Fatalf("X-Pads-Records = %q, want 50", got)
	}
	if got := resp.Header.Get("X-Pads-Errored"); got != "1" {
		t.Fatalf("X-Pads-Errored = %q, want 1", got)
	}
	if !strings.Contains(string(body), "50 records") {
		t.Fatalf("report missing record count:\n%s", body)
	}
}

func TestXMLAndCSVTrailers(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))
	data := strings.Repeat(goodCLF, 3) + badCLF

	resp := parseReq(t, ts, "/v1/parse/xml?desc="+id+"&root=log", strings.NewReader(data), nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("xml: status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "<log>") || !strings.Contains(string(body), "</log>") {
		t.Fatalf("xml not wrapped in root element:\n%.200s", body)
	}
	if got := resp.Trailer.Get("X-Pads-Records"); got != "4" {
		t.Fatalf("xml trailer records = %q, want 4", got)
	}
	if got := resp.Trailer.Get("X-Pads-Errored"); got != "1" {
		t.Fatalf("xml trailer errored = %q, want 1", got)
	}

	resp = parseReq(t, ts, "/v1/parse/csv?desc="+id+"&skip_errors=1", strings.NewReader(data), nil)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := strings.Count(string(body), "\n"); n != 3 {
		t.Fatalf("csv with skip_errors emitted %d lines, want 3:\n%s", n, body)
	}
	if got := resp.Trailer.Get("X-Pads-Errored"); got != "1" {
		t.Fatalf("csv trailer errored = %q, want 1", got)
	}
}

func TestUnknownDescription(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := parseReq(t, ts, "/v1/parse/accum?desc=deadbeef", strings.NewReader(goodCLF), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown desc: status %d, want 404", resp.StatusCode)
	}
}

func TestTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenant: TenantConfig{RatePerSec: 0.001, Burst: 1}})
	id := upload(t, ts, clfSource(t))
	hdr := map[string]string{"X-Pads-Tenant": "acme"}

	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF), hdr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp = parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF), hdr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bucket-empty request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// A different tenant has its own bucket.
	resp = parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF),
		map[string]string{"X-Pads-Tenant": "globex"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d, want 200", resp.StatusCode)
	}
}

// gatedReader delivers data, then blocks until released — a parse that is
// deliberately in flight.
type gatedReader struct {
	data    io.Reader
	release chan struct{}
	once    sync.Once
}

func (g *gatedReader) Read(p []byte) (int, error) {
	n, err := g.data.Read(p)
	if err == io.EOF {
		<-g.release
	}
	return n, err
}

func (g *gatedReader) done() { g.once.Do(func() { close(g.release) }) }

func waitActive(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for s.met.active.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d active parses (have %d)", n, s.met.active.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGlobalAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	id := upload(t, ts, clfSource(t))

	g := &gatedReader{data: strings.NewReader(goodCLF), release: make(chan struct{})}
	defer g.done()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, g, nil)
		resp.Body.Close()
	}()
	waitActive(t, s, 1)

	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity parse: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	g.done()
	wg.Wait()
	if s.met.overload.Load() == 0 {
		t.Fatal("overload metric not incremented")
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s before drain: status %d", probe, resp.StatusCode)
		}
	}

	s.StartDrain()
	resp, _ := http.Get(ts.URL + "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", resp.StatusCode)
	}
	// Liveness stays green; only readiness flips.
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: status %d, want 200", resp.StatusCode)
	}
	resp = parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("parse while draining: status %d, want 503", resp.StatusCode)
	}
}

// drip delivers one line at a time with a delay, n lines in total — a slow
// stream that outlives a short parse deadline. It is finite because the
// server drains an unconsumed request body (up to 256 KiB) before flushing
// the response; an endless drip would stall the 504 behind that drain.
type drip struct {
	line  []byte
	delay time.Duration
	n     int
}

func (d *drip) Read(p []byte) (int, error) {
	if d.n <= 0 {
		return 0, io.EOF
	}
	d.n--
	time.Sleep(d.delay)
	return copy(p, d.line), nil
}

func TestDeadlineAbortsParse(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))

	start := time.Now()
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id,
		&drip{line: []byte(goodCLF), delay: 2 * time.Millisecond, n: 300},
		map[string]string{"X-Pads-Timeout-Ms": "80"})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline parse: status %d, want 504: %s", resp.StatusCode, body)
	}
	// Generous bound: the real check is the 504 (a dead hook would let the
	// parse finish with 200); the bound only catches a wedge, and CI machines
	// under full -race load are slow.
	if el := time.Since(start); el > 15*time.Second {
		t.Fatalf("deadline abort took %v; hook did not reach the parse loop", el)
	}
	if s.met.deadline.Load() != 1 {
		t.Fatalf("deadline metric = %d, want 1", s.met.deadline.Load())
	}
}

func TestErrorBudgetAborts(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenant: TenantConfig{MaxErrors: 3}})
	id := upload(t, ts, clfSource(t))

	data := strings.Repeat(goodCLF+badCLF, 10)
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(data), nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget parse: status %d, want 422: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "error budget exceeded") {
		t.Fatalf("422 body does not name the budget:\n%s", body)
	}
}

func TestQuarantineTailPerTenant(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))
	hdr := map[string]string{"X-Pads-Tenant": "acme"}

	data := goodCLF + badCLF + goodCLF + badCLF
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(data), hdr)
	resp.Body.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/quarantine", nil)
	req.Header.Set("X-Pads-Tenant", "acme")
	qresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(qbody)), "\n")
	if len(lines) != 2 {
		t.Fatalf("quarantine has %d entries, want 2:\n%s", len(lines), qbody)
	}
	var e struct {
		Record int    `json:"record"`
		Raw    string `json:"raw"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("quarantine line is not JSON: %v", err)
	}
	if !strings.Contains(e.Raw, "not a log line") {
		t.Fatalf("quarantine entry lacks raw bytes: %+v", e)
	}

	// Another tenant's tail is empty.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/quarantine", nil)
	req.Header.Set("X-Pads-Tenant", "globex")
	qresp, _ = http.DefaultClient.Do(req)
	qbody, _ = io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if strings.TrimSpace(string(qbody)) != "" {
		t.Fatalf("other tenant's quarantine not empty:\n%s", qbody)
	}
}

func TestPanicContainment(t *testing.T) {
	s := New(Config{})
	h := s.wrap(func(http.ResponseWriter, *http.Request) { panic("poisoned request") })
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if s.met.panics.Load() != 1 {
		t.Fatalf("panic metric = %d, want 1", s.met.panics.Load())
	}
	// The daemon is still alive for the next request.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", rec.Code)
	}
}

func TestBodyCap413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	id := upload(t, ts, clfSource(t))
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id,
		strings.NewReader(strings.Repeat(goodCLF, 100)), nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %s", resp.StatusCode, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF+badCLF), nil)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"padsd_requests_total", "padsd_records_parsed_total 2",
		"padsd_records_errored_total 1", "padsd_quarantined_total 1",
		"padsd_parses_active 0", "pads_source_bytes_read_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestFaultHeaderParsing(t *testing.T) {
	cfg, err := parseFaultHeader("seed=7,short=0.5,transient=0.25,corrupt=0.01,truncate=4096,fail=8192")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.ShortReadProb != 0.5 || cfg.TransientProb != 0.25 ||
		cfg.CorruptProb != 0.01 || cfg.TruncateAt != 4096 || cfg.FailAt != 8192 {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := parseFaultHeader("bogus"); err == nil {
		t.Fatal("want error for spec without '='")
	}
	if _, err := parseFaultHeader("warp=9"); err == nil {
		t.Fatal("want error for unknown key")
	}
	// Chaos header is ignored (not an error) when chaos mode is off.
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF),
		map[string]string{"X-Pads-Fault": "fail=1"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos header with chaos off: status %d, want 200 (ignored)", resp.StatusCode)
	}
}

func TestTenantsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, clfSource(t))
	resp := parseReq(t, ts, "/v1/parse/accum?desc="+id, strings.NewReader(goodCLF+badCLF),
		map[string]string{"X-Pads-Tenant": "acme"})
	resp.Body.Close()

	tresp, _ := http.Get(ts.URL + "/v1/tenants")
	var infos []TenantInfo
	json.NewDecoder(tresp.Body).Decode(&infos)
	tresp.Body.Close()
	if len(infos) != 1 {
		t.Fatalf("tenants = %+v, want 1 entry", infos)
	}
	in := infos[0]
	if in.Name != "acme" || in.Records != 2 || in.Errored != 1 || in.Quarantined != 1 {
		t.Fatalf("tenant snapshot %+v", in)
	}
	_ = fmt.Sprint() // keep fmt linked for debug edits
}
