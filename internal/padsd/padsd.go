// Package padsd is the fault-tolerant, multi-tenant parse daemon of ROADMAP
// item 2: a long-running stdlib-HTTP service that holds a registry of
// compiled descriptions (upload → sema-check → lower to IR once,
// content-addressed) and parses concurrent data streams against them —
// accumulator reports, XML and delimited conversion — with the robustness
// discipline of docs/ROBUSTNESS.md enforced end to end:
//
//   - Admission control before buffering: a global concurrency cap,
//     per-tenant token buckets and stream caps, and a body size cap reject
//     with 429/503/413 instead of queueing bytes. Memory stays O(record) per
//     admitted stream (padsrt.Limits), so overload degrades, never OOMs.
//   - Deadline propagation through the runtime: every parse runs under a
//     context whose expiry reaches the parse loop via the padsrt
//     SetCancel/SetDeadline hook — the source goes sticky-errored and
//     hard-stops reads, so the VM, generated parsers, and worker shards all
//     abort mid-record through their ordinary error paths.
//   - Per-tenant error budgets and dead-letter tails: interp.Policy applies
//     the same budgets as the CLI flags, and every errored record lands in a
//     bounded per-tenant quarantine ring, downloadable as JSONL.
//   - Panic containment per request, /healthz and /readyz probes, and
//     Prometheus metrics via telemetry.MetricsHandler.
//   - Graceful drain: StartDrain stops admissions (readyz goes 503), Drain
//     waits for in-flight parses within a budget and then cancels the rest
//     through the same deadline hook.
//
// The chaos suite (chaos_test.go) replays internal/fault's deterministic
// fault reader through the ingest path — enabled per request by the
// X-Pads-Fault header when Config.Chaos is set — so the whole degradation
// matrix is tested seed-reproducibly.
package padsd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pads/internal/accum"
	"pads/internal/cliutil"
	"pads/internal/core"
	"pads/internal/fault"
	"pads/internal/fmtconv"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/segment"
	"pads/internal/telemetry"
	"pads/internal/value"
	"pads/internal/xmlgen"
)

// Config tunes the daemon. The zero value gets production-shaped defaults
// (see New); every cap exists so that no client behavior — slow, huge,
// poisonous, or merely numerous — can grow the daemon's memory or wedge it.
type Config struct {
	// MaxConcurrent caps parse streams across all tenants (default
	// 2*GOMAXPROCS). At the cap new parses get 503 + Retry-After.
	MaxConcurrent int
	// MaxBodyBytes caps one request body (default 1 GiB; <0 unlimited).
	MaxBodyBytes int64
	// MaxDescBytes caps one description upload (default 1 MiB).
	MaxDescBytes int
	// MaxDescriptions caps the compiled-description registry (default 256).
	MaxDescriptions int
	// MaxTenants caps the tenant table (default 1024).
	MaxTenants int

	// Limits are the per-parse resource guards. Zero fields get defaults
	// (1 MiB records, 4 MiB speculation window, depth 256, 1M backtracks) —
	// a daemon must always bound these, so unlike the CLI the zero value is
	// guarded, not unlimited.
	Limits padsrt.Limits
	// Retry / RetryBackoff forward to padsrt.WithRetry for transient ingest
	// errors (default 2 retries, 5ms).
	Retry        int
	RetryBackoff time.Duration

	// ParseTimeout is the default per-request parse deadline (default 60s);
	// clients may lower (never raise past MaxTimeout, default 10m) via the
	// X-Pads-Timeout-Ms header or timeout_ms query parameter.
	ParseTimeout time.Duration
	MaxTimeout   time.Duration

	// Tenant is the per-tenant admission and budget policy.
	Tenant TenantConfig
	// QuarantineTail is the per-tenant dead-letter ring size (default 1024).
	QuarantineTail int
	// Quarantine, when non-nil, additionally receives every dead-lettered
	// record write-through as JSONL (all tenants interleaved). The caller
	// owns the writer and closes it after Drain.
	Quarantine io.Writer

	// Chaos honors the X-Pads-Fault request header, wrapping the ingest
	// path in internal/fault's deterministic fault reader. For tests and
	// staging only; off by default.
	Chaos bool

	// JobDir enables the async out-of-core job API (POST /v1/jobs): data
	// files are resolved under it and every job's manifest, quarantine,
	// and output live in it, so jobs survive a daemon restart as resumable
	// manifests. Empty disables the API (the endpoints answer 404).
	JobDir string
	// MaxJobs caps concurrently running jobs (default 2) — each holds
	// O(workers × segment) memory on top of the parse traffic.
	MaxJobs int
	// JobWorkers is the default per-job worker count (default GOMAXPROCS);
	// a job request may lower it.
	JobWorkers int
	// JobSegmentSize is the default per-job segment buffer (default
	// segment.DefaultSegSize).
	JobSegmentSize int64
	// RetryAfterSeed seeds the deterministic Retry-After jitter added to
	// 429/503 responses (docs/OBSERVABILITY.md). Any fixed value gives a
	// replayable jitter sequence; zero is a fine seed.
	RetryAfterSeed uint64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.MaxDescBytes <= 0 {
		c.MaxDescBytes = 1 << 20
	}
	if c.MaxDescriptions <= 0 {
		c.MaxDescriptions = 256
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.Limits.MaxRecordLen <= 0 {
		c.Limits.MaxRecordLen = 1 << 20
	}
	if c.Limits.MaxSpecBytes <= 0 {
		c.Limits.MaxSpecBytes = 4 << 20
	}
	if c.Limits.MaxSpecDepth <= 0 {
		c.Limits.MaxSpecDepth = 256
	}
	if c.Limits.MaxBacktracks <= 0 {
		c.Limits.MaxBacktracks = 1 << 20
	}
	if c.Retry == 0 {
		c.Retry = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.ParseTimeout <= 0 {
		c.ParseTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.QuarantineTail <= 0 {
		c.QuarantineTail = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.JobSegmentSize <= 0 {
		c.JobSegmentSize = segment.DefaultSegSize
	}
	return c
}

// Server is one daemon instance. Create with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg Config
	reg *registry
	met *metrics
	agg *lockedStats
	mux *http.ServeMux

	sem chan struct{} // global parse-slot semaphore (non-blocking acquire)

	mu       sync.Mutex // guards tenants, draining, inflight registration
	tenants  map[string]*tenant
	draining bool
	inflight sync.WaitGroup

	hardCtx  context.Context // cancelled when the drain budget expires
	hardStop context.CancelFunc

	quarW *interp.Quarantine // write-through sink over cfg.Quarantine, or nil

	jobMu     sync.Mutex // guards jobs and jobOwned
	jobs      map[string]*jobState
	jobOwned  map[string]string // manifest path -> running job id (exclusivity)
	jobSem    chan struct{}     // job-slot semaphore (non-blocking acquire)
	jobSeq    atomic.Uint64     // job id counter
	jitterSeq atomic.Uint64     // Retry-After jitter ordinal
}

// New builds a daemon over the config (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      newRegistry(cfg.MaxDescriptions),
		met:      &metrics{},
		agg:      newLockedStats(),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		tenants:  make(map[string]*tenant),
		mux:      http.NewServeMux(),
		jobs:     make(map[string]*jobState),
		jobOwned: make(map[string]string),
		jobSem:   make(chan struct{}, cfg.MaxJobs),
	}
	// Start the job id sequence past any manifests already in the job
	// directory: a restarted daemon must not hand a new job the id (and thus
	// the manifest/quarantine/output paths) of a job from a previous life.
	s.jobSeq.Store(maxJobSeq(cfg.JobDir))
	s.hardCtx, s.hardStop = context.WithCancel(context.Background())
	if cfg.Quarantine != nil {
		s.quarW = interp.NewQuarantine(cfg.Quarantine)
	}

	mh := telemetry.NewMetricsHandler(s.met, s.agg)
	s.mux.HandleFunc("POST /v1/descriptions", s.wrap(s.handleUpload))
	s.mux.HandleFunc("GET /v1/descriptions", s.wrap(s.handleList))
	s.mux.HandleFunc("GET /v1/descriptions/{id}", s.wrap(s.handleDescribe))
	s.mux.HandleFunc("POST /v1/parse/accum", s.wrap(s.parseEndpoint(modeAccum)))
	s.mux.HandleFunc("POST /v1/parse/xml", s.wrap(s.parseEndpoint(modeXML)))
	s.mux.HandleFunc("POST /v1/parse/csv", s.wrap(s.parseEndpoint(modeCSV)))
	s.mux.HandleFunc("POST /v1/jobs", s.wrap(s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.wrap(s.handleJobList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.wrap(s.handleJobStatus))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.wrap(s.handleJobResult))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.wrap(s.handleJobCancel))
	s.mux.HandleFunc("GET /v1/quarantine", s.wrap(s.handleQuarantine))
	s.mux.HandleFunc("GET /v1/tenants", s.wrap(s.handleTenants))
	s.mux.Handle("GET /metrics", mh)
	s.mux.HandleFunc("GET /healthz", s.wrap(s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.wrap(s.handleReadyz))
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// respWriter tracks the status and first-write state so middleware can
// classify outcomes and the panic handler knows whether a 500 can still be
// sent.
type respWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *respWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

// wrap is the containment middleware: request metrics plus per-request
// panic recovery, so one poisoned request can never take the daemon down
// (the per-chunk analogue is parallel.Run's contain).
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rw := &respWriter{ResponseWriter: w}
		s.met.reqTotal.Add(1)
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				if !rw.wrote {
					http.Error(rw, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
				}
			}
			if rw.status == 0 {
				rw.status = http.StatusOK
			}
			s.met.status(rw.status)
		}()
		h(rw, r)
	}
}

// tenantFor resolves the request's tenant (X-Pads-Tenant, default
// "default"), creating it on first sight. A full tenant table refuses new
// names rather than growing without bound.
func (s *Server) tenantFor(r *http.Request) (*tenant, error) {
	name := r.Header.Get("X-Pads-Tenant")
	if name == "" {
		name = "default"
	}
	if len(name) > 64 {
		name = name[:64]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		if len(s.tenants) >= s.cfg.MaxTenants {
			return nil, fmt.Errorf("tenant table full (%d tenants)", len(s.tenants))
		}
		t = newTenant(name, s.cfg.Tenant, s.cfg.QuarantineTail, time.Now())
		s.tenants[name] = t
	}
	return t, nil
}

// beginParse registers an in-flight parse unless the daemon is draining.
// Registration and the draining flag share a lock so Drain's Wait cannot
// race a late Add.
func (s *Server) beginParse() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// --- description registry endpoints ---

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(io.LimitReader(r.Body, int64(s.cfg.MaxDescBytes)+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading description: %v", err), http.StatusBadRequest)
		return
	}
	if len(src) > s.cfg.MaxDescBytes {
		http.Error(w, "description too large", http.StatusRequestEntityTooLarge)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "desc-" + descID(src)
	}
	e, cached, err := s.reg.add(src, name, time.Now())
	if err != nil {
		var ce *core.CompileError
		if errors.As(err, &ce) {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if errors.Is(err, ErrRegistryFull) {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(e.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.reg.list())
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown description", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("source") == "1" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, e.desc.Source)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(e.snapshot())
}

// --- tenancy and quarantine endpoints ---

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	t.quar.writeJSONL(w)
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	out := make([]TenantInfo, len(ts))
	for i, t := range ts {
		out[i] = t.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// --- probes ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process serves. Readiness is readyz's business — a
	// draining daemon is alive (it is finishing work) but not ready.
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.met.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"active":       s.met.active.Load(),
		"descriptions": s.reg.size(),
	})
}

// --- parse endpoints ---

type parseMode int

const (
	modeAccum parseMode = iota
	modeXML
	modeCSV
)

// ctxReader fails reads once ctx is done, so a parse blocked between body
// chunks notices cancellation at its next read even when the runtime's own
// poll sites are not reached.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// parseFaultHeader interprets the X-Pads-Fault chaos header: comma-separated
// k=v pairs naming fault.Config fields, e.g.
// "seed=7,short=0.5,transient=0.1,corrupt=0.01,truncate=4096,fail=8192".
func parseFaultHeader(h string) (fault.Config, error) {
	var cfg fault.Config
	for _, kv := range strings.Split(h, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("bad fault spec %q", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "short":
			cfg.ShortReadProb, err = strconv.ParseFloat(v, 64)
		case "transient":
			cfg.TransientProb, err = strconv.ParseFloat(v, 64)
		case "corrupt":
			cfg.CorruptProb, err = strconv.ParseFloat(v, 64)
		case "truncate":
			cfg.TruncateAt, err = strconv.ParseInt(v, 10, 64)
		case "fail":
			cfg.FailAt, err = strconv.ParseInt(v, 10, 64)
		default:
			return cfg, fmt.Errorf("unknown fault key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad fault value %q: %v", kv, err)
		}
	}
	return cfg, nil
}

// timeoutFor resolves the request's parse deadline.
func (s *Server) timeoutFor(r *http.Request) time.Duration {
	spec := r.Header.Get("X-Pads-Timeout-Ms")
	if spec == "" {
		spec = r.URL.Query().Get("timeout_ms")
	}
	if spec == "" {
		return s.cfg.ParseTimeout
	}
	ms, err := strconv.ParseInt(spec, 10, 64)
	if err != nil || ms <= 0 {
		return s.cfg.ParseTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// classify maps a parse error to an HTTP status, counting the abort kind.
func (s *Server) classify(err error) (int, string) {
	var be *interp.BudgetError
	if errors.As(err, &be) {
		s.met.budget.Add(1)
		return http.StatusUnprocessableEntity, err.Error()
	}
	var le *padsrt.LimitError
	if errors.As(err, &le) {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.deadline.Add(1)
			return http.StatusGatewayTimeout, err.Error()
		case errors.Is(err, context.Canceled):
			s.met.cancelled.Add(1)
			return 499, err.Error() // client closed request (nginx convention)
		default:
			return http.StatusUnprocessableEntity, err.Error()
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.met.deadline.Add(1)
		return http.StatusGatewayTimeout, err.Error()
	}
	if errors.Is(err, context.Canceled) {
		s.met.cancelled.Add(1)
		return 499, err.Error()
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge, err.Error()
	}
	return http.StatusBadRequest, err.Error()
}

func (s *Server) parseEndpoint(mode parseMode) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Admission, in cost order: nothing below buffers a single body
		// byte until every gate has passed.
		e, ok := s.reg.get(r.URL.Query().Get("desc"))
		if !ok {
			http.Error(w, "unknown description (upload first: POST /v1/descriptions)", http.StatusNotFound)
			return
		}
		tn, err := s.tenantFor(r)
		if err != nil {
			s.met.throttled.Add(1)
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		admitted, retryAfter := tn.admit(s.cfg.Tenant, time.Now())
		if !admitted {
			s.met.throttled.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)+1+s.retryJitter()))
			http.Error(w, "tenant over rate or stream budget", http.StatusTooManyRequests)
			return
		}
		records, errored := 0, 0
		defer func() { tn.release(records, errored) }()

		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.met.overload.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(1+s.retryJitter()))
			http.Error(w, "parse capacity exhausted", http.StatusServiceUnavailable)
			return
		}
		if !s.beginParse() {
			s.met.overload.Add(1)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		defer s.inflight.Done()
		s.met.active.Add(1)
		defer s.met.active.Add(-1)

		// Deadline: request context (client disconnect), drain hard-stop,
		// and the per-request timeout, all reaching the runtime through one
		// cancel hook.
		ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(r))
		defer cancel()
		stop := context.AfterFunc(s.hardCtx, cancel)
		defer stop()

		body := io.Reader(r.Body)
		if s.cfg.MaxBodyBytes > 0 {
			body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		if s.cfg.Chaos {
			if h := r.Header.Get("X-Pads-Fault"); h != "" {
				fcfg, err := parseFaultHeader(h)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				body = fault.NewReader(body, fcfg)
			}
		}
		body = &ctxReader{ctx: ctx, r: body}

		opts, err := cliutil.SourceOptions(
			r.URL.Query().Get("disc"),
			r.URL.Query().Get("ebcdic") == "1",
			r.URL.Query().Get("le") == "1")
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st := telemetry.NewStats()
		opts = append(opts,
			padsrt.WithLimits(s.cfg.Limits),
			padsrt.WithRetry(s.cfg.Retry, s.cfg.RetryBackoff),
			padsrt.WithStats(st),
			padsrt.WithCancel(ctx.Err))
		src := padsrt.NewSource(bufio.NewReaderSize(body, 64<<10), opts...)

		// Compile-once, parse-many: clone the interpreter, never the
		// description.
		in := e.desc.Interp.Clone()
		in.Stats = st
		e.used()
		rr, err := in.NewRecordReader(src, nil)
		if err != nil {
			http.Error(w, fmt.Sprintf("description is not record-streamable: %v", err), http.StatusUnprocessableEntity)
			return
		}
		sink := multiRecorder{tn.quar}
		if s.quarW != nil {
			sink = append(sink, s.quarW)
		}
		rr.SetPolicy(&interp.Policy{
			MaxErrors:    s.cfg.Tenant.MaxErrors,
			MaxErrorRate: s.cfg.Tenant.MaxErrorRate,
			FailFast:     s.cfg.Tenant.FailFast,
			Sink:         sink,
		})

		quarBefore := tn.quar.total()
		scanErr := s.runParse(mode, w, r, rr)
		records, errored = rr.Counts()
		s.met.records.Add(uint64(records))
		s.met.errored.Add(uint64(errored))
		s.met.quarantined.Add(tn.quar.total() - quarBefore)
		s.met.bytesIn.Add(st.Source.BytesRead)
		s.agg.fold(st)
		_ = scanErr // responses are finished inside runParse
	}
}

// runParse drives the record loop for one mode and finishes the response,
// including the error-to-status mapping when the parse dies before (or
// during) streaming.
func (s *Server) runParse(mode parseMode, w http.ResponseWriter, r *http.Request, rr *interp.RecordReader) error {
	q := r.URL.Query()
	switch mode {
	case modeAccum:
		// Aggregation buffers no records — only the accumulator — so the
		// status can honestly reflect the whole scan before the first byte
		// of the report is written.
		track, _ := strconv.Atoi(q.Get("track"))
		top, _ := strconv.Atoi(q.Get("top"))
		acc := accum.New(accum.Config{MaxTracked: track, TopN: top})
		n := 0
		for rr.More() {
			acc.Add(rr.Read())
			n++
		}
		err := rr.Err()
		if err != nil && !errors.Is(err, io.EOF) {
			code, msg := s.classify(err)
			http.Error(w, msg, code)
			return err
		}
		recs, errs := rr.Counts()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Pads-Records", strconv.Itoa(recs))
		w.Header().Set("X-Pads-Errored", strconv.Itoa(errs))
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "%d records\n\n", n)
		if f := q.Get("field"); f != "" {
			if err := acc.ReportField(bw, "<top>", f); err != nil {
				bw.Flush()
				return err
			}
		} else {
			acc.Report(bw, "<top>")
		}
		return bw.Flush()

	case modeXML, modeCSV:
		// Streaming conversion cannot retract a 200, so scan outcome and
		// counts travel as HTTP trailers.
		w.Header().Set("Trailer", "X-Pads-Records, X-Pads-Errored, X-Pads-Error")
		bw := bufio.NewWriterSize(w, 32<<10)
		var emit func(v value.Value) error
		var finish func()
		if mode == modeXML {
			root := q.Get("root")
			if root == "" {
				root = "source"
			}
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			fmt.Fprintf(bw, "<%s>\n", root)
			if h := rr.Header(); h != nil {
				xmlgen.WriteXML(bw, h, "header", 1)
			}
			emit = func(v value.Value) error {
				return xmlgen.WriteXML(bw, v, rr.RecordTypeName(), 1)
			}
			finish = func() { fmt.Fprintf(bw, "</%s>\n", root) }
		} else {
			delims := q.Get("delims")
			if delims == "" {
				delims = "|"
			}
			f := fmtconv.New(strings.Split(delims, ",")...)
			f.DateFormat = q.Get("datefmt")
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			skipErrs := q.Get("skip_errors") == "1"
			emit = func(v value.Value) error {
				if skipErrs && v.PD().Nerr > 0 {
					return nil
				}
				_, err := f.WriteRecord(bw, v)
				return err
			}
			finish = func() {}
		}
		for rr.More() {
			if err := emit(rr.Read()); err != nil {
				break
			}
		}
		err := rr.Err()
		if errors.Is(err, io.EOF) {
			err = nil
		}
		finish()
		bw.Flush()
		recs, errs := rr.Counts()
		w.Header().Set("X-Pads-Records", strconv.Itoa(recs))
		w.Header().Set("X-Pads-Errored", strconv.Itoa(errs))
		if err != nil {
			_, msg := s.classify(err) // count the abort kind for /metrics
			w.Header().Set("X-Pads-Error", msg)
		} else {
			w.Header().Set("X-Pads-Error", "")
		}
		return err
	}
	return nil
}

// --- drain ---

// StartDrain flips the daemon into draining mode: /readyz answers 503 and
// new parse requests are refused, while in-flight parses continue.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.met.draining.Store(true)
}

// Draining reports whether StartDrain has run.
func (s *Server) Draining() bool { return s.met.draining.Load() }

// Drain is the SIGTERM discipline: stop admitting, let in-flight parses
// finish within ctx's budget, then cancel the stragglers through the
// runtime's deadline hook and wait for them to unwind (the hard stop
// converts each one's next read into a sticky LimitError, so unwinding is
// linear in the description, not the remaining input). It returns nil when
// every parse finished on its own, or ctx's error when the hard stop was
// needed. The write-through quarantine is complete on return — entries are
// written as they arrive — so the caller may close its writer.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardStop()
		<-done
		return ctx.Err()
	}
}

// Metrics exposes the daemon's Prometheus collectors (for embedding the
// daemon under an existing metrics mux).
func (s *Server) Metrics() []telemetry.Collector {
	return []telemetry.Collector{s.met, s.agg}
}
