package padsd

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"pads/internal/telemetry"
)

// metrics is the daemon's own counter set, separate from the per-parse
// telemetry.Stats (which are per-request and folded into the aggregate
// below): request outcomes, admission decisions, containment activity, and
// liveness gauges. All fields are atomics — handlers update them from many
// goroutines — and render through telemetry.MetricsHandler like any other
// collector.
type metrics struct {
	reqTotal  atomic.Uint64
	req2xx    atomic.Uint64
	req4xx    atomic.Uint64
	req5xx    atomic.Uint64
	throttled atomic.Uint64 // 429s: tenant bucket or stream cap
	overload  atomic.Uint64 // 503s: global concurrency or draining
	panics    atomic.Uint64 // handler panics contained
	deadline  atomic.Uint64 // parses aborted by deadline expiry
	cancelled atomic.Uint64 // parses aborted by client disconnect or drain
	budget    atomic.Uint64 // parses aborted by an error budget

	records     atomic.Uint64
	errored     atomic.Uint64
	bytesIn     atomic.Uint64
	quarantined atomic.Uint64

	jobsStarted   atomic.Uint64 // out-of-core jobs accepted (incl. resumes)
	jobsCompleted atomic.Uint64 // jobs that ran to a finalized manifest
	jobsFailed    atomic.Uint64 // jobs that died on a job-fatal error
	jobsCancelled atomic.Uint64 // jobs stopped by DELETE or drain hard stop
	jobsPoisoned  atomic.Uint64 // completed jobs with >=1 poisoned segment

	active     atomic.Int64
	jobsActive atomic.Int64
	draining   atomic.Bool
}

// WritePrometheus implements telemetry.Collector.
func (m *metrics) WritePrometheus(w io.Writer) {
	counter := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	counter("padsd_requests_total", m.reqTotal.Load())
	counter("padsd_responses_2xx_total", m.req2xx.Load())
	counter("padsd_responses_4xx_total", m.req4xx.Load())
	counter("padsd_responses_5xx_total", m.req5xx.Load())
	counter("padsd_throttled_total", m.throttled.Load())
	counter("padsd_overload_rejects_total", m.overload.Load())
	counter("padsd_panics_recovered_total", m.panics.Load())
	counter("padsd_deadline_aborts_total", m.deadline.Load())
	counter("padsd_cancel_aborts_total", m.cancelled.Load())
	counter("padsd_budget_aborts_total", m.budget.Load())
	counter("padsd_records_parsed_total", m.records.Load())
	counter("padsd_records_errored_total", m.errored.Load())
	counter("padsd_ingest_bytes_total", m.bytesIn.Load())
	counter("padsd_quarantined_total", m.quarantined.Load())
	counter("padsd_jobs_started_total", m.jobsStarted.Load())
	counter("padsd_jobs_completed_total", m.jobsCompleted.Load())
	counter("padsd_jobs_failed_total", m.jobsFailed.Load())
	counter("padsd_jobs_cancelled_total", m.jobsCancelled.Load())
	counter("padsd_jobs_poisoned_total", m.jobsPoisoned.Load())
	gauge("padsd_parses_active", m.active.Load())
	gauge("padsd_jobs_active", m.jobsActive.Load())
	d := int64(0)
	if m.draining.Load() {
		d = 1
	}
	gauge("padsd_draining", d)
}

func (m *metrics) status(code int) {
	switch {
	case code >= 500:
		m.req5xx.Add(1)
	case code >= 400:
		m.req4xx.Add(1)
	default:
		m.req2xx.Add(1)
	}
}

// lockedStats folds every request's private telemetry.Stats into one
// aggregate under a mutex and renders it on /metrics, so the runtime's
// source/speculation/intern counters (pads_source_* et al.) describe the
// daemon's lifetime traffic. Requests never write to it directly — each
// parse runs with its own Stats (the same discipline internal/parallel
// uses) and folds once at the end, keeping the hot path lock-free.
type lockedStats struct {
	mu sync.Mutex
	st *telemetry.Stats
}

func newLockedStats() *lockedStats { return &lockedStats{st: telemetry.NewStats()} }

func (l *lockedStats) fold(o *telemetry.Stats) {
	if o == nil {
		return
	}
	l.mu.Lock()
	l.st.Merge(o)
	// Per-request worker rows would grow without bound on a daemon; the
	// aggregate keeps counters only.
	l.st.Workers = nil
	l.mu.Unlock()
}

// WritePrometheus implements telemetry.Collector.
func (l *lockedStats) WritePrometheus(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.WritePrometheus(w)
}
