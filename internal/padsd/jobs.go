package padsd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"pads/internal/accum"
	"pads/internal/cliutil"
	"pads/internal/fmtconv"
	"pads/internal/padsrt"
	"pads/internal/segment"
	"pads/internal/telemetry"
	"pads/internal/value"
	"pads/internal/xmlgen"
)

// The async job API is the daemon face of internal/segment's out-of-core
// execution layer: parses too large for a request body run as durable jobs
// against files on the daemon's disk, segment-at-a-time, journaled to a
// manifest under Config.JobDir so a killed daemon (or an expired drain
// budget) leaves every job resumable.
//
//	POST   /v1/jobs            {"desc":ID,"file":PATH,...}  -> 202 {"id":...}
//	GET    /v1/jobs            job listing
//	GET    /v1/jobs/{id}       status + progress + report summary
//	GET    /v1/jobs/{id}/result  accumulator report / converted output
//	DELETE /v1/jobs/{id}       cancel (the manifest stays; resume later)
//
// Drain interacts with jobs exactly as with parses: StartDrain refuses new
// jobs, Drain waits for running ones within its budget, and the hard stop
// cancels stragglers through the same runtime hook — a cancelled job has
// already committed every finished segment, so a resume picks up there.

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Desc        string `json:"desc"`         // registry ID (required unless resuming)
	File        string `json:"file"`         // data file, relative to JobDir
	Mode        string `json:"mode"`         // accum (default) | xml | csv
	Disc        string `json:"disc"`         // record discipline spec (cliutil syntax)
	SegmentSize string `json:"segment_size"` // k/m/g suffixes
	Workers     int    `json:"workers"`
	Resume      string `json:"resume"` // manifest file name under JobDir

	// Accum mode.
	Track int `json:"track"`
	Top   int `json:"top"`
	// XML mode.
	Root string `json:"root"`
	// CSV mode.
	Delims     string `json:"delims"`
	DateFmt    string `json:"datefmt"`
	SkipErrors bool   `json:"skip_errors"`
}

// jobState is one job's mutable record.
type jobState struct {
	id       string
	mu       sync.Mutex
	state    string // running | done | failed | cancelled
	errMsg   string
	progress segment.Progress
	rep      *segment.Report
	req      jobRequest
	manifest string
	outPath  string
	quarPath string
	created  time.Time
	cancel   context.CancelFunc
}

// JobInfo is the status JSON for one job.
type JobInfo struct {
	ID       string           `json:"id"`
	State    string           `json:"state"`
	Error    string           `json:"error,omitempty"`
	Mode     string           `json:"mode"`
	File     string           `json:"file"`
	Manifest string           `json:"manifest"`
	Created  time.Time        `json:"created"`
	Progress segment.Progress `json:"progress"`
	Records  int              `json:"records,omitempty"`
	Errored  int              `json:"errored,omitempty"`
	Poisoned []int            `json:"poisoned,omitempty"`
	Segments int              `json:"segments,omitempty"`
	Skipped  int              `json:"skipped,omitempty"`
	Replayed int              `json:"replayed,omitempty"`
	Quarantd int64            `json:"quarantined,omitempty"`
}

func (j *jobState) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	in := JobInfo{
		ID: j.id, State: j.state, Error: j.errMsg, Mode: j.req.Mode,
		File: j.req.File, Manifest: filepath.Base(j.manifest),
		Created: j.created, Progress: j.progress,
	}
	if j.rep != nil {
		in.Records = j.rep.Records
		in.Errored = j.rep.Errored
		in.Segments = j.rep.Segments
		in.Skipped = j.rep.Skipped
		in.Replayed = j.rep.Replayed
		in.Quarantd = j.rep.Quarantined
		for _, p := range j.rep.Poisoned {
			in.Poisoned = append(in.Poisoned, p.Index)
		}
	}
	return in
}

// jobPath confines a client-supplied file name under the job directory.
func (s *Server) jobPath(name string) (string, error) {
	if name == "" {
		return "", errors.New("empty path")
	}
	if filepath.IsAbs(name) || !filepath.IsLocal(name) {
		return "", fmt.Errorf("path %q escapes the job directory", name)
	}
	return filepath.Join(s.cfg.JobDir, name), nil
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.cfg.JobDir == "" {
		http.Error(w, "job API disabled (start padsd with -job-dir)", http.StatusNotFound)
		return
	}
	var req jobRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad job request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Mode == "" {
		req.Mode = "accum"
	}
	if req.Mode != "accum" && req.Mode != "xml" && req.Mode != "csv" {
		http.Error(w, fmt.Sprintf("unknown job mode %q (accum, xml, csv)", req.Mode), http.StatusBadRequest)
		return
	}

	resume := req.Resume != ""
	var manifest, dataPath string
	var err error
	if resume {
		if manifest, err = s.jobPath(req.Resume); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		info, err := segment.Peek(manifest)
		if err != nil {
			http.Error(w, fmt.Sprintf("resume: %v", err), http.StatusBadRequest)
			return
		}
		if req.File != "" {
			if dataPath, err = s.jobPath(req.File); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		} else {
			// The manifest-recorded input path gets the same confinement as a
			// client-supplied one: a manifest recording (or crafted to record)
			// a path outside the job directory must not let a job read
			// arbitrary daemon-readable files.
			dataPath = info.File
			if rel, err := filepath.Rel(s.cfg.JobDir, dataPath); err != nil || !filepath.IsLocal(rel) {
				http.Error(w, fmt.Sprintf("resume: manifest-recorded input %q escapes the job directory (pass \"file\" to name it under the job directory)", info.File), http.StatusBadRequest)
				return
			}
		}
	} else {
		if dataPath, err = s.jobPath(req.File); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	e, ok := s.reg.get(req.Desc)
	if !ok {
		http.Error(w, "unknown description (upload first: POST /v1/descriptions)", http.StatusNotFound)
		return
	}
	segSize, err := cliutil.ParseSize(req.SegmentSize)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad segment_size: %v", err), http.StatusBadRequest)
		return
	}
	if segSize == 0 {
		segSize = s.cfg.JobSegmentSize
	}
	opts, err := cliutil.SourceOptions(req.Disc, false, false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Admission: the job slot cap, then drain registration (jobs count as
	// in-flight work for Drain).
	select {
	case s.jobSem <- struct{}{}:
	default:
		s.met.overload.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(5+s.retryJitter()))
		http.Error(w, "job capacity exhausted", http.StatusServiceUnavailable)
		return
	}
	if !s.beginParse() {
		<-s.jobSem
		s.met.overload.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}

	// One running job per manifest: two jobs appending the same journal and
	// truncating the same .quar/.out siblings would interleave seg lines and
	// corrupt both, so ownership is claimed under jobMu before the job
	// starts and released when runJob returns (a cancelled job may still be
	// draining — its manifest stays owned until it actually stops).
	s.jobMu.Lock()
	var id string
	if resume {
		if owner, busy := s.jobOwned[manifest]; busy {
			s.jobMu.Unlock()
			<-s.jobSem
			s.inflight.Done()
			http.Error(w, fmt.Sprintf("manifest %s is in use by running job %s", filepath.Base(manifest), owner), http.StatusConflict)
			return
		}
		id = fmt.Sprintf("j%d", s.jobSeq.Add(1))
	} else {
		// Fresh job: take the next id whose manifest is neither owned nor
		// already on disk. The sequence is seeded past existing manifests at
		// startup, so this only skips when one was copied in since.
		for {
			id = fmt.Sprintf("j%d", s.jobSeq.Add(1))
			manifest = filepath.Join(s.cfg.JobDir, id+".manifest")
			if _, busy := s.jobOwned[manifest]; busy {
				continue
			}
			if _, err := os.Lstat(manifest); err != nil {
				break
			}
		}
	}
	s.jobOwned[manifest] = id
	ctx, cancel := context.WithCancel(context.Background())
	j := &jobState{
		id: id, state: "running", req: req, manifest: manifest,
		quarPath: quarSibling(manifest), created: time.Now(), cancel: cancel,
	}
	if req.Mode != "accum" {
		j.outPath = outSibling(manifest)
	}
	s.jobs[id] = j
	s.jobMu.Unlock()
	s.met.jobsStarted.Add(1)
	s.met.jobsActive.Add(1)
	e.used()

	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.JobWorkers
	}
	go s.runJob(ctx, cancel, j, e, dataPath, opts, segSize, workers, resume)

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+id)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.snapshot())
}

// maxJobSeq scans the job directory for j<N>.manifest files and returns the
// largest N, so a restarted daemon's id sequence continues past its previous
// life instead of recycling ids — a recycled id would aim a fresh job at an
// old job's manifest and output siblings.
func maxJobSeq(dir string) uint64 {
	if dir == "" {
		return 0
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var max uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "j") || !strings.HasSuffix(name, ".manifest") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "j"), ".manifest"), 10, 64)
		if err == nil && n > max {
			max = n
		}
	}
	return max
}

// quarSibling and outSibling derive a job's output paths from its manifest
// path, so a resumed job (new id, old manifest) finds the same files.
func quarSibling(manifest string) string { return strings.TrimSuffix(manifest, ".manifest") + ".quar" }
func outSibling(manifest string) string  { return strings.TrimSuffix(manifest, ".manifest") + ".out" }

// runJob executes one job to completion on its own goroutine.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *jobState, e *descEntry, dataPath string, opts []padsrt.SourceOption, segSize int64, workers int, resume bool) {
	defer func() {
		cancel()
		s.jobMu.Lock()
		delete(s.jobOwned, j.manifest)
		s.jobMu.Unlock()
		s.met.jobsActive.Add(-1)
		<-s.jobSem
		s.inflight.Done()
	}()
	// The drain hard stop reaches the job through the same cancellation
	// path as a parse deadline.
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()

	fail := func(err error) {
		j.mu.Lock()
		defer j.mu.Unlock()
		if errors.Is(err, context.Canceled) {
			j.state = "cancelled"
			s.met.jobsCancelled.Add(1)
		} else {
			j.state = "failed"
			s.met.jobsFailed.Add(1)
		}
		j.errMsg = err.Error()
	}

	f, err := os.Open(dataPath)
	if err != nil {
		fail(err)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		fail(err)
		return
	}

	in := e.desc.Interp.Clone()
	stats := telemetry.NewStats()
	in.Stats = stats
	// The same per-parse resource guards as the request path: segment
	// workers build their sources from these options.
	opts = append(opts, padsrt.WithLimits(s.cfg.Limits))
	cfg := segment.Config{
		Interp:   in,
		DescHash: segment.HashBytes([]byte(e.desc.Source)),
		Data:     f,
		DataPath: dataPath,
		DataSize: st.Size(),
		Source:   opts,
		SegSize:  segSize,
		Workers:  workers,
		Manifest: j.manifest,
		Resume:   resume,
		QuarPath: j.quarPath,
		Stats:    stats,
		Cancel:   ctx.Err,
		Progress: func(p segment.Progress) {
			j.mu.Lock()
			j.progress = p
			j.mu.Unlock()
		},
	}
	switch j.req.Mode {
	case "accum":
		cfg.AccumCfg = accum.Config{MaxTracked: j.req.Track, TopN: j.req.Top}
	case "xml":
		shape, err := in.Shape()
		if err != nil {
			fail(err)
			return
		}
		root := j.req.Root
		if root == "" {
			root = "source"
		}
		cfg.Mode = "xml"
		cfg.OutPath = j.outPath
		cfg.EmitPrologue = func(out *bytes.Buffer, header value.Value) {
			fmt.Fprintf(out, "<%s>\n", root)
			if header != nil {
				xmlgen.WriteXML(out, header, "header", 1)
			}
		}
		cfg.Emit = func(out *bytes.Buffer, v value.Value) {
			xmlgen.WriteXML(out, v, shape.RecordType, 1)
		}
		cfg.EmitEpilogue = func(out *bytes.Buffer) { fmt.Fprintf(out, "</%s>\n", root) }
	case "csv":
		delims := j.req.Delims
		if delims == "" {
			delims = "|"
		}
		fc := fmtconv.New(strings.Split(delims, ",")...)
		fc.DateFormat = j.req.DateFmt
		skip := j.req.SkipErrors
		cfg.Mode = "csv"
		cfg.OutPath = j.outPath
		cfg.Emit = func(out *bytes.Buffer, v value.Value) {
			if skip && v.PD().Nerr > 0 {
				return
			}
			fc.WriteRecord(out, v)
		}
	}

	rep, err := segment.Run(cfg)
	s.agg.fold(stats)
	if err != nil {
		fail(err)
		return
	}
	s.met.records.Add(uint64(rep.Records))
	s.met.errored.Add(uint64(rep.Errored))
	s.met.quarantined.Add(uint64(rep.Quarantined))
	j.mu.Lock()
	j.state = "done"
	j.rep = rep
	j.mu.Unlock()
	s.met.jobsCompleted.Add(1)
	if len(rep.Poisoned) > 0 {
		s.met.jobsPoisoned.Add(1)
	}
}

func (s *Server) jobByID(id string) (*jobState, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	s.jobMu.Lock()
	js := make([]*jobState, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.jobMu.Unlock()
	out := make([]JobInfo, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.snapshot())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	j.mu.Lock()
	state, rep, outPath := j.state, j.rep, j.outPath
	j.mu.Unlock()
	switch state {
	case "running":
		w.Header().Set("Retry-After", strconv.Itoa(2+s.retryJitter()))
		http.Error(w, "job still running", http.StatusConflict)
		return
	case "failed", "cancelled":
		http.Error(w, "job did not complete: "+j.snapshot().Error, http.StatusGone)
		return
	}
	if rep != nil && rep.Acc != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Pads-Records", strconv.Itoa(rep.Records))
		w.Header().Set("X-Pads-Errored", strconv.Itoa(rep.Errored))
		fmt.Fprintf(w, "%d records\n\n", rep.Records)
		rep.Acc.Report(w, "<top>")
		return
	}
	f, err := os.Open(outPath)
	if err != nil {
		http.Error(w, fmt.Sprintf("job output: %v", err), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	j.cancel()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.snapshot())
}

// retryJitter returns a small deterministic jitter (0-3 seconds) added to
// every Retry-After the daemon sends, so a fleet of clients rejected in the
// same overload instant does not reconverge in the same retry instant
// (docs/OBSERVABILITY.md). The sequence is a pure function of
// Config.RetryAfterSeed and the rejection ordinal, so tests replay it.
func (s *Server) retryJitter() int {
	x := s.cfg.RetryAfterSeed + s.jitterSeq.Add(1)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int((x ^ (x >> 31)) % 4)
}
