package padsd

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"pads/internal/interp"
)

// TenantConfig is the per-tenant admission and degradation policy. The
// daemon applies one config to every tenant (per-tenant overrides would be
// a small extension: the enforcement below is already per-tenant state).
type TenantConfig struct {
	// RatePerSec refills the tenant's token bucket (0 = unlimited): each
	// parse request consumes one token, and an empty bucket is a 429 with
	// Retry-After, never a queue that buffers the body.
	RatePerSec float64
	// Burst is the bucket depth (default: max(1, RatePerSec)).
	Burst int
	// MaxActive caps one tenant's concurrent parse streams, so a single
	// tenant cannot monopolize the global parse slots (429 when exceeded).
	MaxActive int
	// MaxErrors / MaxErrorRate / FailFast are the per-request error budget,
	// applied through interp.Policy exactly as the CLI flags apply it: a
	// tripped budget aborts that request with 422 and a BudgetError body.
	MaxErrors    int
	MaxErrorRate float64
	FailFast     bool
}

func (tc TenantConfig) burst() float64 {
	if tc.Burst > 0 {
		return float64(tc.Burst)
	}
	if tc.RatePerSec > 1 {
		return tc.RatePerSec
	}
	return 1
}

// tenant is the daemon-side state of one tenant: a token bucket, an active
// stream count, cumulative counters, and a bounded dead-letter tail.
type tenant struct {
	name string

	mu        sync.Mutex
	tokens    float64
	lastT     time.Time
	active    int
	records   uint64
	errored   uint64
	throttled uint64

	quar *quarTail
}

func newTenant(name string, cfg TenantConfig, tail int, now time.Time) *tenant {
	return &tenant{name: name, tokens: cfg.burst(), lastT: now, quar: newQuarTail(tail)}
}

// admit charges one request against the tenant's bucket and stream cap,
// reporting whether it may proceed and, if not, how long to back off.
func (t *tenant) admit(cfg TenantConfig, now time.Time) (ok bool, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cfg.RatePerSec > 0 {
		elapsed := now.Sub(t.lastT).Seconds()
		if elapsed > 0 {
			t.tokens += elapsed * cfg.RatePerSec
			if max := cfg.burst(); t.tokens > max {
				t.tokens = max
			}
			t.lastT = now
		}
		if t.tokens < 1 {
			t.throttled++
			need := (1 - t.tokens) / cfg.RatePerSec
			return false, time.Duration(need * float64(time.Second))
		}
	}
	if cfg.MaxActive > 0 && t.active >= cfg.MaxActive {
		t.throttled++
		return false, time.Second
	}
	if cfg.RatePerSec > 0 {
		t.tokens--
	}
	t.active++
	return true, 0
}

// release ends one admitted stream, folding its scan counts in.
func (t *tenant) release(records, errored int) {
	t.mu.Lock()
	t.active--
	t.records += uint64(records)
	t.errored += uint64(errored)
	t.mu.Unlock()
}

// TenantInfo is the public snapshot of one tenant's state.
type TenantInfo struct {
	Name        string `json:"name"`
	Active      int    `json:"active"`
	Records     uint64 `json:"records"`
	Errored     uint64 `json:"errored"`
	Throttled   uint64 `json:"throttled"`
	Quarantined uint64 `json:"quarantined"`
}

func (t *tenant) snapshot() TenantInfo {
	t.mu.Lock()
	in := TenantInfo{Name: t.name, Active: t.active, Records: t.records,
		Errored: t.errored, Throttled: t.throttled}
	t.mu.Unlock()
	in.Quarantined = t.quar.total()
	return in
}

// quarTail is a bounded, concurrency-safe dead-letter tail: the most recent
// cap quarantine entries of one tenant, downloadable as JSONL. It implements
// interp.Recorder, so record readers feed it exactly like a file sink; the
// bound converts "a tenant streamed a billion poison records" into an O(cap)
// ring instead of an OOM.
type quarTail struct {
	mu    sync.Mutex
	cap   int
	n     uint64 // total entries ever quarantined (kept or evicted)
	buf   []interp.Entry
	start int // ring head
}

func newQuarTail(cap int) *quarTail {
	if cap <= 0 {
		cap = 1024
	}
	return &quarTail{cap: cap}
}

// Quarantine implements interp.Recorder.
func (q *quarTail) Quarantine(e interp.Entry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
	if len(q.buf) < q.cap {
		q.buf = append(q.buf, e)
		return
	}
	q.buf[q.start] = e
	q.start = (q.start + 1) % q.cap
}

func (q *quarTail) total() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// writeJSONL renders the retained tail, oldest first, one JSON object per
// line — the same schema as the -quarantine file of the CLI tools.
func (q *quarTail) writeJSONL(w io.Writer) error {
	q.mu.Lock()
	entries := make([]interp.Entry, 0, len(q.buf))
	for i := 0; i < len(q.buf); i++ {
		entries = append(entries, q.buf[(q.start+i)%len(q.buf)])
	}
	q.mu.Unlock()
	enc := json.NewEncoder(w)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return err
		}
	}
	return nil
}

// multiRecorder fans one dead-letter stream out to several sinks (the
// tenant's tail plus the daemon's optional write-through file).
type multiRecorder []interp.Recorder

func (m multiRecorder) Quarantine(e interp.Entry) {
	for _, r := range m {
		r.Quarantine(e)
	}
}
