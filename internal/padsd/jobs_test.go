package padsd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pads/internal/segment"
)

// jobCorpus writes a deterministic CLF corpus of n lines (every 13th
// damaged) into dir and returns its bytes.
func jobCorpus(t *testing.T, dir, name string, n int) []byte {
	t.Helper()
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		if i%13 == 7 {
			b.WriteString(badCLF)
			continue
		}
		fmt.Fprintf(&b, "207.136.%d.%d - - [15/Oct/1997:18:%02d:%02d -0700] \"GET /a/%d HTTP/1.0\" %d %d\n",
			i%200+1, i%250+1, i/60%60, i%60, i, 200+i%2*204, i*31%9973)
	}
	if err := os.WriteFile(filepath.Join(dir, name), b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func submitJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobInfo) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info JobInfo
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, info
}

// waitJob polls the status endpoint until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.State != "running" {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 30s: %+v", id, info)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobAPIDisabledWithoutJobDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := submitJob(t, ts, `{"desc":"x","file":"y"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when -job-dir is unset", resp.StatusCode)
	}
}

func TestJobPathConfinement(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{JobDir: dir})
	id := upload(t, ts, clfSource(t))
	for _, file := range []string{"../outside.log", "/etc/passwd", ""} {
		body := fmt.Sprintf(`{"desc":%q,"file":%q}`, id, file)
		resp, _ := submitJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("file %q: status %d, want 400", file, resp.StatusCode)
		}
	}
}

// TestJobLifecycleAccum: submit → 202 with Location → poll to done → result
// identical to the synchronous parse endpoint over the same bytes.
func TestJobLifecycleAccum(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{JobDir: dir})
	id := upload(t, ts, clfSource(t))
	data := jobCorpus(t, dir, "data.log", 500)

	resp, info := submitJob(t, ts, fmt.Sprintf(`{"desc":%q,"file":"data.log"}`, id))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+info.ID {
		t.Fatalf("Location %q for job %q", loc, info.ID)
	}

	done := waitJob(t, ts, info.ID)
	if done.State != "done" {
		t.Fatalf("job finished %q (%s), want done", done.State, done.Error)
	}
	if done.Records == 0 || done.Errored == 0 {
		t.Fatalf("job counted %d records, %d errored; corpus has both", done.Records, done.Errored)
	}

	jr, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	jobBody, _ := io.ReadAll(jr.Body)
	jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", jr.StatusCode, jobBody)
	}

	pr := parseReq(t, ts, "/v1/parse/accum?desc="+id, bytes.NewReader(data), nil)
	syncBody, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("sync parse: status %d", pr.StatusCode)
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Errorf("job result differs from the synchronous accumulator report (%d vs %d bytes)", len(jobBody), len(syncBody))
	}

	// The job appears in the listing.
	lr, _ := http.Get(ts.URL + "/v1/jobs")
	var list []JobInfo
	json.NewDecoder(lr.Body).Decode(&list)
	lr.Body.Close()
	if len(list) != 1 || list[0].ID != info.ID {
		t.Errorf("listing %+v, want the one job", list)
	}
}

// TestJobDrainCancelsAndResumeCompletes: a drain hard stop cancels a running
// job into a resumable manifest; a fresh daemon over the same job directory
// resumes it to completion.
func TestJobDrainCancelsAndResumeCompletes(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{JobDir: dir})
	id := upload(t, ts, clfSource(t))
	jobCorpus(t, dir, "data.log", 120000) // ~9 MB: cannot finish before the drain below

	body := fmt.Sprintf(`{"desc":%q,"file":"data.log","segment_size":"64k","workers":1}`, id)
	resp, info := submitJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// Expired budget: Drain hard-stops immediately and waits for the job
	// goroutine to unwind, so the state below is terminal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)

	final := waitJob(t, ts, info.ID)
	if final.State != "cancelled" {
		t.Fatalf("job state %q after drain, want cancelled", final.State)
	}
	manifest := filepath.Join(dir, final.Manifest)
	if _, err := segment.Peek(manifest); err != nil {
		t.Fatalf("cancelled job left no loadable manifest: %v", err)
	}

	// A new daemon over the same directory resumes the manifest.
	_, ts2 := newTestServer(t, Config{JobDir: dir})
	id2 := upload(t, ts2, clfSource(t))
	resp, info2 := submitJob(t, ts2, fmt.Sprintf(`{"desc":%q,"resume":%q}`, id2, final.Manifest))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts2, info2.ID)
	if done.State != "done" {
		t.Fatalf("resumed job finished %q (%s), want done", done.State, done.Error)
	}
	pk, err := segment.Peek(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !pk.Complete {
		t.Error("resumed job did not finalize the manifest")
	}
	rr, _ := http.Get(ts2.URL + "/v1/jobs/" + info2.ID + "/result")
	b, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || !bytes.Contains(b, []byte("records")) {
		t.Fatalf("resumed result: status %d: %.80s", rr.StatusCode, b)
	}
}

func TestJobSubmitRefusedWhileDraining(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{JobDir: dir})
	id := upload(t, ts, clfSource(t))
	jobCorpus(t, dir, "data.log", 100)
	s.StartDrain()
	resp, _ := submitJob(t, ts, fmt.Sprintf(`{"desc":%q,"file":"data.log"}`, id))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while draining", resp.StatusCode)
	}
}

// TestJobManifestExclusivity: a manifest owned by a running job cannot be
// resumed into a second concurrent job — two writers would interleave seg
// lines in the journal and truncate each other's quarantine/output files.
// Ownership releases when the job goroutine actually stops, not at the
// state flip, so the post-cancel resume polls for admission.
func TestJobManifestExclusivity(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{JobDir: dir})
	id := upload(t, ts, clfSource(t))
	jobCorpus(t, dir, "data.log", 120000) // ~9 MB: still running when the second submit lands

	body := fmt.Sprintf(`{"desc":%q,"file":"data.log","segment_size":"64k","workers":1}`, id)
	resp, info := submitJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	resume := fmt.Sprintf(`{"desc":%q,"resume":%q}`, id, info.Manifest)
	resp2, _ := submitJob(t, ts, resume)
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("resume of a running job's manifest: status %d, want 409", resp2.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	waitJob(t, ts, info.ID)

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp3, info3 := submitJob(t, ts, resume)
		if resp3.StatusCode == http.StatusAccepted {
			if done := waitJob(t, ts, info3.ID); done.State != "done" {
				t.Fatalf("resumed job finished %q (%s), want done", done.State, done.Error)
			}
			return
		}
		if resp3.StatusCode != http.StatusConflict {
			t.Fatalf("resume retry: status %d", resp3.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("manifest still owned 30s after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobIDsSurviveRestart: a restarted daemon continues the job id sequence
// past the manifests already in its job directory — recycling j1 would aim
// a fresh job at the previous life's j1.manifest and output siblings.
func TestJobIDsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{JobDir: dir})
	id := upload(t, ts, clfSource(t))
	jobCorpus(t, dir, "data.log", 500)
	resp, info := submitJob(t, ts, fmt.Sprintf(`{"desc":%q,"file":"data.log"}`, id))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if done := waitJob(t, ts, info.ID); done.State != "done" {
		t.Fatalf("first job finished %q, want done", done.State)
	}
	quarPath := filepath.Join(dir, strings.TrimSuffix(info.Manifest, ".manifest")+".quar")
	quar1, err := os.ReadFile(quarPath)
	if err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{JobDir: dir})
	id2 := upload(t, ts2, clfSource(t))
	resp2, info2 := submitJob(t, ts2, fmt.Sprintf(`{"desc":%q,"file":"data.log"}`, id2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("restart submit: status %d", resp2.StatusCode)
	}
	if info2.ID == info.ID {
		t.Fatalf("restarted daemon recycled job id %s", info.ID)
	}
	if done := waitJob(t, ts2, info2.ID); done.State != "done" {
		t.Fatalf("second job finished %q, want done", done.State)
	}
	if got, err := os.ReadFile(quarPath); err != nil || !bytes.Equal(got, quar1) {
		t.Errorf("restart's fresh job disturbed the old job's quarantine file (%v, %d vs %d bytes)", err, len(got), len(quar1))
	}
	pk, err := segment.Peek(filepath.Join(dir, info.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	if !pk.Complete {
		t.Error("old job's manifest no longer reads as complete")
	}
}

// TestJobResumeConfinesManifestRecordedPath: when a resume omits "file", the
// manifest-recorded input path gets the same job-directory confinement as a
// client-supplied one — a crafted manifest must not read arbitrary
// daemon-readable files.
func TestJobResumeConfinesManifestRecordedPath(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{JobDir: dir})
	line := `{"kind":"job","v":1,"file":"/etc/passwd","size":1,"head":"x","tail":"x","disc":"newline","mode":"accum","seg_size":65536,"segments":1}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "evil.manifest"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, _ := submitJob(t, ts, `{"desc":"x","resume":"evil.manifest"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for a manifest recording a path outside the job directory", resp.StatusCode)
	}
}

func TestJobUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{JobDir: t.TempDir()})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestRetryJitterDeterministic: the Retry-After jitter sequence is a pure
// function of the seed (docs/OBSERVABILITY.md) — replayable in tests, varied
// across daemons with different seeds.
func TestRetryJitterDeterministic(t *testing.T) {
	draw := func(seed uint64, n int) []int {
		s := New(Config{RetryAfterSeed: seed})
		out := make([]int, n)
		for i := range out {
			out[i] = s.retryJitter()
			if out[i] < 0 || out[i] > 3 {
				t.Fatalf("jitter %d outside [0,3]", out[i])
			}
		}
		return out
	}
	a, b := draw(7, 64), draw(7, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(8, 64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-draw jitter sequence")
	}
}
