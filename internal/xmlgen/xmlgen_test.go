package xmlgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func load(t *testing.T, name string) (*sema.Desc, *interp.Interp) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(data))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return desc, interp.New(desc)
}

// TestEventSeqSchema reproduces the section 5.3.2 XML Schema excerpt for
// the Sirius eventSeq type (E8): both complexTypes with the same element
// structure the paper prints.
func TestEventSeqSchema(t *testing.T) {
	desc, _ := load(t, "sirius.pads")
	got, err := SchemaFor(desc, "eventSeq")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<xs:complexType name="eventSeq_pd">`,
		`<xs:element name="pstate" type="Pflags_t"/>`,
		`<xs:element name="nerr" type="Puint32"/>`,
		`<xs:element name="errCode" type="PerrCode_t"/>`,
		`<xs:element name="loc" type="Ploc_t"/>`,
		`<xs:element name="neerr" type="Puint32"/>`,
		`<xs:element name="firstError" type="Puint32"/>`,
		`<xs:complexType name="eventSeq">`,
		`<xs:element name="elt" type="event_t"`,
		`minOccurs="0" maxOccurs="unbounded"/>`,
		`<xs:element name="length" type="Puint32"/>`,
		`<xs:element name="pd" type="eventSeq_pd"`,
		`minOccurs="0" maxOccurs="1"/>`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("schema missing %q:\n%s", want, got)
		}
	}
}

func TestFullSchema(t *testing.T) {
	desc, _ := load(t, "clf.pads")
	got := Schema(desc)
	for _, want := range []string{
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">`,
		`<xs:complexType name="entry_t">`,
		`<xs:simpleType name="method_t">`,
		`<xs:enumeration value="GET"/>`,
		`<xs:choice>`,
		`<xs:element name="ip" type="Pip"/>`,
		`<xs:simpleType name="response_t">`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("schema missing %q", want)
		}
	}
	if strings.Contains(got, "chkVersion") {
		t.Error("functions must not appear in the schema")
	}
}

func TestXMLOutputCleanValue(t *testing.T) {
	_, in := load(t, "sirius.pads")
	data, _ := os.ReadFile(filepath.Join("..", "..", "testdata", "sirius.sample"))
	s := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := rr.Read()
	out := XMLString(rec, "entry")
	for _, want := range []string{
		"<entry>", "</entry>",
		"<header>", "<order_num>9152</order_num>",
		"<ramp>", "<genRamp>", "<id>152272</id>",
		"<events>", "<elt>", "<state>10</state>", "<length>1</length>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "<pd>") {
		t.Error("clean value should carry no pd element")
	}
	// Absent optional renders as an empty element.
	if !strings.Contains(out, "<nlp_service_tn/>") {
		t.Errorf("absent optional missing:\n%s", out)
	}
}

func TestXMLEmbedsPDForBuggyData(t *testing.T) {
	_, in := load(t, "clf.pads")
	data := `1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 999 5` + "\n"
	s := padsrt.NewBytesSource([]byte(data))
	v, _ := in.ParseSource(s)
	rec := v.(*value.Array).Elems[0]
	out := XMLString(rec, "entry")
	for _, want := range []string{
		"<pd>", "<pstate>", "<nerr>", "<errCode>user constraint violated</errCode>", "<loc>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml missing %q:\n%s", want, out)
		}
	}
}

func TestXMLEscaping(t *testing.T) {
	str := &value.Str{Val: `a<b&"c>`}
	out := XMLString(str, "s")
	if out != "<s>a&lt;b&amp;&quot;c&gt;</s>\n" {
		t.Errorf("escaped = %q", out)
	}
}
