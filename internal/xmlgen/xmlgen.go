// Package xmlgen converts parsed values into a canonical XML embedding and
// generates the XML Schema describing that embedding for a description
// (section 5.3.2 of the paper). Parse descriptors are embedded for buggy
// data so the error portions of a source remain explorable; clean values
// omit them.
package xmlgen

import (
	"fmt"
	"io"
	"strings"

	"pads/internal/dsl"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

// WriteXML writes the canonical XML form of v as one element named tag,
// indented by indent levels: the generated <type>_write_xml_2io of Figure 6.
func WriteXML(w io.Writer, v value.Value, tag string, indent int) error {
	p := &printer{w: w}
	p.value(v, tag, indent)
	return p.err
}

// XMLString renders the canonical XML form as a string.
func XMLString(v value.Value, tag string) string {
	var sb strings.Builder
	WriteXML(&sb, v, tag, 0)
	return sb.String()
}

type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) ind(n int) string { return strings.Repeat("  ", n) }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func (p *printer) value(v value.Value, tag string, indent int) {
	if v == nil {
		return
	}
	switch v := v.(type) {
	case *value.Struct:
		p.printf("%s<%s>\n", p.ind(indent), tag)
		for i, n := range v.Names {
			p.value(v.Fields[i], n, indent+1)
		}
		p.pd(v.PD(), indent+1)
		p.printf("%s</%s>\n", p.ind(indent), tag)
	case *value.Union:
		p.printf("%s<%s>\n", p.ind(indent), tag)
		if v.Val != nil {
			p.value(v.Val, v.Tag, indent+1)
		}
		p.pd(v.PD(), indent+1)
		p.printf("%s</%s>\n", p.ind(indent), tag)
	case *value.Array:
		p.printf("%s<%s>\n", p.ind(indent), tag)
		for _, e := range v.Elems {
			p.value(e, "elt", indent+1)
		}
		p.printf("%s<length>%d</length>\n", p.ind(indent+1), len(v.Elems))
		p.pd(v.PD(), indent+1)
		p.printf("%s</%s>\n", p.ind(indent), tag)
	case *value.Opt:
		if v.Present {
			p.value(v.Val, tag, indent)
		} else {
			p.printf("%s<%s/>\n", p.ind(indent), tag)
		}
	case *value.Void:
		p.printf("%s<%s/>\n", p.ind(indent), tag)
	default:
		if v.PD().Nerr > 0 {
			// A buggy leaf embeds its descriptor next to the value.
			p.printf("%s<%s>\n", p.ind(indent), tag)
			p.printf("%s<val>%s</val>\n", p.ind(indent+1), escape(leafText(v)))
			p.pd(v.PD(), indent+1)
			p.printf("%s</%s>\n", p.ind(indent), tag)
			return
		}
		p.printf("%s<%s>%s</%s>\n", p.ind(indent), tag, escape(leafText(v)), tag)
	}
}

func leafText(v value.Value) string {
	switch v := v.(type) {
	case *value.Uint:
		return fmt.Sprintf("%d", v.Val)
	case *value.Int:
		return fmt.Sprintf("%d", v.Val)
	case *value.Float:
		return fmt.Sprintf("%g", v.Val)
	case *value.Char:
		return string(v.Val)
	case *value.Str:
		return v.Val
	case *value.Date:
		return v.Raw
	case *value.IP:
		return padsrt.FormatIP(v.Val)
	case *value.Enum:
		return v.Member
	}
	return ""
}

// pd writes the parse-descriptor element when the value carries errors —
// "we embed not just the in-memory representation … but also the parse
// descriptors in cases where the data was buggy".
func (p *printer) pd(pd *padsrt.PD, indent int) {
	if pd.Nerr == 0 {
		return
	}
	p.printf("%s<pd>\n", p.ind(indent))
	p.printf("%s<pstate>%s</pstate>\n", p.ind(indent+1), pd.State)
	p.printf("%s<nerr>%d</nerr>\n", p.ind(indent+1), pd.Nerr)
	p.printf("%s<errCode>%s</errCode>\n", p.ind(indent+1), escape(pd.ErrCode.String()))
	p.printf("%s<loc>%s</loc>\n", p.ind(indent+1), pd.Loc)
	p.printf("%s</pd>\n", p.ind(indent))
}

// ---- XML Schema generation ----

// Schema generates the XML Schema for the canonical embedding of the whole
// description. Each declared type yields a complexType (plus a companion
// <name>_pd type), matching the paper's eventSeq example.
func Schema(desc *sema.Desc) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0"?>` + "\n")
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">` + "\n\n")
	for _, d := range desc.Program.Decls {
		if _, ok := d.(*dsl.FuncDecl); ok {
			continue
		}
		writeDeclSchema(&b, desc, d)
	}
	b.WriteString("</xs:schema>\n")
	return b.String()
}

// SchemaFor generates just the complexTypes of one declaration, as the
// paper's excerpt shows for eventSeq.
func SchemaFor(desc *sema.Desc, name string) (string, error) {
	d, ok := desc.Types[name]
	if !ok {
		return "", fmt.Errorf("xmlgen: unknown type %s", name)
	}
	var b strings.Builder
	writeDeclSchema(&b, desc, d)
	return b.String(), nil
}

func xsdBase(kind sema.Kind, name string) string {
	if sema.LookupBase(name) != nil {
		return name // base types keep their PADS names, as in the paper
	}
	switch kind {
	case sema.KUint, sema.KInt:
		return "xs:integer"
	case sema.KFloat:
		return "xs:decimal"
	case sema.KString, sema.KChar, sema.KDate, sema.KIP:
		return "xs:string"
	}
	return name
}

func refTypeName(tr dsl.TypeRef) string { return tr.Name }

func writePDType(b *strings.Builder, name string, array bool) {
	fmt.Fprintf(b, "<xs:complexType name=\"%s_pd\">\n", name)
	b.WriteString("  <xs:sequence>\n")
	b.WriteString("    <xs:element name=\"pstate\" type=\"Pflags_t\"/>\n")
	b.WriteString("    <xs:element name=\"nerr\" type=\"Puint32\"/>\n")
	b.WriteString("    <xs:element name=\"errCode\" type=\"PerrCode_t\"/>\n")
	b.WriteString("    <xs:element name=\"loc\" type=\"Ploc_t\"/>\n")
	if array {
		b.WriteString("    <xs:element name=\"neerr\" type=\"Puint32\"/>\n")
		b.WriteString("    <xs:element name=\"firstError\" type=\"Puint32\"/>\n")
		b.WriteString("    <xs:element name=\"elt\" type=\"Puint32\"\n")
		b.WriteString("        minOccurs=\"0\" maxOccurs=\"unbounded\"/>\n")
	}
	b.WriteString("  </xs:sequence>\n")
	b.WriteString("</xs:complexType>\n\n")
}

func writeDeclSchema(b *strings.Builder, desc *sema.Desc, d dsl.Decl) {
	switch d := d.(type) {
	case *dsl.StructDecl:
		writePDType(b, d.Name, false)
		fmt.Fprintf(b, "<xs:complexType name=\"%s\">\n", d.Name)
		b.WriteString("  <xs:sequence>\n")
		for _, it := range d.Items {
			if it.Field == nil {
				continue
			}
			t := refTypeName(it.Field.Type)
			if it.Field.Type.Opt {
				fmt.Fprintf(b, "    <xs:element name=\"%s\" type=\"%s\" minOccurs=\"0\"/>\n", it.Field.Name, t)
			} else {
				fmt.Fprintf(b, "    <xs:element name=\"%s\" type=\"%s\"/>\n", it.Field.Name, t)
			}
		}
		fmt.Fprintf(b, "    <xs:element name=\"pd\" type=\"%s_pd\"\n        minOccurs=\"0\" maxOccurs=\"1\"/>\n", d.Name)
		b.WriteString("  </xs:sequence>\n")
		b.WriteString("</xs:complexType>\n\n")
	case *dsl.UnionDecl:
		writePDType(b, d.Name, false)
		fmt.Fprintf(b, "<xs:complexType name=\"%s\">\n", d.Name)
		b.WriteString("  <xs:sequence>\n")
		b.WriteString("    <xs:choice>\n")
		branches := d.Branches
		if d.Switch != nil {
			for i := range d.Switch.Cases {
				branches = append(branches, d.Switch.Cases[i].Field)
			}
		}
		for i := range branches {
			fmt.Fprintf(b, "      <xs:element name=\"%s\" type=\"%s\"/>\n", branches[i].Name, refTypeName(branches[i].Type))
		}
		b.WriteString("    </xs:choice>\n")
		fmt.Fprintf(b, "    <xs:element name=\"pd\" type=\"%s_pd\"\n        minOccurs=\"0\" maxOccurs=\"1\"/>\n", d.Name)
		b.WriteString("  </xs:sequence>\n")
		b.WriteString("</xs:complexType>\n\n")
	case *dsl.ArrayDecl:
		writePDType(b, d.Name, true)
		fmt.Fprintf(b, "<xs:complexType name=\"%s\">\n", d.Name)
		b.WriteString("  <xs:sequence>\n")
		fmt.Fprintf(b, "    <xs:element name=\"elt\" type=\"%s\"\n        minOccurs=\"0\" maxOccurs=\"unbounded\"/>\n", refTypeName(d.Elem))
		b.WriteString("    <xs:element name=\"length\" type=\"Puint32\"/>\n")
		fmt.Fprintf(b, "    <xs:element name=\"pd\" type=\"%s_pd\"\n        minOccurs=\"0\" maxOccurs=\"1\"/>\n", d.Name)
		b.WriteString("  </xs:sequence>\n")
		b.WriteString("</xs:complexType>\n\n")
	case *dsl.EnumDecl:
		fmt.Fprintf(b, "<xs:simpleType name=\"%s\">\n", d.Name)
		b.WriteString("  <xs:restriction base=\"xs:string\">\n")
		for _, m := range d.Members {
			fmt.Fprintf(b, "    <xs:enumeration value=\"%s\"/>\n", m.Name)
		}
		b.WriteString("  </xs:restriction>\n")
		b.WriteString("</xs:simpleType>\n\n")
	case *dsl.TypedefDecl:
		under := xsdBase(sema.KTypedef, d.Base.Name)
		fmt.Fprintf(b, "<xs:simpleType name=\"%s\">\n", d.Name)
		fmt.Fprintf(b, "  <xs:restriction base=\"%s\"/>\n", under)
		b.WriteString("</xs:simpleType>\n\n")
	}
}
