package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestStatsMerge(t *testing.T) {
	a := NewStats()
	a.Source.BytesRead = 100
	a.Source.Checkpoints = 3
	a.Source.MaxSpecDepth = 2
	a.FieldError("header.order_num")
	a.UnionChoice("auth_id_t", "id")
	a.Workers = append(a.Workers, WorkerStat{Worker: 0, Records: 10, Bytes: 100, WallNS: 5})

	b := NewStats()
	b.Source.BytesRead = 50
	b.Source.Checkpoints = 1
	b.Source.MaxSpecDepth = 5
	b.FieldError("header.order_num")
	b.FieldError("events")
	b.UnionChoice("auth_id_t", "id")
	b.UnionChoice("auth_id_t", "<none>")
	b.Workers = append(b.Workers, WorkerStat{Worker: 1, Records: 7, Bytes: 50, WallNS: 3})

	a.Merge(b)
	a.Merge(nil) // nil merge is a no-op

	if a.Source.BytesRead != 150 || a.Source.Checkpoints != 4 {
		t.Errorf("merged source counters = %+v", a.Source)
	}
	if a.Source.MaxSpecDepth != 5 {
		t.Errorf("MaxSpecDepth = %d, want max(2,5)=5", a.Source.MaxSpecDepth)
	}
	if a.FieldErrors["header.order_num"] != 2 || a.FieldErrors["events"] != 1 {
		t.Errorf("FieldErrors = %v", a.FieldErrors)
	}
	if a.UnionChoices["auth_id_t.id"] != 2 || a.UnionChoices["auth_id_t.<none>"] != 1 {
		t.Errorf("UnionChoices = %v", a.UnionChoices)
	}
	if len(a.Workers) != 2 || a.Workers[1].Worker != 1 {
		t.Errorf("Workers = %v", a.Workers)
	}
}

func TestStatsWriteText(t *testing.T) {
	s := NewStats()
	s.Source.RecordsBegun = 4
	s.Source.RecordsEnded = 4
	s.Source.InternHits = 9
	s.Source.InternMisses = 1
	s.Source.EORResyncs = 2
	s.Source.EORResyncBytes = 17
	s.FieldError("length")
	s.UnionChoice("u", "a")
	s.Workers = append(s.Workers, WorkerStat{Worker: 0, Records: 4, Bytes: 40, WallNS: 1e6})

	var buf bytes.Buffer
	s.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"begun 4, ended 4",
		"90.0% hit rate",
		"2 skips discarded 17 bytes",
		"length",
		"u.a",
		"worker 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestRingTracerBounded(t *testing.T) {
	tr := NewRingTracer(3)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Ev: EvFieldEnter, Off: int64(i)})
	}
	if got := tr.Emitted(); got != 7 {
		t.Errorf("Emitted = %d, want 7", got)
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("ring retained %d events, want 3", len(events))
	}
	for i, e := range events {
		if want := int64(4 + i); e.Off != want {
			t.Errorf("event %d off = %d, want %d (oldest-first tail)", i, e.Off, want)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("WriteJSONL wrote %d lines, want 3", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil || e.Off != 4 {
		t.Errorf("first JSONL line = %q (err %v)", lines[0], err)
	}
}

func TestStreamTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Ev: EvRecordBegin, Name: "entry_t", Off: 0, Rec: 1})
	tr.Emit(Event{Ev: EvError, Name: "entry_t", Off: 5, Rec: 1, Err: "invalid integer"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("streamed %d lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Ev != EvError || e.Err != "invalid integer" {
		t.Errorf("decoded event = %+v", e)
	}
	if tr.Events() != nil {
		t.Error("streaming tracer should retain nothing")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Ev: EvError}) // must not panic
	if tr.Emitted() != 0 || tr.Events() != nil || tr.Flush() != nil {
		t.Error("nil tracer is not inert")
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	r := &BenchReport{
		Date:    "2026-08-06",
		Go:      "go1.x",
		Records: 2000,
		Bytes:   123456,
	}
	row := BenchRow{Task: "vetting", Prog: "pads", Secs: []float64{0.5, 0.3}}
	FinishRow(&row, r.Bytes)
	if row.Runs != 2 || row.MeanSecs != 0.4 {
		t.Fatalf("FinishRow: %+v", row)
	}
	// Throughput comes from the fastest run (the noise floor), not the mean.
	if got, want := row.BytesPerSec, 123456/0.3; got < want-1 || got > want+1 {
		t.Fatalf("BytesPerSec = %f, want %f", got, want)
	}
	st := NewStats()
	st.Source.RecordsBegun = 2000
	row.Counters = st
	r.Rows = append(r.Rows, row)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != BenchSchema || len(back.Rows) != 1 {
		t.Fatalf("round-trip report: %+v", back)
	}
	if back.Rows[0].Counters == nil || back.Rows[0].Counters.Source.RecordsBegun != 2000 {
		t.Errorf("counters lost in round trip: %+v", back.Rows[0].Counters)
	}

	if _, err := ReadBenchReport([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}
