// Package telemetry is the observability layer of the runtime: mergeable
// counters describing how a parse behaved (buffer pressure, speculation
// churn, intern-cache effectiveness, per-worker utilization), a structured
// JSONL tracer for per-decision parse events, and the machine-readable
// benchmark report emitted by padsbench -json.
//
// The design rule is zero overhead when disabled: every producer holds a
// possibly-nil *Stats or *Tracer and guards each update with a nil check, so
// the uninstrumented hot path pays one predictable branch and no allocation.
// A Stats is written by exactly one goroutine (its Source / interpreter);
// concurrent engines give every worker a private Stats and fold them with
// Merge on the coordinating goroutine (see internal/parallel).
//
// Counter semantics, the trace event schema, and the overhead guarantee are
// documented in docs/OBSERVABILITY.md.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SourceStats counts padsrt.Source activity: the buffer, record, intern, and
// speculation machinery of the runtime cursor.
type SourceStats struct {
	// Buffer pressure.
	BytesRead    uint64 `json:"bytes_read"`    // bytes pulled from the underlying reader
	Fills        uint64 `json:"fills"`         // read calls that grew the window
	Compacts     uint64 `json:"compacts"`      // window compactions (shifts)
	CompactBytes uint64 `json:"compact_bytes"` // bytes copied by compactions

	// Intern cache (string base types; see Source.internString).
	InternHits   uint64 `json:"intern_hits"`
	InternMisses uint64 `json:"intern_misses"`

	// Speculation (Punion / Popt backtracking).
	Checkpoints  uint64 `json:"checkpoints"`    // checkpoints pushed
	Commits      uint64 `json:"commits"`        // checkpoints resolved by Commit
	Restores     uint64 `json:"restores"`       // checkpoints resolved by Restore (backtracks)
	MaxSpecDepth uint64 `json:"max_spec_depth"` // deepest checkpoint nesting observed

	// Records.
	RecordsBegun   uint64 `json:"records_begun"`
	RecordsEnded   uint64 `json:"records_ended"`
	EORResyncs     uint64 `json:"eor_resyncs"`      // SkipToEOR calls that skipped data
	EORResyncBytes uint64 `json:"eor_resync_bytes"` // bytes discarded by those skips

	// Fault tolerance (docs/ROBUSTNESS.md).
	ReadRetries   uint64 `json:"read_retries,omitempty"`      // transient read errors retried
	TruncatedRecs uint64 `json:"truncated_records,omitempty"` // records clamped to MaxRecordLen
}

// add folds o into s, field by field (maxima take the max).
func (s *SourceStats) add(o *SourceStats) {
	s.BytesRead += o.BytesRead
	s.Fills += o.Fills
	s.Compacts += o.Compacts
	s.CompactBytes += o.CompactBytes
	s.InternHits += o.InternHits
	s.InternMisses += o.InternMisses
	s.Checkpoints += o.Checkpoints
	s.Commits += o.Commits
	s.Restores += o.Restores
	if o.MaxSpecDepth > s.MaxSpecDepth {
		s.MaxSpecDepth = o.MaxSpecDepth
	}
	s.RecordsBegun += o.RecordsBegun
	s.RecordsEnded += o.RecordsEnded
	s.EORResyncs += o.EORResyncs
	s.EORResyncBytes += o.EORResyncBytes
	s.ReadRetries += o.ReadRetries
	s.TruncatedRecs += o.TruncatedRecs
}

// FaultStats counts contained failures: faults that were absorbed by the
// degradation machinery instead of killing the run (docs/ROBUSTNESS.md).
type FaultStats struct {
	ChunkFailures uint64 `json:"chunk_failures,omitempty"` // parallel chunk workers that failed (error or panic)
	ChunkRetries  uint64 `json:"chunk_retries,omitempty"`  // failed chunks re-parsed sequentially
	ChunkRescues  uint64 `json:"chunk_rescues,omitempty"`  // sequential re-parses that succeeded
	Quarantined   uint64 `json:"quarantined,omitempty"`    // records written to the dead-letter sink
}

// add folds o into f.
func (f *FaultStats) add(o *FaultStats) {
	f.ChunkFailures += o.ChunkFailures
	f.ChunkRetries += o.ChunkRetries
	f.ChunkRescues += o.ChunkRescues
	f.Quarantined += o.Quarantined
}

// WorkerStat is one worker's share of a parallel run: how many records and
// bytes its chunk held and how long the chunk took wall-clock, so skew
// between workers is visible (internal/parallel).
type WorkerStat struct {
	Worker  int    `json:"worker"` // chunk index, 0-based
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes"`
	WallNS  int64  `json:"wall_ns"`
}

// Wall returns the worker's wall-clock time.
func (w WorkerStat) Wall() time.Duration { return time.Duration(w.WallNS) }

// Stats aggregates every counter family for one parse (or one worker of a
// parallel parse). The zero value is ready to use; maps allocate lazily.
type Stats struct {
	Source SourceStats `json:"source"`

	// FieldErrors tallies parse errors by dotted field path (the
	// interpreter's per-field error accounting; section 5 of the paper makes
	// error behavior observable per field, this makes it countable).
	FieldErrors map[string]uint64 `json:"field_errors,omitempty"`

	// UnionChoices histograms union branch selection, keyed
	// "UnionType.branch" (the no-match case is keyed "UnionType.<none>").
	// Saggitarius-style ambiguity diagnosis starts here: a union whose
	// histogram is spread across branches is doing real speculation work.
	UnionChoices map[string]uint64 `json:"union_choices,omitempty"`

	// Workers holds per-worker utilization rows for parallel runs, in chunk
	// order; empty for sequential parses.
	Workers []WorkerStat `json:"workers,omitempty"`

	// Faults counts contained failures: chunk-level containment in the
	// parallel engine and quarantined (dead-lettered) records.
	Faults FaultStats `json:"faults"`
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{} }

// FieldError tallies one erroneous parse of the field at path.
func (s *Stats) FieldError(path string) {
	if s.FieldErrors == nil {
		s.FieldErrors = make(map[string]uint64)
	}
	s.FieldErrors[path]++
}

// UnionChoice tallies one selection of branch within union.
func (s *Stats) UnionChoice(union, branch string) {
	if s.UnionChoices == nil {
		s.UnionChoices = make(map[string]uint64)
	}
	s.UnionChoices[union+"."+branch]++
}

// Merge folds o into s: counters add, maxima take the max, maps merge, and
// worker rows append. It is how a coordinator combines per-worker Stats; o
// is left untouched.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.Source.add(&o.Source)
	for k, v := range o.FieldErrors {
		if s.FieldErrors == nil {
			s.FieldErrors = make(map[string]uint64)
		}
		s.FieldErrors[k] += v
	}
	for k, v := range o.UnionChoices {
		if s.UnionChoices == nil {
			s.UnionChoices = make(map[string]uint64)
		}
		s.UnionChoices[k] += v
	}
	s.Workers = append(s.Workers, o.Workers...)
	s.Faults.add(&o.Faults)
}

// WriteText renders the human-readable stats block the -stats flag prints.
// Sections with no activity are omitted so small runs stay small.
func (s *Stats) WriteText(w io.Writer) {
	src := &s.Source
	fmt.Fprintf(w, "records        begun %d, ended %d\n", src.RecordsBegun, src.RecordsEnded)
	fmt.Fprintf(w, "buffer         %d bytes read in %d fills; %d compactions copied %d bytes\n",
		src.BytesRead, src.Fills, src.Compacts, src.CompactBytes)
	fmt.Fprintf(w, "speculation    %d checkpoints (%d commits, %d restores), max depth %d\n",
		src.Checkpoints, src.Commits, src.Restores, src.MaxSpecDepth)
	if hits, misses := src.InternHits, src.InternMisses; hits+misses > 0 {
		fmt.Fprintf(w, "intern cache   %d hits, %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	if src.EORResyncs > 0 {
		fmt.Fprintf(w, "panic resync   %d skips discarded %d bytes\n", src.EORResyncs, src.EORResyncBytes)
	}
	if src.ReadRetries+src.TruncatedRecs > 0 {
		fmt.Fprintf(w, "resource guard %d transient reads retried, %d records clamped to the length cap\n",
			src.ReadRetries, src.TruncatedRecs)
	}
	if f := &s.Faults; f.ChunkFailures+f.ChunkRetries+f.Quarantined > 0 {
		fmt.Fprintf(w, "contained      %d chunk failures (%d re-parsed, %d rescued), %d records quarantined\n",
			f.ChunkFailures, f.ChunkRetries, f.ChunkRescues, f.Quarantined)
	}
	if len(s.FieldErrors) > 0 {
		fmt.Fprintf(w, "field errors   (%d paths)\n", len(s.FieldErrors))
		for _, k := range sortedKeys(s.FieldErrors) {
			fmt.Fprintf(w, "  %-28s %d\n", k, s.FieldErrors[k])
		}
	}
	if len(s.UnionChoices) > 0 {
		fmt.Fprintf(w, "union choices  (%d branches)\n", len(s.UnionChoices))
		for _, k := range sortedKeys(s.UnionChoices) {
			fmt.Fprintf(w, "  %-28s %d\n", k, s.UnionChoices[k])
		}
	}
	if len(s.Workers) > 0 {
		fmt.Fprintf(w, "workers        (%d chunks)\n", len(s.Workers))
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "  worker %-3d %10d records %12d bytes %10.3fms\n",
				ws.Worker, ws.Records, ws.Bytes, float64(ws.WallNS)/1e6)
		}
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarshalJSONIndent renders the stats as indented JSON (the counters block
// attached to padsbench -json rows).
func (s *Stats) MarshalJSONIndent() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }
