package telemetry

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRingTracerCloseDrainsPartialWindow(t *testing.T) {
	var buf bytes.Buffer
	tr := NewRingTracerTo(8, &buf)
	// Fewer events than the ring holds: the partial window must still land.
	tr.Emit(Event{Ev: EvRecordBegin, Off: 0, Rec: 1})
	tr.Emit(Event{Ev: EvError, Off: 3, Rec: 1, Err: "truncated"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("Close drained %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "truncated") {
		t.Errorf("final event missing from drained window: %q", lines[1])
	}
	// Idempotent: a second Close must not duplicate the window.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(got) != 2 {
		t.Fatalf("second Close duplicated output: %d lines", len(got))
	}
}

func TestStreamTracerClose(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Ev: EvRecordBegin, Off: 0})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), EvRecordBegin) {
		t.Fatalf("Close did not flush streaming output: %q", buf.String())
	}
	var nilTr *Tracer
	if err := nilTr.Close(); err != nil {
		t.Fatal("nil tracer Close must be a no-op")
	}
}

type collectorFunc func(io.Writer)

func (f collectorFunc) WritePrometheus(w io.Writer) { f(w) }

func TestMetricsHandler(t *testing.T) {
	st := NewStats()
	st.Source.RecordsEnded = 42
	st.FieldError("entry_t.ts")
	st.UnionChoice("dib_ramp_t", "ramp")
	h := NewMetricsHandler(st, nil) // nil collectors are skipped
	h.Register(collectorFunc(func(w io.Writer) { io.WriteString(w, "extra_metric 1\n") }))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE pads_records_ended_total counter",
		"pads_records_ended_total 42",
		`pads_field_errors_total{path="entry_t.ts"} 1`,
		`pads_union_choices_total{branch="dib_ramp_t.ramp"} 1`,
		"extra_metric 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestBenchReportStamps(t *testing.T) {
	r := &BenchReport{
		Date:       "2026-08-07",
		Go:         "go1.x",
		Commit:     "abc1234",
		GOMAXPROCS: 8,
		Host:       "bench-box",
		HotNodes:   []HotNode{{Path: "entry_t.events", Count: 10, SelfNS: 5, CumNS: 9, Bytes: 100}},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Commit != "abc1234" || back.GOMAXPROCS != 8 || back.Host != "bench-box" {
		t.Fatalf("stamps lost: %+v", back)
	}
	if len(back.HotNodes) != 1 || back.HotNodes[0].Path != "entry_t.events" {
		t.Fatalf("hot nodes lost: %+v", back.HotNodes)
	}
	if back.Schema != BenchSchema {
		t.Fatalf("schema = %q", back.Schema)
	}
}
