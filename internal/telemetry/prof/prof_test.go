package prof

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestHistQuantileBounds checks the quantile contract against brute force:
// for random samples the true q-quantile always lies inside the returned
// closed interval.
func TestHistQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		vals := make([]uint64, n)
		var h Hist
		for i := range vals {
			v := uint64(rng.Int63n(1 << uint(1+rng.Intn(40))))
			vals[i] = v
			h.Observe(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(q * float64(n))
			if rank < 1 {
				rank = 1
			}
			want := vals[rank-1]
			lo, hi := h.Quantile(q)
			if want < lo || want > hi {
				t.Fatalf("trial %d q=%g: true quantile %d outside [%d,%d]", trial, q, want, lo, hi)
			}
		}
	}
}

func TestHistMinMaxMean(t *testing.T) {
	var h Hist
	for _, v := range []uint64{10, 2, 30} {
		h.Observe(v)
	}
	if h.Min != 2 || h.Max != 30 || h.N != 3 || h.Sum != 42 {
		t.Fatalf("got min=%d max=%d n=%d sum=%d", h.Min, h.Max, h.N, h.Sum)
	}
	if h.Mean() != 14 {
		t.Fatalf("mean = %g, want 14", h.Mean())
	}
}

// TestHistMergeChunkOrder is the satellite property test: splitting a value
// stream into W contiguous chunks, observing each chunk into a private
// histogram, and folding the workers in chunk order yields a histogram
// byte-identical to the sequential one — for any worker count and any
// (deterministic) random stream.
func TestHistMergeChunkOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		vals := make([]uint64, n)
		var seq Hist
		for i := range vals {
			vals[i] = uint64(rng.Int63n(1 << uint(1+rng.Intn(50))))
			seq.Observe(vals[i])
		}
		for _, workers := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
			per := (n + workers - 1) / workers
			var merged Hist
			for w := 0; w < workers; w++ {
				lo := w * per
				if lo >= n {
					break
				}
				hi := lo + per
				if hi > n {
					hi = n
				}
				var part Hist
				for _, v := range vals[lo:hi] {
					part.Observe(v)
				}
				merged.Merge(&part)
			}
			a, err := json.Marshal(&seq)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(&merged)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("trial %d workers %d: merged histogram differs from sequential", trial, workers)
			}
		}
	}
}

// simRecord drives one record through the profiler with a fixed span shape:
// rec_t { hdr (10 bytes), body { x (5), y (15) } } — 30 bytes total.
func simRecord(p *Profiler, off int64, errored bool) int64 {
	p.BeginRecord("rec_t", off)
	if p.Sampling() {
		p.Enter("hdr", off)
		p.Exit(off+10, false)
		p.Enter("body", off+10)
		p.Enter("x", off+10)
		p.Exit(off+15, false)
		p.Enter("y", off+15)
		p.Exit(off+30, errored)
		p.Exit(off+30, errored)
	}
	p.EndRecord(off+30, errored)
	return off + 30
}

func nodeByPath(t *testing.T, pr *Profile, path string) NodeStat {
	t.Helper()
	for _, st := range pr.Nodes {
		if st.Path == path {
			return st
		}
	}
	t.Fatalf("no node %q in profile (have %d nodes)", path, len(pr.Nodes))
	return NodeStat{}
}

func TestProfilerAttribution(t *testing.T) {
	p := New(Options{AllocEvery: -1})
	var off int64
	for i := 0; i < 100; i++ {
		off = simRecord(p, off, i%10 == 0)
	}
	pr := p.Snapshot()
	if pr.Records != 100 || pr.Sampled != 100 || pr.Errored != 10 {
		t.Fatalf("records=%d sampled=%d errored=%d", pr.Records, pr.Sampled, pr.Errored)
	}
	if pr.Bytes != 3000 {
		t.Fatalf("bytes = %d, want 3000", pr.Bytes)
	}

	rec := nodeByPath(t, pr, "rec_t")
	if rec.Count != 100 || rec.CumBytes != 3000 {
		t.Fatalf("rec_t: count=%d cumBytes=%d", rec.Count, rec.CumBytes)
	}
	// rec_t consumed nothing itself: hdr took 10, body took 20.
	if rec.SelfBytes != 0 {
		t.Fatalf("rec_t selfBytes = %d, want 0", rec.SelfBytes)
	}
	hdr := nodeByPath(t, pr, "rec_t.hdr")
	if hdr.Count != 100 || hdr.CumBytes != 1000 || hdr.SelfBytes != 1000 {
		t.Fatalf("hdr: %+v", hdr)
	}
	body := nodeByPath(t, pr, "rec_t.body")
	if body.CumBytes != 2000 || body.SelfBytes != 0 {
		t.Fatalf("body: %+v", body)
	}
	y := nodeByPath(t, pr, "rec_t.body.y")
	if y.CumBytes != 1500 || y.Errors != 10 {
		t.Fatalf("y: %+v", y)
	}
	// Wall-time conservation: every node's self time sums to at most the
	// root's cumulative time, and the root's cum equals the attributed total.
	var selfSum int64
	for _, st := range pr.Nodes {
		selfSum += st.SelfNS
	}
	if selfSum > rec.CumNS {
		t.Fatalf("self sum %d exceeds root cum %d", selfSum, rec.CumNS)
	}
	if pr.AttributedNS != rec.CumNS {
		t.Fatalf("attributed %d != root cum %d", pr.AttributedNS, rec.CumNS)
	}
	if pr.RecLat.N != 100 || pr.RecSize.N != 100 {
		t.Fatalf("hist counts: lat=%d size=%d", pr.RecLat.N, pr.RecSize.N)
	}
	if lo, hi := pr.RecSize.Quantile(0.5); lo != 30 || hi != 30 {
		t.Fatalf("size p50 = [%d,%d], want [30,30]", lo, hi)
	}
}

// TestProfilerSpeculative checks union-branch accounting: a failed branch's
// speculative bytes land on the branch node but not the parent.
func TestProfilerSpeculative(t *testing.T) {
	p := New(Options{AllocEvery: -1})
	p.BeginRecord("u_t", 0)
	p.Enter("ramp", 0)
	p.ExitSpeculative(40) // tried 40 bytes, backtracked
	p.Enter("genRamp", 0)
	p.Exit(25, false)
	p.EndRecord(25, false)
	pr := p.Snapshot()

	ramp := nodeByPath(t, pr, "u_t.ramp")
	if ramp.CumBytes != 40 || ramp.Errors != 1 {
		t.Fatalf("ramp: %+v", ramp)
	}
	gen := nodeByPath(t, pr, "u_t.genRamp")
	if gen.CumBytes != 25 || gen.Errors != 0 {
		t.Fatalf("genRamp: %+v", gen)
	}
	root := nodeByPath(t, pr, "u_t")
	// Only the committed branch's bytes flow to the record: 25 total, 0 self.
	if root.CumBytes != 25 || root.SelfBytes != 0 {
		t.Fatalf("u_t: %+v", root)
	}
}

func TestProfilerSampling(t *testing.T) {
	p := New(Options{Every: 4, AllocEvery: -1})
	var off int64
	for i := 0; i < 100; i++ {
		off = simRecord(p, off, false)
	}
	pr := p.Snapshot()
	if pr.Records != 100 || pr.Sampled != 25 {
		t.Fatalf("records=%d sampled=%d, want 100/25", pr.Records, pr.Sampled)
	}
	// Unsampled records still feed the size histogram and byte totals.
	if pr.RecSize.N != 100 || pr.Bytes != 3000 {
		t.Fatalf("size n=%d bytes=%d", pr.RecSize.N, pr.Bytes)
	}
	if pr.RecLat.N != 25 {
		t.Fatalf("latency n=%d, want 25", pr.RecLat.N)
	}
	if got := nodeByPath(t, pr, "rec_t").Count; got != 25 {
		t.Fatalf("rec_t count = %d, want 25", got)
	}
	if s := pr.Scale(); s != 4 {
		t.Fatalf("scale = %g, want 4", s)
	}
}

// TestProfilerMergeDeterministic checks that the deterministic fields of a
// merged profile — node counts/bytes/errors and both histograms — match the
// sequential profile for several worker counts, and that merging is
// insensitive to which worker saw which chunk shape.
func TestProfilerMergeDeterministic(t *testing.T) {
	run := func(workers int) *Profile {
		parent := New(Options{AllocEvery: -1})
		per := 100 / workers
		var off int64
		for w := 0; w < workers; w++ {
			wp := parent.NewWorker()
			n := per
			if w == workers-1 {
				n = 100 - per*(workers-1)
			}
			for i := 0; i < n; i++ {
				off = simRecord(wp, off, (int(off)/30)%10 == 0)
			}
			parent.Merge(wp)
		}
		return parent.Snapshot()
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.Records != seq.Records || got.Errored != seq.Errored || got.Bytes != seq.Bytes {
			t.Fatalf("workers=%d: totals differ", workers)
		}
		a, _ := json.Marshal(&seq.RecSize)
		b, _ := json.Marshal(&got.RecSize)
		if !bytes.Equal(a, b) {
			t.Fatalf("workers=%d: record-size histogram differs from sequential", workers)
		}
		if len(got.Nodes) != len(seq.Nodes) {
			t.Fatalf("workers=%d: node count %d != %d", workers, len(got.Nodes), len(seq.Nodes))
		}
		for _, want := range seq.Nodes {
			st := nodeByPath(t, got, want.Path)
			if st.Count != want.Count || st.CumBytes != want.CumBytes || st.Errors != want.Errors {
				t.Fatalf("workers=%d node %s: count/bytes/errors differ: %+v vs %+v",
					workers, want.Path, st, want)
			}
		}
	}
}

func TestProfileOutputs(t *testing.T) {
	p := New(Options{AllocEvery: -1})
	var off int64
	for i := 0; i < 10; i++ {
		off = simRecord(p, off, i == 3)
	}
	pr := p.Snapshot()

	var table bytes.Buffer
	pr.WriteTable(&table)
	for _, want := range []string{"records   10 parsed", "rec_t.body.y", "latency", "size"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, table.String())
		}
	}

	var folded bytes.Buffer
	pr.WriteFolded(&folded)
	found := false
	for _, line := range strings.Split(strings.TrimSpace(folded.String()), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Fatalf("folded line %q is not 'stack count'", line)
		}
		if strings.HasPrefix(line, "rec_t;body;y ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rec_t;body;y stack in folded output:\n%s", folded.String())
	}

	var prom bytes.Buffer
	pr.WritePrometheus(&prom)
	for _, want := range []string{
		"# TYPE pads_profile_records_total counter",
		"pads_profile_records_total 10",
		`pads_profile_node_self_seconds_total{path="rec_t.body.y"}`,
		"# TYPE pads_profile_record_latency_seconds histogram",
		"pads_profile_record_size_bytes_bucket{le=\"+Inf\"} 10",
		"pads_profile_record_size_bytes_count 10",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}
}

func TestProgressRender(t *testing.T) {
	pr := NewProgress(1 << 20)
	pr.Add(512, false)
	pr.Add(512, true)
	pr.SetHot("rec_t.body.y")
	line := pr.render()
	for _, want := range []string{"2 records", "err 50.00%", "hot rec_t.body.y", "ETA"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line missing %q: %s", want, line)
		}
	}
	var buf bytes.Buffer
	pr.Start(&buf, time.Millisecond)
	pr.Stop()
	pr.Stop() // idempotent
	if !strings.Contains(buf.String(), "2 records") {
		t.Fatalf("no final line written: %q", buf.String())
	}
}
