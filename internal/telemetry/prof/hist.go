package prof

import (
	"fmt"
	"io"
	"math/bits"
)

// Hist is a log-bucketed histogram of non-negative integer observations
// (record parse latencies in nanoseconds, record sizes in bytes). Bucket i
// holds the values whose binary magnitude is i — bucket 0 holds exactly the
// value 0, and bucket i (i >= 1) covers the closed range [2^(i-1), 2^i - 1] —
// so every bucket has exact, data-independent bounds and a quantile query can
// return a hard interval rather than an estimate.
//
// A Hist is a plain value: observing and merging are pure counter arithmetic,
// so merging per-worker histograms is commutative and associative — folding
// them in chunk order (internal/parallel) yields a histogram identical to the
// sequential run's, at any worker count. The zero value is empty and ready.
type Hist struct {
	N       uint64     `json:"n"`
	Sum     uint64     `json:"sum"`
	Min     uint64     `json:"min"` // valid only when N > 0
	Max     uint64     `json:"max"`
	Buckets [65]uint64 `json:"buckets"` // Buckets[bits.Len64(v)] counts v
}

// Observe adds one value.
func (h *Hist) Observe(v uint64) {
	if h.N == 0 {
		h.Min, h.Max = v, v
	} else if v < h.Min {
		h.Min = v
	} else if v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Merge folds o into h. Merging is commutative, so any fold order over a set
// of per-worker histograms produces the same result.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.N == 0 {
		return
	}
	if h.N == 0 {
		h.Min, h.Max = o.Min, o.Max
	} else {
		if o.Min < h.Min {
			h.Min = o.Min
		}
		if o.Max > h.Max {
			h.Max = o.Max
		}
	}
	h.N += o.N
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// bucketBounds returns the exact closed range bucket i covers.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, (uint64(1) << i) - 1
}

// Quantile returns exact bounds on the q-quantile (0 < q <= 1): the true
// q-quantile of the observed values lies in the closed interval [lo, hi].
// The interval is the covering bucket's range tightened by the observed
// Min/Max. Returns (0, 0) on an empty histogram.
func (h *Hist) Quantile(q float64) (lo, hi uint64) {
	if h.N == 0 {
		return 0, 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the q-quantile in the sorted sample.
	rank := uint64(q * float64(h.N))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		if cum >= rank {
			lo, hi = bucketBounds(i)
			if lo < h.Min {
				lo = h.Min
			}
			if hi > h.Max {
				hi = h.Max
			}
			return lo, hi
		}
	}
	return h.Max, h.Max // unreachable: cum reaches N
}

// writePromHistogram renders the histogram in Prometheus text exposition
// format (cumulative le buckets), scaling each bound by 1/scaleDiv — pass
// 1e9 to expose nanosecond observations in seconds, 1 for plain units.
func (h *Hist) writePromHistogram(w io.Writer, name string, scaleDiv float64) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i := range h.Buckets {
		if h.Buckets[i] == 0 {
			continue
		}
		cum += h.Buckets[i]
		_, hi := bucketBounds(i)
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(hi)/scaleDiv, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.Sum)/scaleDiv)
	fmt.Fprintf(w, "%s_count %d\n", name, h.N)
}
