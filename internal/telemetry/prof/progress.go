package prof

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live ticker behind the -progress flag: a concurrency-safe
// sink of byte/record/error counts that periodically renders a one-line
// status (bytes/sec, ETA against a known total, error rate, current hottest
// node) over itself with a carriage return. Producers — one Profiler per
// worker in a parallel parse — only touch atomics; the rendering goroutine
// owns the writer.
type Progress struct {
	total   int64 // input size in bytes, <= 0 when unknown (no ETA)
	start   time.Time
	bytes   atomic.Uint64
	records atomic.Uint64
	errors  atomic.Uint64
	hot     atomic.Value // string: current hottest node path

	mu      sync.Mutex
	w       io.Writer
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewProgress builds a progress sink. totalBytes enables the ETA column;
// pass <= 0 when the input size is unknown (stdin).
func NewProgress(totalBytes int64) *Progress {
	return &Progress{total: totalBytes, start: time.Now()}
}

// Add records size bytes of one more parsed record.
func (pr *Progress) Add(size uint64, errored bool) {
	pr.bytes.Add(size)
	pr.records.Add(1)
	if errored {
		pr.errors.Add(1)
	}
}

// SetHot publishes the current hottest node path.
func (pr *Progress) SetHot(path string) { pr.hot.Store(path) }

// Start begins rendering to w every interval until Stop. Rendering uses
// carriage returns, so w should be a terminal-ish stream (stderr).
func (pr *Progress) Start(w io.Writer, interval time.Duration) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.started {
		return
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	pr.started = true
	pr.w = w
	pr.stop = make(chan struct{})
	pr.done = make(chan struct{})
	go func() {
		defer close(pr.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-pr.stop:
				return
			case <-t.C:
				fmt.Fprintf(pr.w, "\r%-110s", pr.render())
			}
		}
	}()
}

// Stop halts the ticker and prints a final status line (with a trailing
// newline so subsequent output starts clean). Safe to call more than once.
func (pr *Progress) Stop() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if !pr.started {
		return
	}
	pr.started = false
	close(pr.stop)
	<-pr.done
	fmt.Fprintf(pr.w, "\r%-110s\n", pr.render())
}

// render builds the status line from the current counters.
func (pr *Progress) render() string {
	elapsed := time.Since(pr.start)
	bytes := pr.bytes.Load()
	records := pr.records.Load()
	errors := pr.errors.Load()
	rate := float64(bytes) / elapsed.Seconds()
	line := fmt.Sprintf("%s  %s/s  %d records", humanBytes(bytes), humanBytes(uint64(rate)), records)
	if records > 0 {
		line += fmt.Sprintf("  err %.2f%%", 100*float64(errors)/float64(records))
	}
	if pr.total > 0 && rate > 0 {
		remain := pr.total - int64(bytes)
		if remain < 0 {
			remain = 0
		}
		eta := time.Duration(float64(remain) / rate * float64(time.Second))
		line += fmt.Sprintf("  ETA %s", eta.Round(time.Second))
	}
	if hot, _ := pr.hot.Load().(string); hot != "" {
		line += "  hot " + hot
	}
	return line
}
