// Package prof is the parse-path profiler: it attributes wall time, bytes
// consumed, heap allocation, and error counts to description AST node paths
// — struct fields, union branches (including failed speculative attempts),
// and array elements — answering "where does my parse spend its time" the
// way the accumulators of the paper answer "what does my data look like".
//
// The profiler follows the telemetry package's zero-overhead-when-disabled
// discipline: every producer holds a possibly-nil *Profiler and guards each
// hook with a nil check, so the unprofiled hot path pays one predictable
// branch and no allocation (the interp alloc-regression test pins this).
// When enabled, the profiler samples whole records — 1 in Every records gets
// per-node timing; the rest pay a few counter increments at the record
// boundary — so cost scales with the sampling rate, not the input.
//
// A Profiler is single-goroutine, like telemetry.Stats: parallel parses give
// every chunk worker a private Profiler (internal/parallel) and fold them
// with Merge on the coordinating goroutine in chunk order. All merged
// quantities are commutative integer sums, maxima, or histogram bucket
// counts, so the deterministic parts of a merged profile (counts, bytes,
// errors, record-size histogram) are identical to a sequential run's at any
// worker count.
package prof

import (
	"fmt"
	"io"
	"runtime/metrics"
	"sort"
	"strings"
	"time"

	"pads/internal/telemetry"
)

// NodeStat is the attribution record of one description node path.
type NodeStat struct {
	Path   string `json:"path"`
	Count  uint64 `json:"count"`            // sampled parses of this node
	Errors uint64 `json:"errors,omitempty"` // sampled parses that erred (incl. backtracked branches)
	SelfNS int64  `json:"self_ns"`          // wall time minus profiled children
	CumNS  int64  `json:"cum_ns"`           // wall time including children

	// SelfBytes/CumBytes count input consumed. A backtracked union branch's
	// speculative bytes are charged to the branch node but not to its
	// parent's children (the cursor restored), so a parent's self bytes
	// reflect what it really kept.
	SelfBytes uint64 `json:"self_bytes"`
	CumBytes  uint64 `json:"cum_bytes"`

	// AllocObjs/AllocBytes estimate heap allocation attributed to record
	// roots: allocation counters are read on a subsample of sampled records
	// (Options.AllocEvery) and scaled up at snapshot time.
	AllocObjs  uint64 `json:"alloc_objs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// add folds o into s (all fields are commutative sums).
func (s *NodeStat) add(o *NodeStat) {
	s.Count += o.Count
	s.Errors += o.Errors
	s.SelfNS += o.SelfNS
	s.CumNS += o.CumNS
	s.SelfBytes += o.SelfBytes
	s.CumBytes += o.CumBytes
	s.AllocObjs += o.AllocObjs
	s.AllocBytes += o.AllocBytes
}

// Options configures a Profiler.
type Options struct {
	// Every samples 1 in Every records for per-node attribution; <= 0 means
	// 1 (profile every record). Unsampled records still contribute to the
	// record counts, the size histogram, and the progress ticker.
	Every int
	// AllocEvery reads heap-allocation counters around 1 in AllocEvery
	// *sampled* records (runtime/metrics is cheap but not free); 0 means
	// the default of 64, < 0 disables allocation attribution.
	AllocEvery int
	// Progress, when non-nil, receives live byte/record/error counts (and
	// periodic hot-node updates) from every record boundary; workers of a
	// parallel run share the parent's Progress through NewWorker.
	Progress *Progress
}

// node is one interned path element: a (parent, segment) pair. Parents are
// always interned before their children, so node indices are topologically
// ordered — Merge relies on this.
type node struct {
	parent int32
	seg    string
}

type nodeKey struct {
	parent int32
	seg    string
}

// frame is one open node span on the profiler's stack.
type frame struct {
	node       int32
	start      time.Time
	startByte  int64
	childNS    int64
	childBytes int64
}

const (
	allocObjsMetric  = "/gc/heap/allocs:objects"
	allocBytesMetric = "/gc/heap/allocs:bytes"
)

// Profiler accumulates per-node attribution for one parse (or one worker of
// a parallel parse). It is written by exactly one goroutine; the hooks are
// called by the interpreter at record, field, branch, and element
// boundaries. The zero overhead contract: callers guard every hook behind a
// nil check, and on unsampled records only BeginRecord/EndRecord run, doing
// a handful of integer updates and no allocation.
type Profiler struct {
	opts  Options
	every uint64

	// Record-boundary state.
	seen     uint64 // records begun
	sampling bool   // current record is sampled
	recStart int64  // byte offset of the current record's start

	// Node table and open spans (sampled records only).
	nodes    []node
	index    map[nodeKey]int32
	stats    []NodeStat // parallel to nodes; Path left empty until snapshot
	pathMemo []string   // parallel to nodes; lazily built dotted paths
	stack    []frame

	// Totals.
	records uint64 // records completed
	sampled uint64
	errored uint64
	bytes   uint64
	t0, t1  time.Time // first sampled record begin .. last sampled record end

	recLat  Hist // per-record parse latency, ns (sampled records)
	recSize Hist // per-record size, bytes (all records)

	// Allocation subsampling.
	allocEvery   uint64
	allocSampled uint64
	allocRec     bool
	allocObjs0   uint64
	allocBytes0  uint64
	allocSamples [2]metrics.Sample

	progress *Progress
}

// New builds a Profiler.
func New(o Options) *Profiler {
	every := o.Every
	if every <= 0 {
		every = 1
	}
	allocEvery := o.AllocEvery
	if allocEvery == 0 {
		allocEvery = 64
	}
	if allocEvery < 0 {
		allocEvery = 0
	}
	p := &Profiler{
		opts:       o,
		every:      uint64(every),
		allocEvery: uint64(allocEvery),
		index:      make(map[nodeKey]int32),
		stack:      make([]frame, 0, 32),
		progress:   o.Progress,
	}
	p.allocSamples[0].Name = allocObjsMetric
	p.allocSamples[1].Name = allocBytesMetric
	return p
}

// NewWorker builds a fresh Profiler with the same configuration, sharing
// the parent's Progress sink — the per-chunk profiler of a parallel run.
// Fold it back with Merge on the coordinating goroutine.
func (p *Profiler) NewWorker() *Profiler { return New(p.opts) }

// Sampling reports whether the current record is being profiled; the
// interpreter guards Enter/Exit pairs with it so span hooks cost nothing on
// unsampled records.
func (p *Profiler) Sampling() bool { return p != nil && p.sampling }

// nodeFor interns (parent, seg), returning its id.
func (p *Profiler) nodeFor(parent int32, seg string) int32 {
	k := nodeKey{parent: parent, seg: seg}
	if id, ok := p.index[k]; ok {
		return id
	}
	id := int32(len(p.nodes))
	p.nodes = append(p.nodes, node{parent: parent, seg: seg})
	p.stats = append(p.stats, NodeStat{})
	p.pathMemo = append(p.pathMemo, "")
	p.index[k] = id
	return id
}

// path materializes the dotted path of a node, memoized.
func (p *Profiler) path(id int32) string {
	if p.pathMemo[id] != "" {
		return p.pathMemo[id]
	}
	n := p.nodes[id]
	s := n.seg
	if n.parent >= 0 {
		s = p.path(n.parent) + "." + n.seg
	}
	p.pathMemo[id] = s
	return s
}

// segsOf returns the path elements of a node, root first.
func (p *Profiler) segsOf(id int32) []string {
	var segs []string
	for i := id; i >= 0; i = p.nodes[i].parent {
		segs = append(segs, p.nodes[i].seg)
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// BeginRecord opens a record span rooted at the record type's name and
// decides whether this record is sampled. Unsampled records pay only this
// decision.
func (p *Profiler) BeginRecord(typeName string, off int64) {
	p.seen++
	p.recStart = off
	p.sampling = p.seen%p.every == 0
	if !p.sampling {
		return
	}
	p.sampled++
	if p.allocEvery > 0 && p.sampled%p.allocEvery == 0 {
		p.allocRec = true
		p.allocSampled++
		metrics.Read(p.allocSamples[:])
		p.allocObjs0 = p.allocSamples[0].Value.Uint64()
		p.allocBytes0 = p.allocSamples[1].Value.Uint64()
	}
	id := p.nodeFor(-1, typeName)
	now := time.Now()
	if p.t0.IsZero() {
		p.t0 = now
	}
	p.stack = append(p.stack, frame{node: id, start: now, startByte: off})
}

// EndRecord closes the record span and folds the sampled attribution into
// the node table — the commit boundary where all per-record bookkeeping
// lands, keeping everything else off the unsampled path.
func (p *Profiler) EndRecord(off int64, errored bool) {
	p.records++
	size := off - p.recStart
	if size < 0 {
		size = 0
	}
	p.bytes += uint64(size)
	p.recSize.Observe(uint64(size))
	if errored {
		p.errored++
	}
	if p.progress != nil {
		p.progress.Add(uint64(size), errored)
	}
	if !p.sampling {
		return
	}
	p.sampling = false
	// Defensive: close any span an unbalanced caller left open so the
	// record frame is on top.
	for len(p.stack) > 1 {
		p.pop(off, errored, false)
	}
	if len(p.stack) == 0 {
		return
	}
	start, rootID := p.stack[0].start, p.stack[0].node
	p.pop(off, errored, false)
	now := time.Now()
	p.t1 = now
	p.recLat.Observe(uint64(now.Sub(start).Nanoseconds()))
	if p.allocRec {
		p.allocRec = false
		metrics.Read(p.allocSamples[:])
		st := &p.stats[rootID]
		st.AllocObjs += p.allocSamples[0].Value.Uint64() - p.allocObjs0
		st.AllocBytes += p.allocSamples[1].Value.Uint64() - p.allocBytes0
	}
	if p.progress != nil && p.sampled&0x3f == 1 {
		p.noteHot()
	}
}

// Enter opens a child span under the current node. Callers must guard with
// Sampling() — the pair discipline is: remember whether Enter ran, and call
// Exit only then, so spans stay balanced even when a record boundary opens
// or closes between the two.
func (p *Profiler) Enter(seg string, off int64) {
	id := p.nodeFor(p.stack[len(p.stack)-1].node, seg)
	p.stack = append(p.stack, frame{node: id, start: time.Now(), startByte: off})
}

// Exit closes the innermost span, attributing its elapsed time and consumed
// bytes.
func (p *Profiler) Exit(off int64, errored bool) { p.pop(off, errored, false) }

// ExitSpeculative closes the innermost span for a union branch that failed
// and backtracked: the attempt's time and bytes are charged to the branch
// node (and its time to the parent), but the speculative bytes do not count
// toward the parent's consumption — the cursor restored them.
func (p *Profiler) ExitSpeculative(off int64) { p.pop(off, true, true) }

func (p *Profiler) pop(off int64, errored, speculative bool) {
	i := len(p.stack) - 1
	f := &p.stack[i]
	el := time.Since(f.start).Nanoseconds()
	nbytes := off - f.startByte
	if nbytes < 0 {
		nbytes = 0
	}
	st := &p.stats[f.node]
	st.Count++
	if errored {
		st.Errors++
	}
	st.CumNS += el
	if self := el - f.childNS; self > 0 {
		st.SelfNS += self
	}
	st.CumBytes += uint64(nbytes)
	if selfB := nbytes - f.childBytes; selfB > 0 {
		st.SelfBytes += uint64(selfB)
	}
	p.stack = p.stack[:i]
	if i > 0 {
		parent := &p.stack[i-1]
		parent.childNS += el
		if !speculative {
			parent.childBytes += nbytes
		}
	}
}

// noteHot publishes the current hottest node to the progress ticker.
func (p *Profiler) noteHot() {
	best, bestNS := int32(-1), int64(0)
	for i := range p.stats {
		if p.stats[i].SelfNS > bestNS {
			best, bestNS = int32(i), p.stats[i].SelfNS
		}
	}
	if best >= 0 {
		p.progress.SetHot(p.path(best))
	}
}

// Merge folds worker o into p: node stats unify by path, counters add,
// histograms merge bucket-wise, and the wall window widens. Like
// telemetry.Stats.Merge it runs on the coordinating goroutine, in chunk
// order; because every merged quantity is commutative, the deterministic
// fields of the result do not depend on the fold order or worker count. o
// is left untouched.
func (p *Profiler) Merge(o *Profiler) {
	if o == nil {
		return
	}
	remap := make([]int32, len(o.nodes))
	for i, n := range o.nodes {
		parent := int32(-1)
		if n.parent >= 0 {
			parent = remap[n.parent]
		}
		remap[i] = p.nodeFor(parent, n.seg)
	}
	for i := range o.stats {
		p.stats[remap[i]].add(&o.stats[i])
	}
	p.seen += o.seen
	p.records += o.records
	p.sampled += o.sampled
	p.allocSampled += o.allocSampled
	p.errored += o.errored
	p.bytes += o.bytes
	p.recLat.Merge(&o.recLat)
	p.recSize.Merge(&o.recSize)
	if p.t0.IsZero() || (!o.t0.IsZero() && o.t0.Before(p.t0)) {
		p.t0 = o.t0
	}
	if o.t1.After(p.t1) {
		p.t1 = o.t1
	}
}

// Profile is an immutable snapshot of a Profiler, ready for reporting.
type Profile struct {
	Records      uint64     `json:"records"`
	Sampled      uint64     `json:"sampled"`
	Errored      uint64     `json:"errored"`
	Bytes        uint64     `json:"bytes"`
	WallNS       int64      `json:"wall_ns"`       // first sampled record begin -> last sampled record end
	AttributedNS int64      `json:"attributed_ns"` // sum of record-root cumulative time (unscaled)
	Nodes        []NodeStat `json:"nodes"`         // sorted by self time desc, then path
	RecLat       Hist       `json:"record_latency_ns"`
	RecSize      Hist       `json:"record_size_bytes"`

	segs [][]string // path elements per node, for folded output
}

// Snapshot renders the profiler's current state. Call it after the parse
// (and after merging workers); it does not modify the profiler.
func (p *Profiler) Snapshot() *Profile {
	pr := &Profile{
		Records: p.records,
		Sampled: p.sampled,
		Errored: p.errored,
		Bytes:   p.bytes,
		RecLat:  p.recLat,
		RecSize: p.recSize,
	}
	if !p.t0.IsZero() {
		pr.WallNS = p.t1.Sub(p.t0).Nanoseconds()
	}
	// Scale subsampled allocation measurements up to sampled-record scale.
	allocScale := 0.0
	if p.allocSampled > 0 {
		allocScale = float64(p.sampled) / float64(p.allocSampled)
	}
	type row struct {
		st   NodeStat
		segs []string
	}
	rows := make([]row, 0, len(p.stats))
	for i := range p.stats {
		if p.stats[i].Count == 0 {
			continue
		}
		st := p.stats[i]
		st.Path = p.path(int32(i))
		st.AllocObjs = uint64(float64(st.AllocObjs) * allocScale)
		st.AllocBytes = uint64(float64(st.AllocBytes) * allocScale)
		if p.nodes[i].parent < 0 {
			pr.AttributedNS += st.CumNS
		}
		rows = append(rows, row{st: st, segs: p.segsOf(int32(i))})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].st.SelfNS != rows[j].st.SelfNS {
			return rows[i].st.SelfNS > rows[j].st.SelfNS
		}
		return rows[i].st.Path < rows[j].st.Path
	})
	pr.Nodes = make([]NodeStat, len(rows))
	pr.segs = make([][]string, len(rows))
	for i, r := range rows {
		pr.Nodes[i] = r.st
		pr.segs[i] = r.segs
	}
	return pr
}

// Scale is the sampling expansion factor: multiply sampled quantities by it
// to estimate whole-run totals (1 when every record was sampled).
func (pr *Profile) Scale() float64 {
	if pr.Sampled == 0 {
		return 0
	}
	return float64(pr.Records) / float64(pr.Sampled)
}

// AttributedFrac estimates the fraction of the profiled wall window
// attributed to description nodes (scaled for sampling; 0 when nothing was
// sampled).
func (pr *Profile) AttributedFrac() float64 {
	if pr.WallNS <= 0 {
		return 0
	}
	return float64(pr.AttributedNS) * pr.Scale() / float64(pr.WallNS)
}

// HotNodes returns the top-n nodes by self time in report form.
func (pr *Profile) HotNodes(n int) []telemetry.HotNode {
	if n > len(pr.Nodes) {
		n = len(pr.Nodes)
	}
	out := make([]telemetry.HotNode, 0, n)
	for _, st := range pr.Nodes[:n] {
		out = append(out, telemetry.HotNode{
			Path:   st.Path,
			Count:  st.Count,
			Errors: st.Errors,
			SelfNS: st.SelfNS,
			CumNS:  st.CumNS,
			Bytes:  st.CumBytes,
		})
	}
	return out
}

// WriteTable renders the human -profile report: a header with attribution
// coverage and latency/size quantile bounds, then one row per node sorted by
// self time.
func (pr *Profile) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "records   %d parsed (%d sampled), %d errored, %s\n",
		pr.Records, pr.Sampled, pr.Errored, humanBytes(pr.Bytes))
	if pr.WallNS > 0 {
		fmt.Fprintf(w, "wall      %s profiled, %.1f%% attributed to %d description nodes\n",
			time.Duration(pr.WallNS), 100*pr.AttributedFrac(), len(pr.Nodes))
	}
	if pr.RecLat.N > 0 {
		fmt.Fprintf(w, "latency   %s  mean %s\n", quantileBounds(&pr.RecLat, durationBound), time.Duration(int64(pr.RecLat.Mean())))
	}
	if pr.RecSize.N > 0 {
		fmt.Fprintf(w, "size      %s  mean %s\n", quantileBounds(&pr.RecSize, byteBound), humanBytes(uint64(pr.RecSize.Mean())))
	}
	if len(pr.Nodes) == 0 {
		return
	}
	fmt.Fprintf(w, "%12s %12s %10s %10s %6s  %s\n", "self", "cum", "count", "bytes", "errs", "path")
	for _, st := range pr.Nodes {
		fmt.Fprintf(w, "%12s %12s %10d %10s %6d  %s\n",
			time.Duration(st.SelfNS), time.Duration(st.CumNS), st.Count,
			humanBytes(st.CumBytes), st.Errors, st.Path)
	}
}

// WriteFolded emits folded-stack lines — "root;child;leaf selfNS" — the
// input format of flamegraph tools (flamegraph.pl, inferno, speedscope).
func (pr *Profile) WriteFolded(w io.Writer) {
	for i, st := range pr.Nodes {
		fmt.Fprintf(w, "%s %d\n", strings.Join(pr.segs[i], ";"), st.SelfNS)
	}
}

// WritePrometheus renders the profile in Prometheus text exposition format;
// it satisfies telemetry.Collector so a Profile registers directly with
// telemetry.MetricsHandler.
func (pr *Profile) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# TYPE pads_profile_records_total counter\npads_profile_records_total %d\n", pr.Records)
	fmt.Fprintf(w, "# TYPE pads_profile_records_errored_total counter\npads_profile_records_errored_total %d\n", pr.Errored)
	fmt.Fprintf(w, "# TYPE pads_profile_bytes_total counter\npads_profile_bytes_total %d\n", pr.Bytes)
	if len(pr.Nodes) > 0 {
		fmt.Fprintln(w, "# TYPE pads_profile_node_self_seconds_total counter")
		for _, st := range pr.Nodes {
			fmt.Fprintf(w, "pads_profile_node_self_seconds_total{path=%q} %g\n", st.Path, float64(st.SelfNS)/1e9)
		}
		fmt.Fprintln(w, "# TYPE pads_profile_node_bytes_total counter")
		for _, st := range pr.Nodes {
			fmt.Fprintf(w, "pads_profile_node_bytes_total{path=%q} %d\n", st.Path, st.CumBytes)
		}
		fmt.Fprintln(w, "# TYPE pads_profile_node_errors_total counter")
		for _, st := range pr.Nodes {
			fmt.Fprintf(w, "pads_profile_node_errors_total{path=%q} %d\n", st.Path, st.Errors)
		}
	}
	pr.RecLat.writePromHistogram(w, "pads_profile_record_latency_seconds", 1e9)
	pr.RecSize.writePromHistogram(w, "pads_profile_record_size_bytes", 1)
}

// quantileBounds renders p50/p90/p99 interval bounds of a histogram.
func quantileBounds(h *Hist, bound func(uint64) string) string {
	var b strings.Builder
	for _, q := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
		lo, hi := h.Quantile(q.q)
		if b.Len() > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s [%s,%s]", q.name, bound(lo), bound(hi))
	}
	return b.String()
}

func durationBound(v uint64) string { return time.Duration(v).String() }

func byteBound(v uint64) string { return humanBytes(v) }

// humanBytes renders a byte count with a binary-ish human unit.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
