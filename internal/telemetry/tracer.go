package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event kinds emitted by the interpreter. The set is deliberately small and
// flat: one JSONL line per parsing decision, so traces grep and join well.
const (
	EvRecordBegin     = "record_begin"     // a record window opened
	EvRecordEnd       = "record_end"       // a record window closed
	EvFieldEnter      = "field_enter"      // a struct field parse started
	EvFieldExit       = "field_exit"       // a struct field parse finished (Err set on failure)
	EvBranchAttempt   = "branch_attempt"   // a union branch speculation started
	EvBranchBacktrack = "branch_backtrack" // the branch failed and the cursor restored
	EvBranchSelect    = "branch_select"    // the branch matched and committed
	EvError           = "error"            // a structural error outside field scope (literal, panic resync, no branch)
)

// Event is one structured trace record. Offsets are absolute byte offsets in
// the input (rebased offsets for sharded sources, so a parallel trace lines
// up with the file); Rec is the 1-based record number.
type Event struct {
	Ev     string `json:"ev"`
	Name   string `json:"name,omitempty"`   // type, dotted field path, or union name
	Branch string `json:"branch,omitempty"` // union branch name
	Off    int64  `json:"off"`              // byte offset where the event begins
	End    int64  `json:"end,omitempty"`    // byte offset where the span ends (exit/backtrack events)
	Rec    int    `json:"rec,omitempty"`    // 1-based record number
	Err    string `json:"err,omitempty"`    // error description for failures
}

// Tracer collects Events, either streaming them as JSONL to a writer or
// retaining only the most recent ones in a bounded ring — the mode that makes
// tracing a multi-gigabyte source safe: memory stays O(ring), and the tail of
// the trace (usually where the interesting failure is) survives.
//
// A Tracer is safe for concurrent use; sharded parses (internal/parallel)
// share one tracer, so events from different workers interleave but each is
// internally consistent (rebased offsets and record numbers).
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer // nil in ring-only mode
	enc     *json.Encoder
	ring    []Event   // bounded retention; nil when unbounded streaming
	out     io.Writer // ring mode: where Close drains the retained window
	next    int       // ring write cursor
	wrapped bool
	closed  bool
	emitted uint64
}

// NewTracer streams every event to w as one JSON object per line.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// NewRingTracer retains only the last n events in memory (n must be > 0);
// read them back with Events or WriteJSONL.
func NewRingTracer(n int) *Tracer {
	if n <= 0 {
		n = 1
	}
	return &Tracer{ring: make([]Event, n)}
}

// NewRingTracerTo is NewRingTracer with an owned output: Close drains the
// retained window to w. Binding the destination at construction means the
// final (possibly partial) window reaches the trace file on every exit path
// that closes the tracer — clean EOF, error budget stop, or fault-truncated
// input — not just the paths that remember to call WriteJSONL.
func NewRingTracerTo(n int, w io.Writer) *Tracer {
	t := NewRingTracer(n)
	t.out = w
	return t
}

// Emit records one event. On a nil Tracer it is a no-op, so call sites can
// thread a possibly-nil tracer without guarding (the interpreter still
// guards, to skip building the event at all).
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitted++
	if t.ring != nil {
		t.ring[t.next] = e
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
			t.wrapped = true
		}
		return
	}
	t.enc.Encode(e)
}

// Emitted reports how many events the tracer has seen (including any that a
// bounded ring has since evicted).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Events returns the retained events, oldest first. In streaming mode it
// returns nil: the events have already been written out.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSONL writes the retained ring events to w as JSONL (no-op in
// streaming mode, where events were written as they happened).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Flush forces buffered streaming output to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return nil
	}
	return t.w.Flush()
}

// Close finalizes the tracer: in ring mode with an owned output
// (NewRingTracerTo) it drains the retained — possibly partial — window to
// that output; in streaming mode it flushes. Close is idempotent: the first
// call writes, later calls are no-ops, so defensive defers on error paths
// cannot duplicate the window.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	out := t.out
	t.mu.Unlock()
	if t.ring != nil && out != nil {
		return t.WriteJSONL(out)
	}
	return t.Flush()
}
