package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchSchema identifies the padsbench -json report format. Bump it when a
// field changes meaning, so trajectory tooling reading BENCH_*.json files can
// tell generations apart.
const BenchSchema = "pads-bench/v1"

// BenchRow is one (task, program) timing row of a benchmark report.
type BenchRow struct {
	Task     string    `json:"task"` // vetting, selection, count
	Prog     string    `json:"prog"` // pads, perl, go-port, pads-parN
	Runs     int       `json:"runs"`
	Secs     []float64 `json:"secs"` // per-run wall seconds
	MeanSecs float64   `json:"mean_secs"`
	// BytesPerSec is derived from the fastest run, not the mean: a
	// CPU-bound parse has a well-defined noise floor, and on shared
	// hardware the slower runs measure scheduler interference, not the
	// program. The full per-run list stays in Secs for spread analysis.
	BytesPerSec float64 `json:"bytes_per_sec"`
	// AllocsPerRun and AllocBytesPerRun are heap-allocation deltas measured
	// around the in-process runs (0 for subprocess rows like perl).
	AllocsPerRun     uint64 `json:"allocs_per_run,omitempty"`
	AllocBytesPerRun uint64 `json:"alloc_bytes_per_run,omitempty"`
	// Counters holds the runtime telemetry of one instrumented pass of the
	// program (pads rows only): the -stats counters in machine-readable form.
	Counters *Stats `json:"counters,omitempty"`
}

// HotNode is one entry of a profiler hot list: the cost attributed to one
// description node path, in report form. The profiler (telemetry/prof)
// produces these; the bench report and Prometheus surface carry them.
type HotNode struct {
	Path   string `json:"path"`
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors,omitempty"`
	SelfNS int64  `json:"self_ns"`
	CumNS  int64  `json:"cum_ns"`
	Bytes  uint64 `json:"bytes"`
}

// BenchReport is the machine-readable output of padsbench -json, and the
// row format of the committed BENCH_*.json trajectory files written by
// scripts/bench.sh. The environment stamps (Commit, GOMAXPROCS, Host) make
// trajectory points attributable: a throughput shift can be tied to a code
// change versus a machine change. All post-v1 additions are new optional
// fields — the schema tag stays pads-bench/v1 because no existing field
// changed meaning, so older BENCH_*.json files still validate.
type BenchReport struct {
	Schema     string     `json:"schema"` // always BenchSchema
	Date       string     `json:"date"`   // YYYY-MM-DD of the run
	Go         string     `json:"go"`     // runtime.Version()
	Commit     string     `json:"commit,omitempty"`
	GOMAXPROCS int        `json:"gomaxprocs,omitempty"`
	Host       string     `json:"host,omitempty"`
	Records    int        `json:"records"`
	Bytes      int64      `json:"bytes"`
	Workers    int        `json:"workers,omitempty"` // parallel rows present when > 1
	Rows       []BenchRow `json:"rows"`
	// HotNodes is the profiler's per-node hot list from one instrumented
	// pass of the interpreter (top nodes by self time).
	HotNodes []HotNode `json:"hot_nodes,omitempty"`
}

// FinishRow fills the derived fields of a row from its raw samples.
func FinishRow(r *BenchRow, bytes int64) {
	r.Runs = len(r.Secs)
	var total, best float64
	for _, s := range r.Secs {
		total += s
		if best == 0 || s < best {
			best = s
		}
	}
	if r.Runs > 0 {
		r.MeanSecs = total / float64(r.Runs)
	}
	if best > 0 {
		r.BytesPerSec = float64(bytes) / best
	}
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = BenchSchema
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// ReadBenchReport parses a report and validates its schema tag.
func ReadBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("telemetry: bench report schema %q, want %q", r.Schema, BenchSchema)
	}
	return &r, nil
}
