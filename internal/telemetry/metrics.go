package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Collector is anything that can render itself in Prometheus text exposition
// format (version 0.0.4). Stats implements it here; the profiler's Profile
// (telemetry/prof) implements it too — the interface is satisfied
// structurally, so the child package needs no registration hook.
type Collector interface {
	WritePrometheus(w io.Writer)
}

// MetricsHandler is an http.Handler serving the Prometheus text exposition
// of a set of collectors: the metrics endpoint a long-running parse service
// (the padsd of ROADMAP item 3) mounts at /metrics. Register is safe to call
// while the handler is serving, so a parse can attach its Stats or Profile
// mid-flight; collectors render in registration order.
type MetricsHandler struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewMetricsHandler builds a handler over an initial collector set (nil
// entries are skipped).
func NewMetricsHandler(cs ...Collector) *MetricsHandler {
	h := &MetricsHandler{}
	for _, c := range cs {
		h.Register(c)
	}
	return h
}

// Register appends a collector to the exposition.
func (h *MetricsHandler) Register(c Collector) {
	if c == nil {
		return
	}
	h.mu.Lock()
	h.collectors = append(h.collectors, c)
	h.mu.Unlock()
}

// ServeHTTP renders every registered collector.
func (h *MetricsHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	cs := append([]Collector(nil), h.collectors...)
	h.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, c := range cs {
		c.WritePrometheus(w)
	}
}

// WritePrometheus renders the stats counters as Prometheus metrics. Callers
// must not mutate s concurrently (snapshot or merge first); label values are
// the same dotted paths the -stats block prints.
func (s *Stats) WritePrometheus(w io.Writer) {
	src := &s.Source
	counter := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	counter("pads_source_bytes_read_total", src.BytesRead)
	counter("pads_source_fills_total", src.Fills)
	counter("pads_source_compactions_total", src.Compacts)
	counter("pads_records_begun_total", src.RecordsBegun)
	counter("pads_records_ended_total", src.RecordsEnded)
	counter("pads_speculation_checkpoints_total", src.Checkpoints)
	counter("pads_speculation_commits_total", src.Commits)
	counter("pads_speculation_restores_total", src.Restores)
	counter("pads_eor_resyncs_total", src.EORResyncs)
	counter("pads_read_retries_total", src.ReadRetries)
	counter("pads_chunk_failures_total", s.Faults.ChunkFailures)
	counter("pads_chunk_rescues_total", s.Faults.ChunkRescues)
	counter("pads_quarantined_records_total", s.Faults.Quarantined)
	if len(s.FieldErrors) > 0 {
		fmt.Fprintln(w, "# TYPE pads_field_errors_total counter")
		for _, k := range sortedKeys(s.FieldErrors) {
			fmt.Fprintf(w, "pads_field_errors_total{path=%q} %d\n", k, s.FieldErrors[k])
		}
	}
	if len(s.UnionChoices) > 0 {
		fmt.Fprintln(w, "# TYPE pads_union_choices_total counter")
		for _, k := range sortedKeys(s.UnionChoices) {
			fmt.Fprintf(w, "pads_union_choices_total{branch=%q} %d\n", k, s.UnionChoices[k])
		}
	}
}
