package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pads/internal/dsl"
	"pads/internal/sema"
	"pads/internal/value"
)

func evaluator(t *testing.T, src string) *Evaluator {
	t.Helper()
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return New(desc)
}

// evalStr parses and evaluates one expression in an empty description.
func evalStr(t *testing.T, src string, env *Env) (V, error) {
	t.Helper()
	ev := evaluator(t, "Pstruct dummy_t { Puint8 x; };")
	e, errs := dsl.ParseExprString(src)
	if len(errs) > 0 {
		t.Fatalf("parse expr: %v", errs[0])
	}
	if env == nil {
		env = NewEnv(nil)
	}
	return ev.Eval(e, env)
}

func TestArithmeticAndComparison(t *testing.T) {
	cases := map[string]V{
		"1 + 2 * 3":       Int(7),
		"(1 + 2) * 3":     Int(9),
		"10 / 3":          Int(3),
		"10 % 3":          Int(1),
		"-5 + 2":          Int(-3),
		"1 < 2":           Bool(true),
		"2 <= 2":          Bool(true),
		"3 != 3":          Bool(false),
		"'a' < 'b'":       Bool(true),
		`"abc" == "abc"`:  Bool(true),
		`"abc" < "abd"`:   Bool(true),
		"true && false":   Bool(false),
		"true || false":   Bool(true),
		"!false":          Bool(true),
		"1 < 2 ? 10 : 20": Int(10),
		"2.5 + 1.5":       Float(4),
		"1 + 2.5":         Float(3.5),
		"10.0 / 4":        Float(2.5),
		`"x" == 'x'`:      Bool(true),
	}
	for src, want := range cases {
		got, err := evalStr(t, src, nil)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if got.K != want.K || got.I != want.I || got.B != want.B || got.F != want.F {
			t.Errorf("%s = %+v, want %+v", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{
		"1 / 0",
		"1 % 0",
		"nosuchvar",
		"nosuchfn(1)",
		`"a" + 1`,
		"!5",
		"5 && true",
		`"a" < 5`,
	}
	for _, src := range cases {
		if _, err := evalStr(t, src, nil); err == nil {
			t.Errorf("%s: expected an error", src)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// division by zero there must not surface.
	got, err := evalStr(t, "false && 1 / 0 == 1", nil)
	if err != nil || got.B {
		t.Errorf("short-circuit && failed: %+v, %v", got, err)
	}
	got, err = evalStr(t, "true || 1 / 0 == 1", nil)
	if err != nil || !got.B {
		t.Errorf("short-circuit || failed: %+v, %v", got, err)
	}
}

func TestForallExists(t *testing.T) {
	arr := &value.Array{}
	for _, v := range []uint64{2, 4, 6} {
		arr.Elems = append(arr.Elems, &value.Uint{Val: v})
	}
	env := NewEnv(nil)
	env.Bind("elts", FromValue(arr))
	env.Bind("length", Int(3))

	ev := evaluator(t, "Pstruct dummy_t { Puint8 x; };")
	run := func(src string) bool {
		e, errs := dsl.ParseExprString(src)
		if len(errs) > 0 {
			t.Fatalf("%s: %v", src, errs[0])
		}
		b, err := ev.EvalPred(e, env)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return b
	}
	if !run("Pforall (i Pin [0..length-1] : elts[i] % 2 == 0)") {
		t.Error("all-even forall failed")
	}
	if run("Pforall (i Pin [0..length-1] : elts[i] > 2)") {
		t.Error("forall over 2,4,6 > 2 should fail")
	}
	if !run("Pexists (i Pin [0..length-1] : elts[i] == 4)") {
		t.Error("exists 4 failed")
	}
	if run("Pexists (i Pin [0..length-1] : elts[i] == 5)") {
		t.Error("exists 5 should fail")
	}
	// Empty range: forall vacuously true, exists false.
	if !run("Pforall (i Pin [0..-1] : false)") {
		t.Error("vacuous forall")
	}
	if run("Pexists (i Pin [0..-1] : true)") {
		t.Error("vacuous exists")
	}
}

func TestFunctionSemantics(t *testing.T) {
	ev := evaluator(t, `
Puint32 clampTo(Puint32 x, Puint32 hi) {
  Puint32 y = x;
  if (y > hi) y = hi;
  return y;
};
bool recursiveish(Puint32 n) {
  if (n == 0) return true;
  return recursiveish(n - 1);
};
Pstruct dummy_t { Puint8 x; };
`)
	eval := func(src string) (V, error) {
		e, errs := dsl.ParseExprString(src)
		if len(errs) > 0 {
			t.Fatalf("%s: %v", src, errs[0])
		}
		return ev.Eval(e, NewEnv(nil))
	}
	v, err := eval("clampTo(500, 100)")
	if err != nil || v.I != 100 {
		t.Errorf("clampTo = %+v, %v", v, err)
	}
	v, err = eval("recursiveish(50)")
	if err != nil || !v.B {
		t.Errorf("recursion = %+v, %v", v, err)
	}
	// Depth guard trips on runaway recursion.
	if _, err = eval("recursiveish(1000)"); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("depth guard missing: %v", err)
	}
}

func TestFieldAndBranchSelection(t *testing.T) {
	inner := &value.Struct{Names: []string{"a"}, Fields: []value.Value{&value.Uint{Val: 7}}}
	un := &value.Union{Tag: "left", Val: &value.Uint{Val: 3}}
	env := NewEnv(nil)
	env.Bind("s", FromValue(inner))
	env.Bind("u", FromValue(un))

	ev := evaluator(t, "Pstruct dummy_t { Puint8 x; };")
	eval := func(src string) (V, error) {
		e, _ := dsl.ParseExprString(src)
		return ev.Eval(e, env)
	}
	v, err := eval("s.a + 1")
	if err != nil || v.I != 8 {
		t.Errorf("s.a+1 = %+v, %v", v, err)
	}
	v, err = eval("u.left")
	if err != nil || v.U != 3 {
		t.Errorf("u.left = %+v, %v", v, err)
	}
	// Selecting the untaken branch is an evaluation error (a failed
	// constraint), not a fabricated value.
	if _, err = eval("u.right"); err == nil {
		t.Error("untaken branch selection succeeded")
	}
	if _, err = eval("s.nope"); err == nil {
		t.Error("missing field selection succeeded")
	}
}

func TestOptSemantics(t *testing.T) {
	present := &value.Opt{Present: true, Val: &value.Uint{Val: 5}}
	absent := &value.Opt{Present: false}
	env := NewEnv(nil)
	env.Bind("p", FromValue(present))
	env.Bind("a", FromValue(absent))
	ev := evaluator(t, "Pstruct dummy_t { Puint8 x; };")
	eval := func(src string) (V, error) {
		e, _ := dsl.ParseExprString(src)
		return ev.Eval(e, env)
	}
	v, err := eval("p + 1")
	if err != nil || v.I != 6 {
		t.Errorf("present opt = %+v, %v", v, err)
	}
	if _, err := eval("a + 1"); err == nil {
		t.Error("arithmetic on an absent optional succeeded")
	}
}

func TestLargeUnsigned(t *testing.T) {
	env := NewEnv(nil)
	env.Bind("big", Uint(math.MaxUint64))
	env.Bind("big2", Uint(math.MaxUint64-1))
	ev := evaluator(t, "Pstruct dummy_t { Puint8 x; };")
	eval := func(src string) (V, error) {
		e, _ := dsl.ParseExprString(src)
		return ev.Eval(e, env)
	}
	v, err := eval("big > 0")
	if err != nil || !v.B {
		t.Errorf("big > 0 = %+v, %v", v, err)
	}
	v, err = eval("big > big2")
	if err != nil || !v.B {
		t.Errorf("big > big2 = %+v, %v", v, err)
	}
	v, err = eval("big == big")
	if err != nil || !v.B {
		t.Errorf("big == big = %+v, %v", v, err)
	}
	// Arithmetic overflows the signed domain and reports an error rather
	// than silently wrapping.
	if _, err = eval("big + 1"); err == nil {
		t.Error("overflowing arithmetic succeeded")
	}
}

// Property: compare is antisymmetric and consistent with EqualV for ints.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		c1, err1 := compare(va, vb, dsl.Pos{})
		c2, err2 := compare(vb, va, dsl.Pos{})
		if err1 != nil || err2 != nil {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == EqualV(va, vb) && (c1 == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnumComparisons(t *testing.T) {
	ev := evaluator(t, `
Penum m_t { GET, PUT, POST };
Pstruct dummy_t { Puint8 x; };
`)
	env := NewEnv(nil)
	env.Bind("m", V{K: sema.KEnum, I: 1, S: "PUT", EnumType: "m_t"})
	eval := func(src string) (V, error) {
		e, _ := dsl.ParseExprString(src)
		return ev.Eval(e, env)
	}
	v, err := eval("m == PUT")
	if err != nil || !v.B {
		t.Errorf("m == PUT: %+v, %v", v, err)
	}
	v, err = eval("m == GET")
	if err != nil || v.B {
		t.Errorf("m == GET: %+v, %v", v, err)
	}
	v, err = eval(`m == "PUT"`)
	if err != nil || !v.B {
		t.Errorf("m == \"PUT\": %+v, %v", v, err)
	}
	// Ordering follows declaration order.
	v, err = eval("m > GET")
	if err != nil || !v.B {
		t.Errorf("m > GET: %+v, %v", v, err)
	}
}

func TestEnvScoping(t *testing.T) {
	outer := NewEnv(nil)
	outer.Bind("x", Int(1))
	inner := NewEnv(outer)
	inner.Bind("x", Int(2))
	if v, _ := inner.Lookup("x"); v.I != 2 {
		t.Error("inner binding not shadowing")
	}
	if v, _ := outer.Lookup("x"); v.I != 1 {
		t.Error("outer binding clobbered")
	}
	if !inner.set("x", Int(3)) {
		t.Error("set failed")
	}
	if v, _ := inner.Lookup("x"); v.I != 3 {
		t.Error("set did not take")
	}
	if v, _ := outer.Lookup("x"); v.I != 1 {
		t.Error("set crossed scopes")
	}
	if _, ok := inner.Lookup("missing"); ok {
		t.Error("phantom binding")
	}
}
