// Package expr evaluates the PADS expression sub-language over parsed
// values: field constraints, Pwhere clauses, switched-union selectors, array
// termination predicates, and the bodies of C-like predicate functions such
// as chkVersion in Figure 4 of the paper.
package expr

import (
	"fmt"
	"math"

	"pads/internal/dsl"
	"pads/internal/sema"
	"pads/internal/value"
)

// V is a dynamic expression value.
type V struct {
	K sema.Kind
	B bool
	I int64  // KInt, KChar, KDate, KEnum (index)
	U uint64 // KUint, KIP
	F float64
	S string // KString; member name for KEnum
	// EnumType names the enumeration a KEnum value belongs to.
	EnumType string
	// Ref holds compound values (struct/union/array/opt).
	Ref value.Value
}

// Convenience constructors.
func Bool(b bool) V     { return V{K: sema.KBool, B: b} }
func Int(i int64) V     { return V{K: sema.KInt, I: i} }
func Uint(u uint64) V   { return V{K: sema.KUint, U: u} }
func Float(f float64) V { return V{K: sema.KFloat, F: f} }
func Char(c byte) V     { return V{K: sema.KChar, I: int64(c)} }
func Str(s string) V    { return V{K: sema.KString, S: s} }

// FromValue converts a parsed value into an expression value. Absent
// optionals become KVoid; using one in arithmetic is an evaluation error
// (and therefore a failed constraint).
func FromValue(v value.Value) V {
	switch v := v.(type) {
	case *value.Uint:
		return V{K: sema.KUint, U: v.Val}
	case *value.Int:
		return V{K: sema.KInt, I: v.Val}
	case *value.Float:
		return V{K: sema.KFloat, F: v.Val}
	case *value.Char:
		return V{K: sema.KChar, I: int64(v.Val)}
	case *value.Str:
		return V{K: sema.KString, S: v.Val}
	case *value.Date:
		return V{K: sema.KDate, I: v.Sec}
	case *value.IP:
		return V{K: sema.KIP, U: uint64(v.Val)}
	case *value.Enum:
		return V{K: sema.KEnum, I: int64(v.Index), S: v.Member, EnumType: v.TypeName()}
	case *value.Opt:
		if v.Present {
			return FromValue(v.Val)
		}
		return V{K: sema.KVoid}
	case *value.Union:
		return V{K: sema.KUnion, Ref: v}
	case *value.Struct:
		return V{K: sema.KStruct, Ref: v}
	case *value.Array:
		return V{K: sema.KArray, Ref: v}
	case *value.Void:
		return V{K: sema.KVoid}
	}
	return V{K: sema.KInvalid}
}

// Env is a chain of variable scopes.
type Env struct {
	vars   map[string]V
	parent *Env
}

// NewEnv creates a scope nested in parent (which may be nil).
func NewEnv(parent *Env) *Env { return &Env{vars: make(map[string]V), parent: parent} }

// Bind sets a variable in this scope.
func (e *Env) Bind(name string, v V) { e.vars[name] = v }

// Lookup finds a variable in the scope chain.
func (e *Env) Lookup(name string) (V, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return V{}, false
}

// set assigns to an existing binding wherever it lives in the chain.
func (e *Env) set(name string, v V) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return true
		}
	}
	return false
}

// Evaluator evaluates expressions against a checked description (needed for
// enum literals and function calls).
type Evaluator struct {
	Desc  *sema.Desc
	depth int
}

// New builds an evaluator for the description.
func New(desc *sema.Desc) *Evaluator { return &Evaluator{Desc: desc} }

const (
	maxCallDepth  = 100
	maxQuantRange = 1 << 24
)

func evalErr(pos dsl.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

// EvalPred evaluates a boolean predicate; evaluation errors (absent
// optionals, missing union branches) make the predicate false and surface
// the error for diagnostics.
func (ev *Evaluator) EvalPred(x dsl.Expr, env *Env) (bool, error) {
	v, err := ev.Eval(x, env)
	if err != nil {
		return false, err
	}
	if v.K != sema.KBool {
		return false, evalErr(x.ExprPos(), "predicate is not boolean")
	}
	return v.B, nil
}

// Eval evaluates an expression.
func (ev *Evaluator) Eval(x dsl.Expr, env *Env) (V, error) {
	switch x := x.(type) {
	case *dsl.IntExpr:
		return Int(x.Val), nil
	case *dsl.FloatExpr:
		return Float(x.Val), nil
	case *dsl.CharExpr:
		return Char(x.Val), nil
	case *dsl.StrExpr:
		return Str(x.Val), nil
	case *dsl.BoolExpr:
		return Bool(x.Val), nil
	case *dsl.RegexpExpr:
		return Str(x.Src), nil
	case *dsl.EORExpr, *dsl.EOFExpr:
		return V{K: sema.KVoid}, nil
	case *dsl.IdentExpr:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		if en, ok := ev.Desc.EnumOf[x.Name]; ok {
			return V{K: sema.KEnum, I: int64(ev.Desc.EnumIndex[x.Name]), S: x.Name, EnumType: en.Name}, nil
		}
		return V{}, evalErr(x.Pos, "undefined variable %s", x.Name)
	case *dsl.CallExpr:
		return ev.call(x, env)
	case *dsl.DotExpr:
		recv, err := ev.Eval(x.X, env)
		if err != nil {
			return V{}, err
		}
		return ev.selectField(recv, x.Field, x.Pos)
	case *dsl.IndexExpr:
		recv, err := ev.Eval(x.X, env)
		if err != nil {
			return V{}, err
		}
		idx, err := ev.Eval(x.Index, env)
		if err != nil {
			return V{}, err
		}
		i, err := toInt(idx, x.Index.ExprPos())
		if err != nil {
			return V{}, err
		}
		arr, ok := recv.Ref.(*value.Array)
		if !ok {
			return V{}, evalErr(x.Pos, "cannot index a non-array value")
		}
		if i < 0 || i >= int64(len(arr.Elems)) {
			return V{}, evalErr(x.Pos, "index %d out of range [0..%d)", i, len(arr.Elems))
		}
		return FromValue(arr.Elems[i]), nil
	case *dsl.UnaryExpr:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return V{}, err
		}
		if x.Op == dsl.NOT {
			if v.K != sema.KBool {
				return V{}, evalErr(x.Pos, "! applied to a non-boolean")
			}
			return Bool(!v.B), nil
		}
		switch v.K {
		case sema.KFloat:
			return Float(-v.F), nil
		default:
			i, err := toInt(v, x.Pos)
			if err != nil {
				return V{}, err
			}
			return Int(-i), nil
		}
	case *dsl.BinaryExpr:
		return ev.binary(x, env)
	case *dsl.CondExpr:
		c, err := ev.Eval(x.Cond, env)
		if err != nil {
			return V{}, err
		}
		if c.K != sema.KBool {
			return V{}, evalErr(x.Pos, "condition is not boolean")
		}
		if c.B {
			return ev.Eval(x.Then, env)
		}
		return ev.Eval(x.Else, env)
	case *dsl.ForallExpr:
		lo, err := ev.Eval(x.Lo, env)
		if err != nil {
			return V{}, err
		}
		hi, err := ev.Eval(x.Hi, env)
		if err != nil {
			return V{}, err
		}
		loI, err := toInt(lo, x.Lo.ExprPos())
		if err != nil {
			return V{}, err
		}
		hiI, err := toInt(hi, x.Hi.ExprPos())
		if err != nil {
			return V{}, err
		}
		if hiI-loI > maxQuantRange {
			return V{}, evalErr(x.Pos, "quantifier range too large (%d elements)", hiI-loI+1)
		}
		be := NewEnv(env)
		for i := loI; i <= hiI; i++ {
			be.Bind(x.Var, Int(i))
			b, err := ev.Eval(x.Body, be)
			if err != nil {
				return V{}, err
			}
			if b.K != sema.KBool {
				return V{}, evalErr(x.Pos, "quantifier body is not boolean")
			}
			if x.Exists && b.B {
				return Bool(true), nil
			}
			if !x.Exists && !b.B {
				return Bool(false), nil
			}
		}
		return Bool(!x.Exists), nil
	}
	return V{}, evalErr(x.ExprPos(), "unsupported expression")
}

// selectField reads a struct field or union branch. Selecting a branch that
// was not taken is an evaluation error, so constraints over the wrong branch
// fail rather than fabricate values.
func (ev *Evaluator) selectField(recv V, field string, pos dsl.Pos) (V, error) {
	switch r := recv.Ref.(type) {
	case *value.Struct:
		if f := r.Field(field); f != nil {
			return FromValue(f), nil
		}
		return V{}, evalErr(pos, "%s has no field %s", r.TypeName(), field)
	case *value.Union:
		if r.Tag == field {
			return FromValue(r.Val), nil
		}
		return V{}, evalErr(pos, "union %s holds branch %s, not %s", r.TypeName(), r.Tag, field)
	}
	return V{}, evalErr(pos, "cannot select field %s of a non-compound value", field)
}

func (ev *Evaluator) call(x *dsl.CallExpr, env *Env) (V, error) {
	fn, ok := ev.Desc.Funcs[x.Func]
	if !ok {
		return V{}, evalErr(x.Pos, "undefined function %s", x.Func)
	}
	if len(x.Args) != len(fn.Params) {
		return V{}, evalErr(x.Pos, "%s expects %d argument(s), got %d", x.Func, len(fn.Params), len(x.Args))
	}
	if ev.depth >= maxCallDepth {
		return V{}, evalErr(x.Pos, "call depth limit exceeded in %s", x.Func)
	}
	fe := NewEnv(nil)
	for i, a := range x.Args {
		v, err := ev.Eval(a, env)
		if err != nil {
			return V{}, err
		}
		fe.Bind(fn.Params[i].Name, v)
	}
	ev.depth++
	ret, returned, err := ev.execStmts(fn.Body, fe)
	ev.depth--
	if err != nil {
		return V{}, err
	}
	if !returned {
		return V{}, evalErr(fn.Pos, "function %s returned no value", fn.Name)
	}
	return ret, nil
}

func (ev *Evaluator) execStmts(stmts []dsl.Stmt, env *Env) (V, bool, error) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *dsl.VarStmt:
			v, err := ev.Eval(s.Init, env)
			if err != nil {
				return V{}, false, err
			}
			env.Bind(s.Name, v)
		case *dsl.AssignStmt:
			v, err := ev.Eval(s.Val, env)
			if err != nil {
				return V{}, false, err
			}
			if !env.set(s.Name, v) {
				return V{}, false, evalErr(s.Pos, "assignment to undefined variable %s", s.Name)
			}
		case *dsl.IfStmt:
			c, err := ev.Eval(s.Cond, env)
			if err != nil {
				return V{}, false, err
			}
			if c.K != sema.KBool {
				return V{}, false, evalErr(s.Pos, "if condition is not boolean")
			}
			body := s.Then
			if !c.B {
				body = s.Else
			}
			v, returned, err := ev.execStmts(body, NewEnv(env))
			if err != nil || returned {
				return v, returned, err
			}
		case *dsl.ReturnStmt:
			v, err := ev.Eval(s.Val, env)
			return v, true, err
		case *dsl.ExprStmt:
			if _, err := ev.Eval(s.X, env); err != nil {
				return V{}, false, err
			}
		}
	}
	return V{}, false, nil
}

func (ev *Evaluator) binary(x *dsl.BinaryExpr, env *Env) (V, error) {
	// Short-circuit logical operators.
	if x.Op == dsl.ANDAND || x.Op == dsl.OROR {
		l, err := ev.Eval(x.L, env)
		if err != nil {
			return V{}, err
		}
		if l.K != sema.KBool {
			return V{}, evalErr(x.Pos, "logical operand is not boolean")
		}
		if x.Op == dsl.ANDAND && !l.B {
			return Bool(false), nil
		}
		if x.Op == dsl.OROR && l.B {
			return Bool(true), nil
		}
		r, err := ev.Eval(x.R, env)
		if err != nil {
			return V{}, err
		}
		if r.K != sema.KBool {
			return V{}, evalErr(x.Pos, "logical operand is not boolean")
		}
		return Bool(r.B), nil
	}

	l, err := ev.Eval(x.L, env)
	if err != nil {
		return V{}, err
	}
	r, err := ev.Eval(x.R, env)
	if err != nil {
		return V{}, err
	}

	switch x.Op {
	case dsl.EQ, dsl.NE, dsl.LT, dsl.LE, dsl.GT, dsl.GE:
		c, err := compare(l, r, x.Pos)
		if err != nil {
			return V{}, err
		}
		switch x.Op {
		case dsl.EQ:
			return Bool(c == 0), nil
		case dsl.NE:
			return Bool(c != 0), nil
		case dsl.LT:
			return Bool(c < 0), nil
		case dsl.LE:
			return Bool(c <= 0), nil
		case dsl.GT:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case dsl.PLUS, dsl.MINUS, dsl.STAR, dsl.SLASH, dsl.PERCENT:
		return arith(x.Op, l, r, x.Pos)
	}
	return V{}, evalErr(x.Pos, "unsupported operator %s", x.Op)
}

// ToInt converts a numeric V to int64 (exported for the interpreter's size
// and width arguments).
func ToInt(v V) (int64, error) { return toInt(v, dsl.Pos{}) }

// EqualV reports whether two values compare equal, for switched-union case
// dispatch. Incomparable values are unequal.
func EqualV(a, b V) bool {
	c, err := compare(a, b, dsl.Pos{})
	return err == nil && c == 0
}

// toInt converts a numeric V to int64.
func toInt(v V, pos dsl.Pos) (int64, error) {
	switch v.K {
	case sema.KInt, sema.KChar, sema.KDate, sema.KEnum:
		return v.I, nil
	case sema.KUint, sema.KIP:
		if v.U > math.MaxInt64 {
			return 0, evalErr(pos, "unsigned value %d overflows arithmetic", v.U)
		}
		return int64(v.U), nil
	case sema.KFloat:
		return int64(v.F), nil
	case sema.KVoid:
		return 0, evalErr(pos, "value is not present")
	}
	return 0, evalErr(pos, "value is not numeric")
}

func isNumeric(v V) bool {
	switch v.K {
	case sema.KInt, sema.KUint, sema.KChar, sema.KDate, sema.KEnum, sema.KIP, sema.KFloat:
		return true
	}
	return false
}

// compare returns -1, 0, or +1.
func compare(l, r V, pos dsl.Pos) (int, error) {
	// String-family comparisons (strings and chars interoperate).
	if l.K == sema.KString || r.K == sema.KString {
		ls, lok := asString(l)
		rs, rok := asString(r)
		if lok && rok {
			switch {
			case ls < rs:
				return -1, nil
			case ls > rs:
				return 1, nil
			default:
				return 0, nil
			}
		}
		// Enum vs string compares the member name.
		if l.K == sema.KEnum && rok {
			return cmpStr(l.S, rs), nil
		}
		if r.K == sema.KEnum && lok {
			return cmpStr(ls, r.S), nil
		}
		return 0, evalErr(pos, "cannot compare %v with %v", l.K, r.K)
	}
	if l.K == sema.KBool && r.K == sema.KBool {
		if l.B == r.B {
			return 0, nil
		}
		if !l.B {
			return -1, nil
		}
		return 1, nil
	}
	if !isNumeric(l) || !isNumeric(r) {
		return 0, evalErr(pos, "cannot compare %v with %v", l.K, r.K)
	}
	if l.K == sema.KFloat || r.K == sema.KFloat {
		lf, rf := asFloat(l), asFloat(r)
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	// Integer comparison honoring large unsigned values.
	lBig := l.K == sema.KUint && l.U > math.MaxInt64
	rBig := r.K == sema.KUint && r.U > math.MaxInt64
	switch {
	case lBig && rBig:
		return cmpU64(l.U, r.U), nil
	case lBig:
		return 1, nil
	case rBig:
		return -1, nil
	}
	li, _ := toInt(l, pos)
	ri, _ := toInt(r, pos)
	switch {
	case li < ri:
		return -1, nil
	case li > ri:
		return 1, nil
	default:
		return 0, nil
	}
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func asString(v V) (string, bool) {
	switch v.K {
	case sema.KString:
		return v.S, true
	case sema.KChar:
		return string(byte(v.I)), true
	}
	return "", false
}

func asFloat(v V) float64 {
	switch v.K {
	case sema.KFloat:
		return v.F
	case sema.KUint, sema.KIP:
		return float64(v.U)
	default:
		return float64(v.I)
	}
}

func arith(op dsl.Kind, l, r V, pos dsl.Pos) (V, error) {
	if !isNumeric(l) || !isNumeric(r) {
		return V{}, evalErr(pos, "arithmetic on non-numeric value")
	}
	if l.K == sema.KFloat || r.K == sema.KFloat {
		lf, rf := asFloat(l), asFloat(r)
		switch op {
		case dsl.PLUS:
			return Float(lf + rf), nil
		case dsl.MINUS:
			return Float(lf - rf), nil
		case dsl.STAR:
			return Float(lf * rf), nil
		case dsl.SLASH:
			if rf == 0 {
				return V{}, evalErr(pos, "division by zero")
			}
			return Float(lf / rf), nil
		default:
			return V{}, evalErr(pos, "%% on floating-point values")
		}
	}
	li, err := toInt(l, pos)
	if err != nil {
		return V{}, err
	}
	ri, err := toInt(r, pos)
	if err != nil {
		return V{}, err
	}
	switch op {
	case dsl.PLUS:
		return Int(li + ri), nil
	case dsl.MINUS:
		return Int(li - ri), nil
	case dsl.STAR:
		return Int(li * ri), nil
	case dsl.SLASH:
		if ri == 0 {
			return V{}, evalErr(pos, "division by zero")
		}
		return Int(li / ri), nil
	default:
		if ri == 0 {
			return V{}, evalErr(pos, "modulo by zero")
		}
		return Int(li % ri), nil
	}
}
