// Package sema implements semantic analysis for PADS descriptions: symbol
// resolution (types are declared before use), the base-type registry, arity
// and argument checking for parameterized types, and type checking of the
// expression sub-language used in constraints, Pwhere clauses, switch
// selectors, and array termination predicates.
package sema

import "fmt"

// Kind classifies the in-memory representation of a value.
type Kind int

// Value kinds.
const (
	KInvalid Kind = iota
	KUint         // unsigned integer (Puint*, Pb_uint*, …)
	KInt          // signed integer
	KFloat        // floating point
	KChar         // one character
	KString       // text (also hostnames and zip codes)
	KBool         // expression-only
	KDate         // epoch seconds plus raw text
	KIP           // IPv4 address as uint32
	KEnum         // enumeration
	KStruct
	KUnion
	KArray
	KOpt
	KTypedef
	KVoid // Pempty / the absent branch of a Popt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KUint:
		return "uint"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KChar:
		return "char"
	case KString:
		return "string"
	case KBool:
		return "bool"
	case KDate:
		return "date"
	case KIP:
		return "ip"
	case KEnum:
		return "enum"
	case KStruct:
		return "struct"
	case KUnion:
		return "union"
	case KArray:
		return "array"
	case KOpt:
		return "opt"
	case KTypedef:
		return "typedef"
	case KVoid:
		return "void"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Numeric reports whether values of the kind participate in arithmetic and
// ordering (C-style: chars, enums, and dates count as integers).
func (k Kind) Numeric() bool {
	switch k {
	case KUint, KInt, KFloat, KChar, KDate, KIP, KEnum:
		return true
	}
	return false
}

// Type is the semantic type of a value or expression.
type Type struct {
	Kind Kind
	Name string // declared name for named types; base-type name for bases
	Elem *Type  // element type for arrays, inner type for opts/typedefs
}

// String renders the type.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KArray:
		return t.Name + "[]"
	case KOpt:
		return "Popt " + t.Elem.String()
	default:
		if t.Name != "" {
			return t.Name
		}
		return t.Kind.String()
	}
}

// ArgKind constrains a base-type argument.
type ArgKind int

// Argument kinds for base types.
const (
	ArgInt    ArgKind = iota // a numeric expression (widths, digit counts)
	ArgChar                  // a character (terminators); Peor/Peof allowed
	ArgRegexp                // a Pre "…" literal
)

// BaseInfo describes one base type: its value kind, integer bit width where
// relevant, and its argument signature. The collection is user-extensible at
// run time (RegisterBase), mirroring how the C implementation reads base
// type specifications from files (section 6).
type BaseInfo struct {
	Name string
	Kind Kind
	Bits int // integer width for K{Int,Uint}; float width for KFloat
	Args []ArgKind
	// Coding distinguishes the families for the runtime dispatch:
	// "" ambient, "a" ASCII, "e" EBCDIC, "b" binary, "bcd"/"zoned" Cobol.
	Coding string
	FW     bool // fixed-width variant (first arg is the byte width)
}

// baseTypes is the built-in registry.
var baseTypes = map[string]*BaseInfo{}

func reg(b BaseInfo) { baseTypes[b.Name] = &b }

func init() {
	// Character types.
	reg(BaseInfo{Name: "Pchar", Kind: KChar})
	reg(BaseInfo{Name: "Pa_char", Kind: KChar, Coding: "a"})
	reg(BaseInfo{Name: "Pe_char", Kind: KChar, Coding: "e"})
	reg(BaseInfo{Name: "Pb_char", Kind: KChar, Coding: "b"})

	// Integer families: ambient, ASCII, EBCDIC-character, binary.
	for _, bits := range []int{8, 16, 32, 64} {
		for _, fam := range []struct {
			prefix string
			coding string
		}{{"P", ""}, {"Pa_", "a"}, {"Pe_", "e"}, {"Pb_", "b"}} {
			reg(BaseInfo{Name: fmt.Sprintf("%sint%d", fam.prefix, bits), Kind: KInt, Bits: bits, Coding: fam.coding})
			reg(BaseInfo{Name: fmt.Sprintf("%suint%d", fam.prefix, bits), Kind: KUint, Bits: bits, Coding: fam.coding})
		}
		// Fixed-width variants (ambient and ASCII): Puint16_FW(:3:).
		for _, fam := range []struct {
			prefix string
			coding string
		}{{"P", ""}, {"Pa_", "a"}} {
			reg(BaseInfo{Name: fmt.Sprintf("%sint%d_FW", fam.prefix, bits), Kind: KInt, Bits: bits, Coding: fam.coding, Args: []ArgKind{ArgInt}, FW: true})
			reg(BaseInfo{Name: fmt.Sprintf("%suint%d_FW", fam.prefix, bits), Kind: KUint, Bits: bits, Coding: fam.coding, Args: []ArgKind{ArgInt}, FW: true})
		}
	}

	// Strings.
	reg(BaseInfo{Name: "Pstring", Kind: KString, Args: []ArgKind{ArgChar}})
	reg(BaseInfo{Name: "Pstring_FW", Kind: KString, Args: []ArgKind{ArgInt}, FW: true})
	reg(BaseInfo{Name: "Pstring_ME", Kind: KString, Args: []ArgKind{ArgRegexp}})
	reg(BaseInfo{Name: "Pstring_SE", Kind: KString, Args: []ArgKind{ArgRegexp}})

	// Dates and times: terminated by a character.
	reg(BaseInfo{Name: "Pdate", Kind: KDate, Args: []ArgKind{ArgChar}})
	reg(BaseInfo{Name: "Ptime", Kind: KDate, Args: []ArgKind{ArgChar}})
	reg(BaseInfo{Name: "Ptimestamp", Kind: KDate, Args: []ArgKind{ArgChar}})

	// Network and miscellaneous.
	reg(BaseInfo{Name: "Pip", Kind: KIP})
	reg(BaseInfo{Name: "Phostname", Kind: KString})
	reg(BaseInfo{Name: "Pzip", Kind: KString})
	reg(BaseInfo{Name: "Pempty", Kind: KVoid})

	// Floats.
	reg(BaseInfo{Name: "Pfloat32", Kind: KFloat, Bits: 32})
	reg(BaseInfo{Name: "Pfloat64", Kind: KFloat, Bits: 64})
	reg(BaseInfo{Name: "Pa_float32", Kind: KFloat, Bits: 32, Coding: "a"})
	reg(BaseInfo{Name: "Pa_float64", Kind: KFloat, Bits: 64, Coding: "a"})

	// Cobol numerics: packed (COMP-3) and zoned decimals with a digit
	// count argument.
	reg(BaseInfo{Name: "Pbcd", Kind: KInt, Bits: 64, Coding: "bcd", Args: []ArgKind{ArgInt}})
	reg(BaseInfo{Name: "Pzoned", Kind: KInt, Bits: 64, Coding: "zoned", Args: []ArgKind{ArgInt}})
}

// LookupBase returns the registry entry for a base type name, or nil.
func LookupBase(name string) *BaseInfo { return baseTypes[name] }

// RegisterBase adds (or replaces) a base type in the registry, the
// user-extensibility hook of section 6. It returns the previous entry, if
// any, so tests can restore it.
func RegisterBase(b BaseInfo) *BaseInfo {
	old := baseTypes[b.Name]
	reg(b)
	return old
}

// BaseNames returns the names of all registered base types (unordered).
func BaseNames() []string {
	names := make([]string, 0, len(baseTypes))
	for n := range baseTypes {
		names = append(names, n)
	}
	return names
}
