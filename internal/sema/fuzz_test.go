package sema

import (
	"os"
	"path/filepath"
	"testing"

	"pads/internal/dsl"
)

// FuzzParseDescription drives the whole description front end — parse, then
// check — with arbitrary source text: it must never panic, and every failure
// must surface as a diagnostic. The real descriptions under testdata/ seed
// the corpus so mutations start from meaningful programs; the seeds run as
// regression cases in normal test runs.
func FuzzParseDescription(f *testing.F) {
	pads, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.pads"))
	if err != nil {
		f.Fatal(err)
	}
	if len(pads) == 0 {
		f.Fatal("no .pads seeds under testdata/")
	}
	for _, p := range pads {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// Damage the checker has to diagnose rather than die on.
	f.Add(`Pre "["; Psource Precord Pstruct r { Pstring_ME(:"[":) x; Peor; };`)
	f.Add(`Psource Precord Pstruct r { t x; };`)                // unknown type
	f.Add(`Pstruct a { b x; }; Pstruct b { a y; };`)            // forward/recursive refs
	f.Add(`Parray a { Puint8[3..1] : Psep(','); };`)            // inverted bounds
	f.Add("Pstruct s { Puint8 x : x \x00 > 0; };")              // NUL in a constraint
	f.Add(`Ptypedef Puint8 t : t x => { y > 0 }; Psource t q;`) // unbound name
	// Self-referential typedef resolved through a later declaration: the
	// registered-but-erroneous decl must not send declType into infinite
	// recursion (this once overflowed the stack).
	f.Add(`Ptypedef t t; Pstruct s { t x; t y; };`)
	f.Add(`Parray a { a[]; }; Psource Pstruct s { a x; };`)

	f.Fuzz(func(t *testing.T, src string) {
		prog, errs := dsl.Parse(src)
		if prog == nil {
			t.Fatal("Parse returned a nil program")
		}
		if len(errs) > 0 {
			return
		}
		desc, serrs := Check(prog)
		if len(serrs) == 0 && desc == nil {
			t.Fatal("Check returned neither a description nor diagnostics")
		}
	})
}
