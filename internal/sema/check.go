package sema

import (
	"pads/internal/dsl"
	"pads/internal/padsrt"
)

// Desc is a checked description: the program plus the symbol tables the
// interpreter, code generator, and tools need.
type Desc struct {
	Program *dsl.Program
	// Types maps each declared type name to its declaration.
	Types map[string]dsl.Decl
	// Funcs maps predicate-function names to their declarations.
	Funcs map[string]*dsl.FuncDecl
	// EnumOf maps each enumeration literal to its enum declaration, and
	// EnumIndex to its position; enum literals are in scope everywhere.
	EnumOf    map[string]*dsl.EnumDecl
	EnumIndex map[string]int
	// Source is the declaration describing the totality of the data
	// source: the Psource-annotated declaration, or the last type
	// declaration when no annotation is present.
	Source dsl.Decl
	// Regexps holds the compiled form of every regular-expression literal
	// in the description, keyed by source text.
	Regexps map[string]*padsrt.Regexp
}

// Check performs semantic analysis. The returned Desc is usable when the
// error list is empty.
func Check(prog *dsl.Program) (*Desc, []*dsl.Error) {
	c := &checker{
		desc: &Desc{
			Program:   prog,
			Types:     make(map[string]dsl.Decl),
			Funcs:     make(map[string]*dsl.FuncDecl),
			EnumOf:    make(map[string]*dsl.EnumDecl),
			EnumIndex: make(map[string]int),
			Regexps:   make(map[string]*padsrt.Regexp),
		},
		resolving: make(map[string]bool),
	}
	c.run()
	return c.desc, c.errs
}

type checker struct {
	desc *Desc
	errs []*dsl.Error
	// resolving holds declaration names whose semantic type is being
	// computed, to break reference cycles in declType. A cycle is only
	// reachable for a declaration that (transitively) names itself, which
	// its own check already rejected — names register only after checking,
	// so a self-reference reports "undeclared type" there. The guard keeps
	// later resolutions of the registered name from recursing forever.
	resolving map[string]bool
}

func (c *checker) errorf(pos dsl.Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, dsl.Errorf(pos, format, args...))
}

// env is a lexical scope of expression variables.
type env struct {
	vars   map[string]*Type
	parent *env
}

func newEnv(parent *env) *env { return &env{vars: make(map[string]*Type), parent: parent} }

func (e *env) bind(name string, t *Type) { e.vars[name] = t }

func (e *env) lookup(name string) *Type {
	for s := e; s != nil; s = s.parent {
		if t, ok := s.vars[name]; ok {
			return t
		}
	}
	return nil
}

func (c *checker) run() {
	var lastType dsl.Decl
	for _, d := range c.desc.Program.Decls {
		switch d := d.(type) {
		case *dsl.FuncDecl:
			if _, dup := c.desc.Funcs[d.Name]; dup {
				c.errorf(d.Pos, "function %s redeclared", d.Name)
			} else if _, dup := c.desc.Types[d.Name]; dup {
				c.errorf(d.Pos, "%s redeclared as a function", d.Name)
			}
			// Register before checking the body so functions may recurse
			// (the evaluator bounds call depth at run time).
			c.desc.Funcs[d.Name] = d
			c.checkFunc(d)
		default:
			dup := false
			if _, ok := c.desc.Types[d.DeclName()]; ok {
				c.errorf(d.DeclPos(), "type %s redeclared", d.DeclName())
				dup = true
			} else if LookupBase(d.DeclName()) != nil {
				c.errorf(d.DeclPos(), "type %s shadows a base type", d.DeclName())
			}
			c.checkTypeDecl(d)
			// Register after checking so self-reference is an
			// undeclared-type error (recursive types are not supported).
			// A redeclaration keeps the first definition: re-binding the
			// name would let a later declaration reference itself through
			// it, putting a cycle in the registry.
			if !dup {
				c.desc.Types[d.DeclName()] = d
			}
			lastType = d
			if annotOf(d).IsSource {
				if c.desc.Source != nil {
					c.errorf(d.DeclPos(), "multiple Psource declarations (%s and %s)", c.desc.Source.DeclName(), d.DeclName())
				}
				c.desc.Source = d
			}
		}
	}
	if c.desc.Source == nil {
		c.desc.Source = lastType
	}
	if c.desc.Source == nil {
		c.errorf(dsl.Pos{Line: 1, Col: 1}, "description declares no types")
	}
}

func annotOf(d dsl.Decl) dsl.Annot {
	switch d := d.(type) {
	case *dsl.StructDecl:
		return d.Annot
	case *dsl.UnionDecl:
		return d.Annot
	case *dsl.ArrayDecl:
		return d.Annot
	case *dsl.EnumDecl:
		return d.Annot
	case *dsl.TypedefDecl:
		return d.Annot
	}
	return dsl.Annot{}
}

// Annot exposes a declaration's Precord/Psource annotations.
func Annot(d dsl.Decl) dsl.Annot { return annotOf(d) }

// paramEnv builds the scope holding a declaration's value parameters.
func (c *checker) paramEnv(params []dsl.Param) *env {
	e := newEnv(nil)
	for _, p := range params {
		e.bind(p.Name, c.namedType(p.Type, p.Pos))
	}
	return e
}

// namedType resolves a type name (base or declared) to its semantic type.
// "bool" is an expression-only type usable in functions but not parseable.
func (c *checker) namedType(name string, pos dsl.Pos) *Type {
	if name == "bool" {
		return &Type{Kind: KBool, Name: "bool"}
	}
	if b := LookupBase(name); b != nil {
		return &Type{Kind: b.Kind, Name: name}
	}
	if d, ok := c.desc.Types[name]; ok {
		return c.declType(d)
	}
	c.errorf(pos, "undeclared type %s", name)
	return &Type{Kind: KInvalid, Name: name}
}

func (c *checker) declType(d dsl.Decl) *Type {
	if name := d.DeclName(); c.resolving[name] {
		return &Type{Kind: KInvalid, Name: name}
	}
	switch d := d.(type) {
	case *dsl.StructDecl:
		return &Type{Kind: KStruct, Name: d.Name}
	case *dsl.UnionDecl:
		return &Type{Kind: KUnion, Name: d.Name}
	case *dsl.ArrayDecl:
		c.resolving[d.Name] = true
		elem := c.refTypeShallow(d.Elem)
		delete(c.resolving, d.Name)
		return &Type{Kind: KArray, Name: d.Name, Elem: elem}
	case *dsl.EnumDecl:
		return &Type{Kind: KEnum, Name: d.Name}
	case *dsl.TypedefDecl:
		c.resolving[d.Name] = true
		under := c.refTypeShallow(d.Base)
		delete(c.resolving, d.Name)
		return &Type{Kind: KTypedef, Name: d.Name, Elem: under}
	}
	return &Type{Kind: KInvalid}
}

// refTypeShallow resolves a type reference without validating arguments
// (used where only the result type matters).
func (c *checker) refTypeShallow(tr dsl.TypeRef) *Type {
	t := c.namedType(tr.Name, tr.Pos)
	if tr.Opt {
		return &Type{Kind: KOpt, Name: tr.Name, Elem: t}
	}
	return t
}

// refType resolves a type reference and validates its arguments in scope e.
func (c *checker) refType(tr dsl.TypeRef, e *env) *Type {
	if tr.Name == "bool" {
		c.errorf(tr.Pos, "bool is not a parseable type")
		return &Type{Kind: KInvalid, Name: "bool"}
	}
	if b := LookupBase(tr.Name); b != nil {
		if len(tr.Args) != len(b.Args) {
			c.errorf(tr.Pos, "%s takes %d argument(s), got %d", tr.Name, len(b.Args), len(tr.Args))
		} else {
			for i, a := range tr.Args {
				c.checkBaseArg(tr.Name, b.Args[i], a, e)
			}
		}
	} else if d, ok := c.desc.Types[tr.Name]; ok {
		params := declParams(d)
		if len(tr.Args) != len(params) {
			c.errorf(tr.Pos, "%s takes %d argument(s), got %d", tr.Name, len(params), len(tr.Args))
		} else {
			for i, a := range tr.Args {
				at := c.checkExpr(a, e)
				pt := c.namedType(params[i].Type, params[i].Pos)
				if !looselyAssignable(pt, at) {
					c.errorf(a.ExprPos(), "argument %d of %s: cannot use %s as %s", i+1, tr.Name, at, pt)
				}
			}
		}
	}
	return c.refTypeShallow(tr)
}

func declParams(d dsl.Decl) []dsl.Param {
	switch d := d.(type) {
	case *dsl.StructDecl:
		return d.Params
	case *dsl.UnionDecl:
		return d.Params
	case *dsl.ArrayDecl:
		return d.Params
	case *dsl.TypedefDecl:
		return d.Params
	}
	return nil
}

func (c *checker) checkBaseArg(base string, want ArgKind, a dsl.Expr, e *env) {
	switch want {
	case ArgInt:
		t := resolve(c.checkExpr(a, e))
		if t.Kind != KInvalid && (!t.Kind.Numeric() || t.Kind == KChar) {
			c.errorf(a.ExprPos(), "%s expects a numeric argument, got %s", base, t)
		}
	case ArgChar:
		switch a := a.(type) {
		case *dsl.CharExpr, *dsl.EORExpr, *dsl.EOFExpr:
			// ok: a character terminator or a record/input boundary
		default:
			t := c.checkExpr(a, e)
			if rt := resolve(t); rt.Kind != KChar {
				c.errorf(a.ExprPos(), "%s expects a character argument, got %s", base, t)
			}
		}
	case ArgRegexp:
		re, ok := a.(*dsl.RegexpExpr)
		if !ok {
			c.errorf(a.ExprPos(), "%s expects a Pre \"…\" regular-expression argument", base)
			return
		}
		c.compileRegexp(re.Src, re.Pos)
	}
}

func (c *checker) compileRegexp(src string, pos dsl.Pos) {
	if _, ok := c.desc.Regexps[src]; ok {
		return
	}
	re, err := padsrt.CompileRegexp(src)
	if err != nil {
		c.errorf(pos, "invalid regular expression %q: %v", src, err)
		return
	}
	c.desc.Regexps[src] = re
}

func (c *checker) checkLiteral(l *dsl.Literal) {
	if l != nil && l.Kind == dsl.RegexpLit {
		c.compileRegexp(l.Str, l.Pos)
	}
}

// ---- declarations ----

func (c *checker) checkTypeDecl(d dsl.Decl) {
	switch d := d.(type) {
	case *dsl.StructDecl:
		e := c.paramEnv(d.Params)
		for _, it := range d.Items {
			if it.Lit != nil {
				c.checkLiteral(it.Lit)
				continue
			}
			f := it.Field
			ft := c.refType(f.Type, e)
			if f.Constraint != nil {
				fe := newEnv(e)
				fe.bind(f.Name, ft)
				c.checkBool(f.Constraint, fe, "field constraint")
			}
			if e.lookup(f.Name) != nil {
				c.errorf(f.Pos, "field %s redeclared in %s", f.Name, d.Name)
			}
			e.bind(f.Name, ft)
		}
		if d.Where != nil {
			c.checkBool(d.Where, e, "Pwhere clause")
		}
	case *dsl.UnionDecl:
		e := c.paramEnv(d.Params)
		if d.Switch != nil {
			selT := c.checkExpr(d.Switch.Selector, e)
			hasDefault := false
			for i := range d.Switch.Cases {
				cs := &d.Switch.Cases[i]
				if len(cs.Values) == 0 {
					if hasDefault {
						c.errorf(cs.Pos, "multiple Pdefault cases in %s", d.Name)
					}
					hasDefault = true
				}
				for _, v := range cs.Values {
					vt := c.checkExpr(v, e)
					if !comparable2(selT, vt) {
						c.errorf(v.ExprPos(), "Pcase value type %s does not match selector type %s", vt, selT)
					}
				}
				c.checkUnionBranch(d, &cs.Field, e)
			}
		} else {
			if len(d.Branches) == 0 {
				c.errorf(d.Pos, "union %s has no branches", d.Name)
			}
			seen := map[string]bool{}
			for i := range d.Branches {
				b := &d.Branches[i]
				if seen[b.Name] {
					c.errorf(b.Pos, "branch %s redeclared in %s", b.Name, d.Name)
				}
				seen[b.Name] = true
				c.checkUnionBranch(d, b, e)
			}
		}
		if d.Where != nil {
			c.errorf(d.Where.ExprPos(), "Pwhere is not supported on unions; constrain the branches instead")
		}
	case *dsl.ArrayDecl:
		e := c.paramEnv(d.Params)
		elemT := c.refType(d.Elem, e)
		if d.MinSize != nil {
			c.checkNumeric(d.MinSize, e, "array size")
		}
		if d.MaxSize != nil && d.MaxSize != d.MinSize {
			c.checkNumeric(d.MaxSize, e, "array size")
		}
		c.checkLiteral(d.Sep)
		c.checkLiteral(d.Term)
		arrT := &Type{Kind: KArray, Name: d.Name, Elem: elemT}
		if d.LastPred != nil {
			le := newEnv(e)
			le.bind("elt", elemT)
			le.bind("elts", arrT)
			le.bind("length", &Type{Kind: KUint, Name: "Puint32"})
			c.checkBool(d.LastPred, le, "Plast predicate")
		}
		if d.EndedPred != nil {
			le := newEnv(e)
			le.bind("elts", arrT)
			le.bind("length", &Type{Kind: KUint, Name: "Puint32"})
			c.checkBool(d.EndedPred, le, "Pended predicate")
		}
		if d.Where != nil {
			we := newEnv(e)
			we.bind("elts", arrT)
			we.bind("length", &Type{Kind: KUint, Name: "Puint32"})
			c.checkBool(d.Where, we, "Pwhere clause")
		}
	case *dsl.EnumDecl:
		if len(d.Members) == 0 {
			c.errorf(d.Pos, "enum %s has no members", d.Name)
		}
		for i, m := range d.Members {
			if other, dup := c.desc.EnumOf[m.Name]; dup {
				c.errorf(m.Pos, "enum literal %s already declared in %s", m.Name, other.Name)
				continue
			}
			c.desc.EnumOf[m.Name] = d
			c.desc.EnumIndex[m.Name] = i
		}
	case *dsl.TypedefDecl:
		e := c.paramEnv(d.Params)
		baseT := c.refType(d.Base, e)
		if d.Constraint != nil {
			ce := newEnv(e)
			ce.bind(d.VarName, baseT)
			c.checkBool(d.Constraint, ce, "typedef constraint")
		}
	}
}

func (c *checker) checkUnionBranch(d *dsl.UnionDecl, b *dsl.Field, e *env) {
	bt := c.refType(b.Type, e)
	if b.Constraint != nil {
		be := newEnv(e)
		be.bind(b.Name, bt)
		c.checkBool(b.Constraint, be, "branch constraint")
	}
}

func (c *checker) checkFunc(d *dsl.FuncDecl) {
	e := c.paramEnv(d.Params)
	retT := c.namedType(d.RetType, d.Pos)
	sawReturn := c.checkStmts(d.Body, e, retT)
	if !sawReturn {
		c.errorf(d.Pos, "function %s has no return statement", d.Name)
	}
}

func (c *checker) checkStmts(stmts []dsl.Stmt, e *env, retT *Type) bool {
	saw := false
	for _, s := range stmts {
		switch s := s.(type) {
		case *dsl.VarStmt:
			t := c.namedType(s.Type, s.Pos)
			it := c.checkExpr(s.Init, e)
			if !looselyAssignable(t, it) {
				c.errorf(s.Pos, "cannot initialize %s %s with %s", s.Type, s.Name, it)
			}
			e.bind(s.Name, t)
		case *dsl.AssignStmt:
			t := e.lookup(s.Name)
			if t == nil {
				c.errorf(s.Pos, "assignment to undeclared variable %s", s.Name)
				t = &Type{Kind: KInvalid}
			}
			vt := c.checkExpr(s.Val, e)
			if !looselyAssignable(t, vt) {
				c.errorf(s.Pos, "cannot assign %s to %s", vt, t)
			}
		case *dsl.IfStmt:
			c.checkBool(s.Cond, e, "if condition")
			if c.checkStmts(s.Then, newEnv(e), retT) {
				saw = true
			}
			if c.checkStmts(s.Else, newEnv(e), retT) {
				saw = true
			}
		case *dsl.ReturnStmt:
			vt := c.checkExpr(s.Val, e)
			if !looselyAssignable(retT, vt) {
				c.errorf(s.Pos, "cannot return %s from a function returning %s", vt, retT)
			}
			saw = true
		case *dsl.ExprStmt:
			c.checkExpr(s.X, e)
		}
	}
	return saw
}

// ---- expressions ----

func (c *checker) checkBool(x dsl.Expr, e *env, what string) {
	t := c.checkExpr(x, e)
	if rt := resolve(t); rt.Kind != KBool && rt.Kind != KInvalid {
		c.errorf(x.ExprPos(), "%s must be boolean, got %s", what, t)
	}
}

func (c *checker) checkNumeric(x dsl.Expr, e *env, what string) {
	t := c.checkExpr(x, e)
	if rt := resolve(t); !rt.Kind.Numeric() && rt.Kind != KInvalid {
		c.errorf(x.ExprPos(), "%s must be numeric, got %s", what, t)
	}
}

var (
	tInvalid = &Type{Kind: KInvalid}
	tBool    = &Type{Kind: KBool}
)

func (c *checker) checkExpr(x dsl.Expr, e *env) *Type {
	switch x := x.(type) {
	case *dsl.IntExpr:
		return &Type{Kind: KInt}
	case *dsl.FloatExpr:
		return &Type{Kind: KFloat}
	case *dsl.CharExpr:
		return &Type{Kind: KChar}
	case *dsl.StrExpr:
		return &Type{Kind: KString}
	case *dsl.BoolExpr:
		return tBool
	case *dsl.RegexpExpr:
		c.compileRegexp(x.Src, x.Pos)
		return &Type{Kind: KString}
	case *dsl.EORExpr, *dsl.EOFExpr:
		return &Type{Kind: KChar}
	case *dsl.IdentExpr:
		if t := e.lookup(x.Name); t != nil {
			return t
		}
		if en, ok := c.desc.EnumOf[x.Name]; ok {
			return &Type{Kind: KEnum, Name: en.Name}
		}
		c.errorf(x.Pos, "undeclared identifier %s", x.Name)
		return tInvalid
	case *dsl.CallExpr:
		fn, ok := c.desc.Funcs[x.Func]
		if !ok {
			c.errorf(x.Pos, "call to undeclared function %s", x.Func)
			for _, a := range x.Args {
				c.checkExpr(a, e)
			}
			return tInvalid
		}
		if len(x.Args) != len(fn.Params) {
			c.errorf(x.Pos, "%s takes %d argument(s), got %d", x.Func, len(fn.Params), len(x.Args))
		}
		for i, a := range x.Args {
			at := c.checkExpr(a, e)
			if i < len(fn.Params) {
				pt := c.namedType(fn.Params[i].Type, fn.Params[i].Pos)
				if !looselyAssignable(pt, at) {
					c.errorf(a.ExprPos(), "argument %d of %s: cannot use %s as %s", i+1, x.Func, at, pt)
				}
			}
		}
		return c.namedType(fn.RetType, fn.Pos)
	case *dsl.DotExpr:
		xt := resolve(c.checkExpr(x.X, e))
		ft := c.fieldType(xt, x.Field)
		if ft == nil {
			if xt.Kind != KInvalid {
				c.errorf(x.Pos, "%s has no field %s", xt, x.Field)
			}
			return tInvalid
		}
		return ft
	case *dsl.IndexExpr:
		xt := resolve(c.checkExpr(x.X, e))
		c.checkNumeric(x.Index, e, "index")
		if xt.Kind == KArray {
			return xt.Elem
		}
		if xt.Kind != KInvalid {
			c.errorf(x.Pos, "cannot index %s", xt)
		}
		return tInvalid
	case *dsl.UnaryExpr:
		xt := resolve(c.checkExpr(x.X, e))
		if x.Op == dsl.NOT {
			if xt.Kind != KBool && xt.Kind != KInvalid {
				c.errorf(x.Pos, "operator ! requires a boolean, got %s", xt)
			}
			return tBool
		}
		if !xt.Kind.Numeric() && xt.Kind != KInvalid {
			c.errorf(x.Pos, "operator - requires a number, got %s", xt)
		}
		return &Type{Kind: KInt}
	case *dsl.BinaryExpr:
		lt := resolve(c.checkExpr(x.L, e))
		rt := resolve(c.checkExpr(x.R, e))
		switch x.Op {
		case dsl.ANDAND, dsl.OROR:
			if lt.Kind != KBool && lt.Kind != KInvalid {
				c.errorf(x.L.ExprPos(), "operand of %s must be boolean, got %s", x.Op, lt)
			}
			if rt.Kind != KBool && rt.Kind != KInvalid {
				c.errorf(x.R.ExprPos(), "operand of %s must be boolean, got %s", x.Op, rt)
			}
			return tBool
		case dsl.EQ, dsl.NE, dsl.LT, dsl.LE, dsl.GT, dsl.GE:
			if !comparable2(lt, rt) {
				c.errorf(x.Pos, "cannot compare %s with %s", lt, rt)
			}
			return tBool
		default: // arithmetic
			if (!lt.Kind.Numeric() && lt.Kind != KInvalid) || (!rt.Kind.Numeric() && rt.Kind != KInvalid) {
				c.errorf(x.Pos, "operator %s requires numbers, got %s and %s", x.Op, lt, rt)
			}
			if lt.Kind == KFloat || rt.Kind == KFloat {
				return &Type{Kind: KFloat}
			}
			return &Type{Kind: KInt}
		}
	case *dsl.CondExpr:
		c.checkBool(x.Cond, e, "conditional")
		tt := c.checkExpr(x.Then, e)
		et := c.checkExpr(x.Else, e)
		if !comparable2(resolve(tt), resolve(et)) && resolve(tt).Kind != resolve(et).Kind {
			c.errorf(x.Pos, "conditional arms have incompatible types %s and %s", tt, et)
		}
		return tt
	case *dsl.ForallExpr:
		c.checkNumeric(x.Lo, e, "quantifier bound")
		c.checkNumeric(x.Hi, e, "quantifier bound")
		be := newEnv(e)
		be.bind(x.Var, &Type{Kind: KInt})
		c.checkBool(x.Body, be, "quantifier body")
		return tBool
	}
	return tInvalid
}

// fieldType finds the type of a field of a struct/union value.
func (c *checker) fieldType(t *Type, field string) *Type {
	switch t.Kind {
	case KStruct:
		d, _ := c.desc.Types[t.Name].(*dsl.StructDecl)
		if d == nil {
			return nil
		}
		for _, it := range d.Items {
			if it.Field != nil && it.Field.Name == field {
				return c.refTypeShallow(it.Field.Type)
			}
		}
	case KUnion:
		d, _ := c.desc.Types[t.Name].(*dsl.UnionDecl)
		if d == nil {
			return nil
		}
		if d.Switch != nil {
			for i := range d.Switch.Cases {
				if d.Switch.Cases[i].Field.Name == field {
					return c.refTypeShallow(d.Switch.Cases[i].Field.Type)
				}
			}
		}
		for i := range d.Branches {
			if d.Branches[i].Name == field {
				return c.refTypeShallow(d.Branches[i].Type)
			}
		}
	case KDate:
		// Dates expose no fields; callers compare them numerically.
	}
	return nil
}

// resolve unwraps typedefs (and opts, to their inner type for expression
// purposes: reading an absent optional is a run-time matter).
func resolve(t *Type) *Type {
	for t != nil && (t.Kind == KTypedef || t.Kind == KOpt) {
		t = t.Elem
	}
	if t == nil {
		return tInvalid
	}
	return t
}

// comparable2 reports whether two resolved types can be compared.
func comparable2(a, b *Type) bool {
	a, b = resolve(a), resolve(b)
	if a.Kind == KInvalid || b.Kind == KInvalid {
		return true // already diagnosed
	}
	if a.Kind.Numeric() && b.Kind.Numeric() {
		return true
	}
	if a.Kind == KString && b.Kind == KString {
		return true
	}
	if a.Kind == KBool && b.Kind == KBool {
		return true
	}
	// Strings compare with chars (single-character fields).
	if a.Kind == KString && b.Kind == KChar || a.Kind == KChar && b.Kind == KString {
		return true
	}
	return false
}

// looselyAssignable is the C-flavored assignability used for arguments,
// locals, and returns.
func looselyAssignable(dst, src *Type) bool {
	d, s := resolve(dst), resolve(src)
	if d.Kind == KInvalid || s.Kind == KInvalid {
		return true
	}
	if d.Kind.Numeric() && s.Kind.Numeric() {
		return true
	}
	if d.Kind == s.Kind {
		// Named compound types must match by name.
		if d.Name != "" && s.Name != "" && d.Name != s.Name {
			return d.Kind != KStruct && d.Kind != KUnion && d.Kind != KArray && d.Kind != KEnum
		}
		return true
	}
	return false
}
