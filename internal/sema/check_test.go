package sema

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/dsl"
)

func checkFile(t *testing.T, name string) *Desc {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return checkSrc(t, string(data))
}

func checkSrc(t *testing.T, src string) *Desc {
	t.Helper()
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := Check(prog)
	for _, e := range serrs {
		t.Errorf("check: %v", e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return desc
}

func errsOf(t *testing.T, src string) []*dsl.Error {
	t.Helper()
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	_, serrs := Check(prog)
	return serrs
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	serrs := errsOf(t, src)
	for _, e := range serrs {
		if strings.Contains(e.Msg, frag) {
			return
		}
	}
	t.Errorf("no error containing %q; got %v", frag, serrs)
}

func TestCheckCLF(t *testing.T) {
	desc := checkFile(t, "clf.pads")
	if desc.Source == nil || desc.Source.DeclName() != "clt_t" {
		t.Errorf("source = %v", desc.Source)
	}
	if desc.EnumOf["GET"] == nil || desc.EnumOf["GET"].Name != "method_t" {
		t.Error("enum literal GET not registered")
	}
	if desc.EnumIndex["UNLINK"] != 6 {
		t.Errorf("UNLINK index = %d", desc.EnumIndex["UNLINK"])
	}
	if desc.Funcs["chkVersion"] == nil {
		t.Error("chkVersion not registered")
	}
}

func TestCheckSirius(t *testing.T) {
	desc := checkFile(t, "sirius.pads")
	if desc.Source.DeclName() != "out_sum" {
		t.Errorf("source = %s", desc.Source.DeclName())
	}
	if Annot(desc.Types["entry_t"]).IsRecord != true {
		t.Error("entry_t should be a record")
	}
}

// Figure 1 of the paper lists six classes of sources; this repo carries a
// description for each class, and all must check cleanly (experiment E1).
func TestFigure1Sources(t *testing.T) {
	for _, name := range []string{"clf.pads", "sirius.pads"} {
		t.Run(name, func(t *testing.T) { checkFile(t, name) })
	}
	// The remaining Figure 1 classes (binary call detail, Cobol billing,
	// Regulus ASCII, netflow) are covered once their descriptions land in
	// testdata; they are exercised by interp and example tests too.
	for _, name := range []string{"calldetail.pads", "regulus.pads", "netflow.pads", "billing.pads"} {
		path := filepath.Join("..", "..", "testdata", name)
		if _, err := os.Stat(path); err == nil {
			t.Run(name, func(t *testing.T) { checkFile(t, name) })
		}
	}
}

func TestUndeclaredType(t *testing.T) {
	wantErr(t, "Pstruct s { mystery_t x; };", "undeclared type mystery_t")
}

func TestDeclareBeforeUse(t *testing.T) {
	wantErr(t, `
Pstruct a { b_t x; };
Pstruct b_t { Puint8 y; };
`, "undeclared type b_t")
}

func TestSelfReferenceRejected(t *testing.T) {
	wantErr(t, "Pstruct s { s x; };", "undeclared type s")
}

// A self-referential typedef or array errors at its own check (the name
// registers only afterwards), but the erroneous declaration still lands in
// the registry for later lookups. Resolving it again — here via a second
// declaration using the name — must report the original error, not recurse
// forever computing the typedef's underlying type (this once overflowed
// the checker's stack; found by FuzzVMAgainstInterp).
func TestSelfReferentialTypedefNoOverflow(t *testing.T) {
	wantErr(t, `
Ptypedef t t;
Pstruct s { t x; };
`, "undeclared type t")
	wantErr(t, `
Parray a { a[]; };
Pstruct s { a x; };
`, "undeclared type a")
}

func TestRedeclaration(t *testing.T) {
	wantErr(t, "Pstruct s { Puint8 x; };\nPenum s { A };", "redeclared")
	wantErr(t, "Pstruct Pip { Puint8 x; };", "shadows a base type")
}

func TestFieldScoping(t *testing.T) {
	// Later fields may use earlier ones; the reverse is an error.
	checkSrc(t, `
Pstruct ok { Puint8 a; Puint8 b : b > a; };
`)
	wantErr(t, `
Pstruct bad { Puint8 a : a > b; Puint8 b; };
`, "undeclared identifier b")
}

func TestConstraintMustBeBool(t *testing.T) {
	wantErr(t, "Pstruct s { Puint8 x : x + 1; };", "must be boolean")
}

func TestBaseArgChecking(t *testing.T) {
	wantErr(t, "Pstruct s { Pstring x; };", "takes 1 argument(s), got 0")
	wantErr(t, "Pstruct s { Puint32(:3:) x; };", "takes 0 argument(s), got 1")
	wantErr(t, "Pstruct s { Pstring(:3:) x; };", "expects a character argument")
	wantErr(t, "Pstruct s { Puint16_FW(:'c':) x; };", "expects a numeric argument")
	wantErr(t, `Pstruct s { Pstring_ME(:"x":) x; };`, "regular-expression argument")
	checkSrc(t, "Pstruct s { Pstring(:Peor:) x; };")
}

func TestBadRegexp(t *testing.T) {
	wantErr(t, `Pstruct s { Pstring_ME(:Pre "[":) x; };`, "invalid regular expression")
	wantErr(t, `Pstruct s { Pre "("; Puint8 x; };`, "invalid regular expression")
}

func TestRegexpsCollected(t *testing.T) {
	desc := checkSrc(t, `Pstruct s { Pre "[A-Z]+"; Pstring_ME(:Pre "[0-9]+":) d; };`)
	if desc.Regexps["[A-Z]+"] == nil || desc.Regexps["[0-9]+"] == nil {
		t.Errorf("regexps not collected: %v", desc.Regexps)
	}
}

func TestParameterizedTypes(t *testing.T) {
	checkSrc(t, `
Pstruct payload (:Puint32 n:) {
  Pstring_FW(:n:) body;
};
Pstruct packet {
  Puint32 len; '|';
  payload(:len:) p;
};
`)
	wantErr(t, `
Pstruct payload (:Puint32 n:) { Pstring_FW(:n:) body; };
Pstruct packet { payload p; };
`, "takes 1 argument(s), got 0")
}

func TestSwitchedUnionChecks(t *testing.T) {
	checkSrc(t, `
Punion u (:Puint8 tag:) Pswitch (tag) {
  Pcase 1: Puint32 num;
  Pdefault: Pstring(:'|':) text;
};
Pstruct s { Puint8 t; u(:t:) v; };
`)
	wantErr(t, `
Punion u (:Puint8 tag:) Pswitch (tag) {
  Pcase "x": Puint32 num;
};
`, "does not match selector type")
	wantErr(t, `
Punion u (:Puint8 tag:) Pswitch (tag) {
  Pdefault: Puint32 a;
  Pdefault: Puint32 b;
};
`, "multiple Pdefault")
}

func TestEnumLiteralConflicts(t *testing.T) {
	wantErr(t, `
Penum a { X, Y };
Penum b { Y, Z };
`, "already declared")
}

func TestFunctionChecks(t *testing.T) {
	wantErr(t, "bool f(Puint8 x) { x + 1; };", "no return statement")
	wantErr(t, `bool f(Puint8 x) { return "s"; };`, "cannot return")
	wantErr(t, `
bool f(Puint8 x) { return x > 0; };
Pstruct s { Puint8 a : f(a, a); };
`, "takes 1 argument(s), got 2")
	wantErr(t, `
Pstruct s { Puint8 a : g(a); };
`, "undeclared function g")
	// Locals, assignment, if/else.
	checkSrc(t, `
Puint32 clamp(Puint32 x) {
  Puint32 y = x;
  if (y > 100) { y = 100; } else y = y;
  return y;
};
Pstruct s { Puint32 a : clamp(a) == a; };
`)
}

func TestArrayPredScopes(t *testing.T) {
	checkSrc(t, `
Parray a { Puint32[] : Psep (',') && Plast (elt == 0); };
Parray b { Puint32[] : Psep (',') && Pended (length == 3); };
Parray c { Puint32[]; } Pwhere { Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1]) };
`)
	wantErr(t, "Parray a { Puint32[] : Pended (elt == 0); };", "undeclared identifier elt")
	wantErr(t, "Parray a { Puint32[]; } Pwhere { length };", "must be boolean")
}

func TestDotAndIndexTyping(t *testing.T) {
	checkSrc(t, `
Pstruct inner { Puint32 v; };
Parray seq { inner[] : Psep (','); };
Pstruct outer {
  seq xs;
} Pwhere { Pforall (i Pin [0..0] : xs[i].v >= 0) };
`)
	wantErr(t, `
Pstruct inner { Puint32 v; };
Pstruct outer { inner x; Puint8 y : x.nope == 0; };
`, "has no field nope")
	wantErr(t, `
Pstruct outer { Puint32 x; Puint8 y : x[0] == 0; };
`, "cannot index")
}

func TestUnionWhereRejected(t *testing.T) {
	wantErr(t, `
Punion u { Puint8 a; Puint16 b; } Pwhere { true };
`, "not supported on unions")
}

func TestMultipleSources(t *testing.T) {
	wantErr(t, `
Psource Pstruct a { Puint8 x; };
Psource Pstruct b { Puint8 y; };
`, "multiple Psource")
}

func TestSourceDefaultsToLast(t *testing.T) {
	desc := checkSrc(t, `
Pstruct a { Puint8 x; };
Pstruct b { Puint8 y; };
`)
	if desc.Source.DeclName() != "b" {
		t.Errorf("default source = %s, want b", desc.Source.DeclName())
	}
}

func TestTypedefChaining(t *testing.T) {
	checkSrc(t, `
Ptypedef Puint32 id_t : id_t x => { x > 0 };
Ptypedef id_t big_id_t : big_id_t y => { y > 1000 };
Pstruct s { big_id_t v : v != 5; };
`)
}

func TestRegisterBase(t *testing.T) {
	old := RegisterBase(BaseInfo{Name: "Pmac", Kind: KString})
	defer func() {
		if old == nil {
			delete(baseTypes, "Pmac")
		} else {
			RegisterBase(*old)
		}
	}()
	checkSrc(t, "Pstruct s { Pmac addr; };")
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{KUint, KInt, KFloat, KChar, KDate, KIP, KEnum} {
		if !k.Numeric() {
			t.Errorf("%v should be numeric", k)
		}
	}
	for _, k := range []Kind{KString, KBool, KStruct, KUnion, KArray, KOpt, KVoid} {
		if k.Numeric() {
			t.Errorf("%v should not be numeric", k)
		}
	}
}

func TestStringCharComparison(t *testing.T) {
	checkSrc(t, `Pstruct s { Pstring(:'|':) x : x == "-" || x == '-'; };`)
}
