package padsrt

// Integer base types: ASCII (Pa_*), binary (Pb_*), EBCDIC-character (Pe_*),
// fixed-width variants (*_FW), and the coding-generic Pint/Puint family that
// follows the ambient coding. Every reader consumes input only on success
// (or consumes exactly the fixed width for *_FW types) and returns an
// ErrCode instead of an error value so parse descriptors can be filled in
// without allocation.

import "strconv"

// eofCode picks the boundary error appropriate to the cursor: end of record
// inside a bounded record, end of input otherwise.
func eofCode(s *Source) ErrCode {
	if s.InRecord() {
		return ErrAtEOR
	}
	return ErrAtEOF
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// uintMax returns the maximum value of an unsigned integer of the given bit
// width (8, 16, 32, or 64).
func uintMax(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

// intMax / intMin bound signed widths.
func intMax(bits int) int64 {
	if bits >= 64 {
		return 1<<63 - 1
	}
	return 1<<uint(bits-1) - 1
}

func intMin(bits int) int64 {
	if bits >= 64 {
		return -1 << 63
	}
	return -(1 << uint(bits-1))
}

// ReadAUint reads an ASCII unsigned decimal integer that must fit in the
// given bit width (Pa_uint8/16/32/64).
func ReadAUint(s *Source, bits int) (uint64, ErrCode) {
	w := s.Window(32)
	if len(w) == 0 {
		return 0, eofCode(s)
	}
	i := 0
	var v uint64
	// 19 decimal digits always fit in a uint64, so the common path skips the
	// per-digit overflow arithmetic; only digit 20+ takes the guarded loop.
	lim := len(w)
	if lim > 19 {
		lim = 19
	}
	for i < lim {
		d := uint64(w[i]) - '0'
		if d > 9 {
			break
		}
		v = v*10 + d
		i++
	}
	overflow := false
	const cutoff = (1<<64 - 1) / 10 // pre-multiply bound
	for i < len(w) && isDigit(w[i]) {
		d := uint64(w[i] - '0')
		if v > cutoff || v*10 > 1<<64-1-d {
			overflow = true
		} else {
			v = v*10 + d
		}
		i++
	}
	if i == 0 {
		return 0, ErrInvalidInt
	}
	s.Skip(i)
	if overflow || v > uintMax(bits) {
		return v, ErrRange
	}
	return v, ErrNone
}

// ReadAInt reads an ASCII signed decimal integer (optional leading '-' or
// '+') fitting the given bit width (Pa_int8/16/32/64).
func ReadAInt(s *Source, bits int) (int64, ErrCode) {
	w := s.Window(32)
	if len(w) == 0 {
		return 0, eofCode(s)
	}
	i := 0
	neg := false
	if w[i] == '-' || w[i] == '+' {
		neg = w[i] == '-'
		i++
	}
	start := i
	var v uint64
	dlim := len(w)
	if dlim > start+19 {
		dlim = start + 19
	}
	for i < dlim {
		d := uint64(w[i]) - '0'
		if d > 9 {
			break
		}
		v = v*10 + d
		i++
	}
	overflow := false
	for i < len(w) && isDigit(w[i]) {
		d := uint64(w[i] - '0')
		if v > (^uint64(0)-d)/10 {
			overflow = true
		} else {
			v = v*10 + d
		}
		i++
	}
	if i == start {
		return 0, ErrInvalidInt
	}
	s.Skip(i)
	lim := uint64(intMax(bits))
	if neg {
		lim++
	}
	if overflow || v > lim {
		return int64(v), ErrRange
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, ErrNone
}

// ReadAUintFW reads an unsigned ASCII integer stored in exactly width bytes
// (Puint16_FW(:3:) in Figure 4). Leading spaces or zeros are accepted.
func ReadAUintFW(s *Source, width, bits int) (uint64, ErrCode) {
	if width <= 0 {
		return 0, ErrBadParam
	}
	if s.Avail(width) < width {
		return 0, eofCode(s)
	}
	w := s.Peek(width)
	i := 0
	for i < width && w[i] == ' ' {
		i++
	}
	if i == width {
		s.Skip(width)
		return 0, ErrInvalidInt
	}
	var v uint64
	overflow := false
	for ; i < width; i++ {
		if !isDigit(w[i]) {
			s.Skip(width)
			return 0, ErrInvalidInt
		}
		d := uint64(w[i] - '0')
		if v > (^uint64(0)-d)/10 {
			overflow = true
		} else {
			v = v*10 + d
		}
	}
	s.Skip(width)
	if overflow || v > uintMax(bits) {
		return v, ErrRange
	}
	return v, ErrNone
}

// ReadAIntFW reads a signed ASCII integer stored in exactly width bytes,
// with optional leading spaces and sign.
func ReadAIntFW(s *Source, width, bits int) (int64, ErrCode) {
	if width <= 0 {
		return 0, ErrBadParam
	}
	if s.Avail(width) < width {
		return 0, eofCode(s)
	}
	w := s.Peek(width)
	i := 0
	for i < width && w[i] == ' ' {
		i++
	}
	neg := false
	if i < width && (w[i] == '-' || w[i] == '+') {
		neg = w[i] == '-'
		i++
	}
	if i == width {
		s.Skip(width)
		return 0, ErrInvalidInt
	}
	var v uint64
	for ; i < width; i++ {
		if !isDigit(w[i]) {
			s.Skip(width)
			return 0, ErrInvalidInt
		}
		v = v*10 + uint64(w[i]-'0')
	}
	s.Skip(width)
	lim := uint64(intMax(bits))
	if neg {
		lim++
	}
	if v > lim {
		return int64(v), ErrRange
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, ErrNone
}

// ReadBUint reads a binary unsigned integer of nbytes bytes in the source's
// byte order (Pb_uint8/16/32/64).
func ReadBUint(s *Source, nbytes int) (uint64, ErrCode) {
	if nbytes <= 0 || nbytes > 8 {
		return 0, ErrBadParam
	}
	if s.Avail(nbytes) < nbytes {
		return 0, eofCode(s)
	}
	w := s.Peek(nbytes)
	var v uint64
	if s.order == BigEndian {
		for _, b := range w {
			v = v<<8 | uint64(b)
		}
	} else {
		for i := nbytes - 1; i >= 0; i-- {
			v = v<<8 | uint64(w[i])
		}
	}
	s.Skip(nbytes)
	return v, ErrNone
}

// ReadBInt reads a binary two's-complement signed integer of nbytes bytes.
func ReadBInt(s *Source, nbytes int) (int64, ErrCode) {
	v, code := ReadBUint(s, nbytes)
	if code != ErrNone {
		return 0, code
	}
	// Sign-extend from nbytes*8 bits.
	shift := uint(64 - nbytes*8)
	return int64(v<<shift) >> shift, ErrNone
}

// ReadEUint reads an unsigned decimal written in EBCDIC characters
// (Pe_uint*): the EBCDIC analogue of ReadAUint.
func ReadEUint(s *Source, bits int) (uint64, ErrCode) {
	w := s.Window(32)
	if len(w) == 0 {
		return 0, eofCode(s)
	}
	i := 0
	var v uint64
	overflow := false
	for i < len(w) && w[i] >= 0xF0 && w[i] <= 0xF9 {
		d := uint64(w[i] - 0xF0)
		if v > (^uint64(0)-d)/10 {
			overflow = true
		} else {
			v = v*10 + d
		}
		i++
	}
	if i == 0 {
		return 0, ErrInvalidInt
	}
	s.Skip(i)
	if overflow || v > uintMax(bits) {
		return v, ErrRange
	}
	return v, ErrNone
}

// ReadEInt reads a signed decimal in EBCDIC characters (Pe_int*).
func ReadEInt(s *Source, bits int) (int64, ErrCode) {
	w := s.Window(32)
	if len(w) == 0 {
		return 0, eofCode(s)
	}
	i := 0
	neg := false
	if a := EBCDICToASCII(w[i]); a == '-' || a == '+' {
		neg = a == '-'
		i++
	}
	start := i
	var v uint64
	for i < len(w) && w[i] >= 0xF0 && w[i] <= 0xF9 {
		v = v*10 + uint64(w[i]-0xF0)
		i++
	}
	if i == start {
		return 0, ErrInvalidInt
	}
	s.Skip(i)
	lim := uint64(intMax(bits))
	if neg {
		lim++
	}
	if v > lim {
		return int64(v), ErrRange
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, ErrNone
}

// ReadUint reads an unsigned integer in the ambient coding (Puint8/16/32/64).
func ReadUint(s *Source, bits int) (uint64, ErrCode) {
	if s.coding == EBCDIC {
		return ReadEUint(s, bits)
	}
	return ReadAUint(s, bits)
}

// ReadInt reads a signed integer in the ambient coding (Pint8/16/32/64).
func ReadInt(s *Source, bits int) (int64, ErrCode) {
	if s.coding == EBCDIC {
		return ReadEInt(s, bits)
	}
	return ReadAInt(s, bits)
}

// ReadUintFW reads a fixed-width unsigned integer in the ambient coding.
func ReadUintFW(s *Source, width, bits int) (uint64, ErrCode) {
	if s.coding == EBCDIC {
		if s.Avail(width) < width {
			return 0, eofCode(s)
		}
		raw := s.Peek(width)
		ascii := make([]byte, width)
		for i, b := range raw {
			ascii[i] = EBCDICToASCII(b)
		}
		v, code := parseFWUnsigned(ascii, bits)
		s.Skip(width)
		return v, code
	}
	return ReadAUintFW(s, width, bits)
}

func parseFWUnsigned(w []byte, bits int) (uint64, ErrCode) {
	i := 0
	for i < len(w) && w[i] == ' ' {
		i++
	}
	if i == len(w) {
		return 0, ErrInvalidInt
	}
	var v uint64
	for ; i < len(w); i++ {
		if !isDigit(w[i]) {
			return 0, ErrInvalidInt
		}
		v = v*10 + uint64(w[i]-'0')
	}
	if v > uintMax(bits) {
		return v, ErrRange
	}
	return v, ErrNone
}

// AppendUint appends the shortest ASCII decimal form of v.
func AppendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// AppendInt appends the shortest ASCII decimal form of v.
func AppendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// AppendUintFW appends v right-aligned in exactly width bytes, zero-padded.
func AppendUintFW(dst []byte, v uint64, width int) []byte {
	tmp := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp...)
}

// AppendIntFW appends v in exactly width bytes: zero-padded, with a leading
// '-' consuming one position for negative values.
func AppendIntFW(dst []byte, v int64, width int) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return AppendUintFW(dst, uint64(-v), width-1)
	}
	return AppendUintFW(dst, uint64(v), width)
}

// AppendDate appends a date in its original text when known, else as epoch
// seconds.
func AppendDate(dst []byte, d DateVal) []byte {
	if d.Raw != "" {
		return append(dst, d.Raw...)
	}
	return AppendInt(dst, d.Sec)
}

// AppendBUint appends the binary encoding of v in nbytes bytes with the
// given order.
func AppendBUint(dst []byte, v uint64, nbytes int, order ByteOrder) []byte {
	tmp := make([]byte, nbytes)
	if order == BigEndian {
		for i := nbytes - 1; i >= 0; i-- {
			tmp[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := 0; i < nbytes; i++ {
			tmp[i] = byte(v)
			v >>= 8
		}
	}
	return append(dst, tmp...)
}

// AppendEUint appends the EBCDIC-character decimal form of v.
func AppendEUint(dst []byte, v uint64) []byte {
	start := len(dst)
	dst = AppendUint(dst, v)
	for i := start; i < len(dst); i++ {
		dst[i] = ASCIIToEBCDIC(dst[i])
	}
	return dst
}
