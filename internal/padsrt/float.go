package padsrt

import "strconv"

// Floating-point base types (Pa_float32/64 and the coding-generic Pfloat*).

// ReadAFloat reads an ASCII floating-point number: an optional sign, digits
// with an optional fraction, and an optional exponent.
func ReadAFloat(s *Source, bits int) (float64, ErrCode) {
	w := s.Window(64)
	if len(w) == 0 {
		return 0, eofCode(s)
	}
	i := 0
	if w[i] == '-' || w[i] == '+' {
		i++
	}
	start := i
	for i < len(w) && isDigit(w[i]) {
		i++
	}
	intDigits := i - start
	fracDigits := 0
	if i < len(w) && w[i] == '.' {
		i++
		for i < len(w) && isDigit(w[i]) {
			i++
			fracDigits++
		}
	}
	if intDigits == 0 && fracDigits == 0 {
		return 0, ErrInvalidFloat
	}
	if i < len(w) && (w[i] == 'e' || w[i] == 'E') {
		j := i + 1
		if j < len(w) && (w[j] == '-' || w[j] == '+') {
			j++
		}
		expDigits := 0
		for j < len(w) && isDigit(w[j]) {
			j++
			expDigits++
		}
		if expDigits > 0 {
			i = j
		}
	}
	v, err := strconv.ParseFloat(string(w[:i]), bits)
	if err != nil {
		return 0, ErrInvalidFloat
	}
	s.Skip(i)
	return v, ErrNone
}

// AppendFloat appends the shortest round-trippable decimal form of v.
func AppendFloat(dst []byte, v float64, bits int) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, bits)
}
