package padsrt

import "fmt"

// State is the parse state recorded in a parse descriptor. It mirrors the
// Pflags_t pstate field of the C run time (Figure 6 of the paper): Normal,
// Partial, or Panicking.
type State uint8

// Parse states.
const (
	// Normal: the value parsed without structural damage (it may still
	// carry semantic errors — consult Nerr and ErrCode).
	Normal State = iota
	// Partial: some sub-component failed but the parser recovered within
	// the value, so the representation is partially filled in.
	Partial
	// Panicking: the parser lost synchronization inside this value and
	// skipped ahead (typically to the next record boundary).
	Panicking
)

// String names the state.
func (s State) String() string {
	switch s {
	case Normal:
		return "Normal"
	case Partial:
		return "Partial"
	case Panicking:
		return "Panicking"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// PD is a parse descriptor: the per-value error report every PADS parsing
// function returns alongside the in-memory representation. Structured types
// embed one PD per component next to this header, exactly as the generated
// C structs do in Figure 6 of the paper.
type PD struct {
	State   State   // Normal, Partial, or Panicking
	Nerr    uint32  // number of errors detected inside this value
	ErrCode ErrCode // code of the first detected error
	Loc     Loc     // location of the first detected error
}

// IsOK reports whether the value parsed without any detected error.
func (pd *PD) IsOK() bool { return pd.Nerr == 0 }

// SetError records an error in the descriptor. Only the first error's code
// and location are kept; the count always increments. It returns the code
// for call-chaining convenience.
func (pd *PD) SetError(code ErrCode, loc Loc) ErrCode {
	if pd.Nerr == 0 {
		pd.ErrCode = code
		pd.Loc = loc
	}
	pd.Nerr++
	return code
}

// AddChildErrors propagates a child descriptor's errors into a parent. The
// parent inherits the child's first-error code and location (so "the error
// code of the first detected error" stays specific all the way up); the
// supplied code is a fallback for children flagged without a code.
func (pd *PD) AddChildErrors(child *PD, code ErrCode) {
	if child.Nerr == 0 {
		return
	}
	if pd.Nerr == 0 {
		cc := child.ErrCode
		if cc == ErrNone {
			cc = code
		}
		pd.ErrCode = cc
		pd.Loc = child.Loc
	}
	pd.Nerr += child.Nerr
	if child.State == Panicking {
		pd.State = Panicking
	} else if pd.State == Normal {
		pd.State = Partial
	}
}

// Reset returns the descriptor to the clean state so it can be reused
// across records, which keeps per-record parsing allocation-free.
func (pd *PD) Reset() { *pd = PD{} }

// String summarizes the descriptor for diagnostics.
func (pd *PD) String() string {
	if pd.Nerr == 0 {
		return "ok"
	}
	return fmt.Sprintf("%s nerr=%d first=%v at %v", pd.State, pd.Nerr, pd.ErrCode, pd.Loc)
}
