// Package padsrt is the PADS run-time library: streaming input sources with
// record disciplines and speculation checkpoints, parse descriptors, masks,
// and the base-type parsers and printers (ASCII, binary, and EBCDIC) that
// both the description interpreter and the generated parsers are built on.
//
// It is the Go counterpart of the C run time described in section 6 of
// "PADS: a domain-specific language for processing ad hoc data" (PLDI 2005),
// which the paper reports as roughly 30,000 lines of C built on the AST and
// SFIO libraries. Everything here is stdlib-only.
package padsrt

import "fmt"

// ErrCode identifies the first error detected while parsing a value. The
// codes mirror the PerrCode_t enumeration of the C run time: system errors,
// syntax errors, and semantic (user-constraint) errors are distinguished so
// applications can react per class.
type ErrCode int

// Error codes. ErrNone means the parse was clean.
const (
	ErrNone ErrCode = iota

	// System errors.
	ErrIO            // the underlying reader failed
	ErrBadParam      // a bad argument reached a run-time entry point
	ErrInternal      // invariant violation inside the run time
	ErrRecordTooLong // record exceeded Limits.MaxRecordLen and was clamped

	// Syntax errors.
	ErrAtEOF           // input exhausted before the value finished
	ErrAtEOR           // record exhausted before the value finished
	ErrExtraBeforeEOR  // data remained when end-of-record was required
	ErrMissingLiteral  // a char/string/regexp literal did not match
	ErrInvalidInt      // malformed integer
	ErrRange           // integer does not fit the declared width
	ErrInvalidChar     // malformed character
	ErrInvalidString   // malformed string (e.g. unterminated)
	ErrInvalidDate     // unrecognized date/time
	ErrInvalidIP       // malformed dotted-quad IP address
	ErrInvalidHostname // malformed hostname
	ErrInvalidZip      // malformed zip code
	ErrInvalidFloat    // malformed floating-point number
	ErrInvalidEnum     // no enumeration literal matched
	ErrInvalidRegexp   // regexp base type failed to match
	ErrInvalidBCD      // malformed packed-decimal (COMP-3) datum
	ErrInvalidZoned    // malformed zoned-decimal datum
	ErrUnionMatch      // no branch of a Punion parsed
	ErrUnionTag        // switched union selector matched no case
	ErrArraySep        // array separator missing between elements
	ErrArrayTerm       // array terminator missing
	ErrArraySize       // array size bounds violated
	ErrArrayElem       // one or more array elements had errors
	ErrStructField     // one or more struct fields had errors
	ErrRecordLength    // record shorter than a fixed-width type requires
	ErrOptFailed       // internal: the present branch of a Popt failed

	// Semantic errors.
	ErrConstraint // a user-supplied predicate evaluated to false
	ErrWhere      // a Pwhere clause evaluated to false

	// Panic recovery.
	ErrPanicSkipped // data skipped while re-synchronizing at a record boundary
)

var errNames = map[ErrCode]string{
	ErrNone:            "no error",
	ErrIO:              "I/O error",
	ErrBadParam:        "bad parameter",
	ErrInternal:        "internal error",
	ErrRecordTooLong:   "record exceeds length limit",
	ErrAtEOF:           "unexpected end of input",
	ErrAtEOR:           "unexpected end of record",
	ErrExtraBeforeEOR:  "extra data before end of record",
	ErrMissingLiteral:  "literal not found",
	ErrInvalidInt:      "invalid integer",
	ErrRange:           "integer out of range",
	ErrInvalidChar:     "invalid character",
	ErrInvalidString:   "invalid string",
	ErrInvalidDate:     "invalid date",
	ErrInvalidIP:       "invalid IP address",
	ErrInvalidHostname: "invalid hostname",
	ErrInvalidZip:      "invalid zip code",
	ErrInvalidFloat:    "invalid floating-point number",
	ErrInvalidEnum:     "invalid enumeration literal",
	ErrInvalidRegexp:   "regular expression did not match",
	ErrInvalidBCD:      "invalid packed decimal",
	ErrInvalidZoned:    "invalid zoned decimal",
	ErrUnionMatch:      "no union branch matched",
	ErrUnionTag:        "union selector matched no case",
	ErrArraySep:        "missing array separator",
	ErrArrayTerm:       "missing array terminator",
	ErrArraySize:       "array size out of bounds",
	ErrArrayElem:       "array element error",
	ErrStructField:     "struct field error",
	ErrRecordLength:    "record too short",
	ErrOptFailed:       "optional value not present",
	ErrConstraint:      "user constraint violated",
	ErrWhere:           "Pwhere clause violated",
	ErrPanicSkipped:    "data skipped during panic recovery",
}

// String returns a human-readable description of the error code.
func (e ErrCode) String() string {
	if s, ok := errNames[e]; ok {
		return s
	}
	return fmt.Sprintf("ErrCode(%d)", int(e))
}

// Class is the coarse classification of an error code used when deciding an
// application-level response (section 1 of the paper: halt, repair, or
// discard depending on the class of failure).
type Class int

// Error classes.
const (
	ClassNone Class = iota
	ClassSystem
	ClassSyntax
	ClassSemantic
)

// Class reports which class the code belongs to.
func (e ErrCode) Class() Class {
	switch {
	case e == ErrNone:
		return ClassNone
	case e >= ErrIO && e <= ErrRecordTooLong:
		return ClassSystem
	case e >= ErrConstraint && e <= ErrWhere:
		return ClassSemantic
	default:
		return ClassSyntax
	}
}

// Pos is a position in the input: an absolute byte offset plus the
// record-relative coordinates used in diagnostics. For newline-delimited
// ASCII data Record is the line number (1-based) and Col the 1-based byte
// offset within the line.
type Pos struct {
	Byte   int64 // absolute byte offset from the start of the source
	Record int   // 1-based record number; 0 if outside any record
	Col    int   // 1-based byte offset within the record
}

// String formats the position as record:col (byte offset).
func (p Pos) String() string {
	return fmt.Sprintf("%d:%d(@%d)", p.Record, p.Col, p.Byte)
}

// Loc is the span of input a value (or its first error) occupies.
type Loc struct {
	Begin Pos
	End   Pos
}

// String formats the span.
func (l Loc) String() string {
	return fmt.Sprintf("%s-%s", l.Begin, l.End)
}
