package padsrt

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// ---- Checkpointed compaction regression (union backtracking over records
// larger than the 64 KiB compaction threshold) ----

// TestCompactPinnedByCheckpoint drives a deep union-style backtracking parse
// over records bigger than the compaction threshold and checks that offsets,
// record numbers, and record bytes stay consistent: compact() must never run
// while a checkpoint pins the window, and positions reported after a Restore
// must match those recorded before the speculation.
func TestCompactPinnedByCheckpoint(t *testing.T) {
	// Three records, each ~96 KiB (larger than the 64 KiB compact
	// threshold), streamed so the window grows incrementally.
	const recSize = 96 * 1024
	var input bytes.Buffer
	for r := 0; r < 3; r++ {
		for i := 0; i < recSize; i++ {
			input.WriteByte(byte('a' + (r+i)%26))
		}
		input.WriteByte('\n')
	}
	want := input.Bytes()

	s := NewSource(&oneChunkReader{data: input.Bytes(), chunk: 8192})
	for r := 0; r < 3; r++ {
		mustBegin(t, s)
		startPos := s.Pos()
		if wantByte := int64(r) * (recSize + 1); startPos.Byte != wantByte {
			t.Fatalf("record %d begins at byte %d, want %d", r+1, startPos.Byte, wantByte)
		}

		// Speculate like a Punion: consume most of the record on a doomed
		// branch (nested two deep), then restore.
		s.Checkpoint()
		s.Skip(recSize / 2)
		s.Checkpoint()
		s.Skip(recSize / 4)
		if got := s.Pos().Byte; got != startPos.Byte+int64(recSize/2+recSize/4) {
			t.Fatalf("record %d: mid-speculation byte %d, want %d", r+1, got, startPos.Byte+int64(recSize/2+recSize/4))
		}
		s.Restore()
		s.Restore()
		if got := s.Pos(); got != startPos {
			t.Fatalf("record %d: position after Restore = %+v, want %+v", r+1, got, startPos)
		}

		// The winning branch reads the whole record; its bytes must match
		// the original input at the reported absolute offset.
		body := s.RecordBytes()
		off := int(startPos.Byte)
		if !bytes.Equal(body, want[off:off+recSize]) {
			t.Fatalf("record %d: body diverges from input at offset %d", r+1, off)
		}
		s.SkipToEOR()
		var pd PD
		s.EndRecord(&pd)
		if pd.Nerr != 0 {
			t.Fatalf("record %d: unexpected errors %v", r+1, &pd)
		}
	}
	if ok, _ := s.BeginRecord(); ok {
		t.Fatal("expected end of input after three records")
	}
}

// oneChunkReader yields the data in fixed-size chunks so the sliding window
// grows (and compacts) the way a real streaming source makes it.
type oneChunkReader struct {
	data  []byte
	chunk int
	pos   int
}

func (r *oneChunkReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data)-r.pos {
		n = len(r.data) - r.pos
	}
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	return n, nil
}

// ---- Borrowed sources and shard bases ----

func TestBorrowedSourceSetBase(t *testing.T) {
	data := []byte("aaa\nbbb\nccc\n")
	s := NewBorrowedSource(data[4:])
	s.SetBase(4, 1)
	mustBegin(t, s)
	if got := s.RecordNum(); got != 2 {
		t.Errorf("RecordNum = %d, want 2 (one prior record declared)", got)
	}
	if got := s.Pos().Byte; got != 4 {
		t.Errorf("Pos().Byte = %d, want 4", got)
	}
	if got := string(s.RecordBytes()); got != "bbb" {
		t.Errorf("RecordBytes = %q, want %q", got, "bbb")
	}
	s.SkipToEOR()
	s.EndRecord(nil)
	// The borrowed buffer must never be shifted by compaction.
	if !bytes.Equal(data, []byte("aaa\nbbb\nccc\n")) {
		t.Fatal("borrowed buffer was modified")
	}
}

// ---- Satellite: intern-cache allocation behavior on the hot path ----

// BenchmarkSourceIntern measures per-record string production for the
// vocabulary-shaped fields ad hoc data is made of (the Sirius feed has ~420
// distinct states across millions of records). With the intern cache on the
// ReadStringTerm / ReadHostname / ReadZip / ReadStringSE paths, steady-state
// allocs/op drop to ~0 (run with -benchmem).
func BenchmarkSourceIntern(b *testing.B) {
	const vocab = 64
	bench := func(b *testing.B, data []byte, read func(s *Source) ErrCode) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewBorrowedSource(data)
			for {
				ok, err := s.BeginRecord()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				if code := read(s); code != ErrNone {
					b.Fatalf("read: %v", code)
				}
				s.SkipToEOR()
				s.EndRecord(nil)
			}
		}
	}

	b.Run("term", func(b *testing.B) {
		var buf strings.Builder
		for i := 0; i < 4096; i++ {
			fmt.Fprintf(&buf, "STATE_%02d|rest\n", i%vocab)
		}
		bench(b, []byte(buf.String()), func(s *Source) ErrCode {
			_, code := ReadStringTerm(s, '|')
			return code
		})
	})
	b.Run("hostname", func(b *testing.B) {
		var buf strings.Builder
		for i := 0; i < 4096; i++ {
			fmt.Fprintf(&buf, "host%02d.example.com rest\n", i%vocab)
		}
		bench(b, []byte(buf.String()), func(s *Source) ErrCode {
			_, code := ReadHostname(s)
			return code
		})
	})
	b.Run("zip", func(b *testing.B) {
		var buf strings.Builder
		for i := 0; i < 4096; i++ {
			fmt.Fprintf(&buf, "%05d rest\n", 7000+i%vocab)
		}
		bench(b, []byte(buf.String()), func(s *Source) ErrCode {
			_, code := ReadZip(s)
			return code
		})
	})
}
