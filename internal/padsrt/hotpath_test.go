package padsrt

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"pads/internal/telemetry"
)

// ---- Checkpointed compaction regression (union backtracking over records
// larger than the 64 KiB compaction threshold) ----

// TestCompactPinnedByCheckpoint drives a deep union-style backtracking parse
// over records bigger than the compaction threshold and checks that offsets,
// record numbers, and record bytes stay consistent: compact() must never run
// while a checkpoint pins the window, and positions reported after a Restore
// must match those recorded before the speculation.
func TestCompactPinnedByCheckpoint(t *testing.T) {
	// Three records, each ~96 KiB (larger than the 64 KiB compact
	// threshold), streamed so the window grows incrementally.
	const recSize = 96 * 1024
	var input bytes.Buffer
	for r := 0; r < 3; r++ {
		for i := 0; i < recSize; i++ {
			input.WriteByte(byte('a' + (r+i)%26))
		}
		input.WriteByte('\n')
	}
	want := input.Bytes()

	s := NewSource(&oneChunkReader{data: input.Bytes(), chunk: 8192})
	for r := 0; r < 3; r++ {
		mustBegin(t, s)
		startPos := s.Pos()
		if wantByte := int64(r) * (recSize + 1); startPos.Byte != wantByte {
			t.Fatalf("record %d begins at byte %d, want %d", r+1, startPos.Byte, wantByte)
		}

		// Speculate like a Punion: consume most of the record on a doomed
		// branch (nested two deep), then restore.
		s.Checkpoint()
		s.Skip(recSize / 2)
		s.Checkpoint()
		s.Skip(recSize / 4)
		if got := s.Pos().Byte; got != startPos.Byte+int64(recSize/2+recSize/4) {
			t.Fatalf("record %d: mid-speculation byte %d, want %d", r+1, got, startPos.Byte+int64(recSize/2+recSize/4))
		}
		s.Restore()
		s.Restore()
		if got := s.Pos(); got != startPos {
			t.Fatalf("record %d: position after Restore = %+v, want %+v", r+1, got, startPos)
		}

		// The winning branch reads the whole record; its bytes must match
		// the original input at the reported absolute offset.
		body := s.RecordBytes()
		off := int(startPos.Byte)
		if !bytes.Equal(body, want[off:off+recSize]) {
			t.Fatalf("record %d: body diverges from input at offset %d", r+1, off)
		}
		s.SkipToEOR()
		var pd PD
		s.EndRecord(&pd)
		if pd.Nerr != 0 {
			t.Fatalf("record %d: unexpected errors %v", r+1, &pd)
		}
	}
	if ok, _ := s.BeginRecord(); ok {
		t.Fatal("expected end of input after three records")
	}
}

// oneChunkReader yields the data in fixed-size chunks so the sliding window
// grows (and compacts) the way a real streaming source makes it.
type oneChunkReader struct {
	data  []byte
	chunk int
	pos   int
}

func (r *oneChunkReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data)-r.pos {
		n = len(r.data) - r.pos
	}
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	return n, nil
}

// ---- Borrowed sources and shard bases ----

func TestBorrowedSourceSetBase(t *testing.T) {
	data := []byte("aaa\nbbb\nccc\n")
	s := NewBorrowedSource(data[4:])
	s.SetBase(4, 1)
	mustBegin(t, s)
	if got := s.RecordNum(); got != 2 {
		t.Errorf("RecordNum = %d, want 2 (one prior record declared)", got)
	}
	if got := s.Pos().Byte; got != 4 {
		t.Errorf("Pos().Byte = %d, want 4", got)
	}
	if got := string(s.RecordBytes()); got != "bbb" {
		t.Errorf("RecordBytes = %q, want %q", got, "bbb")
	}
	s.SkipToEOR()
	s.EndRecord(nil)
	// The borrowed buffer must never be shifted by compaction.
	if !bytes.Equal(data, []byte("aaa\nbbb\nccc\n")) {
		t.Fatal("borrowed buffer was modified")
	}
}

// ---- Telemetry counter accuracy under speculation (docs/OBSERVABILITY.md) ----

// TestStatsCheckpointCounters replays the checkpointed-compaction scenario
// above with a telemetry sink attached and checks the speculation counters
// against the known script: nested union-style checkpoints over records
// larger than the source buffer, where compaction runs between records but
// is pinned during speculation. Every Checkpoint must be balanced by exactly
// one Commit or Restore, and the depth watermark must match the deepest
// nesting actually reached.
func TestStatsCheckpointCounters(t *testing.T) {
	const recSize = 96 * 1024
	var input bytes.Buffer
	for r := 0; r < 3; r++ {
		for i := 0; i < recSize; i++ {
			input.WriteByte(byte('a' + (r+i)%26))
		}
		input.WriteByte('\n')
	}

	st := telemetry.NewStats()
	s := NewSource(&oneChunkReader{data: input.Bytes(), chunk: 8192}, WithStats(st))
	for r := 0; r < 3; r++ {
		mustBegin(t, s)
		// Two doomed nested branches, then a committed winner.
		s.Checkpoint()
		s.Skip(recSize / 2)
		s.Checkpoint()
		s.Skip(recSize / 4)
		s.Restore()
		s.Restore()
		s.Checkpoint()
		s.Skip(recSize / 2)
		s.Commit()
		s.SkipToEOR()
		s.EndRecord(nil)
	}
	if ok, _ := s.BeginRecord(); ok {
		t.Fatal("expected end of input after three records")
	}

	src := &st.Source
	if got, want := src.Checkpoints, uint64(9); got != want {
		t.Errorf("Checkpoints = %d, want %d", got, want)
	}
	if got, want := src.Commits, uint64(3); got != want {
		t.Errorf("Commits = %d, want %d", got, want)
	}
	if got, want := src.Restores, uint64(6); got != want {
		t.Errorf("Restores = %d, want %d", got, want)
	}
	if src.Checkpoints != src.Commits+src.Restores {
		t.Errorf("Checkpoints (%d) != Commits (%d) + Restores (%d): unbalanced speculation",
			src.Checkpoints, src.Commits, src.Restores)
	}
	if got, want := src.MaxSpecDepth, uint64(2); got != want {
		t.Errorf("MaxSpecDepth = %d, want %d", got, want)
	}
	if got, want := src.RecordsBegun, uint64(3); got != want {
		t.Errorf("RecordsBegun = %d, want %d", got, want)
	}
	if got, want := src.RecordsEnded, uint64(3); got != want {
		t.Errorf("RecordsEnded = %d, want %d", got, want)
	}
	if got, want := src.BytesRead, uint64(input.Len()); got != want {
		t.Errorf("BytesRead = %d, want %d (the whole input)", got, want)
	}
	if src.Fills == 0 {
		t.Error("Fills = 0, want > 0 (streamed in 8 KiB chunks)")
	}
	// Records are larger than the compaction threshold, so the window must
	// have compacted between records — and the counters must have seen it.
	if src.Compacts == 0 {
		t.Error("Compacts = 0, want > 0 (records exceed the compact threshold)")
	}
	if src.Compacts > 0 && src.CompactBytes == 0 {
		t.Error("CompactBytes = 0 with Compacts > 0")
	}
}

// TestDisabledTelemetryNoAllocs is the zero-overhead-when-disabled guarantee
// in its strictest form: with no Stats attached (the default), a steady-state
// record loop over the hot paths must not allocate at all. A counter hook
// that boxed, deferred, or built an event on the disabled path would show up
// here deterministically, without benchmark noise.
func TestDisabledTelemetryNoAllocs(t *testing.T) {
	var buf strings.Builder
	for i := 0; i < 512; i++ {
		fmt.Fprintf(&buf, "STATE_%02d|rest\n", i%16)
	}
	data := []byte(buf.String())

	parse := func() {
		s := NewBorrowedSource(data)
		for {
			ok, err := s.BeginRecord()
			if err != nil || !ok {
				break
			}
			s.Checkpoint()
			if _, code := ReadStringTerm(s, '|'); code != ErrNone {
				s.Restore()
			} else {
				s.Commit()
			}
			s.SkipToEOR()
			s.EndRecord(nil)
		}
	}
	parse() // warm the intern cache
	// Each run constructs one Source (a fixed number of allocations,
	// independent of input size); the 512 records themselves must contribute
	// nothing. A hook that allocated even once per record would push this
	// past 512.
	if allocs := testing.AllocsPerRun(10, parse); allocs > 32 {
		t.Errorf("disabled-telemetry parse loop allocates %.1f per run, want <= 32 (no per-record cost)", allocs)
	}
}

// ---- Satellite: intern-cache allocation behavior on the hot path ----

// BenchmarkSourceIntern measures per-record string production for the
// vocabulary-shaped fields ad hoc data is made of (the Sirius feed has ~420
// distinct states across millions of records). With the intern cache on the
// ReadStringTerm / ReadHostname / ReadZip / ReadStringSE paths, steady-state
// allocs/op drop to ~0 (run with -benchmem).
func BenchmarkSourceIntern(b *testing.B) {
	const vocab = 64
	bench := func(b *testing.B, data []byte, read func(s *Source) ErrCode) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewBorrowedSource(data)
			for {
				ok, err := s.BeginRecord()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				if code := read(s); code != ErrNone {
					b.Fatalf("read: %v", code)
				}
				s.SkipToEOR()
				s.EndRecord(nil)
			}
		}
	}

	b.Run("term", func(b *testing.B) {
		var buf strings.Builder
		for i := 0; i < 4096; i++ {
			fmt.Fprintf(&buf, "STATE_%02d|rest\n", i%vocab)
		}
		bench(b, []byte(buf.String()), func(s *Source) ErrCode {
			_, code := ReadStringTerm(s, '|')
			return code
		})
	})
	b.Run("hostname", func(b *testing.B) {
		var buf strings.Builder
		for i := 0; i < 4096; i++ {
			fmt.Fprintf(&buf, "host%02d.example.com rest\n", i%vocab)
		}
		bench(b, []byte(buf.String()), func(s *Source) ErrCode {
			_, code := ReadHostname(s)
			return code
		})
	})
	b.Run("zip", func(b *testing.B) {
		var buf strings.Builder
		for i := 0; i < 4096; i++ {
			fmt.Fprintf(&buf, "%05d rest\n", 7000+i%vocab)
		}
		bench(b, []byte(buf.String()), func(s *Source) ErrCode {
			_, code := ReadZip(s)
			return code
		})
	})
}
