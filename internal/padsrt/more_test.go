package padsrt

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReadAIntFW(t *testing.T) {
	cases := []struct {
		in    string
		width int
		want  int64
		code  ErrCode
	}{
		{"-12x", 3, -12, ErrNone},
		{"+12x", 3, 12, ErrNone},
		{" 42x", 3, 42, ErrNone},
		{"127x", 3, 127, ErrNone},
		{"1a3x", 3, 0, ErrInvalidInt},
		{"   x", 3, 0, ErrInvalidInt},
		{"12", 3, 0, ErrAtEOR},
	}
	for _, c := range cases {
		s := recSrc(t, c.in)
		v, code := ReadAIntFW(s, c.width, 16)
		if code != c.code || (code == ErrNone && v != c.want) {
			t.Errorf("ReadAIntFW(%q,%d) = %d,%v want %d,%v", c.in, c.width, v, code, c.want, c.code)
		}
	}
	// Range: -129 does not fit int8.
	s := recSrc(t, "-129!")
	if _, code := ReadAIntFW(s, 4, 8); code != ErrRange {
		t.Errorf("range code = %v", code)
	}
}

func TestReadEIntAndDispatch(t *testing.T) {
	data := StringToEBCDICBytes("-123|456")
	s := NewBytesSource(data, WithDiscipline(NoRecords()), WithCoding(EBCDIC))
	v, code := ReadEInt(s, 32)
	if code != ErrNone || v != -123 {
		t.Fatalf("ReadEInt = %d,%v", v, code)
	}
	if code := MatchChar(s, '|'); code != ErrNone {
		t.Fatal(code)
	}
	// The ambient dispatchers pick the EBCDIC readers.
	u, code := ReadUint(s, 32)
	if code != ErrNone || u != 456 {
		t.Fatalf("ReadUint(EBCDIC) = %d,%v", u, code)
	}

	s2 := NewBytesSource([]byte("789"), WithDiscipline(NoRecords()))
	i, code := ReadInt(s2, 32)
	if code != ErrNone || i != 789 {
		t.Fatalf("ReadInt(ASCII) = %d,%v", i, code)
	}
}

func TestReadUintFWEBCDIC(t *testing.T) {
	data := StringToEBCDICBytes(" 42rest")
	s := NewBytesSource(data, WithDiscipline(NoRecords()), WithCoding(EBCDIC))
	v, code := ReadUintFW(s, 3, 16)
	if code != ErrNone || v != 42 {
		t.Fatalf("= %d,%v", v, code)
	}
	// Non-digit inside the field.
	data = StringToEBCDICBytes("4x2")
	s = NewBytesSource(data, WithDiscipline(NoRecords()), WithCoding(EBCDIC))
	if _, code := ReadUintFW(s, 3, 16); code != ErrInvalidInt {
		t.Fatalf("code = %v", code)
	}
	// Too large for the bit width.
	data = StringToEBCDICBytes("300")
	s = NewBytesSource(data, WithDiscipline(NoRecords()), WithCoding(EBCDIC))
	if _, code := ReadUintFW(s, 3, 8); code != ErrRange {
		t.Fatalf("range code = %v", code)
	}
}

func TestAppendHelpers(t *testing.T) {
	if got := string(AppendIntFW(nil, -42, 5)); got != "-0042" {
		t.Errorf("AppendIntFW = %q", got)
	}
	if got := string(AppendIntFW(nil, 42, 5)); got != "00042" {
		t.Errorf("AppendIntFW = %q", got)
	}
	if got := string(AppendInt(nil, -7)); got != "-7" {
		t.Errorf("AppendInt = %q", got)
	}
	if got := string(AppendDate(nil, DateVal{Sec: 99, Raw: "raw text"})); got != "raw text" {
		t.Errorf("AppendDate = %q", got)
	}
	if got := string(AppendDate(nil, DateVal{Sec: 99})); got != "99" {
		t.Errorf("AppendDate no raw = %q", got)
	}
	if got := string(AppendFloat(nil, 2.5, 64)); got != "2.5" {
		t.Errorf("AppendFloat = %q", got)
	}
	if got := EBCDICBytesToString(AppendEUint(nil, 905)); got != "905" {
		t.Errorf("AppendEUint = %q", got)
	}
	if got := string(AppendString(nil, "hi", ASCII)); got != "hi" {
		t.Errorf("AppendString = %q", got)
	}
	if got := EBCDICBytesToString(AppendString(nil, "hi", EBCDIC)); got != "hi" {
		t.Errorf("AppendString EBCDIC = %q", got)
	}
	if got := AppendChar(nil, '|', EBCDIC); got[0] != ASCIIToEBCDIC('|') {
		t.Errorf("AppendChar EBCDIC = %v", got)
	}
}

// Property: ASCII fixed-width signed integers round-trip.
func TestIntFWRoundTrip(t *testing.T) {
	f := func(v int16) bool {
		buf := AppendIntFW(nil, int64(v), 6)
		s := NewBytesSource(buf, WithDiscipline(NoRecords()))
		got, code := ReadAIntFW(s, 6, 16)
		return code == ErrNone && got == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{ASCII.String(), "ASCII"},
		{EBCDIC.String(), "EBCDIC"},
		{BigEndian.String(), "big-endian"},
		{LittleEndian.String(), "little-endian"},
		{Newline().Name(), "newline"},
		{FixedWidth(8).Name(), "fixed(8)"},
		{LenPrefix().Name(), "lenprefix(4)"},
		{NoRecords().Name(), "none"},
		{Normal.String(), "Normal"},
		{Partial.String(), "Partial"},
		{Panicking.String(), "Panicking"},
		{CheckAndSet.String(), "CheckAndSet"},
		{Ignore.String(), "Ignore"},
		{Set.String(), "Set"},
		{Check.String(), "Check"},
		{ErrNone.String(), "no error"},
		{ErrCode(9999).String(), "ErrCode(9999)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String = %q, want %q", c.got, c.want)
		}
	}
	var pd PD
	if pd.String() != "ok" || !pd.IsOK() {
		t.Errorf("clean pd = %q", pd.String())
	}
	pd.SetError(ErrRange, Loc{Begin: Pos{Byte: 3, Record: 1, Col: 4}})
	if pd.IsOK() || !strings.Contains(pd.String(), "integer out of range") {
		t.Errorf("pd = %q", pd.String())
	}
	if !strings.Contains(pd.Loc.String(), "1:4(@3)") {
		t.Errorf("loc = %q", pd.Loc.String())
	}
	pd.Reset()
	if !pd.IsOK() {
		t.Error("Reset did not clear")
	}
}

func TestFrameRecordAllDisciplines(t *testing.T) {
	body := []byte("abc")
	var out []byte
	FrameRecord(Newline(), &out, body)
	if string(out) != "abc\n" {
		t.Errorf("newline frame = %q", out)
	}
	out = nil
	FrameRecord(FixedWidth(5), &out, body)
	if len(out) != 5 || string(out[:3]) != "abc" || out[3] != 0 {
		t.Errorf("fixed frame = %q", out)
	}
	out = nil
	FrameRecord(NoRecords(), &out, body)
	if string(out) != "abc" {
		t.Errorf("none frame = %q", out)
	}
	out = nil
	FrameRecord(LenPrefix(), &out, body)
	if len(out) != 7 || out[3] != 3 {
		t.Errorf("lenprefix frame = %v", out)
	}
}

func TestMaskElem(t *testing.T) {
	m := NewMaskNode(Ignore)
	em := m.ElemMask()
	if em.BaseMask() != Ignore {
		t.Errorf("elem inherit = %v", em.BaseMask())
	}
	m2 := NewMaskNode(CheckAndSet)
	if m2.ElemMask() != nil {
		t.Error("full mask elem should be nil")
	}
	explicit := NewMaskNode(CheckAndSet)
	explicit.Elem = NewMaskNode(Set)
	if explicit.ElemMask().BaseMask() != Set {
		t.Error("explicit elem mask lost")
	}
}

func TestReadPhone(t *testing.T) {
	s := recSrc(t, "9735551212|")
	v, code := ReadPhone(s)
	if code != ErrNone || v != 9735551212 {
		t.Errorf("= %d,%v", v, code)
	}
}

func TestInternStability(t *testing.T) {
	// Repeated reads of the same token return the same backing string.
	line := strings.Repeat("LOC_6|", 100)
	s := recSrc(t, line)
	for i := 0; i < 100; i++ {
		v, code := ReadStringTerm(s, '|')
		if code != ErrNone || v != "LOC_6" {
			t.Fatalf("read %d = %q,%v", i, v, code)
		}
		MatchChar(s, '|')
	}
}

func TestLenPrefixLittleEndianRecords(t *testing.T) {
	d := &LenPrefixDisc{HeaderBytes: 4, Order: LittleEndian}
	var data []byte
	d.writeRecord(&data, []byte("hello"))
	if data[0] != 5 || data[3] != 0 {
		t.Fatalf("little-endian header = %v", data[:4])
	}
	s := NewBytesSource(data, WithDiscipline(d))
	mustBegin(t, s)
	if got := string(s.RecordBytes()); got != "hello" {
		t.Fatalf("record = %q", got)
	}
}

func TestSourceAccessors(t *testing.T) {
	s := NewBytesSource([]byte("x"), WithCoding(EBCDIC), WithByteOrder(LittleEndian))
	if s.Coding() != EBCDIC || s.ByteOrder() != LittleEndian {
		t.Error("options lost")
	}
	s.SetCoding(ASCII)
	s.SetByteOrder(BigEndian)
	s.SetDiscipline(FixedWidth(1))
	if s.Coding() != ASCII || s.ByteOrder() != BigEndian || s.Discipline().Name() != "fixed(1)" {
		t.Error("setters lost")
	}
	if !strings.Contains(s.String(), "fixed(1)") {
		t.Errorf("String = %q", s.String())
	}
}

// A user-defined record encoding (section 3: "allows users to define their
// own encodings"): records framed as <ASCII length>:<body>.
func TestCustomDiscipline(t *testing.T) {
	disc := &CustomDisc{
		Label: "digits-colon",
		Locate: func(peek func(n int) ([]byte, bool)) (int, int, int, bool, error) {
			w, last := peek(16)
			if len(w) == 0 && last {
				return 0, 0, 0, false, nil
			}
			n, i := 0, 0
			for i < len(w) && w[i] >= '0' && w[i] <= '9' {
				n = n*10 + int(w[i]-'0')
				i++
			}
			if i == len(w) || w[i] != ':' {
				return 0, 0, 0, false, errBadFrame{}
			}
			return i + 1, n, 0, true, nil
		},
		Frame: func(dst *[]byte, body []byte) {
			*dst = AppendUint(*dst, uint64(len(body)))
			*dst = append(*dst, ':')
			*dst = append(*dst, body...)
		},
	}
	var data []byte
	FrameRecord(disc, &data, []byte("hello"))
	FrameRecord(disc, &data, []byte(""))
	FrameRecord(disc, &data, []byte("worlds"))
	if string(data) != "5:hello0:6:worlds" {
		t.Fatalf("framed = %q", data)
	}
	s := NewBytesSource(data, WithDiscipline(disc))
	if s.Discipline().Name() != "digits-colon" {
		t.Errorf("name = %s", s.Discipline().Name())
	}
	for _, want := range []string{"hello", "", "worlds"} {
		mustBegin(t, s)
		if got := string(s.RecordBytes()); got != want {
			t.Errorf("record = %q, want %q", got, want)
		}
		s.SkipToEOR()
		s.EndRecord(nil)
	}
	if ok, _ := s.BeginRecord(); ok {
		t.Error("expected end of input")
	}
	// A malformed frame surfaces as an error from BeginRecord.
	s = NewBytesSource([]byte("x:oops"), WithDiscipline(disc))
	if ok, err := s.BeginRecord(); ok || err == nil {
		t.Errorf("bad frame: ok=%v err=%v", ok, err)
	}
}

type errBadFrame struct{}

func (errBadFrame) Error() string { return "bad frame" }
