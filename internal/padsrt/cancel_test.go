package padsrt

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// dribbleReader delivers one byte per Read, counting calls: the slow-client
// shape the daemon's deadline hook exists for.
type dribbleReader struct {
	data  string
	off   int
	reads int
}

func (d *dribbleReader) Read(p []byte) (int, error) {
	d.reads++
	if d.off >= len(d.data) {
		return 0, io.EOF
	}
	p[0] = d.data[d.off]
	d.off++
	return 1, nil
}

func TestCancelAbortsMidRecord(t *testing.T) {
	// An unbounded record streams through fill as it parses (a bounded one
	// is fully buffered at BeginRecord), so the fill poll is what aborts it
	// mid-record.
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSource(&dribbleReader{data: "0123456789abcdef"},
		WithDiscipline(NoRecords()), WithCancel(ctx.Err))
	mustBegin(t, s)
	// Consume part of the record, then cancel: the very next fill-backed
	// read must fail, mid-record, with the sticky cause-carrying error.
	w := s.Peek(4)
	if string(w) != "0123" {
		t.Fatalf("Peek = %q before cancel", w)
	}
	s.Skip(4)
	cancel()
	if got := s.Peek(8); len(got) != 0 {
		t.Fatalf("Peek delivered %q after cancel", got)
	}
	var le *LimitError
	if err := s.Err(); !errors.As(err, &le) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %T %v, want *LimitError wrapping context.Canceled", err, err)
	}
	if !s.InRecord() {
		t.Fatal("cancel should abort mid-record, not unwind record state")
	}
	// The parse winds down through the normal paths: EndRecord and
	// BeginRecord keep working, but no further records open.
	s.EndRecord(&PD{})
	if ok, err := s.BeginRecord(); ok || err == nil {
		t.Fatalf("BeginRecord after cancel = %v, %v; want refusal with sticky error", ok, err)
	}
}

func TestDeadlineExpiresDuringParse(t *testing.T) {
	s := NewSource(&dribbleReader{data: strings.Repeat("x", 64) + "\n"})
	s.SetDeadline(time.Now().Add(-time.Millisecond)) // already past
	if ok, _ := s.BeginRecord(); ok {
		t.Fatal("BeginRecord opened a record past the deadline")
	}
	var le *LimitError
	if err := s.Err(); !errors.As(err, &le) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want *LimitError wrapping context.DeadlineExceeded", s.Err())
	}
}

func TestCancelNoticedBySpeculation(t *testing.T) {
	// Fully-buffered input never fills, so the checkpoint poll is what
	// bounds a backtracking loop on a cancelled source.
	cancelled := errors.New("tenant evicted")
	var stop error
	s := NewBytesSource([]byte("aaaa\n"), WithCancel(func() error { return stop }))
	mustBegin(t, s)
	s.Checkpoint()
	s.Skip(2)
	s.Restore()
	if s.Err() != nil {
		t.Fatalf("Err() = %v before cancel", s.Err())
	}
	stop = cancelled
	s.Checkpoint()
	s.Restore()
	if err := s.Err(); !errors.Is(err, cancelled) {
		t.Fatalf("Err() = %v, want the hook's cause", err)
	}
	if _, ok := s.PeekByte(); ok {
		t.Fatal("PeekByte delivered buffered input after cancellation")
	}
}

// stickyAfterBudget counts reads and always has more data to offer after a
// transient error — the bait a broken retry path would take.
type stickyAfterBudget struct {
	reads int
}

func (r *stickyAfterBudget) Read(p []byte) (int, error) {
	r.reads++
	if r.reads == 1 {
		n := copy(p, "abcdef\n")
		return n, nil
	}
	if r.reads == 2 {
		return 0, tempErr{}
	}
	n := copy(p, "ghijkl\n")
	return n, nil
}

// TestBacktrackBudgetNotRetriedPast pins the sticky-error interplay: once
// MaxBacktracks trips, an armed WithRetry must not pull more input — the
// LimitError is sticky, so ensure stops calling fill and the transient-retry
// machinery never runs again.
func TestBacktrackBudgetNotRetriedPast(t *testing.T) {
	r := &stickyAfterBudget{}
	s := NewSource(r, WithRetry(5, 0), WithLimits(Limits{MaxBacktracks: 1}))
	mustBegin(t, s)
	readsBefore := r.reads
	s.Checkpoint()
	s.Skip(2)
	s.Restore() // 1st rollback: at the cap
	s.Checkpoint()
	s.Restore() // 2nd rollback: past the cap, sticky LimitError
	var le *LimitError
	if err := s.Err(); !errors.As(err, &le) || le.What != "backtrack budget" {
		t.Fatalf("Err() = %v, want backtrack-budget LimitError", s.Err())
	}
	// Hammer the read surface: none of it may reach the reader again.
	for i := 0; i < 8; i++ {
		s.Peek(64)
		s.Avail(64)
		s.More()
		s.AtEOF()
	}
	s.EndRecord(&PD{})
	if ok, _ := s.BeginRecord(); ok {
		t.Fatal("BeginRecord opened a record past the sticky backtrack error")
	}
	if r.reads != readsBefore {
		t.Fatalf("reader saw %d more reads after the sticky LimitError; WithRetry must not retry past it",
			r.reads-readsBefore)
	}
	if !errors.Is(s.Err(), s.Err()) || !errors.As(s.Err(), &le) {
		t.Fatal("sticky error lost")
	}
}

func TestCancelledSourceRestoreKeepsWindowShut(t *testing.T) {
	// A Restore after cancellation must not reinstate the pre-cancel record
	// window (clampStopped): otherwise a union loop over buffered input
	// could keep re-scanning forever.
	var stop error
	s := NewBytesSource([]byte("abcdefgh\n"), WithCancel(func() error { return stop }))
	mustBegin(t, s)
	s.Checkpoint() // pins the full record window
	s.Skip(3)
	stop = errors.New("over budget")
	s.Checkpoint() // poll notices, clamps at pos=3
	s.Restore()
	s.Restore() // outer checkpoint would reinstate recEnd=8
	if _, ok := s.PeekByte(); ok {
		t.Fatal("Restore re-opened the record window of a cancelled source")
	}
	if s.Avail(8) > 0 {
		t.Fatal("Avail > 0 on a cancelled source after Restore")
	}
}
