package padsrt

import (
	"bytes"
	"regexp"
)

// Character, string, and literal base types. Terminated strings
// (Pstring(:'|':)) stop before their terminator without consuming it;
// fixed-width strings (Pstring_FW) consume exactly their width; regexp
// strings (Pstring_ME) take the longest anchored match. All respect record
// boundaries, one of the extra challenges of non-binary data the paper calls
// out in section 8.

// ReadChar reads one character in the ambient coding, returning it as ASCII.
func ReadChar(s *Source) (byte, ErrCode) {
	b, ok := s.PeekByte()
	if !ok {
		return 0, eofCode(s)
	}
	s.Skip(1)
	if s.coding == EBCDIC {
		return EBCDICToASCII(b), ErrNone
	}
	return b, ErrNone
}

// ReadAChar reads one ASCII character regardless of the ambient coding.
func ReadAChar(s *Source) (byte, ErrCode) {
	b, ok := s.PeekByte()
	if !ok {
		return 0, eofCode(s)
	}
	s.Skip(1)
	return b, ErrNone
}

// ReadEChar reads one EBCDIC character, returning its ASCII translation.
func ReadEChar(s *Source) (byte, ErrCode) {
	b, ok := s.PeekByte()
	if !ok {
		return 0, eofCode(s)
	}
	s.Skip(1)
	return EBCDICToASCII(b), ErrNone
}

// ReadBChar reads one raw byte (Pb_char / Pb_int8 as character data).
func ReadBChar(s *Source) (byte, ErrCode) {
	return ReadAChar(s)
}

// ReadStringTerm reads a (possibly empty) string up to, but not including,
// the terminator character, or up to end-of-record. The terminator is given
// in ASCII and translated under the ambient coding. Pstring(:' ':) in
// Figure 4 is ReadStringTerm(s, ' ').
func ReadStringTerm(s *Source, term byte) (string, ErrCode) {
	raw := term
	if s.coding == EBCDIC {
		raw = ASCIIToEBCDIC(term)
	}
	n := 0
	var w []byte
	for {
		want := n + 4096
		w = s.Window(want)
		if i := bytes.IndexByte(w[n:], raw); i >= 0 {
			n += i
			break
		}
		n = len(w)
		if len(w) < want {
			break // record or input boundary reached
		}
	}
	w = w[:n] // the final window already covers the match; no re-peek
	var out string
	if s.coding == EBCDIC {
		out = EBCDICBytesToString(w)
	} else {
		out = s.internString(w)
	}
	s.Skip(n)
	return out, ErrNone
}

// SkipStringTerm consumes a terminated string without materializing it: the
// fast path generated parsers take when a field's mask neither checks nor
// sets (the run-time saving masks exist to provide).
func SkipStringTerm(s *Source, term byte) ErrCode {
	raw := term
	if s.coding == EBCDIC {
		raw = ASCIIToEBCDIC(term)
	}
	n := 0
	for {
		want := n + 4096
		w := s.Window(want)
		if i := bytes.IndexByte(w[n:], raw); i >= 0 {
			n += i
			break
		}
		n = len(w)
		if len(w) < want {
			break
		}
	}
	s.Skip(n)
	return ErrNone
}

// SkipStringFW consumes a fixed-width string without materializing it.
func SkipStringFW(s *Source, width int) ErrCode {
	if width < 0 {
		return ErrBadParam
	}
	if s.Avail(width) < width {
		return eofCode(s)
	}
	s.Skip(width)
	return ErrNone
}

// SkipStringEOR consumes the remainder of the record.
func SkipStringEOR(s *Source) ErrCode {
	s.SkipToEOR()
	return ErrNone
}

// ReadStringEOR reads the remainder of the current record as a string
// (Pstring(:Peor:)).
func ReadStringEOR(s *Source) (string, ErrCode) {
	var out []byte
	for {
		w := s.Window(64 * 1024)
		if len(w) == 0 {
			break
		}
		out = append(out, w...)
		s.Skip(len(w))
		if s.AtEOR() || s.AtEOF() {
			break
		}
	}
	if s.coding == EBCDIC {
		return EBCDICBytesToString(out), ErrNone
	}
	return s.internString(out), ErrNone
}

// ReadStringFW reads a string of exactly width bytes.
func ReadStringFW(s *Source, width int) (string, ErrCode) {
	if width < 0 {
		return "", ErrBadParam
	}
	if s.Avail(width) < width {
		return "", eofCode(s)
	}
	w := s.Peek(width)
	var out string
	if s.coding == EBCDIC {
		out = EBCDICBytesToString(w)
	} else {
		out = s.internString(w)
	}
	s.Skip(width)
	return out, ErrNone
}

// ReadStringME reads the longest match of re anchored at the cursor
// (Pstring_ME). The expression must have been compiled with CompileRegexp so
// it is anchored.
func ReadStringME(s *Source, re *Regexp) (string, ErrCode) {
	if badRegexp(re) {
		return "", ErrBadParam
	}
	w := s.Window(0)
	loc := re.re.FindIndex(w)
	if loc == nil || loc[0] != 0 {
		return "", ErrInvalidRegexp
	}
	out := s.internString(w[:loc[1]])
	s.Skip(loc[1])
	return out, ErrNone
}

// ReadStringSE reads a string terminated by (and not including) the first
// match of re in the remainder of the record (Pstring_SE).
func ReadStringSE(s *Source, re *Regexp) (string, ErrCode) {
	if badRegexp(re) {
		return "", ErrBadParam
	}
	w := s.Window(0)
	loc := re.unanchored.FindIndex(w)
	n := len(w)
	if loc != nil {
		n = loc[0]
	}
	out := s.internString(w[:n])
	s.Skip(n)
	return out, ErrNone
}

// MatchChar matches a single literal character (given in ASCII; translated
// under the ambient coding) and consumes it.
func MatchChar(s *Source, c byte) ErrCode {
	raw := c
	if s.coding == EBCDIC {
		raw = ASCIIToEBCDIC(c)
	}
	b, ok := s.PeekByte()
	if !ok {
		return eofCode(s)
	}
	if b != raw {
		return ErrMissingLiteral
	}
	s.Skip(1)
	return ErrNone
}

// MatchString matches a literal string (given in ASCII) and consumes it.
func MatchString(s *Source, lit string) ErrCode {
	n := len(lit)
	if n == 0 {
		return ErrNone
	}
	if s.Avail(n) < n {
		return eofCode(s)
	}
	w := s.Peek(n)
	if s.coding == EBCDIC {
		for i := 0; i < n; i++ {
			if EBCDICToASCII(w[i]) != lit[i] {
				return ErrMissingLiteral
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if w[i] != lit[i] {
				return ErrMissingLiteral
			}
		}
	}
	s.Skip(n)
	return ErrNone
}

// MatchRegexp matches re anchored at the cursor and consumes the longest
// match (regular-expression literals, section 3).
func MatchRegexp(s *Source, re *Regexp) ErrCode {
	if badRegexp(re) {
		return ErrBadParam
	}
	w := s.Window(0)
	loc := re.re.FindIndex(w)
	if loc == nil || loc[0] != 0 {
		return ErrMissingLiteral
	}
	s.Skip(loc[1])
	return ErrNone
}

// MatchEOR matches the Peor pseudo-literal: the cursor must be at the end of
// the current record. It does not consume the record trailer (EndRecord
// does).
func MatchEOR(s *Source) ErrCode {
	if s.AtEOR() {
		return ErrNone
	}
	return ErrMissingLiteral
}

// MatchEOF matches the Peof pseudo-literal.
func MatchEOF(s *Source) ErrCode {
	if s.AtEOF() {
		return ErrNone
	}
	return ErrMissingLiteral
}

// Regexp wraps a compiled regular expression with both an anchored and an
// unanchored form, as the runtime needs each for different base types. A
// Regexp whose pattern failed to compile (MustCompileRegexp on an invalid
// literal) carries the compile error instead of panicking: every match
// against it fails with the structured ErrBadParam code, honoring the
// never-die contract even for type-build-time damage.
type Regexp struct {
	src        string
	re         *regexp.Regexp // anchored at the start
	unanchored *regexp.Regexp
	err        error // compile failure; when set, re and unanchored are nil
}

// Err reports the compile error carried by an invalid Regexp, or nil.
func (re *Regexp) Err() error { return re.err }

// badRegexp reports whether re is unusable (nil or failed to compile), in
// which case matches return ErrBadParam rather than dereferencing nil.
func badRegexp(re *Regexp) bool { return re == nil || re.err != nil }

// CompileRegexp compiles a PADS regular-expression literal.
func CompileRegexp(src string) (*Regexp, error) {
	a, err := regexp.Compile("^(?:" + src + ")")
	if err != nil {
		return nil, err
	}
	u, err := regexp.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Regexp{src: src, re: a, unanchored: u}, nil
}

// MustCompileRegexp is CompileRegexp for generated code, whose patterns
// were validated when the description was checked (sema compiles every
// regexp literal at type-build time and reports a diagnostic). If version
// skew or a hand-edited pattern slips an invalid literal through anyway,
// it no longer panics at package init: it returns a Regexp carrying the
// compile error, and every match against it fails with ErrBadParam in the
// parse descriptor.
func MustCompileRegexp(src string) *Regexp {
	re, err := CompileRegexp(src)
	if err != nil {
		return &Regexp{src: src, err: err}
	}
	return re
}

// String returns the source pattern.
func (re *Regexp) String() string { return re.src }

// AppendString appends s in the ambient coding of the source configuration.
func AppendString(dst []byte, s string, coding Coding) []byte {
	if coding == EBCDIC {
		return append(dst, StringToEBCDICBytes(s)...)
	}
	return append(dst, s...)
}

// AppendChar appends c in the given coding.
func AppendChar(dst []byte, c byte, coding Coding) []byte {
	if coding == EBCDIC {
		return append(dst, ASCIIToEBCDIC(c))
	}
	return append(dst, c)
}
