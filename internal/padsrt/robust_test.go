package padsrt

import (
	"errors"
	"io"
	"strings"
	"testing"

	"pads/internal/telemetry"
)

// flakyReader fails with a transient error before every successful read until
// fails is exhausted, then delegates to the wrapped reader.
type flakyReader struct {
	r     io.Reader
	fails int
}

type tempErr struct{}

func (tempErr) Error() string   { return "transient read fault" }
func (tempErr) Temporary() bool { return true }

func (f *flakyReader) Read(p []byte) (int, error) {
	if f.fails > 0 {
		f.fails--
		return 0, tempErr{}
	}
	return f.r.Read(p)
}

func TestRetryRecoversTransientReads(t *testing.T) {
	payload := "alpha\nbeta\ngamma\n"
	st := &telemetry.Stats{}
	s := NewSource(&flakyReader{r: strings.NewReader(payload), fails: 2},
		WithRetry(4, 0), WithStats(st))
	var got []string
	for s.More() {
		pd := &PD{}
		mustBegin(t, s)
		b := s.Peek(16)
		got = append(got, string(b))
		s.Skip(len(b))
		s.EndRecord(pd)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v with retries enabled", err)
	}
	if len(got) != 3 || got[0] != "alpha" || got[2] != "gamma" {
		t.Fatalf("records = %q", got)
	}
	if st.Source.ReadRetries == 0 {
		t.Fatal("ReadRetries not counted")
	}
}

func TestNoRetryTransientIsSticky(t *testing.T) {
	s := NewSource(&flakyReader{r: strings.NewReader("alpha\n"), fails: 1})
	if s.More() {
		t.Fatal("More() true despite immediate transient failure without retry")
	}
	err := s.Err()
	if err == nil {
		t.Fatal("Err() = nil, want sticky transient error")
	}
	if !IsTransient(err) {
		t.Fatalf("Err() = %v, not recognized as transient", err)
	}
	// Sticky: further calls keep reporting it, no panic.
	if s.More() || s.Err() == nil {
		t.Fatal("error did not stick")
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(tempErr{}) {
		t.Fatal("Temporary()==true error not transient")
	}
	if IsTransient(errors.New("plain")) || IsTransient(nil) || IsTransient(io.EOF) {
		t.Fatal("non-transient error misclassified")
	}
}

// --- MaxRecordLen guards, per discipline ---

func TestMaxRecordLenNewline(t *testing.T) {
	long := strings.Repeat("x", 1<<12)
	input := "short1\n" + long + "\nshort2\n"
	st := &telemetry.Stats{}
	s := NewSource(strings.NewReader(input),
		WithLimits(Limits{MaxRecordLen: 64}), WithStats(st))

	read := func() (string, bool) {
		pd := &PD{}
		mustBegin(t, s)
		body := s.Peek(1 << 13)
		got := string(body)
		s.Skip(len(body))
		trunc := s.RecordTruncated()
		s.EndRecord(pd)
		return got, trunc
	}

	if got, trunc := read(); got != "short1" || trunc {
		t.Fatalf("record 1 = %q trunc=%v", got, trunc)
	}
	got, trunc := read()
	if !trunc {
		t.Fatal("oversized newline record not flagged truncated")
	}
	if len(got) != 64 || got != long[:64] {
		t.Fatalf("clamped body len %d, want 64", len(got))
	}
	// Overflow must be discarded so the next record is intact.
	if got, trunc := read(); got != "short2" || trunc {
		t.Fatalf("record after overflow = %q trunc=%v", got, trunc)
	}
	if s.More() {
		t.Fatal("trailing data after last record")
	}
	if st.Source.TruncatedRecs != 1 {
		t.Fatalf("TruncatedRecs = %d, want 1", st.Source.TruncatedRecs)
	}
}

func TestMaxRecordLenFixed(t *testing.T) {
	input := strings.Repeat("a", 100) + strings.Repeat("b", 100)
	s := NewSource(strings.NewReader(input),
		WithDiscipline(&FixedDisc{Width: 100}),
		WithLimits(Limits{MaxRecordLen: 40}))

	for i, want := range []byte{'a', 'b'} {
		pd := &PD{}
		mustBegin(t, s)
		body := s.Peek(200)
		if len(body) != 40 {
			t.Fatalf("record %d: body len %d, want 40", i, len(body))
		}
		if body[0] != want {
			t.Fatalf("record %d starts with %q, want %q", i, body[0], want)
		}
		s.Skip(len(body))
		if !s.RecordTruncated() {
			t.Fatalf("record %d not flagged truncated", i)
		}
		s.EndRecord(pd)
	}
	if s.More() {
		t.Fatal("input not fully consumed")
	}
}

// lpHeader encodes a big-endian 4-byte length header.
func lpHeader(n int) string {
	return string([]byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)})
}

func TestMaxRecordLenLenPrefix(t *testing.T) {
	// First record claims 500 body bytes, cap is 32.
	big := lpHeader(500) + strings.Repeat("z", 500)
	small := lpHeader(5) + "hello"
	s := NewSource(strings.NewReader(big+small),
		WithDiscipline(LenPrefix()),
		WithLimits(Limits{MaxRecordLen: 32}))

	pd := &PD{}
	mustBegin(t, s)
	body := s.Peek(1 << 10)
	if len(body) != 32 {
		t.Fatalf("clamped lenprefix body = %d bytes, want 32", len(body))
	}
	s.Skip(len(body))
	if !s.RecordTruncated() {
		t.Fatal("oversized lenprefix record not flagged truncated")
	}
	s.EndRecord(pd)

	pd = &PD{}
	mustBegin(t, s)
	body = s.Peek(1 << 10)
	if string(body) != "hello" {
		t.Fatalf("record after lenprefix overflow = %q", body)
	}
	s.Skip(len(body))
	if s.RecordTruncated() {
		t.Fatal("clean record flagged truncated")
	}
	s.EndRecord(pd)
	if s.More() {
		t.Fatal("input not fully consumed")
	}
}

// TestMemoryBoundedOverflow streams a record far larger than the cap through
// a small-chunk reader and asserts the window buffer never balloons: the
// guard's whole point is bounded memory, not just a truncation flag.
func TestMemoryBoundedOverflow(t *testing.T) {
	const total = 1 << 22 // 4 MiB record
	const cap = 4 << 10   // 4 KiB cap
	payload := strings.NewReader(strings.Repeat("q", total) + "\ntail\n")
	s := NewSource(&chunkReader{r: payload, n: 512},
		WithLimits(Limits{MaxRecordLen: cap}))

	pd := &PD{}
	mustBegin(t, s)
	body := s.Peek(total)
	if len(body) != cap {
		t.Fatalf("body len %d, want cap %d", len(body), cap)
	}
	s.Skip(len(body))
	if !s.RecordTruncated() {
		t.Fatal("not flagged truncated")
	}
	s.EndRecord(pd)
	if max := grown(s); max > 256<<10 {
		t.Fatalf("window buffer grew to %d bytes while discarding overflow", max)
	}

	pd = &PD{}
	mustBegin(t, s)
	b := s.Peek(16)
	if string(b) != "tail" {
		t.Fatalf("record after 4MiB overflow = %q", b)
	}
	s.Skip(len(b))
	s.EndRecord(pd)
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

// grown reports the current window size; white-box by design.
func grown(s *Source) int { return len(s.buf) }

type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

// --- truncation at discipline boundaries (satellite) ---

func TestTruncatedLenPrefixHeader(t *testing.T) {
	// Input ends mid-header: 2 of 4 header bytes present.
	s := NewSource(strings.NewReader(lpHeader(4)+"data"+"\x00\x01"),
		WithDiscipline(LenPrefix()))

	pd := &PD{}
	mustBegin(t, s)
	b := s.Peek(64)
	if string(b) != "data" {
		t.Fatalf("record 1 = %q", b)
	}
	s.Skip(len(b))
	s.EndRecord(pd)

	if !s.More() {
		t.Fatal("truncated header bytes not surfaced as a record")
	}
	pd = &PD{}
	mustBegin(t, s)
	b = s.Peek(64)
	if string(b) != "\x00\x01" {
		t.Fatalf("truncated record = %q, want the partial header bytes", b)
	}
	s.Skip(len(b))
	s.EndRecord(pd)
	if s.More() {
		t.Fatal("phantom record after truncated header")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v; truncation is a parse-level error, not an I/O error", err)
	}
}

func TestTruncatedFixedRecord(t *testing.T) {
	s := NewSource(strings.NewReader(strings.Repeat("a", 10)+"bbb"),
		WithDiscipline(&FixedDisc{Width: 10}))

	pd := &PD{}
	mustBegin(t, s)
	s.Skip(10)
	s.EndRecord(pd)

	if !s.More() {
		t.Fatal("short final fixed record dropped")
	}
	pd = &PD{}
	mustBegin(t, s)
	b := s.Peek(64)
	if string(b) != "bbb" {
		t.Fatalf("short record = %q", b)
	}
	s.Skip(len(b))
	s.EndRecord(pd)
	if s.More() {
		t.Fatal("phantom record after short fixed tail")
	}
}

func TestNewlineRecordWithoutTerminator(t *testing.T) {
	s := NewSource(strings.NewReader("one\ntwo"))
	var got []string
	for s.More() {
		pd := &PD{}
		mustBegin(t, s)
		b := s.Peek(64)
		got = append(got, string(b))
		s.Skip(len(b))
		s.EndRecord(pd)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("records = %q; unterminated final record must still parse", got)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

// --- speculation caps ---

func TestMaxSpecDepth(t *testing.T) {
	s := NewSource(strings.NewReader("data\n"),
		WithLimits(Limits{MaxSpecDepth: 2}))
	mustBegin(t, s)
	s.Checkpoint()
	s.Checkpoint()
	if s.Err() != nil {
		t.Fatalf("Err() = %v at depth 2 with cap 2", s.Err())
	}
	// The third checkpoint still pushes (Commit/Restore pairing must hold)
	// but trips the sticky limit error, winding the parse down.
	s.Checkpoint()
	var le *LimitError
	if err := s.Err(); !errors.As(err, &le) {
		t.Fatalf("Err() = %T %v, want *LimitError past MaxSpecDepth", err, err)
	}
	// Pairing still holds — no panic unwinding the stack — and the error
	// stays sticky so the driving loop terminates.
	s.Commit()
	s.Commit()
	s.Commit()
	if err := s.Err(); !errors.As(err, &le) {
		t.Fatalf("Err() = %v after commits, want sticky *LimitError", err)
	}
}

func TestMaxSpecBytesSticky(t *testing.T) {
	// A pinned checkpoint forces the window to accumulate while streaming;
	// the byte cap turns unbounded speculation into a sticky LimitError.
	payload := strings.Repeat("k", 1<<20)
	s := NewSource(&chunkReader{r: strings.NewReader(payload), n: 256},
		WithDiscipline(NoRecords()),
		WithLimits(Limits{MaxSpecBytes: 8 << 10}))
	s.Checkpoint()
	consumed := 0
	for i := 0; i < 1<<16; i++ {
		b := s.Peek(512)
		if len(b) == 0 {
			break
		}
		s.Skip(len(b))
		consumed += len(b)
	}
	err := s.Err()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("Err() = %v, want *LimitError once speculation exceeds byte cap", err)
	}
	if consumed >= len(payload) {
		t.Fatal("source delivered the whole payload despite the spec-bytes cap")
	}
	if grown(s) > 64<<10 {
		t.Fatalf("window grew to %d bytes past the cap", grown(s))
	}
}

func TestMaxBacktracks(t *testing.T) {
	s := NewSource(strings.NewReader("abcdef\n"),
		WithLimits(Limits{MaxBacktracks: 3}))
	mustBegin(t, s)
	// Two full-checkpoint rollbacks plus one Mark/Rewind land on the cap.
	for i := 0; i < 2; i++ {
		s.Checkpoint()
		s.Skip(2)
		s.Restore()
	}
	m := s.Mark()
	s.Skip(1)
	s.Rewind(m)
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v at the cap", err)
	}
	if b, ok := s.PeekByte(); !ok || b != 'a' {
		t.Fatalf("PeekByte = %q %v under the cap, want 'a'", b, ok)
	}
	// The rollback past the cap trips the sticky error and hard-stops
	// reads: buffered bytes are withheld so a backtracking parse cannot
	// keep re-scanning them.
	s.Rewind(s.Mark())
	var le *LimitError
	if err := s.Err(); !errors.As(err, &le) {
		t.Fatalf("Err() = %T %v, want *LimitError past MaxBacktracks", err, err)
	}
	if _, ok := s.PeekByte(); ok {
		t.Fatal("PeekByte delivered buffered input after the backtrack budget tripped")
	}
	if s.Avail(1) > 0 {
		t.Fatal("Avail > 0 after the backtrack budget tripped")
	}
	// Checkpoint pairing still holds past the trip — Restore re-clamps
	// whatever window the checkpoint reinstates instead of panicking.
	s.Checkpoint()
	s.Restore()
	if _, ok := s.PeekByte(); ok {
		t.Fatal("Restore past the trip re-opened the read window")
	}
}

// --- error-record capture ---

func TestLastErrRecordSnapshot(t *testing.T) {
	s := NewSource(strings.NewReader("good\nbroken\nfine\n"))
	s.SetKeepErrRecords(true)

	read := func(fail bool) {
		pd := &PD{}
		mustBegin(t, s)
		b := s.Peek(64)
		s.Skip(len(b))
		if fail {
			pd.SetError(ErrInvalidInt, s.LocFrom(s.Pos()))
		}
		s.EndRecord(pd)
	}

	read(false)
	if s.LastErrRecord() != nil {
		t.Fatalf("LastErrRecord = %q after clean record", s.LastErrRecord())
	}
	read(true)
	if got := string(s.LastErrRecord()); got != "broken" {
		t.Fatalf("LastErrRecord = %q, want %q", got, "broken")
	}
	read(false)
	// Snapshot persists until the next errored record.
	if got := string(s.LastErrRecord()); got != "broken" {
		t.Fatalf("LastErrRecord = %q after later clean record", got)
	}
}
