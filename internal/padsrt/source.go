package padsrt

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"pads/internal/telemetry"
	"pads/internal/telemetry/prof"
)

// Source is a streaming parse cursor over an io.Reader. It maintains a
// sliding window of the input, divides it into records under a Discipline,
// and supports speculation checkpoints so Punion branches can backtrack.
// Consumed data is discarded at record boundaries (unless pinned by a
// checkpoint), so arbitrarily large inputs parse in O(record) memory — the
// paper's gigabytes-per-day sources must never be loaded whole (section 1).
//
// A Source also carries the ambient configuration: the character coding and
// the byte order used by binary base types.
type Source struct {
	r        io.Reader
	buf      []byte
	off      int64 // absolute offset of buf[0]
	pos      int   // cursor, as an index into buf
	eof      bool
	err      error // sticky read error
	borrowed bool  // buf belongs to the caller: never compact (shift) it

	disc   Discipline
	coding Coding
	order  ByteOrder

	recDepth int // nesting depth of BeginRecord (inner calls are no-ops)
	recBody  int // index of the current record body start
	recEnd   int // index one past the record body; -1 when unbounded
	recTrail int // delimiter bytes that follow the body
	recNum   int // 1-based record count

	cps     []checkpoint
	nback   int  // rollbacks charged against Limits.MaxBacktracks
	stopped bool // cancelled or budget-exhausted: all reads fail

	// Cancellation (docs/ROBUSTNESS.md). cancel, when non-nil, is polled at
	// fills, record starts, and checkpoints; a non-nil return (typically
	// context.Context.Err) cancels the parse. deadline, when non-zero, is a
	// wall-clock cutoff checked at the same points. Both convert into a
	// sticky *LimitError carrying the cause, so engines (VM, generated
	// parsers, parallel workers) abort mid-record through their ordinary
	// error paths without per-loop deadline plumbing.
	cancel   func() error
	deadline time.Time

	// Fault tolerance and resource guards (docs/ROBUSTNESS.md).
	retries  int           // max consecutive retries of a transient read error
	backoff  time.Duration // initial retry backoff, doubling per attempt
	limits   Limits        // resource caps; zero fields are unlimited
	ov       overflow      // pending oversized-record discard
	recTrunc bool          // current record was clamped to MaxRecordLen
	keepErr  bool          // snapshot erroneous record bodies for quarantine
	lastErr  []byte        // most recent erroneous record body (keepErr)
	keepRec  bool          // snapshot every record body (LastRecord)
	lastRec  []byte        // most recent record body (keepRec)

	// tele, when non-nil, receives runtime counters (fills, compactions,
	// intern hits, speculation churn, records). stats caches &tele.Source so
	// the hot paths pay one nil check and a direct field increment.
	tele  *telemetry.Stats
	stats *telemetry.SourceStats

	// prof, when non-nil, is the parse-path profiler riding this source.
	// The Source only carries it (like tele): internal/parallel installs a
	// per-chunk profiler here and shard readers (internal/interp) pick it
	// up, the same private-observer handoff as Stats.
	prof *prof.Profiler

	// intern is a direct-mapped cache of short strings produced by the
	// string base types: ad hoc fields draw from small vocabularies (the
	// Sirius feed has ~420 distinct states across millions of records),
	// so reusing cached copies removes most per-record allocations. A
	// fixed-size table with a trivial hash keeps the lookup far cheaper
	// than a map and bounds memory on adversarial inputs.
	intern [internSlots]string
}

const (
	maxInternLen = 40
	internSlots  = 1024
)

// internString returns a string for w, reusing a cached copy when possible.
func (s *Source) internString(w []byte) string {
	n := len(w)
	if n == 0 {
		return ""
	}
	if n > maxInternLen || (w[0] >= '0' && w[0] <= '9') {
		// Digit-led strings are identifiers (zips, phones, order numbers),
		// not vocabulary: they nearly always miss, and caching them evicts
		// the low-cardinality entries the table exists for.
		return string(w)
	}
	// FNV-1a folded eight bytes at a time: the hash must cover the whole
	// string — vocabularies that differ only in one digit (states, zips,
	// hostnames) must not collide into the same slot, or the cache thrashes
	// and every record allocates.
	h := uint64(14695981039346656037)
	p := w
	for len(p) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(p)) * 1099511628211
		p = p[8:]
	}
	for _, b := range p {
		h = (h ^ uint64(b)) * 1099511628211
	}
	// Multiplication only carries differences toward the high bits, so a
	// murmur-style finalizer must fold them back down before the modulo —
	// strings differing only in their final bytes would otherwise share a
	// slot (the exact thrash the full-coverage hash exists to prevent).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	idx := uint32(h) % internSlots
	if v := s.intern[idx]; v == string(w) { // comparison does not allocate
		if s.stats != nil {
			s.stats.InternHits++
		}
		return v
	}
	if s.stats != nil {
		s.stats.InternMisses++
	}
	v := string(w)
	s.intern[idx] = v
	return v
}

type checkpoint struct {
	pos      int
	recDepth int
	recBody  int
	recEnd   int
	recTrail int
	recNum   int
	ov       overflow
	recTrunc bool
}

// overflow records how to dispose of the tail of a record that was clamped
// to Limits.MaxRecordLen: either discard through a terminator byte
// (newline-style records, whose true length is unknown) or discard a known
// byte count (length-prefixed and fixed-width records).
type overflow struct {
	active bool
	term   int   // >= 0: discard through this terminator byte
	remain int64 // term < 0: bytes beyond the clamped body to discard
}

// Limits bounds the resources a Source may consume on adversarial or
// corrupted input, converting would-be OOM kills into structured errors.
// Zero fields are unlimited (the seed behavior). See docs/ROBUSTNESS.md.
type Limits struct {
	// MaxRecordLen caps one record's body length. A record that exceeds
	// it is clamped: the first MaxRecordLen bytes parse normally, the
	// parse is flagged with ErrRecordTooLong, and the remainder is
	// discarded in O(64 KiB) memory at EndRecord.
	MaxRecordLen int
	// MaxSpecBytes caps the window pinned by speculation checkpoints.
	// Exceeding it sets a sticky *LimitError: the parse winds down
	// deterministically instead of buffering without bound.
	MaxSpecBytes int
	// MaxSpecDepth caps checkpoint nesting the same way.
	MaxSpecDepth int
	// MaxBacktracks caps total speculation rollbacks (Restore plus
	// Rewind) over the life of the Source. Nested trials can backtrack
	// exponentially over already-buffered input, which no byte-oriented
	// cap observes; exceeding this one sets the sticky *LimitError and
	// hard-stops reads, so every retried trial fails at its first read
	// and the parse winds down in time linear in the description.
	MaxBacktracks int
}

// LimitError is the sticky error produced when a Limits cap is exceeded or
// the parse is cancelled (SetDeadline / SetCancel). For cancellations Cause
// carries the underlying reason — typically context.DeadlineExceeded or
// context.Canceled — and errors.Is sees through it, so callers distinguish
// "deadline expired" from "client went away" without string matching.
type LimitError struct {
	What  string // which guard tripped
	Limit int
	Cause error // underlying cancellation cause; nil for resource caps
}

// Error implements error.
func (e *LimitError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("padsrt: parse %s: %v", e.What, e.Cause)
	}
	return fmt.Sprintf("padsrt: %s limit exceeded (cap %d)", e.What, e.Limit)
}

// Unwrap exposes the cancellation cause to errors.Is / errors.As.
func (e *LimitError) Unwrap() error { return e.Cause }

// IsTransient reports whether err is a retryable read failure: any error
// in the chain advertising Temporary() bool, the convention shared by
// net.Error and the fault-injection harness (internal/fault).
func IsTransient(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// SourceOption configures a Source.
type SourceOption func(*Source)

// WithDiscipline sets the record discipline (default: newline-terminated).
func WithDiscipline(d Discipline) SourceOption { return func(s *Source) { s.disc = d } }

// WithCoding sets the ambient character coding (default: ASCII).
func WithCoding(c Coding) SourceOption { return func(s *Source) { s.coding = c } }

// WithByteOrder sets the byte order for Pb_* types (default: big-endian,
// i.e. network order).
func WithByteOrder(o ByteOrder) SourceOption { return func(s *Source) { s.order = o } }

// WithStats attaches a telemetry sink: the Source records buffer, record,
// intern-cache, and speculation counters into st.Source as it runs. The
// default (nil) records nothing and costs nothing beyond a predictable
// branch per event (docs/OBSERVABILITY.md).
func WithStats(st *telemetry.Stats) SourceOption { return func(s *Source) { s.SetStats(st) } }

// WithProf attaches a parse-path profiler for shard readers to pick up
// (telemetry/prof; the -profile flag).
func WithProf(p *prof.Profiler) SourceOption { return func(s *Source) { s.SetProf(p) } }

// WithRetry makes transient read errors (IsTransient) retry up to n times
// with an exponentially doubling backoff before sticking. The default is
// no retries: the first error of any kind is sticky.
func WithRetry(n int, backoff time.Duration) SourceOption {
	return func(s *Source) {
		s.retries = n
		s.backoff = backoff
	}
}

// WithLimits installs resource guards (docs/ROBUSTNESS.md).
func WithLimits(l Limits) SourceOption { return func(s *Source) { s.limits = l } }

// WithCancel installs a cancellation hook; see SetCancel.
func WithCancel(check func() error) SourceOption { return func(s *Source) { s.cancel = check } }

// WithDeadline installs a wall-clock parse deadline; see SetDeadline.
func WithDeadline(t time.Time) SourceOption { return func(s *Source) { s.deadline = t } }

// NewSource wraps r in a parse cursor. By default records are
// newline-terminated, the ambient coding is ASCII, and binary integers are
// big-endian; use the options to override, mirroring the paper's "the user
// can direct PADS to use a different record definition".
func NewSource(r io.Reader, opts ...SourceOption) *Source {
	s := &Source{
		r:      r,
		disc:   Newline(),
		coding: ASCII,
		order:  BigEndian,
		recEnd: -1,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewSectionSource parses the n-byte window of r starting at byte off — the
// ReaderAt-backed constructor internal/segment uses for out-of-core parsing
// (an *os.File serves reads via pread, so many sources can share one
// descriptor without seeking). The source streams through its sliding
// window exactly like NewSource, so memory stays O(record); positions
// report file-absolute offsets (the base is pre-set to off). Use SetBase to
// also seed the record number when the section starts mid-sequence.
func NewSectionSource(r io.ReaderAt, off, n int64, opts ...SourceOption) *Source {
	s := NewSource(io.NewSectionReader(r, off, n), opts...)
	s.off = off
	return s
}

// NewBytesSource is a convenience for parsing in-memory data. The data is
// copied: the window compacts in place as records are consumed, and the
// caller's slice must not be disturbed.
func NewBytesSource(data []byte, opts ...SourceOption) *Source {
	s := NewSource(nil, opts...)
	s.buf = append([]byte(nil), data...)
	s.eof = true
	return s
}

// NewBorrowedSource parses in-memory data in place, without copying it. The
// caller must not modify data while the Source is in use; in exchange the
// window never compacts, so many cursors (one per shard in
// internal/parallel) can read disjoint slices of one buffer with no
// duplication.
func NewBorrowedSource(data []byte, opts ...SourceOption) *Source {
	s := NewSource(nil, opts...)
	s.buf = data
	s.eof = true
	s.borrowed = true
	return s
}

// SetBase declares that the buffer begins partway into a larger input:
// subsequent Pos calls report byteOff plus the local offset, and record
// numbering starts after records prior records. It must be called before
// any parsing; internal/parallel uses it so a sharded parse reports the
// same error locations and record numbers as a sequential run.
func (s *Source) SetBase(byteOff int64, records int) {
	s.off = byteOff
	s.recNum = records
}

// SetStats attaches (or, with nil, detaches) a telemetry sink mid-stream.
// internal/parallel uses it to give every chunk source a private Stats, so
// per-worker counters never race.
func (s *Source) SetStats(st *telemetry.Stats) {
	s.tele = st
	if st != nil {
		s.stats = &st.Source
	} else {
		s.stats = nil
	}
}

// Stats returns the attached telemetry sink, or nil. Shard readers
// (internal/interp) use it to route interpreter-level counters to the same
// per-worker Stats as the source counters.
func (s *Source) Stats() *telemetry.Stats { return s.tele }

// SetProf attaches (or, with nil, detaches) a parse-path profiler. Like
// SetStats it exists so internal/parallel can give every chunk source a
// private profiler; the Source itself never calls profiler hooks.
func (s *Source) SetProf(p *prof.Profiler) { s.prof = p }

// Prof returns the attached profiler, or nil. Shard readers pick it up the
// same way they pick up Stats.
func (s *Source) Prof() *prof.Profiler { return s.prof }

// SetCancel installs (or, with nil, removes) a cancellation hook: check is
// polled from the parsing goroutine at fills, record starts, and
// checkpoints, and its first non-nil return cancels the parse with a sticky
// *LimitError{What: "cancelled", Cause: check()}. Pass a request context's
// Err method to propagate HTTP deadlines and client disconnects into the
// runtime: the cancelled source hard-stops exactly like an exhausted
// backtrack budget (even buffered bytes are withheld and the current record
// is clamped at the cursor), so a parse aborts mid-record in time linear in
// the description, not in the remaining input. check must be safe to call
// from the parsing goroutine (context.Context.Err is); SetCancel itself
// must not be called while a parse is running.
func (s *Source) SetCancel(check func() error) { s.cancel = check }

// SetDeadline installs a wall-clock cutoff for the parse, polled at the
// same points as SetCancel; a zero time clears it. Past the deadline the
// source sticks a *LimitError whose Cause is context.DeadlineExceeded.
func (s *Source) SetDeadline(t time.Time) { s.deadline = t }

// pollCancel evaluates the cancel hook and deadline, if armed. On expiry it
// pins the sticky *LimitError and hard-stops reads, reporting whether the
// source is (now or already) cancelled. Poll sites are chosen so every
// parse shape notices promptly without taxing the per-byte hot path: fill
// (streaming input, mid-record), BeginRecord (buffered input, between
// records), and Checkpoint (speculation loops over buffered input).
func (s *Source) pollCancel() bool {
	if s.cancel == nil && s.deadline.IsZero() {
		return false
	}
	if s.err != nil || s.stopped {
		return s.stopped
	}
	var cause error
	if s.cancel != nil {
		cause = s.cancel()
	}
	if cause == nil && !s.deadline.IsZero() && time.Now().After(s.deadline) {
		cause = context.DeadlineExceeded
	}
	if cause == nil {
		return false
	}
	s.err = &LimitError{What: "cancelled", Cause: cause}
	s.eof = true
	s.stopped = true
	if s.recDepth > 0 {
		s.recEnd = s.pos
	}
	return true
}

// SpecLimited reports whether speculation resource guards (MaxSpecBytes or
// MaxSpecDepth) are armed. Engines that would elide provably-failing
// checkpointed trials consult it: with guards armed, even a doomed trial's
// checkpoint is observable (it can trip a limit), so the elision is off.
func (s *Source) SpecLimited() bool {
	return s.limits.MaxSpecBytes > 0 || s.limits.MaxSpecDepth > 0
}

// Coding returns the ambient character coding.
func (s *Source) Coding() Coding { return s.coding }

// SetCoding changes the ambient character coding mid-parse (mixed-coding
// sources appear in the Cobol feeds of Figure 1).
func (s *Source) SetCoding(c Coding) { s.coding = c }

// ByteOrder returns the byte order used by binary integer types.
func (s *Source) ByteOrder() ByteOrder { return s.order }

// SetByteOrder changes the binary byte order.
func (s *Source) SetByteOrder(o ByteOrder) { s.order = o }

// Discipline returns the active record discipline.
func (s *Source) Discipline() Discipline { return s.disc }

// SetDiscipline changes the record discipline. It must not be called while
// inside a record.
func (s *Source) SetDiscipline(d Discipline) { s.disc = d }

// Err returns the sticky I/O error, if any (io.EOF is not an error).
func (s *Source) Err() error { return s.err }

// ensure makes at least n bytes available at the cursor if the input has
// them, returning the window from the cursor onward and whether the input
// is exhausted. It never blocks for more than the input provides.
func (s *Source) ensure(n int) ([]byte, bool, error) {
	if s.stopped {
		// Backtrack budget exhausted: withhold even buffered bytes so the
		// parse cannot keep re-scanning them (see Limits.MaxBacktracks).
		return nil, true, s.err
	}
	for len(s.buf)-s.pos < n && !s.eof && s.err == nil {
		s.fill()
	}
	return s.buf[s.pos:], s.eof, s.err
}

func (s *Source) fill() {
	if s.pollCancel() {
		return
	}
	if s.r == nil {
		s.eof = true
		return
	}
	// Speculation-buffer guard: once checkpoints pin more window than the
	// cap allows, stop reading and stick a structured error — the parse
	// winds down deterministically instead of buffering without bound.
	if s.limits.MaxSpecBytes > 0 && len(s.cps) > 0 && len(s.buf)-s.cps[0].pos > s.limits.MaxSpecBytes {
		s.err = &LimitError{What: "speculation buffer", Limit: s.limits.MaxSpecBytes}
		s.eof = true
		return
	}
	// Read directly into the buffer's spare capacity: staging through a
	// scratch buffer would copy every input byte twice (Read + append).
	const fillChunk = 64 * 1024
	if cap(s.buf)-len(s.buf) < fillChunk {
		newCap := 2 * cap(s.buf)
		if newCap < len(s.buf)+fillChunk {
			newCap = len(s.buf) + fillChunk
		}
		grown := make([]byte, len(s.buf), newCap)
		copy(grown, s.buf)
		s.buf = grown
	}
	delay := s.backoff
	for attempt := 0; ; attempt++ {
		m, err := s.r.Read(s.buf[len(s.buf):cap(s.buf)])
		if m > 0 {
			s.buf = s.buf[:len(s.buf)+m]
		}
		if s.stats != nil {
			s.stats.Fills++
			s.stats.BytesRead += uint64(m)
		}
		switch {
		case err == nil:
			return
		case err == io.EOF:
			s.eof = true
			return
		case m > 0:
			// Data arrived alongside the error: deliver it. A transient
			// error retries on the next fill; a permanent one re-fires.
			if !IsTransient(err) {
				s.err = err
				s.eof = true
			}
			return
		case IsTransient(err) && attempt < s.retries:
			if s.stats != nil {
				s.stats.ReadRetries++
			}
			if delay > 0 {
				time.Sleep(delay)
				if delay < time.Second {
					delay *= 2
				}
			}
			// A deadline that expired during the backoff must win over the
			// retry loop: an input that alternates transient errors with
			// slow progress could otherwise outlive its budget.
			if s.pollCancel() {
				return
			}
		default:
			s.err = err
			s.eof = true
			return
		}
	}
}

// compact discards consumed data when nothing pins it. Called between
// records so memory use stays proportional to one record. The copy is
// amortized O(total input): it runs only once the consumed prefix is at
// least 64 KiB and at least as large as the unconsumed tail, so neither
// in-memory sources (huge tail) nor streaming sources (tiny tail) pay a
// per-record copy.
func (s *Source) compact() {
	if s.borrowed || len(s.cps) > 0 || s.recDepth > 0 {
		return
	}
	tail := len(s.buf) - s.pos
	if s.pos < 64*1024 || s.pos < tail {
		return
	}
	n := copy(s.buf, s.buf[s.pos:])
	if s.stats != nil {
		s.stats.Compacts++
		s.stats.CompactBytes += uint64(n)
	}
	s.buf = s.buf[:n]
	s.off += int64(s.pos)
	s.pos = 0
	s.recBody = 0
	s.recEnd = -1
}

// Pos reports the cursor position.
func (s *Source) Pos() Pos {
	col := s.pos - s.recBody + 1
	if s.recDepth == 0 {
		col = 0
	}
	return Pos{Byte: s.off + int64(s.pos), Record: s.recNum, Col: col}
}

// LocFrom builds a Loc spanning from begin to the current position.
func (s *Source) LocFrom(begin Pos) Loc { return Loc{Begin: begin, End: s.Pos()} }

// LocHere builds a zero-width Loc at the current position: the error
// location used on paths that consume nothing on failure, so the success
// path pays no position bookkeeping.
func (s *Source) LocHere() Loc {
	p := s.Pos()
	return Loc{Begin: p, End: p}
}

// BeginRecord opens the next record. It returns ok=false at a clean end of
// input and a non-nil error on I/O failure. Nested calls (a Precord type
// inside another Precord type) are no-ops that stay inside the same record,
// so descriptions compose.
func (s *Source) BeginRecord() (ok bool, err error) {
	if s.recDepth > 0 {
		s.recDepth++
		return true, nil
	}
	if s.pollCancel() {
		return false, s.err
	}
	s.compact()
	skip, body, trailer, ok, err := s.disc.locate(s)
	if err != nil || !ok {
		return false, err
	}
	s.pos += skip
	s.recBody = s.pos
	if body < 0 {
		s.recEnd = -1
	} else {
		// Buffer the whole record body (locate may have examined only a
		// header); clamp to a truncated final record.
		s.ensure(body + trailer)
		s.recEnd = s.pos + body
		if s.recEnd > len(s.buf) {
			s.recEnd = len(s.buf)
			trailer = 0
		}
	}
	s.recTrail = trailer
	s.recNum++
	s.recDepth = 1
	if s.stats != nil {
		s.stats.RecordsBegun++
		if s.recTrunc {
			s.stats.TruncatedRecs++
		}
	}
	return true, nil
}

// noteOverflowTerm arms an oversized-record discard through term: the
// record disciplines call it (from locate) when clamping a record whose
// true length is unknown (newline-style framing).
func (s *Source) noteOverflowTerm(term byte) {
	s.ov = overflow{active: true, term: int(term)}
	s.recTrunc = true
}

// noteOverflowCount arms an oversized-record discard of n known bytes
// (length-prefixed and fixed-width framing).
func (s *Source) noteOverflowCount(n int64) {
	s.ov = overflow{active: true, term: -1, remain: n}
	s.recTrunc = true
}

// RecordTruncated reports whether the current record's body was clamped to
// Limits.MaxRecordLen. Parsers surface it as ErrRecordTooLong in the
// record's parse descriptor; the flag clears at EndRecord.
func (s *Source) RecordTruncated() bool { return s.recTrunc }

// SetKeepErrRecords makes EndRecord snapshot the body of each record whose
// parse descriptor carries errors, for quarantine (dead-letter) capture.
// Off by default: clean runs never pay the copy.
func (s *Source) SetKeepErrRecords(keep bool) { s.keepErr = keep }

// LastErrRecord returns the body snapshot of the most recent erroneous
// record (valid until the next erroneous EndRecord). Nil when
// SetKeepErrRecords is off or no erroneous record has ended.
func (s *Source) LastErrRecord() []byte { return s.lastErr }

// SetKeepRecords makes EndRecord snapshot every record body, so a caller
// can echo the raw bytes of a record it just parsed — the vetting task
// (Figure 10) copies clean records through unchanged instead of
// re-serializing field by field. Borrowed (in-memory) sources alias the
// input instead of copying.
func (s *Source) SetKeepRecords(keep bool) { s.keepRec = keep }

// LastRecord returns the body of the most recently ended record (without
// its trailer), valid until the next EndRecord. Nil when SetKeepRecords is
// off or no record has ended.
func (s *Source) LastRecord() []byte { return s.lastRec }

// discardOverflow disposes of the unbuffered tail of a clamped record in
// O(64 KiB) memory: the window is force-compacted as the tail streams
// through, so a corrupted gigabyte-long record costs no more memory than a
// normal one.
func (s *Source) discardOverflow() {
	ov := s.ov
	s.ov = overflow{}
	s.recTrunc = false
	if ov.term >= 0 {
		for {
			if i := bytes.IndexByte(s.buf[s.pos:], byte(ov.term)); i >= 0 {
				s.pos += i + 1
				break
			}
			s.pos = len(s.buf)
			s.dropConsumed()
			if !s.moreInput() {
				break
			}
		}
	} else {
		remain := ov.remain
		for remain > 0 {
			if avail := len(s.buf) - s.pos; avail > 0 {
				take := int64(avail)
				if take > remain {
					take = remain
				}
				s.pos += int(take)
				remain -= take
				s.dropConsumed()
				continue
			}
			if !s.moreInput() {
				break
			}
		}
	}
	s.dropConsumed()
}

// moreInput pulls more data if none is buffered at the cursor, reporting
// whether any is now available.
func (s *Source) moreInput() bool {
	if s.pos < len(s.buf) {
		return true
	}
	s.ensure(1)
	return s.pos < len(s.buf)
}

// dropConsumed discards the consumed prefix immediately, without compact's
// 64 KiB hysteresis: used on the overflow-discard path, where the whole
// point is keeping memory flat while an oversized record streams past.
func (s *Source) dropConsumed() {
	if s.borrowed || len(s.cps) > 0 || s.recDepth > 0 || s.pos == 0 {
		return
	}
	n := copy(s.buf, s.buf[s.pos:])
	if s.stats != nil {
		s.stats.Compacts++
		s.stats.CompactBytes += uint64(n)
	}
	s.buf = s.buf[:n]
	s.off += int64(s.pos)
	s.pos = 0
	s.recBody = 0
	s.recEnd = -1
}

// EndRecord closes the current record, skipping its trailer. If data remains
// before the record end it records ErrExtraBeforeEOR in pd (when pd is
// non-nil) and discards the extra bytes. Inner (nested) EndRecord calls just
// unwind the nesting.
func (s *Source) EndRecord(pd *PD) {
	if s.recDepth == 0 {
		return
	}
	if s.recDepth > 1 {
		s.recDepth--
		return
	}
	if s.keepRec || (s.keepErr && pd != nil && pd.Nerr > 0) {
		end := s.recEnd
		if end < 0 || end > len(s.buf) {
			end = s.pos
		}
		if end > len(s.buf) {
			end = len(s.buf)
		}
		if s.recBody >= 0 && s.recBody <= end {
			body := s.buf[s.recBody:end]
			if s.keepRec {
				if s.borrowed {
					// A borrowed buffer never compacts, so the body slice
					// stays valid: no copy.
					s.lastRec = body
				} else {
					s.lastRec = append(s.lastRec[:0], body...)
				}
			}
			if s.keepErr && pd != nil && pd.Nerr > 0 {
				s.lastErr = append(s.lastErr[:0], body...)
			}
		}
	}
	if s.recEnd >= 0 {
		if s.pos < s.recEnd && pd != nil {
			begin := s.Pos()
			s.pos = s.recEnd
			pd.SetError(ErrExtraBeforeEOR, s.LocFrom(begin))
		}
		if s.pos < s.recEnd {
			s.pos = s.recEnd
		}
		s.pos = s.recEnd + s.recTrail
		if s.pos > len(s.buf) {
			s.pos = len(s.buf)
		}
	}
	s.recDepth = 0
	if s.stats != nil {
		s.stats.RecordsEnded++
	}
	if s.ov.active {
		s.discardOverflow()
	}
	s.compact()
}

// InRecord reports whether a record is open.
func (s *Source) InRecord() bool { return s.recDepth > 0 }

// RecordNum returns the 1-based number of the current (or last) record.
func (s *Source) RecordNum() int { return s.recNum }

// limit returns the exclusive upper bound of readable bytes, growing the
// window as needed to honor a request for n bytes.
func (s *Source) limit(n int) int {
	if s.recDepth > 0 && s.recEnd >= 0 {
		return s.recEnd
	}
	s.ensure(n)
	return len(s.buf)
}

// Avail reports how many bytes remain in the current record (or input when
// unbounded), making at least n available if possible.
//
// Avail, PeekByte, Peek, Skip, and Window keep their bounded-record case —
// the state every per-field read runs in — small enough to inline at call
// sites, deferring the unbounded case to a *Slow helper.
func (s *Source) Avail(n int) int {
	if s.recDepth > 0 && s.recEnd >= 0 {
		return s.recEnd - s.pos
	}
	return s.availSlow(n)
}

//go:noinline
func (s *Source) availSlow(n int) int {
	s.ensure(n)
	return len(s.buf) - s.pos
}

// PeekByte returns the byte at the cursor without consuming it. ok is false
// at end of record or end of input.
func (s *Source) PeekByte() (byte, bool) {
	if s.recDepth > 0 && s.pos < s.recEnd {
		return s.buf[s.pos], true
	}
	return s.peekByteSlow()
}

//go:noinline
func (s *Source) peekByteSlow() (byte, bool) {
	if s.limit(1) <= s.pos {
		return 0, false
	}
	return s.buf[s.pos], true
}

// Peek returns up to n bytes at the cursor without consuming them; fewer are
// returned at a record/input boundary.
func (s *Source) Peek(n int) []byte {
	lim := s.limit(n)
	end := s.pos + n
	if end > lim {
		end = lim
	}
	return s.buf[s.pos:end]
}

// Skip advances the cursor by n bytes (clamped to the record/input end).
func (s *Source) Skip(n int) {
	// The unsigned compare rejects a negative s.pos+n (overflow) along with
	// the unbounded recEnd == -1, so the fast path never moves the cursor
	// outside the record.
	if s.recDepth > 0 && s.recEnd >= 0 && uint(s.pos+n) <= uint(s.recEnd) {
		s.pos += n
		return
	}
	s.skipSlow(n)
}

//go:noinline
func (s *Source) skipSlow(n int) {
	lim := s.limit(n)
	s.pos += n
	if s.pos > lim {
		s.pos = lim
	}
}

// AtEOR reports whether the cursor is at the end of the current record. In
// an unbounded record it is true only at end of input.
func (s *Source) AtEOR() bool {
	if s.recDepth == 0 {
		return false
	}
	if s.recEnd >= 0 {
		return s.pos >= s.recEnd
	}
	return s.AtEOF()
}

// AtEOF reports whether the input is exhausted at the cursor (only
// meaningful outside a bounded record, or inside an unbounded one).
func (s *Source) AtEOF() bool {
	if s.pos < len(s.buf) {
		return false
	}
	s.ensure(1)
	return s.pos >= len(s.buf) && s.eof
}

// More reports whether another record (or more bytes) can follow; it is the
// termination test for Psource-level arrays of records.
func (s *Source) More() bool { return !s.AtEOF() }

// SkipToEOR advances to the end of the current record (panic-mode
// resynchronization). It reports how many bytes were skipped.
func (s *Source) SkipToEOR() int {
	if s.recDepth == 0 {
		return 0
	}
	if s.recEnd >= 0 {
		n := s.recEnd - s.pos
		if n < 0 {
			n = 0
		}
		s.pos = s.recEnd
		s.countResync(n)
		return n
	}
	// Unbounded record: consume everything.
	n := 0
	for {
		w, eofHit, _ := s.ensure(1)
		if len(w) == 0 {
			if eofHit {
				s.countResync(n)
				return n
			}
			continue
		}
		n += len(w)
		s.pos += len(w)
	}
}

// countResync tallies a panic-mode skip of n bytes (only skips that actually
// discarded data count).
func (s *Source) countResync(n int) {
	if s.stats != nil && n > 0 {
		s.stats.EORResyncs++
		s.stats.EORResyncBytes += uint64(n)
	}
}

// Window returns the unconsumed remainder of the current record (fully
// buffered), for regexp matching and diagnostics. In an unbounded record it
// buffers up to max bytes (max<=0 means 64 KiB).
func (s *Source) Window(max int) []byte {
	if s.recDepth > 0 && s.recEnd >= 0 {
		return s.buf[s.pos:s.recEnd]
	}
	return s.windowSlow(max)
}

func (s *Source) windowSlow(max int) []byte {
	if max <= 0 {
		max = 64 * 1024
	}
	w, _, _ := s.ensure(max)
	if len(w) > max {
		w = w[:max]
	}
	return w
}

// Checkpoint pushes a speculation point; the window is pinned until the
// matching Commit or Restore. Checkpoints nest, supporting unions inside
// unions.
func (s *Source) Checkpoint() {
	s.pollCancel()
	if s.limits.MaxSpecDepth > 0 && len(s.cps) >= s.limits.MaxSpecDepth && s.err == nil {
		// The checkpoint still pushes (Commit/Restore pairing must hold),
		// but the parse now winds down under a sticky structured error.
		s.err = &LimitError{What: "speculation depth", Limit: s.limits.MaxSpecDepth}
		s.eof = true
	}
	s.cps = append(s.cps, checkpoint{
		pos: s.pos, recDepth: s.recDepth, recBody: s.recBody,
		recEnd: s.recEnd, recTrail: s.recTrail, recNum: s.recNum,
		ov: s.ov, recTrunc: s.recTrunc,
	})
	if s.stats != nil {
		s.stats.Checkpoints++
		if d := uint64(len(s.cps)); d > s.stats.MaxSpecDepth {
			s.stats.MaxSpecDepth = d
		}
	}
}

// Commit pops the most recent checkpoint, keeping all input consumed since.
func (s *Source) Commit() {
	if len(s.cps) == 0 {
		panic("padsrt: Commit without Checkpoint")
	}
	s.cps = s.cps[:len(s.cps)-1]
	if s.stats != nil {
		s.stats.Commits++
	}
}

// Restore pops the most recent checkpoint and rewinds to it.
func (s *Source) Restore() {
	if len(s.cps) == 0 {
		panic("padsrt: Restore without Checkpoint")
	}
	if s.stats != nil {
		s.stats.Restores++
	}
	cp := s.cps[len(s.cps)-1]
	s.cps = s.cps[:len(s.cps)-1]
	s.pos = cp.pos
	s.recDepth = cp.recDepth
	s.recBody = cp.recBody
	s.recEnd = cp.recEnd
	s.recTrail = cp.recTrail
	s.recNum = cp.recNum
	s.ov = cp.ov
	s.recTrunc = cp.recTrunc
	if s.limits.MaxBacktracks > 0 {
		s.backtracked()
	}
	s.clampStopped()
}

// clampStopped re-empties the readable window of a hard-stopped source after
// a rollback restored record state: a Restore (or Rewind) would otherwise
// reinstate a wider recEnd and let in-record fast-path reads re-scan
// buffered bytes the stop is supposed to withhold. backtracked applies the
// same clamp when the stop originates from the backtrack budget; this one
// covers cancellation, whose poll sites do not include rollbacks.
func (s *Source) clampStopped() {
	if s.stopped && s.recDepth > 0 {
		s.recEnd = s.pos
	}
}

// backtracked charges one rollback against Limits.MaxBacktracks. Once over
// the cap it pins the sticky LimitError and empties the readable window —
// ensure withholds buffered bytes and the in-record read fast paths see a
// zero-length record body — so every retried trial fails at its first read
// instead of re-scanning buffered input. It runs after the rollback has
// restored cursor and record state, so the clamp holds at each rollback no
// matter what window an outer checkpoint reinstates.
func (s *Source) backtracked() {
	s.nback++
	if s.nback <= s.limits.MaxBacktracks {
		return
	}
	if s.err == nil {
		s.err = &LimitError{What: "backtrack budget", Limit: s.limits.MaxBacktracks}
	}
	s.eof = true
	s.stopped = true
	if s.recDepth > 0 {
		s.recEnd = s.pos
	}
}

// Speculating reports whether any checkpoint is active.
func (s *Source) Speculating() bool { return len(s.cps) > 0 }

// Mark returns the cursor index for a later Rewind: the lightweight
// speculation pair engines use around trials of rewindable parses
// (ir.FRewind) — ones that consume input only by advancing the cursor
// inside the current record. Unlike Checkpoint it pins nothing and copies
// no record state, so the pair is sound only when no record is begun or
// ended (and hence no consumed data is discarded) between Mark and Rewind.
// Every base-type read satisfies this: compaction runs only at record
// boundaries, and fills append without shifting the buffer.
func (s *Source) Mark() int { return s.pos }

// Rewind moves the cursor back to a position returned by Mark. See Mark
// for the soundness contract.
func (s *Source) Rewind(mark int) {
	s.pos = mark
	if s.limits.MaxBacktracks > 0 {
		s.backtracked()
	}
	s.clampStopped()
}

// RecordBytes returns the bytes of the current record consumed so far plus
// the unconsumed remainder — i.e. the whole record body when called right
// after BeginRecord, useful to echo erroneous records to an error log as
// the Figure 7 program does.
func (s *Source) RecordBytes() []byte {
	if s.recDepth == 0 {
		return nil
	}
	if s.recEnd >= 0 {
		return s.buf[s.recBody:s.recEnd]
	}
	return s.buf[s.recBody:]
}

// String summarizes the cursor state for debugging.
func (s *Source) String() string {
	return fmt.Sprintf("Source{pos=%d rec=%d depth=%d disc=%s}", s.off+int64(s.pos), s.recNum, s.recDepth, s.disc.Name())
}
