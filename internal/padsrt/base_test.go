package padsrt

import (
	"strings"
	"testing"
	"testing/quick"
)

func src(data string, opts ...SourceOption) *Source {
	return NewBytesSource([]byte(data), opts...)
}

// recSrc opens a newline record around data so record-bounded readers work.
func recSrc(t *testing.T, data string, opts ...SourceOption) *Source {
	t.Helper()
	s := NewBytesSource([]byte(data+"\n"), opts...)
	ok, err := s.BeginRecord()
	if !ok || err != nil {
		t.Fatalf("BeginRecord: ok=%v err=%v", ok, err)
	}
	return s
}

func TestReadAUint(t *testing.T) {
	cases := []struct {
		in   string
		bits int
		want uint64
		code ErrCode
		rest string
	}{
		{"0|", 32, 0, ErrNone, "|"},
		{"12345|", 32, 12345, ErrNone, "|"},
		{"255", 8, 255, ErrNone, ""},
		{"256", 8, 256, ErrRange, ""},
		{"65535x", 16, 65535, ErrNone, "x"},
		{"65536x", 16, 65536, ErrRange, "x"},
		{"4294967295", 32, 4294967295, ErrNone, ""},
		{"4294967296", 32, 4294967296, ErrRange, ""},
		{"18446744073709551615", 64, 18446744073709551615, ErrNone, ""},
		{"18446744073709551616", 64, 0, ErrRange, ""}, // overflow detected
		{"abc", 32, 0, ErrInvalidInt, "abc"},
		{"-3", 32, 0, ErrInvalidInt, "-3"},
		{"", 32, 0, ErrAtEOR, ""},
	}
	for _, c := range cases {
		s := recSrc(t, c.in)
		v, code := ReadAUint(s, c.bits)
		if code != c.code {
			t.Errorf("ReadAUint(%q,%d) code = %v, want %v", c.in, c.bits, code, c.code)
			continue
		}
		if code == ErrNone && v != c.want {
			t.Errorf("ReadAUint(%q,%d) = %d, want %d", c.in, c.bits, v, c.want)
		}
		if got := string(s.Window(0)); got != c.rest {
			t.Errorf("ReadAUint(%q,%d) left %q, want %q", c.in, c.bits, got, c.rest)
		}
	}
}

func TestReadAInt(t *testing.T) {
	cases := []struct {
		in   string
		bits int
		want int64
		code ErrCode
	}{
		{"0", 32, 0, ErrNone},
		{"-1", 32, -1, ErrNone},
		{"+42", 32, 42, ErrNone},
		{"127", 8, 127, ErrNone},
		{"128", 8, 0, ErrRange},
		{"-128", 8, -128, ErrNone},
		{"-129", 8, 0, ErrRange},
		{"-9223372036854775808", 64, -9223372036854775808, ErrNone},
		{"9223372036854775807", 64, 9223372036854775807, ErrNone},
		{"-", 32, 0, ErrInvalidInt},
		{"x", 32, 0, ErrInvalidInt},
	}
	for _, c := range cases {
		s := recSrc(t, c.in)
		v, code := ReadAInt(s, c.bits)
		if code != c.code {
			t.Errorf("ReadAInt(%q,%d) code = %v, want %v", c.in, c.bits, code, c.code)
			continue
		}
		if code == ErrNone && v != c.want {
			t.Errorf("ReadAInt(%q,%d) = %d, want %d", c.in, c.bits, v, c.want)
		}
	}
}

func TestReadAUintFW(t *testing.T) {
	s := recSrc(t, "200 30")
	v, code := ReadAUintFW(s, 3, 16)
	if code != ErrNone || v != 200 {
		t.Fatalf("ReadAUintFW = %d,%v", v, code)
	}
	if got := string(s.Window(0)); got != " 30" {
		t.Fatalf("left %q", got)
	}
	// Leading spaces accepted; the full width is always consumed.
	s = recSrc(t, " 42x")
	v, code = ReadAUintFW(s, 3, 16)
	if code != ErrNone || v != 42 {
		t.Fatalf("ReadAUintFW(\" 42\") = %d,%v", v, code)
	}
	// Non-digit inside the field: width still consumed, error reported.
	s = recSrc(t, "2a0rest")
	_, code = ReadAUintFW(s, 3, 16)
	if code != ErrInvalidInt {
		t.Fatalf("code = %v", code)
	}
	if got := string(s.Window(0)); got != "rest" {
		t.Fatalf("left %q, want field consumed", got)
	}
	// Too short a record.
	s = recSrc(t, "12")
	if _, code = ReadAUintFW(s, 3, 16); code != ErrAtEOR {
		t.Fatalf("short field code = %v", code)
	}
}

func TestReadBIntRoundTrip(t *testing.T) {
	check := func(v int64, nbytes int, order ByteOrder) bool {
		// Mask v to the representable range.
		shift := uint(64 - nbytes*8)
		v = v << shift >> shift
		var buf []byte
		buf = AppendBUint(buf, uint64(v), nbytes, order)
		s := NewBytesSource(buf, WithDiscipline(NoRecords()), WithByteOrder(order))
		got, code := ReadBInt(s, nbytes)
		return code == ErrNone && got == v
	}
	for _, nbytes := range []int{1, 2, 4, 8} {
		for _, order := range []ByteOrder{BigEndian, LittleEndian} {
			nb, ord := nbytes, order
			if err := quick.Check(func(v int64) bool { return check(v, nb, ord) }, nil); err != nil {
				t.Errorf("nbytes=%d order=%v: %v", nbytes, order, err)
			}
		}
	}
}

func TestReadBUintOrders(t *testing.T) {
	s := NewBytesSource([]byte{0x12, 0x34}, WithDiscipline(NoRecords()))
	v, code := ReadBUint(s, 2)
	if code != ErrNone || v != 0x1234 {
		t.Fatalf("big-endian = %#x,%v", v, code)
	}
	s = NewBytesSource([]byte{0x12, 0x34}, WithDiscipline(NoRecords()), WithByteOrder(LittleEndian))
	v, code = ReadBUint(s, 2)
	if code != ErrNone || v != 0x3412 {
		t.Fatalf("little-endian = %#x,%v", v, code)
	}
}

func TestEBCDICRoundTripProperty(t *testing.T) {
	// ASCII printable bytes survive the EBCDIC round trip.
	f := func(b byte) bool {
		c := b%95 + 32 // printable ASCII
		return EBCDICToASCII(ASCIIToEBCDIC(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadEUint(t *testing.T) {
	data := StringToEBCDICBytes("12345|")
	s := NewBytesSource(data, WithDiscipline(NoRecords()), WithCoding(EBCDIC))
	v, code := ReadEUint(s, 32)
	if code != ErrNone || v != 12345 {
		t.Fatalf("ReadEUint = %d,%v", v, code)
	}
	if code := MatchChar(s, '|'); code != ErrNone {
		t.Fatalf("EBCDIC literal '|' = %v", code)
	}
}

func TestZonedRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		val := int64(v) % 1000000000
		var buf []byte
		buf = WriteZoned(buf, val, 9)
		s := NewBytesSource(buf, WithDiscipline(NoRecords()))
		got, code := ReadZoned(s, 9)
		return code == ErrNone && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBCDRoundTrip(t *testing.T) {
	for _, digits := range []int{1, 2, 5, 7, 18} {
		d := digits
		var mod int64 = 1
		for i := 0; i < d && mod < 1e18; i++ {
			mod *= 10
		}
		f := func(v int64) bool {
			val := v % mod
			var buf []byte
			buf = WriteBCD(buf, val, d)
			if len(buf) != BCDWidth(d) {
				return false
			}
			s := NewBytesSource(buf, WithDiscipline(NoRecords()))
			got, code := ReadBCD(s, d)
			return code == ErrNone && got == val
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("digits=%d: %v", d, err)
		}
	}
}

func TestBCDInvalid(t *testing.T) {
	s := NewBytesSource([]byte{0xAB, 0x1C}, WithDiscipline(NoRecords()))
	if _, code := ReadBCD(s, 3); code != ErrInvalidBCD {
		t.Errorf("code = %v, want ErrInvalidBCD", code)
	}
}

func TestReadStringTerm(t *testing.T) {
	s := recSrc(t, "hello world")
	v, code := ReadStringTerm(s, ' ')
	if code != ErrNone || v != "hello" {
		t.Fatalf("= %q,%v", v, code)
	}
	// Terminator is not consumed.
	if b, _ := s.PeekByte(); b != ' ' {
		t.Fatalf("terminator consumed; at %c", b)
	}
	// Missing terminator: runs to end of record.
	s = recSrc(t, "noterm")
	v, code = ReadStringTerm(s, '|')
	if code != ErrNone || v != "noterm" {
		t.Fatalf("= %q,%v", v, code)
	}
	if !s.AtEOR() {
		t.Fatal("not at EOR")
	}
	// Empty string directly before terminator.
	s = recSrc(t, "|x")
	v, code = ReadStringTerm(s, '|')
	if code != ErrNone || v != "" {
		t.Fatalf("= %q,%v", v, code)
	}
}

func TestReadStringFW(t *testing.T) {
	s := recSrc(t, "abcdef")
	v, code := ReadStringFW(s, 4)
	if code != ErrNone || v != "abcd" {
		t.Fatalf("= %q,%v", v, code)
	}
	if _, code = ReadStringFW(s, 4); code != ErrAtEOR {
		t.Fatalf("short = %v", code)
	}
}

func TestRegexpBaseTypes(t *testing.T) {
	re := MustCompileRegexp(`[A-Z]+`)
	s := recSrc(t, "ABCdef")
	v, code := ReadStringME(s, re)
	if code != ErrNone || v != "ABC" {
		t.Fatalf("ME = %q,%v", v, code)
	}
	s = recSrc(t, "abc123def")
	v, code = ReadStringSE(s, MustCompileRegexp(`[0-9]+`))
	if code != ErrNone || v != "abc" {
		t.Fatalf("SE = %q,%v", v, code)
	}
	s = recSrc(t, "xyz")
	if _, code = ReadStringME(s, re); code != ErrInvalidRegexp {
		t.Fatalf("ME miss = %v", code)
	}
}

func TestLiterals(t *testing.T) {
	s := recSrc(t, `"GET /x HTTP/1.0"`)
	if code := MatchChar(s, '"'); code != ErrNone {
		t.Fatal(code)
	}
	if code := MatchString(s, "GET"); code != ErrNone {
		t.Fatal(code)
	}
	if code := MatchString(s, "GET"); code != ErrMissingLiteral {
		t.Fatalf("re-match = %v", code)
	}
	if code := MatchChar(s, ' '); code != ErrNone {
		t.Fatal(code)
	}
	if code := MatchRegexp(s, MustCompileRegexp(`/[a-z]+`)); code != ErrNone {
		t.Fatal(code)
	}
	if code := MatchString(s, ` HTTP/1.0"`); code != ErrNone {
		t.Fatal(code)
	}
	if code := MatchEOR(s); code != ErrNone {
		t.Fatal(code)
	}
}

func TestReadDate(t *testing.T) {
	s := recSrc(t, "15/Oct/1997:18:46:51 -0700]rest")
	sec, raw, code := ReadDate(s, ']')
	if code != ErrNone {
		t.Fatalf("code = %v", code)
	}
	if raw != "15/Oct/1997:18:46:51 -0700" {
		t.Fatalf("raw = %q", raw)
	}
	if sec != 876966411 {
		t.Fatalf("sec = %d", sec)
	}
	// Epoch seconds form (Sirius timestamps).
	s = recSrc(t, "1005022800|")
	sec, _, code = ReadDate(s, '|')
	if code != ErrNone || sec != 1005022800 {
		t.Fatalf("epoch = %d,%v", sec, code)
	}
	s = recSrc(t, "not-a-date|")
	if _, _, code = ReadDate(s, '|'); code != ErrInvalidDate {
		t.Fatalf("bad date = %v", code)
	}
}

func TestFormatDate(t *testing.T) {
	// 876966411 = 16/Oct/1997 01:46:51 UTC.
	if got := FormatDate(876966411, "%D:%T"); got != "10/16/97:01:46:51" {
		t.Errorf("FormatDate %%D:%%T = %q", got)
	}
	if got := FormatDate(876966411, "%Y-%m-%d"); got != "1997-10-16" {
		t.Errorf("FormatDate = %q", got)
	}
	if got := FormatDate(0, "%s%%"); got != "0%" {
		t.Errorf("FormatDate = %q", got)
	}
}

func TestReadIP(t *testing.T) {
	s := recSrc(t, "135.207.23.32 -")
	v, code := ReadIP(s)
	if code != ErrNone {
		t.Fatalf("code = %v", code)
	}
	if FormatIP(v) != "135.207.23.32" {
		t.Fatalf("ip = %s", FormatIP(v))
	}
	for _, bad := range []string{"256.1.1.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "1.2.3.999"} {
		s := recSrc(t, bad+" ")
		if _, code := ReadIP(s); code != ErrInvalidIP {
			t.Errorf("ReadIP(%q) = %v, want ErrInvalidIP", bad, code)
		}
	}
}

func TestFormatIPRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		s := recSrc(t, FormatIP(v)+" ")
		got, code := ReadIP(s)
		return code == ErrNone && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadHostname(t *testing.T) {
	s := recSrc(t, "www.research.att.com -")
	v, code := ReadHostname(s)
	if code != ErrNone || v != "www.research.att.com" {
		t.Fatalf("= %q,%v", v, code)
	}
	s = recSrc(t, "tj62.aol.com rest")
	v, code = ReadHostname(s)
	if code != ErrNone || v != "tj62.aol.com" {
		t.Fatalf("= %q,%v", v, code)
	}
	// A bare dash (the CLF "not recorded" marker) is not a hostname.
	s = recSrc(t, "- -")
	if _, code = ReadHostname(s); code != ErrInvalidHostname {
		t.Fatalf("dash = %v", code)
	}
	// Pure digits are not a hostname (an IP must not match).
	s = recSrc(t, "12.34.56.78 x")
	if _, code = ReadHostname(s); code != ErrInvalidHostname {
		t.Fatalf("digits = %v", code)
	}
}

func TestReadZip(t *testing.T) {
	s := recSrc(t, "07988|")
	v, code := ReadZip(s)
	if code != ErrNone || v != "07988" {
		t.Fatalf("= %q,%v", v, code)
	}
	s = recSrc(t, "07733-1234|")
	v, code = ReadZip(s)
	if code != ErrNone || v != "07733-1234" {
		t.Fatalf("zip+4 = %q,%v", v, code)
	}
	for _, bad := range []string{"1234|", "123456|", "abcde|"} {
		s := recSrc(t, bad)
		if _, code := ReadZip(s); code != ErrInvalidZip {
			t.Errorf("ReadZip(%q) = %v, want ErrInvalidZip", bad, code)
		}
	}
}

func TestReadAFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		code ErrCode
	}{
		{"3.14|", 3.14, ErrNone},
		{"-2.5e3|", -2500, ErrNone},
		{"42|", 42, ErrNone},
		{".5|", 0.5, ErrNone},
		{"-.5|", -0.5, ErrNone},
		{"abc|", 0, ErrInvalidFloat},
		{".|", 0, ErrInvalidFloat},
	}
	for _, c := range cases {
		s := recSrc(t, c.in)
		v, code := ReadAFloat(s, 64)
		if code != c.code || (code == ErrNone && v != c.want) {
			t.Errorf("ReadAFloat(%q) = %v,%v want %v,%v", c.in, v, code, c.want, c.code)
		}
	}
	// "1e" consumes the mantissa only; the exponent must be complete.
	s := recSrc(t, "1ex")
	v, code := ReadAFloat(s, 64)
	if code != ErrNone || v != 1 {
		t.Fatalf("1e = %v,%v", v, code)
	}
	if got := string(s.Window(0)); got != "ex" {
		t.Fatalf("left %q", got)
	}
}

func TestPDErrorPropagation(t *testing.T) {
	var parent, child PD
	child.SetError(ErrInvalidInt, Loc{})
	child.SetError(ErrRange, Loc{})
	if child.Nerr != 2 || child.ErrCode != ErrInvalidInt {
		t.Fatalf("child = %v", &child)
	}
	parent.AddChildErrors(&child, ErrStructField)
	// The parent inherits the child's specific first-error code.
	if parent.Nerr != 2 || parent.ErrCode != ErrInvalidInt || parent.State != Partial {
		t.Fatalf("parent = %v", &parent)
	}
	var fallback, codeless PD
	codeless.Nerr = 1
	fallback.AddChildErrors(&codeless, ErrStructField)
	if fallback.ErrCode != ErrStructField {
		t.Fatalf("fallback code = %v", fallback.ErrCode)
	}
	var panicking PD
	panicking.State = Panicking
	panicking.SetError(ErrPanicSkipped, Loc{})
	parent.AddChildErrors(&panicking, ErrStructField)
	if parent.State != Panicking {
		t.Fatalf("state = %v", parent.State)
	}
}

func TestErrClass(t *testing.T) {
	cases := map[ErrCode]Class{
		ErrNone:           ClassNone,
		ErrIO:             ClassSystem,
		ErrMissingLiteral: ClassSyntax,
		ErrConstraint:     ClassSemantic,
		ErrWhere:          ClassSemantic,
		ErrPanicSkipped:   ClassSyntax,
	}
	for code, want := range cases {
		if got := code.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", code, got, want)
		}
	}
}

func TestMaskTree(t *testing.T) {
	var nilNode *MaskNode
	if nilNode.BaseMask() != CheckAndSet || nilNode.CompoundMask() != CheckAndSet {
		t.Fatal("nil mask must mean CheckAndSet")
	}
	if nilNode.Field("x") != nil || nilNode.ElemMask() != nil {
		t.Fatal("nil mask subtrees must be nil")
	}
	m := NewMaskNode(CheckAndSet)
	m.SetField("events", NewMaskNode(Set))
	if m.Field("events").BaseMask() != Set {
		t.Fatal("explicit field mask lost")
	}
	if m.Field("other").BaseMask() != CheckAndSet {
		t.Fatal("missing field must inherit base")
	}
	ign := NewMaskNode(Ignore)
	if got := ign.Field("x").BaseMask(); got != Ignore {
		t.Fatalf("inherited = %v", got)
	}
	if Ignore.DoSet() || Ignore.DoCheck() || !CheckAndSet.DoSet() || !CheckAndSet.DoCheck() {
		t.Fatal("mask bits wrong")
	}
	if Set.DoCheck() || !Set.DoSet() || Check.DoSet() || !Check.DoCheck() {
		t.Fatal("mask bits wrong")
	}
}

func TestStringTermEBCDIC(t *testing.T) {
	data := StringToEBCDICBytes("hello|world")
	s := NewBytesSource(data, WithDiscipline(NoRecords()), WithCoding(EBCDIC))
	v, code := ReadStringTerm(s, '|')
	if code != ErrNone || v != "hello" {
		t.Fatalf("= %q,%v", v, code)
	}
}

func TestLongRecordStringScan(t *testing.T) {
	// Exercise the incremental window growth in ReadStringTerm with an
	// unbounded discipline and a terminator beyond the first fill chunk.
	long := strings.Repeat("a", 10000) + "|tail"
	s := NewSource(strings.NewReader(long), WithDiscipline(NoRecords()))
	if ok, _ := s.BeginRecord(); !ok {
		t.Fatal("BeginRecord")
	}
	v, code := ReadStringTerm(s, '|')
	if code != ErrNone || len(v) != 10000 {
		t.Fatalf("len = %d code = %v", len(v), code)
	}
}
