package padsrt

// EBCDIC support: code-page 037 translation tables plus the zoned- and
// packed-decimal (COMP-3) numeric encodings used by the Cobol billing
// sources of Figure 1. Tables are built once at init from the printable
// code points; unmapped EBCDIC bytes translate to ASCII SUB (0x1A).

var (
	ebcdicToASCIITab [256]byte
	asciiToEBCDICTab [256]byte
)

func init() {
	for i := range ebcdicToASCIITab {
		ebcdicToASCIITab[i] = 0x1A
		asciiToEBCDICTab[i] = 0x3F // EBCDIC SUB
	}
	type pair struct {
		e, a byte
	}
	pairs := []pair{
		{0x00, 0x00}, {0x05, '\t'}, {0x0D, '\r'}, {0x15, '\n'}, {0x25, 0x0A},
		{0x40, ' '},
		{0x4A, '\xA2'}, {0x4B, '.'}, {0x4C, '<'}, {0x4D, '('}, {0x4E, '+'}, {0x4F, '|'},
		{0x50, '&'},
		{0x5A, '!'}, {0x5B, '$'}, {0x5C, '*'}, {0x5D, ')'}, {0x5E, ';'}, {0x5F, '^'},
		{0x60, '-'}, {0x61, '/'},
		{0x6A, '\xA6'}, {0x6B, ','}, {0x6C, '%'}, {0x6D, '_'}, {0x6E, '>'}, {0x6F, '?'},
		{0x79, '`'}, {0x7A, ':'}, {0x7B, '#'}, {0x7C, '@'}, {0x7D, '\''}, {0x7E, '='}, {0x7F, '"'},
		{0xA1, '~'}, {0xAD, '['}, {0xBD, ']'}, {0xC0, '{'}, {0xD0, '}'}, {0xE0, '\\'},
	}
	for _, p := range pairs {
		ebcdicToASCIITab[p.e] = p.a
	}
	// Letters and digits follow the standard banded layout.
	for i := byte(0); i < 9; i++ {
		ebcdicToASCIITab[0x81+i] = 'a' + i // a-i
		ebcdicToASCIITab[0x91+i] = 'j' + i // j-r
		ebcdicToASCIITab[0xC1+i] = 'A' + i // A-I
		ebcdicToASCIITab[0xD1+i] = 'J' + i // J-R
	}
	for i := byte(0); i < 8; i++ {
		ebcdicToASCIITab[0xA2+i] = 's' + i // s-z
		ebcdicToASCIITab[0xE2+i] = 'S' + i // S-Z
	}
	for i := byte(0); i < 10; i++ {
		ebcdicToASCIITab[0xF0+i] = '0' + i
	}
	// Inverse table: prefer 0x15 (NL) for '\n', matching the newline
	// record discipline for EBCDIC text.
	for e := 255; e >= 0; e-- {
		a := ebcdicToASCIITab[e]
		if a != 0x1A {
			asciiToEBCDICTab[a] = byte(e)
		}
	}
	asciiToEBCDICTab['\n'] = 0x15
}

// EBCDICToASCII translates one EBCDIC (cp037) byte to ASCII/Latin-1;
// unmapped bytes become SUB (0x1A).
func EBCDICToASCII(b byte) byte { return ebcdicToASCIITab[b] }

// ASCIIToEBCDIC translates one ASCII/Latin-1 byte to EBCDIC (cp037).
func ASCIIToEBCDIC(b byte) byte { return asciiToEBCDICTab[b] }

// EBCDICBytesToString converts a whole EBCDIC byte slice to an ASCII string.
func EBCDICBytesToString(bs []byte) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		out[i] = ebcdicToASCIITab[b]
	}
	return string(out)
}

// StringToEBCDICBytes converts an ASCII string to EBCDIC bytes.
func StringToEBCDICBytes(s string) []byte {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = asciiToEBCDICTab[s[i]]
	}
	return out
}

// ReadZoned reads a zoned-decimal integer of exactly digits bytes: each byte
// holds one decimal digit in its low nibble with zone 0xF, except the final
// byte whose zone nibble carries the sign (0xC/0xF positive, 0xD negative).
func ReadZoned(s *Source, digits int) (int64, ErrCode) {
	if digits <= 0 || digits > 18 {
		return 0, ErrBadParam
	}
	if s.Avail(digits) < digits {
		return 0, eofCode(s)
	}
	w := s.Peek(digits)
	var v int64
	neg := false
	for i, b := range w {
		zone, d := b>>4, b&0x0F
		if d > 9 {
			return 0, ErrInvalidZoned
		}
		if i == digits-1 {
			switch zone {
			case 0xC, 0xF, 0xA, 0xE:
			case 0xD, 0xB:
				neg = true
			default:
				return 0, ErrInvalidZoned
			}
		} else if zone != 0xF {
			return 0, ErrInvalidZoned
		}
		v = v*10 + int64(d)
	}
	if neg {
		v = -v
	}
	s.Skip(digits)
	return v, ErrNone
}

// WriteZoned appends the zoned-decimal encoding of v using the given number
// of digits (value truncated modulo 10^digits).
func WriteZoned(dst []byte, v int64, digits int) []byte {
	neg := v < 0
	if neg {
		v = -v
	}
	tmp := make([]byte, digits)
	for i := digits - 1; i >= 0; i-- {
		tmp[i] = 0xF0 | byte(v%10)
		v /= 10
	}
	if neg {
		tmp[digits-1] = 0xD0 | (tmp[digits-1] & 0x0F)
	} else {
		tmp[digits-1] = 0xC0 | (tmp[digits-1] & 0x0F)
	}
	return append(dst, tmp...)
}

// ReadBCD reads a packed-decimal (COMP-3) integer with the given digit
// count. Digits are packed two per byte; the final nibble is the sign
// (0xC/0xF positive, 0xD negative). The byte width is (digits+2)/2... more
// precisely digits/2+1 bytes, with a leading pad nibble when digits is even.
func ReadBCD(s *Source, digits int) (int64, ErrCode) {
	if digits <= 0 || digits > 18 {
		return 0, ErrBadParam
	}
	nbytes := digits/2 + 1
	if s.Avail(nbytes) < nbytes {
		return 0, eofCode(s)
	}
	w := s.Peek(nbytes)
	var v int64
	nibbles := make([]byte, 0, nbytes*2)
	for _, b := range w {
		nibbles = append(nibbles, b>>4, b&0x0F)
	}
	// With an even digit count the first nibble is a pad and must be 0.
	start := 0
	if digits%2 == 0 {
		if nibbles[0] != 0 {
			return 0, ErrInvalidBCD
		}
		start = 1
	}
	for i := start; i < start+digits; i++ {
		if nibbles[i] > 9 {
			return 0, ErrInvalidBCD
		}
		v = v*10 + int64(nibbles[i])
	}
	neg := false
	switch sign := nibbles[len(nibbles)-1]; sign {
	case 0xC, 0xF, 0xA, 0xE:
	case 0xD, 0xB:
		neg = true
	default:
		return 0, ErrInvalidBCD
	}
	if neg {
		v = -v
	}
	s.Skip(nbytes)
	return v, ErrNone
}

// WriteBCD appends the packed-decimal (COMP-3) encoding of v with the given
// digit count.
func WriteBCD(dst []byte, v int64, digits int) []byte {
	neg := v < 0
	if neg {
		v = -v
	}
	ds := make([]byte, digits)
	for i := digits - 1; i >= 0; i-- {
		ds[i] = byte(v % 10)
		v /= 10
	}
	sign := byte(0xC)
	if neg {
		sign = 0xD
	}
	nibbles := make([]byte, 0, digits+2)
	if digits%2 == 0 {
		nibbles = append(nibbles, 0)
	}
	nibbles = append(nibbles, ds...)
	nibbles = append(nibbles, sign)
	for i := 0; i < len(nibbles); i += 2 {
		dst = append(dst, nibbles[i]<<4|nibbles[i+1])
	}
	return dst
}

// BCDWidth returns the byte width of a packed decimal with the given number
// of digits.
func BCDWidth(digits int) int { return digits/2 + 1 }
