package padsrt

import (
	"time"
)

// Pdate / Ptime support. A date is stored as seconds since the Unix epoch
// together with the raw text it was parsed from, so data can be written back
// out in its original form. The parser accepts the formats that appear in
// the paper's data sources (CLF's "15/Oct/1997:18:46:51 -0700", Sirius's
// epoch seconds) plus a collection of common interchange forms.

// DateLayouts are tried in order by ReadDate after the all-digits
// epoch-seconds fast path. Extend the slice to teach the runtime new
// formats (user-defined base types, section 6 of the paper).
var DateLayouts = []string{
	"02/Jan/2006:15:04:05 -0700", // Common Log Format
	"02/Jan/2006:15:04:05",
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02",
	"01/02/06:15:04:05", // the %D:%T output form of Figure 8
	"01/02/2006:15:04:05",
	"01/02/2006",
	"Jan _2 15:04:05 2006",
	"Jan _2 15:04:05",
}

// ParseDateString interprets raw as a date, returning epoch seconds.
func ParseDateString(raw string) (int64, ErrCode) {
	if raw == "" {
		return 0, ErrInvalidDate
	}
	allDigits := true
	for i := 0; i < len(raw); i++ {
		if !isDigit(raw[i]) {
			allDigits = false
			break
		}
	}
	if allDigits {
		var v int64
		for i := 0; i < len(raw); i++ {
			v = v*10 + int64(raw[i]-'0')
		}
		return v, ErrNone
	}
	for _, layout := range DateLayouts {
		if t, err := time.Parse(layout, raw); err == nil {
			return t.Unix(), ErrNone
		}
	}
	return 0, ErrInvalidDate
}

// ReadDate reads text up to (not including) the terminator and parses it as
// a date (Pdate(:']':) in Figure 4). It returns the epoch seconds and the
// raw text.
func ReadDate(s *Source, term byte) (int64, string, ErrCode) {
	raw, code := ReadStringTerm(s, term)
	if code != ErrNone {
		return 0, raw, code
	}
	sec, code := ParseDateString(raw)
	return sec, raw, code
}

// FormatDate renders epoch seconds using a strftime-like format string in
// UTC: %Y %m %d %e %b %H %M %S %D (mm/dd/yy) %T (HH:MM:SS) %s (epoch) and
// %% are supported, matching the customization hooks of the generated
// formatting programs (section 5.3.1: "an output format for dates" such as
// "%D:%T").
func FormatDate(sec int64, format string) string {
	t := time.Unix(sec, 0).UTC()
	out := make([]byte, 0, len(format)+16)
	for i := 0; i < len(format); i++ {
		if format[i] != '%' || i+1 >= len(format) {
			out = append(out, format[i])
			continue
		}
		i++
		switch format[i] {
		case 'Y':
			out = AppendUintFW(out, uint64(t.Year()), 4)
		case 'y':
			out = AppendUintFW(out, uint64(t.Year()%100), 2)
		case 'm':
			out = AppendUintFW(out, uint64(t.Month()), 2)
		case 'd':
			out = AppendUintFW(out, uint64(t.Day()), 2)
		case 'e':
			out = AppendUint(out, uint64(t.Day()))
		case 'b':
			out = append(out, t.Month().String()[:3]...)
		case 'H':
			out = AppendUintFW(out, uint64(t.Hour()), 2)
		case 'M':
			out = AppendUintFW(out, uint64(t.Minute()), 2)
		case 'S':
			out = AppendUintFW(out, uint64(t.Second()), 2)
		case 'D':
			out = AppendUintFW(out, uint64(t.Month()), 2)
			out = append(out, '/')
			out = AppendUintFW(out, uint64(t.Day()), 2)
			out = append(out, '/')
			out = AppendUintFW(out, uint64(t.Year()%100), 2)
		case 'T':
			out = AppendUintFW(out, uint64(t.Hour()), 2)
			out = append(out, ':')
			out = AppendUintFW(out, uint64(t.Minute()), 2)
			out = append(out, ':')
			out = AppendUintFW(out, uint64(t.Second()), 2)
		case 's':
			out = AppendInt(out, sec)
		case '%':
			out = append(out, '%')
		default:
			out = append(out, '%', format[i])
		}
	}
	return string(out)
}
