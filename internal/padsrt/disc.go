package padsrt

import (
	"bytes"
	"fmt"
)

// Coding is the ambient character coding used to interpret literals and
// coding-agnostic base types such as Puint32 (section 3 of the paper). Types
// like Pa_int32, Pe_char, and Pb_int8 select a coding explicitly and ignore
// the ambient setting.
type Coding int

// Ambient codings.
const (
	ASCII Coding = iota
	EBCDIC
)

// String names the coding.
func (c Coding) String() string {
	switch c {
	case ASCII:
		return "ASCII"
	case EBCDIC:
		return "EBCDIC"
	default:
		return fmt.Sprintf("Coding(%d)", int(c))
	}
}

// ByteOrder selects the byte order for binary (Pb_*) integer types.
type ByteOrder int

// Byte orders.
const (
	BigEndian ByteOrder = iota
	LittleEndian
)

// String names the byte order.
func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// Discipline determines how a source is divided into records. The paper
// (section 3, "Precord") supports newline-terminated ASCII records,
// fixed-width binary records, Cobol-style length-prefixed records, and
// user-defined encodings; each is a Discipline here.
type Discipline interface {
	// locate finds the extent of the record beginning at the cursor.
	// skip is the number of header bytes before the record body (for
	// length-prefixed records), body is the body length in bytes (-1 for
	// an unbounded record covering the rest of the input), and trailer is
	// the number of delimiter bytes following the body. locate may pull
	// more data into the window via src.ensure. It reports ok=false at a
	// clean end of input.
	locate(src *Source) (skip, body, trailer int, ok bool, err error)
	// writeRecord frames one record body on output (adding the newline,
	// length prefix, or padding the discipline requires).
	writeRecord(dst *[]byte, body []byte)
	// Name identifies the discipline in diagnostics.
	Name() string
}

// FrameRecord frames one record body on output under the discipline,
// appending to dst: the write-side counterpart of BeginRecord/EndRecord.
func FrameRecord(d Discipline, dst *[]byte, body []byte) { d.writeRecord(dst, body) }

// NewlineDisc delimits records with a terminator byte, '\n' by default for
// ASCII data. A final record missing its terminator is still returned.
type NewlineDisc struct {
	Term byte
}

// Newline returns the default discipline for ASCII data: records terminated
// by '\n'.
func Newline() *NewlineDisc { return &NewlineDisc{Term: '\n'} }

// Name implements Discipline.
func (d *NewlineDisc) Name() string { return "newline" }

func (d *NewlineDisc) locate(src *Source) (int, int, int, bool, error) {
	i := 0
	for {
		// Resource guard: a record with no terminator in sight would
		// otherwise buffer without bound (a multi-GB "line" is a classic
		// corruption). Clamp the body; EndRecord streams the tail away.
		if m := src.limits.MaxRecordLen; m > 0 && i >= m {
			src.noteOverflowTerm(d.Term)
			return 0, m, 0, true, nil
		}
		w, eof, err := src.ensure(i + 1)
		if err != nil {
			return 0, 0, 0, false, err
		}
		if len(w) <= i {
			if eof {
				if i == 0 {
					return 0, 0, 0, false, nil // clean EOF
				}
				return 0, i, 0, true, nil // final unterminated record
			}
			continue
		}
		// Scan the newly available region for the terminator.
		if j := bytes.IndexByte(w[i:], d.Term); j >= 0 {
			if m := src.limits.MaxRecordLen; m > 0 && i+j > m {
				// Clamp even when the terminator is already buffered, so
				// truncation does not depend on read chunking: a bytes-
				// backed parallel chunk and a streaming sequential parse
				// must truncate the same records.
				src.noteOverflowTerm(d.Term)
				return 0, m, 0, true, nil
			}
			return 0, i + j, 1, true, nil
		}
		i = len(w)
	}
}

func (d *NewlineDisc) writeRecord(dst *[]byte, body []byte) {
	*dst = append(*dst, body...)
	*dst = append(*dst, d.Term)
}

// FixedDisc divides the input into fixed-width records of Width bytes with
// no delimiters, the usual framing for binary sources such as call-detail
// data (Figure 1 of the paper).
type FixedDisc struct {
	Width int
}

// FixedWidth returns a fixed-width record discipline.
func FixedWidth(width int) *FixedDisc { return &FixedDisc{Width: width} }

// Name implements Discipline.
func (d *FixedDisc) Name() string { return fmt.Sprintf("fixed(%d)", d.Width) }

func (d *FixedDisc) locate(src *Source) (int, int, int, bool, error) {
	want := d.Width
	capped := false
	if m := src.limits.MaxRecordLen; m > 0 && want > m {
		// A misconfigured or adversarial width must not force the whole
		// record into memory; clamp and stream the tail away at EndRecord.
		want = m
		capped = true
	}
	w, eof, err := src.ensure(want)
	if err != nil {
		return 0, 0, 0, false, err
	}
	if len(w) == 0 && eof {
		return 0, 0, 0, false, nil
	}
	if len(w) < want {
		// Short final record: surface what remains; the caller will
		// report ErrRecordLength when a fixed-width read runs out.
		return 0, len(w), 0, true, nil
	}
	if capped {
		src.noteOverflowCount(int64(d.Width - want))
		return 0, want, 0, true, nil
	}
	return 0, d.Width, 0, true, nil
}

func (d *FixedDisc) writeRecord(dst *[]byte, body []byte) {
	*dst = append(*dst, body...)
	for i := len(body); i < d.Width; i++ {
		*dst = append(*dst, 0)
	}
}

// LenPrefixDisc frames each record with a length header, the convention of
// the Cobol billing feeds in the paper (the record length is stored before
// the data). HeaderBytes is the header size (2 or 4); the length is read in
// the given byte order and, when IncludesHeader is set, counts the header
// itself.
type LenPrefixDisc struct {
	HeaderBytes    int
	Order          ByteOrder
	IncludesHeader bool
}

// LenPrefix returns a big-endian 4-byte length-prefixed record discipline.
func LenPrefix() *LenPrefixDisc { return &LenPrefixDisc{HeaderBytes: 4, Order: BigEndian} }

// Name implements Discipline.
func (d *LenPrefixDisc) Name() string { return fmt.Sprintf("lenprefix(%d)", d.HeaderBytes) }

func (d *LenPrefixDisc) locate(src *Source) (int, int, int, bool, error) {
	w, eof, err := src.ensure(d.HeaderBytes)
	if err != nil {
		return 0, 0, 0, false, err
	}
	if len(w) == 0 && eof {
		return 0, 0, 0, false, nil
	}
	if len(w) < d.HeaderBytes {
		return 0, len(w), 0, true, nil // truncated header: short record
	}
	n := 0
	if d.Order == BigEndian {
		for i := 0; i < d.HeaderBytes; i++ {
			n = n<<8 | int(w[i])
		}
	} else {
		for i := d.HeaderBytes - 1; i >= 0; i-- {
			n = n<<8 | int(w[i])
		}
	}
	if d.IncludesHeader {
		n -= d.HeaderBytes
	}
	if n < 0 {
		n = 0
	}
	if m := src.limits.MaxRecordLen; m > 0 && n > m {
		// A corrupted length header (the truncated-Cobol-prefix failure
		// mode) must not trigger a gigabyte ensure; clamp and let
		// EndRecord stream the declared remainder away.
		src.noteOverflowCount(int64(n - m))
		n = m
	}
	return d.HeaderBytes, n, 0, true, nil
}

func (d *LenPrefixDisc) writeRecord(dst *[]byte, body []byte) {
	n := len(body)
	if d.IncludesHeader {
		n += d.HeaderBytes
	}
	hdr := make([]byte, d.HeaderBytes)
	if d.Order == BigEndian {
		for i := d.HeaderBytes - 1; i >= 0; i-- {
			hdr[i] = byte(n)
			n >>= 8
		}
	} else {
		for i := 0; i < d.HeaderBytes; i++ {
			hdr[i] = byte(n)
			n >>= 8
		}
	}
	*dst = append(*dst, hdr...)
	*dst = append(*dst, body...)
}

// CustomDisc adapts user-supplied functions into a record discipline — the
// paper's "allows users to define their own encodings" (section 3). Locate
// examines the unconsumed input through peek, which returns at least n
// bytes unless the input ends first (the second result reports whether the
// returned window is all that remains). It returns the header bytes to
// skip, the body length (-1 for unbounded), the trailer length, ok=false at
// a clean end of input, or an error. Frame is the write-side counterpart;
// when nil, bodies are written unframed.
type CustomDisc struct {
	Label  string
	Locate func(peek func(n int) ([]byte, bool)) (skip, body, trailer int, ok bool, err error)
	Frame  func(dst *[]byte, body []byte)
}

// Name implements Discipline.
func (d *CustomDisc) Name() string {
	if d.Label == "" {
		return "custom"
	}
	return d.Label
}

func (d *CustomDisc) locate(src *Source) (int, int, int, bool, error) {
	peek := func(n int) ([]byte, bool) {
		w, eof, err := src.ensure(n)
		if err != nil {
			return nil, true
		}
		return w, eof && len(w) < n
	}
	return d.Locate(peek)
}

func (d *CustomDisc) writeRecord(dst *[]byte, body []byte) {
	if d.Frame == nil {
		*dst = append(*dst, body...)
		return
	}
	d.Frame(dst, body)
}

// NoneDisc treats the entire input as a single unbounded record; Peor is
// equivalent to Peof. Useful for whole-file binary formats.
type NoneDisc struct{}

// NoRecords returns the unbounded discipline.
func NoRecords() *NoneDisc { return &NoneDisc{} }

// Name implements Discipline.
func (d *NoneDisc) Name() string { return "none" }

func (d *NoneDisc) locate(src *Source) (int, int, int, bool, error) {
	w, eof, err := src.ensure(1)
	if err != nil {
		return 0, 0, 0, false, err
	}
	if len(w) == 0 && eof {
		return 0, 0, 0, false, nil
	}
	return 0, -1, 0, true, nil
}

func (d *NoneDisc) writeRecord(dst *[]byte, body []byte) {
	*dst = append(*dst, body...)
}
