package padsrt

// Network-flavored base types: Pip (dotted-quad IPv4 addresses), Phostname,
// and Pzip (US postal codes), all of which appear in the CLF and Sirius
// descriptions of Figures 4 and 5.

// ReadIP reads a dotted-quad IPv4 address, returning it in host order as a
// uint32. Each octet must be in 0..255 and the address must not be followed
// by a further digit or dot (so "1.2.3.4.5" does not half-match).
func ReadIP(s *Source) (uint32, ErrCode) {
	w := s.Window(64)
	if len(w) == 0 {
		return 0, eofCode(s)
	}
	var v uint32
	i := 0
	for part := 0; part < 4; part++ {
		if part > 0 {
			if i >= len(w) || w[i] != '.' {
				return 0, ErrInvalidIP
			}
			i++
		}
		if i >= len(w) || !isDigit(w[i]) {
			return 0, ErrInvalidIP
		}
		oct := 0
		digits := 0
		for i < len(w) && isDigit(w[i]) && digits < 3 {
			oct = oct*10 + int(w[i]-'0')
			i++
			digits++
		}
		if oct > 255 {
			return 0, ErrInvalidIP
		}
		v = v<<8 | uint32(oct)
	}
	if i < len(w) && (isDigit(w[i]) || w[i] == '.') {
		return 0, ErrInvalidIP
	}
	s.Skip(i)
	return v, ErrNone
}

// FormatIP renders a host-order IPv4 address as a dotted quad.
func FormatIP(v uint32) string {
	out := make([]byte, 0, 15)
	out = AppendUint(out, uint64(v>>24))
	out = append(out, '.')
	out = AppendUint(out, uint64(v>>16&0xFF))
	out = append(out, '.')
	out = AppendUint(out, uint64(v>>8&0xFF))
	out = append(out, '.')
	out = AppendUint(out, uint64(v&0xFF))
	return string(out)
}

func isHostByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || isDigit(b) || b == '-'
}

// ReadHostname reads a dotted hostname: labels of letters, digits, and
// hyphens, each starting with a letter or digit, separated by dots. At least
// one label must contain a letter, so a bare IP does not parse as a
// hostname (the branch ordering in Figure 4's client_t then disambiguates).
func ReadHostname(s *Source) (string, ErrCode) {
	w := s.Window(512)
	i := 0
	sawAlpha := false
	for {
		if i >= len(w) || !isHostByte(w[i]) || w[i] == '-' {
			return "", ErrInvalidHostname
		}
		for i < len(w) && isHostByte(w[i]) {
			if !isDigit(w[i]) && w[i] != '-' {
				sawAlpha = true
			}
			i++
		}
		if i < len(w) && w[i] == '.' && i+1 < len(w) && isHostByte(w[i+1]) {
			i++
			continue
		}
		break
	}
	if !sawAlpha {
		return "", ErrInvalidHostname
	}
	out := s.internString(w[:i])
	s.Skip(i)
	return out, ErrNone
}

// ReadZip reads a US zip code: exactly five digits, optionally followed by
// "-dddd". The textual form is preserved (leading zeros are significant —
// Sirius zip 07988 in Figure 3).
func ReadZip(s *Source) (string, ErrCode) {
	w := s.Window(16)
	if len(w) < 5 {
		return "", ErrInvalidZip
	}
	for i := 0; i < 5; i++ {
		if !isDigit(w[i]) {
			return "", ErrInvalidZip
		}
	}
	n := 5
	if len(w) >= 10 && w[5] == '-' && isDigit(w[6]) && isDigit(w[7]) && isDigit(w[8]) && isDigit(w[9]) {
		n = 10
	}
	if len(w) > n && isDigit(w[n]) {
		return "", ErrInvalidZip
	}
	out := s.internString(w[:n])
	s.Skip(n)
	return out, ErrNone
}

// ReadPhone reads a North American phone number as a bare digit string of
// 10 digits (or 0, Sirius's "no data" convention handled by constraints),
// returning its numeric value. pn_t in Figure 5.
func ReadPhone(s *Source) (uint64, ErrCode) {
	return ReadAUint(s, 64)
}
