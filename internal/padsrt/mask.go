package padsrt

// Mask controls, per component, how much work a parsing function performs:
// whether it fills in the in-memory representation and whether it checks
// syntactic and semantic constraints. Masks let a description record every
// known property of a source while letting each application pay only for the
// checks it needs (section 3 of the paper; the feature was motivated by the
// Hancock call-detail streams of section 5.1.2).
type Mask uint8

// Mask bits.
const (
	// Ignore: skip the data syntactically but neither store nor check it.
	Ignore Mask = 0
	// Set: fill in the in-memory representation.
	Set Mask = 1 << 0
	// Check: verify syntactic validity and semantic constraints.
	Check Mask = 1 << 1
	// CheckAndSet does both; it is the default everywhere.
	CheckAndSet Mask = Set | Check
)

// DoSet reports whether the representation should be filled in.
func (m Mask) DoSet() bool { return m&Set != 0 }

// DoCheck reports whether constraints should be verified.
func (m Mask) DoCheck() bool { return m&Check != 0 }

// String names the mask value.
func (m Mask) String() string {
	switch m {
	case Ignore:
		return "Ignore"
	case Set:
		return "Set"
	case Check:
		return "Check"
	case CheckAndSet:
		return "CheckAndSet"
	default:
		return "Mask(?)"
	}
}

// MaskNode is the generic mask tree used by the description interpreter and
// the driver tools. Generated parsers use concrete per-type mask structs
// instead (mirroring Figure 6), but both honor the same semantics.
//
// Base applies to the value itself when it is a base type; Compound applies
// to structured-type-level obligations such as Pwhere clauses and trailing
// constraints. A nil MaskNode anywhere in the tree means CheckAndSet for the
// whole subtree, so callers that want full checking can simply pass nil.
type MaskNode struct {
	Base     Mask
	Compound Mask
	Fields   map[string]*MaskNode // per-field masks for Pstruct/Punion branches
	Elem     *MaskNode            // element mask for Parray; nil = CheckAndSet
}

// NewMaskNode returns a mask tree node with every control set to the given
// mask, mirroring the generated <type>_m_init(…, baseMask) initializers.
func NewMaskNode(m Mask) *MaskNode {
	return &MaskNode{Base: m, Compound: m}
}

// BaseMask resolves the base-level mask, treating a nil node as CheckAndSet.
func (n *MaskNode) BaseMask() Mask {
	if n == nil {
		return CheckAndSet
	}
	return n.Base
}

// CompoundMask resolves the compound-level mask, treating nil as CheckAndSet.
func (n *MaskNode) CompoundMask() Mask {
	if n == nil {
		return CheckAndSet
	}
	return n.Compound
}

// Field returns the mask subtree for the named field. A missing entry in a
// non-nil node inherits the node's base mask for the whole subtree.
func (n *MaskNode) Field(name string) *MaskNode {
	if n == nil {
		return nil
	}
	if sub, ok := n.Fields[name]; ok {
		return sub
	}
	if n.Base == CheckAndSet {
		return nil // nil means full checking; avoids allocation
	}
	return &MaskNode{Base: n.Base, Compound: n.Compound}
}

// ElemMask returns the mask subtree for array elements.
func (n *MaskNode) ElemMask() *MaskNode {
	if n == nil {
		return nil
	}
	if n.Elem != nil {
		return n.Elem
	}
	if n.Base == CheckAndSet {
		return nil
	}
	return &MaskNode{Base: n.Base, Compound: n.Compound}
}

// SetField attaches a mask subtree for a named field, creating the map on
// first use, and returns the receiver for chaining.
func (n *MaskNode) SetField(name string, sub *MaskNode) *MaskNode {
	if n.Fields == nil {
		n.Fields = make(map[string]*MaskNode)
	}
	n.Fields[name] = sub
	return n
}
