package padsrt

// Representation helper types used by generated code.

// DateVal is the in-memory representation of Pdate/Ptime values in
// generated parsers: epoch seconds plus the raw source text (kept so data
// writes back out unchanged).
type DateVal struct {
	Sec int64
	Raw string
}

// Opt is the representation of Popt values in generated parsers: Val is
// meaningful only when Present is true.
type Opt[T any] struct {
	Present bool
	Val     T
}
