package padsrt

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func mustBegin(t *testing.T, s *Source) {
	t.Helper()
	ok, err := s.BeginRecord()
	if err != nil {
		t.Fatalf("BeginRecord: %v", err)
	}
	if !ok {
		t.Fatalf("BeginRecord: unexpected end of input")
	}
}

func TestNewlineRecords(t *testing.T) {
	s := NewSource(strings.NewReader("abc\nde\n\nxyz"))
	want := []string{"abc", "de", "", "xyz"}
	for i, w := range want {
		mustBegin(t, s)
		if got := string(s.RecordBytes()); got != w {
			t.Errorf("record %d = %q, want %q", i, got, w)
		}
		if s.RecordNum() != i+1 {
			t.Errorf("RecordNum = %d, want %d", s.RecordNum(), i+1)
		}
		s.SkipToEOR()
		var pd PD
		s.EndRecord(&pd)
		if pd.Nerr != 0 {
			t.Errorf("record %d: unexpected errors %v", i, &pd)
		}
	}
	ok, err := s.BeginRecord()
	if err != nil || ok {
		t.Errorf("after last record: ok=%v err=%v, want false,nil", ok, err)
	}
}

func TestNewlineRecordsSmallReads(t *testing.T) {
	// Drive the buffered fill path with a reader that returns one byte at
	// a time.
	s := NewSource(&oneByteReader{data: []byte("hello\nworld\n")})
	for _, w := range []string{"hello", "world"} {
		mustBegin(t, s)
		if got := string(s.RecordBytes()); got != w {
			t.Errorf("record = %q, want %q", got, w)
		}
		s.SkipToEOR()
		s.EndRecord(nil)
	}
	if ok, _ := s.BeginRecord(); ok {
		t.Error("expected end of input")
	}
}

type oneByteReader struct{ data []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}

func TestFixedWidthRecords(t *testing.T) {
	s := NewSource(bytes.NewReader([]byte("aaaabbbbcc")), WithDiscipline(FixedWidth(4)))
	mustBegin(t, s)
	if got := string(s.RecordBytes()); got != "aaaa" {
		t.Fatalf("record 1 = %q", got)
	}
	s.SkipToEOR()
	s.EndRecord(nil)
	mustBegin(t, s)
	if got := string(s.RecordBytes()); got != "bbbb" {
		t.Fatalf("record 2 = %q", got)
	}
	s.SkipToEOR()
	s.EndRecord(nil)
	// Truncated final record is surfaced short.
	mustBegin(t, s)
	if got := string(s.RecordBytes()); got != "cc" {
		t.Fatalf("record 3 = %q", got)
	}
	s.SkipToEOR()
	s.EndRecord(nil)
}

func TestLenPrefixRecords(t *testing.T) {
	var data []byte
	d := LenPrefix()
	d.writeRecord(&data, []byte("hello"))
	d.writeRecord(&data, []byte(""))
	d.writeRecord(&data, []byte("worlds"))
	s := NewSource(bytes.NewReader(data), WithDiscipline(LenPrefix()))
	for _, w := range []string{"hello", "", "worlds"} {
		mustBegin(t, s)
		if got := string(s.RecordBytes()); got != w {
			t.Errorf("record = %q, want %q", got, w)
		}
		s.SkipToEOR()
		s.EndRecord(nil)
	}
	if ok, _ := s.BeginRecord(); ok {
		t.Error("expected end of input")
	}
}

func TestLenPrefixIncludesHeader(t *testing.T) {
	d := &LenPrefixDisc{HeaderBytes: 2, Order: LittleEndian, IncludesHeader: true}
	var data []byte
	d.writeRecord(&data, []byte("abc"))
	if len(data) != 5 || data[0] != 5 || data[1] != 0 {
		t.Fatalf("framed bytes = %v", data)
	}
	s := NewSource(bytes.NewReader(data), WithDiscipline(d))
	mustBegin(t, s)
	if got := string(s.RecordBytes()); got != "abc" {
		t.Fatalf("record = %q", got)
	}
}

func TestUnboundedDiscipline(t *testing.T) {
	s := NewSource(strings.NewReader("raw bytes"), WithDiscipline(NoRecords()))
	mustBegin(t, s)
	if s.AtEOR() {
		t.Error("AtEOR true at start of unbounded record")
	}
	s.Skip(9)
	if !s.AtEOR() || !s.AtEOF() {
		t.Error("expected EOR==EOF at end of unbounded record")
	}
}

func TestExtraBeforeEOR(t *testing.T) {
	s := NewSource(strings.NewReader("abcdef\n"))
	mustBegin(t, s)
	s.Skip(3)
	var pd PD
	s.EndRecord(&pd)
	if pd.ErrCode != ErrExtraBeforeEOR || pd.Nerr != 1 {
		t.Errorf("pd = %v, want ErrExtraBeforeEOR", &pd)
	}
}

func TestCheckpointRestore(t *testing.T) {
	s := NewSource(strings.NewReader("abcdef\n"))
	mustBegin(t, s)
	s.Checkpoint()
	s.Skip(4)
	if b, _ := s.PeekByte(); b != 'e' {
		t.Fatalf("after skip: %c", b)
	}
	s.Restore()
	if b, _ := s.PeekByte(); b != 'a' {
		t.Fatalf("after restore: %c", b)
	}
	s.Checkpoint()
	s.Skip(2)
	s.Commit()
	if b, _ := s.PeekByte(); b != 'c' {
		t.Fatalf("after commit: %c", b)
	}
	if s.Speculating() {
		t.Error("Speculating should be false after Commit")
	}
}

func TestNestedCheckpoints(t *testing.T) {
	s := NewBytesSource([]byte("0123456789\n"))
	mustBegin(t, s)
	s.Checkpoint()
	s.Skip(2)
	s.Checkpoint()
	s.Skip(3)
	s.Restore() // back to 2
	if b, _ := s.PeekByte(); b != '2' {
		t.Fatalf("inner restore: %c", b)
	}
	s.Restore() // back to 0
	if b, _ := s.PeekByte(); b != '0' {
		t.Fatalf("outer restore: %c", b)
	}
}

func TestPositions(t *testing.T) {
	s := NewSource(strings.NewReader("ab\ncd\n"))
	mustBegin(t, s)
	s.SkipToEOR()
	s.EndRecord(nil)
	mustBegin(t, s)
	s.Skip(1)
	p := s.Pos()
	if p.Record != 2 || p.Col != 2 || p.Byte != 4 {
		t.Errorf("Pos = %+v, want record 2 col 2 byte 4", p)
	}
}

func TestCompactKeepsMemoryBounded(t *testing.T) {
	// 10k records of ~1KB each; the window must stay near one record.
	line := strings.Repeat("x", 1024) + "\n"
	r := &repeatReader{chunk: []byte(line), n: 10000}
	s := NewSource(r)
	for {
		ok, err := s.BeginRecord()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		s.SkipToEOR()
		s.EndRecord(nil)
		if cap(s.buf) > 1<<20 {
			t.Fatalf("window grew to %d bytes; compaction is broken", cap(s.buf))
		}
	}
	if s.RecordNum() != 10000 {
		t.Fatalf("records = %d", s.RecordNum())
	}
}

type repeatReader struct {
	chunk []byte
	n     int
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.n == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.chunk[r.off:])
	r.off += n
	if r.off == len(r.chunk) {
		r.off = 0
		r.n--
	}
	return n, nil
}

func TestNestedBeginRecordIsNoop(t *testing.T) {
	s := NewSource(strings.NewReader("abc\n"))
	mustBegin(t, s)
	mustBegin(t, s) // nested: same record
	if got := string(s.RecordBytes()); got != "abc" {
		t.Fatalf("nested record = %q", got)
	}
	s.EndRecord(nil) // inner
	if !s.InRecord() {
		t.Fatal("inner EndRecord closed the record")
	}
	s.SkipToEOR()
	var pd PD
	s.EndRecord(&pd)
	if s.InRecord() {
		t.Fatal("outer EndRecord did not close the record")
	}
	if pd.Nerr != 0 {
		t.Fatalf("pd = %v", &pd)
	}
}

func TestReaderErrorSticky(t *testing.T) {
	s := NewSource(&failingReader{})
	ok, err := s.BeginRecord()
	if ok || err == nil {
		t.Fatalf("BeginRecord = %v, %v; want failure", ok, err)
	}
	if s.Err() == nil {
		t.Error("sticky error not recorded")
	}
}

type failingReader struct{}

func (failingReader) Read(p []byte) (int, error) { return 0, errEOFTypeBoom{} }

type errEOFTypeBoom struct{}

func (errEOFTypeBoom) Error() string { return "boom" }
