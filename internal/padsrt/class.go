package padsrt

// ByteClass is a 256-bit byte-membership table. The compiler backend emits
// one per screened union branch: the class of bytes the branch's parse could
// possibly start with, probed before committing to a speculative trial.
type ByteClass [4]uint64

// Has reports whether b is in the class.
func (c *ByteClass) Has(b byte) bool { return c[b>>6]&(1<<(b&63)) != 0 }
