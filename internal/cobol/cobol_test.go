package cobol

import (
	"strings"
	"testing"

	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

const copybook = `
* Altair-style billing record.
01 BILLING-RECORD.
   05 ACCOUNT-ID        PIC 9(8).
   05 CUSTOMER-NAME     PIC X(12).
   05 BALANCE           PIC S9(7)V99 COMP-3.
   05 REGION-CODE       PIC 99.
   05 USAGE-BLOCK.
      10 CALL-COUNT     PIC 9(5).
      10 TOTAL-MINUTES  PIC S9(5) COMP.
   05 MONTH-TOTALS      PIC S9(5) OCCURS 3 TIMES.
   05 FILLER            PIC X(2).
   88 IS-CLOSED         VALUE 'C'.
`

func TestTranslateStructure(t *testing.T) {
	prog, err := Translate(copybook)
	if err != nil {
		t.Fatal(err)
	}
	printed := dsl.Print(prog)
	for _, want := range []string{
		"Pstruct usage_block",
		"Precord Pstruct billing_record",
		"Puint32_FW(:8:) account_id",
		"Pstring_FW(:12:) customer_name",
		"Pbcd(:9:) balance", // 7 integer + 2 fraction digits
		"Puint8_FW(:2:) region_code",
		"Puint32_FW(:5:) call_count",
		"Pb_int32 total_minutes",
		"Parray month_totals_occurs",
		"Pzoned(:5:)[3]",
		"Pstring_FW(:2:) filler_1",
		"Psource Parray billing_record_file",
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("translated description missing %q:\n%s", want, printed)
		}
	}
	// 88-level condition names carry no storage.
	if strings.Contains(printed, "is_closed") {
		t.Error("condition name leaked into the description")
	}
}

func TestTranslatedDescriptionChecks(t *testing.T) {
	prog, err := Translate(copybook)
	if err != nil {
		t.Fatal(err)
	}
	_, serrs := sema.Check(prog)
	for _, e := range serrs {
		t.Errorf("check: %v", e)
	}
}

// TestParseEBCDICBillingData runs the full Altair path: copybook ->
// description -> parse EBCDIC data with packed decimals and binary fields.
func TestParseEBCDICBillingData(t *testing.T) {
	prog, err := Translate(copybook)
	if err != nil {
		t.Fatal(err)
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	in := interp.New(desc)

	// Build one record by hand.
	var rec []byte
	rec = append(rec, padsrt.StringToEBCDICBytes("00012345")...)     // account id
	rec = append(rec, padsrt.StringToEBCDICBytes("SMITH JOHN  ")...) // name
	rec = padsrt.WriteBCD(rec, -1234567, 9)                          // balance -12345.67
	rec = append(rec, padsrt.StringToEBCDICBytes("07")...)           // region
	rec = append(rec, padsrt.StringToEBCDICBytes("00042")...)        // call count
	rec = padsrt.AppendBUint(rec, uint64(98765), 4, padsrt.BigEndian)
	rec = padsrt.WriteZoned(rec, 100, 5)
	rec = padsrt.WriteZoned(rec, -200, 5)
	rec = padsrt.WriteZoned(rec, 300, 5)
	rec = append(rec, padsrt.StringToEBCDICBytes("  ")...)

	// Two length-prefixed records, the Cobol framing of section 3.
	var data []byte
	d := padsrt.LenPrefix()
	padsrt.FrameRecord(d, &data, rec)
	padsrt.FrameRecord(d, &data, rec)

	s := padsrt.NewBytesSource(data,
		padsrt.WithDiscipline(padsrt.LenPrefix()),
		padsrt.WithCoding(padsrt.EBCDIC))
	v, err := in.ParseSource(s)
	if err != nil {
		t.Fatal(err)
	}
	arr := v.(*value.Array)
	if arr.PD().Nerr != 0 {
		t.Fatalf("parse errors: %v (%s)", arr.PD(), value.String(arr))
	}
	if len(arr.Elems) != 2 {
		t.Fatalf("records = %d", len(arr.Elems))
	}
	r := arr.Elems[0].(*value.Struct)
	if got := r.Field("account_id").(*value.Uint).Val; got != 12345 {
		t.Errorf("account_id = %d", got)
	}
	if got := r.Field("customer_name").(*value.Str).Val; got != "SMITH JOHN  " {
		t.Errorf("name = %q", got)
	}
	if got := r.Field("balance").(*value.Int).Val; got != -1234567 {
		t.Errorf("balance = %d", got)
	}
	usage := r.Field("usage_block").(*value.Struct)
	if got := usage.Field("total_minutes").(*value.Int).Val; got != 98765 {
		t.Errorf("total_minutes = %d", got)
	}
	months := r.Field("month_totals").(*value.Array)
	if len(months.Elems) != 3 || months.Elems[1].(*value.Int).Val != -200 {
		t.Errorf("month_totals = %s", value.String(months))
	}
}

func TestPicParsing(t *testing.T) {
	cases := []struct {
		pic    string
		alpha  bool
		digits int
		scale  int
		signed bool
		width  int
	}{
		{"X(10)", true, 0, 0, false, 10},
		{"XXX", true, 0, 0, false, 3},
		{"9(5)", false, 5, 0, false, 0},
		{"999", false, 3, 0, false, 0},
		{"S9(7)V99", false, 9, 2, true, 0},
		{"S9(4)", false, 4, 0, true, 0},
		{"9(3)V9(2)", false, 5, 2, false, 0},
	}
	for _, c := range cases {
		p, err := parsePic(c.pic)
		if err != nil {
			t.Errorf("parsePic(%q): %v", c.pic, err)
			continue
		}
		if p.Alpha != c.alpha || p.Digits != c.digits || p.Scale != c.scale || p.Signed != c.signed || p.RawWidth != c.width {
			t.Errorf("parsePic(%q) = %+v", c.pic, p)
		}
	}
	if _, err := parsePic("Q(3)"); err == nil {
		t.Error("unsupported picture accepted")
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []string{
		"05 NOT-A-RECORD PIC X(3).", // elementary at top level
		"01 R.\n   05 F PIC 9(44).", // too many digits
		"01 R.\n   05 F PIC.",       // missing picture
		"01 R.\n   xx F PIC X.",     // bad level
		"",                          // empty
	}
	for _, src := range cases {
		if _, err := Translate(src); err == nil {
			t.Errorf("Translate(%q) succeeded", src)
		}
	}
}

func TestRedefinesSkipped(t *testing.T) {
	prog, err := Translate(`
01 R.
   05 A PIC 9(4).
   05 B REDEFINES A PIC X(4).
   05 C PIC X(1).
`)
	if err != nil {
		t.Fatal(err)
	}
	printed := dsl.Print(prog)
	if strings.Contains(printed, " b;") {
		t.Errorf("REDEFINES alternative kept:\n%s", printed)
	}
	if !strings.Contains(printed, "Pstring_FW(:1:) c") {
		t.Errorf("field after REDEFINES lost:\n%s", printed)
	}
}
