// Package cobol translates Cobol copybooks into PADS descriptions — the
// tool section 5.2 of the paper built for AT&T's Altair project, which
// receives ~4000 Cobol-format files per day. The translator covers the
// copybook subset that matters for data description: level-numbered groups,
// PIC X/9 clauses with S (sign) and V (implied decimal point), usage
// DISPLAY / COMP (binary) / COMP-3 (packed decimal), OCCURS, and FILLER.
// Condition names (level 88) and REDEFINES alternatives are skipped.
//
// The output is a PADS AST, so it can be pretty-printed, checked, and fed
// to the interpreter or compiler like any hand-written description.
package cobol

import (
	"fmt"
	"strings"

	"pads/internal/dsl"
)

// Item is one parsed copybook entry.
type Item struct {
	Level    int
	Name     string // lower-cased, '-' mapped to '_'
	Pic      *Pic   // nil for groups
	Occurs   int    // 0 when not repeated
	Children []*Item
}

// Pic describes a PICTURE clause.
type Pic struct {
	Alpha    bool // X(n): character data
	Digits   int  // 9(n) count (integer + fraction)
	Scale    int  // digits after the implied decimal point (V)
	Signed   bool // leading S
	Usage    Usage
	RawWidth int // storage width for X(n)
}

// Usage is the storage format of a numeric item.
type Usage int

// Usages.
const (
	Display Usage = iota // zoned / character digits
	Comp                 // binary (COMP, COMP-4, BINARY)
	Comp3                // packed decimal
)

// Translate parses copybook text and produces a PADS description: one
// Precord Pstruct per 01-level record (plus nested group structs), and a
// Psource array of the record type.
func Translate(src string) (*dsl.Program, error) {
	items, err := parseCopybook(src)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("cobol: no 01-level records found")
	}
	t := &translator{fillers: 0}
	prog := &dsl.Program{}
	for _, rec := range items {
		if err := t.emitGroup(prog, rec, true); err != nil {
			return nil, err
		}
	}
	last := items[len(items)-1]
	prog.Decls = append(prog.Decls, &dsl.ArrayDecl{
		Annot: dsl.Annot{IsSource: true},
		Name:  last.Name + "_file",
		Elem:  dsl.TypeRef{Name: last.Name},
	})
	return prog, nil
}

type translator struct {
	fillers int
	arrays  int
}

// emitGroup appends the struct (and any nested declarations) for a group.
func (t *translator) emitGroup(prog *dsl.Program, g *Item, record bool) error {
	st := &dsl.StructDecl{Name: g.Name, Annot: dsl.Annot{IsRecord: record}}
	for _, c := range g.Children {
		var tr dsl.TypeRef
		if c.Pic == nil {
			// Nested group: declare it first (declare-before-use).
			if err := t.emitGroup(prog, c, false); err != nil {
				return err
			}
			tr = dsl.TypeRef{Name: c.Name}
		} else {
			var err error
			tr, err = picType(c.Pic)
			if err != nil {
				return fmt.Errorf("cobol: field %s: %v", c.Name, err)
			}
		}
		if c.Occurs > 0 {
			t.arrays++
			arrName := fmt.Sprintf("%s_occurs", c.Name)
			size := &dsl.IntExpr{Val: int64(c.Occurs)}
			prog.Decls = append(prog.Decls, &dsl.ArrayDecl{
				Name:    arrName,
				Elem:    tr,
				MinSize: size,
				MaxSize: size, // the same node: a fixed-size array
			})
			tr = dsl.TypeRef{Name: arrName}
		}
		st.Items = append(st.Items, dsl.StructItem{Field: &dsl.Field{Type: tr, Name: c.Name}})
	}
	prog.Decls = append(prog.Decls, st)
	return nil
}

// picType maps a PICTURE clause to a PADS base type.
func picType(p *Pic) (dsl.TypeRef, error) {
	if p.Alpha {
		return dsl.TypeRef{Name: "Pstring_FW", Args: []dsl.Expr{&dsl.IntExpr{Val: int64(p.RawWidth)}}}, nil
	}
	d := p.Digits
	if d <= 0 || d > 18 {
		return dsl.TypeRef{}, fmt.Errorf("unsupported digit count %d", d)
	}
	switch p.Usage {
	case Comp3:
		return dsl.TypeRef{Name: "Pbcd", Args: []dsl.Expr{&dsl.IntExpr{Val: int64(d)}}}, nil
	case Comp:
		bits := 16
		switch {
		case d > 9:
			bits = 64
		case d > 4:
			bits = 32
		}
		name := fmt.Sprintf("Pb_int%d", bits)
		if !p.Signed {
			name = fmt.Sprintf("Pb_uint%d", bits)
		}
		return dsl.TypeRef{Name: name}, nil
	default: // Display
		if p.Signed {
			return dsl.TypeRef{Name: "Pzoned", Args: []dsl.Expr{&dsl.IntExpr{Val: int64(d)}}}, nil
		}
		bits := 8
		switch {
		case d > 9:
			bits = 64
		case d > 4:
			bits = 32
		case d > 2:
			bits = 16
		}
		return dsl.TypeRef{Name: fmt.Sprintf("Puint%d_FW", bits), Args: []dsl.Expr{&dsl.IntExpr{Val: int64(d)}}}, nil
	}
}

// ---- copybook parsing ----

// parseCopybook tokenizes the copybook into items and nests them by level.
func parseCopybook(src string) ([]*Item, error) {
	var flat []*Item
	fillers := 0
	for lineNum, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		// Sentences may span periods; treat each line as one entry and
		// strip the trailing period.
		line = strings.TrimSuffix(line, ".")
		toks := strings.Fields(line)
		if len(toks) < 2 {
			continue
		}
		level := 0
		if _, err := fmt.Sscanf(toks[0], "%d", &level); err != nil {
			return nil, fmt.Errorf("cobol: line %d: expected a level number, got %q", lineNum+1, toks[0])
		}
		if level == 88 || level == 66 {
			continue // condition names / RENAMES carry no storage
		}
		name := strings.ToLower(strings.ReplaceAll(toks[1], "-", "_"))
		if name == "filler" {
			fillers++
			name = fmt.Sprintf("filler_%d", fillers)
		}
		it := &Item{Level: level, Name: name}
		rest := toks[2:]
		skip := false
		for i := 0; i < len(rest); i++ {
			switch up := strings.ToUpper(rest[i]); up {
			case "REDEFINES":
				skip = true
				i++ // the redefined name
			case "PIC", "PICTURE":
				if i+1 >= len(rest) {
					return nil, fmt.Errorf("cobol: line %d: PIC without a picture", lineNum+1)
				}
				i++
				pic, err := parsePic(rest[i])
				if err != nil {
					return nil, fmt.Errorf("cobol: line %d: %v", lineNum+1, err)
				}
				it.Pic = pic
			case "COMP", "COMP-4", "BINARY", "COMPUTATIONAL", "COMPUTATIONAL-4":
				if it.Pic != nil {
					it.Pic.Usage = Comp
				}
			case "COMP-3", "COMPUTATIONAL-3", "PACKED-DECIMAL":
				if it.Pic != nil {
					it.Pic.Usage = Comp3
				}
			case "OCCURS":
				if i+1 >= len(rest) {
					return nil, fmt.Errorf("cobol: line %d: OCCURS without a count", lineNum+1)
				}
				i++
				if _, err := fmt.Sscanf(rest[i], "%d", &it.Occurs); err != nil {
					return nil, fmt.Errorf("cobol: line %d: bad OCCURS count %q", lineNum+1, rest[i])
				}
			case "TIMES", "USAGE", "IS", "DISPLAY", "SYNC", "SYNCHRONIZED":
				// noise words
			case "VALUE", "VALUES":
				i = len(rest) // ignore initial values
			}
		}
		if skip {
			continue // REDEFINES alternatives share storage; keep the original
		}
		flat = append(flat, it)
	}
	return nest(flat)
}

// nest builds the level hierarchy.
func nest(flat []*Item) ([]*Item, error) {
	var roots []*Item
	var stack []*Item
	for _, it := range flat {
		for len(stack) > 0 && stack[len(stack)-1].Level >= it.Level {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if it.Pic != nil {
				return nil, fmt.Errorf("cobol: top-level item %s has a PIC clause; expected a group", it.Name)
			}
			roots = append(roots, it)
		} else {
			parent := stack[len(stack)-1]
			if parent.Pic != nil {
				return nil, fmt.Errorf("cobol: elementary item %s has children", parent.Name)
			}
			parent.Children = append(parent.Children, it)
		}
		stack = append(stack, it)
	}
	return roots, nil
}

// parsePic decodes a picture string: X(10), 9(5), S9(7)V99, XXX, 999.
func parsePic(s string) (*Pic, error) {
	p := &Pic{}
	u := strings.ToUpper(s)
	i := 0
	if i < len(u) && u[i] == 'S' {
		p.Signed = true
		i++
	}
	inFraction := false
	for i < len(u) {
		c := u[i]
		switch c {
		case 'X', 'A':
			p.Alpha = true
			n, ni := repeatCount(u, i)
			p.RawWidth += n
			i = ni
		case '9':
			n, ni := repeatCount(u, i)
			p.Digits += n
			if inFraction {
				p.Scale += n
			}
			i = ni
		case 'V':
			inFraction = true
			i++
		case 'Z', ',', '.', '$', '+', '-', '*':
			// Edited pictures: count positions as character data.
			n, ni := repeatCount(u, i)
			p.Alpha = true
			p.RawWidth += n
			i = ni
		default:
			return nil, fmt.Errorf("unsupported picture character %q in %s", c, s)
		}
	}
	if p.Alpha && p.Digits > 0 {
		// Edited numeric: treat the whole field as character data.
		p.RawWidth += p.Digits
		p.Digits = 0
	}
	if !p.Alpha && p.Digits == 0 {
		return nil, fmt.Errorf("empty picture %s", s)
	}
	return p, nil
}

// repeatCount handles both X(5) and XXXXX notations, returning the count
// and the index after the run.
func repeatCount(u string, i int) (int, int) {
	c := u[i]
	n := 0
	for i < len(u) && u[i] == c {
		n++
		i++
	}
	if i < len(u) && u[i] == '(' {
		j := strings.IndexByte(u[i:], ')')
		if j > 0 {
			var rep int
			if _, err := fmt.Sscanf(u[i+1:i+j], "%d", &rep); err == nil {
				n += rep - 1
				i += j + 1
			}
		}
	}
	return n, i
}
