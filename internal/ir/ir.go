// Package ir is the shared intermediate representation of checked PADS
// descriptions: a flat, array-encoded instruction form lowered from
// internal/sema output, consumed by both the bytecode VM in internal/interp
// and the compiler backend in internal/codegen. Lowering resolves once what
// the tree-walking interpreter re-derives per record: base-type registry
// lookups become ReadOp opcodes, literal items become precompiled matchers
// (including compiled regexps), enum members are sorted longest-first,
// speculative union branches carry table-driven first-byte character
// classes, and constant arguments (fixed widths, terminator characters,
// array bounds) are folded into the instruction stream. See docs/IR.md.
package ir

import (
	"fmt"
	"io"
	"sort"

	"pads/internal/dsl"
	"pads/internal/padsrt"
	"pads/internal/sema"
)

// NodeID indexes Program.Nodes. DeclID, LitID, ExprID, RefID, BaseID,
// ArrayID, EnumID, CaseID, and ClassID index the corresponding pools.
// None marks an absent operand.
type (
	NodeID = int32
	DeclID = int32
	LitID  = int32
	ExprID = int32
)

// None is the absent-operand sentinel for every pool index.
const None int32 = -1

// Op is the instruction opcode. The VM's dispatch loop switches on it; the
// compiler backend walks the same nodes to emit Go.
type Op uint8

// Opcodes. The A..D operands are op-specific; see the Node doc comment.
const (
	OpInvalid Op = iota
	OpStruct     // A=Kids start, B=Kids len, C=where ExprID, D=field count (folded)
	OpLit        // struct literal item: A=LitID
	OpField      // A=child NodeID, B=constraint ExprID, C=RefID; D is per-context: first-byte ClassID under OpUnion, case-value CaseID under OpSwitch (None = Pdefault), else None
	OpUnion      // speculative union: A=Kids start (OpField branches), B=Kids len
	OpSwitch     // switched union: A=Kids start, B=Kids len, C=selector ExprID, D=default kid offset or None
	OpArray      // A=ArrayID, B=elem child NodeID
	OpEnum       // A=EnumID
	OpTypedef    // A=child NodeID, B=constraint ExprID (VarName in Node.Name)
	OpOpt        // Popt wrapper: A=child NodeID, B=RefID
	OpCall       // reference to a declared type: A=DeclID, B=CaseID arg list or None, C=RefID
	OpBase       // base-type read: A=BaseID, C=RefID
)

var opNames = [...]string{
	OpInvalid: "invalid", OpStruct: "struct", OpLit: "lit", OpField: "field",
	OpUnion: "union", OpSwitch: "switch", OpArray: "array", OpEnum: "enum",
	OpTypedef: "typedef", OpOpt: "opt", OpCall: "call", OpBase: "base",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Flags carry per-node properties resolved at lowering time.
type Flags uint8

const (
	// FRecord marks a declaration parsed inside its own record window
	// (Precord), with panic-mode resynchronization on error.
	FRecord Flags = 1 << iota
	// FSource marks the Psource declaration.
	FSource
	// FNeedEnv marks a declaration whose body evaluates expressions that
	// can reference bindings (parameters, constraints, predicates,
	// non-constant arguments). Declarations without it skip building the
	// lexical environment entirely.
	FNeedEnv
	// FAtomic marks a node that consumes no input when its parse fails and
	// carries no constraint, so speculative trials (Popt, union branches)
	// need no checkpoint around it.
	FAtomic
	// FRewind marks a node whose parse consumes input only by advancing
	// the cursor inside the current record — no record framing, no
	// constraint — but can consume on failure (text integers Skip the
	// digit run before reporting ErrRange). Speculative trials restore it
	// with a Source.Mark/Rewind pair, one saved int, instead of a full
	// checkpoint. FAtomic is the stronger tier (no protection at all);
	// the two flags are mutually exclusive.
	FRewind
)

// Node is one instruction. Operands A..D index the program pools as
// documented per opcode; Name is the declared type name, field name, or
// typedef constraint binder.
type Node struct {
	Op    Op
	Flags Flags
	Name  string
	A     int32
	B     int32
	C     int32
	D     int32
}

// DeclInfo is the lowered form of one named declaration.
type DeclInfo struct {
	Name   string
	Root   NodeID
	Params []dsl.Param
}

// Lit is a precompiled literal matcher: regexp literals hold their compiled
// runtime form, so matching never consults the description again.
type Lit struct {
	Kind dsl.LitKind
	Char byte
	Str  string
	Re   *padsrt.Regexp
}

// ReadOp is the fully-resolved base-type read operation: the registry
// dispatch (kind × coding × fixed-width) the interpreter performed per value
// is done once at lowering time.
type ReadOp uint8

// Base read operations, one per padsrt reader.
const (
	RInvalid ReadOp = iota
	RChar
	RAChar
	REChar
	RBChar
	RUint
	RAUint
	REUint
	RBUint
	RUintFW
	RAUintFW
	RInt
	RAInt
	REInt
	RBInt
	RAIntFW
	RBCD
	RZoned
	RAFloat
	RStringTerm
	RStringEOR
	RStringFW
	RStringME
	RStringSE
	RHostname
	RZip
	RDate
	RIP
	RVoid
)

var readOpNames = [...]string{
	RInvalid: "invalid", RChar: "read_char", RAChar: "read_achar", REChar: "read_echar",
	RBChar: "read_bchar", RUint: "read_uint", RAUint: "read_auint", REUint: "read_euint",
	RBUint: "read_buint", RUintFW: "read_uint_fw", RAUintFW: "read_auint_fw",
	RInt: "read_int", RAInt: "read_aint", REInt: "read_eint", RBInt: "read_bint",
	RAIntFW: "read_aint_fw", RBCD: "read_bcd", RZoned: "read_zoned", RAFloat: "read_afloat",
	RStringTerm: "read_string_term", RStringEOR: "read_string_eor", RStringFW: "read_string_fw",
	RStringME: "read_string_me", RStringSE: "read_string_se", RHostname: "read_hostname",
	RZip: "read_zip", RDate: "read_date", RIP: "read_ip", RVoid: "read_void",
}

func (r ReadOp) String() string {
	if int(r) < len(readOpNames) {
		return readOpNames[r]
	}
	return fmt.Sprintf("readop(%d)", int(r))
}

// Atomic reports whether the read provably consumes no input on every
// failure path, so a speculative trial (Popt, union branch) needs no
// checkpoint around it. The table mirrors the padsrt readers and is pinned
// against them by TestAtomicReadsConsumeNothingOnFailure:
//
//   - character reads and binary integers fail only at a record or input
//     boundary, before any Skip;
//   - BCD, zoned, float, string, hostname, zip, and IP reads validate a
//     peeked window and return their error code before skipping;
//   - void reads never touch the cursor.
//
// Variable-width text integers (ReadAUint/AInt, their EBCDIC forms, and
// the coding-generic ReadUint/Int) are NOT atomic: they Skip the digit run
// first and only then report ErrRange, so a range overflow consumes the
// digits. Fixed-width reads consume exactly their width on invalid
// content, and Pdate consumes text before rejecting it.
func (r ReadOp) Atomic() bool {
	switch r {
	case RChar, RAChar, REChar, RBChar,
		RBUint, RBInt,
		RBCD, RZoned,
		RAFloat,
		RStringTerm, RStringEOR, RStringME, RStringSE,
		RHostname, RZip, RIP,
		RVoid:
		return true
	}
	return false
}

// Arg is a base-type argument, constant-folded when the description supplies
// a literal (the common case: fixed widths, terminator characters).
type Arg struct {
	IsConst bool
	Const   int64
	Expr    ExprID
}

// constArg folds a literal expression; falls back to a pooled expression.
func (p *Program) constArg(e dsl.Expr) Arg {
	switch e := e.(type) {
	case *dsl.IntExpr:
		return Arg{IsConst: true, Const: e.Val}
	case *dsl.CharExpr:
		return Arg{IsConst: true, Const: int64(e.Val)}
	}
	return Arg{Expr: p.addExpr(e)}
}

// BaseSpec is a resolved base-type read: opcode, width/terminator arguments
// (folded when constant), and the compiled regexp for matched strings.
// BadParam marks statically malformed references (wrong argument shape);
// parsing them yields ErrBadParam, matching the interpreter.
type BaseSpec struct {
	Info     *sema.BaseInfo
	Read     ReadOp
	Bits     int
	Width    Arg  // fixed width / BCD-zoned digit count
	HasWidth bool // the read consumes Width
	Term     Arg  // terminator character (Pstring, Pdate)
	TermChar bool // Term is a character; false = Peor/Peof boundary
	Re       *padsrt.Regexp
	BadParam bool
}

// ArraySpec carries the operands of one Parray beyond what fits in a Node.
type ArraySpec struct {
	HasMin, HasMax   bool
	MinSize, MaxSize Arg
	Sep, Term        LitID // None when absent; Term None also when Peor/Peof
	TermEOR, TermEOF bool
	LastPred         ExprID
	EndedPred        ExprID
	Where            ExprID
	ElemIsRecord     bool
}

// EnumAlt is one enum member with its original declaration index.
type EnumAlt struct {
	Name  string
	Repr  string
	Index int
}

// EnumSpec is a Penum resolved for matching: members sorted longest-repr
// first (stable), so the first match is the longest, and the peek width
// folded to the longest representation.
type EnumSpec struct {
	Alts   []EnumAlt
	MaxLen int
}

// CaseList is a pooled expression list: switch-case values or type-reference
// arguments.
type CaseList []ExprID

// Class is a table-driven character class: a 256-bit byte-membership table.
// Speculative union branches carry the class of bytes their parse could
// possibly start with; the VM and generated code skip doomed branches with
// one table probe instead of a checkpointed trial parse.
type Class [4]uint64

// Has reports whether b is in the class.
func (c *Class) Has(b byte) bool { return c[b>>6]&(1<<(b&63)) != 0 }

func (c *Class) add(b byte) { c[b>>6] |= 1 << (b & 63) }

func (c *Class) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.add(byte(b))
	}
}

func (c *Class) union(o *Class) {
	for i := range c {
		c[i] |= o[i]
	}
}

// Program is a lowered description: a flat node array plus side pools. All
// cross-references are array indices, so a Program is immutable after
// lowering and safely shared across parser shards.
type Program struct {
	Desc *sema.Desc

	Nodes []Node
	Kids  []NodeID // child-list pool (struct items, union branches)

	Decls  []DeclInfo
	byName map[string]DeclID

	Lits    []Lit
	Exprs   []dsl.Expr
	Refs    []dsl.TypeRef
	Bases   []BaseSpec
	Arrays  []ArraySpec
	Enums   []EnumSpec
	Cases   []CaseList
	Classes []Class
	// ClassASCII[i] marks Classes[i] as valid only while the source's
	// ambient coding is ASCII: default-coded integer reads dispatch on the
	// coding at parse time, so their digit-led first bytes hold under
	// ASCII but not EBCDIC. Probes of such classes are skipped on
	// non-ASCII sources.
	ClassASCII []bool

	// Widths[n] is the folded byte width of node n when every part is
	// fixed-size, or None: the constant the backend uses for offset
	// computation (Program.FieldOffset).
	Widths []int32
}

// DeclByName resolves a declared type name to its DeclID.
func (p *Program) DeclByName(name string) (DeclID, bool) {
	id, ok := p.byName[name]
	return id, ok
}

// Root returns the root node of a declaration, or None when the name is
// unknown.
func (p *Program) Root(name string) NodeID {
	if id, ok := p.byName[name]; ok {
		return p.Decls[id].Root
	}
	return None
}

// KidsOf returns the child-node list of a struct, union, or switch node.
func (p *Program) KidsOf(n *Node) []NodeID { return p.Kids[n.A : n.A+n.B] }

// FieldOffset returns the folded byte offset of struct item i (counting
// literals) from the start of the struct, or None when any preceding item
// has variable width.
func (p *Program) FieldOffset(structID NodeID, item int) int32 {
	n := &p.Nodes[structID]
	if n.Op != OpStruct {
		return None
	}
	var off int32
	for i, kid := range p.KidsOf(n) {
		if i == item {
			return off
		}
		w := p.Widths[kid]
		if w < 0 {
			return None
		}
		off += w
	}
	return None
}

func (p *Program) addExpr(e dsl.Expr) ExprID {
	if e == nil {
		return None
	}
	p.Exprs = append(p.Exprs, e)
	return ExprID(len(p.Exprs) - 1)
}

func (p *Program) addRef(tr dsl.TypeRef) int32 {
	p.Refs = append(p.Refs, tr)
	return int32(len(p.Refs) - 1)
}

func (p *Program) addNode(n Node) NodeID {
	p.Nodes = append(p.Nodes, n)
	p.Widths = append(p.Widths, None)
	return NodeID(len(p.Nodes) - 1)
}

func (p *Program) addClass(c Class, ascii bool) int32 {
	p.Classes = append(p.Classes, c)
	p.ClassASCII = append(p.ClassASCII, ascii)
	return int32(len(p.Classes) - 1)
}

// sortAlts orders enum members longest-repr-first, stably, so a first-match
// scan picks what the reference interpreter's best-match scan picks.
func sortAlts(members []dsl.EnumMember) ([]EnumAlt, int) {
	alts := make([]EnumAlt, len(members))
	maxLen := 0
	for i, m := range members {
		alts[i] = EnumAlt{Name: m.Name, Repr: m.Repr, Index: i}
		if len(m.Repr) > maxLen {
			maxLen = len(m.Repr)
		}
	}
	sort.SliceStable(alts, func(a, b int) bool {
		return len(alts[a].Repr) > len(alts[b].Repr)
	})
	return alts, maxLen
}

// Dump writes a human-readable listing of the program: one line per
// instruction with resolved operands, then the pools. This is the
// `padsc -emit=ir` format.
func (p *Program) Dump(w io.Writer) {
	for di := range p.Decls {
		d := &p.Decls[di]
		fmt.Fprintf(w, "decl %d %s:\n", di, d.Name)
		p.dumpNode(w, d.Root, 1, OpInvalid)
	}
	if len(p.Lits) > 0 {
		fmt.Fprintf(w, "literal pool:\n")
		for i, l := range p.Lits {
			switch l.Kind {
			case dsl.CharLit:
				fmt.Fprintf(w, "  L%d char %q\n", i, string(l.Char))
			case dsl.StrLit:
				fmt.Fprintf(w, "  L%d string %q\n", i, l.Str)
			case dsl.RegexpLit:
				fmt.Fprintf(w, "  L%d regexp /%s/ (compiled)\n", i, l.Str)
			case dsl.EORLit:
				fmt.Fprintf(w, "  L%d EOR\n", i)
			case dsl.EOFLit:
				fmt.Fprintf(w, "  L%d EOF\n", i)
			}
		}
	}
	if len(p.Classes) > 0 {
		fmt.Fprintf(w, "character classes:\n")
		for i := range p.Classes {
			cond := ""
			if p.ClassASCII[i] {
				cond = " (ascii coding only)"
			}
			fmt.Fprintf(w, "  C%d %s%s\n", i, classString(&p.Classes[i]), cond)
		}
	}
}

func classString(c *Class) string {
	out := make([]byte, 0, 64)
	for b := 0; b < 256; b++ {
		if !c.Has(byte(b)) {
			continue
		}
		lo := b
		for b+1 < 256 && c.Has(byte(b+1)) {
			b++
		}
		if len(out) > 0 {
			out = append(out, ' ')
		}
		if lo == b {
			out = append(out, []byte(fmt.Sprintf("%q", byte(lo)))...)
		} else {
			out = append(out, []byte(fmt.Sprintf("%q-%q", byte(lo), byte(b)))...)
		}
	}
	return string(out)
}

func (p *Program) dumpNode(w io.Writer, id NodeID, depth int, ctx Op) {
	n := &p.Nodes[id]
	ind := ""
	for i := 0; i < depth; i++ {
		ind += "  "
	}
	var flags string
	if n.Flags&FRecord != 0 {
		flags += " record"
	}
	if n.Flags&FSource != 0 {
		flags += " source"
	}
	if n.Flags&FNeedEnv != 0 {
		flags += " env"
	}
	if n.Flags&FAtomic != 0 {
		flags += " atomic"
	}
	if n.Flags&FRewind != 0 {
		flags += " rewind"
	}
	width := ""
	if p.Widths[id] >= 0 {
		width = fmt.Sprintf(" width=%d", p.Widths[id])
	}
	switch n.Op {
	case OpStruct:
		fmt.Fprintf(w, "%s%%%d struct %s nfields=%d%s%s\n", ind, id, n.Name, n.D, flags, width)
		for _, kid := range p.KidsOf(n) {
			p.dumpNode(w, kid, depth+1, OpStruct)
		}
	case OpLit:
		fmt.Fprintf(w, "%s%%%d match L%d\n", ind, id, n.A)
	case OpField:
		con := ""
		if n.B != None {
			con = fmt.Sprintf(" constraint=E%d", n.B)
		}
		extra := ""
		switch {
		case ctx == OpUnion && n.D != None:
			extra = fmt.Sprintf(" first=C%d", n.D)
		case ctx == OpSwitch && n.D != None:
			extra = fmt.Sprintf(" case=K%d", n.D)
		case ctx == OpSwitch:
			extra = " default"
		}
		fmt.Fprintf(w, "%s%%%d field %s%s%s\n", ind, id, n.Name, con, extra)
		p.dumpNode(w, n.A, depth+1, OpField)
	case OpUnion:
		fmt.Fprintf(w, "%s%%%d union %s%s\n", ind, id, n.Name, flags)
		for _, kid := range p.KidsOf(n) {
			p.dumpNode(w, kid, depth+1, OpUnion)
		}
	case OpSwitch:
		fmt.Fprintf(w, "%s%%%d switch %s selector=E%d default=%d%s\n", ind, id, n.Name, n.C, n.D, flags)
		for _, kid := range p.KidsOf(n) {
			p.dumpNode(w, kid, depth+1, OpSwitch)
		}
	case OpArray:
		a := &p.Arrays[n.A]
		extra := ""
		if a.HasMin {
			extra += fmt.Sprintf(" min=%s", argString(a.MinSize))
		}
		if a.HasMax {
			extra += fmt.Sprintf(" max=%s", argString(a.MaxSize))
		}
		if a.Sep != None {
			extra += fmt.Sprintf(" sep=L%d", a.Sep)
		}
		switch {
		case a.TermEOR:
			extra += " term=EOR"
		case a.TermEOF:
			extra += " term=EOF"
		case a.Term != None:
			extra += fmt.Sprintf(" term=L%d", a.Term)
		}
		fmt.Fprintf(w, "%s%%%d array %s%s%s\n", ind, id, n.Name, extra, flags)
		p.dumpNode(w, n.B, depth+1, OpArray)
	case OpEnum:
		e := &p.Enums[n.A]
		fmt.Fprintf(w, "%s%%%d enum %s peek=%d alts=%d (longest-first)%s\n", ind, id, n.Name, e.MaxLen, len(e.Alts), flags)
	case OpTypedef:
		fmt.Fprintf(w, "%s%%%d typedef %s constraint=E%d%s\n", ind, id, n.Name, n.B, flags)
		p.dumpNode(w, n.A, depth+1, OpTypedef)
	case OpOpt:
		fmt.Fprintf(w, "%s%%%d opt%s\n", ind, id, flags)
		p.dumpNode(w, n.A, depth+1, OpOpt)
	case OpCall:
		fmt.Fprintf(w, "%s%%%d call decl=%d (%s)%s\n", ind, id, n.A, p.Decls[n.A].Name, flags)
	case OpBase:
		b := &p.Bases[n.A]
		extra := ""
		if b.HasWidth {
			extra += fmt.Sprintf(" width=%s", argString(b.Width))
		}
		if b.TermChar {
			extra += fmt.Sprintf(" term=%s", argString(b.Term))
		}
		if b.Re != nil {
			extra += " regexp"
		}
		if b.BadParam {
			extra += " badparam"
		}
		fmt.Fprintf(w, "%s%%%d %s bits=%d%s%s%s\n", ind, id, b.Read, b.Bits, extra, width, flags)
	default:
		fmt.Fprintf(w, "%s%%%d %s\n", ind, id, n.Op)
	}
}

func argString(a Arg) string {
	if a.IsConst {
		if a.Const >= 32 && a.Const < 127 {
			return fmt.Sprintf("%q", byte(a.Const))
		}
		return fmt.Sprintf("%d", a.Const)
	}
	return fmt.Sprintf("E%d", a.Expr)
}
