package ir

// TestAtomicReadsConsumeNothingOnFailure pins ReadOp.Atomic against the
// padsrt reader implementations: every read the table marks atomic must
// leave the cursor exactly where it was on every failure path we can
// provoke, because the VM and the generated code elide Checkpoint/Restore
// around atomic speculative trials (Popt, union branches). The inverse
// cases document why the excluded reads stay excluded: a reader that
// consumes input before reporting failure (text integers on ErrRange,
// fixed-width reads on invalid content) would corrupt the cursor for the
// next union branch if it were trialed checkpoint-free.

import (
	"testing"

	"pads/internal/padsrt"
)

type readCase struct {
	op    ReadOp
	input []byte
	opts  []padsrt.SourceOption
	read  func(s *padsrt.Source) padsrt.ErrCode
}

func runRead(t *testing.T, c readCase) (consumed int64, code padsrt.ErrCode) {
	t.Helper()
	s := padsrt.NewBytesSource(c.input, c.opts...)
	before := s.Pos().Byte
	code = c.read(s)
	return s.Pos().Byte - before, code
}

func TestAtomicReadsConsumeNothingOnFailure(t *testing.T) {
	me := padsrt.MustCompileRegexp(`[0-9]+`)
	cases := []readCase{
		{op: RChar, input: nil, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadChar(s)
			return c
		}},
		{op: RAChar, input: nil, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadAChar(s)
			return c
		}},
		{op: REChar, input: nil, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadEChar(s)
			return c
		}},
		{op: RBChar, input: nil, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadBChar(s)
			return c
		}},
		// Binary integers fail only when fewer than nbytes bytes remain.
		{op: RBUint, input: []byte{0x01, 0x02}, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadBUint(s, 4)
			return c
		}},
		{op: RBInt, input: []byte{0x01}, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadBInt(s, 2)
			return c
		}},
		// Packed and zoned decimals validate the peeked window first.
		{op: RBCD, input: []byte{0xAA, 0xAA}, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadBCD(s, 3)
			return c
		}},
		{op: RZoned, input: []byte("AB"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadZoned(s, 2)
			return c
		}},
		{op: RAFloat, input: []byte("abc"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadAFloat(s, 64)
			return c
		}},
		// RStringTerm and RStringEOR have no failure path at all; the
		// regexp forms fail (no match / bad pattern) before skipping.
		{op: RStringME, input: []byte("abc"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadStringME(s, me)
			return c
		}},
		{op: RStringSE, input: []byte("abc"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadStringSE(s, nil)
			return c
		}},
		{op: RHostname, input: []byte("1234 "), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadHostname(s)
			return c
		}},
		{op: RZip, input: []byte("12a45"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadZip(s)
			return c
		}},
		{op: RIP, input: []byte("1.2.3"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadIP(s)
			return c
		}},
	}
	for _, c := range cases {
		if !c.op.Atomic() {
			t.Errorf("%s: exercised here but not marked atomic", c.op)
			continue
		}
		consumed, code := runRead(t, c)
		if code == padsrt.ErrNone {
			t.Errorf("%s: test input %q unexpectedly parsed", c.op, c.input)
			continue
		}
		if consumed != 0 {
			t.Errorf("%s: consumed %d bytes on failure (%v); must not be marked atomic",
				c.op, consumed, code)
		}
	}
}

// TestNonAtomicReadsConsumeOnFailure documents the exclusions: these
// readers advance the cursor before reporting failure, which is exactly
// why ReadOp.Atomic must return false for them (the REVIEW repro: a union
// branch trying Puint8 against "300" must be checkpointed, or the next
// branch starts three bytes late).
func TestNonAtomicReadsConsumeOnFailure(t *testing.T) {
	ebcdic := []padsrt.SourceOption{padsrt.WithCoding(padsrt.EBCDIC)}
	cases := []readCase{
		{op: RAUint, input: []byte("300"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadAUint(s, 8)
			return c
		}},
		{op: RAInt, input: []byte("-300"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadAInt(s, 8)
			return c
		}},
		{op: RUint, input: []byte("300"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadUint(s, 8)
			return c
		}},
		{op: RInt, input: []byte("300"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadInt(s, 8)
			return c
		}},
		{op: REUint, input: []byte{0xF3, 0xF0, 0xF0}, opts: ebcdic, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadEUint(s, 8)
			return c
		}},
		{op: REInt, input: []byte{0xF3, 0xF0, 0xF0}, opts: ebcdic, read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadEInt(s, 8)
			return c
		}},
		{op: RAUintFW, input: []byte("abc"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadAUintFW(s, 3, 64)
			return c
		}},
		{op: RAIntFW, input: []byte("abc"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadAIntFW(s, 3, 64)
			return c
		}},
		{op: RUintFW, input: []byte("999"), read: func(s *padsrt.Source) padsrt.ErrCode {
			_, c := padsrt.ReadUintFW(s, 3, 8)
			return c
		}},
	}
	for _, c := range cases {
		if c.op.Atomic() {
			t.Errorf("%s: consumes input on failure but is marked atomic", c.op)
			continue
		}
		consumed, code := runRead(t, c)
		if code == padsrt.ErrNone {
			t.Errorf("%s: test input %q unexpectedly parsed", c.op, c.input)
			continue
		}
		if consumed == 0 {
			t.Logf("%s: no longer consumes input on this failure path; Atomic() could be revisited", c.op)
		}
	}
}
