package ir

import (
	"fmt"

	"pads/internal/dsl"
	"pads/internal/sema"
)

// Lower compiles a checked description into its flat IR program. Lowering
// never consults the AST again at parse time: every registry lookup, literal
// compilation, branch ordering, and foldable constant is resolved here.
func Lower(desc *sema.Desc) (*Program, error) {
	p := &Program{Desc: desc, byName: make(map[string]DeclID)}
	l := &lowerer{p: p}

	// Declaration table first, in source order, so forward and recursive
	// references resolve to stable DeclIDs.
	for _, d := range desc.Program.Decls {
		if _, ok := d.(*dsl.FuncDecl); ok {
			continue
		}
		p.byName[d.DeclName()] = DeclID(len(p.Decls))
		p.Decls = append(p.Decls, DeclInfo{Name: d.DeclName(), Root: None, Params: declParams(d)})
	}
	for _, d := range desc.Program.Decls {
		if _, ok := d.(*dsl.FuncDecl); ok {
			continue
		}
		id := p.byName[d.DeclName()]
		root, err := l.lowerDecl(d)
		if err != nil {
			return nil, err
		}
		p.Decls[id].Root = root
	}

	// Analysis passes over the finished node array: trial-protection
	// tiers, folded widths, per-declaration environment needs, and
	// first-byte classes for speculative union branches.
	l.foldTrialFlags()
	l.foldWidths()
	l.foldNeedEnv()
	l.foldFirstClasses()
	return p, nil
}

func declParams(d dsl.Decl) []dsl.Param {
	switch d := d.(type) {
	case *dsl.StructDecl:
		return d.Params
	case *dsl.UnionDecl:
		return d.Params
	case *dsl.ArrayDecl:
		return d.Params
	case *dsl.TypedefDecl:
		return d.Params
	}
	return nil
}

type lowerer struct {
	p *Program
}

func annotFlags(d dsl.Decl) Flags {
	an := sema.Annot(d)
	var f Flags
	if an.IsRecord {
		f |= FRecord
	}
	if an.IsSource {
		f |= FSource
	}
	return f
}

func (l *lowerer) lowerDecl(d dsl.Decl) (NodeID, error) {
	switch d := d.(type) {
	case *dsl.StructDecl:
		return l.lowerStruct(d)
	case *dsl.UnionDecl:
		return l.lowerUnion(d)
	case *dsl.ArrayDecl:
		return l.lowerArray(d)
	case *dsl.EnumDecl:
		return l.lowerEnum(d)
	case *dsl.TypedefDecl:
		return l.lowerTypedef(d)
	}
	return None, fmt.Errorf("ir: cannot lower %T", d)
}

func (l *lowerer) lowerStruct(d *dsl.StructDecl) (NodeID, error) {
	p := l.p
	kids := make([]NodeID, 0, len(d.Items))
	nfields := int32(0)
	for _, it := range d.Items {
		if it.Lit != nil {
			lit, err := l.lowerLit(it.Lit)
			if err != nil {
				return None, err
			}
			kids = append(kids, p.addNode(Node{Op: OpLit, A: lit, B: None, C: None, D: None}))
			continue
		}
		kid, err := l.lowerField(it.Field)
		if err != nil {
			return None, err
		}
		kids = append(kids, kid)
		nfields++
	}
	start := int32(len(p.Kids))
	p.Kids = append(p.Kids, kids...)
	return p.addNode(Node{
		Op: OpStruct, Flags: annotFlags(d), Name: d.Name,
		A: start, B: int32(len(kids)), C: p.addExpr(d.Where), D: nfields,
	}), nil
}

func (l *lowerer) lowerField(f *dsl.Field) (NodeID, error) {
	p := l.p
	child, err := l.lowerRef(f.Type)
	if err != nil {
		return None, err
	}
	return p.addNode(Node{
		Op: OpField, Name: f.Name,
		A: child, B: p.addExpr(f.Constraint), C: p.addRef(f.Type), D: None,
	}), nil
}

func (l *lowerer) lowerUnion(d *dsl.UnionDecl) (NodeID, error) {
	p := l.p
	if d.Switch != nil {
		kids := make([]NodeID, 0, len(d.Switch.Cases))
		defaultKid := None
		for ci := range d.Switch.Cases {
			c := &d.Switch.Cases[ci]
			kid, err := l.lowerField(&c.Field)
			if err != nil {
				return None, err
			}
			if len(c.Values) == 0 {
				defaultKid = int32(len(kids))
			} else {
				vals := make(CaseList, 0, len(c.Values))
				for _, vx := range c.Values {
					vals = append(vals, p.addExpr(vx))
				}
				p.Cases = append(p.Cases, vals)
				p.Nodes[kid].D = int32(len(p.Cases) - 1)
			}
			kids = append(kids, kid)
		}
		start := int32(len(p.Kids))
		p.Kids = append(p.Kids, kids...)
		return p.addNode(Node{
			Op: OpSwitch, Flags: annotFlags(d), Name: d.Name,
			A: start, B: int32(len(kids)), C: p.addExpr(d.Switch.Selector), D: defaultKid,
		}), nil
	}
	kids := make([]NodeID, 0, len(d.Branches))
	for i := range d.Branches {
		kid, err := l.lowerField(&d.Branches[i])
		if err != nil {
			return None, err
		}
		kids = append(kids, kid)
	}
	start := int32(len(p.Kids))
	p.Kids = append(p.Kids, kids...)
	return p.addNode(Node{
		Op: OpUnion, Flags: annotFlags(d), Name: d.Name,
		A: start, B: int32(len(kids)), C: None, D: None,
	}), nil
}

func (l *lowerer) lowerArray(d *dsl.ArrayDecl) (NodeID, error) {
	p := l.p
	elem, err := l.lowerRef(d.Elem)
	if err != nil {
		return None, err
	}
	spec := ArraySpec{
		Sep: None, Term: None,
		LastPred:  p.addExpr(d.LastPred),
		EndedPred: p.addExpr(d.EndedPred),
		Where:     p.addExpr(d.Where),
	}
	if d.MinSize != nil {
		spec.HasMin = true
		spec.MinSize = p.constArg(d.MinSize)
	}
	if d.MaxSize != nil {
		spec.HasMax = true
		spec.MaxSize = p.constArg(d.MaxSize)
	}
	if d.Sep != nil {
		if spec.Sep, err = l.lowerLit(d.Sep); err != nil {
			return None, err
		}
	}
	if d.Term != nil {
		switch d.Term.Kind {
		case dsl.EORLit:
			spec.TermEOR = true
		case dsl.EOFLit:
			spec.TermEOF = true
		default:
			if spec.Term, err = l.lowerLit(d.Term); err != nil {
				return None, err
			}
		}
	}
	if ed, ok := p.Desc.Types[d.Elem.Name]; ok && sema.Annot(ed).IsRecord {
		spec.ElemIsRecord = true
	}
	p.Arrays = append(p.Arrays, spec)
	// The elem ref is pooled so the backend can type the element.
	return p.addNode(Node{
		Op: OpArray, Flags: annotFlags(d), Name: d.Name,
		A: int32(len(p.Arrays) - 1), B: elem, C: p.addRef(d.Elem), D: None,
	}), nil
}

func (l *lowerer) lowerEnum(d *dsl.EnumDecl) (NodeID, error) {
	p := l.p
	alts, maxLen := sortAlts(d.Members)
	p.Enums = append(p.Enums, EnumSpec{Alts: alts, MaxLen: maxLen})
	return p.addNode(Node{
		Op: OpEnum, Flags: annotFlags(d), Name: d.Name,
		A: int32(len(p.Enums) - 1), B: None, C: None, D: None,
	}), nil
}

func (l *lowerer) lowerTypedef(d *dsl.TypedefDecl) (NodeID, error) {
	p := l.p
	child, err := l.lowerRef(d.Base)
	if err != nil {
		return None, err
	}
	return p.addNode(Node{
		Op: OpTypedef, Flags: annotFlags(d), Name: d.VarName,
		A: child, B: p.addExpr(d.Constraint), C: p.addRef(d.Base), D: None,
	}), nil
}

// lowerRef lowers a type reference use site: a Popt wrapper, a resolved base
// read, or a call to a declared type.
func (l *lowerer) lowerRef(tr dsl.TypeRef) (NodeID, error) {
	p := l.p
	if tr.Opt {
		inner := tr
		inner.Opt = false
		child, err := l.lowerRef(inner)
		if err != nil {
			return None, err
		}
		return p.addNode(Node{Op: OpOpt, Name: tr.Name, A: child, B: p.addRef(tr), C: None, D: None}), nil
	}
	if b := sema.LookupBase(tr.Name); b != nil {
		return l.lowerBase(b, tr)
	}
	id, ok := p.byName[tr.Name]
	if !ok {
		return None, fmt.Errorf("ir: unknown type %s", tr.Name)
	}
	args := None
	if len(tr.Args) > 0 {
		list := make(CaseList, 0, len(tr.Args))
		for _, a := range tr.Args {
			list = append(list, p.addExpr(a))
		}
		p.Cases = append(p.Cases, list)
		args = int32(len(p.Cases) - 1)
	}
	return p.addNode(Node{Op: OpCall, Name: tr.Name, A: id, B: args, C: p.addRef(tr), D: None}), nil
}

// lowerBase resolves a base-type reference into its ReadOp and folded
// arguments: the per-value registry dispatch of the tree-walking interpreter
// done once.
func (l *lowerer) lowerBase(b *sema.BaseInfo, tr dsl.TypeRef) (NodeID, error) {
	p := l.p
	spec := BaseSpec{Info: b, Bits: b.Bits, Term: Arg{Expr: None}, Width: Arg{Expr: None}}

	width := func(i int) {
		if i >= len(tr.Args) {
			spec.BadParam = true
			return
		}
		spec.HasWidth = true
		spec.Width = p.constArg(tr.Args[i])
	}
	term := func(i int) {
		if i >= len(tr.Args) {
			spec.BadParam = true
			return
		}
		switch a := tr.Args[i].(type) {
		case *dsl.EORExpr, *dsl.EOFExpr:
			spec.TermChar = false
		case *dsl.CharExpr:
			spec.TermChar = true
			spec.Term = Arg{IsConst: true, Const: int64(a.Val)}
		default:
			// Left to runtime: the interpreter rejects non-char
			// terminator values, so only chars may fold.
			spec.TermChar = true
			spec.Term = Arg{Expr: p.addExpr(tr.Args[i])}
		}
	}

	switch b.Kind {
	case sema.KChar:
		switch b.Coding {
		case "a":
			spec.Read = RAChar
		case "e":
			spec.Read = REChar
		case "b":
			spec.Read = RBChar
		default:
			spec.Read = RChar
		}
	case sema.KUint:
		switch {
		case b.FW && b.Coding == "a":
			spec.Read = RAUintFW
			width(0)
		case b.FW:
			spec.Read = RUintFW
			width(0)
		case b.Coding == "a":
			spec.Read = RAUint
		case b.Coding == "e":
			spec.Read = REUint
		case b.Coding == "b":
			spec.Read = RBUint
		default:
			spec.Read = RUint
		}
	case sema.KInt:
		switch {
		case b.Coding == "bcd":
			spec.Read = RBCD
			width(0)
		case b.Coding == "zoned":
			spec.Read = RZoned
			width(0)
		case b.FW:
			spec.Read = RAIntFW
			width(0)
		case b.Coding == "a":
			spec.Read = RAInt
		case b.Coding == "e":
			spec.Read = REInt
		case b.Coding == "b":
			spec.Read = RBInt
		default:
			spec.Read = RInt
		}
	case sema.KFloat:
		spec.Read = RAFloat
	case sema.KString:
		switch b.Name {
		case "Pstring":
			spec.Read = RStringTerm
			term(0)
			if !spec.TermChar {
				spec.Read = RStringEOR
			}
		case "Pstring_FW":
			spec.Read = RStringFW
			width(0)
		case "Pstring_ME", "Pstring_SE":
			if b.Name == "Pstring_ME" {
				spec.Read = RStringME
			} else {
				spec.Read = RStringSE
			}
			if len(tr.Args) > 0 {
				if rex, ok := tr.Args[0].(*dsl.RegexpExpr); ok {
					spec.Re = p.Desc.Regexps[rex.Src]
				}
			}
			if spec.Re == nil {
				spec.BadParam = true
			}
		case "Phostname":
			spec.Read = RHostname
		case "Pzip":
			spec.Read = RZip
		default:
			return None, fmt.Errorf("ir: unsupported string base %s", b.Name)
		}
	case sema.KDate:
		spec.Read = RDate
		term(0)
	case sema.KIP:
		spec.Read = RIP
	case sema.KVoid:
		spec.Read = RVoid
	default:
		return None, fmt.Errorf("ir: unsupported base kind for %s", b.Name)
	}

	p.Bases = append(p.Bases, spec)
	return p.addNode(Node{
		Op: OpBase, Name: b.Name,
		A: int32(len(p.Bases) - 1), B: None, C: p.addRef(tr), D: None,
	}), nil
}

func (l *lowerer) lowerLit(lit *dsl.Literal) (LitID, error) {
	p := l.p
	out := Lit{Kind: lit.Kind, Char: lit.Char, Str: lit.Str}
	if lit.Kind == dsl.RegexpLit {
		out.Re = p.Desc.Regexps[lit.Str]
		if out.Re == nil {
			return None, fmt.Errorf("ir: regexp /%s/ was not compiled by sema", lit.Str)
		}
	}
	p.Lits = append(p.Lits, out)
	return LitID(len(p.Lits) - 1), nil
}

// ---- analysis passes ----

// Trial-protection tiers for speculative parses (Popt, union branches),
// strongest first. foldTrialFlags assigns each node the strongest tier it
// provably supports; engines protect a trial with the cheapest mechanism
// its tier allows.
const (
	trialNone   = int8(0) // full Checkpoint/Restore required
	trialRewind = int8(1) // Mark/Rewind pair suffices (FRewind)
	trialAtomic = int8(2) // no protection needed (FAtomic)
)

// foldTrialFlags marks constraint-free nodes whose speculative trials need
// less than a full checkpoint. FAtomic: the parse consumes no input on any
// failure path, so the trial needs no protection at all — base reads
// qualify only when their padsrt reader provably leaves the cursor
// untouched on failure (ReadOp.Atomic). FRewind: the parse consumes input
// only by advancing the cursor inside the current record (every base read:
// no record framing, no compaction mid-read), so a Source.Mark/Rewind pair
// restores a failed trial exactly — this covers text integers, which Skip
// the digit run before reporting ErrRange. Compound nodes and calls into
// Precord declarations stay at trialNone: record framing mutates source
// state a bare cursor rewind cannot undo.
func (l *lowerer) foldTrialFlags() {
	memo := make(map[NodeID]int8) // -1 in progress, else trial* tier
	var visit func(id NodeID) int8
	visit = func(id NodeID) int8 {
		if v, ok := memo[id]; ok {
			if v < 0 {
				return trialNone // cycles get no trial shortcut
			}
			return v
		}
		memo[id] = -1
		n := &l.p.Nodes[id]
		tier := trialNone
		switch n.Op {
		case OpBase:
			if l.p.Bases[n.A].Read.Atomic() {
				tier = trialAtomic
			} else {
				tier = trialRewind
			}
		case OpEnum:
			tier = trialAtomic // peeks members, skips only on a match
		case OpTypedef:
			if n.B == None {
				tier = visit(n.A)
			}
		case OpCall:
			root := l.p.Decls[n.A].Root
			if root != None && l.p.Nodes[root].Flags&FRecord == 0 {
				tier = visit(root)
			}
		}
		memo[id] = tier
		switch tier {
		case trialAtomic:
			n.Flags |= FAtomic
		case trialRewind:
			n.Flags |= FRewind
		}
		return tier
	}
	for id := range l.p.Nodes {
		visit(NodeID(id))
	}
}

// foldWidths computes the fixed byte width of every node whose size is
// statically known, enabling constant field offsets (Program.FieldOffset).
func (l *lowerer) foldWidths() {
	p := l.p
	const unknown = int32(-2)
	state := make([]int32, len(p.Nodes))
	for i := range state {
		state[i] = unknown
	}
	var visit func(id NodeID) int32
	visit = func(id NodeID) int32 {
		if state[id] != unknown {
			return state[id]
		}
		state[id] = None // cycles are variable-width
		n := &p.Nodes[id]
		w := None
		switch n.Op {
		case OpLit:
			lit := &p.Lits[n.A]
			switch lit.Kind {
			case dsl.CharLit:
				w = 1
			case dsl.StrLit:
				w = int32(len(lit.Str))
			}
		case OpBase:
			b := &p.Bases[n.A]
			switch b.Read {
			case RChar, RAChar, REChar, RBChar:
				w = 1
			case RBUint, RBInt:
				w = int32(b.Bits / 8)
			case RUintFW, RAUintFW, RAIntFW, RStringFW:
				if b.Width.IsConst {
					w = int32(b.Width.Const)
				}
			case RVoid:
				w = 0
			}
		case OpField, OpTypedef:
			w = visit(n.A)
		case OpStruct:
			total := int32(0)
			ok := true
			for _, kid := range p.KidsOf(n) {
				kw := visit(kid)
				if kw < 0 {
					ok = false
					break
				}
				total += kw
			}
			if ok {
				w = total
			}
		case OpUnion, OpSwitch:
			first := true
			same := int32(None)
			for _, kid := range p.KidsOf(n) {
				kw := visit(kid)
				if first {
					same, first = kw, false
				} else if kw != same {
					same = None
				}
			}
			if !first && same >= 0 {
				w = same
			}
		case OpEnum:
			e := &p.Enums[n.A]
			same := -1
			for _, a := range e.Alts {
				if same == -1 {
					same = len(a.Repr)
				} else if len(a.Repr) != same {
					same = -2
				}
			}
			if same >= 0 {
				w = int32(same)
			}
		case OpCall:
			if root := p.Decls[n.A].Root; root != None {
				w = visit(root)
			}
		}
		state[id] = w
		return w
	}
	for id := range p.Nodes {
		visit(NodeID(id))
	}
	copy(p.Widths, state)
}

// foldNeedEnv marks declarations whose bodies evaluate any expression, so
// the VM can skip building lexical environments everywhere else.
func (l *lowerer) foldNeedEnv() {
	p := l.p
	for di := range p.Decls {
		d := &p.Decls[di]
		if d.Root == None {
			continue
		}
		root := &p.Nodes[d.Root]
		if len(d.Params) > 0 || l.bodyEvals(d.Root) {
			root.Flags |= FNeedEnv
		}
	}
}

// bodyEvals reports whether any node in the declaration body (not crossing
// into called declarations) evaluates a pooled expression at parse time.
func (l *lowerer) bodyEvals(id NodeID) bool {
	p := l.p
	n := &p.Nodes[id]
	switch n.Op {
	case OpStruct:
		if n.C != None {
			return true
		}
		for _, kid := range p.KidsOf(n) {
			if l.bodyEvals(kid) {
				return true
			}
		}
	case OpField:
		return n.B != None || l.bodyEvals(n.A)
	case OpUnion:
		for _, kid := range p.KidsOf(n) {
			if l.bodyEvals(kid) {
				return true
			}
		}
	case OpSwitch:
		return true // the selector always evaluates
	case OpArray:
		a := &p.Arrays[n.A]
		if a.LastPred != None || a.EndedPred != None || a.Where != None ||
			(a.HasMin && !a.MinSize.IsConst) || (a.HasMax && !a.MaxSize.IsConst) {
			return true
		}
		return l.bodyEvals(n.B)
	case OpTypedef:
		return n.B != None || l.bodyEvals(n.A)
	case OpOpt:
		return l.bodyEvals(n.A)
	case OpCall:
		return n.B != None // argument expressions evaluate in this scope
	case OpBase:
		b := &p.Bases[n.A]
		if b.HasWidth && !b.Width.IsConst {
			return true
		}
		if b.TermChar && !b.Term.IsConst {
			return true
		}
	}
	return false
}

// foldFirstClasses attaches a first-byte character class to each speculative
// union branch whose possible successful parses are statically known to
// begin with a bounded byte set. The VM and generated code probe the class
// before committing to a checkpointed trial parse of the branch.
func (l *lowerer) foldFirstClasses() {
	p := l.p
	type firstInfo struct {
		class    Class
		definite bool // false: give up, treat as "any byte"
		nullable bool // can succeed consuming nothing
		ascii    bool // class assumes the ambient coding is ASCII
	}
	memo := make(map[NodeID]firstInfo)
	var visit func(id NodeID) firstInfo
	visit = func(id NodeID) firstInfo {
		if fi, ok := memo[id]; ok {
			return fi
		}
		memo[id] = firstInfo{} // cycles: not definite
		n := &p.Nodes[id]
		var fi firstInfo
		switch n.Op {
		case OpLit:
			lit := &p.Lits[n.A]
			switch lit.Kind {
			case dsl.CharLit:
				fi.definite = true
				fi.class.add(lit.Char)
			case dsl.StrLit:
				if len(lit.Str) > 0 {
					fi.definite = true
					fi.class.add(lit.Str[0])
				}
			}
		case OpBase:
			b := &p.Bases[n.A]
			switch b.Read {
			case RAUint:
				fi.definite = true
				fi.class.addRange('0', '9')
			case RAInt:
				fi.definite = true
				fi.class.addRange('0', '9')
				fi.class.add('-')
				fi.class.add('+')
			case RUint:
				// Default-coded reads dispatch on the ambient coding at
				// parse time; the digit class holds only under ASCII.
				fi.definite = true
				fi.ascii = true
				fi.class.addRange('0', '9')
			case RInt:
				fi.definite = true
				fi.ascii = true
				fi.class.addRange('0', '9')
				fi.class.add('-')
				fi.class.add('+')
			}
		case OpEnum:
			e := &p.Enums[n.A]
			fi.definite = true
			for _, a := range e.Alts {
				if len(a.Repr) == 0 {
					fi.nullable = true
					continue
				}
				fi.class.add(a.Repr[0])
			}
		case OpStruct:
			fi.definite = true
			fi.nullable = true
			for _, kid := range p.KidsOf(n) {
				ki := visit(kid)
				if !ki.definite {
					fi.definite = false
					break
				}
				fi.class.union(&ki.class)
				fi.ascii = fi.ascii || ki.ascii
				if !ki.nullable {
					fi.nullable = false
					break
				}
			}
		case OpUnion, OpSwitch:
			fi.definite = true
			for _, kid := range p.KidsOf(n) {
				ki := visit(kid)
				if !ki.definite {
					fi.definite = false
					break
				}
				fi.class.union(&ki.class)
				fi.ascii = fi.ascii || ki.ascii
				fi.nullable = fi.nullable || ki.nullable
			}
		case OpArray:
			a := &p.Arrays[n.A]
			ei := visit(n.B)
			fi.class = ei.class
			fi.definite = ei.definite
			fi.ascii = ei.ascii
			fi.nullable = ei.nullable || !(a.HasMin && a.MinSize.IsConst && a.MinSize.Const >= 1)
		case OpOpt:
			ci := visit(n.A)
			fi = firstInfo{class: ci.class, definite: ci.definite, nullable: true, ascii: ci.ascii}
		case OpField, OpTypedef:
			fi = visit(n.A)
		case OpCall:
			if root := p.Decls[n.A].Root; root != None {
				fi = visit(root)
			}
		}
		memo[id] = fi
		return fi
	}
	full := func(c *Class) bool {
		return c[0]&c[1]&c[2]&c[3] == ^uint64(0)
	}
	for id := range p.Nodes {
		n := &p.Nodes[id]
		if n.Op != OpUnion {
			continue
		}
		for _, kid := range p.KidsOf(n) {
			fi := visit(kid)
			if fi.definite && !fi.nullable && !full(&fi.class) {
				p.Nodes[kid].D = p.addClass(fi.class, fi.ascii)
			}
		}
	}
}
