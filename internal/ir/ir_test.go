package ir

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/dsl"
	"pads/internal/sema"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	p, err := Lower(desc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func rootNode(t *testing.T, p *Program, name string) *Node {
	t.Helper()
	id, ok := p.DeclByName(name)
	if !ok {
		t.Fatalf("no decl %s", name)
	}
	root := p.Decls[id].Root
	if root == None {
		t.Fatalf("decl %s has no root", name)
	}
	return &p.Nodes[root]
}

func TestLowerStructShape(t *testing.T) {
	p := lower(t, `
Psource Precord Pstruct entry {
  Puint32 a; '|'; Puint16 b : b > 0; Peor;
};`)
	n := rootNode(t, p, "entry")
	if n.Op != OpStruct {
		t.Fatalf("op = %v", n.Op)
	}
	if n.Flags&FRecord == 0 || n.Flags&FSource == 0 {
		t.Errorf("flags = %v, want record|source", n.Flags)
	}
	if n.D != 2 {
		t.Errorf("field count D = %d, want 2", n.D)
	}
	kids := p.KidsOf(n)
	if len(kids) != 4 {
		t.Fatalf("kids = %d, want 4 (field, lit, field, eor-lit)", len(kids))
	}
	ops := make([]Op, 0, 4)
	for _, k := range kids {
		ops = append(ops, p.Nodes[k].Op)
	}
	want := []Op{OpField, OpLit, OpField, OpLit}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("kid ops = %v, want %v", ops, want)
		}
	}
	// The constrained field carries its predicate; the other does not.
	if p.Nodes[kids[0]].B != None {
		t.Error("field a should have no constraint")
	}
	if p.Nodes[kids[2]].B == None {
		t.Error("field b should carry its constraint")
	}
	// env analysis: the constraint forces an environment.
	if n.Flags&FNeedEnv == 0 {
		t.Error("constrained struct should need an env")
	}
}

func TestLowerNoEnvWhenPureSyntax(t *testing.T) {
	p := lower(t, `Psource Precord Pstruct r { Puint32 a; '|'; Pstring(:'|':) s; Peor; };`)
	if n := rootNode(t, p, "r"); n.Flags&FNeedEnv != 0 {
		t.Error("constraint-free struct should not need an env")
	}
}

func TestLowerBaseFolding(t *testing.T) {
	p := lower(t, `Psource Precord Pstruct r { Pstring_FW(:5:) s; Pstring(:';':) u; Peor; };`)
	if len(p.Bases) != 2 {
		t.Fatalf("bases = %d", len(p.Bases))
	}
	fw := p.Bases[0]
	if fw.Read != RStringFW || !fw.Width.IsConst || fw.Width.Const != 5 {
		t.Errorf("Pstring_FW spec = %+v", fw)
	}
	term := p.Bases[1]
	if term.Read != RStringTerm || !term.TermChar || !term.Term.IsConst || byte(term.Term.Const) != ';' {
		t.Errorf("Pstring spec = %+v", term)
	}
}

func TestLowerStringEORBoundary(t *testing.T) {
	p := lower(t, `Psource Precord Pstruct r { Pstring(:Peor:) s; Peor; };`)
	if p.Bases[0].Read != RStringEOR {
		t.Errorf("Pstring(:Peor:) lowered to %v, want RStringEOR", p.Bases[0].Read)
	}
}

func TestLowerEnumSortedLongestFirst(t *testing.T) {
	p := lower(t, `Penum st { go, gone, g }; Psource Precord Pstruct r { st s; Peor; };`)
	e := p.Enums[0]
	if len(e.Alts) != 3 || e.MaxLen != 4 {
		t.Fatalf("enum spec = %+v", e)
	}
	if e.Alts[0].Repr != "gone" || e.Alts[1].Repr != "go" || e.Alts[2].Repr != "g" {
		t.Errorf("alts not longest-first: %+v", e.Alts)
	}
	// Index must be the declaration position, not the sorted position.
	if e.Alts[0].Index != 1 || e.Alts[2].Index != 2 {
		t.Errorf("alt indices = %+v", e.Alts)
	}
}

func TestLowerArraySpec(t *testing.T) {
	p := lower(t, `
Parray seq { Puint8[2..10] : Psep(',') && Pterm(';'); };
Psource Precord Pstruct r { seq v; ';'; Peor; };`)
	a := p.Arrays[0]
	if !a.HasMin || !a.MinSize.IsConst || a.MinSize.Const != 2 {
		t.Errorf("min = %+v", a.MinSize)
	}
	if !a.HasMax || !a.MaxSize.IsConst || a.MaxSize.Const != 10 {
		t.Errorf("max = %+v", a.MaxSize)
	}
	if a.Sep == None || p.Lits[a.Sep].Char != ',' {
		t.Error("separator not lowered")
	}
	if a.Term == None || p.Lits[a.Term].Char != ';' || a.TermEOR || a.TermEOF {
		t.Error("terminator not lowered")
	}
}

func TestLowerSwitchCases(t *testing.T) {
	p := lower(t, `
Punion u (:Puint8 which:) Pswitch (which) {
  Pcase 1: Puint32 a;
  Pcase 2: Pstring(:'|':) s;
  Pdefault: Puint8 d;
};
Psource Precord Pstruct r { u(:1:) v; Peor; };`)
	n := rootNode(t, p, "u")
	if n.Op != OpSwitch {
		t.Fatalf("op = %v", n.Op)
	}
	kids := p.KidsOf(n)
	if len(kids) != 3 {
		t.Fatalf("cases = %d", len(kids))
	}
	if p.Nodes[kids[0]].D == None || p.Nodes[kids[1]].D == None {
		t.Error("valued cases must carry case lists")
	}
	if p.Nodes[kids[2]].D != None {
		t.Error("default case must not carry a case list")
	}
	if n.D != 2 {
		t.Errorf("default kid offset = %d, want 2", n.D)
	}
	if n.Flags&FNeedEnv == 0 {
		t.Error("switch selector needs an env")
	}
}

func TestAtomicFolding(t *testing.T) {
	p := lower(t, `
Ptypedef Pchar ch;
Ptypedef Pchar dash : dash == '-';
Ptypedef Puint64 pn;
Psource Precord Pstruct r { Popt ch a; '|'; Popt dash b; '|'; Popt pn c; Peor; };`)
	chRoot := rootNode(t, p, "ch")
	if chRoot.Flags&FAtomic == 0 {
		t.Error("unconstrained Pchar typedef must be atomic")
	}
	dashRoot := rootNode(t, p, "dash")
	if dashRoot.Flags&FAtomic != 0 {
		t.Error("constrained typedef must not be atomic")
	}
	// Variable-width text integers Skip the digit run before reporting
	// ErrRange, so even an unconstrained Puint64 typedef is not atomic.
	pnRoot := rootNode(t, p, "pn")
	if pnRoot.Flags&FAtomic != 0 {
		t.Error("Puint64 typedef must not be atomic: ReadAUint consumes digits on range overflow")
	}
	// ... but it only advances the cursor in-record, so it gets the
	// cheaper Mark/Rewind trial tier instead.
	if pnRoot.Flags&FRewind == 0 {
		t.Error("unconstrained Puint64 typedef must be rewindable")
	}
	if chRoot.Flags&FRewind != 0 || dashRoot.Flags&FRewind != 0 {
		t.Error("FAtomic and FRewind must be mutually exclusive; constrained nodes get neither")
	}
	// Date, fixed-width, and text-integer reads are not atomic.
	p2 := lower(t, `Psource Precord Pstruct r { Pdate(:'|':) d; '|'; Pstring_FW(:3:) s; '|'; Puint8 n; Peor; };`)
	for i := range p2.Nodes {
		n := &p2.Nodes[i]
		if n.Op == OpBase && n.Flags&FAtomic != 0 {
			t.Errorf("%s should not be atomic", p2.Bases[n.A].Read)
		}
	}
}

func TestWidthFolding(t *testing.T) {
	p := lower(t, `Psource Precord Pstruct r { Pstring_FW(:4:) a; '|'; Pchar c; Peor; };`)
	n := rootNode(t, p, "r")
	id, _ := p.DeclByName("r")
	root := p.Decls[id].Root
	// 4 (FW string) + 1 (lit) + 1 (char) + EOR lit (no width) -> variable.
	_ = n
	if w := p.Widths[root]; w != None {
		// Peor has no fixed byte width, so the struct must stay variable.
		t.Errorf("record struct width = %d, want folded-unknown", w)
	}
	// But the fixed prefix nodes fold.
	kids := p.KidsOf(&p.Nodes[root])
	if w := p.Widths[kids[0]]; w != 4 {
		t.Errorf("FW field width = %d, want 4", w)
	}
	if w := p.Widths[kids[1]]; w != 1 {
		t.Errorf("lit width = %d, want 1", w)
	}
}

func TestFirstClassesOnUnionBranches(t *testing.T) {
	p := lower(t, `
Pstruct noramp { "no_ii"; Puint64 id; };
Punion ramp { Pa_int64 which; noramp nr; };
Psource Precord Pstruct r { ramp v; Peor; };`)
	n := rootNode(t, p, "ramp")
	if n.Op != OpUnion {
		t.Fatalf("op = %v", n.Op)
	}
	kids := p.KidsOf(n)
	if len(kids) != 2 {
		t.Fatalf("branches = %d", len(kids))
	}
	intBranch := &p.Nodes[kids[0]]
	if intBranch.D == None {
		t.Fatal("Pint64 branch should carry a first-byte class")
	}
	cls := p.Classes[intBranch.D]
	for _, b := range []byte("0123456789-+") {
		if !cls.Has(b) {
			t.Errorf("int class missing %q", b)
		}
	}
	if cls.Has('x') || cls.Has('n') {
		t.Error("int class too wide")
	}
	litBranch := &p.Nodes[kids[1]]
	if litBranch.D == None {
		t.Fatal("literal-led branch should carry a first-byte class")
	}
	if c := p.Classes[litBranch.D]; !c.Has('n') || c.Has('0') {
		t.Error("literal class wrong")
	}
	if p.ClassASCII[intBranch.D] || p.ClassASCII[litBranch.D] {
		t.Error("explicitly-coded classes must not be ASCII-conditional")
	}
}

func TestFirstClassAmbientIntIsASCIIConditional(t *testing.T) {
	// Default-coded ints dispatch on the ambient coding at parse time, so
	// their digit class only holds under ASCII and must be marked so.
	p := lower(t, `
Pstruct noramp { "no_ii"; Puint64 id; };
Punion ramp { Pint64 which; noramp nr; };
Psource Precord Pstruct r { ramp v; Peor; };`)
	kids := p.KidsOf(rootNode(t, p, "ramp"))
	intBranch := &p.Nodes[kids[0]]
	if intBranch.D == None {
		t.Fatal("ambient Pint64 branch should carry a first-byte class")
	}
	if !p.ClassASCII[intBranch.D] {
		t.Error("ambient int class must be ASCII-conditional")
	}
	cls := p.Classes[intBranch.D]
	for _, b := range []byte("0123456789-+") {
		if !cls.Has(b) {
			t.Errorf("int class missing %q", b)
		}
	}
	litBranch := &p.Nodes[kids[1]]
	if litBranch.D == None || p.ClassASCII[litBranch.D] {
		t.Error("literal-led branch class must be unconditional")
	}
}

func TestDumpRendersProgram(t *testing.T) {
	p := lower(t, `
Penum color { red, green };
Psource Precord Pstruct r { color c; '|'; Popt Puint32 n; Peor; };`)
	var buf bytes.Buffer
	p.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"struct r", "enum color", "opt", `char "|"`, "record"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestLowerTestdataDescriptions(t *testing.T) {
	for _, name := range []string{"sirius.pads", "clf.pads", "kitchen.pads"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		p := lower(t, string(src))
		if len(p.Decls) == 0 || len(p.Nodes) == 0 {
			t.Errorf("%s lowered to an empty program", name)
		}
	}
}
