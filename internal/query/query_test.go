package query

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pads/internal/datagen"
	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func siriusRoot(t *testing.T, data []byte) *Node {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "sirius.pads"))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	in := interp.New(desc)
	v, err := in.ParseSource(padsrt.NewBytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	return NewNode("sirius", v)
}

func sampleRoot(t *testing.T) *Node {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "sirius.sample"))
	if err != nil {
		t.Fatal(err)
	}
	return siriusRoot(t, data)
}

func TestNodeAPI(t *testing.T) {
	root := sampleRoot(t)
	// Root is the out_sum struct: children h, es.
	if root.NumChildren() != 2 {
		t.Fatalf("root children = %d", root.NumChildren())
	}
	h := root.KthChild(0)
	if h.Name != "h" {
		t.Errorf("child 0 = %s", h.Name)
	}
	es := root.KthChild(1)
	// es is an array: 2 elts + length.
	if es.NumChildren() != 3 {
		t.Fatalf("es children = %d", es.NumChildren())
	}
	if es.KthChild(2).Name != "length" || es.KthChild(2).Text() != "2" {
		t.Errorf("length child = %s %s", es.KthChild(2).Name, es.KthChild(2).Text())
	}
	if es.KthChild(5) != nil {
		t.Error("out-of-range child should be nil")
	}
	entry := es.KthChild(0)
	if entry.Parent != es || es.Parent != root {
		t.Error("parent links broken")
	}
	hdr := entry.ChildrenNamed("header")
	if len(hdr) != 1 {
		t.Fatalf("header children = %d", len(hdr))
	}
	on := hdr[0].ChildrenNamed("order_num")
	if len(on) != 1 || on[0].Text() != "9152" {
		t.Errorf("order_num = %v", on)
	}
	if f, ok := on[0].Num(); !ok || f != 9152 {
		t.Errorf("order_num num = %v %v", f, ok)
	}
}

func TestPDNodesForBuggyData(t *testing.T) {
	// An out-of-order event sequence gets a pd child.
	data := []byte("0|1005022800\n1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000\n")
	root := siriusRoot(t, data)
	q, err := Compile("/es/elt/events/pd/errCode")
	if err != nil {
		t.Fatal(err)
	}
	got := q.Run(root)
	if len(got) != 1 || got[0].Text() != "Pwhere clause violated" {
		t.Errorf("pd errCode nodes = %v", got)
	}
}

// TestSiriusQueries is experiment E9: the section 5.4 queries.
func TestSiriusQueries(t *testing.T) {
	// Build a bigger synthetic file for meaningful answers.
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(300)
	cfg.SyntaxErrors = 0
	cfg.SortViolations = 0
	if _, err := datagen.Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	root := siriusRoot(t, buf.Bytes())

	// Query 1 (the paper's): all orders starting within a time window.
	// Timestamps in the synthetic feed are epoch seconds near 1e9.
	q1, err := Compile(`$sirius/es/elt[events/elt[1][tstamp >= 1000000000 and tstamp <= 1001500000]]`)
	if err != nil {
		t.Fatal(err)
	}
	inWindow := q1.Run(root)

	// Cross-check against a hand count via the node API.
	want := 0
	for _, entry := range root.ChildrenNamed("es")[0].ChildrenNamed("elt") {
		evs := entry.ChildrenNamed("events")[0].ChildrenNamed("elt")
		if len(evs) == 0 {
			continue
		}
		ts, _ := evs[0].ChildrenNamed("tstamp")[0].Num()
		if ts >= 1000000000 && ts <= 1001500000 {
			want++
		}
	}
	if want == 0 {
		t.Fatal("test window matched nothing; fixture drifted")
	}
	if len(inWindow) != want {
		t.Errorf("query 1: %d orders, hand count %d", len(inWindow), want)
	}

	// Query 2 (the paper's): count orders passing through a given state.
	state := datagen.StateName(0)
	q2, err := Compile(`count($sirius/es/elt[events/elt/state = "` + state + `"])`)
	if err != nil {
		t.Fatal(err)
	}
	_, n, isAgg := q2.Eval(root)
	if !isAgg {
		t.Fatal("count() did not aggregate")
	}
	want = 0
	for _, entry := range root.ChildrenNamed("es")[0].ChildrenNamed("elt") {
		for _, ev := range entry.ChildrenNamed("events")[0].ChildrenNamed("elt") {
			if ev.ChildrenNamed("state")[0].Text() == state {
				want++
				break
			}
		}
	}
	if int(n) != want {
		t.Errorf("query 2: count = %v, hand count %d", n, want)
	}
	if want == 0 {
		t.Error("state never occurred; fixture drifted")
	}

	// Query 3 (the paper's): average time from one state to another,
	// via the programmatic data API (the paper codes this in XQuery).
	avg, samples := AvgStateToState(root, datagen.StateName(0), datagen.StateName(1))
	if samples > 0 && avg <= 0 {
		t.Errorf("avg transition time = %v over %d samples", avg, samples)
	}
}

// AvgStateToState computes the mean seconds between the first occurrence of
// state a and a later occurrence of state b within each order: the third
// section 5.4 query, expressed against the data API.
func AvgStateToState(root *Node, a, b string) (float64, int) {
	var sum float64
	n := 0
	for _, entry := range root.ChildrenNamed("es")[0].ChildrenNamed("elt") {
		events := entry.ChildrenNamed("events")[0].ChildrenNamed("elt")
		var tA float64
		haveA := false
		for _, ev := range events {
			st := ev.ChildrenNamed("state")[0].Text()
			ts, _ := ev.ChildrenNamed("tstamp")[0].Num()
			if !haveA && st == a {
				tA, haveA = ts, true
			} else if haveA && st == b {
				sum += ts - tA
				n++
				break
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func TestXPathFeatures(t *testing.T) {
	root := sampleRoot(t)

	cases := []struct {
		q    string
		want int
	}{
		{"/es/elt", 2},
		{"/es/elt[1]", 1},
		{"/es/elt[2]", 1},
		{"/es/elt[3]", 0},
		{"/es/*", 3}, // two elts + length
		{"//state", 3},
		{"//tstamp", 4}, // header tstamp + 3 event tstamps
		{`/es/elt[header/order_num = 9152]`, 1},
		{`/es/elt[header/order_num != 9152]`, 1},
		{`/es/elt[header/order_num > 9000 and header/ord_version = 1]`, 2},
		{`/es/elt[header/order_num = 1 or header/order_num = 9153]`, 1},
		{`/es/elt[header/stream = "DUO"]`, 2},
		{`/es/elt[events/elt/state = "LOC_CRTE"]`, 1},
		{`/es/elt[header/zip_code]`, 1}, // existence: only entry 0 has a zip
		{`/h`, 1},
	}
	for _, c := range cases {
		q, err := Compile(c.q)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		got := q.Run(root)
		if len(got) != c.want {
			t.Errorf("%s: %d nodes, want %d", c.q, len(got), c.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	root := sampleRoot(t)
	cases := []struct {
		q    string
		want float64
	}{
		{"count(//state)", 3},
		{"sum(/es/elt/header/order_num)", 9152 + 9153},
		{"min(/es/elt/header/order_num)", 9152},
		{"max(/es/elt/header/order_num)", 9153},
		{"avg(/es/elt/header/order_num)", 9152.5},
	}
	for _, c := range cases {
		q, err := Compile(c.q)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		_, got, isAgg := q.Eval(root)
		if !isAgg || got != c.want {
			t.Errorf("%s = %v (agg=%v), want %v", c.q, got, isAgg, c.want)
		}
	}
}

func TestXSDateLiteral(t *testing.T) {
	root := sampleRoot(t)
	// Header tstamp 1005022800 = 2001-11-06 05:00 UTC.
	q, err := Compile(`/h[tstamp >= xs:date("2001-11-01") and tstamp <= xs:date("2001-12-01")]`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Run(root); len(got) != 1 {
		t.Errorf("date window matched %d", len(got))
	}
	q, _ = Compile(`/h[tstamp < xs:date("2001-01-01")]`)
	if got := q.Run(root); len(got) != 0 {
		t.Errorf("early window matched %d", len(got))
	}
}

func TestCompileErrors(t *testing.T) {
	for _, bad := range []string{
		"", "/es/elt[", "/es/elt[foo", `/es/elt[x = "unterminated]`,
		"count(/es/elt", `/h[tstamp >= xs:date("nonsense")]`, "/es ]]",
	} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) succeeded", bad)
		}
	}
}

func TestUnionAndOptNodes(t *testing.T) {
	root := sampleRoot(t)
	// ramp union: entry 0 took genRamp, entry 1 took ramp.
	q, _ := Compile("/es/elt/header/ramp/genRamp/id")
	got := q.Run(root)
	if len(got) != 1 || got[0].Text() != "152272" {
		t.Errorf("genRamp id = %v", got)
	}
	// Popt present values collapse onto the field name.
	q, _ = Compile("/es/elt/header/zip_code")
	got = q.Run(root)
	if len(got) != 1 || got[0].Text() != "07988" {
		t.Errorf("zip = %v", got)
	}
}

func TestNodeOverValue(t *testing.T) {
	u := &value.Uint{Val: 7}
	n := NewNode("x", u)
	if n.NumChildren() != 0 || n.Text() != "7" {
		t.Errorf("leaf node: children=%d text=%q", n.NumChildren(), n.Text())
	}
	if n.Path() != "/x" {
		t.Errorf("path = %s", n.Path())
	}
}
