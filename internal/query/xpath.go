package query

import (
	"fmt"
	"strconv"
	"strings"

	"pads/internal/padsrt"
)

// The XPath-subset query language, standing in for XQuery over the data
// API. Supported:
//
//	/a/b/c               child steps
//	//name               descendant-or-self steps
//	*                    any child
//	a[3]                 positional predicate (1-based, as in XPath)
//	a[b/c = "x"]         comparison predicates (= != < <= > >=)
//	a[p1 and p2 or p3]   boolean connectives
//	xs:date("2002-04-14")  date literals (compare against epoch seconds)
//	count(path), sum(p), avg(p), min(p), max(p)  top-level aggregates
//	$var/...             a leading variable is accepted and ignored
//
// Comparisons between a node set and a literal hold when any node in the
// set satisfies the comparison (XPath existential semantics).

// Query is a compiled query.
type Query struct {
	agg   string // "", "count", "sum", "avg", "min", "max"
	steps []step
}

type step struct {
	name       string // "*" matches any
	descendant bool
	preds      []pred
}

type pred interface{ eval(n *Node, pos int) bool }

type posPred struct{ k int }

type cmpPred struct {
	op   string
	l, r operand
}

type andPred struct{ l, r pred }
type orPred struct{ l, r pred }
type existsPred struct{ steps []step }

type operand struct {
	isPath bool
	steps  []step
	num    float64
	isNum  bool
	str    string
}

// Compile parses a query.
func Compile(src string) (*Query, error) {
	p := &qparser{src: src}
	q, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("query: %v", err)
	}
	return q, nil
}

// Run evaluates the query against a root node, returning matching nodes.
// For aggregate queries use Eval.
func (q *Query) Run(root *Node) []*Node {
	return evalSteps([]*Node{root}, q.steps)
}

// Eval evaluates the query, returning either a node set (agg == "") or an
// aggregate number.
func (q *Query) Eval(root *Node) (nodes []*Node, agg float64, isAgg bool) {
	nodes = q.Run(root)
	if q.agg == "" {
		return nodes, 0, false
	}
	switch q.agg {
	case "count":
		return nil, float64(len(nodes)), true
	default:
		var sum, min, max float64
		n := 0
		for _, node := range nodes {
			if f, ok := node.Num(); ok {
				if n == 0 || f < min {
					min = f
				}
				if n == 0 || f > max {
					max = f
				}
				sum += f
				n++
			}
		}
		switch q.agg {
		case "sum":
			return nil, sum, true
		case "min":
			return nil, min, true
		case "max":
			return nil, max, true
		default: // avg
			if n == 0 {
				return nil, 0, true
			}
			return nil, sum / float64(n), true
		}
	}
}

func evalSteps(ns []*Node, steps []step) []*Node {
	cur := ns
	for _, st := range steps {
		var next []*Node
		for _, n := range cur {
			var cands []*Node
			if st.descendant {
				collectDescendants(n, st.name, &cands)
			} else {
				for _, c := range n.Children() {
					if st.name == "*" || c.Name == st.name {
						cands = append(cands, c)
					}
				}
			}
			// Apply predicates positionally per parent node.
			for _, p := range st.preds {
				var kept []*Node
				for i, c := range cands {
					if p.eval(c, i+1) {
						kept = append(kept, c)
					}
				}
				cands = kept
			}
			next = append(next, cands...)
		}
		cur = next
	}
	return cur
}

func collectDescendants(n *Node, name string, out *[]*Node) {
	for _, c := range n.Children() {
		if name == "*" || c.Name == name {
			*out = append(*out, c)
		}
		collectDescendants(c, name, out)
	}
}

func (p posPred) eval(n *Node, pos int) bool { return pos == p.k }

func (p existsPred) eval(n *Node, pos int) bool {
	return len(evalSteps([]*Node{n}, p.steps)) > 0
}

func (p andPred) eval(n *Node, pos int) bool { return p.l.eval(n, pos) && p.r.eval(n, pos) }
func (p orPred) eval(n *Node, pos int) bool  { return p.l.eval(n, pos) || p.r.eval(n, pos) }

func (p cmpPred) eval(n *Node, pos int) bool {
	lvals := p.l.resolve(n)
	rvals := p.r.resolve(n)
	for _, l := range lvals {
		for _, r := range rvals {
			if cmpVals(l, r, p.op) {
				return true
			}
		}
	}
	return false
}

// val is a comparison operand value: a number or a string.
type val struct {
	num   float64
	isNum bool
	str   string
}

func (o operand) resolve(n *Node) []val {
	if !o.isPath {
		return []val{{num: o.num, isNum: o.isNum, str: o.str}}
	}
	nodes := evalSteps([]*Node{n}, o.steps)
	out := make([]val, 0, len(nodes))
	for _, nd := range nodes {
		if f, ok := nd.Num(); ok {
			out = append(out, val{num: f, isNum: true, str: nd.Text()})
		} else {
			out = append(out, val{str: nd.Text()})
		}
	}
	return out
}

func cmpVals(l, r val, op string) bool {
	if l.isNum && r.isNum {
		switch op {
		case "=":
			return l.num == r.num
		case "!=":
			return l.num != r.num
		case "<":
			return l.num < r.num
		case "<=":
			return l.num <= r.num
		case ">":
			return l.num > r.num
		case ">=":
			return l.num >= r.num
		}
	}
	ls, rs := l.str, r.str
	switch op {
	case "=":
		return ls == rs
	case "!=":
		return ls != rs
	case "<":
		return ls < rs
	case "<=":
		return ls <= rs
	case ">":
		return ls > rs
	case ">=":
		return ls >= rs
	}
	return false
}

// ---- query parser ----

type qparser struct {
	src string
	off int
}

func (p *qparser) ws() {
	for p.off < len(p.src) && (p.src[p.off] == ' ' || p.src[p.off] == '\t' || p.src[p.off] == '\n') {
		p.off++
	}
}

func (p *qparser) peek() byte {
	if p.off >= len(p.src) {
		return 0
	}
	return p.src[p.off]
}

func (p *qparser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.off:], s) }

func (p *qparser) ident() string {
	start := p.off
	for p.off < len(p.src) {
		c := p.src[p.off]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			p.off++
		} else {
			break
		}
	}
	return p.src[start:p.off]
}

func (p *qparser) parse() (*Query, error) {
	p.ws()
	q := &Query{}
	// Aggregate wrapper?
	for _, agg := range []string{"count", "sum", "avg", "min", "max"} {
		if p.hasPrefix(agg + "(") {
			q.agg = agg
			p.off += len(agg) + 1
			steps, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			p.ws()
			if p.peek() != ')' {
				return nil, fmt.Errorf("expected ) to close %s(...)", agg)
			}
			p.off++
			q.steps = steps
			return q, p.expectEOF()
		}
	}
	steps, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	q.steps = steps
	return q, p.expectEOF()
}

func (p *qparser) expectEOF() error {
	p.ws()
	if p.off < len(p.src) {
		return fmt.Errorf("unexpected %q at offset %d", p.src[p.off:], p.off)
	}
	return nil
}

func (p *qparser) parsePath() ([]step, error) {
	p.ws()
	// Skip a leading variable: $sirius.
	if p.peek() == '$' {
		p.off++
		p.ident()
	}
	var steps []step
	for {
		p.ws()
		descendant := false
		if p.hasPrefix("//") {
			descendant = true
			p.off += 2
		} else if p.peek() == '/' {
			p.off++
		} else if len(steps) > 0 {
			break
		}
		p.ws()
		var name string
		if p.peek() == '*' {
			p.off++
			name = "*"
		} else {
			name = p.ident()
		}
		if name == "" {
			if len(steps) == 0 {
				return nil, fmt.Errorf("empty path")
			}
			break
		}
		st := step{name: name, descendant: descendant}
		for {
			p.ws()
			if p.peek() != '[' {
				break
			}
			p.off++
			pr, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			p.ws()
			if p.peek() != ']' {
				return nil, fmt.Errorf("expected ] at offset %d", p.off)
			}
			p.off++
			st.preds = append(st.preds, pr)
		}
		steps = append(steps, st)
		p.ws()
		if p.peek() != '/' && !p.hasPrefix("//") {
			break
		}
	}
	return steps, nil
}

func (p *qparser) parsePred() (pred, error) {
	l, err := p.parsePredAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.hasPrefix("or ") && !p.hasPrefix("or\t") {
			return l, nil
		}
		p.off += 2
		r, err := p.parsePredAnd()
		if err != nil {
			return nil, err
		}
		l = orPred{l, r}
	}
}

func (p *qparser) parsePredAnd() (pred, error) {
	l, err := p.parsePredAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.hasPrefix("and ") && !p.hasPrefix("and\t") {
			return l, nil
		}
		p.off += 3
		r, err := p.parsePredAtom()
		if err != nil {
			return nil, err
		}
		l = andPred{l, r}
	}
}

func (p *qparser) parsePredAtom() (pred, error) {
	p.ws()
	// Pure position: [3]
	if c := p.peek(); c >= '0' && c <= '9' {
		save := p.off
		n := p.number()
		p.ws()
		if p.peek() == ']' {
			return posPred{k: int(n)}, nil
		}
		p.off = save
	}
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	p.ws()
	ops := []string{"!=", "<=", ">=", "=", "<", ">"}
	for _, op := range ops {
		if p.hasPrefix(op) {
			p.off += len(op)
			r, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return cmpPred{op: op, l: l, r: r}, nil
		}
	}
	// No operator: existence test on a path.
	if l.isPath {
		return existsPred{steps: l.steps}, nil
	}
	return nil, fmt.Errorf("expected a comparison at offset %d", p.off)
}

func (p *qparser) number() float64 {
	start := p.off
	for p.off < len(p.src) && (p.src[p.off] >= '0' && p.src[p.off] <= '9' || p.src[p.off] == '.') {
		p.off++
	}
	f, _ := strconv.ParseFloat(p.src[start:p.off], 64)
	return f
}

func (p *qparser) parseOperand() (operand, error) {
	p.ws()
	c := p.peek()
	switch {
	case c == '"' || c == '\'':
		quote := c
		p.off++
		start := p.off
		for p.off < len(p.src) && p.src[p.off] != quote {
			p.off++
		}
		if p.off >= len(p.src) {
			return operand{}, fmt.Errorf("unterminated string literal")
		}
		s := p.src[start:p.off]
		p.off++
		return operand{str: s}, nil
	case c >= '0' && c <= '9' || c == '-':
		neg := false
		if c == '-' {
			neg = true
			p.off++
		}
		f := p.number()
		if neg {
			f = -f
		}
		return operand{num: f, isNum: true}, nil
	case p.hasPrefix("xs:date(") || p.hasPrefix("xs:dateTime("):
		i := strings.IndexByte(p.src[p.off:], '(')
		p.off += i + 1
		p.ws()
		inner, err := p.parseOperand()
		if err != nil {
			return operand{}, err
		}
		p.ws()
		if p.peek() != ')' {
			return operand{}, fmt.Errorf("expected ) after xs:date")
		}
		p.off++
		sec, code := padsrt.ParseDateString(inner.str)
		if code != padsrt.ErrNone {
			return operand{}, fmt.Errorf("invalid xs:date %q", inner.str)
		}
		return operand{num: float64(sec), isNum: true}, nil
	default:
		steps, err := p.parseRelPath()
		if err != nil {
			return operand{}, err
		}
		return operand{isPath: true, steps: steps}, nil
	}
}

// parseRelPath parses a relative path inside a predicate: a/b[1]/c.
func (p *qparser) parseRelPath() ([]step, error) {
	var steps []step
	for {
		p.ws()
		name := p.ident()
		if name == "" {
			if len(steps) == 0 {
				return nil, fmt.Errorf("expected a path at offset %d", p.off)
			}
			return steps, nil
		}
		st := step{name: name}
		for {
			p.ws()
			if p.peek() != '[' {
				break
			}
			p.off++
			pr, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			p.ws()
			if p.peek() != ']' {
				return nil, fmt.Errorf("expected ]")
			}
			p.off++
			st.preds = append(st.preds, pr)
		}
		steps = append(steps, st)
		if p.peek() != '/' {
			return steps, nil
		}
		p.off++
	}
}
