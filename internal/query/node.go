// Package query provides querying over raw PADS data (section 5.4 of the
// paper): a tree-shaped data API over parsed values — the role the Galax
// data API plays in the original system (node_new / node_kthChild in
// Figure 6) — plus an XPath-subset query engine sufficient for the paper's
// Sirius queries, standing in for XQuery.
package query

import (
	"fmt"

	"pads/internal/padsrt"
	"pads/internal/value"
)

// Node is one node of the tree view of a parsed value. Children follow the
// canonical XML embedding: struct fields by name, the taken union branch by
// its tag, array elements as "elt", and a "pd" child on values with errors.
type Node struct {
	Name   string
	Val    value.Value
	Parent *Node

	children []*Node
	built    bool
	// pd nodes carry text instead of a value.
	text   string
	isText bool
}

// NewNode roots a tree at a parsed value — the node_new entry point.
func NewNode(name string, v value.Value) *Node {
	return &Node{Name: name, Val: v}
}

func textNode(name, text string, parent *Node) *Node {
	return &Node{Name: name, text: text, isText: true, Parent: parent}
}

func (n *Node) build() {
	if n.built {
		return
	}
	n.built = true
	if n.isText || n.Val == nil {
		return
	}
	add := func(name string, v value.Value) {
		// Optionals collapse: a present Popt contributes its inner value
		// under the field name, an absent one contributes no node (the
		// schema's minOccurs="0"), so [field] works as an existence test.
		if o, ok := v.(*value.Opt); ok {
			if !o.Present {
				return
			}
			v = o.Val
		}
		n.children = append(n.children, &Node{Name: name, Val: v, Parent: n})
	}
	switch v := n.Val.(type) {
	case *value.Struct:
		for i, name := range v.Names {
			add(name, v.Fields[i])
		}
	case *value.Union:
		if v.Val != nil {
			add(v.Tag, v.Val)
		}
	case *value.Array:
		for _, e := range v.Elems {
			add("elt", e)
		}
		n.children = append(n.children, textNode("length", fmt.Sprintf("%d", len(v.Elems)), n))
	case *value.Opt:
		// Reached only when an Opt is itself the root.
		if v.Present {
			add("val", v.Val)
		}
	}
	if pd := n.pd(); pd != nil && pd.Nerr > 0 {
		pdNode := &Node{Name: "pd", Parent: n, built: true}
		pdNode.children = []*Node{
			textNode("pstate", pd.State.String(), pdNode),
			textNode("nerr", fmt.Sprintf("%d", pd.Nerr), pdNode),
			textNode("errCode", pd.ErrCode.String(), pdNode),
			textNode("loc", pd.Loc.String(), pdNode),
		}
		n.children = append(n.children, pdNode)
	}
}

func (n *Node) pd() *padsrt.PD {
	if n.Val == nil {
		return nil
	}
	return n.Val.PD()
}

// NumChildren reports the number of children.
func (n *Node) NumChildren() int {
	n.build()
	return len(n.children)
}

// KthChild returns the k'th child (0-based) — the node_kthChild entry
// point; nil when out of range.
func (n *Node) KthChild(k int) *Node {
	n.build()
	if k < 0 || k >= len(n.children) {
		return nil
	}
	return n.children[k]
}

// Children returns all children.
func (n *Node) Children() []*Node {
	n.build()
	return n.children
}

// ChildrenNamed returns the children with the given element name.
func (n *Node) ChildrenNamed(name string) []*Node {
	n.build()
	var out []*Node
	for _, c := range n.children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Text returns the node's text content: the leaf value's canonical text, or
// the stored text for synthesized nodes.
func (n *Node) Text() string {
	if n.isText {
		return n.text
	}
	switch v := n.Val.(type) {
	case *value.Uint:
		return fmt.Sprintf("%d", v.Val)
	case *value.Int:
		return fmt.Sprintf("%d", v.Val)
	case *value.Float:
		return fmt.Sprintf("%g", v.Val)
	case *value.Char:
		return string(v.Val)
	case *value.Str:
		return v.Val
	case *value.Date:
		return v.Raw
	case *value.IP:
		return padsrt.FormatIP(v.Val)
	case *value.Enum:
		return v.Member
	}
	return ""
}

// Num returns the node's numeric interpretation, ok=false when it has none.
// Dates are epoch seconds so they compare against xs:date literals.
func (n *Node) Num() (float64, bool) {
	if n.isText {
		var f float64
		if _, err := fmt.Sscanf(n.text, "%g", &f); err == nil {
			return f, true
		}
		return 0, false
	}
	switch v := n.Val.(type) {
	case *value.Uint:
		return float64(v.Val), true
	case *value.Int:
		return float64(v.Val), true
	case *value.Float:
		return v.Val, true
	case *value.Char:
		return float64(v.Val), true
	case *value.Date:
		return float64(v.Sec), true
	case *value.IP:
		return float64(v.Val), true
	case *value.Enum:
		return float64(v.Index), true
	case *value.Opt:
		if v.Present {
			return (&Node{Val: v.Val}).Num()
		}
	}
	return 0, false
}

// Path renders the node's location for diagnostics.
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Name
	}
	return n.Parent.Path() + "/" + n.Name
}
