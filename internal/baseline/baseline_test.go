package baseline

import (
	"bytes"
	"strings"
	"testing"

	"pads/internal/datagen"
)

const goodLine = "9152|9152|1|9735551212|0||9085551212|07988|no_ii152272|EDTF_6|0|APRL1|DUO|10|1000295291"

func TestVetLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
	}{
		{goodLine, true},
		{"9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|LOC_CRTE|1001476800|LOC_OS_10|1001649601", true},
		{"X9152|9152|1|0|0|0|0||1|T|0|u|s|A|1", false},    // bad order number
		{"1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000", false}, // unsorted timestamps
		{"1|1|1|0|0|0|0|123|1|T|0|u|s|A|1", false},        // bad zip
		{"1|1|1|0|0|0|0||xx|T|0|u|s|A|1", false},          // bad ramp
		{"1|1|1|abc|0|0|0||1|T|0|u|s|A|1", false},         // bad phone
		{"1|1|1|0|0|0|0||1|T|0|u|s|A", false},             // odd event list
		{"1|1|1|0|0|0|0||1|T|0|u|s", false},               // no events
		{"1|1|1|0|0|0|0||1|T|0|u|s||1", false},            // empty state
		{"1|1|1|0|0|0|0|07733-1234|-5|T|0|u|s|A|1", true}, // zip+4, negative ramp
	}
	for _, c := range cases {
		if got := SiriusVetLine([]byte(c.line)); got != c.ok {
			t.Errorf("SiriusVetLine(%q) = %v, want %v", c.line, got, c.ok)
		}
	}
}

func TestVetMatchesGeneratorStats(t *testing.T) {
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(1000)
	cfg.SortViolations = 4
	cfg.SyntaxErrors = 6
	st, err := datagen.Sirius(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var clean, errOut bytes.Buffer
	vst, err := SiriusVet(&buf, &clean, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if vst.Records != 1000 {
		t.Fatalf("records = %d", vst.Records)
	}
	if vst.Errors != st.SortViolations+st.SyntaxErrors {
		t.Errorf("vet errors = %d, want %d", vst.Errors, st.SortViolations+st.SyntaxErrors)
	}
	if got := strings.Count(errOut.String(), "\n"); got != vst.Errors {
		t.Errorf("error file lines = %d", got)
	}
	// Clean output includes the header line.
	if got := strings.Count(clean.String(), "\n"); got != vst.Clean+1 {
		t.Errorf("clean file lines = %d, want %d", got, vst.Clean+1)
	}
}

func TestSelectorFigure9(t *testing.T) {
	sel := NewSelector("LOC_CRTE")
	num, ok := sel.Match([]byte("9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|LOC_CRTE|1001476800|LOC_OS_10|1001649601"))
	if !ok || string(num) != "9153" {
		t.Fatalf("match = %q, %v", num, ok)
	}
	// A state later in the sequence matches too.
	sel = NewSelector("LOC_OS_10")
	if _, ok := sel.Match([]byte("9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|LOC_CRTE|1001476800|LOC_OS_10|1001649601")); !ok {
		t.Error("second event state missed")
	}
	// The state must appear in event position, not in the header: LOC_6
	// is the order type (field 10) here, not an event state.
	sel = NewSelector("LOC_6")
	if _, ok := sel.Match([]byte("9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|OTHER|1001476800")); ok {
		t.Error("header field matched as a state")
	}
	// Timestamps must not match as states... they can in principle (the
	// regex is positional); but a non-occurring state must not match.
	sel = NewSelector("NOPE")
	if _, ok := sel.Match([]byte(goodLine)); ok {
		t.Error("absent state matched")
	}
}

func TestSelectCountsAgainstScan(t *testing.T) {
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(500)
	cfg.SyntaxErrors = 0
	cfg.SortViolations = 0
	if _, err := datagen.Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data := buf.String()
	state := datagen.StateName(7)

	var out bytes.Buffer
	st, err := SiriusSelect(strings.NewReader(data), &out, state)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 500 {
		t.Fatalf("records = %d", st.Records)
	}
	// Hand count: state appears at an even event index (state position).
	want := 0
	for _, line := range strings.Split(data, "\n") {
		if line == "" || strings.HasPrefix(line, "0|") {
			continue
		}
		fields := strings.Split(line, "|")
		for i := 13; i < len(fields); i += 2 {
			if fields[i] == state {
				want++
				break
			}
		}
	}
	if st.Matched != want {
		t.Errorf("matched = %d, hand count %d", st.Matched, want)
	}
	if want == 0 {
		t.Error("state never occurred; fixture drifted")
	}
}

func TestCountRecords(t *testing.T) {
	n, err := CountRecords(strings.NewReader("a\nb\nc\n"))
	if err != nil || n != 3 {
		t.Fatalf("n = %d, %v", n, err)
	}
	n, _ = CountRecords(strings.NewReader(""))
	if n != 0 {
		t.Fatalf("empty n = %d", n)
	}
	// A record longer than the internal buffer still counts once.
	long := strings.Repeat("x", 200000)
	n, err = CountRecords(strings.NewReader(long + "\n" + long + "\n"))
	if err != nil || n != 2 {
		t.Fatalf("long n = %d, %v", n, err)
	}
}
