// Package baseline ports the hand-written Perl programs of section 7 of the
// paper to Go, preserving their algorithms: the vetter splits each record on
// '|' and validates the fields (Perl's split), and the selector applies the
// Figure 9 regular expression to every line. They are the comparators for
// the Figure 10 experiment; the PADS side is the generated parser in
// pads/internal/gen/sirius.
package baseline

import (
	"bufio"
	"bytes"
	"io"
	"regexp"
)

// VetStats reports a vetting run.
type VetStats struct {
	Records int
	Clean   int
	Errors  int
}

// SiriusVetLine validates one Sirius order record the way the Perl vetter
// does: split on '|', check each of the 13 header fields, then check the
// event list (state, timestamp pairs with non-decreasing timestamps).
func SiriusVetLine(line []byte) bool {
	fields := bytes.Split(line, []byte{'|'})
	// 13 header fields plus at least one (state, timestamp) pair.
	if len(fields) < 15 {
		return false
	}
	// order_num, att_order_num, ord_version: unsigned integers.
	for i := 0; i < 3; i++ {
		if !isUint(fields[i]) {
			return false
		}
	}
	// four phone numbers: optional unsigned integers.
	for i := 3; i < 7; i++ {
		if len(fields[i]) > 0 && !isUint(fields[i]) {
			return false
		}
	}
	// zip code: optional 5 digits or zip+4.
	if !isOptZip(fields[7]) {
		return false
	}
	// ramp: integer or no_ii<digits>.
	if !isRamp(fields[8]) {
		return false
	}
	// order_type (fields[9]), unused (fields[11]), stream (fields[12]):
	// free-form; order_details must be an unsigned integer.
	if !isUint(fields[10]) {
		return false
	}
	// The event list: pairs of (state, timestamp), timestamps sorted.
	events := fields[13:]
	if len(events)%2 != 0 {
		return false
	}
	prev := int64(-1)
	for i := 0; i < len(events); i += 2 {
		if len(events[i]) == 0 {
			return false
		}
		ts, ok := parseUint(events[i+1])
		if !ok {
			return false
		}
		if int64(ts) < prev {
			return false
		}
		prev = int64(ts)
	}
	return true
}

func isUint(b []byte) bool {
	_, ok := parseUint(b)
	return ok
}

func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return v, true
}

func isOptZip(b []byte) bool {
	switch len(b) {
	case 0:
		return true
	case 5:
		return isUint(b)
	case 10:
		return isUint(b[:5]) && b[5] == '-' && isUint(b[6:])
	default:
		return false
	}
}

func isRamp(b []byte) bool {
	if bytes.HasPrefix(b, []byte("no_ii")) {
		return isUint(b[5:])
	}
	if len(b) > 0 && b[0] == '-' {
		return isUint(b[1:])
	}
	return isUint(b)
}

// SiriusVet vets a whole file: the header record is echoed to clean, good
// records go to clean, bad ones to errOut (either writer may be nil).
func SiriusVet(r io.Reader, clean, errOut io.Writer) (VetStats, error) {
	var st VetStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			first = false
			if clean != nil {
				clean.Write(line)
				clean.Write(nl)
			}
			continue
		}
		st.Records++
		if SiriusVetLine(line) {
			st.Clean++
			if clean != nil {
				clean.Write(line)
				clean.Write(nl)
			}
		} else {
			st.Errors++
			if errOut != nil {
				errOut.Write(line)
				errOut.Write(nl)
			}
		}
	}
	return st, sc.Err()
}

var nl = []byte{'\n'}

// Selector holds the compiled Figure 9 regular expression for one state:
//
//	qr/^(\d+)\|(?:[^|]*\|){12}(?:[^|]*\|[^|]*\|)*$STATE\|/
//
// It matches records that ever pass through $STATE and captures the order
// number.
type Selector struct {
	re *regexp.Regexp
}

// NewSelector compiles the Figure 9 expression for a state.
func NewSelector(state string) *Selector {
	pat := `^(\d+)\|(?:[^|]*\|){12}(?:[^|]*\|[^|]*\|)*` + regexp.QuoteMeta(state) + `\|`
	return &Selector{re: regexp.MustCompile(pat)}
}

// Match applies the expression to one record, returning the captured order
// number text.
func (s *Selector) Match(line []byte) ([]byte, bool) {
	m := s.re.FindSubmatch(line)
	if m == nil {
		return nil, false
	}
	return m[1], true
}

// SelectStats reports a selection run.
type SelectStats struct {
	Records int
	Matched int
}

// SiriusSelect scans a file and writes the order number of every record
// that passes through state, like the Perl selection program.
func SiriusSelect(r io.Reader, w io.Writer, state string) (SelectStats, error) {
	sel := NewSelector(state)
	var st SelectStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		if first {
			first = false // skip the summary header
			continue
		}
		st.Records++
		if num, ok := sel.Match(sc.Bytes()); ok {
			st.Matched++
			if w != nil {
				w.Write(num)
				w.Write(nl)
			}
		}
	}
	return st, sc.Err()
}

// CountRecords counts newline-terminated records the way the trivial Perl
// `while (<>) { $n++ }` program does (the 124-second baseline of section 7).
func CountRecords(r io.Reader) (int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	n := 0
	for {
		chunk, err := br.ReadSlice('\n')
		if len(chunk) > 0 && chunk[len(chunk)-1] == '\n' {
			n++
		}
		if err == io.EOF {
			return n, nil
		}
		if err == bufio.ErrBufferFull {
			// A record longer than the buffer: consume to the newline.
			for err == bufio.ErrBufferFull {
				chunk, err = br.ReadSlice('\n')
			}
			if len(chunk) > 0 && chunk[len(chunk)-1] == '\n' {
				n++
			}
			if err == io.EOF {
				return n, nil
			}
		}
		if err != nil {
			return n, err
		}
	}
}
