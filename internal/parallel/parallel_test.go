package parallel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"pads/internal/padsrt"
)

// checkCover verifies the chunk invariants: exact coverage of the input in
// order, and RecBase counting the records before each chunk.
func checkCover(t *testing.T, data []byte, chunks []Chunk, recsBefore func(off int) int) {
	t.Helper()
	var joined []byte
	off := int64(0)
	for i, c := range chunks {
		if c.Index != i {
			t.Fatalf("chunk %d has Index %d", i, c.Index)
		}
		if c.Off != off {
			t.Fatalf("chunk %d at Off %d, want %d", i, c.Off, off)
		}
		if want := recsBefore(int(c.Off)); c.RecBase != want {
			t.Fatalf("chunk %d RecBase = %d, want %d", i, c.RecBase, want)
		}
		joined = append(joined, c.Data...)
		off += int64(len(c.Data))
	}
	if !bytes.Equal(joined, data) {
		t.Fatalf("chunks do not reassemble the input: %d joined bytes vs %d", len(joined), len(data))
	}
}

func TestShardNewline(t *testing.T) {
	var data []byte
	for i := 0; i < 100; i++ {
		data = append(data, fmt.Sprintf("record-%03d with some padding %d\n", i, i*i)...)
	}
	data = append(data, "final unterminated"...)
	recsBefore := func(off int) int { return bytes.Count(data[:off], []byte{'\n'}) }
	for _, n := range []int{1, 2, 3, 4, 8, 64, 1000} {
		chunks := Shard(data, padsrt.Newline(), n)
		if len(chunks) > n {
			t.Fatalf("n=%d: got %d chunks", n, len(chunks))
		}
		checkCover(t, data, chunks, recsBefore)
		for i, c := range chunks[:len(chunks)-1] {
			if len(c.Data) == 0 || c.Data[len(c.Data)-1] != '\n' {
				t.Fatalf("n=%d: chunk %d does not end on a record boundary", n, i)
			}
		}
	}
}

func TestShardFixed(t *testing.T) {
	const width = 17
	data := bytes.Repeat([]byte{0xAB}, width*53+5) // short final record
	for _, n := range []int{1, 2, 4, 7, 100} {
		chunks := Shard(data, padsrt.FixedWidth(width), n)
		checkCover(t, data, chunks, func(off int) int { return off / width })
		for i, c := range chunks[:len(chunks)-1] {
			if len(c.Data)%width != 0 {
				t.Fatalf("n=%d: chunk %d length %d not a multiple of %d", n, i, len(c.Data), width)
			}
		}
	}
}

func TestShardLenPrefix(t *testing.T) {
	disc := padsrt.LenPrefix() // 4-byte big-endian header
	var data []byte
	var starts []int
	for i := 0; i < 60; i++ {
		starts = append(starts, len(data))
		body := bytes.Repeat([]byte{byte(i)}, 5+i%23)
		var rec []byte
		padsrt.FrameRecord(disc, &rec, body)
		data = append(data, rec...)
	}
	recsBefore := func(off int) int {
		n := 0
		for _, s := range starts {
			if s < off {
				n++
			}
		}
		return n
	}
	for _, n := range []int{1, 2, 4, 9} {
		chunks := Shard(data, disc, n)
		checkCover(t, data, chunks, recsBefore)
		for i, c := range chunks {
			found := int(c.Off) == len(data)
			for _, s := range starts {
				if s == int(c.Off) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("n=%d: chunk %d starts at %d, not a record start", n, i, c.Off)
			}
		}
	}
}

func TestShardUnshardableDisciplines(t *testing.T) {
	data := []byte("whatever bytes these are")
	for _, disc := range []padsrt.Discipline{padsrt.NoRecords(), &padsrt.CustomDisc{}} {
		chunks := Shard(data, disc, 8)
		if len(chunks) != 1 || !bytes.Equal(chunks[0].Data, data) {
			t.Fatalf("%s: expected a single covering chunk, got %d", disc.Name(), len(chunks))
		}
	}
}

// scan reads every record of a chunk through the record discipline,
// capturing (absolute record number, absolute start offset, body) — the
// determinism witnesses the engine must preserve.
type scanned struct {
	rec  int
	off  int64
	body string
}

func scanChunk(src *padsrt.Source) ([]scanned, error) {
	var out []scanned
	for {
		ok, err := src.BeginRecord()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, scanned{rec: src.RecordNum(), off: src.Pos().Byte, body: string(src.RecordBytes())})
		src.SkipToEOR()
		src.EndRecord(nil)
	}
}

// TestRunMatchesSequential: for every worker count, the merged stream of
// (record number, offset, body) triples equals the sequential scan exactly,
// and merge is called in chunk order.
func TestRunMatchesSequential(t *testing.T) {
	var data []byte
	for i := 0; i < 997; i++ {
		data = append(data, fmt.Sprintf("%d|payload-%d\n", i, i*7)...)
	}
	seq, err := scanChunk(padsrt.NewBorrowedSource(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		var got []scanned
		lastIdx := -1
		err := Run(data, Options{Workers: workers, MinChunk: 64},
			func(src *padsrt.Source, c Chunk) ([]scanned, error) { return scanChunk(src) },
			func(c Chunk, rs []scanned) error {
				if c.Index != lastIdx+1 {
					return fmt.Errorf("merge out of order: chunk %d after %d", c.Index, lastIdx)
				}
				lastIdx = c.Index
				got = append(got, rs...)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(seq))
		}
		for i := range got {
			if got[i] != seq[i] {
				t.Fatalf("workers=%d: record %d = %+v, want %+v", workers, i, got[i], seq[i])
			}
		}
	}
}

// TestRunBaseOffsets: Off/Records shift every chunk's reported positions,
// the way a sequentially-parsed header is accounted for.
func TestRunBaseOffsets(t *testing.T) {
	data := []byte("aa\nbb\ncc\ndd\n")
	var got []scanned
	err := Run(data, Options{Workers: 2, MinChunk: 1, Off: 100, Records: 7},
		func(src *padsrt.Source, c Chunk) ([]scanned, error) { return scanChunk(src) },
		func(c Chunk, rs []scanned) error { got = append(got, rs...); return nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []scanned{{8, 100, "aa"}, {9, 103, "bb"}, {10, 106, "cc"}, {11, 109, "dd"}}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRunWorkError: the first error in chunk order wins, and later chunks
// are not merged.
func TestRunWorkError(t *testing.T) {
	var data []byte
	for i := 0; i < 64; i++ {
		data = append(data, fmt.Sprintf("line %d\n", i)...)
	}
	boom := errors.New("boom")
	merged := 0
	err := Run(data, Options{Workers: 4, MinChunk: 1},
		func(src *padsrt.Source, c Chunk) (int, error) {
			if c.Index == 1 {
				return 0, boom
			}
			return c.Index, nil
		},
		func(c Chunk, r int) error {
			if c.Index > 1 {
				t.Errorf("chunk %d merged after the failed chunk", c.Index)
			}
			merged++
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if merged != 1 {
		t.Fatalf("merged %d chunks, want only chunk 0", merged)
	}
}

// TestRunMergeError: merge failures propagate too.
func TestRunMergeError(t *testing.T) {
	data := []byte("a\nb\nc\nd\n")
	boom := errors.New("sink failed")
	err := Run(data, Options{Workers: 2, MinChunk: 1},
		func(src *padsrt.Source, c Chunk) (int, error) { return 0, nil },
		func(c Chunk, r int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink failure", err)
	}
}

func TestRunEmptyInput(t *testing.T) {
	calls := 0
	err := Run(nil, Options{Workers: 4},
		func(src *padsrt.Source, c Chunk) (int, error) { n, _ := scanChunk(src); _ = n; calls++; return 0, nil },
		func(c Chunk, r int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("work called %d times on empty input, want 1", calls)
	}
}

// TestRunCancelThroughSourceOptions: a cancel hook supplied via
// Options.Source reaches every chunk's source, so an expired context aborts
// all workers mid-parse through the runtime's sticky-LimitError path — no
// per-engine cancellation plumbing (docs/ROBUSTNESS.md, deadline
// propagation).
func TestRunCancelThroughSourceOptions(t *testing.T) {
	var data []byte
	for i := 0; i < 4096; i++ {
		data = append(data, fmt.Sprintf("%d|payload-%d\n", i, i*7)...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: every chunk must abort at its first record

	scanned := 0
	err := Run(data,
		Options{Workers: 4, MinChunk: 64, Source: []padsrt.SourceOption{padsrt.WithCancel(ctx.Err)}},
		func(src *padsrt.Source, c Chunk) (int, error) {
			n := 0
			for src.More() {
				ok, err := src.BeginRecord()
				if err != nil {
					return n, err
				}
				if !ok {
					break
				}
				src.SkipToEOR()
				src.EndRecord(&padsrt.PD{})
				n++
			}
			return n, src.Err()
		},
		func(c Chunk, n int) error {
			scanned += n
			return nil
		})
	var le *padsrt.LimitError
	if !errors.As(err, &le) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want LimitError wrapping context.Canceled", err)
	}
	if scanned != 0 {
		t.Fatalf("%d records scanned under a cancelled context, want 0", scanned)
	}
}
