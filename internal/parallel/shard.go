package parallel

import (
	"bytes"

	"pads/internal/padsrt"
	"pads/internal/segment"
)

// Chunk is one record-aligned shard of an input.
type Chunk struct {
	Index   int    // position in chunk order (0-based)
	Data    []byte // the shard's bytes; chunks concatenate to the input
	Off     int64  // byte offset of Data[0] within the sharded input
	RecBase int    // number of records before this chunk
}

// Shard splits data into at most n chunks whose boundaries fall on record
// boundaries under disc, so each chunk parses exactly like the
// corresponding slice of a sequential run. It is a thin wrapper over
// internal/segment's resynchronization (segment.Cuts), which generalizes
// the same boundary search to positional readers for out-of-core jobs; the
// per-discipline rules live there and in docs/PARALLEL.md:
//
//   - newline: a cut is placed just after the next terminator byte at or
//     beyond each target offset; RecBase is the terminator count before the
//     cut.
//   - fixed(W): cuts fall on multiples of W; RecBase is offset/W.
//   - lenprefix: the length headers are walked from the start (an O(records)
//     scan that touches only the headers) and cuts fall on header
//     boundaries.
//   - none/custom disciplines admit no cheap resynchronization: the input
//     stays one chunk and the caller degrades to a sequential parse.
//
// Chunks cover data exactly: no byte is dropped or duplicated. A nil disc
// means the default newline discipline.
func Shard(data []byte, disc padsrt.Discipline, n int) []Chunk {
	cuts, err := segment.Cuts(bytes.NewReader(data), 0, int64(len(data)), disc, n)
	if err != nil {
		// A bytes.Reader cannot fail a bounded read; degrade to one chunk
		// rather than guess at boundaries.
		cuts = nil
	}
	chunks := make([]Chunk, 0, len(cuts)+1)
	prev := segment.Cut{}
	for _, c := range cuts {
		chunks = append(chunks, Chunk{
			Index: len(chunks), Data: data[prev.Off:c.Off], Off: prev.Off, RecBase: prev.Rec,
		})
		prev = c
	}
	chunks = append(chunks, Chunk{
		Index: len(chunks), Data: data[prev.Off:], Off: prev.Off, RecBase: prev.Rec,
	})
	return chunks
}
