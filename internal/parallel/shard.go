package parallel

import (
	"bytes"

	"pads/internal/padsrt"
)

// Chunk is one record-aligned shard of an input.
type Chunk struct {
	Index   int    // position in chunk order (0-based)
	Data    []byte // the shard's bytes; chunks concatenate to the input
	Off     int64  // byte offset of Data[0] within the sharded input
	RecBase int    // number of records before this chunk
}

// Shard splits data into at most n chunks whose boundaries fall on record
// boundaries under disc, so each chunk parses exactly like the
// corresponding slice of a sequential run. The boundary rules per
// discipline (see docs/PARALLEL.md):
//
//   - newline: a cut is placed just after the next terminator byte at or
//     beyond each target offset; RecBase is the terminator count before the
//     cut.
//   - fixed(W): cuts fall on multiples of W; RecBase is offset/W.
//   - lenprefix: the length headers are walked from the start (an O(records)
//     scan that touches only the headers) and cuts fall on header
//     boundaries.
//   - none/custom disciplines admit no cheap resynchronization: the input
//     stays one chunk and the caller degrades to a sequential parse.
//
// Chunks cover data exactly: no byte is dropped or duplicated. A nil disc
// means the default newline discipline.
func Shard(data []byte, disc padsrt.Discipline, n int) []Chunk {
	if disc == nil {
		disc = padsrt.Newline()
	}
	var cuts []cut
	if n > 1 && len(data) > 0 {
		switch d := disc.(type) {
		case *padsrt.NewlineDisc:
			cuts = newlineCuts(data, d.Term, n)
		case *padsrt.FixedDisc:
			cuts = fixedCuts(data, d.Width, n)
		case *padsrt.LenPrefixDisc:
			cuts = lenPrefixCuts(data, d, n)
		}
	}
	chunks := make([]Chunk, 0, len(cuts)+1)
	prev := cut{}
	for _, c := range cuts {
		chunks = append(chunks, Chunk{
			Index: len(chunks), Data: data[prev.off:c.off], Off: int64(prev.off), RecBase: prev.rec,
		})
		prev = c
	}
	chunks = append(chunks, Chunk{
		Index: len(chunks), Data: data[prev.off:], Off: int64(prev.off), RecBase: prev.rec,
	})
	return chunks
}

// cut marks a chunk boundary: a byte offset that starts a record, plus the
// number of records before it.
type cut struct {
	off int
	rec int
}

func newlineCuts(data []byte, term byte, n int) []cut {
	var cuts []cut
	prev := cut{}
	for c := 1; c < n; c++ {
		want := c * len(data) / n
		if want <= prev.off {
			continue
		}
		// Resynchronize: the cut goes just past the next terminator, which
		// by construction starts a fresh record (or ends the input).
		j := bytes.IndexByte(data[want:], term)
		if j < 0 {
			break
		}
		pos := want + j + 1
		if pos >= len(data) {
			break
		}
		rec := prev.rec + bytes.Count(data[prev.off:pos], []byte{term})
		cuts = append(cuts, cut{off: pos, rec: rec})
		prev = cuts[len(cuts)-1]
	}
	return cuts
}

func fixedCuts(data []byte, width, n int) []cut {
	if width <= 0 {
		return nil
	}
	records := (len(data) + width - 1) / width
	var cuts []cut
	prevRec := 0
	for c := 1; c < n; c++ {
		rec := c * records / n
		if rec <= prevRec || rec >= records {
			continue
		}
		cuts = append(cuts, cut{off: rec * width, rec: rec})
		prevRec = rec
	}
	return cuts
}

func lenPrefixCuts(data []byte, d *padsrt.LenPrefixDisc, n int) []cut {
	if d.HeaderBytes <= 0 {
		return nil
	}
	var cuts []cut
	target := len(data) / n
	if target <= 0 {
		target = 1
	}
	pos, rec, nextCut := 0, 0, target
	for pos < len(data) && len(cuts) < n-1 {
		if len(data)-pos < d.HeaderBytes {
			break // truncated final header parses as one short record
		}
		body := 0
		if d.Order == padsrt.BigEndian {
			for i := 0; i < d.HeaderBytes; i++ {
				body = body<<8 | int(data[pos+i])
			}
		} else {
			for i := d.HeaderBytes - 1; i >= 0; i-- {
				body = body<<8 | int(data[pos+i])
			}
		}
		if d.IncludesHeader {
			body -= d.HeaderBytes
		}
		if body < 0 {
			body = 0
		}
		next := pos + d.HeaderBytes + body
		if next > len(data) {
			next = len(data)
		}
		rec++
		pos = next
		if pos >= nextCut && pos < len(data) {
			cuts = append(cuts, cut{off: pos, rec: rec})
			nextCut = pos + target
		}
	}
	return cuts
}
