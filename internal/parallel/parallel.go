// Package parallel is the record-sharded parallel parsing engine: it splits
// an in-memory input into chunks aligned to record boundaries under the
// active padsrt.Discipline, fans the chunks out to worker goroutines — each
// with its own padsrt.Source and parser state — and merges the per-chunk
// results deterministically in chunk order.
//
// The paper's workloads (section 7) are record-oriented scans, which are
// embarrassingly parallel once chunk boundaries respect record framing:
// newline-terminated, fixed-width, and length-prefixed disciplines all
// admit cheap boundary resynchronization (see Shard). Because every chunk
// source carries the absolute byte offset and record number of its start
// (Source.SetBase), parse descriptors, error locations, and record numbers
// come out identical to a sequential run, and the chunk-ordered merge makes
// outputs (echoed records, accumulator reports) deterministic; with one
// worker they are byte-identical to the sequential path.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"pads/internal/padsrt"
	"pads/internal/telemetry"
	"pads/internal/telemetry/prof"
)

// Options configures a parallel run.
type Options struct {
	// Workers is the number of worker goroutines (and chunks); <= 0 means
	// GOMAXPROCS. One worker runs the work function inline, with no
	// goroutines — the sequential path with sharding bookkeeping only.
	Workers int
	// Disc is the record discipline used to align chunk boundaries (nil =
	// newline). Disciplines with no cheap resynchronization (none, custom)
	// degrade to a single chunk.
	Disc padsrt.Discipline
	// Source options applied to each per-chunk Source (discipline, coding,
	// byte order).
	Source []padsrt.SourceOption
	// Off and Records seed each chunk source's SetBase: the absolute byte
	// offset and record count of the sharded region's start within the
	// enclosing input. Callers that parse a header sequentially pass the
	// post-header position here so shard positions match a sequential run.
	Off     int64
	Records int
	// MinChunk is the smallest worthwhile chunk in bytes (default 64 KiB):
	// inputs smaller than Workers*MinChunk get fewer chunks.
	MinChunk int
	// Stats, when non-nil, receives the run's telemetry: every chunk source
	// gets a private telemetry.Stats (chunk sources never share one — a
	// WithStats option in Source is overridden, so counters cannot race),
	// and as each chunk merges, its counters fold into Stats along with a
	// per-worker utilization row (records, bytes, wall time) that makes
	// shard skew visible. Chunks after a failed one are not folded, matching
	// the merge semantics.
	Stats *telemetry.Stats
	// Prof, when non-nil, receives the run's parse-path profile the same
	// way Stats receives counters: every chunk source gets a private worker
	// profiler (Prof.NewWorker — sharing only the concurrency-safe Progress
	// sink), and as each chunk merges, its profiler folds into Prof in
	// chunk order. All folded quantities are commutative, so the
	// deterministic fields of the profile (node counts, bytes, errors, the
	// record-size histogram) are identical to a sequential run's at any
	// worker count.
	Prof *prof.Profiler
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

const defaultMinChunk = 64 * 1024

// Run shards data, applies work to every chunk — concurrently, each on its
// own goroutine with its own borrowed Source — and folds the results with
// merge, called exactly once per successful chunk in chunk order (merge
// runs on the calling goroutine; it needs no locking). The first error from
// work or merge, in chunk order, is returned; merging stops at the first
// failed chunk so downstream output is never built on a hole.
//
// Failed chunks are contained, not fatal (docs/ROBUSTNESS.md): a panic in
// work is recovered into a chunk error, and any chunk whose worker failed
// is re-parsed once on the coordinating goroutine with a fresh Source
// before the run gives up on it. Containment activity is counted in
// Stats.Faults. Only the rescue's result merges, so output stays
// deterministic at any worker count.
func Run[R any](data []byte, opts Options, work func(src *padsrt.Source, c Chunk) (R, error), merge func(c Chunk, r R) error) error {
	workers := opts.workers()
	minChunk := opts.MinChunk
	if minChunk <= 0 {
		minChunk = defaultMinChunk
	}
	nchunks := workers
	if most := len(data)/minChunk + 1; nchunks > most {
		nchunks = most
	}
	chunks := Shard(data, opts.Disc, nchunks)

	// Per-chunk telemetry slots: each is written by exactly one worker and
	// read by the coordinator after that worker's result arrives (the result
	// channel provides the happens-before edge), so no locking is needed.
	var chunkStats []*telemetry.Stats
	var chunkWall []time.Duration
	if opts.Stats != nil {
		chunkStats = make([]*telemetry.Stats, len(chunks))
		chunkWall = make([]time.Duration, len(chunks))
	}
	var chunkProf []*prof.Profiler
	if opts.Prof != nil {
		chunkProf = make([]*prof.Profiler, len(chunks))
	}

	newSource := func(c Chunk) *padsrt.Source {
		src := padsrt.NewBorrowedSource(c.Data, opts.Source...)
		src.SetBase(opts.Off+c.Off, opts.Records+c.RecBase)
		if opts.Stats != nil {
			st := telemetry.NewStats()
			chunkStats[c.Index] = st
			src.SetStats(st)
		} else {
			// Chunk sources must never share one Stats across goroutines;
			// drop any sink a caller-supplied Source option attached.
			src.SetStats(nil)
		}
		if opts.Prof != nil {
			wp := opts.Prof.NewWorker()
			chunkProf[c.Index] = wp
			src.SetProf(wp)
		} else {
			src.SetProf(nil)
		}
		return src
	}

	doWork := func(c Chunk) (R, error) {
		src := newSource(c)
		if opts.Stats == nil && opts.Prof == nil {
			return contain(work, src, c)
		}
		start := time.Now()
		r, err := contain(work, src, c)
		if opts.Stats != nil {
			chunkWall[c.Index] = time.Since(start)
		}
		return r, err
	}

	// rescue re-parses a failed chunk on the coordinating goroutine: a fresh
	// Source (newSource also resets the chunk's Stats slot, so counters from
	// the failed attempt are discarded, not doubled) and one more attempt.
	rescue := func(c Chunk, failure error) (R, error) {
		if opts.Stats != nil {
			opts.Stats.Faults.ChunkFailures++
			opts.Stats.Faults.ChunkRetries++
		}
		r, err := doWork(c)
		if err != nil {
			// Report the retry's error; the original failure rides along.
			return r, fmt.Errorf("%w (first attempt: %v)", err, failure)
		}
		if opts.Stats != nil {
			opts.Stats.Faults.ChunkRescues++
		}
		return r, nil
	}

	// mergeStats folds one merged chunk's counters into opts.Stats (and its
	// profiler into opts.Prof) and adds its per-worker utilization row; it
	// runs on the calling goroutine in chunk order, like merge itself.
	mergeStats := func(c Chunk) {
		if opts.Prof != nil {
			opts.Prof.Merge(chunkProf[c.Index])
		}
		if opts.Stats == nil {
			return
		}
		st := chunkStats[c.Index]
		opts.Stats.Merge(st)
		opts.Stats.Workers = append(opts.Stats.Workers, telemetry.WorkerStat{
			Worker:  c.Index,
			Records: st.Source.RecordsBegun,
			Bytes:   uint64(len(c.Data)),
			WallNS:  chunkWall[c.Index].Nanoseconds(),
		})
	}

	if workers == 1 || len(chunks) == 1 {
		for _, c := range chunks {
			r, err := doWork(c)
			if err != nil {
				if r, err = rescue(c, err); err != nil {
					return err
				}
			}
			mergeStats(c)
			if err := merge(c, r); err != nil {
				return err
			}
		}
		return nil
	}

	type result struct {
		r   R
		err error
	}
	done := make([]chan result, len(chunks))
	for i := range done {
		done[i] = make(chan result, 1)
	}
	sem := make(chan struct{}, workers)
	go func() {
		for i := range chunks {
			sem <- struct{}{}
			go func(c Chunk) {
				defer func() { <-sem }()
				r, err := doWork(c)
				done[c.Index] <- result{r: r, err: err}
			}(chunks[i])
		}
	}()

	var firstErr error
	for i := range chunks {
		res := <-done[i]
		if firstErr != nil {
			continue // drain remaining workers, discarding their results
		}
		if res.err != nil {
			res.r, res.err = rescue(chunks[i], res.err)
			if res.err != nil {
				firstErr = res.err
				continue
			}
		}
		mergeStats(chunks[i])
		if err := merge(chunks[i], res.r); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// contain invokes work, converting a panic into a chunk error (with the
// goroutine's stack, for triage) so a damaged chunk cannot kill the run.
func contain[R any](work func(src *padsrt.Source, c Chunk) (R, error), src *padsrt.Source, c Chunk) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("parallel: chunk %d worker panicked: %v\n%s", c.Index, p, debug.Stack())
		}
	}()
	return work(src, c)
}
