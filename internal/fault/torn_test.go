package fault

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestTornWriterCut(t *testing.T) {
	var sink bytes.Buffer
	w := NewTornWriter(&sink, 10)
	for _, chunk := range []string{"hello ", "torn ", "world"} {
		n, err := w.Write([]byte(chunk))
		if n != len(chunk) || err != nil {
			t.Fatalf("Write(%q) = (%d, %v); a torn write must report full success", chunk, n, err)
		}
	}
	if got := sink.String(); got != "hello torn" {
		t.Fatalf("sink holds %q, want the first 10 bytes only", got)
	}
	if !w.Torn() {
		t.Fatal("Torn() false after the cut")
	}
}

func TestTornWriterTransparent(t *testing.T) {
	var sink bytes.Buffer
	w := NewTornWriter(&sink, -1)
	w.Write([]byte("everything "))
	w.Write([]byte("passes through"))
	if got := sink.String(); got != "everything passes through" {
		t.Fatalf("sink holds %q", got)
	}
	if w.Torn() {
		t.Fatal("transparent writer reports torn")
	}
}

func TestTearTailDeterministic(t *testing.T) {
	content := []byte("first line intact\nsecond line intact\nfinal line gets torn somewhere\n")
	dir := t.TempDir()
	tear := func(seed uint64) []byte {
		p := filepath.Join(dir, "f")
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := TearTail(p, seed); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := tear(42), tear(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed tore differently")
	}
	if len(a) >= len(content) {
		t.Fatal("tear removed nothing")
	}
	if a[len(a)-1] == '\n' {
		t.Fatal("torn file still ends on a record boundary")
	}
	if !bytes.HasPrefix(content, a) {
		t.Fatal("tear changed bytes instead of truncating")
	}
	if !bytes.HasPrefix(a, []byte("first line intact\nsecond line intact\n")) {
		t.Fatal("tear reached past the final line")
	}
}

func TestTearTailShortFiles(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearTail(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearTail(p, 1); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(p)
	if len(b) != 1 || b[0] != 'x' {
		t.Fatalf("two-byte file torn to %q, want just the terminator dropped", b)
	}
}
