package fault

import (
	"bytes"
	"io"
	"os"
)

// TornWriter models a torn write: the partial-flush failure mode of a crash
// or power cut, where an append that the application believed succeeded only
// partially reached the disk. It writes through to the underlying writer
// until a byte budget is exhausted, then silently drops everything after the
// cut — every Write still reports full success, exactly as a crashed
// process experienced it. The robustness suite points one at a journal or
// quarantine file to produce the torn tails resume must tolerate
// (docs/ROBUSTNESS.md).
type TornWriter struct {
	w      io.Writer
	remain int64 // bytes still written through; negative = unlimited
	torn   bool  // the cut has happened
}

// NewTornWriter wraps w, writing the first n bytes through and silently
// dropping the rest. n < 0 never tears (a transparent wrapper).
func NewTornWriter(w io.Writer, n int64) *TornWriter {
	return &TornWriter{w: w, remain: n}
}

// Torn reports whether the cut point has been reached.
func (t *TornWriter) Torn() bool { return t.torn }

// Write implements io.Writer. It always reports len(p), nil — a torn write
// is invisible to the writer that issued it.
func (t *TornWriter) Write(p []byte) (int, error) {
	if t.remain < 0 {
		return t.w.Write(p)
	}
	if t.torn {
		return len(p), nil
	}
	keep := int64(len(p))
	if keep >= t.remain {
		keep = t.remain
		t.torn = true
	}
	t.remain -= keep
	if keep > 0 {
		if n, err := t.w.Write(p[:keep]); err != nil {
			return n, err
		}
	}
	return len(p), nil
}

// TearTail truncates the file so its final line is cut mid-way — the
// post-crash shape of a JSONL journal whose last append was torn. seed
// picks the cut point deterministically within the final line (at least one
// byte of the line is dropped, at least the terminator; a file whose last
// line is shorter than two bytes just loses the terminator). Files with no
// content are left alone.
func TearTail(path string, seed uint64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	end := len(data)
	if data[end-1] == '\n' {
		end-- // the terminator always goes
	}
	lineStart := bytes.LastIndexByte(data[:end], '\n') + 1
	cut := end
	if span := end - lineStart; span > 1 {
		r := rng(splitmix(seed))
		cut = lineStart + 1 + r.intn(span-1) // keep >= 1 byte, drop >= 1 byte
	}
	return os.Truncate(path, int64(cut))
}
