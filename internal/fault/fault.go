// Package fault is the fault-injection harness for the runtime's
// robustness suite: a deterministic, seed-driven io.Reader wrapper that
// simulates the systems failures ad hoc data pipelines actually see —
// short reads, transient (retryable) errors, byte corruption, truncation,
// and hard mid-stream failures.
//
// The paper's thesis (sections 4-5) is that parsing never dies on bad
// data: every error lands in a parse descriptor and panic-mode resync
// recovers at the next record. This package exists to extend that promise
// from semantic errors to systems errors, and to make the extension
// testable: every fault sequence is a pure function of the seed, so a
// failing run replays exactly.
//
// Nothing in the runtime imports this package; padsrt recognizes
// transient errors structurally (any error whose chain implements
// Temporary() bool), so production readers with their own transient
// errors (net.OpError, syscall.EAGAIN wrappers) retry the same way.
package fault

import (
	"errors"
	"fmt"
	"io"
)

// TransientError is a retryable read failure, the injected stand-in for
// EAGAIN-class errors. It implements Temporary() bool, the structural
// signal padsrt's retry loop (and net.Error consumers generally) look for.
type TransientError struct {
	Off int64 // stream offset at which the fault fired
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: injected transient read error at offset %d", e.Off)
}

// Temporary marks the error as retryable.
func (e *TransientError) Temporary() bool { return true }

// ErrInjected is the permanent failure delivered at Config.FailAt when no
// FailErr is supplied.
var ErrInjected = errors.New("fault: injected permanent read failure")

// Config selects which faults a Reader injects. The zero value injects
// nothing: a zero-config Reader is a transparent wrapper.
type Config struct {
	// Seed drives every probabilistic decision. Equal seeds and equal
	// underlying read sequences produce byte-identical fault sequences.
	Seed uint64

	// ShortReadProb is the per-call probability that a Read delivers
	// fewer bytes than requested (at least 1), exercising window refill
	// paths that full-buffer reads never reach.
	ShortReadProb float64

	// TransientProb is the per-call probability that a Read fails with a
	// *TransientError before delivering any data.
	TransientProb float64

	// MaxTransientRun caps consecutive transient failures so a
	// retry-enabled consumer always makes progress (default 3).
	MaxTransientRun int

	// CorruptProb is the per-byte probability that a delivered byte is
	// XOR-flipped, modeling line noise and torn writes.
	CorruptProb float64

	// TruncateAt, when > 0, ends the stream with a clean io.EOF after
	// that many bytes, modeling a truncated file or a dropped connection
	// the kernel reports as EOF.
	TruncateAt int64

	// FailAt, when > 0, delivers FailErr (default ErrInjected) once that
	// many bytes have been read: a hard, non-retryable mid-stream fault.
	FailAt  int64
	FailErr error
}

// Reader wraps an io.Reader, injecting the configured faults
// deterministically. Reader is not safe for concurrent use, matching the
// io.Reader contract.
type Reader struct {
	r    io.Reader
	cfg  Config
	rng  rng
	off  int64 // bytes delivered downstream so far
	run  int   // consecutive transient failures delivered
	done bool  // truncation point reached
}

// NewReader wraps r with the configured fault injector.
func NewReader(r io.Reader, cfg Config) *Reader {
	if cfg.MaxTransientRun <= 0 {
		cfg.MaxTransientRun = 3
	}
	if cfg.FailErr == nil {
		cfg.FailErr = ErrInjected
	}
	return &Reader{r: r, cfg: cfg, rng: rng(splitmix(cfg.Seed))}
}

// Offset reports how many bytes have been delivered downstream.
func (f *Reader) Offset() int64 { return f.off }

// Read implements io.Reader with fault injection.
func (f *Reader) Read(p []byte) (int, error) {
	if f.done || (f.cfg.TruncateAt > 0 && f.off >= f.cfg.TruncateAt) {
		f.done = true
		return 0, io.EOF
	}
	if f.cfg.FailAt > 0 && f.off >= f.cfg.FailAt {
		return 0, f.cfg.FailErr
	}
	if len(p) == 0 {
		return f.r.Read(p)
	}
	// Transient failure before any data moves.
	if f.cfg.TransientProb > 0 && f.run < f.cfg.MaxTransientRun && f.rng.chance(f.cfg.TransientProb) {
		f.run++
		return 0, &TransientError{Off: f.off}
	}
	f.run = 0

	limit := len(p)
	if f.cfg.TruncateAt > 0 {
		if rem := f.cfg.TruncateAt - f.off; int64(limit) > rem {
			limit = int(rem)
		}
	}
	if f.cfg.FailAt > 0 {
		if rem := f.cfg.FailAt - f.off; int64(limit) > rem {
			limit = int(rem)
		}
	}
	if f.cfg.ShortReadProb > 0 && limit > 1 && f.rng.chance(f.cfg.ShortReadProb) {
		limit = 1 + f.rng.intn(limit)
	}

	n, err := f.r.Read(p[:limit])
	if n > 0 && f.cfg.CorruptProb > 0 {
		for i := 0; i < n; i++ {
			if f.rng.chance(f.cfg.CorruptProb) {
				p[i] ^= byte(1 + f.rng.intn(255)) // never a zero mask
			}
		}
	}
	f.off += int64(n)
	if err == nil && f.cfg.TruncateAt > 0 && f.off >= f.cfg.TruncateAt {
		f.done = true
	}
	return n, err
}

// Corrupt returns a copy of data with roughly rate*len(data) bytes
// XOR-flipped, chosen deterministically from seed: the in-memory
// counterpart of Reader's CorruptProb for exercising the parallel engine,
// whose inputs are byte slices rather than streams.
func Corrupt(data []byte, seed uint64, rate float64) []byte {
	out := append([]byte(nil), data...)
	r := rng(splitmix(seed))
	for i := range out {
		if r.chance(rate) {
			out[i] ^= byte(1 + r.intn(255))
		}
	}
	return out
}

// CorruptKeeping is Corrupt, but bytes equal to keep (typically the record
// terminator) are left intact, so record framing survives and every error
// stays localized to one record — the shape of most real-world corruption
// against line-oriented feeds.
func CorruptKeeping(data []byte, seed uint64, rate float64, keep byte) []byte {
	out := append([]byte(nil), data...)
	r := rng(splitmix(seed))
	for i := range out {
		if r.chance(rate) {
			m := byte(1 + r.intn(255))
			if out[i] == keep || out[i]^m == keep {
				continue
			}
			out[i] ^= m
		}
	}
	return out
}

// rng is a splitmix64 sequence: tiny, fast, and stable across Go releases
// (unlike math/rand, whose stream is not a compatibility promise), so
// recorded seeds in regression tests replay forever.
type rng uint64

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) next() uint64 {
	v := splitmix(uint64(*r))
	*r = rng(uint64(*r) + 0x9e3779b97f4a7c15)
	return v
}

// chance reports true with probability p.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/float64(1<<53) < p
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}
