package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// drain reads r to completion with a fixed buffer size, recording the bytes
// delivered and every error seen along the way (transient errors are noted
// and retried).
func drain(t *testing.T, r io.Reader, bufSize int) (data []byte, transients int, finalErr error) {
	t.Helper()
	buf := make([]byte, bufSize)
	for i := 0; ; i++ {
		if i > 1<<20 {
			t.Fatal("reader did not terminate")
		}
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			return data, transients, nil
		default:
			var te *TransientError
			if errors.As(err, &te) {
				transients++
				continue
			}
			return data, transients, err
		}
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	payload := strings.Repeat("hello, world\n", 100)
	r := NewReader(strings.NewReader(payload), Config{})
	got, transients, err := drain(t, r, 97)
	if err != nil || transients != 0 {
		t.Fatalf("zero config injected faults: %d transients, err %v", transients, err)
	}
	if string(got) != payload {
		t.Fatalf("zero config altered the data")
	}
	if r.Offset() != int64(len(payload)) {
		t.Fatalf("Offset = %d, want %d", r.Offset(), len(payload))
	}
}

// TestDeterministic is the replay contract: equal seeds and equal read
// patterns produce byte-identical output and identical fault sequences.
func TestDeterministic(t *testing.T) {
	payload := strings.Repeat("abcdefghij\n", 500)
	cfg := Config{Seed: 42, ShortReadProb: 0.3, TransientProb: 0.2, CorruptProb: 0.01}
	run := func() ([]byte, int) {
		got, transients, err := drain(t, NewReader(strings.NewReader(payload), cfg), 64)
		if err != nil {
			t.Fatal(err)
		}
		return got, transients
	}
	a, at := run()
	b, bt := run()
	if !bytes.Equal(a, b) || at != bt {
		t.Fatalf("same seed diverged: %d vs %d transients, data equal=%v", at, bt, bytes.Equal(a, b))
	}
	if bytes.Equal(a, []byte(payload)) {
		t.Fatal("corruption rate 0.01 over 5500 bytes flipped nothing")
	}
	c, _, err := drain(t, NewReader(strings.NewReader(payload), Config{Seed: 43, ShortReadProb: 0.3, TransientProb: 0.2, CorruptProb: 0.01}), 64)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestTruncateAt(t *testing.T) {
	payload := strings.Repeat("x", 1000)
	got, _, err := drain(t, NewReader(strings.NewReader(payload), Config{TruncateAt: 137}), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 137 {
		t.Fatalf("delivered %d bytes, want 137", len(got))
	}
}

func TestFailAt(t *testing.T) {
	payload := strings.Repeat("x", 1000)
	sentinel := errors.New("boom")
	got, _, err := drain(t, NewReader(strings.NewReader(payload), Config{FailAt: 200, FailErr: sentinel}), 64)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if len(got) != 200 {
		t.Fatalf("delivered %d bytes before failure, want 200", len(got))
	}
	// Default error.
	_, _, err = drain(t, NewReader(strings.NewReader(payload), Config{FailAt: 1}), 64)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// TestTransientRunCap: even at TransientProb 1, MaxTransientRun bounds
// consecutive failures so a retrying consumer always progresses.
func TestTransientRunCap(t *testing.T) {
	payload := strings.Repeat("y", 256)
	got, transients, err := drain(t, NewReader(strings.NewReader(payload), Config{TransientProb: 1, MaxTransientRun: 2}), 32)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("payload damaged by transient-only faults")
	}
	if transients == 0 {
		t.Fatal("no transient errors at probability 1")
	}
}

// TestTemporarySignal: the transient error advertises retryability the way
// net.Error does, through an errors.As-discoverable Temporary() bool.
func TestTemporarySignal(t *testing.T) {
	var err error = &TransientError{Off: 7}
	var te interface{ Temporary() bool }
	if !errors.As(err, &te) || !te.Temporary() {
		t.Fatal("TransientError does not advertise Temporary() == true")
	}
}

func TestCorruptKeeping(t *testing.T) {
	data := []byte(strings.Repeat("abcde\n", 200))
	out := CorruptKeeping(data, 7, 0.2, '\n')
	if bytes.Equal(out, data) {
		t.Fatal("rate 0.2 flipped nothing")
	}
	if bytes.Count(out, []byte("\n")) != bytes.Count(data, []byte("\n")) {
		t.Fatal("CorruptKeeping changed the newline count")
	}
	for i := range data {
		if (data[i] == '\n') != (out[i] == '\n') {
			t.Fatalf("newline at offset %d not preserved", i)
		}
	}
	if !bytes.Equal(Corrupt(data, 7, 0.2), Corrupt(data, 7, 0.2)) {
		t.Fatal("Corrupt is not deterministic")
	}
}
