package sirius

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pads/internal/datagen"
	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func interpreter(t *testing.T) *interp.Interp {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "sirius.pads"))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return interp.New(desc)
}

func figure3(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "sirius.sample"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestGeneratedParsesFigure3(t *testing.T) {
	s := padsrt.NewBytesSource(figure3(t))
	var hpd padsrt.PD
	var hdr Summary_header_t
	var hdrPD Summary_header_tPD
	_ = hpd
	ReadSummary_header_t(s, nil, &hdrPD, &hdr)
	if hdrPD.PD.Nerr != 0 || hdr.Tstamp != 1005022800 {
		t.Fatalf("header = %+v pd=%v", hdr, hdrPD.PD)
	}
	var entries []Entry_t
	for s.More() {
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(s, nil, &epd, &e)
		if epd.PD.Nerr != 0 {
			t.Fatalf("entry errors: %v", epd.PD)
		}
		entries = append(entries, e)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	e0 := entries[0]
	if e0.Header.Order_num != 9152 {
		t.Errorf("order_num = %d", e0.Header.Order_num)
	}
	if !e0.Header.Service_tn.Present || e0.Header.Service_tn.Val != 9735551212 {
		t.Errorf("service_tn = %+v", e0.Header.Service_tn)
	}
	if e0.Header.Nlp_service_tn.Present {
		t.Error("nlp_service_tn should be absent")
	}
	if !e0.Header.Zip_code.Present || e0.Header.Zip_code.Val != "07988" {
		t.Errorf("zip = %+v", e0.Header.Zip_code)
	}
	if e0.Header.Ramp.Tag != Dib_ramp_tTagGenRamp || e0.Header.Ramp.GenRamp.Id != 152272 {
		t.Errorf("ramp = %+v", e0.Header.Ramp)
	}
	if len(e0.Events.Elems) != 1 || e0.Events.Elems[0].State != "10" {
		t.Errorf("events = %+v", e0.Events)
	}
	e1 := entries[1]
	if e1.Header.Ramp.Tag != Dib_ramp_tTagRamp || e1.Header.Ramp.Ramp != 152268 {
		t.Errorf("entry1 ramp = %+v", e1.Header.Ramp)
	}
	if len(e1.Events.Elems) != 2 || e1.Events.Elems[1].State != "LOC_OS_10" {
		t.Errorf("entry1 events = %+v", e1.Events)
	}
}

func TestGeneratedWriteRoundTrip(t *testing.T) {
	data := figure3(t)
	s := padsrt.NewBytesSource(data)
	var hdr Summary_header_t
	var hdrPD Summary_header_tPD
	ReadSummary_header_t(s, nil, &hdrPD, &hdr)
	out := WriteSummary_header_t(nil, &hdr)
	for s.More() {
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(s, nil, &epd, &e)
		out = WriteEntry_t(out, &e)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("round trip mismatch:\n--- in\n%s\n--- out\n%s", data, out)
	}
}

// TestDifferentialAgainstInterp runs the generated parser and the
// interpreter over the same synthetic corpus (with injected errors) and
// demands identical values and identical error counts per record.
func TestDifferentialAgainstInterp(t *testing.T) {
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(500)
	cfg.SortViolations = 3
	cfg.SyntaxErrors = 7
	if _, err := datagen.Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Three-way IR conformance: the reference AST walk, the bytecode VM
	// (interp.New), and the generated code over the same corpus.
	in := interpreter(t)
	si := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(si, nil)
	if err != nil {
		t.Fatal(err)
	}
	ast := interp.NewAST(in.Desc)
	ra, err := ast.NewRecordReader(padsrt.NewBytesSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := value.DiffFull(ra.Header(), rr.Header()); d != "" {
		t.Fatalf("AST walk and VM headers differ: %s", d)
	}

	sg := padsrt.NewBytesSource(data)
	var hdr Summary_header_t
	var hdrPD Summary_header_tPD
	ReadSummary_header_t(sg, nil, &hdrPD, &hdr)
	if !value.Equal(Summary_header_tToValue(&hdr, &hdrPD), rr.Header()) {
		t.Fatal("headers differ")
	}

	rec := 0
	for rr.More() {
		iv := rr.Read()
		if !ra.More() {
			t.Fatalf("AST reader ran out at record %d", rec)
		}
		if d := value.DiffFull(ra.Read(), iv); d != "" {
			t.Fatalf("record %d: AST walk and VM differ: %s", rec, d)
		}
		if !sg.More() {
			t.Fatalf("generated parser ran out at record %d", rec)
		}
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(sg, nil, &epd, &e)
		gv := Entry_tToValue(&e, &epd)
		ipd, gpd := iv.PD(), gv.PD()
		if (ipd.Nerr == 0) != (gpd.Nerr == 0) {
			t.Fatalf("record %d: interp nerr=%d generated nerr=%d", rec, ipd.Nerr, gpd.Nerr)
		}
		if ipd.Nerr == 0 && !value.Equal(iv, gv) {
			t.Fatalf("record %d values differ:\ninterp:    %s\ngenerated: %s", rec, value.String(iv), value.String(gv))
		}
		if ipd.Nerr > 0 && ipd.ErrCode.Class() != gpd.ErrCode.Class() {
			t.Fatalf("record %d: error class differs: %v vs %v", rec, ipd.ErrCode, gpd.ErrCode)
		}
		rec++
	}
	if sg.More() {
		t.Fatal("generated parser has records left over")
	}
	if rec != 500 {
		t.Fatalf("records = %d", rec)
	}
}

// TestFigure7Normalize is experiment E5: the vet/normalize program of
// Figure 7 — mask off the timestamp-sort check, unify the two missing-phone
// representations, verify, and write back.
func TestFigure7Normalize(t *testing.T) {
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(200)
	cfg.SortViolations = 5 // would be errors if the mask checked sorting
	cfg.SyntaxErrors = 3
	st, err := datagen.Sirius(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// mask.events.compoundLevel = P_Set (Figure 7).
	mask := NewEntry_tMask(padsrt.CheckAndSet)
	mask.Events.CompoundLevel = padsrt.Set

	s := padsrt.NewBytesSource(buf.Bytes())
	var hdr Summary_header_t
	var hdrPD Summary_header_tPD
	ReadSummary_header_t(s, nil, &hdrPD, &hdr)

	var clean, errRecs, transformFailed int
	var cleanOut, errOut []byte
	for s.More() {
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(s, mask, &epd, &e)
		if epd.PD.Nerr > 0 {
			errRecs++
			errOut = WriteEntry_t(errOut, &e)
			continue
		}
		cnvPhoneNumbers(&e)
		if !VerifyEntry_t(&e) {
			// Verify re-checks everything, including the sort the mask
			// skipped: the Figure 7 program's error(2) path.
			transformFailed++
			continue
		}
		clean++
		cleanOut = WriteEntry_t(cleanOut, &e)
	}
	if errRecs != st.SyntaxErrors {
		t.Errorf("error records = %d, want %d (sort violations are masked off)", errRecs, st.SyntaxErrors)
	}
	if transformFailed != st.SortViolations {
		t.Errorf("verify rejected %d records, want the %d sort violations", transformFailed, st.SortViolations)
	}
	if clean != st.Records-st.SyntaxErrors-st.SortViolations {
		t.Errorf("clean records = %d", clean)
	}
	// The cleaned output contains no "|0|" phone representation in the
	// four phone columns: re-parse and check.
	s2 := padsrt.NewBytesSource(cleanOut)
	for s2.More() {
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(s2, mask, &epd, &e)
		if epd.PD.Nerr > 0 {
			t.Fatalf("cleaned output does not re-parse: %v", epd.PD)
		}
		for _, tn := range []padsrt.Opt[Pn_t]{e.Header.Service_tn, e.Header.Billing_tn, e.Header.Nlp_service_tn, e.Header.Nlp_billing_tn} {
			if tn.Present && tn.Val == 0 {
				t.Fatal("zero phone number survived normalization")
			}
		}
	}
}

// cnvPhoneNumbers unifies the two representations of unavailable phone
// numbers: the literal 0 becomes the absent optional (section 5.1.1).
func cnvPhoneNumbers(e *Entry_t) {
	fix := func(tn *padsrt.Opt[Pn_t]) {
		if tn.Present && tn.Val == 0 {
			tn.Present = false
			tn.Val = 0
		}
	}
	fix(&e.Header.Service_tn)
	fix(&e.Header.Billing_tn)
	fix(&e.Header.Nlp_service_tn)
	fix(&e.Header.Nlp_billing_tn)
}

func TestVerifyCatchesBrokenTransform(t *testing.T) {
	s := padsrt.NewBytesSource(figure3(t))
	var hdr Summary_header_t
	var hdrPD Summary_header_tPD
	ReadSummary_header_t(s, nil, &hdrPD, &hdr)
	var e Entry_t
	var epd Entry_tPD
	ReadEntry_t(s, nil, &epd, &e)
	if !VerifyEntry_t(&e) {
		t.Fatal("clean entry should verify")
	}
	// Break the event-sequence sort order; Verify must notice.
	s2 := padsrt.NewBytesSource(figure3(t))
	ReadSummary_header_t(s2, nil, &hdrPD, &hdr)
	ReadEntry_t(s2, nil, &epd, &e) // entry with 1 event
	var e2 Entry_t
	ReadEntry_t(s2, nil, &epd, &e2) // entry with 2 events
	e2.Events.Elems[0].Tstamp, e2.Events.Elems[1].Tstamp = e2.Events.Elems[1].Tstamp, e2.Events.Elems[0].Tstamp
	if VerifyEntry_t(&e2) {
		t.Fatal("verify missed an unsorted event sequence")
	}
}

func TestMaskedReadSkipsSortCheck(t *testing.T) {
	data := []byte("1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000\n")
	// Full checking flags the sort violation.
	s := padsrt.NewBytesSource(data)
	var e Entry_t
	var epd Entry_tPD
	ReadEntry_t(s, nil, &epd, &e)
	if epd.Events.PD.ErrCode != padsrt.ErrWhere {
		t.Fatalf("events pd = %v, want ErrWhere", epd.Events.PD)
	}
	// Masked off: clean.
	mask := NewEntry_tMask(padsrt.CheckAndSet)
	mask.Events.CompoundLevel = padsrt.Set
	s = padsrt.NewBytesSource(data)
	ReadEntry_t(s, mask, &epd, &e)
	if epd.PD.Nerr != 0 {
		t.Fatalf("masked read flagged: %v", epd.PD)
	}
}

func TestGeneratedStreaming(t *testing.T) {
	// Allocation behavior: record structs are reused across iterations.
	var buf bytes.Buffer
	if _, err := datagen.Sirius(&buf, datagen.SiriusConfig{Records: 2000, MinEvents: 1, MaxEvents: 10, MeanEvents: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	s := padsrt.NewBytesSource(buf.Bytes())
	var hdr Summary_header_t
	var hdrPD Summary_header_tPD
	ReadSummary_header_t(s, nil, &hdrPD, &hdr)
	var e Entry_t
	var epd Entry_tPD
	n := 0
	for s.More() {
		ReadEntry_t(s, nil, &epd, &e)
		n++
	}
	if n != 2000 {
		t.Fatalf("records = %d", n)
	}
}
