package kitchen

import (
	"os"
	"path/filepath"
	"testing"

	"pads/internal/datagen"
	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func load(t *testing.T) (*sema.Desc, *interp.Interp) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "kitchen.pads"))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return desc, interp.New(desc)
}

// TestThreeWayDifferential closes the loop over every language construct:
// the generic generator produces random conforming instances, which must
// parse cleanly and identically through BOTH the interpreter and the
// generated parser, and the generated writer must reproduce the bytes.
func TestThreeWayDifferential(t *testing.T) {
	desc, in := load(t)
	for seed := uint64(1); seed <= 40; seed++ {
		g := datagen.NewGenerator(desc, seed)
		data, err := g.GenerateSource()
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}

		// Interpreter (the bytecode VM), checked against the reference AST
		// walk descriptor-for-descriptor.
		iv, err := in.ParseSource(padsrt.NewBytesSource(data))
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		if iv.PD().Nerr != 0 {
			t.Fatalf("seed %d: interp flagged generated data: %v\n%s", seed, iv.PD(), data)
		}
		av, err := interp.NewAST(desc).ParseSource(padsrt.NewBytesSource(data))
		if err != nil {
			t.Fatalf("seed %d: AST walk: %v", seed, err)
		}
		if d := value.DiffFull(av, iv); d != "" {
			t.Fatalf("seed %d: AST walk and VM differ: %s", seed, d)
		}

		// Generated parser.
		s := padsrt.NewBytesSource(data)
		garr := &value.Array{Common: value.NewCommon("blobs_t")}
		var out []byte
		for s.More() {
			var b Blob_t
			var pd Blob_tPD
			ReadBlob_t(s, nil, &pd, &b)
			if pd.PD.Nerr != 0 {
				t.Fatalf("seed %d: generated parser flagged: %v\n%s", seed, pd.PD, data)
			}
			garr.Elems = append(garr.Elems, Blob_tToValue(&b, &pd))
			out = WriteBlob_t(out, &b)
		}

		if !value.Equal(iv, garr) {
			t.Fatalf("seed %d: interp and generated parser disagree:\ninterp:    %s\ngenerated: %s",
				seed, value.String(iv), value.String(garr))
		}
		if string(out) != string(data) {
			t.Fatalf("seed %d: write-back differs:\n in: %q\nout: %q", seed, data, out)
		}
	}
}

func TestKitchenHandWritten(t *testing.T) {
	// A hand-written instance covering specific branch/opt combinations.
	line := "7||RED|1|513|1,2;3,4!/!|abc|2.5|1005022800|tail text\n"
	s := padsrt.NewBytesSource([]byte(line))
	var b Blob_t
	var pd Blob_tPD
	ReadBlob_t(s, nil, &pd, &b)
	if pd.PD.Nerr != 0 {
		t.Fatalf("pd = %v", pd.PD)
	}
	if b.Id != 7 {
		t.Errorf("id = %d", b.Id)
	}
	if b.Origin.Present {
		t.Error("origin should be absent")
	}
	if b.Shade.Tag != Shade_tTagNamed || b.Shade.Named != Color_t_RED {
		t.Errorf("shade = %+v", b.Shade)
	}
	if b.Tag.Tag != Tagged_tTagSmall || b.Tag.Small != 513 {
		t.Errorf("tag = %+v", b.Tag)
	}
	if len(b.Grid.Elems) != 2 {
		t.Fatalf("grid = %+v", b.Grid)
	}
	if len(b.Grid.Elems[0].Elems) != 2 || b.Grid.Elems[0].Elems[1].Y != 4 {
		t.Errorf("grid[0] = %+v", b.Grid.Elems[0])
	}
	if len(b.Grid.Elems[1].Elems) != 0 {
		t.Errorf("grid[1] should be empty: %+v", b.Grid.Elems[1])
	}
	if b.Word != "abc" || b.Ratio != 2.5 || b.Stamp.Sec != 1005022800 {
		t.Errorf("tail fields: %+v", b)
	}
	if b.Trailer != "tail text" {
		t.Errorf("trailer = %q", b.Trailer)
	}
	// Round trip.
	out := WriteBlob_t(nil, &b)
	if string(out) != line {
		t.Errorf("write-back:\n in: %q\nout: %q", line, out)
	}
	// Switched-union default branch.
	line2 := "9|5,6|200|9|x|!/!|zz|0.5|1005022800|t\n"
	s2 := padsrt.NewBytesSource([]byte(line2))
	ReadBlob_t(s2, nil, &pd, &b)
	if pd.PD.Nerr != 0 {
		t.Fatalf("pd2 = %v", pd.PD)
	}
	if b.Tag.Tag != Tagged_tTagOther || b.Tag.Other != 'x' {
		t.Errorf("default branch = %+v", b.Tag)
	}
	if !b.Origin.Present || b.Origin.Val.X != 5 || b.Origin.Val.Y != 6 {
		t.Errorf("origin = %+v", b.Origin)
	}
	if b.Shade.Tag != Shade_tTagGray || b.Shade.Gray != 200 {
		t.Errorf("shade = %+v", b.Shade)
	}
}
