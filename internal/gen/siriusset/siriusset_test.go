package siriusset

import (
	"bytes"
	"testing"

	"pads/internal/datagen"
	"pads/internal/gen/sirius"
	"pads/internal/padsrt"
	"pads/internal/value"
)

// The Set-specialized parser (checking compiled out, §9 partial evaluation)
// must produce exactly the values the general parser produces under a
// run-time Set mask, and flag only syntax errors (never semantic ones).
func TestSpecializedMatchesRuntimeSetMask(t *testing.T) {
	var buf bytes.Buffer
	cfg := datagen.DefaultSirius(300)
	cfg.SortViolations = 4 // semantic: must NOT be flagged with checking off
	cfg.SyntaxErrors = 3   // syntactic: still flagged
	st, err := datagen.Sirius(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	setMask := sirius.NewEntry_tMask(padsrt.Set)

	sa := padsrt.NewBytesSource(data)
	sb := padsrt.NewBytesSource(data)
	var ha sirius.Summary_header_t
	var hpa sirius.Summary_header_tPD
	sirius.ReadSummary_header_t(sa, sirius.NewSummary_header_tMask(padsrt.Set), &hpa, &ha)
	var hb Summary_header_t
	var hpb Summary_header_tPD
	ReadSummary_header_t(sb, nil, &hpb, &hb)

	bad := 0
	for rec := 0; sa.More(); rec++ {
		if !sb.More() {
			t.Fatalf("specialized parser ran out at record %d", rec)
		}
		var ea sirius.Entry_t
		var pa sirius.Entry_tPD
		sirius.ReadEntry_t(sa, setMask, &pa, &ea)
		var eb Entry_t
		var pb Entry_tPD
		ReadEntry_t(sb, nil, &pb, &eb)
		if (pa.PD.Nerr == 0) != (pb.PD.Nerr == 0) {
			t.Fatalf("record %d: runtime nerr=%d specialized nerr=%d", rec, pa.PD.Nerr, pb.PD.Nerr)
		}
		if pb.PD.Nerr > 0 {
			bad++
			continue
		}
		va := sirius.Entry_tToValue(&ea, &pa)
		vb := Entry_tToValue(&eb, &pb)
		if !value.Equal(va, vb) {
			t.Fatalf("record %d values differ:\nruntime:     %s\nspecialized: %s",
				rec, value.String(va), value.String(vb))
		}
	}
	if bad != st.SyntaxErrors {
		t.Errorf("specialized parser flagged %d records, want only the %d syntax errors (sort violations are unchecked)", bad, st.SyntaxErrors)
	}
}

func TestSpecializedCodeHasNoMaskTests(t *testing.T) {
	// Behavior above proves equivalence; this guards the partial
	// evaluation itself: a Verify call on a clean record still works.
	data := []byte("1|1|1|0|0|0|0||1|T|0|u|s|A|1000|B|2000\n")
	s := padsrt.NewBytesSource(data)
	var e Entry_t
	var pd Entry_tPD
	ReadEntry_t(s, nil, &pd, &e)
	if pd.PD.Nerr != 0 {
		t.Fatalf("pd = %v", pd.PD)
	}
	if !VerifyEntry_t(&e) {
		t.Fatal("verify failed on clean record")
	}
}
