package clf

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pads/internal/datagen"
	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func figure2(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "clf.sample"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestGeneratedParsesFigure2(t *testing.T) {
	s := padsrt.NewBytesSource(figure2(t))
	var recs []Entry_t
	for s.More() {
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(s, nil, &epd, &e)
		if epd.PD.Nerr != 0 {
			t.Fatalf("errors: %v", epd.PD)
		}
		recs = append(recs, e)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	r0 := recs[0]
	if r0.Client.Tag != Client_tTagIp || padsrt.FormatIP(r0.Client.Ip) != "207.136.97.49" {
		t.Errorf("client = %+v", r0.Client)
	}
	if r0.RemoteID.Tag != Auth_id_tTagUnauthorized {
		t.Errorf("remoteID = %+v", r0.RemoteID)
	}
	if r0.Request.Meth != Method_t_GET || r0.Request.Meth.String() != "GET" {
		t.Errorf("method = %v", r0.Request.Meth)
	}
	if r0.Request.Req_uri != "/tk/p.txt" {
		t.Errorf("uri = %q", r0.Request.Req_uri)
	}
	if r0.Request.Version.Major != 1 || r0.Request.Version.Minor != 0 {
		t.Errorf("version = %+v", r0.Request.Version)
	}
	if r0.Response != 200 || r0.Length != 30 {
		t.Errorf("response/length = %d/%d", r0.Response, r0.Length)
	}
	if r0.Date.Raw != "15/Oct/1997:18:46:51 -0700" {
		t.Errorf("date = %+v", r0.Date)
	}
	r1 := recs[1]
	if r1.Client.Tag != Client_tTagHost || r1.Client.Host != "tj62.aol.com" {
		t.Errorf("client1 = %+v", r1.Client)
	}
	if r1.Request.Meth != Method_t_POST {
		t.Errorf("method1 = %v", r1.Request.Meth)
	}
}

func TestGeneratedWriteRoundTrip(t *testing.T) {
	data := figure2(t)
	s := padsrt.NewBytesSource(data)
	var out []byte
	for s.More() {
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(s, nil, &epd, &e)
		out = WriteEntry_t(out, &e)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("round trip mismatch:\n--- in\n%s\n--- out\n%s", data, out)
	}
}

func TestResponseConstraintAndChkVersion(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		code padsrt.ErrCode
	}{
		{`1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 200 5`, true, padsrt.ErrNone},
		{`1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 999 5`, false, padsrt.ErrConstraint},
		{`1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "LINK /x HTTP/1.0" 200 5`, false, padsrt.ErrConstraint},
		{`1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "LINK /x HTTP/1.1" 200 5`, true, padsrt.ErrNone},
		{`1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 200 -`, false, padsrt.ErrInvalidInt},
	}
	for _, c := range cases {
		s := padsrt.NewBytesSource([]byte(c.line + "\n"))
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(s, nil, &epd, &e)
		if (epd.PD.Nerr == 0) != c.ok {
			t.Errorf("%q: nerr = %d, want ok=%v", c.line, epd.PD.Nerr, c.ok)
			continue
		}
		if !c.ok && epd.PD.ErrCode != c.code {
			t.Errorf("%q: code = %v, want %v", c.line, epd.PD.ErrCode, c.code)
		}
	}
}

func TestDifferentialAgainstInterp(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "clf.pads"))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(src))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	in := interp.New(desc)

	var buf bytes.Buffer
	if _, err := datagen.CLF(&buf, datagen.DefaultCLF(500)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Three-way IR conformance: AST walk vs bytecode VM vs generated code.
	si := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(si, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := interp.NewAST(desc).NewRecordReader(padsrt.NewBytesSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	sg := padsrt.NewBytesSource(data)
	rec := 0
	for rr.More() {
		iv := rr.Read()
		if !ra.More() {
			t.Fatalf("AST reader ran out at record %d", rec)
		}
		if d := value.DiffFull(ra.Read(), iv); d != "" {
			t.Fatalf("record %d: AST walk and VM differ: %s", rec, d)
		}
		var e Entry_t
		var epd Entry_tPD
		ReadEntry_t(sg, nil, &epd, &e)
		gv := Entry_tToValue(&e, &epd)
		if (iv.PD().Nerr == 0) != (gv.PD().Nerr == 0) {
			t.Fatalf("record %d: interp nerr=%d generated nerr=%d", rec, iv.PD().Nerr, gv.PD().Nerr)
		}
		if iv.PD().Nerr == 0 && !value.Equal(iv, gv) {
			t.Fatalf("record %d differs:\ninterp:    %s\ngenerated: %s", rec, value.String(iv), value.String(gv))
		}
		rec++
	}
	if rec != 500 || sg.More() {
		t.Fatalf("records = %d, generated leftover=%v", rec, sg.More())
	}
}

func TestIgnoreMaskSkipsStores(t *testing.T) {
	mask := NewEntry_tMask(padsrt.Ignore)
	s := padsrt.NewBytesSource(figure2(t))
	var e Entry_t
	var epd Entry_tPD
	ReadEntry_t(s, mask, &epd, &e)
	if epd.PD.Nerr != 0 {
		t.Fatalf("ignore-mask read flagged: %v", epd.PD)
	}
	if e.Length != 0 || e.Request.Req_uri != "" {
		t.Errorf("ignore mask stored values: %+v", e)
	}
}
