package accum

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	a := New(DefaultConfig())
	for _, v := range []uint64{1, 1, 2, 3, 4, 7, 8, 1000} {
		a.Add(uintVal(v))
	}
	// 1 -> bucket 1 (1..1); 2,3 -> bucket 2 (2..3); 4,7 -> bucket 3;
	// 8 -> bucket 4; 1000 -> bucket 10 (512..1023).
	cases := map[int]uint64{1: 2, 2: 2, 3: 2, 4: 1, 10: 1}
	for b, want := range cases {
		if got := a.HistogramBucket(b); got != want {
			t.Errorf("bucket %d = %d, want %d", b, got, want)
		}
	}
	var sb strings.Builder
	a.Report(&sb, "<top>")
	for _, want := range []string{"histogram (log2 buckets):", "512..1023", "quantiles"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestQuantilesExactWhenSmall(t *testing.T) {
	a := New(DefaultConfig())
	for i := uint64(1); i <= 101; i++ {
		a.Add(uintVal(i))
	}
	if got := a.Quantile(0.5); got != 51 {
		t.Errorf("p50 = %v, want 51", got)
	}
	if got := a.Quantile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := a.Quantile(1); got != 101 {
		t.Errorf("p100 = %v", got)
	}
}

func TestQuantilesApproximateLarge(t *testing.T) {
	// 100k uniform values in [0, 1e6): the sampled p50 must land near the
	// true median.
	a := New(DefaultConfig())
	r := &reservoir{} // reuse the internal PRNG for data too
	for i := 0; i < 100000; i++ {
		a.Add(uintVal(r.next() % 1000000))
	}
	p50 := a.Quantile(0.5)
	if math.Abs(p50-500000) > 100000 {
		t.Errorf("p50 = %v, want ≈500000", p50)
	}
	p99 := a.Quantile(0.99)
	if p99 < 900000 {
		t.Errorf("p99 = %v, want ≥900000", p99)
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuantileInvariants(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		a := New(DefaultConfig())
		for _, v := range vals {
			a.Add(uintVal(uint64(v)))
		}
		prev := a.Quantile(0)
		if prev < a.Min() {
			return false
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.99, 1} {
			cur := a.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return prev <= a.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	a := New(DefaultConfig())
	for _, v := range []int64{-5, 0, 0, 3} {
		a.Add(intVal(v))
	}
	var sb strings.Builder
	a.Report(&sb, "<top>")
	out := sb.String()
	if !strings.Contains(out, "< 0") {
		t.Errorf("negative bucket missing:\n%s", out)
	}
	if !strings.Contains(out, "0 count:        2") {
		t.Errorf("zero bucket missing:\n%s", out)
	}
}
