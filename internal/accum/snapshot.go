package accum

import (
	"encoding/json"
	"fmt"

	"pads/internal/padsrt"
	"pads/internal/sema"
)

// Snapshot serialization: an Accum round-trips through JSON with its entire
// state — configuration, counts, numeric extrema, the distinct-value tracker
// (including insertion order), the histogram and reservoir sketches (including
// the PRNG state), and the recursive structure. internal/segment persists
// accumulators to a manifest sidecar on every segment commit, so a job killed
// mid-run resumes with an accumulator byte-identical to the uninterrupted
// one. encoding/json writes map keys in sorted order, so the encoding of a
// given accumulator state is deterministic and therefore hashable.

type accSnap struct {
	Cfg  Config    `json:"cfg"`
	Kind sema.Kind `json:"kind,omitempty"`
	Typ  string    `json:"typ,omitempty"`

	Good      uint64                    `json:"good,omitempty"`
	Bad       uint64                    `json:"bad,omitempty"`
	ErrCounts map[padsrt.ErrCode]uint64 `json:"errs,omitempty"`

	SawNum bool    `json:"saw_num,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	Sum    float64 `json:"sum,omitempty"`

	Counts    map[string]uint64 `json:"counts,omitempty"`
	Order     []string          `json:"order,omitempty"`
	Untracked uint64            `json:"untracked,omitempty"`

	Hist *histSnap `json:"hist,omitempty"`
	Res  *resSnap  `json:"res,omitempty"`

	FieldNames []string          `json:"field_names,omitempty"`
	Fields     map[string]*Accum `json:"fields,omitempty"`
	Elem       *Accum            `json:"elem,omitempty"`
	Length     *Accum            `json:"length,omitempty"`
	Branches   map[string]uint64 `json:"branches,omitempty"`
	Present    uint64            `json:"present,omitempty"`
	Absent     uint64            `json:"absent,omitempty"`
}

type histSnap struct {
	Neg     uint64   `json:"neg,omitempty"`
	Zero    uint64   `json:"zero,omitempty"`
	Buckets []uint64 `json:"buckets"` // sparse pairs: index, count, index, count, ...
	N       uint64   `json:"n"`
}

type resSnap struct {
	Sample []float64 `json:"sample"`
	Seen   uint64    `json:"seen"`
	RNG    uint64    `json:"rng"`
}

// MarshalJSON encodes the accumulator's full internal state.
func (a *Accum) MarshalJSON() ([]byte, error) {
	s := accSnap{
		Cfg: a.cfg, Kind: a.kind, Typ: a.typ,
		Good: a.Good, Bad: a.Bad,
		SawNum: a.sawNum, Min: a.min, Max: a.max, Sum: a.sum,
		Untracked:  a.untracked,
		FieldNames: a.fieldNames,
		Elem:       a.elem, Length: a.length,
		Present: a.present, Absent: a.absent,
	}
	if len(a.ErrCounts) > 0 {
		s.ErrCounts = a.ErrCounts
	}
	if len(a.counts) > 0 {
		s.Counts = a.counts
		s.Order = a.order
	}
	if len(a.fields) > 0 {
		s.Fields = a.fields
	}
	if len(a.branches) > 0 {
		s.Branches = a.branches
	}
	if a.hist != nil {
		h := &histSnap{Neg: a.hist.neg, Zero: a.hist.zero, N: a.hist.n}
		for i, c := range a.hist.buckets {
			if c > 0 {
				h.Buckets = append(h.Buckets, uint64(i), c)
			}
		}
		s.Hist = h
	}
	if a.res != nil {
		s.Res = &resSnap{Sample: a.res.sample, Seen: a.res.seen, RNG: a.res.rng}
	}
	return json.Marshal(&s)
}

// UnmarshalJSON restores an accumulator from its MarshalJSON encoding. The
// receiver is overwritten entirely.
func (a *Accum) UnmarshalJSON(data []byte) error {
	var s accSnap
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	*a = Accum{
		cfg: s.Cfg.withDefaults(), kind: s.Kind, typ: s.Typ,
		Good: s.Good, Bad: s.Bad,
		sawNum: s.SawNum, min: s.Min, max: s.Max, sum: s.Sum,
		untracked:  s.Untracked,
		fieldNames: s.FieldNames,
		elem:       s.Elem, length: s.Length,
		present: s.Present, absent: s.Absent,
	}
	a.ErrCounts = s.ErrCounts
	if a.ErrCounts == nil {
		a.ErrCounts = make(map[padsrt.ErrCode]uint64)
	}
	a.counts = s.Counts
	if a.counts == nil {
		a.counts = make(map[string]uint64)
	}
	a.order = s.Order
	a.fields = s.Fields
	if a.fields == nil {
		a.fields = make(map[string]*Accum)
	}
	a.branches = s.Branches
	if a.branches == nil {
		a.branches = make(map[string]uint64)
	}
	if len(a.fieldNames) != len(a.fields) {
		return fmt.Errorf("accum: snapshot field order lists %d names for %d fields", len(a.fieldNames), len(a.fields))
	}
	for _, n := range a.fieldNames {
		if a.fields[n] == nil {
			return fmt.Errorf("accum: snapshot field %q has no profile", n)
		}
	}
	if s.Hist != nil {
		h := &histogram{neg: s.Hist.Neg, zero: s.Hist.Zero, n: s.Hist.N}
		if len(s.Hist.Buckets)%2 != 0 {
			return fmt.Errorf("accum: snapshot histogram has odd bucket list")
		}
		for i := 0; i+1 < len(s.Hist.Buckets); i += 2 {
			idx := s.Hist.Buckets[i]
			if idx >= uint64(len(h.buckets)) {
				return fmt.Errorf("accum: snapshot histogram bucket %d out of range", idx)
			}
			h.buckets[idx] = s.Hist.Buckets[i+1]
		}
		a.hist = h
	}
	if s.Res != nil {
		a.res = &reservoir{sample: s.Res.Sample, seen: s.Res.Seen, rng: s.Res.RNG}
	}
	return nil
}
