package accum

import (
	"bytes"
	"encoding/json"
	"testing"

	"pads/internal/padsrt"
	"pads/internal/value"
)

// unionValue builds the i-th test value: a union over a struct exercising
// every component kind the profile tracks — numerics (histogram + reservoir),
// strings, arrays, options, and error tallies.
func unionValue(i int) value.Value {
	var pd padsrt.PD
	if i%7 == 3 {
		pd = padsrt.PD{Nerr: 1, ErrCode: padsrt.ErrInvalidInt}
	}
	rec := &value.Struct{
		Names: []string{"id", "name", "tags", "extra"},
		Fields: []value.Value{
			&value.Uint{Common: value.Common{Pd: pd}, Val: uint64(i * i % 977), Bits: 32},
			&value.Str{Val: []string{"alpha", "beta", "gamma", "delta", "x"}[i%5]},
			&value.Array{Elems: []value.Value{
				&value.Int{Val: int64(i%13 - 6)},
				&value.Int{Val: int64(i % 3)},
			}},
			&value.Opt{Present: i%4 != 0, Val: &value.Float{Val: float64(i) / 3}},
		},
	}
	if i%2 == 0 {
		return &value.Union{Tag: "even", Val: rec}
	}
	return &value.Union{Tag: "odd", Val: rec}
}

func buildAccum(lo, hi int) *Accum {
	a := New(Config{MaxTracked: 8, TopN: 4})
	for i := lo; i < hi; i++ {
		a.Add(unionValue(i))
	}
	return a
}

func reportOf(a *Accum) string {
	var b bytes.Buffer
	a.Report(&b, "<top>")
	return b.String()
}

func TestSnapshotRoundTrip(t *testing.T) {
	a := buildAccum(0, 5000) // overflows MaxTracked and the reservoir
	enc, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back := New(DefaultConfig())
	if err := json.Unmarshal(enc, back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got, want := reportOf(back), reportOf(a); got != want {
		t.Fatalf("report changed across round-trip:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// The encoding must be deterministic (the manifest hashes it).
	enc2, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("encoding is not deterministic")
	}
}

// A restored accumulator must keep accumulating exactly like the original —
// resume depends on snapshot-then-continue being equivalent to never
// stopping.
func TestSnapshotContinuation(t *testing.T) {
	full := buildAccum(0, 3000)

	enc, err := json.Marshal(buildAccum(0, 1500))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored := new(Accum)
	if err := json.Unmarshal(enc, restored); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i := 1500; i < 3000; i++ {
		restored.Add(unionValue(i))
	}
	if got, want := reportOf(restored), reportOf(full); got != want {
		t.Fatalf("snapshot+continue diverged from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// Merging into a restored accumulator must behave like merging into the
	// original (the segment runner folds per-segment profiles this way).
	mergedA := buildAccum(0, 1500)
	mergedA.Merge(buildAccum(1500, 3000))
	restored2 := new(Accum)
	if err := json.Unmarshal(enc, restored2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored2.Merge(buildAccum(1500, 3000))
	if got, want := reportOf(restored2), reportOf(mergedA); got != want {
		t.Fatalf("snapshot+merge diverged from merge:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
