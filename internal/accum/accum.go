// Package accum implements PADS accumulators (section 5.2 of the paper):
// per-type statistical profiles of a data source. For each component an
// accumulator tracks the number of good and bad values, the distribution of
// legal values (first-N distinct values with counts), and numeric min/max/
// average. Reports reproduce the layout of the paper's length-field example.
package accum

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

// Config controls how much an accumulator tracks.
type Config struct {
	// MaxTracked is the number of distinct values tracked per component
	// (the paper's default: the first 1000 distinct values seen).
	MaxTracked int
	// TopN is the number of values printed per component (default 10).
	TopN int
}

// DefaultConfig matches the paper's defaults.
func DefaultConfig() Config { return Config{MaxTracked: 1000, TopN: 10} }

func (c Config) withDefaults() Config {
	if c.MaxTracked <= 0 {
		c.MaxTracked = 1000
	}
	if c.TopN <= 0 {
		c.TopN = 10
	}
	return c
}

// Accum accumulates statistics for one component of a description and,
// recursively, its children.
type Accum struct {
	cfg  Config
	kind sema.Kind
	typ  string

	Good uint64
	Bad  uint64
	// ErrCounts tallies the first-error codes of bad values.
	ErrCounts map[padsrt.ErrCode]uint64

	// Numeric statistics over good values.
	sawNum   bool
	min, max float64
	sum      float64

	// Distinct-value tracking over good values.
	counts    map[string]uint64
	order     []string // insertion order, to bound memory deterministically
	untracked uint64   // good values seen after the tracker filled

	// Approximate summaries over good numeric values (the section 9
	// histogram/quantile extension).
	hist *histogram
	res  *reservoir

	// Structure.
	fieldNames []string
	fields     map[string]*Accum
	elem       *Accum // array elements
	length     *Accum // array lengths
	branches   map[string]uint64
	present    uint64 // Popt present count
	absent     uint64
}

// New creates an accumulator with the given configuration; the structure
// grows lazily as values are added.
func New(cfg Config) *Accum { return newAccum(cfg.withDefaults()) }

func newAccum(cfg Config) *Accum {
	return &Accum{
		cfg:       cfg,
		ErrCounts: make(map[padsrt.ErrCode]uint64),
		counts:    make(map[string]uint64),
		fields:    make(map[string]*Accum),
		branches:  make(map[string]uint64),
	}
}

func (a *Accum) child(name string) *Accum {
	c, ok := a.fields[name]
	if !ok {
		c = newAccum(a.cfg)
		a.fields[name] = c
		a.fieldNames = append(a.fieldNames, name)
	}
	return c
}

// Add folds one parsed value into the profile; this is the generated
// <type>_acc_add of Figure 6.
func (a *Accum) Add(v value.Value) {
	if v == nil {
		return
	}
	a.kind = v.Kind()
	a.typ = v.TypeName()
	pd := v.PD()
	if pd.Nerr > 0 {
		a.Bad++
		a.ErrCounts[pd.ErrCode]++
	} else {
		a.Good++
	}

	switch v := v.(type) {
	case *value.Uint:
		a.addNum(float64(v.Val), pd, fmtU(v.Val))
	case *value.Int:
		a.addNum(float64(v.Val), pd, fmt.Sprintf("%d", v.Val))
	case *value.Float:
		a.addNum(v.Val, pd, fmt.Sprintf("%g", v.Val))
	case *value.Char:
		a.addNum(float64(v.Val), pd, string(v.Val))
	case *value.Date:
		a.addNum(float64(v.Sec), pd, v.Raw)
	case *value.IP:
		a.addNum(float64(v.Val), pd, padsrt.FormatIP(v.Val))
	case *value.Str:
		if pd.Nerr == 0 {
			a.track(v.Val)
		}
	case *value.Enum:
		if pd.Nerr == 0 {
			a.track(v.Member)
		}
	case *value.Struct:
		for i, n := range v.Names {
			a.child(n).Add(v.Fields[i])
		}
	case *value.Union:
		if v.Tag != "" {
			a.branches[v.Tag]++
			a.child(v.Tag).Add(v.Val)
		}
	case *value.Array:
		if a.length == nil {
			a.length = newAccum(a.cfg)
		}
		lv := &value.Uint{Val: uint64(len(v.Elems)), Bits: 32}
		a.length.Add(lv)
		if a.elem == nil {
			a.elem = newAccum(a.cfg)
		}
		for _, e := range v.Elems {
			a.elem.Add(e)
		}
	case *value.Opt:
		if v.Present {
			a.present++
			a.child("val").Add(v.Val)
		} else {
			a.absent++
		}
	}
}

func fmtU(v uint64) string { return fmt.Sprintf("%d", v) }

func (a *Accum) addNum(f float64, pd *padsrt.PD, key string) {
	if pd.Nerr > 0 {
		return
	}
	if !a.sawNum || f < a.min {
		a.min = f
	}
	if !a.sawNum || f > a.max {
		a.max = f
	}
	a.sawNum = true
	a.sum += f
	if a.hist == nil {
		a.hist = &histogram{}
		a.res = &reservoir{}
	}
	a.hist.add(f)
	a.res.add(f)
	a.track(key)
}

func (a *Accum) track(key string) {
	if n, ok := a.counts[key]; ok {
		a.counts[key] = n + 1
		return
	}
	if len(a.counts) >= a.cfg.MaxTracked {
		a.untracked++
		return
	}
	a.counts[key] = 1
	a.order = append(a.order, key)
}

// Total is the number of values (good and bad) folded in.
func (a *Accum) Total() uint64 { return a.Good + a.Bad }

// PcntBad is the percentage of bad values.
func (a *Accum) PcntBad() float64 {
	if a.Total() == 0 {
		return 0
	}
	return float64(a.Bad) * 100 / float64(a.Total())
}

// Min, Max, Avg expose the numeric statistics (valid when Good > 0 on a
// numeric component).
func (a *Accum) Min() float64 { return a.min }
func (a *Accum) Max() float64 { return a.max }
func (a *Accum) Avg() float64 {
	if a.Good == 0 {
		return 0
	}
	return a.sum / float64(a.Good)
}

// Field returns the accumulator of a struct field / union branch, or nil.
func (a *Accum) Field(name string) *Accum { return a.fields[name] }

// Elem returns the element accumulator of an array component, or nil.
func (a *Accum) Elem() *Accum { return a.elem }

// Distinct is the number of distinct (tracked) values seen.
func (a *Accum) Distinct() int { return len(a.counts) }

// TrackedPcnt is the percentage of good values that hit the tracker.
func (a *Accum) TrackedPcnt() float64 {
	if a.Good == 0 {
		return 0
	}
	var tracked uint64
	for _, n := range a.counts {
		tracked += n
	}
	return float64(tracked) * 100 / float64(a.Good)
}

type kv struct {
	key string
	n   uint64
}

func (a *Accum) top(n int) []kv {
	all := make([]kv, 0, len(a.counts))
	for k, c := range a.counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// kindLabel names the component in the report header, e.g. "uint32".
func (a *Accum) kindLabel() string {
	switch a.kind {
	case sema.KUint, sema.KInt:
		base := sema.LookupBase(a.typ)
		if base != nil && base.Bits > 0 {
			prefix := "uint"
			if a.kind == sema.KInt {
				prefix = "int"
			}
			return fmt.Sprintf("%s%d", prefix, base.Bits)
		}
		if a.kind == sema.KInt {
			return "int"
		}
		return "uint32"
	case sema.KFloat:
		return "float"
	case sema.KChar:
		return "char"
	case sema.KString:
		return "string"
	case sema.KDate:
		return "date"
	case sema.KIP:
		return "ip"
	case sema.KEnum:
		return "enum " + a.typ
	case sema.KStruct:
		return "struct " + a.typ
	case sema.KUnion:
		return "union " + a.typ
	case sema.KArray:
		return "array " + a.typ
	case sema.KOpt:
		return "opt"
	default:
		return a.typ
	}
}

// Report writes the full nested profile. prefix names the root component;
// the paper uses "<top>".
func (a *Accum) Report(w io.Writer, prefix string) {
	a.report(w, prefix)
}

func (a *Accum) report(w io.Writer, path string) {
	fmt.Fprintf(w, "%s : %s\n", path, a.kindLabel())
	fmt.Fprintln(w, strings.Repeat("+", 43))
	fmt.Fprintf(w, "good: %d bad: %d pcnt-bad: %.3f\n", a.Good, a.Bad, a.PcntBad())
	if len(a.ErrCounts) > 0 {
		codes := make([]padsrt.ErrCode, 0, len(a.ErrCounts))
		for c := range a.ErrCounts {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		for _, c := range codes {
			fmt.Fprintf(w, "  err %v: %d\n", c, a.ErrCounts[c])
		}
	}
	if a.sawNum && a.Good > 0 {
		fmt.Fprintf(w, "min: %s max: %s avg: %.3f\n", trimFloat(a.min), trimFloat(a.max), a.Avg())
		if a.res != nil {
			a.res.report(w)
		}
		if a.hist != nil {
			a.hist.report(w)
		}
	}
	if len(a.counts) > 0 {
		top := a.top(a.cfg.TopN)
		fmt.Fprintf(w, "top %d values out of %d distinct values:\n", len(top), a.Distinct())
		fmt.Fprintf(w, "tracked %.3f%% of values\n", a.TrackedPcnt())
		var summed uint64
		for _, e := range top {
			pct := float64(0)
			if a.Good > 0 {
				pct = float64(e.n) * 100 / float64(a.Good)
			}
			fmt.Fprintf(w, "val: %10s count: %8d %%-of-good: %7.3f\n", e.key, e.n, pct)
			summed += e.n
		}
		fmt.Fprintln(w, ". . . . . . . . . . . . . . . . . . . . . .")
		sumPct := float64(0)
		if a.Good > 0 {
			sumPct = float64(summed) * 100 / float64(a.Good)
		}
		fmt.Fprintf(w, "SUMMING count: %d %%-of-good: %.3f\n", summed, sumPct)
	}
	if a.kind == sema.KUnion && len(a.branches) > 0 {
		tags := make([]string, 0, len(a.branches))
		for t := range a.branches {
			tags = append(tags, t)
		}
		sort.Strings(tags)
		for _, t := range tags {
			fmt.Fprintf(w, "branch %s: %d\n", t, a.branches[t])
		}
	}
	if a.kind == sema.KOpt {
		fmt.Fprintf(w, "present: %d absent: %d\n", a.present, a.absent)
	}
	fmt.Fprintln(w)

	// Children, in first-seen order.
	for _, n := range a.fieldNames {
		a.fields[n].report(w, path+"."+n)
	}
	if a.length != nil {
		a.length.report(w, path+".length")
	}
	if a.elem != nil {
		a.elem.report(w, path+".elt")
	}
}

// ReportField writes the profile of one dotted path (e.g. "length" under a
// record accumulator), matching the single-field excerpt in section 5.2.
func (a *Accum) ReportField(w io.Writer, prefix, path string) error {
	cur := a
	for _, part := range strings.Split(path, ".") {
		next := cur.fields[part]
		if next == nil && part == "elt" {
			next = cur.elem
		}
		if next == nil && part == "length" && cur.length != nil {
			next = cur.length
		}
		if next == nil {
			return fmt.Errorf("accum: no component %q under %q", part, prefix)
		}
		cur = next
	}
	cur.report(w, prefix+"."+path)
	return nil
}

func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.3f", f)
}
