package accum

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func compileFile(t *testing.T, name string) *interp.Interp {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(data))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return interp.New(desc)
}

func uintVal(v uint64) value.Value {
	u := &value.Uint{Val: v, Bits: 32}
	u.Type = "Puint32"
	return u
}

func badUint() value.Value {
	u := &value.Uint{Bits: 32}
	u.Type = "Puint32"
	u.PD().SetError(padsrt.ErrInvalidInt, padsrt.Loc{})
	return u
}

func TestScalarStats(t *testing.T) {
	a := New(DefaultConfig())
	for _, v := range []uint64{35, 100, 35, 248591} {
		a.Add(uintVal(v))
	}
	a.Add(badUint())
	if a.Good != 4 || a.Bad != 1 {
		t.Fatalf("good/bad = %d/%d", a.Good, a.Bad)
	}
	if a.Min() != 35 || a.Max() != 248591 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	wantAvg := float64(35+100+35+248591) / 4
	if a.Avg() != wantAvg {
		t.Errorf("avg = %v, want %v", a.Avg(), wantAvg)
	}
	if a.PcntBad() != 20 {
		t.Errorf("pcnt-bad = %v", a.PcntBad())
	}
	if a.Distinct() != 3 {
		t.Errorf("distinct = %d", a.Distinct())
	}
	if a.ErrCounts[padsrt.ErrInvalidInt] != 1 {
		t.Errorf("err counts = %v", a.ErrCounts)
	}
}

func TestTrackerCap(t *testing.T) {
	a := New(Config{MaxTracked: 10, TopN: 3})
	for i := 0; i < 100; i++ {
		a.Add(uintVal(uint64(i)))
	}
	if a.Distinct() != 10 {
		t.Fatalf("distinct = %d, want capped at 10", a.Distinct())
	}
	// 10 of 100 good values tracked.
	if got := a.TrackedPcnt(); got != 10 {
		t.Errorf("tracked%% = %v", got)
	}
	// Values already tracked keep counting after the cap.
	for i := 0; i < 5; i++ {
		a.Add(uintVal(3))
	}
	top := a.top(1)
	if top[0].key != "3" || top[0].n != 6 {
		t.Errorf("top = %+v", top)
	}
}

func TestTopOrderingDeterministic(t *testing.T) {
	a := New(DefaultConfig())
	for _, v := range []uint64{5, 5, 7, 7, 9} {
		a.Add(uintVal(v))
	}
	top := a.top(3)
	// Equal counts break ties by key.
	if top[0].key != "5" || top[1].key != "7" || top[2].key != "9" {
		t.Errorf("top = %+v", top)
	}
}

// TestCLFLengthReport reproduces the section 5.2 accumulator report for the
// CLF length field (E6): the same header lines, a top-10 table, and the
// SUMMING footer. The exact counts depend on the synthetic data; the 6.666%
// bad rate of the paper is reproduced by construction in the benchmark
// harness (internal/datagen seeds the same error population).
func TestCLFLengthReport(t *testing.T) {
	in := compileFile(t, "clf.pads")
	var sb strings.Builder
	// 60 records: 4 bad lengths ('-'), the rest drawn from a small set.
	for i := 0; i < 60; i++ {
		length := "3082"
		switch {
		case i%15 == 14:
			length = "-"
		case i%3 == 1:
			length = "170"
		case i%3 == 2:
			length = fmt.Sprintf("%d", 40+i)
		}
		fmt.Fprintf(&sb, "1.2.3.%d - - [15/Oct/1997:18:46:51 -0700] \"GET /x HTTP/1.0\" 200 %s\n", i%250, length)
	}
	s := padsrt.NewBytesSource([]byte(sb.String()))
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := New(DefaultConfig())
	n := 0
	for rr.More() {
		acc.Add(rr.Read())
		n++
	}
	if n != 60 {
		t.Fatalf("records = %d", n)
	}

	lengthAcc := acc.Field("length")
	if lengthAcc == nil {
		t.Fatal("no length accumulator")
	}
	if lengthAcc.Bad != 4 || lengthAcc.Good != 56 {
		t.Fatalf("length good/bad = %d/%d", lengthAcc.Good, lengthAcc.Bad)
	}

	var report strings.Builder
	if err := acc.ReportField(&report, "<top>", "length"); err != nil {
		t.Fatal(err)
	}
	out := report.String()
	for _, want := range []string{
		"<top>.length : uint32",
		"+++++++++++++++++++++++++++++++++++++++++++",
		"good: 56 bad: 4 pcnt-bad: 6.667",
		"min: 42 max: 3082",
		"top 10 values out of",
		"tracked 100.000% of values",
		"val:       3082",
		". . . . . . . . . . . . . . . . . . . . . .",
		"SUMMING count:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestNestedReportPaths(t *testing.T) {
	in := compileFile(t, "sirius.pads")
	data, _ := os.ReadFile(filepath.Join("..", "..", "testdata", "sirius.sample"))
	s := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := New(DefaultConfig())
	for rr.More() {
		acc.Add(rr.Read())
	}
	// Union branch distribution for the ramp field.
	ramp := acc.Field("header").Field("ramp")
	if ramp == nil {
		t.Fatal("no ramp accumulator")
	}
	if ramp.branches["ramp"] != 1 || ramp.branches["genRamp"] != 1 {
		t.Errorf("ramp branches = %v", ramp.branches)
	}
	// Array element stats for events.
	events := acc.Field("events")
	if events == nil || events.Elem() == nil {
		t.Fatal("no events accumulator")
	}
	st := events.Elem().Field("state")
	if st.Good != 3 {
		t.Errorf("event states good = %d, want 3", st.Good)
	}
	// Full report renders without panicking and mentions nested paths.
	var sb strings.Builder
	acc.Report(&sb, "<top>")
	for _, want := range []string{"<top>.header.order_num", "<top>.events.elt.state", "branch genRamp: 1", "present:"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// Property: good+bad always equals the number of Adds, and min<=avg<=max.
func TestAccumInvariants(t *testing.T) {
	f := func(vals []uint32, badEvery uint8) bool {
		if badEvery == 0 {
			badEvery = 3
		}
		a := New(Config{MaxTracked: 50, TopN: 5})
		adds := 0
		for i, v := range vals {
			if i%int(badEvery) == 0 {
				a.Add(badUint())
			} else {
				a.Add(uintVal(uint64(v)))
			}
			adds++
		}
		if a.Total() != uint64(adds) {
			return false
		}
		if a.Good > 0 && a.sawNum {
			if a.Min() > a.Avg() || a.Avg() > a.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportEmptyAccum(t *testing.T) {
	a := New(DefaultConfig())
	var sb strings.Builder
	a.Report(&sb, "<top>")
	if !strings.Contains(sb.String(), "good: 0 bad: 0") {
		t.Errorf("empty report = %q", sb.String())
	}
}

func intVal(v int64) value.Value {
	u := &value.Int{Val: v, Bits: 32}
	u.Type = "Pint32"
	return u
}
