package accum

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Section 9 of the paper proposes augmenting the statistical profiling
// library "with functions that use randomized and approximate techniques to
// create small summaries such as histograms … or quantile summaries". This
// file implements both in streaming form:
//
//   - a log-scale histogram with fixed buckets (powers of two), and
//   - quantiles estimated from a fixed-size reservoir sample (the classic
//     randomized technique; deterministic seeding keeps reports stable).

// histogram buckets span 2^(i-1) .. 2^i-1 for i >= 1, with dedicated
// buckets for negatives and zero.
type histogram struct {
	neg     uint64
	zero    uint64
	buckets [64]uint64
	n       uint64
}

func (h *histogram) add(f float64) {
	h.n++
	switch {
	case f < 0:
		h.neg++
	case f == 0:
		h.zero++
	default:
		i := int(math.Floor(math.Log2(f))) + 1
		if i < 1 {
			i = 1
		}
		if i > 63 {
			i = 63
		}
		h.buckets[i]++
	}
}

// merge adds o's buckets into h: bucket counts are commutative, so the
// merged histogram is exactly the histogram of the concatenated inputs.
func (h *histogram) merge(o *histogram) {
	h.neg += o.neg
	h.zero += o.zero
	h.n += o.n
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

func (h *histogram) report(w io.Writer) {
	if h.n == 0 {
		return
	}
	fmt.Fprintln(w, "histogram (log2 buckets):")
	bar := func(count uint64) string {
		width := int(count * 40 / h.n)
		out := make([]byte, width)
		for i := range out {
			out[i] = '#'
		}
		return string(out)
	}
	if h.neg > 0 {
		fmt.Fprintf(w, "  %14s count: %8d %s\n", "< 0", h.neg, bar(h.neg))
	}
	if h.zero > 0 {
		fmt.Fprintf(w, "  %14s count: %8d %s\n", "0", h.zero, bar(h.zero))
	}
	for i := 1; i < 64; i++ {
		if h.buckets[i] == 0 {
			continue
		}
		lo := uint64(1) << uint(i-1)
		hi := uint64(1)<<uint(i) - 1
		fmt.Fprintf(w, "  %6d..%-7d count: %8d %s\n", lo, hi, h.buckets[i], bar(h.buckets[i]))
	}
}

// reservoir is a fixed-size uniform sample (Vitter's algorithm R) with a
// deterministic splitmix64 PRNG so profiles are reproducible.
type reservoir struct {
	sample []float64
	seen   uint64
	rng    uint64
}

const reservoirSize = 1024

func (r *reservoir) next() uint64 {
	r.rng += 0x9E3779B97F4A7C15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *reservoir) add(f float64) {
	r.seen++
	if len(r.sample) < reservoirSize {
		r.sample = append(r.sample, f)
		return
	}
	if j := r.next() % r.seen; j < reservoirSize {
		r.sample[j] = f
	}
}

// merge folds o's sample into r. Merging into an empty reservoir adopts o
// verbatim (including the PRNG state), so a one-shard parallel run stays
// byte-identical to the sequential one. When both sides are below capacity
// their samples are complete populations and the union is exact. Otherwise
// the merged sample is drawn from the two samples by a deterministic
// weighted draw without replacement: each slot picks side r with
// probability seen_r/(seen_r+seen_o) — the standard distributed reservoir
// merge, whose estimates stay within the single-reservoir error bounds.
func (r *reservoir) merge(o *reservoir) {
	if o == nil || o.seen == 0 {
		return
	}
	if r.seen == 0 {
		r.sample = append(r.sample[:0], o.sample...)
		r.seen = o.seen
		r.rng = o.rng
		return
	}
	if len(r.sample)+len(o.sample) <= reservoirSize {
		r.sample = append(r.sample, o.sample...)
		r.seen += o.seen
		r.rng ^= o.rng
		return
	}
	merged := make([]float64, 0, reservoirSize)
	i, j := 0, 0
	for len(merged) < reservoirSize && (i < len(r.sample) || j < len(o.sample)) {
		takeR := j >= len(o.sample) ||
			(i < len(r.sample) && r.next()%(r.seen+o.seen) < r.seen)
		if takeR {
			merged = append(merged, r.sample[i])
			i++
		} else {
			merged = append(merged, o.sample[j])
			j++
		}
	}
	r.sample = merged
	r.seen += o.seen
	r.rng ^= o.rng
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the values seen.
func (r *reservoir) quantile(q float64) float64 {
	if len(r.sample) == 0 {
		return 0
	}
	s := make([]float64, len(r.sample))
	copy(s, r.sample)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

func (r *reservoir) report(w io.Writer) {
	if r.seen == 0 {
		return
	}
	exact := ""
	if r.seen > reservoirSize {
		exact = fmt.Sprintf(" (estimated from a %d-value sample)", reservoirSize)
	}
	fmt.Fprintf(w, "quantiles%s: p25: %s p50: %s p90: %s p99: %s\n",
		exact,
		trimFloat(r.quantile(0.25)), trimFloat(r.quantile(0.50)),
		trimFloat(r.quantile(0.90)), trimFloat(r.quantile(0.99)))
}

// Quantile exposes the estimated q-quantile of a numeric component's good
// values (0 when the component is not numeric or empty).
func (a *Accum) Quantile(q float64) float64 {
	if a.res == nil {
		return 0
	}
	return a.res.quantile(q)
}

// HistogramBucket returns the count of good values in 2^(i-1)..2^i-1.
func (a *Accum) HistogramBucket(i int) uint64 {
	if a.hist == nil || i < 1 || i > 63 {
		return 0
	}
	return a.hist.buckets[i]
}
