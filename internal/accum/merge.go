package accum

import "pads/internal/sema"

// Merge folds the profile b into a, so that accumulating a data source in
// shards and merging the per-shard accumulators produces the same report as
// one sequential accumulation. internal/parallel calls it once per chunk,
// in chunk order, which makes the merged report deterministic for a fixed
// worker count.
//
// Counts, error tallies, min/max/sum (and therefore the mean), branch and
// option tallies, and the histogram sketch merge exactly: for those the
// merged report is byte-identical to the sequential one. Two components are
// merge-approximate, within their already-documented bounds:
//
//   - The distinct-value tracker keeps the first MaxTracked distinct values
//     in first-seen order. Merging preserves that order across shards, so
//     the result is exact unless an individual shard overflowed its own
//     tracker (overflowed values are counted as untracked, exactly as the
//     sequential tracker does after it fills).
//   - The quantile reservoir merges by a deterministic weighted draw from
//     the two samples; merging into an empty accumulator adopts the other
//     side verbatim, so a single-shard run stays byte-identical.
//
// Merge is commutative on the exact components and deterministic (though
// order-sensitive, like sequential insertion order) on the approximate ones.
func (a *Accum) Merge(b *Accum) {
	if b == nil {
		return
	}
	if b.kind != sema.KInvalid || b.typ != "" {
		// Add overwrites kind/typ per value; chunk-order merge keeps the
		// same last-writer-wins behavior.
		a.kind, a.typ = b.kind, b.typ
	}
	a.Good += b.Good
	a.Bad += b.Bad
	for c, n := range b.ErrCounts {
		a.ErrCounts[c] += n
	}

	if b.sawNum {
		if !a.sawNum || b.min < a.min {
			a.min = b.min
		}
		if !a.sawNum || b.max > a.max {
			a.max = b.max
		}
		a.sawNum = true
		a.sum += b.sum
	}
	if b.hist != nil {
		if a.hist == nil {
			a.hist = &histogram{}
		}
		a.hist.merge(b.hist)
	}
	if b.res != nil {
		if a.res == nil {
			a.res = &reservoir{}
		}
		a.res.merge(b.res)
	}

	// Tracked values, in b's insertion order so first-seen order is global
	// chunk order — the same order a sequential accumulation would record.
	for _, k := range b.order {
		n := b.counts[k]
		if cur, ok := a.counts[k]; ok {
			a.counts[k] = cur + n
		} else if len(a.counts) < a.cfg.MaxTracked {
			a.counts[k] = n
			a.order = append(a.order, k)
		} else {
			a.untracked += n
		}
	}
	a.untracked += b.untracked

	for t, n := range b.branches {
		a.branches[t] += n
	}
	a.present += b.present
	a.absent += b.absent

	// Structure, recursively, preserving b's first-seen field order.
	for _, name := range b.fieldNames {
		a.child(name).Merge(b.fields[name])
	}
	if b.length != nil {
		if a.length == nil {
			a.length = newAccum(a.cfg)
		}
		a.length.Merge(b.length)
	}
	if b.elem != nil {
		if a.elem == nil {
			a.elem = newAccum(a.cfg)
		}
		a.elem.Merge(b.elem)
	}
}
