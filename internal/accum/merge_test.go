package accum

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"pads/internal/padsrt"
	"pads/internal/value"
)

// splitAccumulate accumulates vals sequentially into one accumulator, and
// separately into per-shard accumulators at the given cut points which are
// then merged in shard order; it returns both for comparison.
func splitAccumulate(cfg Config, vals []value.Value, cuts []int) (seq, merged *Accum) {
	seq = New(cfg)
	for _, v := range vals {
		seq.Add(v)
	}
	merged = New(cfg)
	prev := 0
	bounds := append(append([]int(nil), cuts...), len(vals))
	for _, end := range bounds {
		shard := New(cfg)
		for _, v := range vals[prev:end] {
			shard.Add(v)
		}
		merged.Merge(shard)
		prev = end
	}
	return seq, merged
}

func report(a *Accum) string {
	var buf bytes.Buffer
	a.Report(&buf, "<top>")
	return buf.String()
}

// TestMergeEqualsSequential is the core property: for mixed good/bad numeric
// data below the sketch thresholds, Merge(split(data)) must be byte-identical
// to accumulate(data) — counts, error tallies, min/max/mean, tracked values,
// and report text all agree, for every split tried.
func TestMergeEqualsSequential(t *testing.T) {
	var vals []value.Value
	rng := uint64(42)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	for i := 0; i < 500; i++ {
		if next()%10 == 0 {
			vals = append(vals, badUint())
		} else {
			vals = append(vals, uintVal(next()%97))
		}
	}
	for _, cuts := range [][]int{nil, {250}, {100, 200, 300, 400}, {1, 499}, {0, 0, 250}} {
		seq, merged := splitAccumulate(DefaultConfig(), vals, cuts)
		if seq.Good != merged.Good || seq.Bad != merged.Bad {
			t.Fatalf("cuts %v: good/bad %d/%d, want %d/%d", cuts, merged.Good, merged.Bad, seq.Good, seq.Bad)
		}
		if seq.Min() != merged.Min() || seq.Max() != merged.Max() || seq.Avg() != merged.Avg() {
			t.Fatalf("cuts %v: min/max/avg %v/%v/%v, want %v/%v/%v", cuts,
				merged.Min(), merged.Max(), merged.Avg(), seq.Min(), seq.Max(), seq.Avg())
		}
		if got, want := report(merged), report(seq); got != want {
			t.Fatalf("cuts %v: merged report differs from sequential:\n--- merged\n%s\n--- sequential\n%s", cuts, got, want)
		}
	}
}

// TestMergeStructured checks the property through nested structure: structs,
// unions (branch tallies), arrays (length and element accumulators), and
// optionals all merge to the sequential profile.
func TestMergeStructured(t *testing.T) {
	mk := func(i int) value.Value {
		st := &value.Struct{Common: value.NewCommon("rec_t")}
		st.Names = []string{"id", "events"}
		st.Fields = []value.Value{uintVal(uint64(i))}
		arr := &value.Array{Common: value.NewCommon("seq_t")}
		for j := 0; j <= i%3; j++ {
			arr.Elems = append(arr.Elems, uintVal(uint64(j)))
		}
		st.Fields = append(st.Fields, arr)
		return st
	}
	var vals []value.Value
	for i := 0; i < 200; i++ {
		vals = append(vals, mk(i))
	}
	seq, merged := splitAccumulate(DefaultConfig(), vals, []int{50, 100, 150})
	if got, want := report(merged), report(seq); got != want {
		t.Fatalf("structured merged report differs:\n--- merged\n%s\n--- sequential\n%s", got, want)
	}
	if f := merged.Field("events"); f == nil || f.Elem() == nil {
		t.Fatal("merged accumulator lost array structure")
	}
}

// TestMergeIdentity: merging one shard into a fresh accumulator is exactly
// the shard — the workers=1 determinism guarantee, including the reservoir
// (sample and PRNG state adopted verbatim) and histogram.
func TestMergeIdentity(t *testing.T) {
	shard := New(DefaultConfig())
	for i := 0; i < 5000; i++ {
		shard.Add(uintVal(uint64(i * i % 10007)))
	}
	merged := New(DefaultConfig())
	merged.Merge(shard)
	if got, want := report(merged), report(shard); got != want {
		t.Fatalf("identity merge differs:\n--- merged\n%s\n--- shard\n%s", got, want)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if merged.Quantile(q) != shard.Quantile(q) {
			t.Fatalf("identity merge: quantile %v = %v, want %v", q, merged.Quantile(q), shard.Quantile(q))
		}
	}
}

// TestMergeTrackerOverflow: when shards overflow their trackers, merged
// per-key counts may degrade to untracked (as sequential tracking does after
// it fills), but the total number of good values accounted for must be
// conserved.
func TestMergeTrackerOverflow(t *testing.T) {
	cfg := Config{MaxTracked: 16, TopN: 4}
	var vals []value.Value
	for i := 0; i < 400; i++ {
		vals = append(vals, uintVal(uint64(i%64)))
	}
	seq, merged := splitAccumulate(cfg, vals, []int{100, 200, 300})
	accounted := func(a *Accum) uint64 {
		var n uint64
		for _, c := range a.counts {
			n += c
		}
		return n + a.untracked
	}
	if accounted(seq) != seq.Good || accounted(merged) != merged.Good {
		t.Fatalf("value accounting broken: seq %d/%d merged %d/%d",
			accounted(seq), seq.Good, accounted(merged), merged.Good)
	}
	if merged.Distinct() != cfg.MaxTracked {
		t.Fatalf("merged tracker holds %d values, want cap %d", merged.Distinct(), cfg.MaxTracked)
	}
}

// TestMergeQuantileBounds: reservoir merges across shards must estimate
// quantiles within the documented sampling error. With a 1024-value sample
// over n uniform values, the rank error concentrates well under a few
// percent; we allow 5% of the value range.
func TestMergeQuantileBounds(t *testing.T) {
	const n = 20000
	var vals []value.Value
	rng := uint64(7)
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		vals = append(vals, uintVal((rng>>33)%100000))
	}
	_, merged := splitAccumulate(DefaultConfig(), vals, []int{5000, 10000, 15000})

	exactVals := make([]float64, 0, n)
	for _, v := range vals {
		exactVals = append(exactVals, float64(v.(*value.Uint).Val))
	}
	sort.Float64s(exactVals)
	for _, q := range []float64{0.25, 0.5, 0.9} {
		exact := exactVals[int(q*float64(n-1))]
		got := merged.Quantile(q)
		if math.Abs(got-exact) > 0.05*100000 {
			t.Errorf("q=%v: merged estimate %v, exact %v (off by %v, bound 5000)", q, got, exact, math.Abs(got-exact))
		}
	}
	if merged.HistogramBucket(17) == 0 && merged.HistogramBucket(16) == 0 {
		t.Error("merged histogram lost its mass")
	}
}

// TestMergeErrCounts: error-code tallies merge exactly.
func TestMergeErrCounts(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	for i := 0; i < 3; i++ {
		a.Add(badUint())
	}
	for i := 0; i < 5; i++ {
		b.Add(badUint())
	}
	a.Merge(b)
	if a.Bad != 8 || a.ErrCounts[padsrt.ErrInvalidInt] != 8 {
		t.Fatalf("merged bad=%d errcounts=%v, want 8", a.Bad, a.ErrCounts)
	}
}
