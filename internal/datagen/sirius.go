package datagen

import (
	"bufio"
	"fmt"
	"io"
)

// SiriusConfig parameterizes the Sirius provisioning-data generator
// (Figure 3 / Figure 5 of the paper).
type SiriusConfig struct {
	// Records is the number of order records (the paper's 2.2GB file
	// held 11,773,843).
	Records int
	// SortViolations is the number of records whose event timestamps are
	// out of order (the paper found exactly 1).
	SortViolations int
	// SyntaxErrors is the number of records with corrupted syntax (the
	// paper found 53).
	SyntaxErrors int
	// Event-count distribution: the paper reports min 1, max 156, mean
	// 5.5 states per order.
	MinEvents  int
	MaxEvents  int
	MeanEvents float64
	// ZeroPhoneFrac is the fraction of present phone numbers recorded as
	// the literal 0 — the second missing-value representation the
	// accumulator uncovered (section 5.1.1).
	ZeroPhoneFrac float64
	Seed          uint64
}

// DefaultSirius mirrors the section 7 data set scaled to the given record
// count: error counts scale proportionally from (1 sort, 53 syntax) per
// 11,773,843 records, with a minimum of one of each for nonempty files so
// the error-handling paths always run.
func DefaultSirius(records int) SiriusConfig {
	cfg := SiriusConfig{
		Records:       records,
		MinEvents:     1,
		MaxEvents:     156,
		MeanEvents:    5.5,
		ZeroPhoneFrac: 0.25,
		Seed:          2,
	}
	if records > 0 {
		scale := float64(records) / 11773843.0
		cfg.SortViolations = maxi(1, int(scale*1+0.5))
		cfg.SyntaxErrors = maxi(1, int(scale*53+0.5))
	}
	return cfg
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SiriusStats reports what was generated.
type SiriusStats struct {
	Records        int
	SortViolations int
	SyntaxErrors   int
	Events         int
	MinEvents      int
	MaxEvents      int
	Bytes          int64
}

// The provisioning state vocabulary: the real feed has over 400 distinct
// states; this pool yields the same order of magnitude.
var siriusStatePrefix = []string{
	"LOC", "EDTF", "FRDW", "APRL", "DUO", "CRTE", "OSS", "BILL", "PROV",
	"ACT", "DSGN", "TEST", "CKT", "DISP", "CANC", "COMP", "PNDG", "RJCT",
	"XFER", "VRFY", "SENT",
}

// StateName returns the i'th synthetic provisioning state name.
func StateName(i int) string {
	p := siriusStatePrefix[i%len(siriusStatePrefix)]
	return fmt.Sprintf("%s_%d", p, i%20)
}

// Sirius writes a summary header plus cfg.Records order records to w.
func Sirius(w io.Writer, cfg SiriusConfig) (SiriusStats, error) {
	r := NewRand(cfg.Seed | 1)
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	var st SiriusStats
	st.MinEvents = 1 << 30

	// Which records carry injected errors (spread deterministically, out
	// of phase so the two error kinds land on different records).
	sortAt := spreadPhase(cfg.SortViolations, cfg.Records, 2)
	syntaxAt := spreadPhase(cfg.SyntaxErrors, cfg.Records, 3)

	fmt.Fprintf(cw, "0|%d\n", 1005022800)

	for i := 0; i < cfg.Records; i++ {
		orderNum := 9000 + i
		phone := func() string {
			if r.Bool(0.2) {
				return "" // absent: the Popt NONE representation
			}
			if r.Bool(cfg.ZeroPhoneFrac) {
				return "0" // the second missing-value representation
			}
			return fmt.Sprintf("9%09d", r.Intn(1000000000))
		}
		zip := ""
		if r.Bool(0.8) {
			zip = fmt.Sprintf("%05d", r.Intn(100000))
		}
		ramp := fmt.Sprintf("%d", 150000+r.Intn(10000))
		if r.Bool(0.3) {
			ramp = fmt.Sprintf("no_ii%d", 150000+r.Intn(10000))
		}
		orderType := r.Pick([]string{"EDTF_6", "LOC_6", "DSL_2", "POTS_1"})
		stream := r.Pick([]string{"DUO", "UNO", "TRIO"})

		nEvents := r.Geometric(cfg.MeanEvents, cfg.MinEvents, cfg.MaxEvents)
		// Pin the distribution's extremes so min/max match the paper on
		// any reasonably sized file.
		if i == 1 && cfg.Records > 2 {
			nEvents = cfg.MinEvents
		}
		if i == 2 && cfg.Records > 2 {
			nEvents = cfg.MaxEvents
		}
		if nEvents < st.MinEvents {
			st.MinEvents = nEvents
		}
		if nEvents > st.MaxEvents {
			st.MaxEvents = nEvents
		}
		st.Events += nEvents

		// Event sequence with increasing timestamps.
		ts := 1000000000 + r.Intn(1000000)
		events := make([]string, 0, nEvents)
		for e := 0; e < nEvents; e++ {
			ts += 1 + r.Intn(100000)
			events = append(events, fmt.Sprintf("%s|%d", StateName(r.Intn(420)), ts))
		}
		if sortAt[i] && nEvents >= 2 {
			// Swap the last two timestamps to violate the Pwhere sort.
			events[nEvents-1], events[nEvents-2] = events[nEvents-2], events[nEvents-1]
			st.SortViolations++
		}

		header := fmt.Sprintf("%d|%d|%d|%s|%s|%s|%s|%s|%s|%s|%d|%s|%s|",
			orderNum, orderNum, 1+r.Intn(3),
			phone(), phone(), phone(), phone(),
			zip, ramp, orderType, r.Intn(100), r.Word(3, 6), stream)

		if syntaxAt[i] {
			// Corrupt the record: a non-numeric order number.
			header = "X" + header
			st.SyntaxErrors++
		}

		fmt.Fprint(cw, header)
		for e, ev := range events {
			if e > 0 {
				fmt.Fprint(cw, "|")
			}
			fmt.Fprint(cw, ev)
		}
		fmt.Fprintln(cw)
		st.Records++
	}
	if st.Records == 0 {
		st.MinEvents = 0
	}
	if err := bw.Flush(); err != nil {
		return st, err
	}
	st.Bytes = cw.n
	return st, nil
}

// spread marks k of n indexes, evenly distributed.
func spread(k, n int) map[int]bool { return spreadPhase(k, n, 2) }

// spreadPhase marks k of n indexes, offset by step/phase within each stride.
func spreadPhase(k, n, phase int) map[int]bool {
	m := make(map[int]bool, k)
	if k <= 0 || n <= 0 {
		return m
	}
	if k > n {
		k = n
	}
	step := n / k
	for i := 0; i < k; i++ {
		idx := i*step + step/phase
		if idx >= n {
			idx = n - 1
		}
		m[idx] = true
	}
	return m
}
