package datagen

import "bytes"

// Section 9 of the paper asks for data that "deviates from [the
// specification] in specified ways". Corruptor injects controlled
// deviations into record-oriented data; paired with a Generator it covers
// the generate-then-deviate workflow for testing error-handling paths.

// Deviation selects a corruption applied to a record.
type Deviation int

// Deviations.
const (
	// MangleDigit replaces one digit with a letter (syntax error in any
	// numeric field).
	MangleDigit Deviation = iota
	// DropByte deletes one byte, shifting every later field.
	DropByte
	// DupByte duplicates one byte.
	DupByte
	// TruncateRecord cuts the record at a random point.
	TruncateRecord
)

// Corruptor injects deviations into newline-delimited records.
type Corruptor struct {
	// Rate is the fraction of records to corrupt.
	Rate float64
	// Deviations to draw from; empty means all.
	Deviations []Deviation
	Seed       uint64
}

// Corrupt returns a copy of data with deviations injected, plus the number
// of records corrupted. The first record (a header, in both CLF-style and
// Sirius-style sources) is left intact.
func (c Corruptor) Corrupt(data []byte) ([]byte, int) {
	r := NewRand(c.Seed | 1)
	devs := c.Deviations
	if len(devs) == 0 {
		devs = []Deviation{MangleDigit, DropByte, DupByte, TruncateRecord}
	}
	lines := bytes.Split(data, []byte{'\n'})
	out := make([]byte, 0, len(data))
	corrupted := 0
	for i, line := range lines {
		if i == len(lines)-1 && len(line) == 0 {
			break // trailing newline artifact
		}
		if i > 0 && len(line) > 2 && r.Bool(c.Rate) {
			line = corruptLine(append([]byte(nil), line...), devs[r.Intn(len(devs))], r)
			corrupted++
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, corrupted
}

func corruptLine(line []byte, d Deviation, r *Rand) []byte {
	switch d {
	case MangleDigit:
		// Find a digit to mangle; fall back to mangling any byte.
		start := r.Intn(len(line))
		for i := 0; i < len(line); i++ {
			j := (start + i) % len(line)
			if line[j] >= '0' && line[j] <= '9' {
				line[j] = byte('x' + r.Intn(3))
				return line
			}
		}
		line[start] = '\x01'
		return line
	case DropByte:
		i := r.Intn(len(line))
		return append(line[:i], line[i+1:]...)
	case DupByte:
		i := r.Intn(len(line))
		line = append(line, 0)
		copy(line[i+1:], line[i:])
		return line
	default: // TruncateRecord
		return line[:1+r.Intn(len(line)-1)]
	}
}
