// Package datagen synthesizes ad hoc data. The paper's evaluation data
// (AT&T's Sirius provisioning feed and web server logs) is proprietary, so
// this package generates data with the same shape and the same error
// populations the paper reports: ~6.7% '-' length fields in CLF (section
// 5.2), and for Sirius a 2.2GB-class file with 1 timestamp-sort violation,
// 53 syntax errors, and event counts ranging 1..156 with mean ≈5.5 (section
// 7). It also implements the "generate random data that conforms to a given
// specification" tool the paper lists as future work (section 9), driven
// directly by a checked description.
package datagen

// Rand is a small deterministic PRNG (splitmix64) so generated corpora are
// reproducible across runs and platforms without importing math/rand.
type Rand struct {
	state uint64
}

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a value in [lo, hi] inclusive.
func (r *Rand) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Float returns a value in [0, 1).
func (r *Rand) Float() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float() < p }

// Geometric samples a geometric-ish count with the given mean, clamped to
// [min, max]. Used for the Sirius events-per-order distribution.
func (r *Rand) Geometric(mean float64, min, max int) int {
	if mean <= 1 {
		return min
	}
	// Inverse-CDF sampling of a geometric distribution with success
	// probability 1/mean, shifted to start at 1.
	p := 1.0 / mean
	n := 1
	for n < max && !r.Bool(p) {
		n++
	}
	if n < min {
		n = min
	}
	return n
}

const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
const alnum = letters + "0123456789"

// Word returns a random lowercase word of length in [min,max].
func (r *Rand) Word(min, max int) string {
	n := r.Range(min, max)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(26)]
	}
	return string(b)
}

// Alnum returns a random alphanumeric string of length in [min,max].
func (r *Rand) Alnum(min, max int) string {
	n := r.Range(min, max)
	b := make([]byte, n)
	for i := range b {
		b[i] = alnum[r.Intn(len(alnum))]
	}
	return string(b)
}

// Pick returns one of the choices.
func (r *Rand) Pick(choices []string) string { return choices[r.Intn(len(choices))] }

// Digits returns a string of n random digits (no leading-zero guarantee).
func (r *Rand) Digits(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(10))
	}
	return string(b)
}
